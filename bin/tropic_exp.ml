(* Experiment driver: one subcommand per table/figure of the paper's
   evaluation, the ablations, and the chaos fault-exploration sweep.
   `tropic_exp all` runs every paper experiment. *)

open Cmdliner

(* TROPIC_LOG=debug|info|warning turns on engine logging (Logs sources
   tropic.controller, tropic.worker, coord.replica, coord.client). *)
let () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "TROPIC_LOG") with
  | None -> ()
  | Some level ->
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level
      (match level with
       | "debug" -> Some Logs.Debug
       | "info" -> Some Logs.Info
       | "warning" | "warn" -> Some Logs.Warning
       | _ -> Some Logs.Info)

let quick_flag =
  let doc = "Shrink the experiment (fewer hosts, shorter trace window)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

(* Every simulation-backed subcommand takes --seed; the default is the
   experiment's historical seed so plain invocations stay reproducible. *)
let seed_arg =
  let doc =
    "Simulation seed threaded into the discrete-event core (defaults to \
     the experiment's historical seed)."
  in
  Arg.(value & opt (some int) None & info [ "seed" ] ~doc)

let effective_seed ~default seed =
  let s = Option.value seed ~default in
  Printf.printf "[effective seed %d]\n%!" s;
  s

let perf_config quick =
  if quick || Experiments.Common.quick_mode () then
    Experiments.Perf.quick_config
  else Experiments.Perf.default_config

(* ------------------------------------------------------------------ *)
(* Subcommands *)

let table1_cmd =
  let run () = Experiments.Table1.print () in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table 1 (spawnVM execution log)")
    Term.(const run $ const ())

let fig3_cmd =
  let run () = Experiments.Perf.print_fig3 () in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Figure 3: EC2 workload, VMs launched per second")
    Term.(const run $ const ())

let multipliers_arg =
  let doc = "Workload multipliers to run (comma-separated)." in
  Arg.(value & opt (list int) [ 1; 2; 3; 4; 5 ] & info [ "multipliers"; "m" ] ~doc)

let fig45_run ?seed quick multipliers =
  let cfg = perf_config quick in
  let cfg =
    { cfg with Experiments.Perf.seed = effective_seed ~default:cfg.Experiments.Perf.seed seed }
  in
  Experiments.Perf.print_fig4_fig5 ~multipliers cfg

let fig4_cmd =
  let run quick multipliers seed = fig45_run ?seed quick multipliers in
  Cmd.v
    (Cmd.info "fig4"
       ~doc:
         "Figures 4 & 5: controller CPU utilization and transaction latency \
          under the 1x-5x EC2 workloads")
    Term.(const run $ quick_flag $ multipliers_arg $ seed_arg)

let fig5_cmd =
  let run quick multipliers seed = fig45_run ?seed quick multipliers in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Alias of fig4 (the two figures share one run)")
    Term.(const run $ quick_flag $ multipliers_arg $ seed_arg)

let safety_cmd =
  let run quick =
    let iterations = if quick then 2_000 else 20_000 in
    Experiments.Safety.print (Experiments.Safety.run ~iterations ())
  in
  Cmd.v
    (Cmd.info "safety"
       ~doc:
         "Section 6.2: constraint-checking overhead (deterministic \
          micro-benchmark, no simulation seed)")
    Term.(const run $ quick_flag)

let robustness_cmd =
  let run quick seed =
    let iterations = if quick then 2_000 else 20_000 in
    let injections = if quick then 8 else 20 in
    let seed = effective_seed ~default:Experiments.Robustness.default_seed seed in
    Experiments.Robustness.print
      (Experiments.Robustness.run ~seed ~iterations ~injections ())
  in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:"Section 6.3: rollback overhead under injected errors")
    Term.(const run $ quick_flag $ seed_arg)

let ha_cmd =
  let session =
    let doc = "Controller session timeout (failure-detection time)." in
    Arg.(value & opt float 10. & info [ "session-timeout" ] ~doc)
  in
  let run session_timeout seed =
    let seed = effective_seed ~default:Experiments.Ha.default_seed seed in
    Experiments.Ha.print (Experiments.Ha.run ~seed ~session_timeout ())
  in
  Cmd.v
    (Cmd.info "ha" ~doc:"Section 6.4: controller fail-over recovery")
    Term.(const run $ session $ seed_arg)

let trace_arg =
  let doc =
    "Record a per-transaction span trace of the run, write it to $(docv) \
     in Chrome trace-event JSON (load in about://tracing or Perfetto), and \
     validate its lifecycle invariants (non-zero exit on violation)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

(* Write + validate the span dump a --trace run recorded; exits 1 when the
   recorder saw a lifecycle-invariant violation. *)
let finish_trace trace_file tracer =
  match trace_file, tracer with
  | Some file, Some tracer ->
    let errors = Experiments.Common.dump_trace tracer ~file in
    Printf.printf "trace: %d spans -> %s, %d invariant violations\n%!"
      (Trace.span_count tracer) file (List.length errors);
    List.iter
      (fun e ->
        Printf.printf "  TRACE VIOLATION %s\n%!" (Trace.Check.error_to_string e))
      errors;
    if errors <> [] then exit 1
  | Some _, None | None, _ -> ()

let hosting_cmd =
  let run quick seed trace_file =
    let duration = if quick then 120. else 300. in
    let seed = effective_seed ~default:Experiments.Hosting_run.default_seed seed in
    let result =
      Experiments.Hosting_run.run ~seed ~duration
        ~record_trace:(trace_file <> None) ()
    in
    Experiments.Hosting_run.print result;
    finish_trace trace_file result.Experiments.Hosting_run.trace
  in
  Cmd.v
    (Cmd.info "hosting"
       ~doc:"The hosting-provider workload end-to-end on a TCloud deployment")
    Term.(const run $ quick_flag $ seed_arg $ trace_arg)

let scale_cmd =
  let run quick seed =
    let host_counts = if quick then [ 500; 2_000 ] else [ 500; 2_000; 8_000 ] in
    let seed = effective_seed ~default:Experiments.Scale.default_seed seed in
    Experiments.Scale.print (Experiments.Scale.run ~seed ~host_counts ())
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Section 6.1: throughput and memory vs resource count")
    Term.(const run $ quick_flag $ seed_arg)

let ablation_cmd =
  let run seed =
    let seed = effective_seed ~default:Experiments.Ablation.default_seed seed in
    Experiments.Ablation.print (Experiments.Ablation.run ~seed ())
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Ablations of TROPIC's design choices")
    Term.(const run $ seed_arg)

let converge_cmd =
  let model_arg =
    let doc =
      "Converge on the goal model in $(docv) (s-expression, see \
       lib/plan/model.mli) instead of the built-in two-phase rolling \
       upgrade.  The deployment stays the built-in one: 4 xen hosts, \
       2 stopped VMs pre-installed per host."
    in
    Arg.(value & opt (some file) None & info [ "model" ] ~doc ~docv:"FILE")
  in
  let run quick seed trace_file model_file =
    let goal =
      match model_file with
      | None -> None
      | Some file ->
        let ic = open_in file in
        let contents =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        (match Plan.Model.of_string contents with
         | Ok model -> Some model
         | Error message ->
           Printf.eprintf "%s: %s\n" file message;
           exit 2)
    in
    let seed = effective_seed ~default:Experiments.Converge.default_seed seed in
    let result =
      Experiments.Converge.run ~seed ~quick
        ~record_trace:(trace_file <> None) ?goal ()
    in
    Experiments.Converge.print result;
    finish_trace trace_file result.Experiments.Converge.trace;
    if not (Experiments.Converge.converged result) then exit 1
  in
  Cmd.v
    (Cmd.info "converge"
       ~doc:
         "Goal-state convergence: diff a declarative model against the \
          logical tree, compile the drift into a dependency-ordered plan \
          of transactions, and execute it to convergence (non-zero exit \
          if any phase is left blocked)")
    Term.(const run $ quick_flag $ seed_arg $ trace_arg $ model_arg)

(* ------------------------------------------------------------------ *)
(* Chaos: seed-sweep fault exploration (lib/chaos) *)

let chaos_schedule_names () =
  String.concat ", "
    (List.map (fun s -> s.Chaos.Schedule.name) Chaos.Schedule.presets)

let print_chaos_result ~with_trace r =
  if with_trace then
    List.iter (fun line -> Printf.printf "  %s\n" line) r.Chaos.Runner.trace;
  Printf.printf
    "seed %4d  %-19s %3d committed / %2d aborted / %2d failed, %2d faults, \
     quiesced at %.0fs, sched: %d deferrals, %d wakeups (%d spurious), \
     robust: %d retries (%d transient, %d timeouts), watchdog %d TERM / %d \
     KILL, shed %d, breaker %d trips / %d probes / %d closes\n"
    r.Chaos.Runner.seed r.Chaos.Runner.schedule r.Chaos.Runner.committed
    r.Chaos.Runner.aborted r.Chaos.Runner.failed r.Chaos.Runner.injected
    r.Chaos.Runner.duration r.Chaos.Runner.deferrals r.Chaos.Runner.wakeups
    r.Chaos.Runner.spurious_wakeups r.Chaos.Runner.retries
    r.Chaos.Runner.transient_failures r.Chaos.Runner.timeouts
    r.Chaos.Runner.auto_terms r.Chaos.Runner.auto_kills r.Chaos.Runner.sheds
    r.Chaos.Runner.breaker_trips r.Chaos.Runner.breaker_probes
    r.Chaos.Runner.breaker_closes;
  if
    r.Chaos.Runner.joins > 0 || r.Chaos.Runner.leaves > 0
    || r.Chaos.Runner.stale_sessions > 0
  then
    Printf.printf
      "       membership: %d joins / %d leaves / %d catchups, %d stale \
       sessions rejected\n"
      r.Chaos.Runner.joins r.Chaos.Runner.leaves r.Chaos.Runner.catchups
      r.Chaos.Runner.stale_sessions;
  if r.Chaos.Runner.group_flushes > 0 then
    Printf.printf
      "       group-commit: %d flushes, %d cmds batched, acks %d deferred \
       / %d unsafe\n"
      r.Chaos.Runner.group_flushes r.Chaos.Runner.group_batched
      r.Chaos.Runner.acks_deferred r.Chaos.Runner.unsafe_acks;
  if r.Chaos.Runner.shards > 1 then begin
    Printf.printf "       2pc: %d started / %d committed / %d aborted / %d prepares (%d shards)\n"
      r.Chaos.Runner.twopc_started r.Chaos.Runner.twopc_committed
      r.Chaos.Runner.twopc_aborted r.Chaos.Runner.twopc_prepares
      r.Chaos.Runner.shards;
    List.iter
      (fun line -> Printf.printf "       %s\n" line)
      r.Chaos.Runner.per_shard
  end;
  if with_trace then begin
    Printf.printf "  %s\n" r.Chaos.Runner.phases;
    let dump = r.Chaos.Runner.span_dump in
    let cap =
      match Sys.getenv_opt "TROPIC_SPAN_CAP" with
      | Some s -> (try int_of_string s with _ -> 400)
      | None -> 400
    in
    let shown = List.filteri (fun i _ -> i < cap) dump in
    if shown <> [] then begin
      Printf.printf "  span dump (%d spans/events):\n" (List.length dump);
      List.iter (fun line -> Printf.printf "    %s\n" line) shown;
      if List.length dump > cap then
        Printf.printf "    ... %d more\n" (List.length dump - cap)
    end
  end;
  List.iter
    (fun v -> Printf.printf "  VIOLATION %s\n" (Chaos.Invariant.violation_to_string v))
    r.Chaos.Runner.violations;
  if r.Chaos.Runner.violations <> [] then
    Printf.printf "  reproduce with: %s\n%!" (Chaos.Runner.reproducer r);
  Printf.printf "%!"

let chaos_run quick seeds first_seed schedule_name build_name replay_seed
    expect_violations =
  let build =
    match Chaos.Runner.build_of_string build_name with
    | Ok build -> build
    | Error message -> prerr_endline message; exit 2
  in
  let base_config =
    if quick || Experiments.Common.quick_mode () then Chaos.Runner.quick_config
    else Chaos.Runner.default_config
  in
  let config = { base_config with Chaos.Runner.build } in
  let schedules =
    match schedule_name with
    | None -> Chaos.Schedule.presets
    | Some name ->
      (match Chaos.Schedule.find name with
       | Some s -> [ s ]
       | None ->
         Printf.eprintf "unknown schedule %S (have: %s)\n" name
           (chaos_schedule_names ());
         exit 2)
  in
  let fail_or_ok violations_found =
    if expect_violations && not violations_found then begin
      Printf.printf
        "expected the sweep to find violations, but it found none\n%!";
      exit 1
    end;
    if (not expect_violations) && violations_found then exit 1
  in
  match replay_seed with
  | Some seed ->
    (* Reproduce one run, with the full injection/transaction trace. *)
    let schedule =
      match schedules with
      | [ s ] -> s
      | _ ->
        prerr_endline "replaying a single --seed requires --schedule NAME";
        exit 2
    in
    Printf.printf "chaos replay: build=%s schedule=%s seed=%d\n"
      (Chaos.Runner.build_to_string build) schedule.Chaos.Schedule.name seed;
    Printf.printf "%s\n" (Chaos.Schedule.describe schedule);
    let r = Chaos.Runner.run_one ~trace:true config ~schedule ~seed in
    print_chaos_result ~with_trace:true r;
    fail_or_ok (r.Chaos.Runner.violations <> [])
  | None ->
    let count = Option.value seeds ~default:(if quick then 10 else 128) in
    let seed_list = List.init count (fun i -> first_seed + i) in
    Printf.printf
      "chaos sweep: build=%s, %d seeds (%d..%d) round-robin over %d \
       schedules (%s)\n%!"
      (Chaos.Runner.build_to_string build) count first_seed
      (first_seed + count - 1) (List.length schedules)
      (String.concat ", "
         (List.map (fun s -> s.Chaos.Schedule.name) schedules));
    let started = Sys.time () in
    let sweep =
      Chaos.Runner.sweep config ~schedules ~seeds:seed_list
        ~progress:(print_chaos_result ~with_trace:false)
    in
    let violating = sweep.Chaos.Runner.violating in
    Printf.printf
      "\n%d runs, %d with violations (%.1f s wall clock)\n"
      (List.length sweep.Chaos.Runner.runs)
      (List.length violating)
      (Sys.time () -. started);
    List.iter
      (fun r -> Printf.printf "  %s\n" (Chaos.Runner.reproducer r))
      violating;
    Printf.printf "%!";
    fail_or_ok (violating <> [])

let chaos_cmd =
  let seeds =
    let doc = "Number of seeds to sweep (default 128, or 10 with --quick)." in
    Arg.(value & opt (some int) None & info [ "seeds" ] ~doc)
  in
  let first_seed =
    let doc = "First seed of the sweep." in
    Arg.(value & opt int 1 & info [ "first-seed" ] ~doc)
  in
  let schedule =
    let doc = "Restrict the sweep to one nemesis schedule." in
    Arg.(value & opt (some string) None & info [ "schedule" ] ~doc)
  in
  let build =
    let doc =
      "Build to exercise: stock, no-constraints, no-guard-locks, \
       no-watchdog, no-breaker, no-plan-deps, no-2pc, no-session-id or \
       unsafe-ack."
    in
    Arg.(value & opt string "stock" & info [ "build" ] ~doc)
  in
  let replay =
    let doc =
      "Replay one seed (requires --schedule) with full event tracing — the \
       form violation reproducers take."
    in
    Arg.(value & opt (some int) None & info [ "seed" ] ~doc)
  in
  let expect =
    let doc =
      "Invert the exit status: succeed only if the sweep finds at least one \
       violation (for validating the harness against broken builds)."
    in
    Arg.(value & flag & info [ "expect-violations" ] ~doc)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Deterministic fault exploration: sweep seeds across nemesis \
          schedules, checking invariants; non-zero exit on any violation")
    Term.(
      const chaos_run $ quick_flag $ seeds $ first_seed $ schedule $ build
      $ replay $ expect)

(* ------------------------------------------------------------------ *)

let all_cmd =
  let run quick =
    Experiments.Table1.print ();
    Experiments.Perf.print_fig3 ();
    fig45_run quick [ 1; 2; 3; 4; 5 ];
    Experiments.Safety.print
      (Experiments.Safety.run ~iterations:(if quick then 2_000 else 20_000) ());
    Experiments.Robustness.print
      (Experiments.Robustness.run
         ~iterations:(if quick then 2_000 else 20_000)
         ~injections:(if quick then 8 else 20)
         ());
    Experiments.Ha.print (Experiments.Ha.run ());
    Experiments.Hosting_run.print
      (Experiments.Hosting_run.run ~duration:(if quick then 120. else 300.) ());
    Experiments.Scale.print
      (Experiments.Scale.run
         ~host_counts:(if quick then [ 500; 2_000 ] else [ 500; 2_000; 8_000 ])
         ());
    Experiments.Ablation.print (Experiments.Ablation.run ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in sequence")
    Term.(const run $ quick_flag)

let main =
  let doc = "Reproduce the TROPIC paper's evaluation (USENIX ATC 2012)" in
  Cmd.group
    (Cmd.info "tropic_exp" ~version:"1.0.0" ~doc)
    [
      table1_cmd; fig3_cmd; fig4_cmd; fig5_cmd; safety_cmd; robustness_cmd;
      ha_cmd; hosting_cmd; scale_cmd; ablation_cmd; converge_cmd; chaos_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval main)
