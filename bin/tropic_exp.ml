(* Experiment driver: one subcommand per table/figure of the paper's
   evaluation, plus the ablations.  `tropic_exp all` runs everything. *)

open Cmdliner

(* TROPIC_LOG=debug|info|warning turns on engine logging (Logs sources
   tropic.controller, tropic.worker, coord.replica, coord.client). *)
let () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "TROPIC_LOG") with
  | None -> ()
  | Some level ->
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level
      (match level with
       | "debug" -> Some Logs.Debug
       | "info" -> Some Logs.Info
       | "warning" | "warn" -> Some Logs.Warning
       | _ -> Some Logs.Info)

let quick_flag =
  let doc = "Shrink the experiment (fewer hosts, shorter trace window)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let perf_config quick =
  if quick || Experiments.Common.quick_mode () then
    Experiments.Perf.quick_config
  else Experiments.Perf.default_config

(* ------------------------------------------------------------------ *)
(* Subcommands *)

let table1_cmd =
  let run () = Experiments.Table1.print () in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table 1 (spawnVM execution log)")
    Term.(const run $ const ())

let fig3_cmd =
  let run () = Experiments.Perf.print_fig3 () in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Figure 3: EC2 workload, VMs launched per second")
    Term.(const run $ const ())

let multipliers_arg =
  let doc = "Workload multipliers to run (comma-separated)." in
  Arg.(value & opt (list int) [ 1; 2; 3; 4; 5 ] & info [ "multipliers"; "m" ] ~doc)

let fig45_run quick multipliers =
  Experiments.Perf.print_fig4_fig5 ~multipliers (perf_config quick)

let fig4_cmd =
  Cmd.v
    (Cmd.info "fig4"
       ~doc:
         "Figures 4 & 5: controller CPU utilization and transaction latency \
          under the 1x-5x EC2 workloads")
    Term.(const fig45_run $ quick_flag $ multipliers_arg)

let fig5_cmd =
  Cmd.v
    (Cmd.info "fig5" ~doc:"Alias of fig4 (the two figures share one run)")
    Term.(const fig45_run $ quick_flag $ multipliers_arg)

let safety_cmd =
  let run quick =
    let iterations = if quick then 2_000 else 20_000 in
    Experiments.Safety.print (Experiments.Safety.run ~iterations ())
  in
  Cmd.v
    (Cmd.info "safety" ~doc:"Section 6.2: constraint-checking overhead")
    Term.(const run $ quick_flag)

let robustness_cmd =
  let run quick =
    let iterations = if quick then 2_000 else 20_000 in
    let injections = if quick then 8 else 20 in
    Experiments.Robustness.print
      (Experiments.Robustness.run ~iterations ~injections ())
  in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:"Section 6.3: rollback overhead under injected errors")
    Term.(const run $ quick_flag)

let ha_cmd =
  let session =
    let doc = "Controller session timeout (failure-detection time)." in
    Arg.(value & opt float 10. & info [ "session-timeout" ] ~doc)
  in
  let run session_timeout =
    Experiments.Ha.print (Experiments.Ha.run ~session_timeout ())
  in
  Cmd.v
    (Cmd.info "ha" ~doc:"Section 6.4: controller fail-over recovery")
    Term.(const run $ session)

let hosting_cmd =
  let run quick =
    let duration = if quick then 120. else 300. in
    Experiments.Hosting_run.print (Experiments.Hosting_run.run ~duration ())
  in
  Cmd.v
    (Cmd.info "hosting"
       ~doc:"The hosting-provider workload end-to-end on a TCloud deployment")
    Term.(const run $ quick_flag)

let scale_cmd =
  let run quick =
    let host_counts = if quick then [ 500; 2_000 ] else [ 500; 2_000; 8_000 ] in
    Experiments.Scale.print (Experiments.Scale.run ~host_counts ())
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Section 6.1: throughput and memory vs resource count")
    Term.(const run $ quick_flag)

let ablation_cmd =
  let run () = Experiments.Ablation.print (Experiments.Ablation.run ()) in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Ablations of TROPIC's design choices")
    Term.(const run $ const ())

let all_cmd =
  let run quick =
    Experiments.Table1.print ();
    Experiments.Perf.print_fig3 ();
    fig45_run quick [ 1; 2; 3; 4; 5 ];
    Experiments.Safety.print
      (Experiments.Safety.run ~iterations:(if quick then 2_000 else 20_000) ());
    Experiments.Robustness.print
      (Experiments.Robustness.run
         ~iterations:(if quick then 2_000 else 20_000)
         ~injections:(if quick then 8 else 20)
         ());
    Experiments.Ha.print (Experiments.Ha.run ());
    Experiments.Hosting_run.print
      (Experiments.Hosting_run.run ~duration:(if quick then 120. else 300.) ());
    Experiments.Scale.print
      (Experiments.Scale.run
         ~host_counts:(if quick then [ 500; 2_000 ] else [ 500; 2_000; 8_000 ])
         ());
    Experiments.Ablation.print (Experiments.Ablation.run ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in sequence")
    Term.(const run $ quick_flag)

let main =
  let doc = "Reproduce the TROPIC paper's evaluation (USENIX ATC 2012)" in
  Cmd.group
    (Cmd.info "tropic_exp" ~version:"1.0.0" ~doc)
    [
      table1_cmd; fig3_cmd; fig4_cmd; fig5_cmd; safety_cmd; robustness_cmd;
      ha_cmd; hosting_cmd; scale_cmd; ablation_cmd; all_cmd;
    ]

let () = exit (Cmd.eval main)
