(* Scenario runner: execute a TCloud orchestration script against a fresh
   simulated deployment.

     dune exec bin/tcloud_sim.exe -- examples/scenarios/demo.scenario

   Exit status is non-zero if the script fails to parse or any `expect`
   assertion fails, so scenarios double as regression tests. *)

let () =
  match Array.to_list Sys.argv with
  | [ _; path ] ->
    (match Experiments.Scenario.run_file path with
     | Error message ->
       prerr_endline ("parse error: " ^ message);
       exit 2
     | Ok outcome ->
       List.iter print_endline outcome.Experiments.Scenario.lines;
       Printf.printf
         "\n%d transactions, %d failed expectations\n"
         outcome.Experiments.Scenario.transactions
         outcome.Experiments.Scenario.failed_expectations;
       exit (if outcome.Experiments.Scenario.failed_expectations = 0 then 0 else 1))
  | _ ->
    prerr_endline "usage: tcloud_sim <scenario-file>";
    exit 2
