(* Scenario runner: execute a TCloud orchestration script against a fresh
   simulated deployment.

     dune exec bin/tcloud_sim.exe -- examples/scenarios/demo.scenario

   Exit status is non-zero if the script fails to parse, any `expect`
   assertion fails, a transaction aborts or fails with no `expect`
   acknowledging it, or the logical and physical layers disagree at the
   end of the run — so scenarios double as regression tests.  Admission
   overload aborts are the expected face of load shedding and never make
   the exit status unhealthy. *)

let () =
  match Array.to_list Sys.argv with
  | [ _; path ] ->
    (match
       try Experiments.Scenario.run_file path
       with Sys_error message -> prerr_endline message; exit 2
     with
     | Error message ->
       prerr_endline ("parse error: " ^ message);
       exit 2
     | Ok outcome ->
       List.iter print_endline outcome.Experiments.Scenario.lines;
       Printf.printf
         "\n%d transactions, %d failed expectations, %d unexpected \
          outcomes, layers consistent: %b\n"
         outcome.Experiments.Scenario.transactions
         outcome.Experiments.Scenario.failed_expectations
         outcome.Experiments.Scenario.unexpected_outcomes
         outcome.Experiments.Scenario.layers_consistent;
       let healthy =
         outcome.Experiments.Scenario.failed_expectations = 0
         && outcome.Experiments.Scenario.unexpected_outcomes = 0
         && outcome.Experiments.Scenario.layers_consistent
       in
       exit (if healthy then 0 else 1))
  | _ ->
    prerr_endline "usage: tcloud_sim <scenario-file>";
    exit 2
