(* Scenario runner: execute a TCloud orchestration script against a fresh
   simulated deployment.

     dune exec bin/tcloud_sim.exe -- examples/scenarios/demo.scenario
     dune exec bin/tcloud_sim.exe -- --trace out.json demo.scenario

   Exit status is non-zero if the script fails to parse, any `expect` or
   `expect-converged` assertion fails, a transaction aborts or fails with
   no `expect` acknowledging it, a `converge` command is left blocked
   with residual drift, the logical and physical layers disagree at the
   end of the run, or (with --trace) the recorded span tree violates a
   lifecycle invariant — so scenarios double as regression tests.
   Admission overload aborts are the expected face of load shedding and
   never make the exit status unhealthy. *)

let usage () =
  prerr_endline "usage: tcloud_sim [--trace FILE] <scenario-file>";
  exit 2

let () =
  let trace_file, path =
    match Array.to_list Sys.argv with
    | [ _; path ] -> (None, path)
    | [ _; "--trace"; file; path ] | [ _; path; "--trace"; file ] ->
      (Some file, path)
    | _ -> usage ()
  in
  match
    try Experiments.Scenario.run_file ~record_trace:(trace_file <> None) path
    with Sys_error message -> prerr_endline message; exit 2
  with
  | Error message ->
    prerr_endline ("parse error: " ^ message);
    exit 2
  | Ok outcome ->
    List.iter print_endline outcome.Experiments.Scenario.lines;
    Printf.printf
      "\n%d transactions, %d failed expectations, %d unexpected \
       outcomes, %d blocked convergences, layers consistent: %b\n"
      outcome.Experiments.Scenario.transactions
      outcome.Experiments.Scenario.failed_expectations
      outcome.Experiments.Scenario.unexpected_outcomes
      outcome.Experiments.Scenario.blocked_convergences
      outcome.Experiments.Scenario.layers_consistent;
    let trace_errors =
      match trace_file, outcome.Experiments.Scenario.trace with
      | Some file, Some tracer ->
        let errors = Experiments.Common.dump_trace tracer ~file in
        Printf.printf "trace: %d spans -> %s, %d invariant violations\n"
          (Trace.span_count tracer) file (List.length errors);
        List.iter
          (fun e ->
            Printf.printf "  TRACE VIOLATION %s\n" (Trace.Check.error_to_string e))
          errors;
        List.length errors
      | _ -> 0
    in
    let healthy =
      outcome.Experiments.Scenario.failed_expectations = 0
      && outcome.Experiments.Scenario.unexpected_outcomes = 0
      && outcome.Experiments.Scenario.blocked_convergences = 0
      && outcome.Experiments.Scenario.layers_consistent
      && trace_errors = 0
    in
    exit (if healthy then 0 else 1)
