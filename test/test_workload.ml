(* Tests for the workload generators and the metrics library. *)

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let float_c = Alcotest.float 1e-6

(* ------------------------------------------------------------------ *)
(* EC2 trace (Figure 3 statistics) *)

let test_ec2_statistics () =
  let trace = Workload.Ec2.generate () in
  let stats = Workload.Ec2.stats trace in
  check int_c "duration" 3600 (Array.length trace);
  check int_c "total launches" 8417 stats.Workload.Ec2.total;
  check (Alcotest.float 0.01) "mean 2.34/s" 2.34 stats.Workload.Ec2.mean_per_second;
  check int_c "peak rate" 14 stats.Workload.Ec2.peak;
  check int_c "peak at 0.8h" 2880 stats.Workload.Ec2.peak_at_second;
  Array.iter (fun c -> if c < 0 then Alcotest.fail "negative count") trace

let test_ec2_deterministic () =
  let a = Workload.Ec2.generate () and b = Workload.Ec2.generate () in
  check bool_c "same seed same trace" true (a = b);
  let c = Workload.Ec2.generate ~seed:99 () in
  check bool_c "different seed differs" true (a <> c);
  (* Normalization holds for any seed. *)
  check int_c "total still exact" 8417 (Workload.Ec2.stats c).Workload.Ec2.total

let test_ec2_burst_shape () =
  let trace = Workload.Ec2.generate () in
  let window lo hi =
    let sum = ref 0 in
    for t = lo to hi - 1 do
      sum := !sum + trace.(t)
    done;
    float_of_int !sum /. float_of_int (hi - lo)
  in
  let baseline = window 0 2000 in
  let burst = window 2760 3000 in
  check bool_c "burst well above baseline" true (burst > baseline *. 3.)

let test_ec2_scale () =
  let trace = Workload.Ec2.generate () in
  let x3 = Workload.Ec2.scale trace 3 in
  check int_c "3x total" (3 * 8417) (Workload.Ec2.stats x3).Workload.Ec2.total;
  check int_c "3x peak" 42 (Workload.Ec2.stats x3).Workload.Ec2.peak

(* ------------------------------------------------------------------ *)
(* Hosting workload *)

let hosting_config =
  {
    Workload.Hosting.default_config with
    Workload.Hosting.rate_per_second = 2.0;
    duration_seconds = 500.;
  }

let ec2_normalized_prop =
  QCheck.Test.make ~name:"ec2 trace normalized for any seed" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let stats = Workload.Ec2.stats (Workload.Ec2.generate ~seed ()) in
      stats.Workload.Ec2.total = Workload.Ec2.total_launches
      && stats.Workload.Ec2.peak = Workload.Ec2.peak_rate
      && stats.Workload.Ec2.peak_at_second = Workload.Ec2.peak_second)

let test_hosting_mix () =
  let ops = Workload.Hosting.generate hosting_config in
  let mix = Workload.Hosting.mix_of ops in
  check bool_c "has spawns" true (mix.Workload.Hosting.n_spawn > 0);
  check bool_c "has starts" true (mix.Workload.Hosting.n_start > 0);
  check bool_c "has stops" true (mix.Workload.Hosting.n_stop > 0);
  check bool_c "has migrations" true (mix.Workload.Hosting.n_migrate > 0);
  check bool_c "has destroys" true (mix.Workload.Hosting.n_destroy > 0);
  (* Spawns dominate with the default weights. *)
  check bool_c "spawn heaviest" true
    (mix.Workload.Hosting.n_spawn >= mix.Workload.Hosting.n_migrate)

let test_hosting_times_increase () =
  let ops = Workload.Hosting.generate hosting_config in
  let rec increasing = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && increasing rest
    | [ _ ] | [] -> true
  in
  check bool_c "timestamps sorted" true (increasing ops);
  List.iter
    (fun (t, _) ->
      if t < 0. || t > 500. then Alcotest.fail "timestamp out of range")
    ops

let test_hosting_migrations_compatible () =
  let ops = Workload.Hosting.generate hosting_config in
  List.iter
    (fun (_, op) ->
      match op with
      | Workload.Hosting.Migrate { src; dst; _ } ->
        check int_c "same hypervisor group"
          (src mod hosting_config.Workload.Hosting.hypervisor_groups)
          (dst mod hosting_config.Workload.Hosting.hypervisor_groups)
      | _ -> ())
    ops

let test_hosting_submission () =
  let host_path i = Printf.sprintf "/vmRoot/host%05d" i in
  let storage_path i = Printf.sprintf "/storageRoot/storage%05d" i in
  let proc, args =
    Workload.Hosting.to_submission ~host_path ~storage_path
      (Workload.Hosting.Spawn { vm = "v"; host = 3; storage = 1; mem_mb = 512 })
  in
  check Alcotest.string "proc" "spawnVM" proc;
  check int_c "arity" 5 (List.length args);
  let proc2, args2 =
    Workload.Hosting.to_submission ~host_path ~storage_path
      (Workload.Hosting.Migrate { vm = "v"; src = 0; dst = 2 })
  in
  check Alcotest.string "proc2" "migrateVM" proc2;
  check int_c "arity2" 3 (List.length args2)

(* ------------------------------------------------------------------ *)
(* Metrics: series, CDF, gauges *)

let test_series_accumulation () =
  let s = Metrics.Series.create ~bucket:10. ~duration:60. in
  check int_c "buckets" 6 (Metrics.Series.bucket_count s);
  Metrics.Series.add s 5.;
  Metrics.Series.add s 7.;
  Metrics.Series.add ~v:3. s 15.;
  Metrics.Series.add s 1000. (* clamped to last bucket *);
  (match Metrics.Series.rows s with
   | (0., a) :: (10., b) :: _ ->
     check float_c "first bucket" 2. a;
     check float_c "second bucket" 3. b
   | _ -> Alcotest.fail "rows shape");
  check float_c "sum" 6. (Metrics.Series.sum s);
  check float_c "max" 3. (Metrics.Series.max_value s)

let test_series_render () =
  let s = Metrics.Series.create ~bucket:1. ~duration:2. in
  Metrics.Series.add s 0.;
  let text = Metrics.Series.render ~label:"x" s in
  check bool_c "mentions label" true
    (String.length text > 0 && String.split_on_char '\n' text <> [])

let test_cdf_quantiles () =
  let c = Metrics.Cdf.create () in
  List.iter (Metrics.Cdf.add c) (List.init 100 (fun i -> float_of_int (i + 1)));
  check int_c "count" 100 (Metrics.Cdf.count c);
  check float_c "median" 50. (Metrics.Cdf.quantile c 0.5);
  check float_c "p99" 99. (Metrics.Cdf.quantile c 0.99);
  check float_c "min" 1. (Metrics.Cdf.min_value c);
  check float_c "max" 100. (Metrics.Cdf.max_value c);
  check (Alcotest.float 0.001) "mean" 50.5 (Metrics.Cdf.mean c)

let test_cdf_points_monotone () =
  let c = Metrics.Cdf.create () in
  let rng = Random.State.make [| 4 |] in
  for _ = 1 to 1000 do
    Metrics.Cdf.add c (Random.State.float rng 10.)
  done;
  let pts = Metrics.Cdf.points c in
  let rec monotone = function
    | (v1, f1) :: ((v2, f2) :: _ as rest) ->
      v1 <= v2 && f1 <= f2 && monotone rest
    | [ _ ] | [] -> true
  in
  check bool_c "monotone CDF" true (monotone pts);
  (match List.rev pts with
   | (_, last_fraction) :: _ -> check float_c "ends at 1" 1. last_fraction
   | [] -> Alcotest.fail "no points")

let test_cdf_errors () =
  let c = Metrics.Cdf.create () in
  (* Out-of-range q raises even on an empty recorder. *)
  (match Metrics.Cdf.quantile c 1.5 with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ());
  Metrics.Cdf.add c 1.;
  match Metrics.Cdf.quantile c 1.5 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* An empty recorder answers placeholder zeros instead of raising, so a
   summary survives a run where load shedding leaves zero commits. *)
let test_cdf_empty_placeholder () =
  let c = Metrics.Cdf.create () in
  check float_c "median" 0. (Metrics.Cdf.quantile c 0.5);
  check float_c "p99" 0. (Metrics.Cdf.quantile c 0.99);
  check float_c "min" 0. (Metrics.Cdf.min_value c);
  check float_c "max" 0. (Metrics.Cdf.max_value c);
  check bool_c "render does not raise" true
    (String.length (Metrics.Cdf.render ~label:"empty" c) > 0)

let test_gauge_utilization () =
  let sim = Des.Sim.create () in
  let st = Des.Station.create sim in
  (* Jobs keep the station 50% busy: 1 s of work every 2 s. *)
  ignore
    (Des.Proc.spawn sim (fun () ->
         for _ = 1 to 10 do
           Des.Station.request st ~service:1.0;
           Des.Proc.sleep 1.0
         done));
  let series =
    Metrics.Gauge.utilization_series sim ~bucket:4. ~duration:20.
      ~busy:(fun () -> Des.Station.busy_time st)
  in
  ignore (Des.Sim.run ~until:21. sim);
  List.iter
    (fun (_, u) ->
      if u < 0.4 || u > 0.6 then
        Alcotest.failf "utilization %.2f outside [0.4, 0.6]" u)
    (Metrics.Series.rows series)

let test_gauge_rate () =
  let sim = Des.Sim.create () in
  let counter = ref 0. in
  ignore
    (Des.Proc.spawn sim (fun () ->
         for _ = 1 to 100 do
           Des.Proc.sleep 0.1;
           counter := !counter +. 1.
         done));
  let series =
    Metrics.Gauge.rate_series sim ~bucket:2. ~duration:10.
      ~count:(fun () -> !counter)
  in
  ignore (Des.Sim.run ~until:11. sim);
  List.iter
    (fun (_, r) ->
      if r < 9. || r > 11. then Alcotest.failf "rate %.2f outside [9, 11]" r)
    (Metrics.Series.rows series)

let suite =
  [
    ("ec2: Figure 3 statistics", `Quick, test_ec2_statistics);
    ("ec2: deterministic", `Quick, test_ec2_deterministic);
    ("ec2: burst shape", `Quick, test_ec2_burst_shape);
    ("ec2: scaling", `Quick, test_ec2_scale);
    QCheck_alcotest.to_alcotest ec2_normalized_prop;
    ("hosting: operation mix", `Quick, test_hosting_mix);
    ("hosting: timestamps", `Quick, test_hosting_times_increase);
    ("hosting: migrations compatible", `Quick, test_hosting_migrations_compatible);
    ("hosting: submissions", `Quick, test_hosting_submission);
    ("series: accumulation", `Quick, test_series_accumulation);
    ("series: render", `Quick, test_series_render);
    ("cdf: quantiles", `Quick, test_cdf_quantiles);
    ("cdf: monotone points", `Quick, test_cdf_points_monotone);
    ("cdf: errors", `Quick, test_cdf_errors);
    ("cdf: empty recorder placeholders", `Quick, test_cdf_empty_placeholder);
    ("gauge: utilization", `Quick, test_gauge_utilization);
    ("gauge: rate", `Quick, test_gauge_rate);
  ]

let () = Alcotest.run "workload" [ ("workload", suite) ]
