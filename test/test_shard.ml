(* Sharding: partition/ownership properties, client-side routing, and
   end-to-end cross-shard 2PC under coordinator failures.

   The property tests pin the contracts everything else leans on: the
   round-robin partition is total and stable (every replica and router
   agrees on one owner per path), and a request is cross-shard exactly
   when its path arguments span owners, coordinated by the lowest.  The
   platform tests drive a two-shard deployment through the presumed-abort
   protocol: a clean cross-shard migrate, a coordinator crash mid-2PC
   that must resume to the durably decided outcome, and a coordinator
   group lost before deciding, which the prepared participant resolves by
   presuming abort. *)

open Tropic

let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Generators *)

let roots_of_hosts hosts storages =
  List.init hosts Tcloud.Setup.compute_path
  @ List.init storages Tcloud.Setup.storage_path

let gen_partition =
  QCheck.Gen.(
    let* hosts = int_range 1 12 in
    let* storages = int_range 0 3 in
    let* shards = int_range 1 6 in
    return (hosts, storages, shards))

let arb_partition =
  QCheck.make gen_partition ~print:(fun (h, s, k) ->
      Printf.sprintf "hosts=%d storages=%d shards=%d" h s k)

(* ------------------------------------------------------------------ *)
(* Partition / ownership properties *)

let prop_owner_total_and_stable =
  QCheck.Test.make ~name:"owner_of is total, bounded and replica-agreed"
    ~count:200 arb_partition (fun (hosts, storages, shards) ->
      let roots = roots_of_hosts hosts storages in
      let shard0 = Shard.make ~sid:0 ~shards roots in
      let deep root =
        [
          root;
          Data.Path.child root "vm1";
          Data.Path.child (Data.Path.child root "vm1") "state";
        ]
      in
      List.for_all
        (fun path ->
          let owner = Shard.owner_of shard0 path in
          owner >= 0
          && owner < shard0.Shard.count
          (* Every view of the partition agrees. *)
          && List.for_all
               (fun sid ->
                 Shard.owner_of (Shard.view shard0 ~sid) path = owner)
               (List.init shard0.Shard.count Fun.id)
          (* Deterministic: recomputing from scratch agrees. *)
          && Shard.owner_of (Shard.make ~sid:0 ~shards roots) path = owner)
        (List.concat_map deep roots))

let prop_partition_covers_all_shards =
  QCheck.Test.make
    ~name:"round-robin gives every shard a root when roots >= shards"
    ~count:200 arb_partition (fun (hosts, storages, shards) ->
      let roots = roots_of_hosts hosts storages in
      let shard = Shard.make ~sid:0 ~shards roots in
      QCheck.assume (List.length roots >= shard.Shard.count);
      List.for_all
        (fun sid -> Shard.roots_of shard sid <> [])
        (List.init shard.Shard.count Fun.id))

let prop_singleton_owns_everything =
  QCheck.Test.make ~name:"count=1 owns every path" ~count:50 arb_partition
    (fun (hosts, storages, _) ->
      let roots = roots_of_hosts hosts storages in
      let shard = Shard.singleton ~roots in
      List.for_all (Shard.owns shard) roots
      && Shard.owns shard (Data.Path.v "/no/such/subtree"))

(* ------------------------------------------------------------------ *)
(* Router properties *)

let host_str h = Data.Path.to_string (Tcloud.Setup.compute_path h)

let gen_request =
  QCheck.Gen.(
    let* hosts = int_range 2 12 in
    let* shards = int_range 1 6 in
    let* picks = list_size (int_range 1 4) (int_range 0 (hosts - 1)) in
    return (hosts, shards, picks))

let arb_request =
  QCheck.make gen_request ~print:(fun (h, k, picks) ->
      Printf.sprintf "hosts=%d shards=%d picks=[%s]" h k
        (String.concat ";" (List.map string_of_int picks)))

let prop_router_cross_iff_owners_span =
  QCheck.Test.make
    ~name:"classify = Cross iff path args span owners; coord is lowest"
    ~count:300 arb_request (fun (hosts, shards, picks) ->
      let roots = roots_of_hosts hosts 2 in
      let shard = Shard.make ~sid:0 ~shards roots in
      (* Mix path args with non-path args the router must ignore. *)
      let args =
        Data.Value.Str "vm1" :: Data.Value.Int 512
        :: List.map (fun h -> Data.Value.Str (host_str h)) picks
      in
      let owners =
        List.sort_uniq compare
          (List.map
             (fun h -> Shard.owner_of shard (Tcloud.Setup.compute_path h))
             picks)
      in
      match Router.classify shard ~args with
      | Router.Single sid ->
        List.length owners <= 1
        && (owners = [] || owners = [ sid ])
        && not (Router.is_cross shard ~args)
      | Router.Cross { coord; participants } ->
        List.length owners > 1
        && coord = List.hd owners
        && List.sort compare (coord :: participants) = owners
        && Router.is_cross shard ~args)

let prop_router_pathless_routes_to_zero =
  QCheck.Test.make ~name:"pathless requests route to shard 0" ~count:50
    arb_partition (fun (hosts, storages, shards) ->
      let shard = Shard.make ~sid:0 ~shards (roots_of_hosts hosts storages) in
      Router.classify shard ~args:[ Data.Value.Str "vm"; Data.Value.Int 1 ]
      = Router.Single 0)

(* ------------------------------------------------------------------ *)
(* End-to-end 2PC on a two-shard platform *)

(* All-xen so host0 -> host1 migration is legal under the §6.2 VM-type
   rule (hypervisors otherwise alternate with host parity, which under
   two shards coincides with shard parity). *)
let twoshard_size =
  { Tcloud.Setup.small with Tcloud.Setup.hypervisors = [ "xen" ] }

let quick_coord_config =
  { Coord.Types.default_config with Coord.Types.default_session_timeout = 5.0 }

let twoshard_spec ?(prepare_timeout = 20.) () =
  {
    Platform.default_spec with
    Platform.controllers = 2;
    workers = 2;
    shards = 2;
    mode = Platform.Full;
    coord_config = quick_coord_config;
    controller_config =
      {
        Tcloud.Setup.controller_config with
        Controller.twopc_prepare_timeout = prepare_timeout;
      };
    controller_session_timeout = 3.0;
  }

let with_two_shards ?prepare_timeout ?(horizon = 600.) ?(seed = 7) scenario =
  let sim = Des.Sim.create ~seed () in
  let inv =
    Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim) twoshard_size
  in
  let platform =
    Platform.create
      (twoshard_spec ?prepare_timeout ())
      inv.Tcloud.Setup.env ~initial_tree:inv.Tcloud.Setup.tree
      ~devices:inv.Tcloud.Setup.devices sim
  in
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"scenario" sim (fun () ->
         scenario platform inv;
         finished := true));
  ignore (Des.Sim.run ~until:horizon sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     Alcotest.failf "process %s crashed: %s" who (Printexc.to_string exn));
  if not !finished then Alcotest.fail "scenario did not finish before horizon"

let host_path h = Tcloud.Setup.compute_path h

let spawn_on platform ~vm ~host =
  let args =
    Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img" ~mem_mb:512
      ~storage:(Data.Path.to_string (Tcloud.Setup.storage_path 0))
      ~host:(Data.Path.to_string (host_path host))
  in
  match Platform.run_txn platform ~proc:"spawnVM" ~args with
  | Txn.Committed -> ()
  | other ->
    Alcotest.failf "spawn %s: expected committed, got %s" vm
      (Txn.state_to_string other)

let migrate_args ~src ~dst ~vm =
  Tcloud.Procs.migrate_vm_args
    ~src:(Data.Path.to_string (host_path src))
    ~dst:(Data.Path.to_string (host_path dst))
    ~vm

(* Poll until [f ()] or [tries] sleeps of [gap] elapse. *)
let await_cond ?(tries = 400) ?(gap = 0.1) f =
  let n = ref 0 in
  while (not (f ())) && !n < tries do
    Des.Proc.sleep gap;
    incr n
  done;
  f ()

let check_converged platform inv hosts =
  let tree = Platform.composite_tree platform in
  List.iter
    (fun h ->
      let root, compute = inv.Tcloud.Setup.computes.(h) in
      let logical =
        match Data.Tree.subtree tree root with
        | Ok node -> node
        | Error e -> Alcotest.fail (Data.Tree.error_to_string e)
      in
      Alcotest.(check bool)
        (Printf.sprintf "host %d layers converge" h)
        true
        (Data.Tree.equal logical
           (Devices.Device.export (Devices.Compute.device compute))))
    hosts

let vm_host inv vm =
  let found = ref [] in
  Array.iteri
    (fun i (_, compute) ->
      if Devices.Compute.vm_state compute vm <> None then found := i :: !found)
    inv.Tcloud.Setup.computes;
  !found

(* host0 is owned by shard 1 and host1 by shard 0 under the two-shard
   round-robin (switch, storage0, storage1, host0, host1, ... alternate),
   so a host0 -> host1 migration always spans both shards. *)
let cross_shard_pair platform =
  let src = 0 and dst = 1 in
  Alcotest.(check bool)
    "src/dst on different shards" true
    (Platform.shard_of_path platform (host_path src)
    <> Platform.shard_of_path platform (host_path dst));
  (src, dst)

let test_cross_shard_migrate_commits () =
  with_two_shards (fun platform inv ->
      let src, dst = cross_shard_pair platform in
      spawn_on platform ~vm:"web1" ~host:src;
      (match
         Platform.run_txn platform ~proc:"migrateVM"
           ~args:(migrate_args ~src ~dst ~vm:"web1")
       with
       | Txn.Committed -> ()
       | other ->
         Alcotest.failf "migrate: expected committed, got %s"
           (Txn.state_to_string other));
      Alcotest.(check (list int)) "vm lives only on dst" [ dst ]
        (vm_host inv "web1");
      check_converged platform inv [ src; dst ];
      let coord_sid = Platform.shard_of_path platform (host_path dst) in
      let part_sid = Platform.shard_of_path platform (host_path src) in
      let coord = Platform.await_shard_leader platform coord_sid in
      let part = Platform.await_shard_leader platform part_sid in
      Alcotest.(check bool) "coordinator started a 2pc" true
        ((Controller.stats coord).Controller.twopc_started >= 1);
      Alcotest.(check bool) "coordinator committed a 2pc" true
        ((Controller.stats coord).Controller.twopc_committed >= 1);
      Alcotest.(check bool) "participant voted" true
        ((Controller.stats part).Controller.twopc_prepares >= 1))

let test_coordinator_crash_resumes_to_decided_outcome () =
  with_two_shards (fun platform inv ->
      let src, dst = cross_shard_pair platform in
      spawn_on platform ~vm:"web2" ~host:src;
      let coord_sid = Platform.shard_of_path platform (host_path dst) in
      let gid =
        Platform.submit platform ~proc:"migrateVM"
          ~args:(migrate_args ~src ~dst ~vm:"web2")
      in
      (* Wait until the coordinator has begun the prepare round, then
         crash it mid-protocol and bring the slot back. *)
      let started () =
        match Platform.shard_leader platform coord_sid with
        | None -> false
        | Some c -> (Controller.stats c).Controller.twopc_started >= 1
      in
      Alcotest.(check bool) "2pc reached prepare" true (await_cond started);
      (match Platform.shard_leader_index platform coord_sid with
       | None -> Alcotest.fail "no coordinator leader to crash"
       | Some i ->
         Platform.kill_controller platform i;
         Des.Proc.sleep 8.0;
         Platform.restart_controller platform i);
      let state = Platform.await platform gid in
      (* Either outcome is legal — what matters is that recovery resumed
         the in-doubt transaction to one durable verdict applied on both
         shards: exactly one host has the VM, and both layers agree. *)
      (match state with
       | Txn.Committed ->
         Alcotest.(check (list int)) "committed => vm only on dst" [ dst ]
           (vm_host inv "web2")
       | Txn.Aborted _ ->
         Alcotest.(check (list int)) "aborted => vm only on src" [ src ]
           (vm_host inv "web2")
       | other ->
         Alcotest.failf "expected committed or aborted, got %s"
           (Txn.state_to_string other));
      Alcotest.(check bool) "quiesced" true
        (await_cond (fun () ->
             match Platform.shard_leader platform coord_sid with
             | None -> false
             | Some c -> Controller.inflight c = 0));
      check_converged platform inv [ src; dst ])

let test_presumed_abort_on_lost_coordinator () =
  with_two_shards ~prepare_timeout:2.0 (fun platform inv ->
      let src, dst = cross_shard_pair platform in
      spawn_on platform ~vm:"web3" ~host:src;
      let coord_sid = Platform.shard_of_path platform (host_path dst) in
      let part_sid = Platform.shard_of_path platform (host_path src) in
      let gid =
        Platform.submit platform ~proc:"migrateVM"
          ~args:(migrate_args ~src ~dst ~vm:"web3")
      in
      (* Let the participant cast its vote, then take the whole
         coordinator replica group down before any decision lands. *)
      let voted () =
        match Platform.shard_leader platform part_sid with
        | None -> false
        | Some c -> (Controller.stats c).Controller.twopc_prepares >= 1
      in
      Alcotest.(check bool) "participant voted" true (await_cond voted);
      let n = (Platform.spec platform).Platform.controllers in
      let slots = List.init n (fun k -> (coord_sid * n) + k) in
      List.iter (Platform.kill_controller platform) slots;
      (* The prepared participant owns the race now: past the prepare
         timeout it creates the decision record itself — as Abort. *)
      let participant_aborted () =
        match Platform.shard_leader platform part_sid with
        | None -> false
        | Some c -> (Controller.stats c).Controller.twopc_aborted >= 1
      in
      Alcotest.(check bool) "participant presumed abort" true
        (await_cond participant_aborted);
      List.iter (Platform.restart_controller platform) slots;
      (match Platform.await platform gid with
       | Txn.Aborted _ -> ()
       | other ->
         Alcotest.failf "expected aborted, got %s" (Txn.state_to_string other));
      Alcotest.(check (list int)) "vm stayed on src" [ src ]
        (vm_host inv "web3");
      (match Devices.Compute.vm_state (snd inv.Tcloud.Setup.computes.(src)) "web3"
       with
       | Some `Running -> ()
       | other ->
         Alcotest.failf "expected web3 running on src, got %s"
           (match other with
            | Some `Stopped -> "stopped"
            | None -> "absent"
            | Some `Running -> "running"));
      Alcotest.(check bool) "quiesced" true
        (await_cond (fun () ->
             match Platform.shard_leader platform coord_sid with
             | None -> false
             | Some c -> Controller.inflight c = 0));
      check_converged platform inv [ src; dst ])

let test_single_shard_request_stays_local () =
  with_two_shards (fun platform _inv ->
      let src, _ = cross_shard_pair platform in
      spawn_on platform ~vm:"solo" ~host:src;
      let host = Data.Path.to_string (host_path src) in
      (match
         Platform.run_txn platform ~proc:"stopVM"
           ~args:(Tcloud.Procs.stop_vm_args ~host ~vm:"solo")
       with
       | Txn.Committed -> ()
       | other ->
         Alcotest.failf "stop: expected committed, got %s"
           (Txn.state_to_string other));
      (* A host-local request never opens a 2PC on the owning shard. *)
      let sid = Platform.shard_of_path platform (host_path src) in
      let leader = Platform.await_shard_leader platform sid in
      Alcotest.check int_c "no coordination started on owner" 0
        (Controller.stats leader).Controller.twopc_started)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ?rand:None) tests)

let () =
  ignore bool_c;
  Alcotest.run "shard"
    [
      qsuite "partition"
        [
          prop_owner_total_and_stable;
          prop_partition_covers_all_shards;
          prop_singleton_owns_everything;
        ];
      qsuite "router"
        [ prop_router_cross_iff_owners_span; prop_router_pathless_routes_to_zero ];
      ( "2pc",
        [
          Alcotest.test_case "cross-shard migrate commits" `Quick
            test_cross_shard_migrate_commits;
          Alcotest.test_case "coordinator crash resumes to decided outcome"
            `Quick test_coordinator_crash_resumes_to_decided_outcome;
          Alcotest.test_case "presumed abort on lost coordinator" `Quick
            test_presumed_abort_on_lost_coordinator;
          Alcotest.test_case "single-shard request stays local" `Quick
            test_single_shard_request_stays_local;
        ] );
    ]
