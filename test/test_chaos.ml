(* Smoke tests for the chaos fault-exploration subsystem: a small stock
   sweep must come back clean, the no-constraints ablation must be
   convicted, and a run must replay bit-identically from its seed. *)

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let config = Chaos.Runner.quick_config

let test_schedule_presets () =
  check bool_c "at least four presets" true
    (List.length Chaos.Schedule.presets >= 4);
  List.iter
    (fun s ->
      check bool_c
        (Printf.sprintf "%s is found by name" s.Chaos.Schedule.name)
        true
        (Chaos.Schedule.find s.Chaos.Schedule.name = Some s);
      check bool_c
        (Printf.sprintf "%s ends before the quick horizon" s.Chaos.Schedule.name)
        true
        (Chaos.Schedule.end_time s < config.Chaos.Runner.horizon))
    Chaos.Schedule.presets

let test_stock_sweep_clean () =
  let sweep =
    Chaos.Runner.sweep config ~schedules:Chaos.Schedule.presets
      ~seeds:(List.init 10 (fun i -> i + 1))
  in
  check int_c "ten runs" 10 (List.length sweep.Chaos.Runner.runs);
  List.iter
    (fun r ->
      check int_c
        (Printf.sprintf "seed %d (%s): no violations" r.Chaos.Runner.seed
           r.Chaos.Runner.schedule)
        0
        (List.length r.Chaos.Runner.violations);
      check bool_c
        (Printf.sprintf "seed %d (%s): workload made progress"
           r.Chaos.Runner.seed r.Chaos.Runner.schedule)
        true (r.Chaos.Runner.committed > 0))
    sweep.Chaos.Runner.runs

let test_no_constraints_convicted () =
  let config = { config with Chaos.Runner.build = Chaos.Runner.No_constraints } in
  let sweep =
    Chaos.Runner.sweep config ~schedules:Chaos.Schedule.presets
      ~seeds:(List.init 5 (fun i -> i + 1))
  in
  check bool_c "the ablation is convicted" true
    (sweep.Chaos.Runner.violating <> []);
  List.iter
    (fun r ->
      let line = Chaos.Runner.reproducer r in
      check bool_c "reproducer names the build" true
        (Str_contains.contains line "no-constraints");
      check bool_c "reproducer names the seed" true
        (Str_contains.contains line (string_of_int r.Chaos.Runner.seed)))
    sweep.Chaos.Runner.violating

let hang_storm =
  match Chaos.Schedule.find "hang-storm" with
  | Some s -> s
  | None -> Alcotest.fail "hang-storm preset missing"

(* With the robustness layer on, hung device invocations and crashed
   workers are rescued (deadline/retry below the watchdog, TERM→KILL
   above it): the sweep stays clean and the watchdog counters show it
   actually fired on at least one seed. *)
let test_hang_storm_clean () =
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ hang_storm ]
      ~seeds:(List.init 4 (fun i -> i + 1))
  in
  List.iter
    (fun r ->
      check int_c
        (Printf.sprintf "seed %d: no violations" r.Chaos.Runner.seed)
        0
        (List.length r.Chaos.Runner.violations))
    sweep.Chaos.Runner.runs;
  let rescued =
    List.exists
      (fun r ->
        r.Chaos.Runner.auto_terms > 0 || r.Chaos.Runner.timeouts > 0
        || r.Chaos.Runner.retries > 0)
      sweep.Chaos.Runner.runs
  in
  check bool_c "robustness layer exercised on some seed" true rescued

(* Stripping the watchdog (and the workers' retry/deadline policy) leaves
   hang-storm transactions wedged with their locks held: the stuck-lock /
   quiescence invariants must convict. *)
let test_no_watchdog_convicted () =
  let config = { config with Chaos.Runner.build = Chaos.Runner.No_watchdog } in
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ hang_storm ]
      ~seeds:(List.init 4 (fun i -> i + 1))
  in
  check bool_c "the ablation is convicted" true
    (sweep.Chaos.Runner.violating <> []);
  List.iter
    (fun r ->
      check bool_c "reproducer names the build" true
        (Str_contains.contains (Chaos.Runner.reproducer r) "no-watchdog"))
    sweep.Chaos.Runner.violating

let flap_storm =
  match Chaos.Schedule.find "flap-storm" with
  | Some s -> s
  | None -> Alcotest.fail "flap-storm preset missing"

(* With the overload layer on, the flapping host trips its breaker and
   the request storm is shed at the watermarks: the sweep stays clean and
   the shed/breaker counters show the layer actually engaged. *)
let test_flap_storm_clean () =
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ flap_storm ]
      ~seeds:(List.init 4 (fun i -> i + 1))
  in
  List.iter
    (fun r ->
      check int_c
        (Printf.sprintf "seed %d: no violations" r.Chaos.Runner.seed)
        0
        (List.length r.Chaos.Runner.violations))
    sweep.Chaos.Runner.runs;
  let engaged =
    List.exists
      (fun r -> r.Chaos.Runner.sheds > 0 || r.Chaos.Runner.breaker_trips > 0)
      sweep.Chaos.Runner.runs
  in
  check bool_c "overload layer exercised on some seed" true engaged

(* Stripping health scoring, breakers and admission control lets the
   storm queue unboundedly behind the flapping host: the bounded-queue
   invariant must convict. *)
let test_no_breaker_convicted () =
  let config = { config with Chaos.Runner.build = Chaos.Runner.No_breaker } in
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ flap_storm ]
      ~seeds:(List.init 4 (fun i -> i + 1))
  in
  check bool_c "the ablation is convicted" true
    (sweep.Chaos.Runner.violating <> []);
  List.iter
    (fun r ->
      check bool_c "reproducer names the build" true
        (Str_contains.contains (Chaos.Runner.reproducer r) "no-breaker"))
    sweep.Chaos.Runner.violating

let plan_crash =
  match Chaos.Schedule.find "plan-crash" with
  | Some s -> s
  | None -> Alcotest.fail "plan-crash preset missing"

(* Leader and worker crashes landing mid-plan: the executor re-diffs
   after fail-over and converges both goal phases exactly — including the
   capacity swap that needs a staging hop — so the sweep stays clean. *)
let test_plan_crash_clean () =
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ plan_crash ]
      ~seeds:(List.init 3 (fun i -> i + 1))
  in
  List.iter
    (fun r ->
      check int_c
        (Printf.sprintf "seed %d: no violations" r.Chaos.Runner.seed)
        0
        (List.length r.Chaos.Runner.violations);
      check bool_c
        (Printf.sprintf "seed %d: plan made progress" r.Chaos.Runner.seed)
        true (r.Chaos.Runner.committed > 0))
    sweep.Chaos.Runner.runs

(* Dropping the planner's dependency edges makes the capacity swap
   livelock (both migrations abort on the memory constraint every round):
   the plan-converged and exactly-once invariants must convict. *)
let test_no_plan_deps_convicted () =
  let config = { config with Chaos.Runner.build = Chaos.Runner.No_plan_deps } in
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ plan_crash ]
      ~seeds:(List.init 2 (fun i -> i + 1))
  in
  check bool_c "the ablation is convicted" true
    (sweep.Chaos.Runner.violating <> []);
  List.iter
    (fun r ->
      check bool_c "reproducer names the build" true
        (Str_contains.contains (Chaos.Runner.reproducer r) "no-plan-deps");
      check bool_c "a plan-converged violation is reported" true
        (List.exists
           (fun v -> v.Chaos.Invariant.invariant = "plan-converged")
           r.Chaos.Runner.violations))
    sweep.Chaos.Runner.violating

let shard_crash =
  match Chaos.Schedule.find "shard-crash" with
  | Some s -> s
  | None -> Alcotest.fail "shard-crash preset missing"

(* Two shards under the migrate workload: every chain crosses the shard
   boundary, so 2PC runs continuously while shard leaders crash between
   prepare and decision.  With the decision record, recovery resumes
   every in-doubt transaction to its durably decided outcome: the sweep
   stays clean and the 2PC counters show the protocol actually ran. *)
let test_shard_crash_clean () =
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ shard_crash ]
      ~seeds:(List.init 2 (fun i -> i + 1))
  in
  List.iter
    (fun r ->
      check int_c
        (Printf.sprintf "seed %d: no violations" r.Chaos.Runner.seed)
        0
        (List.length r.Chaos.Runner.violations);
      check bool_c
        (Printf.sprintf "seed %d: cross-shard commits happened"
           r.Chaos.Runner.seed)
        true
        (r.Chaos.Runner.twopc_committed > 0))
    sweep.Chaos.Runner.runs;
  let prepared =
    List.exists (fun r -> r.Chaos.Runner.twopc_prepares > 0) sweep.Chaos.Runner.runs
  in
  check bool_c "participants voted on some seed" true prepared

(* Skipping the decision record turns a coordinator crash between a
   participant's commit and its own into split-brain: the exactly-once
   and convergence invariants must convict. *)
let test_no_2pc_convicted () =
  let config = { config with Chaos.Runner.build = Chaos.Runner.No_2pc } in
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ shard_crash ]
      ~seeds:(List.init 3 (fun i -> i + 1))
  in
  check bool_c "the ablation is convicted" true
    (sweep.Chaos.Runner.violating <> []);
  List.iter
    (fun r ->
      check bool_c "reproducer names the build" true
        (Str_contains.contains (Chaos.Runner.reproducer r) "no-2pc"))
    sweep.Chaos.Runner.violating

let member_churn =
  match Chaos.Schedule.find "member-churn" with
  | Some s -> s
  | None -> Alcotest.fail "member-churn preset missing"

(* Replicas removed and re-added within one leader term, with a delayed-
   egress window keeping the old incarnation's high-match append replies
   in flight across the churn, plus a crash and a partition between
   churns.  With replication session ids the stale echoes are rejected
   (the counters prove the window was actually exercised) and the sweep
   stays clean. *)
let test_member_churn_clean () =
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ member_churn ]
      ~seeds:(List.init 4 (fun i -> i + 1))
  in
  List.iter
    (fun r ->
      check int_c
        (Printf.sprintf "seed %d: no violations" r.Chaos.Runner.seed)
        0
        (List.length r.Chaos.Runner.violations);
      check bool_c
        (Printf.sprintf "seed %d: membership actually churned"
           r.Chaos.Runner.seed)
        true
        (r.Chaos.Runner.joins > 0 && r.Chaos.Runner.leaves > 0
        && r.Chaos.Runner.catchups > 0))
    sweep.Chaos.Runner.runs;
  let fenced =
    List.exists (fun r -> r.Chaos.Runner.stale_sessions > 0)
      sweep.Chaos.Runner.runs
  in
  check bool_c "stale session echoes rejected on some seed" true fenced

(* Without session ids the stale echoes are honoured: the leader's
   progress entry for the rejoined node runs ahead of its actual log, and
   the progress-integrity invariant convicts. *)
let test_no_session_id_convicted () =
  let config = { config with Chaos.Runner.build = Chaos.Runner.No_session_ids } in
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ member_churn ]
      ~seeds:(List.init 3 (fun i -> i + 1))
  in
  check bool_c "the ablation is convicted" true
    (sweep.Chaos.Runner.violating <> []);
  List.iter
    (fun r ->
      check bool_c "reproducer names the build" true
        (Str_contains.contains (Chaos.Runner.reproducer r) "no-session-id"))
    sweep.Chaos.Runner.violating

let commit_storm =
  match Chaos.Schedule.find "commit-storm" with
  | Some s -> s
  | None -> Alcotest.fail "commit-storm preset missing"

(* A submission storm into coordination-leader crashes timed inside the
   group-commit window: quorum-gated acks keep every acked submission
   durable, so the stock sweep stays clean — and the flush counters prove
   batches actually formed under the storm. *)
let test_commit_storm_clean () =
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ commit_storm ] ~seeds:[ 1; 2 ]
  in
  List.iter
    (fun r ->
      check int_c
        (Printf.sprintf "seed %d: no violations" r.Chaos.Runner.seed)
        0
        (List.length r.Chaos.Runner.violations);
      check bool_c
        (Printf.sprintf "seed %d: the storm committed work"
           r.Chaos.Runner.seed)
        true
        (r.Chaos.Runner.committed > 0);
      check bool_c
        (Printf.sprintf "seed %d: batches formed" r.Chaos.Runner.seed)
        true
        (r.Chaos.Runner.group_flushes > 0
        && r.Chaos.Runner.acks_deferred > 0))
    sweep.Chaos.Runner.runs

(* Acking a submission before its batch reaches quorum turns a leader
   crash inside the window into silent loss: the acked-durable invariant
   must convict the ablation on some seed. *)
let test_unsafe_ack_convicted () =
  let config = { config with Chaos.Runner.build = Chaos.Runner.Unsafe_ack } in
  let sweep =
    Chaos.Runner.sweep config ~schedules:[ commit_storm ]
      ~seeds:(List.init 4 (fun i -> i + 1))
  in
  check bool_c "the ablation is convicted" true
    (sweep.Chaos.Runner.violating <> []);
  check bool_c "an acked-durable violation is reported" true
    (List.exists
       (fun r ->
         List.exists
           (fun v -> v.Chaos.Invariant.invariant = "acked-durable")
           r.Chaos.Runner.violations)
       sweep.Chaos.Runner.violating);
  List.iter
    (fun r ->
      check bool_c "unsafe acks were actually released" true
        (r.Chaos.Runner.unsafe_acks > 0);
      check bool_c "reproducer names the build" true
        (Str_contains.contains (Chaos.Runner.reproducer r) "unsafe-ack"))
    sweep.Chaos.Runner.violating

let test_replay_deterministic () =
  let schedule = List.nth Chaos.Schedule.presets 4 in
  let run () = Chaos.Runner.run_one ~trace:true config ~schedule ~seed:42 in
  let a = run () and b = run () in
  check bool_c "identical traces" true (a.Chaos.Runner.trace = b.Chaos.Runner.trace);
  check bool_c "identical violations" true
    (List.map Chaos.Invariant.violation_to_string a.Chaos.Runner.violations
    = List.map Chaos.Invariant.violation_to_string b.Chaos.Runner.violations);
  check int_c "identical commit count" a.Chaos.Runner.committed
    b.Chaos.Runner.committed;
  check int_c "identical fault count" a.Chaos.Runner.injected
    b.Chaos.Runner.injected

let suite =
  [
    ("schedule: presets well-formed", `Quick, test_schedule_presets);
    ("sweep: stock build is clean", `Slow, test_stock_sweep_clean);
    ("sweep: no-constraints build convicted", `Slow, test_no_constraints_convicted);
    ("sweep: hang-storm clean with watchdog", `Slow, test_hang_storm_clean);
    ("sweep: no-watchdog build convicted", `Slow, test_no_watchdog_convicted);
    ("sweep: flap-storm clean with breakers", `Slow, test_flap_storm_clean);
    ("sweep: no-breaker build convicted", `Slow, test_no_breaker_convicted);
    ("sweep: plan-crash clean with ordered plans", `Slow, test_plan_crash_clean);
    ("sweep: no-plan-deps build convicted", `Slow, test_no_plan_deps_convicted);
    ("sweep: shard-crash clean with 2PC", `Slow, test_shard_crash_clean);
    ("sweep: no-2pc build convicted", `Slow, test_no_2pc_convicted);
    ("sweep: member-churn clean with session ids", `Slow, test_member_churn_clean);
    ("sweep: no-session-id build convicted", `Slow, test_no_session_id_convicted);
    ("sweep: commit-storm clean with group commit", `Slow, test_commit_storm_clean);
    ("sweep: unsafe-ack build convicted", `Slow, test_unsafe_ack_convicted);
    ("replay: same seed, same run", `Slow, test_replay_deterministic);
  ]

let () = Alcotest.run "chaos" [ ("chaos", suite) ]
