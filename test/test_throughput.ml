(* Tests for the commit hot path behind the saturation-throughput bench:
   the coordination-service group-commit batcher (quorum-gated acks,
   size/timeout flush triggers, exactly-once across leader crashes, the
   unsafe-ack durability ablation) and the controller's deduplicated
   wake-on-release passes. *)

open Coord

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let cfg ?(group_size = Types.default_config.Types.group_size)
    ?(group_timeout = Types.default_config.Types.group_timeout)
    ?(unsafe_ack = false) () =
  { Types.default_config with Types.group_size; group_timeout; unsafe_ack }

(* Run [scenario] as a process against a fresh ensemble; the simulation is
   bounded by [horizon] because replicas and pingers run forever. *)
let with_ensemble ?(config = Types.default_config) ?(replicas = 3)
    ?(horizon = 300.) ?(seed = 7) scenario =
  let sim = Des.Sim.create ~seed () in
  let ens = Ensemble.create ~replicas ~config sim in
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"scenario" sim (fun () ->
         scenario sim ens;
         finished := true));
  ignore (Des.Sim.run ~until:horizon sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     Alcotest.failf "process %s crashed: %s" who (Printexc.to_string exn));
  if not !finished then Alcotest.fail "scenario did not finish before horizon"

let crash_leader ens =
  match Ensemble.leader_id ens with
  | Some id -> Ensemble.crash_replica ens id
  | None -> Alcotest.fail "no leader to crash"

let ok_write what = function
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "%s: %s" what (Format.asprintf "%a" Types.pp_op_error e)

(* ------------------------------------------------------------------ *)
(* Quorum-gated acks *)

(* An ack is a durability promise: crash the leader the instant a write
   returns and the value must survive the fail-over. *)
let test_ack_implies_quorum_durable () =
  with_ensemble (fun _sim ens ->
      ignore (Ensemble.await_leader ens);
      let c = Ensemble.connect ens ~name:"writer" () in
      ok_write "acked write" (Client.write c ~key:"/acked" ~value:"v1" ());
      crash_leader ens;
      ignore (Ensemble.await_leader ens);
      let r = Ensemble.connect ens ~name:"reader" () in
      (* The new leader serves reads from applied state; give it a few
         rounds to apply the replicated tail. *)
      let rec read tries =
        match Client.get r "/acked" with
        | Some (v, _) -> v
        | None ->
          if tries = 0 then Alcotest.fail "acked write lost by fail-over"
          else begin
            Des.Proc.sleep 1.0;
            read (tries - 1)
          end
      in
      check Alcotest.string "value survives the crash" "v1" (read 30))

(* Crash the leader while the submission is still parked in the open
   batch: the client must not have been acked, and the retry against the
   new leader must land the item exactly once (session dedup). *)
let test_crash_before_flush_no_ack_exactly_once () =
  let config = cfg ~group_size:100 ~group_timeout:0.5 () in
  with_ensemble ~config (fun sim ens ->
      ignore (Ensemble.await_leader ens);
      let c = Ensemble.connect ens ~name:"submitter" () in
      let acked_at = ref None in
      let t0 = Des.Sim.now sim in
      ignore
        (Des.Proc.spawn ~name:"writer" sim (fun () ->
             ignore (Recipes.enqueue c ~queue:"/q" "item");
             acked_at := Some (Des.Sim.now sim)));
      Des.Proc.sleep 0.1;
      check bool_c "no ack while the batch is parked" true (!acked_at = None);
      crash_leader ens;
      ignore (Ensemble.await_leader ens);
      let deadline = t0 +. 120. in
      while !acked_at = None && Des.Sim.now sim < deadline do
        Des.Proc.sleep 0.5
      done;
      check bool_c "retry acked after fail-over" true (!acked_at <> None);
      let r = Ensemble.connect ens ~name:"reader" () in
      let rec children tries =
        let kids = Client.get_children r "/q" in
        if kids <> [] || tries = 0 then kids
        else begin
          Des.Proc.sleep 1.0;
          children (tries - 1)
        end
      in
      check int_c "exactly one item (no loss, no dup)" 1
        (List.length (children 30)))

(* The durability ablation answers at enqueue: the ack arrives before the
   batch could have flushed, and a leader crash inside the window loses
   the acked write. *)
let test_unsafe_ack_acks_early_and_loses () =
  let config = cfg ~group_size:100 ~group_timeout:0.5 ~unsafe_ack:true () in
  with_ensemble ~config (fun sim ens ->
      ignore (Ensemble.await_leader ens);
      let c = Ensemble.connect ens ~name:"submitter" () in
      let acked_at = ref None in
      ignore
        (Des.Proc.spawn ~name:"writer" sim (fun () ->
             match Client.write c ~key:"/risky" ~value:"v" () with
             | Ok _ -> acked_at := Some (Des.Sim.now sim)
             | Error _ -> ()));
      Des.Proc.sleep 0.1;
      check bool_c "acked before the batch flushed" true (!acked_at <> None);
      check bool_c "ablation counted the early ack" true
        ((Ensemble.group_stats ens).Types.unsafe_acks > 0);
      crash_leader ens;
      ignore (Ensemble.await_leader ens);
      Des.Proc.sleep 5.0;
      let r = Ensemble.connect ens ~name:"reader" () in
      check bool_c "acked write is gone (the ablation's lie)" true
        (Client.get r "/risky" = None))

(* ------------------------------------------------------------------ *)
(* Flush triggers: size or timeout, whichever first *)

let test_flush_on_size () =
  let config = cfg ~group_size:4 ~group_timeout:0.5 () in
  with_ensemble ~config (fun sim ens ->
      ignore (Ensemble.await_leader ens);
      let clients =
        List.init 4 (fun i ->
            Ensemble.connect ens ~name:(Printf.sprintf "w%d" i) ())
      in
      let first_ack = ref infinity in
      let remaining = ref 4 in
      let t0 = Des.Sim.now sim in
      List.iteri
        (fun i c ->
          ignore
            (Des.Proc.spawn ~name:(Printf.sprintf "writer%d" i) sim (fun () ->
                 ok_write
                   (Printf.sprintf "write %d" i)
                   (Client.write c
                      ~key:(Printf.sprintf "/k%d" i)
                      ~value:"v" ());
                 first_ack := Float.min !first_ack (Des.Sim.now sim);
                 decr remaining)))
        clients;
      while !remaining > 0 do
        Des.Proc.sleep 0.05
      done;
      let g = Ensemble.group_stats ens in
      check bool_c "a batch flushed full" true (g.Types.flush_full >= 1);
      (* A size-triggered flush answers before the timeout could have. *)
      check bool_c "first ack beat the batch deadline" true
        (!first_ack < t0 +. 0.45))

let test_flush_on_timeout () =
  let config = cfg ~group_size:100 ~group_timeout:0.25 () in
  with_ensemble ~config (fun sim ens ->
      ignore (Ensemble.await_leader ens);
      let c = Ensemble.connect ens ~name:"w" () in
      Des.Proc.sleep 1.0;
      let t0 = Des.Sim.now sim in
      ok_write "solo write" (Client.write c ~key:"/solo" ~value:"v" ());
      let dt = Des.Sim.now sim -. t0 in
      let g = Ensemble.group_stats ens in
      check bool_c "a batch flushed on timeout" true (g.Types.flush_timeout >= 1);
      check bool_c
        (Printf.sprintf "lone command waited out the window (%.3fs)" dt)
        true
        (dt >= 0.25 && dt < 1.0))

(* ------------------------------------------------------------------ *)
(* Batcher properties (qcheck): random client/batch geometries *)

let arb_storm =
  let gen =
    QCheck.Gen.(
      quad (int_range 1 4) (int_range 1 6) (int_range 1 8)
        (oneofl [ 0.002; 0.05; 0.25 ]))
  in
  QCheck.make
    ~print:(fun (c, n, gs, gt) ->
      Printf.sprintf "clients=%d items=%d group_size=%d group_timeout=%.3f" c n
        gs gt)
    gen

let prop_storm_exactly_once_fifo =
  QCheck.Test.make
    ~name:
      "batched submissions are exactly-once, per-client FIFO, and flush \
       accounting balances"
    ~count:12 arb_storm
    (fun (nclients, nitems, group_size, group_timeout) ->
      let config = cfg ~group_size ~group_timeout () in
      let total = nclients * nitems in
      let payload i j = Printf.sprintf "c%d-%d" i j in
      let submitted =
        List.concat_map
          (fun i -> List.init nitems (fun j -> payload i (j + 1)))
          (List.init nclients (fun i -> i + 1))
      in
      let drained = ref [] in
      let gstats = ref None in
      with_ensemble ~config ~horizon:600.
        ~seed:(17 + nclients + (13 * nitems) + group_size)
        (fun sim ens ->
          ignore (Ensemble.await_leader ens);
          let remaining = ref nclients in
          for i = 1 to nclients do
            let c = Ensemble.connect ens ~name:(Printf.sprintf "c%d" i) () in
            ignore
              (Des.Proc.spawn ~name:(Printf.sprintf "producer%d" i) sim
                 (fun () ->
                   for j = 1 to nitems do
                     ignore (Recipes.enqueue c ~queue:"/q" (payload i j))
                   done;
                   decr remaining))
          done;
          while !remaining > 0 do
            Des.Proc.sleep 0.1
          done;
          let consumer = Ensemble.connect ens ~name:"consumer" () in
          let rec drain () =
            match Recipes.dequeue consumer ~queue:"/q" ~timeout:1.0 () with
            | Some (_, p) ->
              drained := p :: !drained;
              drain ()
            | None -> ()
          in
          drain ();
          gstats := Some (Ensemble.group_stats ens));
      let drained = List.rev !drained in
      let sorted l = List.sort compare l in
      (* No loss, no duplication. *)
      sorted drained = sorted submitted
      (* Per-client submit order is preserved through the batches: the
         queue's sequential creates are appended in log order. *)
      && List.for_all
           (fun i ->
             let prefix = Printf.sprintf "c%d-" i in
             let mine =
               List.filter
                 (fun p ->
                   String.length p >= String.length prefix
                   && String.sub p 0 (String.length prefix) = prefix)
                 drained
             in
             mine = List.init nitems (fun j -> payload i (j + 1)))
           (List.init nclients (fun i -> i + 1))
      (* Flush accounting: every flush was triggered by exactly one of
         size or timeout, no batch exceeded the size bound, and every
         enqueue rode some batch. *)
      &&
      match !gstats with
      | None -> false
      | Some g ->
        g.Types.flushes = g.Types.flush_full + g.Types.flush_timeout
        && g.Types.max_batch <= group_size
        && Array.fold_left ( + ) 0 g.Types.batch_hist = g.Types.flushes
        && g.Types.batched_cmds >= total)

(* ------------------------------------------------------------------ *)
(* Controller hot path: deduplicated wake-on-release passes *)

let quick_spec =
  {
    Tropic.Platform.default_spec with
    Tropic.Platform.controllers = 1;
    workers = 2;
    mode = Tropic.Platform.Full;
    coord_config =
      {
        Types.default_config with
        Types.default_session_timeout = 5.0;
      };
    controller_config = Tcloud.Setup.controller_config;
    controller_session_timeout = 3.0;
  }

(* Rival spawns on one host serialize on its write lock; each release
   must wake waiters through the dedup buffer: one batched pass per
   scheduler round, never more passes than waiters woken. *)
let test_wake_passes_deduplicated () =
  let sim = Des.Sim.create ~seed:23 () in
  let inv =
    Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim)
      Tcloud.Setup.small
  in
  let platform =
    Tropic.Platform.create quick_spec inv.Tcloud.Setup.env
      ~initial_tree:inv.Tcloud.Setup.tree ~devices:inv.Tcloud.Setup.devices sim
  in
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"scenario" sim (fun () ->
         ignore (Tropic.Platform.await_leader_controller platform);
         let n = 6 in
         let remaining = ref n in
         for k = 0 to n - 1 do
           ignore
             (Des.Proc.spawn ~name:(Printf.sprintf "rival%d" k) sim (fun () ->
                  let vm = Printf.sprintf "rival%d" k in
                  ignore
                    (Tropic.Platform.run_txn platform ~proc:"spawnVM"
                       ~args:
                         (Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img"
                            ~mem_mb:128 ~storage:"/storageRoot/storage00000"
                            ~host:"/vmRoot/host00000"));
                  decr remaining))
         done;
         while !remaining > 0 do
           Des.Proc.sleep 0.5
         done;
         let st =
           Tropic.Controller.stats
             (Tropic.Platform.await_leader_controller platform)
         in
         check bool_c "contention woke blocked rivals" true
           (st.Tropic.Controller.wakeups > 0);
         check bool_c "wake passes happened" true
           (st.Tropic.Controller.wake_passes > 0);
         check bool_c
           (Printf.sprintf "passes are deduplicated (%d passes <= %d wakeups)"
              st.Tropic.Controller.wake_passes st.Tropic.Controller.wakeups)
           true
           (st.Tropic.Controller.wake_passes <= st.Tropic.Controller.wakeups);
         finished := true));
  ignore (Des.Sim.run ~until:600. sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     Alcotest.failf "process %s crashed: %s" who (Printexc.to_string exn));
  if not !finished then Alcotest.fail "scenario did not finish before horizon"

let () =
  Alcotest.run "throughput"
    [
      ( "group-commit",
        [
          ( "acked write survives an immediate leader crash",
            `Quick,
            test_ack_implies_quorum_durable );
          ( "crash before flush: no ack, retry lands exactly once",
            `Quick,
            test_crash_before_flush_no_ack_exactly_once );
          ( "unsafe-ack ablation acks early and loses the write",
            `Quick,
            test_unsafe_ack_acks_early_and_loses );
          ("batch flushes when it reaches group_size", `Quick, test_flush_on_size);
          ("lone command flushes at the timeout", `Quick, test_flush_on_timeout);
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_storm_exactly_once_fifo ] );
      ( "controller",
        [
          ( "wake-on-release passes are deduplicated",
            `Quick,
            test_wake_passes_deduplicated );
        ] );
    ]
