(* Tests for the multi-granularity lock manager. *)

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let p = Data.Path.v

let all_modes = [ Mglock.R; Mglock.W; Mglock.IR; Mglock.IW ]

(* The paper's footnote: "IW locks conflict with R/W locks, while IR locks
   conflict with W locks" — plus the classic R/W core. *)
let expected_compatible a b =
  match a, b with
  | Mglock.IR, Mglock.W | Mglock.W, Mglock.IR -> false
  | Mglock.IR, _ | _, Mglock.IR -> true
  | Mglock.IW, Mglock.IW -> true
  | Mglock.IW, _ | _, Mglock.IW -> false
  | Mglock.R, Mglock.R -> true
  | _ -> false

let test_compat_matrix () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check bool_c
            (Printf.sprintf "compat %s %s" (Mglock.mode_to_string a)
               (Mglock.mode_to_string b))
            (expected_compatible a b) (Mglock.compatible a b))
        all_modes)
    all_modes

let test_compat_symmetric () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check bool_c "symmetric" (Mglock.compatible a b)
            (Mglock.compatible b a))
        all_modes)
    all_modes

let test_join_lattice () =
  List.iter
    (fun a ->
      check bool_c "join idempotent" true (Mglock.join a a = a);
      List.iter
        (fun b ->
          let j = Mglock.join a b in
          check bool_c "join commutative" true (j = Mglock.join b a);
          (* Anything incompatible with a or b is incompatible with the join. *)
          List.iter
            (fun c ->
              if not (Mglock.compatible a c) || not (Mglock.compatible b c)
              then
                check bool_c "join at least as strong" false
                  (Mglock.compatible j c))
            all_modes)
        all_modes)
    all_modes

let test_intention () =
  check bool_c "R->IR" true (Mglock.intention Mglock.R = Mglock.IR);
  check bool_c "W->IW" true (Mglock.intention Mglock.W = Mglock.IW);
  check bool_c "IR->IR" true (Mglock.intention Mglock.IR = Mglock.IR);
  check bool_c "IW->IW" true (Mglock.intention Mglock.IW = Mglock.IW)

(* The semantic order on modes: a is at most as strong as b iff everything
   a conflicts with, b conflicts with too.  [join] must be the least upper
   bound of this order, and [intention] must be monotone w.r.t. it. *)
let conflict_set m = List.filter (fun c -> not (Mglock.compatible m c)) all_modes

let leq a b =
  List.for_all (fun c -> List.mem c (conflict_set b)) (conflict_set a)

let test_join_is_lub () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let j = Mglock.join a b in
          let name fmt =
            Printf.sprintf fmt (Mglock.mode_to_string a)
              (Mglock.mode_to_string b)
          in
          check bool_c (name "join %s %s is an upper bound of the left arg")
            true (leq a j);
          check bool_c (name "join %s %s is an upper bound of the right arg")
            true (leq b j);
          List.iter
            (fun m ->
              if leq a m && leq b m then
                check bool_c
                  (name "join %s %s is least among upper bounds")
                  true (leq j m))
            all_modes)
        all_modes)
    all_modes

let test_intention_monotone () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if leq a b then
            check bool_c
              (Printf.sprintf "intention monotone on %s <= %s"
                 (Mglock.mode_to_string a) (Mglock.mode_to_string b))
              true
              (leq (Mglock.intention a) (Mglock.intention b)))
        all_modes)
    all_modes

let acquire_ok t ~txn locks =
  match Mglock.try_acquire t ~txn locks with
  | Ok () -> ()
  | Error c ->
    Alcotest.failf "unexpected conflict: %s"
      (Format.asprintf "%a" Mglock.pp_conflict c)

let acquire_conflict t ~txn locks =
  match Mglock.try_acquire t ~txn locks with
  | Ok () -> Alcotest.fail "expected conflict"
  | Error c -> c

let test_ancestors_get_intention_locks () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a/b/c", Mglock.W ];
  let held = Mglock.held_by t ~txn:1 in
  let find path = List.assoc_opt (p path) (List.map (fun (k, v) -> (k, v)) held) in
  check bool_c "W on object" true (find "/a/b/c" = Some Mglock.W);
  check bool_c "IW on parent" true (find "/a/b" = Some Mglock.IW);
  check bool_c "IW on grandparent" true (find "/a" = Some Mglock.IW);
  check bool_c "IW on root" true (find "/" = Some Mglock.IW)

let test_sibling_writes_allowed () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a/b", Mglock.W ];
  acquire_ok t ~txn:2 [ p "/a/c", Mglock.W ]

let test_write_blocks_descendant_read () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a", Mglock.W ];
  let c = acquire_conflict t ~txn:2 [ p "/a/b", Mglock.R ] in
  (* The IR on /a collides with txn 1's W. *)
  check bool_c "conflict at /a" true (Data.Path.equal c.Mglock.path (p "/a"));
  check int_c "holder" 1 c.Mglock.holder

let test_read_blocks_ancestor_write () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a/b", Mglock.R ];
  let _ = acquire_conflict t ~txn:2 [ p "/a", Mglock.W ] in
  (* But a read of the ancestor is fine. *)
  acquire_ok t ~txn:3 [ p "/a", Mglock.R ]

let test_concurrent_reads () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a/b", Mglock.R ];
  acquire_ok t ~txn:2 [ p "/a/b", Mglock.R ];
  acquire_ok t ~txn:3 [ p "/a", Mglock.R ]

(* A full observable snapshot of the table: holders of every probe path
   plus held_by of every probe txn.  A refused acquire must leave this
   exactly unchanged — not just the entry count. *)
let snapshot t paths txns =
  ( List.map
      (fun path ->
        ( Data.Path.to_string path,
          List.map
            (fun (txn, m) -> (txn, Mglock.mode_to_string m))
            (Mglock.holders t path) ))
      paths,
    List.map
      (fun txn ->
        ( txn,
          List.map
            (fun (path, m) ->
              (Data.Path.to_string path, Mglock.mode_to_string m))
            (Mglock.held_by t ~txn) ))
      txns )

let test_all_or_nothing () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/x", Mglock.W ];
  let probe_paths = List.map p [ "/"; "/x"; "/free" ] in
  let before = snapshot t probe_paths [ 1; 2 ] in
  (* txn 2 wants /free (would succeed) and /x (conflicts): nothing granted. *)
  let _ = acquire_conflict t ~txn:2 [ p "/free", Mglock.W; p "/x", Mglock.W ] in
  check bool_c "holders and held_by exactly unchanged" true
    (before = snapshot t probe_paths [ 1; 2 ]);
  check (Alcotest.list (Alcotest.pair Alcotest.pass Alcotest.pass))
    "txn2 holds nothing" [] (Mglock.held_by t ~txn:2)

let test_self_upgrade () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a", Mglock.R ];
  acquire_ok t ~txn:1 [ p "/a", Mglock.W ];
  (* Upgraded in place. *)
  check bool_c "upgraded" true
    (List.exists (fun (q, m) -> Data.Path.equal q (p "/a") && m = Mglock.W)
       (Mglock.held_by t ~txn:1));
  let _ = acquire_conflict t ~txn:2 [ p "/a", Mglock.R ] in
  ()

let test_upgrade_blocked_by_other_reader () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a", Mglock.R ];
  acquire_ok t ~txn:2 [ p "/a", Mglock.R ];
  let c = acquire_conflict t ~txn:1 [ p "/a", Mglock.W ] in
  check int_c "other reader blocks upgrade" 2 c.Mglock.holder

let test_release_unblocks () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a/b", Mglock.W ];
  let _ = acquire_conflict t ~txn:2 [ p "/a/b", Mglock.W ] in
  ignore (Mglock.release_all t ~txn:1);
  check int_c "empty table" 0 (Mglock.lock_count t);
  acquire_ok t ~txn:2 [ p "/a/b", Mglock.W ]

let test_release_unknown_txn () =
  let t = Mglock.create () in
  check (Alcotest.list int_c) "nothing woken" []
    (Mglock.release_all t ~txn:42);
  check int_c "still empty" 0 (Mglock.lock_count t)

(* ------------------------------------------------------------------ *)
(* Wake-on-release: the waiters index *)

let test_release_wakes_waiters () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a/b", Mglock.W ];
  let c2 = acquire_conflict t ~txn:2 [ p "/a/b", Mglock.W ] in
  Mglock.wait t ~txn:2 ~on:c2.Mglock.path;
  let c3 = acquire_conflict t ~txn:3 [ p "/a", Mglock.W ] in
  Mglock.wait t ~txn:3 ~on:c3.Mglock.path;
  check int_c "two parked" 2 (Mglock.waiter_count t);
  check bool_c "txn2 parked on its conflict node" true
    (Mglock.waiting_on t ~txn:2 = Some c2.Mglock.path);
  (* txn 1 held both conflict nodes (/a/b and the IW ancestor /a), so the
     release wakes both waiters, ascending and deduplicated. *)
  check (Alcotest.list int_c) "both woken" [ 2; 3 ]
    (Mglock.release_all t ~txn:1);
  check int_c "waiters index drained" 0 (Mglock.waiter_count t);
  check bool_c "txn2 no longer parked" true (Mglock.waiting_on t ~txn:2 = None)

let test_release_wakes_only_held_nodes () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a", Mglock.W ];
  acquire_ok t ~txn:2 [ p "/e", Mglock.W ];
  let c3 = acquire_conflict t ~txn:3 [ p "/e", Mglock.W ] in
  Mglock.wait t ~txn:3 ~on:c3.Mglock.path;
  (* txn 1 never held /e: its release must not wake txn 3. *)
  check (Alcotest.list int_c) "unrelated release wakes nobody" []
    (Mglock.release_all t ~txn:1);
  check int_c "txn3 still parked" 1 (Mglock.waiter_count t);
  check (Alcotest.list int_c) "the right release wakes it" [ 3 ]
    (Mglock.release_all t ~txn:2)

let test_spurious_wakeup_reparks () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a", Mglock.R ];
  acquire_ok t ~txn:2 [ p "/a", Mglock.R ];
  let c3 = acquire_conflict t ~txn:3 [ p "/a", Mglock.W ] in
  Mglock.wait t ~txn:3 ~on:c3.Mglock.path;
  (* First reader leaves: txn 3 is woken but still conflicts with the
     second reader — the spurious case; it re-parks and the second release
     wakes it again. *)
  check (Alcotest.list int_c) "woken by first reader" [ 3 ]
    (Mglock.release_all t ~txn:1);
  let c3' = acquire_conflict t ~txn:3 [ p "/a", Mglock.W ] in
  Mglock.wait t ~txn:3 ~on:c3'.Mglock.path;
  check (Alcotest.list int_c) "woken by second reader" [ 3 ]
    (Mglock.release_all t ~txn:2);
  acquire_ok t ~txn:3 [ p "/a", Mglock.W ]

let test_cancel_wait () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a", Mglock.W ];
  let c2 = acquire_conflict t ~txn:2 [ p "/a", Mglock.W ] in
  Mglock.wait t ~txn:2 ~on:c2.Mglock.path;
  Mglock.cancel_wait t ~txn:2;
  check int_c "no waiters left" 0 (Mglock.waiter_count t);
  check (Alcotest.list int_c) "cancelled waiter not woken" []
    (Mglock.release_all t ~txn:1)

let test_holders () =
  let t = Mglock.create () in
  acquire_ok t ~txn:1 [ p "/a", Mglock.R ];
  acquire_ok t ~txn:2 [ p "/a", Mglock.R ];
  match Mglock.holders t (p "/a") with
  | [ (1, Mglock.R); (2, Mglock.R) ] -> ()
  | _ -> Alcotest.fail "holders mismatch"

(* ------------------------------------------------------------------ *)
(* Property: whatever sequence of acquires/releases happens, all granted
   locks held by distinct transactions on the same path stay pairwise
   compatible, and failed acquires change nothing. *)

type op =
  | Acquire of int * (string * Mglock.mode) list
  | Release of int

let op_gen =
  let open QCheck.Gen in
  let path_gen = oneofl [ "/a"; "/a/b"; "/a/b/c"; "/a/d"; "/e"; "/e/f" ] in
  let mode_gen = oneofl all_modes in
  let txn_gen = int_range 1 5 in
  frequency
    [
      ( 4,
        map2
          (fun txn locks -> Acquire (txn, locks))
          txn_gen
          (list_size (int_range 1 3) (pair path_gen mode_gen)) );
      1, map (fun txn -> Release txn) txn_gen;
    ]

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | Acquire (txn, locks) ->
               Printf.sprintf "acquire %d [%s]" txn
                 (String.concat ","
                    (List.map
                       (fun (pp, m) -> pp ^ ":" ^ Mglock.mode_to_string m)
                       locks))
             | Release txn -> Printf.sprintf "release %d" txn)
           ops))
    QCheck.Gen.(list_size (int_bound 40) op_gen)

let table_invariant t paths =
  List.for_all
    (fun path ->
      let holders = Mglock.holders t path in
      List.for_all
        (fun (txn_a, mode_a) ->
          List.for_all
            (fun (txn_b, mode_b) ->
              txn_a = txn_b || Mglock.compatible mode_a mode_b)
            holders)
        holders)
    paths

let all_paths =
  List.map p [ "/"; "/a"; "/a/b"; "/a/b/c"; "/a/d"; "/e"; "/e/f" ]

let lock_safety_prop =
  QCheck.Test.make ~name:"granted locks always pairwise compatible" ~count:300
    ops_arbitrary (fun ops ->
      let t = Mglock.create () in
      List.for_all
        (fun op ->
          (match op with
           | Acquire (txn, locks) ->
             let locks = List.map (fun (s, m) -> (p s, m)) locks in
             let before = Mglock.lock_count t in
             (match Mglock.try_acquire t ~txn locks with
              | Ok () -> ()
              | Error _ ->
                if Mglock.lock_count t <> before then
                  QCheck.Test.fail_report "failed acquire mutated table")
           | Release txn -> ignore (Mglock.release_all t ~txn));
          table_invariant t all_paths)
        ops)

(* Hierarchy invariant: whenever a transaction holds an object lock, it
   also holds at least an intention lock on every ancestor. *)
let intention_coverage_prop =
  QCheck.Test.make ~name:"object locks imply ancestor intention locks"
    ~count:200 ops_arbitrary (fun ops ->
      let t = Mglock.create () in
      List.for_all
        (fun op ->
          (match op with
           | Acquire (txn, locks) ->
             let locks = List.map (fun (s, m) -> (p s, m)) locks in
             ignore (Mglock.try_acquire t ~txn locks)
           | Release txn -> ignore (Mglock.release_all t ~txn));
          List.for_all
            (fun txn ->
              let held = Mglock.held_by t ~txn in
              List.for_all
                (fun (path, _) ->
                  List.for_all
                    (fun ancestor ->
                      List.exists
                        (fun (q, _) -> Data.Path.equal q ancestor)
                        held)
                    (Data.Path.ancestors path))
                held)
            [ 1; 2; 3; 4; 5 ])
        ops)

let release_clears_prop =
  QCheck.Test.make ~name:"release_all removes every entry of the txn"
    ~count:200 ops_arbitrary (fun ops ->
      let t = Mglock.create () in
      List.iter
        (fun op ->
          match op with
          | Acquire (txn, locks) ->
            let locks = List.map (fun (s, m) -> (p s, m)) locks in
            ignore (Mglock.try_acquire t ~txn locks)
          | Release txn -> ignore (Mglock.release_all t ~txn))
        ops;
      List.iter (fun txn -> ignore (Mglock.release_all t ~txn)) [ 1; 2; 3; 4; 5 ];
      Mglock.lock_count t = 0)

(* A refused acquire must leave the full observable state — holders of
   every path and held_by of every txn — exactly unchanged, whatever
   history precedes it. *)
let refused_acquire_unchanged_prop =
  QCheck.Test.make ~name:"refused try_acquire leaves holders/held_by unchanged"
    ~count:300 ops_arbitrary (fun ops ->
      let t = Mglock.create () in
      let txns = [ 1; 2; 3; 4; 5 ] in
      List.for_all
        (fun op ->
          match op with
          | Acquire (txn, locks) ->
            let locks = List.map (fun (s, m) -> (p s, m)) locks in
            let before = snapshot t all_paths txns in
            (match Mglock.try_acquire t ~txn locks with
             | Ok () -> true
             | Error _ -> before = snapshot t all_paths txns)
          | Release txn ->
            ignore (Mglock.release_all t ~txn);
            true)
        ops)

let suite =
  [
    ("compatibility matrix", `Quick, test_compat_matrix);
    ("compatibility symmetric", `Quick, test_compat_symmetric);
    ("join lattice", `Quick, test_join_lattice);
    ("join is a least upper bound", `Quick, test_join_is_lub);
    ("intention modes", `Quick, test_intention);
    ("intention monotone", `Quick, test_intention_monotone);
    ("ancestors get intention locks", `Quick, test_ancestors_get_intention_locks);
    ("sibling writes allowed", `Quick, test_sibling_writes_allowed);
    ("write blocks descendant read", `Quick, test_write_blocks_descendant_read);
    ("read blocks ancestor write", `Quick, test_read_blocks_ancestor_write);
    ("concurrent reads", `Quick, test_concurrent_reads);
    ("all-or-nothing acquisition", `Quick, test_all_or_nothing);
    ("self upgrade", `Quick, test_self_upgrade);
    ("upgrade blocked by other reader", `Quick, test_upgrade_blocked_by_other_reader);
    ("release unblocks", `Quick, test_release_unblocks);
    ("release unknown txn", `Quick, test_release_unknown_txn);
    ("release wakes waiters", `Quick, test_release_wakes_waiters);
    ("release wakes only held nodes", `Quick, test_release_wakes_only_held_nodes);
    ("spurious wakeup re-parks", `Quick, test_spurious_wakeup_reparks);
    ("cancel wait", `Quick, test_cancel_wait);
    ("holders", `Quick, test_holders);
    QCheck_alcotest.to_alcotest lock_safety_prop;
    QCheck_alcotest.to_alcotest intention_coverage_prop;
    QCheck_alcotest.to_alcotest release_clears_prop;
    QCheck_alcotest.to_alcotest refused_acquire_unchanged_prop;
  ]

let () = Alcotest.run "mglock" [ ("mglock", suite) ]
