(* Tests for lib/trace: the span recorder's primitives, the lifecycle
   validator (including that it catches broken traces), a property test
   running arbitrary workloads under arbitrary fault schedules, and a
   golden-trace regression pinning the normalized dump byte-for-byte. *)

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Recorder primitives (synthetic traces, no platform) *)

let synthetic body =
  let sim = Des.Sim.create ~seed:1 () in
  let tr = Trace.create ~sim () in
  body tr;
  tr

let flags tr name =
  List.exists (fun e -> e.Trace.Check.check = name) (Trace.Check.validate tr)

let test_autoparenting_and_balance () =
  let tr =
    synthetic (fun tr ->
        let root = Trace.begin_span tr ~txn:7 ~cat:"txn" ~name:"spawnVM" () in
        let inner =
          Trace.begin_span tr ~txn:7 ~cat:"controller" ~name:"simulate" ()
        in
        (* Another transaction's span must not parent onto txn 7. *)
        let other = Trace.begin_span tr ~txn:8 ~cat:"txn" ~name:"stopVM" () in
        Trace.end_span tr ~attrs:[ ("outcome", "ok") ] inner;
        Trace.end_span tr other;
        (* No [state=committed] here: that would (correctly) demand a
           covering replay span, which this minimal trace doesn't have. *)
        Trace.end_span tr ~attrs:[ ("state", "aborted") ] root);
  in
  match Trace.spans tr with
  | [ root; inner; other ] ->
    check (Alcotest.option int_c) "inner parents on root" (Some root.Trace.sid)
      inner.Trace.parent;
    check (Alcotest.option int_c) "cross-txn span has no parent" None
      other.Trace.parent;
    check (Alcotest.option string_c) "attr lands" (Some "ok")
      (Trace.attr inner "outcome");
    check int_c "all closed: no violations" 0
      (List.length (Trace.Check.validate tr))
  | other -> Alcotest.failf "expected 3 spans, got %d" (List.length other)

let test_end_named_and_close_all () =
  let tr =
    synthetic (fun tr ->
        let _root = Trace.begin_span tr ~txn:3 ~cat:"txn" ~name:"spawnVM" () in
        let _wait =
          Trace.begin_span tr ~txn:3 ~cat:"lock" ~name:"lock-wait" ()
        in
        (* Close the park span by name, far from its opening site. *)
        (match Trace.end_named tr ~txn:3 ~name:"lock-wait" () with
         | Some d -> check bool_c "duration non-negative" true (d >= 0.)
         | None -> Alcotest.fail "end_named found nothing");
        (* Second close by name is a no-op. *)
        check bool_c "idempotent" true
          (Trace.end_named tr ~txn:3 ~name:"lock-wait" () = None);
        let _straggler =
          Trace.begin_span tr ~txn:3 ~cat:"physical" ~name:"replay" ()
        in
        Trace.close_all tr ~txn:3 ~attrs:[ ("state", "aborted") ] ());
  in
  check int_c "balanced after close_all" 0
    (List.length (Trace.Check.validate tr));
  let root = List.hd (Trace.spans tr) in
  check (Alcotest.option string_c) "close_all attrs hit the root"
    (Some "aborted") (Trace.attr root "state");
  let replay = List.nth (Trace.spans tr) 2 in
  check (Alcotest.option string_c) "straggler marked" (Some "finalize")
    (Trace.attr replay "closed_by")

(* ------------------------------------------------------------------ *)
(* The validator must catch broken traces *)

let test_check_flags_unbalanced () =
  let tr =
    synthetic (fun tr ->
        ignore (Trace.begin_span tr ~txn:1 ~cat:"txn" ~name:"spawnVM" ()))
  in
  check bool_c "balanced flagged" true (flags tr "balanced")

let test_check_flags_undo_under_commit () =
  let tr =
    synthetic (fun tr ->
        let root = Trace.begin_span tr ~txn:1 ~cat:"txn" ~name:"spawnVM" () in
        let replay =
          Trace.begin_span tr ~txn:1 ~cat:"physical" ~name:"replay" ()
        in
        let a =
          Trace.begin_span tr ~txn:1 ~cat:"physical" ~name:"action:createVM"
            ~attrs:[ ("index", "1") ] ()
        in
        Trace.end_span tr ~attrs:[ ("outcome", "ok") ] a;
        let u = Trace.begin_span tr ~txn:1 ~cat:"undo" ~name:"undo" () in
        Trace.end_span tr u;
        Trace.end_span tr
          ~attrs:[ ("actions", "1"); ("outcome", "committed") ]
          replay;
        Trace.end_span tr ~attrs:[ ("state", "committed") ] root);
  in
  check bool_c "committed-no-undo flagged" true (flags tr "committed-no-undo");
  (* The exception: a duplicate execution (re-dispatch around a fail-over)
     may lose the race, abort on already-applied state and undo its own
     progress — undo under the *aborted* replay is tolerated. *)
  let tr =
    synthetic (fun tr ->
        let root = Trace.begin_span tr ~txn:1 ~cat:"txn" ~name:"spawnVM" () in
        let replay =
          Trace.begin_span tr ~txn:1 ~cat:"physical" ~name:"replay" ()
        in
        let a =
          Trace.begin_span tr ~txn:1 ~cat:"physical" ~name:"action:createVM"
            ~attrs:[ ("index", "1") ] ()
        in
        Trace.end_span tr ~attrs:[ ("outcome", "ok") ] a;
        Trace.end_span tr
          ~attrs:[ ("actions", "1"); ("outcome", "committed") ]
          replay;
        let lane = Trace.fresh_lane tr in
        let dup =
          Trace.begin_span tr ~txn:1 ~lane ~cat:"physical" ~name:"replay" ()
        in
        let u = Trace.begin_span tr ~txn:1 ~lane ~cat:"undo" ~name:"undo" () in
        Trace.end_span tr ~attrs:[ ("outcome", "ok") ] u;
        Trace.end_span tr ~attrs:[ ("outcome", "aborted") ] dup;
        Trace.end_span tr ~attrs:[ ("state", "committed") ] root)
  in
  check bool_c "aborted duplicate's undo tolerated" false
    (flags tr "committed-no-undo");
  check int_c "duplicate-dispatch trace is otherwise clean" 0
    (List.length (Trace.Check.validate tr))

let test_check_flags_missing_coverage () =
  let tr =
    synthetic (fun tr ->
        (* Committed root whose replay claims 2 actions but only 1 ok'd. *)
        let root = Trace.begin_span tr ~txn:1 ~cat:"txn" ~name:"spawnVM" () in
        let replay =
          Trace.begin_span tr ~txn:1 ~cat:"physical" ~name:"replay" ()
        in
        let a =
          Trace.begin_span tr ~txn:1 ~cat:"physical" ~name:"action:createVM"
            ~attrs:[ ("index", "1") ] ()
        in
        Trace.end_span tr ~attrs:[ ("outcome", "ok") ] a;
        Trace.end_span tr
          ~attrs:[ ("actions", "2"); ("outcome", "committed") ]
          replay;
        Trace.end_span tr ~attrs:[ ("state", "committed") ] root);
  in
  check bool_c "committed-coverage flagged" true (flags tr "committed-coverage")

let aborted_replay_trace ~undo_indices =
  synthetic (fun tr ->
      let root = Trace.begin_span tr ~txn:1 ~cat:"txn" ~name:"spawnVM" () in
      let replay =
        Trace.begin_span tr ~txn:1 ~cat:"physical" ~name:"replay" ()
      in
      List.iter
        (fun i ->
          let a =
            Trace.begin_span tr ~txn:1 ~cat:"physical"
              ~name:(Printf.sprintf "action:a%d" i)
              ~attrs:[ ("index", string_of_int i) ]
              ()
          in
          Trace.end_span tr ~attrs:[ ("outcome", "ok") ] a)
        [ 1; 2 ];
      (match undo_indices with
       | None -> ()
       | Some indices ->
         let u = Trace.begin_span tr ~txn:1 ~cat:"undo" ~name:"undo" () in
         List.iter
           (fun i ->
             let s =
               Trace.begin_span tr ~txn:1 ~cat:"undo"
                 ~name:(Printf.sprintf "undo:a%d" i)
                 ~attrs:[ ("index", string_of_int i) ]
                 ()
             in
             Trace.end_span tr ~attrs:[ ("outcome", "ok") ] s)
           indices;
         Trace.end_span tr u);
      Trace.end_span tr ~attrs:[ ("outcome", "aborted") ] replay;
      Trace.end_span tr ~attrs:[ ("state", "aborted") ] root)

let test_check_flags_undo_order () =
  check bool_c "undo-missing flagged" true
    (flags (aborted_replay_trace ~undo_indices:None) "undo-missing");
  check bool_c "wrong order flagged" true
    (flags (aborted_replay_trace ~undo_indices:(Some [ 1; 2 ])) "undo-order");
  check int_c "reverse order accepted" 0
    (List.length
       (Trace.Check.validate (aborted_replay_trace ~undo_indices:(Some [ 2; 1 ]))))

(* ------------------------------------------------------------------ *)
(* Property: arbitrary workloads under arbitrary fault schedules always
   produce traces the validator accepts. *)

type op_spec = {
  host : int;
  mem : int;
  fail_start : bool;
  fail_remove : bool;
  stop_after : bool;
}

let op_gen =
  QCheck.Gen.(
    int_range 0 3 >>= fun host ->
    oneofl [ 512; 1024; 2048; 4096 ] >>= fun mem ->
    bool >>= fun fail_start ->
    bool >>= fun fail_remove ->
    bool >>= fun stop_after ->
    return { host; mem; fail_start; fail_remove; stop_after })

let print_workload (seed, ops) =
  Printf.sprintf "seed=%d ops=[%s]" seed
    (String.concat "; "
       (List.map
          (fun o ->
            Printf.sprintf "host%d %dMB%s%s%s" o.host o.mem
              (if o.fail_start then " fail-start" else "")
              (if o.fail_remove then " fail-remove" else "")
              (if o.stop_after then " stop" else ""))
          ops))

let workload_arb =
  QCheck.make ~print:print_workload
    QCheck.Gen.(
      int_range 1 1_000_000 >>= fun seed ->
      list_size (int_range 1 6) op_gen >>= fun ops -> return (seed, ops))

let run_traced_workload (seed, ops) =
  let sim = Des.Sim.create ~seed () in
  let tracer = Trace.create ~sim () in
  let size =
    { Tcloud.Setup.small with Tcloud.Setup.compute_hosts = 4; storage_hosts = 2 }
  in
  let inv = Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim) size in
  let platform =
    Tropic.Platform.create
      {
        Tropic.Platform.default_spec with
        Tropic.Platform.controllers = 3;
        workers = 2;
        mode = Tropic.Platform.Full;
        coord_config =
          {
            Coord.Types.default_config with
            Coord.Types.default_session_timeout = 5.0;
          };
        controller_config = Tcloud.Setup.controller_config;
        controller_session_timeout = 3.0;
        trace = Some tracer;
      }
      inv.Tcloud.Setup.env ~initial_tree:inv.Tcloud.Setup.tree
      ~devices:inv.Tcloud.Setup.devices sim
  in
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"workload" sim (fun () ->
         List.iteri
           (fun k op ->
             let _, compute = inv.Tcloud.Setup.computes.(op.host) in
             let faults =
               Devices.Device.faults (Devices.Compute.device compute)
             in
             if op.fail_start then
               Devices.Fault.fail_next faults ~action:Devices.Schema.act_start_vm;
             if op.fail_remove then
               Devices.Fault.fail_next faults ~action:Devices.Schema.act_remove_vm;
             let vm = Printf.sprintf "q%d" k in
             let host =
               Data.Path.to_string (Tcloud.Setup.compute_path op.host)
             in
             let storage =
               Data.Path.to_string (Tcloud.Setup.storage_path (op.host mod 2))
             in
             let state =
               Tropic.Platform.run_txn platform ~proc:"spawnVM"
                 ~args:
                   (Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img"
                      ~mem_mb:op.mem ~storage ~host)
             in
             if state = Tropic.Txn.Committed && op.stop_after then
               ignore
                 (Tropic.Platform.run_txn platform ~proc:"stopVM"
                    ~args:(Tcloud.Procs.stop_vm_args ~host ~vm)))
           ops;
         finished := true));
  ignore (Des.Sim.run ~until:3_000. sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     QCheck.Test.fail_reportf "process %s crashed: %s" who
       (Printexc.to_string exn));
  if not !finished then QCheck.Test.fail_report "workload did not finish";
  match Trace.Check.validate tracer with
  | [] -> true
  | errors ->
    QCheck.Test.fail_reportf "trace invariant violations: %s"
      (String.concat "; " (List.map Trace.Check.error_to_string errors))

let trace_lifecycle_prop =
  QCheck.Test.make ~count:15
    ~name:"arbitrary workload x fault schedule yields a valid trace"
    workload_arb run_traced_workload

(* ------------------------------------------------------------------ *)
(* Golden trace: fixed seed + scenario -> byte-stable normalized dump *)

let golden_script =
  "# golden-trace scenario: commit, constraint abort, fault-driven undo\n\
   hosts 4\n\
   storage 2\n\
   seed 7\n\
   mode full\n\
   spawn g1 0\n\
   expect committed\n\
   spawn toobig 1 9000\n\
   expect aborted\n\
   fail-next 2 startVM\n\
   spawn g2 2\n\
   expect aborted\n\
   spawn g3 1\n\
   expect committed\n\
   stop g1 0\n\
   expect committed\n\
   destroy g1 0\n\
   expect committed\n"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dune runtest runs with cwd = _build/default/test; dune exec from the
   repo root does not. *)
let fixture name =
  if Sys.file_exists name then name else Filename.concat "test" name

let test_golden_trace () =
  let outcome =
    match Experiments.Scenario.run_script ~record_trace:true golden_script with
    | Ok o -> o
    | Error e -> Alcotest.failf "scenario parse error: %s" e
  in
  check int_c "no failed expectations" 0
    outcome.Experiments.Scenario.failed_expectations;
  let tracer =
    match outcome.Experiments.Scenario.trace with
    | Some tr -> tr
    | None -> Alcotest.fail "record_trace did not attach a tracer"
  in
  check int_c "trace validates" 0 (List.length (Trace.Check.validate tracer));
  let actual = Trace.to_normalized_string tracer in
  let expected = read_file (fixture "golden_trace.txt") in
  if actual <> expected then begin
    let dump =
      Filename.concat (Filename.get_temp_dir_name ()) "golden_trace.actual"
    in
    let oc = open_out dump in
    output_string oc actual;
    close_out oc;
    Alcotest.failf
      "golden trace mismatch (%d bytes actual vs %d expected); actual dump \
       written to %s — inspect the diff and, if the change is intended, \
       refresh test/golden_trace.txt"
      (String.length actual) (String.length expected) dump
  end

(* ------------------------------------------------------------------ *)
(* Metrics.Cdf: empty recorders answer n/a, not a placeholder 0 *)

let test_cdf_empty_is_na () =
  let c = Metrics.Cdf.create () in
  check (Alcotest.option (Alcotest.float 1e-9)) "quantile_opt empty" None
    (Metrics.Cdf.quantile_opt c 0.5);
  check string_c "pair empty" "n/a" (Metrics.Cdf.quantile_pair c ~p:0.99);
  Metrics.Cdf.add c 2.0;
  check (Alcotest.option (Alcotest.float 1e-9)) "quantile_opt one sample"
    (Some 2.0)
    (Metrics.Cdf.quantile_opt c 0.5);
  check string_c "pair one sample" "2.00/2.00"
    (Metrics.Cdf.quantile_pair c ~p:0.99)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ("recorder: auto-parenting and balance", `Quick, test_autoparenting_and_balance);
    ("recorder: end_named and close_all", `Quick, test_end_named_and_close_all);
    ("check: unbalanced span flagged", `Quick, test_check_flags_unbalanced);
    ("check: undo under committed txn flagged", `Quick, test_check_flags_undo_under_commit);
    ("check: incomplete replay coverage flagged", `Quick, test_check_flags_missing_coverage);
    ("check: undo order enforced", `Quick, test_check_flags_undo_order);
    QCheck_alcotest.to_alcotest trace_lifecycle_prop;
    ("golden: normalized trace is byte-stable", `Quick, test_golden_trace);
    ("cdf: empty quantiles answer n/a", `Quick, test_cdf_empty_is_na);
  ]

let () = Alcotest.run "trace" [ ("trace", suite) ]
