(* Substring search shared by test files. *)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0
