(* Goal-state planner and executor: planner units (topological order,
   drain-before-remove, capacity cycles), plus qcheck properties — an
   executed plan converges (the post-apply diff is empty) and re-planning
   after convergence is a no-op. *)

module Tree = Data.Tree
module Path = Data.Path
module Value = Data.Value
module Schema = Devices.Schema

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let ctx = { Plan.Planner.storage_hosts = 2; template = "base.img" }

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* ------------------------------------------------------------------ *)
(* Hand-crafted trees for the pure planner units *)

let vm_node ~running ~mem =
  Tree.make_node ~kind:Schema.vm_kind
    ~attrs:
      [
        ( Schema.attr_state,
          Value.Str
            (if running then Schema.state_running else Schema.state_stopped) );
        Schema.attr_mem_mb, Value.Int mem;
      ]
    ()

let host_node ~hv ~cap vms =
  Tree.make_node ~kind:Schema.vm_host_kind
    ~attrs:
      [
        Schema.attr_mem_mb, Value.Int cap;
        Schema.attr_hypervisor, Value.Str hv;
      ]
    ~children:
      (List.map
         (fun (name, running, mem) -> name, vm_node ~running ~mem)
         vms)
    ()

let tree_ok what = function
  | Ok t -> t
  | Error e -> Alcotest.failf "%s: %s" what (Tree.error_to_string e)

(* A tree with hosts 0..n-1 (one hypervisor, [cap] MB each) populated per
   [hosts], e.g. [[ "a", false, 1024 ] ; []] — host0 has a, host1 empty. *)
let tree_of_hosts ?(cap = 2048) hosts =
  let tree =
    tree_ok "vmRoot"
      (Tree.insert Tree.empty (Path.v "/vmRoot") ~kind:Schema.vm_root_kind ())
  in
  List.fold_left
    (fun (tree, i) vms ->
      let path = Tcloud.Setup.compute_path i in
      let tree =
        tree_ok "host stub" (Tree.insert tree path ~kind:"stub" ())
      in
      ( tree_ok "host"
          (Tree.replace_subtree tree path (host_node ~hv:"xen" ~cap vms)),
        i + 1 ))
    (tree, 0) hosts
  |> fst

let goal hosts switches = { Plan.Model.hosts; switches }

let host i vms =
  {
    Plan.Model.host_index = i;
    vms =
      List.map
        (fun (vm_name, running, mem_mb) ->
          { Plan.Model.vm_name; running; mem_mb })
        vms;
  }

let find_step (plan : Plan.Planner.t) pred =
  match List.find_opt pred plan.Plan.Planner.steps with
  | Some s -> s
  | None -> Alcotest.fail "expected step not in plan"

let assert_topological (plan : Plan.Planner.t) =
  List.iteri
    (fun i (s : Plan.Planner.step) ->
      check int_c "ids are positional" i s.Plan.Planner.step_id;
      List.iter
        (fun d ->
          if d >= i then
            Alcotest.failf "step %d depends on later step %d" i d)
        s.Plan.Planner.deps)
    plan.Plan.Planner.steps

(* ------------------------------------------------------------------ *)

let test_empty_diff_empty_plan () =
  let actual = tree_of_hosts [ [ "a", true, 1024 ]; [] ] in
  let model = goal [ host 0 [ "a", true, 1024 ]; host 1 [] ] [] in
  let plan = ok "compile" (Plan.Planner.compile ctx model ~actual) in
  check int_c "no steps" 0 (List.length plan.Plan.Planner.steps);
  check int_c "nothing unplannable" 0
    (List.length plan.Plan.Planner.unplannable)

let test_spawn_attach_order () =
  let actual = tree_of_hosts [ [] ] in
  let actual =
    tree_ok "netRoot"
      (Tree.insert actual (Path.v "/netRoot") ~kind:Schema.net_root_kind ())
  in
  let actual =
    tree_ok "switch"
      (Tree.insert actual
         (Tcloud.Setup.switch_path 0)
         ~kind:Schema.switch_kind
         ~attrs:[ Schema.attr_max_vlans, Value.Int 16 ]
         ())
  in
  let model =
    goal
      [ host 0 [ "web0", true, 1024 ] ]
      [
        {
          Plan.Model.switch_index = 0;
          vlans =
            [ { Plan.Model.vlan_id = 100; vlan_name = "tenantA"; ports = [ "web0" ] } ];
        };
      ]
  in
  let plan = ok "compile" (Plan.Planner.compile ctx model ~actual) in
  assert_topological plan;
  let spawn =
    find_step plan (fun s -> String.equal s.Plan.Planner.proc "spawnVM")
  in
  let create =
    find_step plan (fun s -> String.equal s.Plan.Planner.proc "createVlan")
  in
  let attach =
    find_step plan (fun s -> String.equal s.Plan.Planner.proc "attachVmVlan")
  in
  check bool_c "attach after spawn" true
    (List.mem spawn.Plan.Planner.step_id attach.Plan.Planner.deps);
  check bool_c "attach after createVlan" true
    (List.mem create.Plan.Planner.step_id attach.Plan.Planner.deps)

let test_detach_before_destroy_and_remove_vlan () =
  let actual = tree_of_hosts [ [ "a", true, 1024 ] ] in
  let actual =
    tree_ok "netRoot"
      (Tree.insert actual (Path.v "/netRoot") ~kind:Schema.net_root_kind ())
  in
  let actual =
    tree_ok "switch"
      (Tree.insert actual
         (Tcloud.Setup.switch_path 0)
         ~kind:Schema.switch_kind
         ~attrs:[ Schema.attr_max_vlans, Value.Int 16 ]
         ())
  in
  let actual =
    tree_ok "vlan"
      (Tree.insert actual
         (Path.child (Tcloud.Setup.switch_path 0) "vlan0100")
         ~kind:Schema.vlan_kind
         ~attrs:
           [
             Schema.attr_vlan_name, Value.Str "tenantA";
             Schema.attr_ports, Value.List [ Value.Str "a.eth0" ];
           ]
         ())
  in
  (* Goal drops both the vm and the vlan: the detach must precede the
     destroy and the vlan removal. *)
  let model =
    goal [ host 0 [] ] [ { Plan.Model.switch_index = 0; vlans = [] } ]
  in
  let plan = ok "compile" (Plan.Planner.compile ctx model ~actual) in
  assert_topological plan;
  let detach =
    find_step plan (fun s -> String.equal s.Plan.Planner.proc "detachVmVlan")
  in
  let destroy =
    find_step plan (fun s -> String.equal s.Plan.Planner.proc "destroyVM")
  in
  let remove =
    find_step plan (fun s -> String.equal s.Plan.Planner.proc "removeVlan")
  in
  check bool_c "destroy after detach" true
    (List.mem detach.Plan.Planner.step_id destroy.Plan.Planner.deps);
  check bool_c "removeVlan after detach" true
    (List.mem detach.Plan.Planner.step_id remove.Plan.Planner.deps)

let test_capacity_drain_before_fill () =
  (* host0: a+b (full).  host1: c (half).  Goal moves c to host0 and a,b
     to host1 — inbound exceeds free on both sides, so the planner must
     order the drains first. *)
  let actual =
    tree_of_hosts [ [ "a", false, 1024; "b", false, 1024 ]; [ "c", false, 1024 ] ]
  in
  let model =
    goal
      [
        host 0 [ "c", false, 1024 ];
        host 1 [ "a", false, 1024; "b", false, 1024 ];
        host 2 [];
      ]
      []
  in
  let actual =
    (* host2 exists, empty — the staging candidate *)
    let path = Tcloud.Setup.compute_path 2 in
    let t = tree_ok "host2 stub" (Tree.insert actual path ~kind:"stub" ()) in
    tree_ok "host2" (Tree.replace_subtree t path (host_node ~hv:"xen" ~cap:2048 []))
  in
  let plan = ok "compile" (Plan.Planner.compile ctx model ~actual) in
  assert_topological plan;
  check bool_c "has steps" true (List.length plan.Plan.Planner.steps > 0);
  check int_c "nothing unplannable" 0
    (List.length plan.Plan.Planner.unplannable);
  (* every step is a migrate; replay them against a capacity ledger to
     prove the order never overcommits a host *)
  let free = Hashtbl.create 4 in
  Hashtbl.replace free 0 0;
  Hashtbl.replace free 1 1024;
  Hashtbl.replace free 2 2048;
  let host_of s =
    int_of_string (String.sub (Filename.basename s) 4 5)
  in
  List.iter
    (fun (s : Plan.Planner.step) ->
      match s.Plan.Planner.proc, s.Plan.Planner.args with
      | "migrateVM", [ Value.Str src; Value.Str dst; Value.Str _ ] ->
        let src = host_of src and dst = host_of dst in
        let dst_free = Hashtbl.find free dst in
        if dst_free < 1024 then
          Alcotest.failf "step %s overcommits host%d"
            (Plan.Planner.step_to_string s) dst;
        Hashtbl.replace free dst (dst_free - 1024);
        Hashtbl.replace free src (Hashtbl.find free src + 1024)
      | proc, _ -> Alcotest.failf "unexpected step %s" proc)
    plan.Plan.Planner.steps

let test_swap_breaks_cycle_via_staging () =
  let actual = tree_of_hosts ~cap:1024 [ [ "a", true, 1024 ]; [ "b", true, 1024 ]; [] ] in
  let model =
    goal
      [ host 0 [ "b", true, 1024 ]; host 1 [ "a", true, 1024 ]; host 2 [] ]
      []
  in
  let plan = ok "compile" (Plan.Planner.compile ctx model ~actual) in
  assert_topological plan;
  check int_c "three hops" 3 (List.length plan.Plan.Planner.steps);
  check bool_c "routes through staging host2" true
    (List.exists
       (fun (s : Plan.Planner.step) ->
         Str_contains.contains s.Plan.Planner.label "host00002")
       plan.Plan.Planner.steps)

let test_no_dependency_ablation_drops_edges () =
  let actual = tree_of_hosts ~cap:1024 [ [ "a", true, 1024 ]; [ "b", true, 1024 ]; [] ] in
  let model =
    goal
      [ host 0 [ "b", true, 1024 ]; host 1 [ "a", true, 1024 ]; host 2 [] ]
      []
  in
  let plan =
    ok "compile" (Plan.Planner.compile ~ordered:false ctx model ~actual)
  in
  check int_c "raw two migrations, no staging" 2
    (List.length plan.Plan.Planner.steps);
  List.iter
    (fun (s : Plan.Planner.step) ->
      check int_c "no deps" 0 (List.length s.Plan.Planner.deps))
    plan.Plan.Planner.steps

(* ------------------------------------------------------------------ *)
(* Properties over the logical executor (no DES, real procedures) *)

let small_inv = lazy (Tcloud.Setup.build Tcloud.Setup.small)

(* Random goal over hosts 0..3 of the [small] inventory: up to 6 VMs,
   each placed on a random host, random state, memory in {512, 1024};
   sometimes a VLAN holding a random subset of them. *)
let goal_gen =
  QCheck.Gen.(
    let* n_vms = int_range 0 6 in
    let* placements = list_size (return n_vms) (int_range 0 3) in
    let* runnings = list_size (return n_vms) bool in
    let* mems = list_size (return n_vms) (oneofl [ 512; 1024 ]) in
    let vms =
      List.mapi
        (fun i (h, (r, m)) -> Printf.sprintf "v%d" i, h, r, m)
        (List.combine placements (List.combine runnings mems))
    in
    let hosts =
      List.init 4 (fun hidx ->
          {
            Plan.Model.host_index = hidx;
            vms =
              List.filter_map
                (fun (name, h, r, m) ->
                  if h = hidx then
                    Some { Plan.Model.vm_name = name; running = r; mem_mb = m }
                  else None)
                vms;
          })
    in
    let* with_vlan = bool in
    let* port_mask = list_size (return n_vms) bool in
    let switches =
      if with_vlan && n_vms > 0 then
        [
          {
            Plan.Model.switch_index = 0;
            vlans =
              [
                {
                  Plan.Model.vlan_id = 100;
                  vlan_name = "tenant";
                  ports =
                    List.filter_map
                      (fun ((name, _, _, _), keep) ->
                        if keep then Some name else None)
                      (List.combine vms port_mask);
                };
              ];
          };
        ]
      else []
    in
    return { Plan.Model.hosts; switches })

let goal_arbitrary =
  QCheck.make goal_gen ~print:(fun m -> Plan.Model.to_string m)

let converge_twice_prop =
  QCheck.Test.make ~name:"plan: executed plan converges and is idempotent"
    ~count:60
    (QCheck.pair goal_arbitrary goal_arbitrary)
    (fun (g1, g2) ->
      let inv = Lazy.force small_inv in
      let env = inv.Tcloud.Setup.env in
      (* reach g1 from the pristine inventory, then g2 from g1's state *)
      let tree1, _ =
        match
          Plan.Executor.converge_logical env ctx ~model:g1
            ~tree:inv.Tcloud.Setup.tree
        with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "g1 did not converge: %s" e
      in
      (match Plan.Model.diff g1 ~actual:tree1 with
       | Ok [] -> ()
       | Ok residual ->
         QCheck.Test.fail_reportf "g1 left %d residual change(s)"
           (List.length residual)
       | Error e -> QCheck.Test.fail_reportf "g1 diff: %s" e);
      let tree2, _ =
        match Plan.Executor.converge_logical env ctx ~model:g2 ~tree:tree1 with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "g2 did not converge: %s" e
      in
      (match Plan.Model.diff g2 ~actual:tree2 with
       | Ok [] -> ()
       | Ok residual ->
         QCheck.Test.fail_reportf "g2 left %d residual change(s)"
           (List.length residual)
       | Error e -> QCheck.Test.fail_reportf "g2 diff: %s" e);
      (* idempotence: a fresh plan over the converged tree is empty *)
      match Plan.Planner.compile ctx g2 ~actual:tree2 with
      | Ok plan -> plan.Plan.Planner.steps = []
      | Error e -> QCheck.Test.fail_reportf "re-plan: %s" e)

let plan_deterministic_prop =
  QCheck.Test.make ~name:"plan: compilation is deterministic" ~count:40
    goal_arbitrary
    (fun g ->
      let inv = Lazy.force small_inv in
      let p1 = Plan.Planner.compile ctx g ~actual:inv.Tcloud.Setup.tree in
      let p2 = Plan.Planner.compile ctx g ~actual:inv.Tcloud.Setup.tree in
      match p1, p2 with
      | Ok a, Ok b ->
        List.equal
          (fun (x : Plan.Planner.step) (y : Plan.Planner.step) ->
            x.Plan.Planner.step_id = y.Plan.Planner.step_id
            && String.equal x.Plan.Planner.proc y.Plan.Planner.proc
            && List.equal Value.equal x.Plan.Planner.args y.Plan.Planner.args
            && x.Plan.Planner.deps = y.Plan.Planner.deps)
          a.Plan.Planner.steps b.Plan.Planner.steps
      | Error a, Error b -> String.equal a b
      | _ -> false)

let model_roundtrip_prop =
  QCheck.Test.make ~name:"plan: model sexp roundtrip" ~count:60 goal_arbitrary
    (fun g ->
      match Plan.Model.of_string (Plan.Model.to_string g) with
      | Ok g' -> Plan.Model.to_string g = Plan.Model.to_string g'
      | Error e -> QCheck.Test.fail_reportf "reparse: %s" e)

let suite =
  [
    ( "plan",
      [
        Alcotest.test_case "empty diff compiles to empty plan" `Quick
          test_empty_diff_empty_plan;
        Alcotest.test_case "attach waits for spawn and createVlan" `Quick
          test_spawn_attach_order;
        Alcotest.test_case "detach precedes destroy and removeVlan" `Quick
          test_detach_before_destroy_and_remove_vlan;
        Alcotest.test_case "capacity edges drain before fill" `Quick
          test_capacity_drain_before_fill;
        Alcotest.test_case "swap cycle breaks via staging host" `Quick
          test_swap_breaks_cycle_via_staging;
        Alcotest.test_case "no-dependency ablation drops edges" `Quick
          test_no_dependency_ablation_drops_edges;
        QCheck_alcotest.to_alcotest converge_twice_prop;
        QCheck_alcotest.to_alcotest plan_deterministic_prop;
        QCheck_alcotest.to_alcotest model_roundtrip_prop;
      ] );
  ]

let () = Alcotest.run "plan" suite
