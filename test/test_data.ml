(* Tests for the hierarchical data model: sexp codec, values, paths, trees,
   diffs. *)

open Data

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let ok_or_fail what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: %s" what msg

let tree_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Tree.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Sexp *)

let test_sexp_print_parse () =
  let cases =
    [
      Sexp.Atom "hello", "hello";
      Sexp.Atom "two words", {|"two words"|};
      Sexp.Atom "", {|""|};
      Sexp.Atom "a\"b\\c\n", {|"a\"b\\c\n"|};
      Sexp.List [], "()";
      ( Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ] ],
        "(a (b c))" );
    ]
  in
  List.iter
    (fun (sexp, expected) ->
      check string_c "print" expected (Sexp.to_string sexp);
      let parsed = ok_or_fail "parse" (Sexp.of_string expected) in
      check bool_c "roundtrip" true (Sexp.equal sexp parsed))
    cases

let test_sexp_parse_errors () =
  List.iter
    (fun input ->
      match Sexp.of_string input with
      | Ok _ -> Alcotest.failf "expected parse error for %S" input
      | Error _ -> ())
    [ ""; "("; ")"; "(a"; {|"unterminated|}; {|"bad \q escape"|}; "a b" ]

let test_sexp_whitespace () =
  let parsed = ok_or_fail "parse" (Sexp.of_string "  ( a\n\tb )  ") in
  check bool_c "tolerates whitespace" true
    (Sexp.equal (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]) parsed)

let test_sexp_comments () =
  let parsed =
    ok_or_fail "parse"
      (Sexp.of_string "; goal file header\n(a ; trailing\n b) ; tail")
  in
  check bool_c "comments skipped" true
    (Sexp.equal (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]) parsed);
  (* An atom containing ';' is quoted by the printer, so it survives. *)
  let tricky = Sexp.List [ Sexp.Atom "semi;colon" ] in
  check bool_c "quoted semicolon roundtrips" true
    (Sexp.equal tricky (ok_or_fail "re" (Sexp.of_string (Sexp.to_string tricky))))

let test_sexp_assoc () =
  let fields =
    [
      Sexp.List [ Sexp.Atom "id"; Sexp.Atom "42" ];
      Sexp.List [ Sexp.Atom "tags"; Sexp.Atom "a"; Sexp.Atom "b" ];
    ]
  in
  check int_c "assoc scalar" 42
    (ok_or_fail "id" (Result.bind (Sexp.assoc "id" fields) Sexp.to_int));
  (match Sexp.assoc "tags" fields with
   | Ok (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ]) -> ()
   | _ -> Alcotest.fail "multi-value assoc");
  match Sexp.assoc "missing" fields with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected missing field error"

let sexp_gen =
  let open QCheck.Gen in
  let atom_gen = string_size ~gen:printable (int_range 0 12) in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then map (fun s -> Sexp.Atom s) atom_gen
          else
            frequency
              [
                3, map (fun s -> Sexp.Atom s) atom_gen;
                2, map (fun xs -> Sexp.List xs) (list_size (int_bound 4) (self (n / 2)));
              ])
        (min n 20))

let sexp_arbitrary = QCheck.make ~print:Sexp.to_string sexp_gen

let sexp_fuzz_prop =
  QCheck.Test.make ~name:"sexp parser never raises on junk" ~count:1000
    QCheck.(string_gen_of_size (Gen.int_bound 30) Gen.char)
    (fun junk ->
      match Sexp.of_string junk with Ok _ | Error _ -> true)

let sexp_roundtrip_prop =
  QCheck.Test.make ~name:"sexp print/parse roundtrip" ~count:500 sexp_arbitrary
    (fun sexp ->
      match Sexp.of_string (Sexp.to_string sexp) with
      | Ok parsed -> Sexp.equal sexp parsed
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Value *)

let value_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let scalar =
            oneof
              [
                return Value.Null;
                map (fun b -> Value.Bool b) bool;
                map (fun i -> Value.Int i) int;
                map (fun f -> Value.Float f) (float_bound_inclusive 1e9);
                map (fun s -> Value.Str s) (string_size ~gen:printable (int_bound 10));
              ]
          in
          if n <= 0 then scalar
          else
            frequency
              [
                4, scalar;
                1, map (fun xs -> Value.List xs) (list_size (int_bound 3) (self (n / 2)));
              ])
        (min n 10))

let value_arbitrary = QCheck.make ~print:Value.to_string value_gen

let value_roundtrip_prop =
  QCheck.Test.make ~name:"value sexp roundtrip" ~count:500 value_arbitrary
    (fun v ->
      match Value.of_sexp (Value.to_sexp v) with
      | Ok v' -> Value.equal v v'
      | Error _ -> false)

let test_value_accessors () =
  check (Alcotest.option int_c) "as_int" (Some 3) (Value.as_int (Value.Int 3));
  check (Alcotest.option int_c) "as_int on str" None
    (Value.as_int (Value.Str "3"));
  check (Alcotest.option (Alcotest.float 1e-9)) "as_number on int" (Some 3.)
    (Value.as_number (Value.Int 3));
  check (Alcotest.option (Alcotest.float 1e-9)) "as_number on float" (Some 2.5)
    (Value.as_number (Value.Float 2.5));
  check (Alcotest.option bool_c) "as_bool" (Some true)
    (Value.as_bool (Value.Bool true))

let test_value_compare_total () =
  let vs = [ Value.Null; Value.Bool false; Value.Int 0; Value.Float 0.;
             Value.Str ""; Value.List [] ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          check int_c "antisymmetric" (Stdlib.compare c1 0) (Stdlib.compare 0 c2))
        vs)
    vs

(* ------------------------------------------------------------------ *)
(* Path *)

let test_path_parse_print () =
  let p = ok_or_fail "parse" (Path.of_string "/vmRoot/host-1/vm_2") in
  check string_c "print" "/vmRoot/host-1/vm_2" (Path.to_string p);
  check (Alcotest.list string_c) "segments" [ "vmRoot"; "host-1"; "vm_2" ]
    (Path.segments p);
  check string_c "root prints" "/" (Path.to_string Path.root);
  check int_c "depth" 3 (Path.depth p)

let test_path_invalid () =
  List.iter
    (fun s ->
      match Path.of_string s with
      | Ok _ -> Alcotest.failf "expected error for %S" s
      | Error _ -> ())
    [ ""; "no-slash"; "//"; "/a//b"; "/a/"; "/a b"; "/a/(x)" ]

let test_path_family () =
  let p = Path.v "/a/b/c" in
  check (Alcotest.option string_c) "basename" (Some "c") (Path.basename p);
  (match Path.parent p with
   | Some parent -> check string_c "parent" "/a/b" (Path.to_string parent)
   | None -> Alcotest.fail "parent");
  check (Alcotest.list string_c) "ancestors nearest-first"
    [ "/a/b"; "/a"; "/" ]
    (List.map Path.to_string (Path.ancestors p));
  check bool_c "prefix self" true (Path.is_prefix p p);
  check bool_c "prefix ancestor" true (Path.is_prefix (Path.v "/a") p);
  check bool_c "root prefixes all" true (Path.is_prefix Path.root p);
  check bool_c "not prefix sibling" false
    (Path.is_prefix (Path.v "/a/x") p);
  check bool_c "descendant not prefix" false (Path.is_prefix p (Path.v "/a"))

let path_gen =
  let open QCheck.Gen in
  let seg = oneofl [ "a"; "b"; "host-1"; "vm_2"; "img.qcow2"; "x" ] in
  map
    (fun segs -> List.fold_left Path.child Path.root segs)
    (list_size (int_bound 5) seg)

let path_arbitrary = QCheck.make ~print:Path.to_string path_gen

let path_roundtrip_prop =
  QCheck.Test.make ~name:"path string roundtrip" ~count:300 path_arbitrary
    (fun p ->
      match Path.of_string (Path.to_string p) with
      | Ok p' -> Path.equal p p'
      | Error _ -> false)

let path_prefix_prop =
  QCheck.Test.make ~name:"parent is always a prefix" ~count:300 path_arbitrary
    (fun p ->
      match Path.parent p with
      | None -> Path.is_root p
      | Some parent -> Path.is_prefix parent p && not (Path.equal parent p))

(* ------------------------------------------------------------------ *)
(* Tree *)

let sample_tree () =
  let t = Tree.empty in
  let t = tree_ok "insert vmRoot" (Tree.insert t (Path.v "/vmRoot") ~kind:"vmRoot" ()) in
  let t =
    tree_ok "insert host"
      (Tree.insert t (Path.v "/vmRoot/host1") ~kind:"vmHost"
         ~attrs:[ "mem_mb", Value.Int 8192; "hypervisor", Value.Str "xen" ]
         ())
  in
  let t =
    tree_ok "insert vm"
      (Tree.insert t (Path.v "/vmRoot/host1/vm1") ~kind:"vm"
         ~attrs:[ "state", Value.Str "stopped"; "mem_mb", Value.Int 1024 ]
         ())
  in
  t

(* Build a tree from (path, kind, attrs) rows, parents listed first. *)
let tree_of entries =
  List.fold_left
    (fun t (path, kind, attrs) ->
      tree_ok ("insert " ^ path) (Tree.insert t (Path.v path) ~kind ~attrs ()))
    Tree.empty entries

let test_tree_insert_find () =
  let t = sample_tree () in
  check (Alcotest.option string_c) "kind" (Some "vm")
    (Tree.kind t (Path.v "/vmRoot/host1/vm1"));
  check bool_c "mem" true (Tree.mem t (Path.v "/vmRoot/host1"));
  check bool_c "not mem" false (Tree.mem t (Path.v "/vmRoot/host2"));
  (match Tree.get_attr t (Path.v "/vmRoot/host1") "mem_mb" with
   | Some (Value.Int 8192) -> ()
   | _ -> Alcotest.fail "attr");
  check int_c "size" 3 (Tree.size t);
  check (Alcotest.option (Alcotest.list string_c)) "children"
    (Some [ "vm1" ])
    (Tree.child_names t (Path.v "/vmRoot/host1"))

let test_tree_errors () =
  let t = sample_tree () in
  (match Tree.insert t (Path.v "/vmRoot/host1") ~kind:"vmHost" () with
   | Error (Tree.Exists _) -> ()
   | _ -> Alcotest.fail "expected Exists");
  (match Tree.insert t (Path.v "/nowhere/x") ~kind:"x" () with
   | Error (Tree.No_parent _) -> ()
   | _ -> Alcotest.fail "expected No_parent");
  (match Tree.remove t (Path.v "/vmRoot/ghost") with
   | Error (Tree.Missing _) -> ()
   | _ -> Alcotest.fail "expected Missing");
  (match Tree.remove t Path.root with
   | Error Tree.Root_immutable -> ()
   | _ -> Alcotest.fail "expected Root_immutable");
  match Tree.set_attr t (Path.v "/ghost") "a" Value.Null with
  | Error (Tree.Missing _) -> ()
  | _ -> Alcotest.fail "expected Missing on set_attr"

let test_tree_remove_subtree () =
  let t = sample_tree () in
  let t' = tree_ok "remove" (Tree.remove t (Path.v "/vmRoot/host1")) in
  check bool_c "subtree gone" false (Tree.mem t' (Path.v "/vmRoot/host1/vm1"));
  check int_c "size after" 1 (Tree.size t')

let test_tree_persistence () =
  let t = sample_tree () in
  let t' =
    tree_ok "set" (Tree.set_attr t (Path.v "/vmRoot/host1/vm1") "state"
                     (Value.Str "running"))
  in
  (* The original snapshot is untouched: rollbacks restore old values. *)
  (match Tree.get_attr t (Path.v "/vmRoot/host1/vm1") "state" with
   | Some (Value.Str "stopped") -> ()
   | _ -> Alcotest.fail "old snapshot mutated");
  match Tree.get_attr t' (Path.v "/vmRoot/host1/vm1") "state" with
  | Some (Value.Str "running") -> ()
  | _ -> Alcotest.fail "new snapshot wrong"

let test_tree_replace_subtree () =
  let t = sample_tree () in
  let replacement =
    Tree.make_node ~kind:"vmHost"
      ~attrs:[ "mem_mb", Value.Int 4096 ]
      ~children:[ "vm9", Tree.make_node ~kind:"vm" () ]
      ()
  in
  let t' =
    tree_ok "replace" (Tree.replace_subtree t (Path.v "/vmRoot/host1") replacement)
  in
  check bool_c "new child" true (Tree.mem t' (Path.v "/vmRoot/host1/vm9"));
  check bool_c "old child gone" false (Tree.mem t' (Path.v "/vmRoot/host1/vm1"))

let test_tree_fold_preorder () =
  let t = sample_tree () in
  let paths = List.rev (Tree.fold (fun p _ acc -> Path.to_string p :: acc) t []) in
  check (Alcotest.list string_c) "preorder"
    [ "/"; "/vmRoot"; "/vmRoot/host1"; "/vmRoot/host1/vm1" ]
    paths

let test_tree_codec () =
  let t = sample_tree () in
  let t' = ok_or_fail "decode" (Tree.of_string (Tree.to_string t)) in
  check bool_c "roundtrip equal" true (Tree.equal t t')

(* Random tree via a sequence of inserts under previously created paths. *)
let tree_gen =
  let open QCheck.Gen in
  let* n = int_bound 20 in
  let rec build t paths k st =
    if k = 0 then t
    else
      let parent = List.nth paths (Random.State.int st (List.length paths)) in
      let name = Printf.sprintf "n%d" k in
      let path = Path.child parent name in
      match
        Tree.insert t path ~kind:"node"
          ~attrs:[ "v", Value.Int k ]
          ()
      with
      | Ok t' -> build t' (path :: paths) (k - 1) st
      | Error _ -> build t paths (k - 1) st
  in
  fun st -> build Tree.empty [ Path.root ] n st

let tree_arbitrary = QCheck.make ~print:Tree.to_string tree_gen

let tree_codec_prop =
  QCheck.Test.make ~name:"tree sexp roundtrip" ~count:200 tree_arbitrary
    (fun t ->
      match Tree.of_string (Tree.to_string t) with
      | Ok t' -> Tree.equal t t'
      | Error _ -> false)

let tree_size_prop =
  QCheck.Test.make ~name:"size counts non-root nodes" ~count:200 tree_arbitrary
    (fun t ->
      let counted = Tree.fold (fun p _ acc -> if Path.is_root p then acc else acc + 1) t 0 in
      counted = Tree.size t)

(* ------------------------------------------------------------------ *)
(* Diff *)

let test_diff_equal_trees () =
  let t = sample_tree () in
  check int_c "no changes" 0 (List.length (Diff.diff ~old_tree:t ~new_tree:t))

let test_diff_detects_changes () =
  let t = sample_tree () in
  let vm = Path.v "/vmRoot/host1/vm1" in
  let t1 = tree_ok "set" (Tree.set_attr t vm "state" (Value.Str "running")) in
  (match Diff.diff ~old_tree:t ~new_tree:t1 with
   | [ Diff.Attr_set (p, "state", Some (Value.Str "stopped"), Value.Str "running") ]
     when Path.equal p vm -> ()
   | changes ->
     Alcotest.failf "unexpected: %s"
       (String.concat "; " (List.map Diff.change_to_string changes)));
  let t2 = tree_ok "rm" (Tree.remove t vm) in
  (match Diff.diff ~old_tree:t ~new_tree:t2 with
   | [ Diff.Removed p ] when Path.equal p vm -> ()
   | _ -> Alcotest.fail "expected Removed");
  (match Diff.diff ~old_tree:t2 ~new_tree:t with
   | [ Diff.Added (p, _) ] when Path.equal p vm -> ()
   | _ -> Alcotest.fail "expected Added");
  let t3 = tree_ok "attr rm" (Tree.remove_attr t vm "mem_mb") in
  match Diff.diff ~old_tree:t ~new_tree:t3 with
  | [ Diff.Attr_removed (p, "mem_mb", Value.Int 1024) ] when Path.equal p vm -> ()
  | _ -> Alcotest.fail "expected Attr_removed"

let diff_empty_iff_equal_prop =
  QCheck.Test.make ~name:"diff empty iff trees equal" ~count:100
    (QCheck.pair tree_arbitrary tree_arbitrary)
    (fun (a, b) ->
      let d = Diff.diff ~old_tree:a ~new_tree:b in
      (d = []) = Tree.equal a b)

(* The deterministic ordering contract the goal-state planner (lib/plan)
   depends on: preorder; per node kind, then attrs by name, then children
   by name; Added/Removed emitted once at the subtree root. *)
let test_diff_ordering () =
  let old_tree =
    tree_of
      [
        "/vmRoot", "vmRoot", [];
        "/vmRoot/hostA", "vmHost", [ "mem_mb", Value.Int 8192 ];
        "/vmRoot/hostA/vm1", "vm", [ "state", Value.Str "running" ];
        "/vmRoot/hostA/vm2", "vm", [ "state", Value.Str "running" ];
        "/vmRoot/hostB", "vmHost", [];
      ]
  in
  let new_tree =
    tree_of
      [
        "/vmRoot", "vmRoot", [ "zone", Value.Str "z1" ];
        "/vmRoot/hostA", "vmHost", [];
        "/vmRoot/hostA/vm1", "vm", [ "state", Value.Str "stopped" ];
        "/vmRoot/hostA/vm3", "vm", [];
        "/vmRoot/hostC", "vmHost", [];
      ]
  in
  let rendered =
    List.map Diff.change_to_string
      (Diff.diff ~old_tree ~new_tree)
  in
  let expect =
    [
      (* preorder: /vmRoot's own attr change first *)
      "~ /vmRoot +zone=\"z1\"";
      (* then hostA's attr change, then hostA's children in name order *)
      "~ /vmRoot/hostA -mem_mb (was 8192)";
      "~ /vmRoot/hostA/vm1 state: \"running\" -> \"stopped\"";
      "- /vmRoot/hostA/vm2";
      "+ /vmRoot/hostA/vm3 [vm]";
      (* then hostA's siblings in name order *)
      "- /vmRoot/hostB";
      "+ /vmRoot/hostC [vmHost]";
    ]
  in
  check (Alcotest.list string_c) "deterministic order" expect rendered

let test_diff_patch_roundtrip () =
  let old_tree = sample_tree () in
  let new_tree =
    tree_of
      [
        "/vmRoot", "vmRoot", [];
        "/vmRoot/host1", "vmHost", [ "mem_mb", Value.Int 4096 ];
        "/vmRoot/host1/vm7", "vm", [ "state", Value.Str "running" ];
        "/netRoot", "netRoot", [];
      ]
  in
  match Diff.patch old_tree (Diff.diff ~old_tree ~new_tree) with
  | Ok patched -> check bool_c "patch reaches new tree" true (Tree.equal patched new_tree)
  | Error e -> Alcotest.fail (Tree.error_to_string e)

(* Folding the diff over the old tree must rebuild the new tree — this is
   the machine-checkable face of the ordering guarantee (an [Added] whose
   parent add came later would fail with [No_parent]). *)
let diff_patch_prop =
  QCheck.Test.make ~name:"patch old (diff old new) = new" ~count:300
    (QCheck.pair tree_arbitrary tree_arbitrary)
    (fun (a, b) ->
      match Diff.patch a (Diff.diff ~old_tree:a ~new_tree:b) with
      | Ok patched -> Tree.equal patched b
      | Error _ -> false)

(* Added/Removed changes each cover a whole subtree: no two adds (or two
   removes) are ever ancestor-related. *)
let diff_no_nested_subtree_changes_prop =
  QCheck.Test.make ~name:"diff adds/removes are never nested" ~count:300
    (QCheck.pair tree_arbitrary tree_arbitrary)
    (fun (a, b) ->
      let changes = Diff.diff ~old_tree:a ~new_tree:b in
      let adds =
        List.filter_map (function Diff.Added (p, _) -> Some p | _ -> None) changes
      in
      let removes =
        List.filter_map (function Diff.Removed p -> Some p | _ -> None) changes
      in
      let no_nesting paths =
        List.for_all
          (fun p ->
            List.for_all
              (fun q -> Path.equal p q || not (Path.is_prefix p q))
              paths)
          paths
      in
      no_nesting adds && no_nesting removes)


(* ------------------------------------------------------------------ *)
(* Model-based property: the tree agrees with a naive reference model
   (path-keyed association list) over random operation sequences. *)

type model_op =
  | M_insert of string * string          (* path, kind *)
  | M_remove of string
  | M_set_attr of string * string * int

let model_op_gen =
  let open QCheck.Gen in
  let path_gen =
    oneofl [ "/a"; "/a/b"; "/a/b/c"; "/a/d"; "/e"; "/e/f"; "/e/f/g" ]
  in
  frequency
    [
      4, map2 (fun p k -> M_insert (p, "k" ^ string_of_int k)) path_gen (int_bound 3);
      2, map (fun p -> M_remove p) path_gen;
      3, map2 (fun p v -> M_set_attr (p, "x", v)) path_gen (int_bound 100);
    ]

let model_ops_arbitrary =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | M_insert (p, k) -> Printf.sprintf "insert %s %s" p k
             | M_remove p -> Printf.sprintf "remove %s" p
             | M_set_attr (p, a, v) -> Printf.sprintf "set %s.%s=%d" p a v)
           ops))
    QCheck.Gen.(list_size (int_bound 40) model_op_gen)

(* The reference: a sorted list of (path, kind, attrs). *)
module Model = struct
  type t = (string * string * (string * int) list) list

  let parent p =
    match String.rindex_opt p '/' with
    | Some 0 -> Some "/"
    | Some i -> Some (String.sub p 0 i)
    | None -> None

  let mem (m : t) p = p = "/" || List.exists (fun (q, _, _) -> q = p) m

  let insert m p kind =
    if mem m p then Error "exists"
    else if not (mem m (Option.value (parent p) ~default:"?")) then
      Error "no parent"
    else Ok ((p, kind, []) :: m)

  let remove m p =
    if not (mem m p) || p = "/" then Error "missing"
    else
      Ok
        (List.filter
           (fun (q, _, _) ->
             not (q = p || (String.length q > String.length p
                            && String.sub q 0 (String.length p + 1) = p ^ "/")))
           m)

  let set_attr m p a v =
    if not (mem m p) || p = "/" then Error "missing"
    else
      Ok
        (List.map
           (fun (q, k, attrs) ->
             if q = p then (q, k, (a, v) :: List.remove_assoc a attrs)
             else (q, k, attrs))
           m)
end

let tree_model_prop =
  QCheck.Test.make ~name:"tree agrees with reference model" ~count:300
    model_ops_arbitrary (fun ops ->
      let apply (tree, model) op =
        match op with
        | M_insert (p, kind) ->
          (match Tree.insert tree (Path.v p) ~kind (), Model.insert model p kind with
           | Ok tree', Ok model' -> (tree', model')
           | Error _, Error _ -> (tree, model)
           | Ok _, Error _ | Error _, Ok _ ->
             QCheck.Test.fail_report ("insert disagreement at " ^ p))
        | M_remove p ->
          (match Tree.remove tree (Path.v p), Model.remove model p with
           | Ok tree', Ok model' -> (tree', model')
           | Error _, Error _ -> (tree, model)
           | Ok _, Error _ | Error _, Ok _ ->
             QCheck.Test.fail_report ("remove disagreement at " ^ p))
        | M_set_attr (p, a, v) ->
          (match
             Tree.set_attr tree (Path.v p) a (Value.Int v),
             Model.set_attr model p a v
           with
           | Ok tree', Ok model' -> (tree', model')
           | Error _, Error _ -> (tree, model)
           | Ok _, Error _ | Error _, Ok _ ->
             QCheck.Test.fail_report ("set_attr disagreement at " ^ p))
      in
      let tree, model = List.fold_left apply (Tree.empty, []) ops in
      (* Same population... *)
      if Tree.size tree <> List.length model then
        QCheck.Test.fail_report "size mismatch";
      (* ...and identical per-node content. *)
      List.for_all
        (fun (p, kind, attrs) ->
          let path = Path.v p in
          Tree.kind tree path = Some kind
          && List.for_all
               (fun (a, v) -> Tree.get_attr tree path a = Some (Value.Int v))
               attrs)
        model)

let suite =
  [
    ("sexp: print/parse cases", `Quick, test_sexp_print_parse);
    ("sexp: parse errors", `Quick, test_sexp_parse_errors);
    ("sexp: whitespace", `Quick, test_sexp_whitespace);
    ("sexp: line comments", `Quick, test_sexp_comments);
    ("sexp: assoc", `Quick, test_sexp_assoc);
    QCheck_alcotest.to_alcotest sexp_roundtrip_prop;
    QCheck_alcotest.to_alcotest sexp_fuzz_prop;
    QCheck_alcotest.to_alcotest value_roundtrip_prop;
    ("value: accessors", `Quick, test_value_accessors);
    ("value: compare total", `Quick, test_value_compare_total);
    ("path: parse/print", `Quick, test_path_parse_print);
    ("path: invalid", `Quick, test_path_invalid);
    ("path: family relations", `Quick, test_path_family);
    QCheck_alcotest.to_alcotest path_roundtrip_prop;
    QCheck_alcotest.to_alcotest path_prefix_prop;
    ("tree: insert/find", `Quick, test_tree_insert_find);
    ("tree: errors", `Quick, test_tree_errors);
    ("tree: remove subtree", `Quick, test_tree_remove_subtree);
    ("tree: persistence", `Quick, test_tree_persistence);
    ("tree: replace subtree", `Quick, test_tree_replace_subtree);
    ("tree: fold preorder", `Quick, test_tree_fold_preorder);
    ("tree: codec", `Quick, test_tree_codec);
    QCheck_alcotest.to_alcotest tree_codec_prop;
    QCheck_alcotest.to_alcotest tree_size_prop;
    ("diff: equal trees", `Quick, test_diff_equal_trees);
    ("diff: detects changes", `Quick, test_diff_detects_changes);
    ("diff: deterministic ordering", `Quick, test_diff_ordering);
    ("diff: patch roundtrip", `Quick, test_diff_patch_roundtrip);
    QCheck_alcotest.to_alcotest diff_empty_iff_equal_prop;
    QCheck_alcotest.to_alcotest diff_patch_prop;
    QCheck_alcotest.to_alcotest diff_no_nested_subtree_changes_prop;
    QCheck_alcotest.to_alcotest tree_model_prop;
  ]

let () = Alcotest.run "data" [ ("data", suite) ]
