(* Integration tests at the experiment-harness level: small versions of the
   paper's runs, plus whole-system invariants under mixed workloads and
   random fault injection. *)

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Perf harness invariants (miniature Fig. 4/5 run) *)

let test_perf_run_invariants () =
  let cfg =
    {
      Experiments.Perf.quick_config with
      Experiments.Perf.hosts = 100;
      window_start = 0;
      duration = 30;
      drain = 60.;
      bucket = 10.;
    }
  in
  let r = Experiments.Perf.run { cfg with Experiments.Perf.multiplier = 1 } in
  check int_c "nothing lost" 0 r.Experiments.Perf.lost;
  check int_c "all accounted" r.Experiments.Perf.offered
    (r.Experiments.Perf.committed + r.Experiments.Perf.aborted
     + r.Experiments.Perf.failed);
  check bool_c "some committed" true (r.Experiments.Perf.committed > 0);
  check bool_c "low-load median under a second" true
    (Metrics.Cdf.quantile r.Experiments.Perf.latency 0.5 < 1.0);
  List.iter
    (fun (_, u) ->
      if u < -1e-9 || u > 1.0 +. 1e-9 then
        Alcotest.failf "utilization %f out of range" u)
    (Metrics.Series.rows r.Experiments.Perf.cpu_util)

(* ------------------------------------------------------------------ *)
(* HA harness invariants (miniature §6.4) *)

let test_ha_run_invariants () =
  let r =
    Experiments.Ha.run ~session_timeout:2. ~rate:2. ~kill_at:20. ~duration:60.
      ()
  in
  check int_c "no transaction lost" 0 r.Experiments.Ha.lost;
  check bool_c "takeover after failure detection" true
    (r.Experiments.Ha.takeover_seconds >= 1.5);
  check bool_c "recovery bounded" true
    (r.Experiments.Ha.recovery_seconds < 15.);
  check bool_c "commits resumed" true
    (Float.is_finite r.Experiments.Ha.first_commit_after)

(* ------------------------------------------------------------------ *)
(* Whole-system consistency under the hosting mix *)

let hosting_ops ~seed ~count =
  let config =
    {
      Workload.Hosting.default_config with
      Workload.Hosting.rate_per_second = 1.;
      duration_seconds = float_of_int count;
      compute_hosts = 8;
      storage_hosts = 2;
      hypervisor_groups = 2;
      vm_mem_mb = 512;
    }
  in
  Workload.Hosting.generate ~seed config

let run_hosting_mix ~seed ~fault_probability =
  let sim = Des.Sim.create ~seed () in
  let size =
    {
      Tcloud.Setup.small with
      Tcloud.Setup.compute_hosts = 8;
      storage_hosts = 2;
      storage_capacity_mb = 5_000_000;
    }
  in
  (* Instant devices keep the test fast; Full mode still drives them. *)
  let inv = Tcloud.Setup.build ~rng:(Des.Sim.rng sim) size in
  if fault_probability > 0. then
    List.iter
      (fun device ->
        match
          Devices.Fault.set_probability
            (Devices.Device.faults device)
            fault_probability
        with
        | Ok () -> ()
        | Error msg -> failwith msg)
      inv.Tcloud.Setup.devices;
  let platform =
    Tropic.Platform.create
      {
        Tropic.Platform.default_spec with
        Tropic.Platform.workers = 4;
        controller_config = Tcloud.Setup.controller_config;
      }
      inv.Tcloud.Setup.env ~initial_tree:inv.Tcloud.Setup.tree
      ~devices:inv.Tcloud.Setup.devices sim
  in
  let committed = ref 0 and aborted = ref 0 and failed = ref 0 in
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"mix" sim (fun () ->
         List.iter
           (fun (_, op) ->
             let proc, args =
               Workload.Hosting.to_submission
                 ~host_path:(fun i ->
                   Data.Path.to_string (Tcloud.Setup.compute_path i))
                 ~storage_path:(fun i ->
                   Data.Path.to_string (Tcloud.Setup.storage_path i))
                 op
             in
             match Tropic.Platform.run_txn platform ~proc ~args with
             | Tropic.Txn.Committed -> incr committed
             | Tropic.Txn.Aborted _ -> incr aborted
             | Tropic.Txn.Failed _ -> incr failed
             | Tropic.Txn.Initialized | Tropic.Txn.Accepted | Tropic.Txn.Deferred
             | Tropic.Txn.Started ->
               ())
           (hosting_ops ~seed ~count:150);
         finished := true));
  ignore (Des.Sim.run ~until:7_200. sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     Alcotest.failf "process %s crashed: %s" who (Printexc.to_string exn));
  if not !finished then Alcotest.fail "mix did not finish";
  (platform, inv, !committed, !aborted, !failed)

(* Every device whose subtree is not quarantined must agree exactly with
   the logical layer — the system's central invariant. *)
let assert_layers_consistent platform inv =
  let leader =
    match Tropic.Platform.leader_controller platform with
    | Some c -> c
    | None -> Alcotest.fail "no leading controller after the run"
  in
  let quarantined = Tropic.Controller.quarantined leader in
  let tree = Tropic.Controller.tree leader in
  let checked = ref 0 in
  List.iter
    (fun device ->
      let root = Devices.Device.root device in
      let is_quarantined =
        List.exists (fun q -> Data.Path.is_prefix q root) quarantined
      in
      if not is_quarantined then begin
        incr checked;
        match Data.Tree.subtree tree root with
        | Error e -> Alcotest.fail (Data.Tree.error_to_string e)
        | Ok logical ->
          if not (Data.Tree.equal logical (Devices.Device.export device)) then
            Alcotest.failf "layers diverge at %s" (Data.Path.to_string root)
      end)
    inv.Tcloud.Setup.devices;
  !checked

let test_hosting_mix_consistency () =
  let platform, inv, committed, _aborted, failed = run_hosting_mix ~seed:31 ~fault_probability:0. in
  check bool_c "most operations commit" true (committed > 100);
  check int_c "no failed txns without faults" 0 failed;
  let checked = assert_layers_consistent platform inv in
  check int_c "all devices checked" (List.length inv.Tcloud.Setup.devices) checked

let test_hosting_mix_chaos_consistency () =
  let platform, inv, committed, aborted, _failed =
    run_hosting_mix ~seed:33 ~fault_probability:0.04
  in
  check bool_c "faults caused aborts" true (aborted > 0);
  check bool_c "still makes progress" true (committed > 50);
  (* Unquarantined devices stay exactly consistent even under random
     device faults: aborted transactions rolled back both layers. *)
  ignore (assert_layers_consistent platform inv)

(* ------------------------------------------------------------------ *)
(* Idempotent recovery under repeated controller crashes: no transaction
   is lost, none executes twice on the devices, and the layers stay
   consistent. *)

let test_repeated_controller_crashes () =
  let sim = Des.Sim.create ~seed:41 () in
  let size =
    {
      Tcloud.Setup.small with
      Tcloud.Setup.compute_hosts = 16;
      storage_hosts = 4;
      storage_capacity_mb = 5_000_000;
    }
  in
  let inv = Tcloud.Setup.build ~rng:(Des.Sim.rng sim) size in
  let platform =
    Tropic.Platform.create
      {
        Tropic.Platform.default_spec with
        Tropic.Platform.controllers = 3;
        workers = 3;
        controller_config = Tcloud.Setup.controller_config;
        controller_session_timeout = 2.0;
      }
      inv.Tcloud.Setup.env ~initial_tree:inv.Tcloud.Setup.tree
      ~devices:inv.Tcloud.Setup.devices sim
  in
  let states = ref [] in
  let finished = ref false in
  (* Assassin: kills whichever controller leads, twice, mid-stream.  Only
     two kills with three controllers — a quorum of the coordination
     service stays up throughout, but the platform loses its leader. *)
  ignore
    (Des.Proc.spawn ~name:"assassin" sim (fun () ->
         List.iter
           (fun delay ->
             Des.Proc.sleep delay;
             let leader = Tropic.Platform.await_leader_controller platform in
             let index =
               let found = ref 0 in
               Array.iteri
                 (fun i c -> if c == leader then found := i)
                 (Tropic.Platform.controllers platform);
               !found
             in
             Tropic.Platform.kill_controller platform index)
           [ 5.; 15. ]));
  ignore
    (Des.Proc.spawn ~name:"stream" sim (fun () ->
         let ids =
           List.init 40 (fun k ->
               let h = k mod size.Tcloud.Setup.compute_hosts in
               let id =
                 Tropic.Platform.submit platform ~proc:"spawnVM"
                   ~args:
                     (Tcloud.Procs.spawn_vm_args
                        ~vm:(Printf.sprintf "cr%03d" k)
                        ~template:"base.img" ~mem_mb:512
                        ~storage:
                          (Data.Path.to_string
                             (Tcloud.Setup.storage_path
                                (h mod size.Tcloud.Setup.storage_hosts)))
                        ~host:
                          (Data.Path.to_string (Tcloud.Setup.compute_path h)))
               in
               Des.Proc.sleep 0.5;
               id)
         in
         states := List.map (fun id -> Tropic.Platform.await platform id) ids;
         finished := true));
  ignore (Des.Sim.run ~until:600. sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     Alcotest.failf "process %s crashed: %s" who (Printexc.to_string exn));
  if not !finished then Alcotest.fail "stream did not finish";
  let committed =
    List.length (List.filter (fun s -> s = Tropic.Txn.Committed) !states)
  in
  check int_c "all forty terminal" 40 (List.length !states);
  check bool_c "every txn terminal" true
    (List.for_all Tropic.Txn.is_terminal !states);
  check int_c "all committed (no capacity pressure)" 40 committed;
  (* Exactly-once on the devices: each committed spawn left exactly one VM. *)
  let vm_count =
    Array.fold_left
      (fun acc (_, compute) ->
        acc + List.length (Devices.Compute.vm_names compute))
      0 inv.Tcloud.Setup.computes
  in
  check int_c "each spawn executed exactly once" committed vm_count;
  ignore (assert_layers_consistent platform inv)

(* The repository's headline claim: whole-platform runs are deterministic
   — same seed, same committed set, same final logical tree. *)
let test_whole_run_determinism () =
  let final_tree (platform, _, _, _, _) =
    match Tropic.Platform.leader_controller platform with
    | Some c -> Tropic.Controller.tree c
    | None -> Alcotest.fail "no leader"
  in
  let run seed = run_hosting_mix ~seed ~fault_probability:0.02 in
  let a = run 55 and b = run 55 and c = run 56 in
  let counts (_, _, committed, aborted, failed) = (committed, aborted, failed) in
  check bool_c "same seed, same outcome counts" true (counts a = counts b);
  check bool_c "same seed, same final tree" true
    (Data.Tree.equal (final_tree a) (final_tree b));
  check bool_c "different seed differs somewhere" true
    (counts a <> counts c || not (Data.Tree.equal (final_tree a) (final_tree c)))

(* ------------------------------------------------------------------ *)
(* Scenario engine *)

let test_scenario_engine () =
  let script =
    String.concat "\n"
      [
        "hosts 4"; "mode full"; "seed 3";
        "spawn a 0"; "expect committed";
        "spawn big 0 9000"; "expect aborted";
        "migrate a 0 1"; "expect aborted";
        "destroy a 0"; "expect committed";
        "stats";
      ]
  in
  match Experiments.Scenario.run_script script with
  | Error message -> Alcotest.fail message
  | Ok outcome ->
    check int_c "four transactions" 4 outcome.Experiments.Scenario.transactions;
    check int_c "all expectations hold" 0
      outcome.Experiments.Scenario.failed_expectations;
    check bool_c "transcript non-empty" true
      (List.length outcome.Experiments.Scenario.lines >= 5)

let test_scenario_expectation_failure_detected () =
  match
    Experiments.Scenario.run_script "hosts 2\nspawn a 0\nexpect aborted"
  with
  | Error message -> Alcotest.fail message
  | Ok outcome ->
    check int_c "one failed expectation" 1
      outcome.Experiments.Scenario.failed_expectations

let test_scenario_unexpected_outcomes () =
  (* An abort blessed by `expect aborted` is healthy; one with no expect
     counts as unexpected (it is what makes tcloud_sim exit non-zero). *)
  (match
     Experiments.Scenario.run_script
       "hosts 2\nspawn a 0\nexpect committed\nspawn big 0 9000\nexpect aborted"
   with
  | Error message -> Alcotest.fail message
  | Ok outcome ->
    check int_c "blessed abort is not unexpected" 0
      outcome.Experiments.Scenario.unexpected_outcomes;
    check bool_c "layers consistent" true
      outcome.Experiments.Scenario.layers_consistent);
  match
    Experiments.Scenario.run_script
      "hosts 2\nspawn a 0\nspawn big 0 9000\nspawn b 1\nexpect committed"
  with
  | Error message -> Alcotest.fail message
  | Ok outcome ->
    check int_c "unblessed abort is unexpected" 1
      outcome.Experiments.Scenario.unexpected_outcomes;
    check int_c "no failed expectations" 0
      outcome.Experiments.Scenario.failed_expectations;
    check bool_c "layers still consistent" true
      outcome.Experiments.Scenario.layers_consistent

(* Admission control in a script: a fire-and-forget storm fills the
   pending queue, so the next awaited spawn is shed with the overload
   abort.  Regression for the tcloud_sim exit status: a shed transaction
   is the platform protecting itself, so it never counts as an
   unexpected outcome — blessed or not. *)
let test_scenario_overload_shedding () =
  let script =
    String.concat "\n"
      [
        "hosts 2"; "mode full"; "seed 7"; "admission 3 2";
        "storm 10 0";
        "spawn extra 0";  (* unblessed: shed must not be unexpected *)
        "spawn probe 0"; "expect overload";
        "stats";
      ]
  in
  match Experiments.Scenario.run_script script with
  | Error message -> Alcotest.fail message
  | Ok outcome ->
    check int_c "overload expectation holds" 0
      outcome.Experiments.Scenario.failed_expectations;
    check int_c "shed aborts are never unexpected" 0
      outcome.Experiments.Scenario.unexpected_outcomes;
    check bool_c "layers consistent after the storm" true
      outcome.Experiments.Scenario.layers_consistent

(* Goal-state convergence from a script: `converge FILE` bootstraps the
   fleet, a second run is a no-op, and `expect-converged` holds. *)
let with_goal_file contents f =
  let path = Filename.temp_file "tropic_goal" ".goal" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc contents);
      f path)

let test_scenario_converge () =
  with_goal_file
    "(goal (host 0 (vm web0 running 1024) (vm web1 stopped 512))\n\
    \      (switch 0 (vlan 100 tenantA (port web0))))"
    (fun goal ->
      let script =
        String.concat "\n"
          [
            "hosts 2"; "mode full"; "seed 5";
            "converge " ^ goal; "expect-converged";
            "converge " ^ goal; "expect-converged";
          ]
      in
      match Experiments.Scenario.run_script script with
      | Error message -> Alcotest.fail message
      | Ok outcome ->
        check int_c "expectations hold" 0
          outcome.Experiments.Scenario.failed_expectations;
        check int_c "nothing blocked" 0
          outcome.Experiments.Scenario.blocked_convergences;
        (* spawn web0 + spawn web1 + stop web1 + createVlan + attach;
           the second converge finds no drift and submits nothing. *)
        check int_c "five transactions, second converge a no-op" 5
          outcome.Experiments.Scenario.transactions;
        check bool_c "layers consistent" true
          outcome.Experiments.Scenario.layers_consistent)

let test_scenario_converge_blocked () =
  (* A VM bigger than any host can take: every round's spawn aborts on
     the memory constraint, so the executor gives up and the run counts a
     blocked convergence (tcloud_sim's non-zero exit). *)
  with_goal_file "(goal (host 0 (vm whale running 9000)))" (fun goal ->
      let script =
        String.concat "\n"
          [
            "hosts 2"; "mode full"; "seed 5";
            "converge " ^ goal; "expect-converged";
          ]
      in
      match Experiments.Scenario.run_script script with
      | Error message -> Alcotest.fail message
      | Ok outcome ->
        check int_c "blocked convergence counted" 1
          outcome.Experiments.Scenario.blocked_convergences;
        check int_c "expect-converged fails" 1
          outcome.Experiments.Scenario.failed_expectations);
  (* A missing goal file blocks too, without crashing the scenario. *)
  match
    Experiments.Scenario.run_script
      "hosts 2\nconverge /nonexistent/no.goal\nexpect-converged"
  with
  | Error message -> Alcotest.fail message
  | Ok outcome ->
    check int_c "unreadable goal counts as blocked" 1
      outcome.Experiments.Scenario.blocked_convergences

let test_scenario_parse_errors () =
  List.iter
    (fun script ->
      match Experiments.Scenario.run_script script with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" script)
    [ "frobnicate"; "spawn onlyvm"; "sleep minus"; "hosts many";
      "admission 2 5"; "storm ten 0"; "expect sideways" ]

let suite =
  [
    ("perf: miniature run invariants", `Slow, test_perf_run_invariants);
    ("ha: miniature failover invariants", `Slow, test_ha_run_invariants);
    ("hosting mix: layers consistent", `Slow, test_hosting_mix_consistency);
    ("hosting mix: consistent under chaos", `Slow, test_hosting_mix_chaos_consistency);
    ( "recovery: repeated controller crashes, exactly-once",
      `Slow,
      test_repeated_controller_crashes );
    ("whole-run determinism", `Slow, test_whole_run_determinism);
    ("scenario: engine", `Slow, test_scenario_engine);
    ("scenario: failed expectation detected", `Slow, test_scenario_expectation_failure_detected);
    ("scenario: unexpected outcomes tracked", `Slow, test_scenario_unexpected_outcomes);
    ("scenario: overload shedding", `Slow, test_scenario_overload_shedding);
    ("scenario: converge command", `Slow, test_scenario_converge);
    ("scenario: blocked convergence", `Slow, test_scenario_converge_blocked);
    ("scenario: parse errors", `Quick, test_scenario_parse_errors);
  ]

let () = Alcotest.run "experiments" [ ("experiments", suite) ]
