(* Tests for the TROPIC core: unit tests of the engine pieces, plus
   end-to-end transactional orchestration on a full simulated platform. *)

open Tropic

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

module Schema = Devices.Schema

let vm_state_c =
  Alcotest.testable
    (fun fmt s ->
      Format.pp_print_string fmt
        (match s with `Running -> "running" | `Stopped -> "stopped"))
    ( = )

let v_str s = Data.Value.Str s
let host0 = "/vmRoot/host00000"
let host1 = "/vmRoot/host00001"
let storage0 = "/storageRoot/storage00000"

(* ------------------------------------------------------------------ *)
(* Xlog / Txn / Proto codecs *)

let sample_log =
  [
    {
      Xlog.index = 1;
      path = Data.Path.v storage0;
      action = "cloneImage";
      args = [ v_str "base.img"; v_str "vm1.img" ];
      undo = Some "removeImage";
      undo_args = [ v_str "vm1.img" ];
    };
    {
      Xlog.index = 2;
      path = Data.Path.v host0;
      action = "startVM";
      args = [ v_str "vm1" ];
      undo = None;
      undo_args = [];
    };
  ]

let test_xlog_roundtrip () =
  match Xlog.of_sexp (Xlog.to_sexp sample_log) with
  | Ok log ->
    check int_c "length" 2 (List.length log);
    check bool_c "equal" true (log = sample_log)
  | Error reason -> Alcotest.fail reason

let test_txn_roundtrip () =
  let txn =
    Txn.make ~id:42 ~proc:"spawnVM" ~args:[ v_str "vm1"; Data.Value.Int 512 ]
      ~submitted_at:12.5
  in
  txn.Txn.state <- Txn.Started;
  txn.Txn.log <- sample_log;
  txn.Txn.locks <- [ (Data.Path.v host0, Mglock.W) ];
  txn.Txn.start_seq <- Some 7;
  match Txn.of_string (Txn.to_string txn) with
  | Error reason -> Alcotest.fail reason
  | Ok txn' ->
    check int_c "id" 42 txn'.Txn.id;
    check string_c "proc" "spawnVM" txn'.Txn.proc;
    check bool_c "state" true (txn'.Txn.state = Txn.Started);
    check bool_c "log" true (txn'.Txn.log = sample_log);
    check bool_c "locks" true (txn'.Txn.locks = txn.Txn.locks);
    check bool_c "start_seq" true (txn'.Txn.start_seq = Some 7)

let txn_state_strings_prop =
  QCheck.Test.make ~name:"txn state string roundtrip" ~count:100
    QCheck.(
      oneofl
        [ Txn.Initialized; Txn.Accepted; Txn.Deferred; Txn.Started;
          Txn.Committed; Txn.Aborted "x y"; Txn.Failed "z" ])
    (fun state ->
      match Txn.state_of_string (Txn.state_to_string state) with
      | Ok state' -> state = state'
      | Error _ -> false)

let test_proto_roundtrip () =
  let items =
    [
      Proto.Request { proc = "spawnVM"; args = [ v_str "vm1"; Data.Value.Int 3 ] };
      Proto.Result
        { txn_id = 9; outcome = Proto.Phy_committed; exec = Proto.no_exec_stats };
      Proto.Result
        {
          txn_id = 9;
          outcome = Proto.Phy_aborted "disk on fire";
          exec =
            { Proto.retries = 3; transient_failures = 2; timeouts = 1;
              replay_s = 12.25; undo_s = 3.5 };
        };
      Proto.Result
        { txn_id = 9; outcome = Proto.Phy_failed "undo broke"; exec = Proto.no_exec_stats };
      Proto.Control (Proto.Reload (Data.Path.v host0));
      Proto.Control (Proto.Repair (Data.Path.v host0));
      Proto.Control (Proto.Signal (4, Proto.Term));
      Proto.Control (Proto.Signal (5, Proto.Kill));
    ]
  in
  List.iter
    (fun item ->
      match Proto.input_of_string (Proto.input_to_string item) with
      | Ok item' -> check bool_c "roundtrip" true (item = item')
      | Error reason -> Alcotest.fail reason)
    items

let test_seq_of_item_key () =
  (match Proto.seq_of_item_key "/tropic/inputQ/item-0000000042" with
   | Ok 42 -> ()
   | _ -> Alcotest.fail "seq parse");
  match Proto.seq_of_item_key "nodigits" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_deque () =
  let d = Deque.create () in
  Deque.push_back d 1;
  Deque.push_back d 2;
  Deque.push_front d 0;
  check int_c "length" 3 (Deque.length d);
  check (Alcotest.list int_c) "order" [ 0; 1; 2 ] (Deque.to_list d);
  check (Alcotest.option int_c) "pop" (Some 0) (Deque.pop_front d);
  check int_c "removed" 1 (Deque.remove d (fun x -> x = 2));
  check (Alcotest.option int_c) "pop rest" (Some 1) (Deque.pop_front d);
  check (Alcotest.option int_c) "empty" None (Deque.pop_front d)

(* ------------------------------------------------------------------ *)
(* Logical layer: Table 1, constraints, locks, rollback *)

let small_inventory () = Tcloud.Setup.build Tcloud.Setup.small

let spawn_args vm =
  Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img" ~mem_mb:1024
    ~storage:storage0 ~host:host0

let test_table1_spawn_log () =
  let inv = small_inventory () in
  match
    Logical.simulate inv.Tcloud.Setup.env ~tree:inv.Tcloud.Setup.tree
      ~proc:"spawnVM" ~args:(spawn_args "vm1")
  with
  | Error reason -> Alcotest.fail reason
  | Ok { Logical.log; new_tree; actions; _ } ->
    check int_c "five actions (Table 1)" 5 actions;
    let names = List.map (fun (r : Xlog.record) -> r.Xlog.action) log in
    check (Alcotest.list string_c) "action sequence"
      [ "cloneImage"; "exportImage"; "importImage"; "createVM"; "startVM" ]
      names;
    let undos = List.map (fun (r : Xlog.record) -> r.Xlog.undo) log in
    check
      (Alcotest.list (Alcotest.option string_c))
      "undo sequence"
      [ Some "removeImage"; Some "unexportImage"; Some "unimportImage";
        Some "removeVM"; Some "stopVM" ]
      undos;
    (match
       Data.Tree.get_attr new_tree
         (Data.Path.v (host0 ^ "/vm1"))
         Schema.attr_state
     with
     | Some (Data.Value.Str s) -> check string_c "running" "running" s
     | _ -> Alcotest.fail "vm state");
    (* The input tree is untouched (persistence = free rollback). *)
    check bool_c "input tree unchanged" false
      (Data.Tree.mem inv.Tcloud.Setup.tree (Data.Path.v (host0 ^ "/vm1")))

let test_simulation_constraint_violation () =
  let inv = small_inventory () in
  (* 8 GB host: a 9 GB VM violates vm-host-memory. *)
  let args =
    Tcloud.Procs.spawn_vm_args ~vm:"fat" ~template:"base.img" ~mem_mb:9000
      ~storage:storage0 ~host:host0
  in
  match
    Logical.simulate inv.Tcloud.Setup.env ~tree:inv.Tcloud.Setup.tree
      ~proc:"spawnVM" ~args
  with
  | Ok _ -> Alcotest.fail "expected violation"
  | Error reason ->
    check bool_c "mentions the constraint" true
      (Str_contains.contains reason "vm-host-memory")

and test_lock_inference () =
  let inv = small_inventory () in
  match
    Logical.simulate inv.Tcloud.Setup.env ~tree:inv.Tcloud.Setup.tree
      ~proc:"spawnVM" ~args:(spawn_args "vm1")
  with
  | Error reason -> Alcotest.fail reason
  | Ok { Logical.locks; _ } ->
    let has path mode =
      List.exists
        (fun (p, m) -> Data.Path.equal p (Data.Path.v path) && m = mode)
        locks
    in
    check bool_c "W on compute host" true (has host0 Mglock.W);
    check bool_c "W on storage host" true (has storage0 Mglock.W);
    (* Constraint-guard R locks on the constrained hosts themselves. *)
    check bool_c "R guard on compute host" true (has host0 Mglock.R);
    check bool_c "R guard on storage host" true (has storage0 Mglock.R)

let test_logical_rollback_restores_tree () =
  let inv = small_inventory () in
  let env = inv.Tcloud.Setup.env in
  match
    Logical.simulate env ~tree:inv.Tcloud.Setup.tree ~proc:"spawnVM"
      ~args:(spawn_args "vm1")
  with
  | Error reason -> Alcotest.fail reason
  | Ok { Logical.new_tree; log; _ } ->
    (match Logical.rollback env ~tree:new_tree ~log with
     | Error (index, reason) -> Alcotest.failf "undo #%d failed: %s" index reason
     | Ok restored ->
       check bool_c "tree restored exactly" true
         (Data.Tree.equal restored inv.Tcloud.Setup.tree))

let test_rollback_irreversible_fails () =
  let inv = small_inventory () in
  let env = inv.Tcloud.Setup.env in
  (* destroyVM ends in irreversible removes. *)
  match
    Logical.simulate env ~tree:inv.Tcloud.Setup.tree ~proc:"spawnVM"
      ~args:(spawn_args "vm1")
  with
  | Error reason -> Alcotest.fail reason
  | Ok { Logical.new_tree; _ } ->
    (match
       Logical.simulate env ~tree:new_tree ~proc:"destroyVM"
         ~args:
           (Tcloud.Procs.destroy_vm_args ~host:host0 ~storage:storage0 ~vm:"vm1")
     with
     | Error reason -> Alcotest.fail reason
     | Ok { Logical.new_tree = destroyed; log; _ } ->
       (match Logical.rollback env ~tree:destroyed ~log with
        | Ok _ -> Alcotest.fail "expected irreversible undo failure"
        | Error (_, reason) ->
          check bool_c "says irreversible" true
            (Str_contains.contains reason "irreversible")))

let test_migrate_hypervisor_rule () =
  let inv = small_inventory () in
  let env = inv.Tcloud.Setup.env in
  (* host0 is xen, host1 is kvm (alternating). *)
  match
    Logical.simulate env ~tree:inv.Tcloud.Setup.tree ~proc:"spawnVM"
      ~args:(spawn_args "vm1")
  with
  | Error reason -> Alcotest.fail reason
  | Ok { Logical.new_tree; _ } ->
    (match
       Logical.simulate env ~tree:new_tree ~proc:"migrateVM"
         ~args:(Tcloud.Procs.migrate_vm_args ~src:host0 ~dst:host1 ~vm:"vm1")
     with
     | Ok _ -> Alcotest.fail "expected hypervisor rule violation"
     | Error reason ->
       check bool_c "mentions hypervisor" true
         (Str_contains.contains reason "hypervisor"));
    (* host2 is xen again: allowed. *)
    (match
       Logical.simulate env ~tree:new_tree ~proc:"migrateVM"
         ~args:
           (Tcloud.Procs.migrate_vm_args ~src:host0 ~dst:"/vmRoot/host00002"
              ~vm:"vm1")
     with
     | Error reason -> Alcotest.fail reason
     | Ok { Logical.new_tree = migrated; _ } ->
       check bool_c "vm moved" true
         (Data.Tree.mem migrated (Data.Path.v "/vmRoot/host00002/vm1"));
       check bool_c "vm gone from source" false
         (Data.Tree.mem migrated (Data.Path.v (host0 ^ "/vm1"))))

let test_constraints_helpers () =
  let inv = small_inventory () in
  let registry = Dsl.constraints_of inv.Tcloud.Setup.env in
  let tree = inv.Tcloud.Setup.tree in
  check bool_c "vmHost constrained" true
    (Constraints.constrained_kind registry Schema.vm_host_kind);
  check bool_c "vmRoot unconstrained" false
    (Constraints.constrained_kind registry Schema.vm_root_kind);
  (match
     Constraints.highest_constrained_ancestor registry tree (Data.Path.v host0)
   with
   | Some p -> check string_c "host is its own guard" host0 (Data.Path.to_string p)
   | None -> Alcotest.fail "no constrained ancestor");
  check int_c "clean tree has no violations" 0
    (List.length (Constraints.check_path registry tree (Data.Path.v host0)))

(* Property: for every reversible procedure, logical rollback is the exact
   inverse of simulation — over random operation sequences applied to an
   evolving tree. *)
let rollback_inverse_prop =
  let gen =
    QCheck.Gen.(list_size (int_range 1 12) (pair (int_bound 3) (int_bound 3)))
  in
  QCheck.Test.make ~name:"rollback inverts simulation" ~count:60
    (QCheck.make gen) (fun choices ->
      let inv =
        Tcloud.Setup.build
          { Tcloud.Setup.small with Tcloud.Setup.prepopulated_vms_per_host = 2 }
      in
      let env = inv.Tcloud.Setup.env in
      let step (tree, counter) (kind, host) =
        let host_s = Printf.sprintf "/vmRoot/host%05d" host in
        let vm = Tcloud.Setup.prepop_vm_name ~host ~index:(kind mod 2) in
        let proc, args =
          match kind with
          | 0 ->
            ( "spawnVM",
              Tcloud.Procs.spawn_vm_args
                ~vm:(Printf.sprintf "pr%d" counter)
                ~template:"base.img" ~mem_mb:512
                ~storage:"/storageRoot/storage00000" ~host:host_s )
          | 1 -> ("startVM", Tcloud.Procs.start_vm_args ~host:host_s ~vm)
          | 2 -> ("stopVM", Tcloud.Procs.stop_vm_args ~host:host_s ~vm)
          | _ ->
            ( "migrateVM",
              Tcloud.Procs.migrate_vm_args ~src:host_s
                ~dst:(Printf.sprintf "/vmRoot/host%05d" ((host + 2) mod 4))
                ~vm )
        in
        match Logical.simulate env ~tree ~proc ~args with
        | Error _ -> (tree, counter + 1) (* invalid in current state: skip *)
        | Ok { Logical.new_tree; log; _ } ->
          (* The round trip must restore the pre-simulation tree exactly. *)
          (match Logical.rollback env ~tree:new_tree ~log with
           | Ok restored when Data.Tree.equal restored tree ->
             (* Keep the effect and continue mutating. *)
             (new_tree, counter + 1)
           | Ok _ -> QCheck.Test.fail_report "rollback restored a different tree"
           | Error (i, reason) ->
             QCheck.Test.fail_report
               (Printf.sprintf "undo #%d failed: %s" i reason))
      in
      ignore (List.fold_left step (inv.Tcloud.Setup.tree, 0) choices);
      true)

(* ------------------------------------------------------------------ *)
(* Physical layer (devices driven directly, no platform) *)

let test_physical_execute_commit_and_rollback () =
  let inv = small_inventory () in
  let env = inv.Tcloud.Setup.env in
  let devices = Physical.lookup_of_list inv.Tcloud.Setup.devices in
  let log =
    match
      Logical.simulate env ~tree:inv.Tcloud.Setup.tree ~proc:"spawnVM"
        ~args:(spawn_args "vm1")
    with
    | Ok { Logical.log; _ } -> log
    | Error reason -> Alcotest.fail reason
  in
  let _, compute0 = inv.Tcloud.Setup.computes.(0) in
  let _, storage0_dev = inv.Tcloud.Setup.storages.(0) in
  (* Fail the last action (startVM): everything must be undone. *)
  Devices.Fault.fail_next
    (Devices.Device.faults (Devices.Compute.device compute0))
    ~action:Schema.act_start_vm;
  (match Physical.execute ~devices log with
   | Proto.Phy_aborted reason ->
     check bool_c "reports startVM" true
       (Str_contains.contains reason "startVM")
   | Proto.Phy_committed | Proto.Phy_failed _ -> Alcotest.fail "expected abort");
  check (Alcotest.list string_c) "no vm left" []
    (Devices.Compute.vm_names compute0);
  check bool_c "no image left" false
    (List.mem "vm1.img" (Devices.Storage.image_names storage0_dev));
  (* Second run without faults commits. *)
  (match Physical.execute ~devices log with
   | Proto.Phy_committed -> ()
   | Proto.Phy_aborted r | Proto.Phy_failed r -> Alcotest.fail r);
  check (Alcotest.option Alcotest.pass) "vm running" (Some `Running)
    (Devices.Compute.vm_state compute0 "vm1")

let test_physical_undo_failure_is_failed () =
  let inv = small_inventory () in
  let env = inv.Tcloud.Setup.env in
  let devices = Physical.lookup_of_list inv.Tcloud.Setup.devices in
  let log =
    match
      Logical.simulate env ~tree:inv.Tcloud.Setup.tree ~proc:"spawnVM"
        ~args:(spawn_args "vm1")
    with
    | Ok { Logical.log; _ } -> log
    | Error reason -> Alcotest.fail reason
  in
  let _, compute0 = inv.Tcloud.Setup.computes.(0) in
  let faults = Devices.Device.faults (Devices.Compute.device compute0) in
  Devices.Fault.fail_next faults ~action:Schema.act_start_vm;
  (* The undo of createVM is removeVM: make it fail too. *)
  Devices.Fault.fail_next faults ~action:Schema.act_remove_vm;
  match Physical.execute ~devices log with
  | Proto.Phy_failed reason ->
    check bool_c "mentions undo" true (Str_contains.contains reason "undo")
  | Proto.Phy_committed | Proto.Phy_aborted _ ->
    Alcotest.fail "expected failure"

let test_plan_repair_after_power_cycle () =
  let inv = small_inventory () in
  let env = inv.Tcloud.Setup.env in
  let devices = Physical.lookup_of_list inv.Tcloud.Setup.devices in
  let log, logical_tree =
    match
      Logical.simulate env ~tree:inv.Tcloud.Setup.tree ~proc:"spawnVM"
        ~args:(spawn_args "vm1")
    with
    | Ok { Logical.log; new_tree; _ } -> (log, new_tree)
    | Error reason -> Alcotest.fail reason
  in
  (match Physical.execute ~devices log with
   | Proto.Phy_committed -> ()
   | _ -> Alcotest.fail "spawn failed");
  let host_path, compute0 = inv.Tcloud.Setup.computes.(0) in
  Devices.Compute.power_cycle compute0;
  let logical =
    match Data.Tree.subtree logical_tree host_path with
    | Ok node -> node
    | Error e -> Alcotest.fail (Data.Tree.error_to_string e)
  in
  let plan =
    Recon.plan_repair ~rules:Tcloud.Rules.repair_rules ~at:host_path ~logical
      ~physical:(Devices.Device.export (Devices.Compute.device compute0))
  in
  (match plan.Recon.steps with
   | [ { Recon.action; args = [ Data.Value.Str "vm1" ]; _ } ] ->
     check string_c "startVM step" Schema.act_start_vm action
   | _ -> Alcotest.fail "expected exactly one startVM step");
  check int_c "nothing unrepairable" 0 (List.length plan.Recon.unrepaired);
  (* Executing the plan re-converges the device. *)
  List.iter
    (fun (step : Recon.step) ->
      match
        Devices.Device.invoke
          (Devices.Compute.device compute0)
          ~action:step.Recon.action ~args:step.Recon.args
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Devices.Device.error_to_string e))
    plan.Recon.steps;
  check (Alcotest.option vm_state_c) "running again" (Some `Running)
    (Devices.Compute.vm_state compute0 "vm1")

(* ------------------------------------------------------------------ *)
(* End-to-end platform tests *)

let quick_coord_config =
  { Coord.Types.default_config with Coord.Types.default_session_timeout = 5.0 }

let quick_spec =
  {
    Platform.default_spec with
    Platform.controllers = 3;
    workers = 2;
    mode = Platform.Full;
    coord_config = quick_coord_config;
    controller_config = Tcloud.Setup.controller_config;
    controller_session_timeout = 3.0;
  }

(* Run [scenario] against a freshly built platform; returns the inventory
   for device-level assertions. *)
let with_platform ?(spec = quick_spec) ?(size = Tcloud.Setup.small)
    ?(horizon = 600.) ?(seed = 11) scenario =
  let sim = Des.Sim.create ~seed () in
  let inv = Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim) size in
  let platform =
    Platform.create spec inv.Tcloud.Setup.env ~initial_tree:inv.Tcloud.Setup.tree
      ~devices:inv.Tcloud.Setup.devices sim
  in
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"scenario" sim (fun () ->
         scenario platform inv;
         finished := true));
  ignore (Des.Sim.run ~until:horizon sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     Alcotest.failf "process %s crashed: %s" who (Printexc.to_string exn));
  if not !finished then Alcotest.fail "scenario did not finish before horizon"

let expect_committed what state =
  match state with
  | Txn.Committed -> ()
  | other -> Alcotest.failf "%s: expected committed, got %s" what (Txn.state_to_string other)

let test_e2e_spawn_commits () =
  with_platform (fun platform inv ->
      let state =
        Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "web1")
      in
      expect_committed "spawnVM" state;
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      check (Alcotest.option vm_state_c) "vm running on device"
        (Some `Running)
        (Devices.Compute.vm_state compute0 "web1");
      (* Logical view matches the physical export. *)
      let host_path, _ = inv.Tcloud.Setup.computes.(0) in
      let logical =
        match Data.Tree.subtree (Platform.logical_tree platform) host_path with
        | Ok node -> node
        | Error e -> Alcotest.fail (Data.Tree.error_to_string e)
      in
      check bool_c "layers consistent" true
        (Data.Tree.equal logical
           (Devices.Device.export (Devices.Compute.device compute0))))

let test_e2e_violation_aborts_before_devices () =
  with_platform (fun platform inv ->
      let args =
        Tcloud.Procs.spawn_vm_args ~vm:"fat" ~template:"base.img" ~mem_mb:9000
          ~storage:storage0 ~host:host0
      in
      (match Platform.run_txn platform ~proc:"spawnVM" ~args with
       | Txn.Aborted reason ->
         check bool_c "constraint named" true
           (Str_contains.contains reason "vm-host-memory")
       | other -> Alcotest.failf "expected abort, got %s" (Txn.state_to_string other));
      let _, storage_dev = inv.Tcloud.Setup.storages.(0) in
      (* Early detection: the devices never saw a single operation. *)
      check int_c "no device ops" 0
        (Devices.Device.ops (Devices.Storage.device storage_dev)))

let test_e2e_physical_failure_rolls_back_both_layers () =
  with_platform (fun platform inv ->
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      Devices.Fault.fail_next
        (Devices.Device.faults (Devices.Compute.device compute0))
        ~action:Schema.act_start_vm;
      (match Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "vmx") with
       | Txn.Aborted _ -> ()
       | other -> Alcotest.failf "expected abort, got %s" (Txn.state_to_string other));
      check (Alcotest.list string_c) "device clean" []
        (Devices.Compute.vm_names compute0);
      check bool_c "logical clean" false
        (Data.Tree.mem (Platform.logical_tree platform)
           (Data.Path.v (host0 ^ "/vmx")));
      (* The platform stays fully usable. *)
      expect_committed "next spawn"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "vmy")))

let test_e2e_undo_failure_quarantines_then_reload_recovers () =
  with_platform (fun platform inv ->
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      let faults = Devices.Device.faults (Devices.Compute.device compute0) in
      Devices.Fault.fail_next faults ~action:Schema.act_start_vm;
      Devices.Fault.fail_next faults ~action:Schema.act_remove_vm;
      (match Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "vmz") with
       | Txn.Failed _ -> ()
       | other -> Alcotest.failf "expected failed, got %s" (Txn.state_to_string other));
      (* The host is quarantined: further transactions on it abort. *)
      (match Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "vmq") with
       | Txn.Aborted reason ->
         check bool_c "quarantine abort" true
           (Str_contains.contains reason "quarantined")
       | other ->
         Alcotest.failf "expected quarantine abort, got %s"
           (Txn.state_to_string other));
      (* Reload adopts the physical truth and lifts the quarantine. *)
      Platform.reload platform (Data.Path.v host0);
      Platform.reload platform (Data.Path.v storage0);
      Des.Proc.sleep 5.;
      expect_committed "after reload"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "vmok")))

let test_e2e_concurrent_spawns_memory_safety () =
  with_platform (fun platform _inv ->
      (* Host capacity 8192 MB: eight 1 GB VMs fit, the ninth must abort.
         Submit all nine concurrently. *)
      let ids =
        List.init 9 (fun i ->
            Platform.submit platform ~proc:"spawnVM"
              ~args:(spawn_args (Printf.sprintf "c%d" i)))
      in
      let states = List.map (fun id -> Platform.await platform id) ids in
      let committed =
        List.length (List.filter (fun s -> s = Txn.Committed) states)
      in
      let aborted =
        List.length
          (List.filter
             (function Txn.Aborted _ -> true | _ -> false)
             states)
      in
      check int_c "eight commit" 8 committed;
      check int_c "one aborts on memory" 1 aborted;
      (* No race: the logical view never exceeds capacity. *)
      match Data.Tree.find (Platform.logical_tree platform) (Data.Path.v host0) with
      | Some host ->
        check bool_c "memory within capacity" true
          (Tcloud.Actions.vm_memory_sum host <= 8192)
      | None -> Alcotest.fail "host missing")

let test_e2e_deferred_conflict_then_commit () =
  with_platform (fun platform _inv ->
      (* Two spawns on the same host: serialized by locks, both commit. *)
      let a = Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "d1") in
      let b = Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "d2") in
      expect_committed "first" (Platform.await platform a);
      expect_committed "second" (Platform.await platform b);
      let leader = Platform.await_leader_controller platform in
      check bool_c "lock conflicts caused deferrals" true
        ((Controller.stats leader).Controller.deferrals > 0))

let test_e2e_kill_signal_quarantines_then_repair () =
  with_platform (fun platform inv ->
      let txn_id =
        Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "k1")
      in
      (* Give it time to reach the physical layer (cloneImage takes 4 s),
         then KILL it. *)
      Des.Proc.sleep 6.;
      Platform.signal platform txn_id Proto.Kill;
      (match Platform.await platform txn_id with
       | Txn.Aborted _ | Txn.Failed _ -> ()
       | other ->
         Alcotest.failf "expected abort, got %s" (Txn.state_to_string other));
      Des.Proc.sleep 30.;
      (* The logical layer shows no VM, but the device may hold leftovers:
         reconcile, then the host is usable again. *)
      check bool_c "logical clean" false
        (Data.Tree.mem (Platform.logical_tree platform)
           (Data.Path.v (host0 ^ "/k1")));
      Platform.reload platform (Data.Path.v host0);
      Platform.reload platform (Data.Path.v storage0);
      Des.Proc.sleep 5.;
      ignore inv;
      expect_committed "post-KILL spawn"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "k2")))

let test_e2e_repair_after_power_cycle () =
  with_platform (fun platform inv ->
      expect_committed "spawn"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "p1"));
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      Devices.Compute.power_cycle compute0;
      check (Alcotest.option vm_state_c) "physically stopped" (Some `Stopped)
        (Devices.Compute.vm_state compute0 "p1");
      Platform.repair platform (Data.Path.v host0);
      Des.Proc.sleep 10.;
      check (Alcotest.option vm_state_c) "repaired to running"
        (Some `Running)
        (Devices.Compute.vm_state compute0 "p1"))

let test_e2e_reload_adopts_oob_change () =
  with_platform (fun platform inv ->
      expect_committed "spawn"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "r1"));
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      (* Operator removes the VM behind TROPIC's back. *)
      Devices.Compute.force_set_vm_state compute0 "r1" `Stopped;
      Devices.Compute.force_remove_vm compute0 "r1";
      Platform.reload platform (Data.Path.v host0);
      Des.Proc.sleep 5.;
      check bool_c "logical adopted removal" false
        (Data.Tree.mem (Platform.logical_tree platform)
           (Data.Path.v (host0 ^ "/r1"))))

let test_e2e_periodic_repair_detects_drift () =
  let spec =
    {
      quick_spec with
      Platform.controller_config =
        {
          Tcloud.Setup.controller_config with
          Controller.repair_interval = Some 5.0;
        };
    }
  in
  with_platform ~spec (fun platform inv ->
      expect_committed "spawn"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "auto1"));
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      Devices.Compute.power_cycle compute0;
      check (Alcotest.option vm_state_c) "drifted to stopped" (Some `Stopped)
        (Devices.Compute.vm_state compute0 "auto1");
      (* No operator action: the sweeper detects the divergence and heals. *)
      Des.Proc.sleep 30.;
      check (Alcotest.option vm_state_c) "healed automatically" (Some `Running)
        (Devices.Compute.vm_state compute0 "auto1"))


let test_e2e_destroy_roundtrip () =
  with_platform (fun platform inv ->
      expect_committed "spawn"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "cycle"));
      expect_committed "destroy"
        (Platform.run_txn platform ~proc:"destroyVM"
           ~args:
             (Tcloud.Procs.destroy_vm_args ~host:host0 ~storage:storage0
                ~vm:"cycle"));
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      let _, storage_dev = inv.Tcloud.Setup.storages.(0) in
      check (Alcotest.list string_c) "no vm" [] (Devices.Compute.vm_names compute0);
      check bool_c "image gone" false
        (List.mem "cycle.img" (Devices.Storage.image_names storage_dev));
      (* The name is reusable. *)
      expect_committed "respawn"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "cycle")))

let test_e2e_network_procedures () =
  with_platform (fun platform inv ->
      let switch = "/netRoot/switch000" in
      expect_committed "create vlan"
        (Platform.run_txn platform ~proc:"createVlan"
           ~args:(Tcloud.Procs.create_vlan_args ~switch ~vlan:42 ~name:"tenant"));
      expect_committed "spawn with network"
        (Platform.run_txn platform ~proc:"spawnVMWithNetwork"
           ~args:
             (Tcloud.Procs.spawn_vm_with_network_args ~vm:"netvm"
                ~template:"base.img" ~mem_mb:512 ~storage:storage0 ~host:host0
                ~switch ~vlan:42));
      let _, switch_dev = inv.Tcloud.Setup.switches.(0) in
      (match Devices.Network.ports_of switch_dev 42 with
       | Some [ "netvm.eth0" ] -> ()
       | Some ports ->
         Alcotest.failf "unexpected ports [%s]" (String.concat "; " ports)
       | None -> Alcotest.fail "vlan missing");
      (* Tear down in reverse; removing a vlan with ports must abort. *)
      (match
         Platform.run_txn platform ~proc:"removeVlan"
           ~args:(Tcloud.Procs.remove_vlan_args ~switch ~vlan:42)
       with
       | Txn.Aborted _ -> ()
       | other -> Alcotest.failf "expected abort, got %s" (Txn.state_to_string other));
      expect_committed "detach"
        (Platform.run_txn platform ~proc:"detachVmVlan"
           ~args:(Tcloud.Procs.detach_vm_vlan_args ~switch ~vlan:42 ~vm:"netvm"));
      expect_committed "remove vlan"
        (Platform.run_txn platform ~proc:"removeVlan"
           ~args:(Tcloud.Procs.remove_vlan_args ~switch ~vlan:42)))

let test_e2e_term_on_queued_txn () =
  with_platform (fun platform _inv ->
      (* Two conflicting spawns: the second sits queued behind the first;
         TERM it before it ever starts. *)
      let a = Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "t1") in
      let b = Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "t2") in
      Des.Proc.sleep 3.;
      Platform.signal platform b Proto.Term;
      (match Platform.await platform b with
       | Txn.Aborted reason ->
         check bool_c "aborted by signal" true
           (Str_contains.contains reason "signal")
       | other -> Alcotest.failf "expected abort, got %s" (Txn.state_to_string other));
      expect_committed "first unaffected" (Platform.await platform a))

let test_e2e_aggressive_scheduling () =
  let spec =
    {
      quick_spec with
      Platform.mode = Platform.Logical_only 2.0;
      controller_config =
        {
          Tcloud.Setup.controller_config with
          Controller.scheduling = `Aggressive;
        };
    }
  in
  with_platform ~spec (fun platform _inv ->
      ignore (Platform.await_leader_controller platform);
      Des.Proc.sleep 1.;
      (* Conflicting pair first, independent txn behind them: with the
         aggressive policy the independent one must NOT wait for the
         deferred head. *)
      let a = Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "h1") in
      let b = Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "h2") in
      let c =
        Platform.submit platform ~proc:"spawnVM"
          ~args:
            (Tcloud.Procs.spawn_vm_args ~vm:"ind" ~template:"base.img"
               ~mem_mb:512 ~storage:"/storageRoot/storage00001"
               ~host:"/vmRoot/host00001")
      in
      let t0 = Des.Proc.now () in
      expect_committed "independent" (Platform.await platform c);
      let independent_done = Des.Proc.now () -. t0 in
      expect_committed "first conflicting" (Platform.await platform a);
      expect_committed "second conflicting" (Platform.await platform b);
      let conflicting_done = Des.Proc.now () -. t0 in
      check bool_c "independent did not wait for the deferred head" true
        (independent_done < conflicting_done))

(* Scheduling-policy platforms: logical-only mode with a fixed 2 s
   execution time, so commit order is purely a scheduling artifact. *)
let sched_spec policy =
  {
    quick_spec with
    Platform.mode = Platform.Logical_only 2.0;
    controller_config =
      {
        Tcloud.Setup.controller_config with
        Controller.scheduling = policy;
      };
  }

(* Small VMs so the host's memory never aborts anything: every txn in
   these tests conflicts on host0's lock, nothing else. *)
let small_hot_args vm =
  Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img" ~mem_mb:512
    ~storage:storage0 ~host:host0

(* Submit a spawn and record its commit time from a watcher process. *)
let submit_timed platform commit_times awaiting vm =
  incr awaiting;
  let id = Platform.submit platform ~proc:"spawnVM" ~args:(small_hot_args vm) in
  ignore
    (Des.Proc.spawn ~name:("await-" ^ vm) (Platform.sim platform) (fun () ->
         expect_committed vm (Platform.await platform id);
         Hashtbl.replace commit_times vm (Des.Proc.now ());
         decr awaiting));
  id

let test_e2e_aggressive_no_starvation () =
  (* Regression: under sustained aggressive scheduling on a hot subtree,
     a long-deferred transaction must not starve.  The victim parks
     behind a holder; rivals keep arriving while it waits.  Wake-on-
     release re-queues woken waiters at the FRONT in ascending txn-id
     order, so the victim beats every rival that arrived after it. *)
  with_platform ~spec:(sched_spec `Aggressive) ~seed:23 (fun platform _inv ->
      ignore (Platform.await_leader_controller platform);
      Des.Proc.sleep 1.;
      let commit_times = Hashtbl.create 16 in
      let awaiting = ref 0 in
      let submit = submit_timed platform commit_times awaiting in
      ignore (submit "holder");
      Des.Proc.sleep 0.5;
      (* The victim defers behind the holder... *)
      ignore (submit "victim");
      (* ...while rivals keep hammering the same host. *)
      let rivals = 6 in
      for k = 0 to rivals - 1 do
        Des.Proc.sleep 0.4;
        ignore (submit (Printf.sprintf "rival%d" k))
      done;
      while !awaiting > 0 do
        Des.Proc.sleep 0.5
      done;
      let t vm = Hashtbl.find commit_times vm in
      for k = 0 to rivals - 1 do
        check bool_c
          (Printf.sprintf "victim committed before rival%d" k)
          true
          (t "victim" < t (Printf.sprintf "rival%d" k))
      done;
      (* Bounded deferrals: parking + spurious re-parks are at most
         quadratic in the conflicting set; a starvation loop would blow
         far past this. *)
      let n = rivals + 2 in
      let leader = Platform.await_leader_controller platform in
      let deferrals = (Controller.stats leader).Controller.deferrals in
      check bool_c
        (Printf.sprintf "deferrals bounded (%d <= %d)" deferrals (n * n))
        true
        (deferrals <= n * n))

let test_e2e_fifo_preserves_submission_order () =
  (* Conflicting transactions under FIFO commit in submission order:
     wake-on-release must not let a later arrival overtake the head. *)
  with_platform ~spec:(sched_spec `Fifo) ~seed:29 (fun platform _inv ->
      ignore (Platform.await_leader_controller platform);
      Des.Proc.sleep 1.;
      let commit_times = Hashtbl.create 16 in
      let awaiting = ref 0 in
      let submit = submit_timed platform commit_times awaiting in
      let n = 5 in
      let vms = List.init n (Printf.sprintf "fifo%d") in
      List.iter (fun vm -> ignore (submit vm)) vms;
      while !awaiting > 0 do
        Des.Proc.sleep 0.5
      done;
      let times = List.map (Hashtbl.find commit_times) vms in
      let rec ascending = function
        | a :: (b :: _ as rest) -> a < b && ascending rest
        | _ -> true
      in
      check bool_c "commit order = submission order" true (ascending times))

let test_e2e_controller_failover_no_loss () =
  with_platform ~horizon:900. (fun platform _inv ->
      (* A stream of transactions; the lead controller dies mid-stream. *)
      let early =
        List.init 3 (fun i ->
            Platform.submit platform ~proc:"spawnVM"
              ~args:(spawn_args (Printf.sprintf "f%d" i)))
      in
      let leader = Platform.await_leader_controller platform in
      let leader_index =
        match
          Array.to_list (Platform.controllers platform)
          |> List.mapi (fun i c -> (i, c))
          |> List.find_opt (fun (_, c) -> c == leader)
        with
        | Some (i, _) -> i
        | None -> Alcotest.fail "leader not found"
      in
      Des.Proc.sleep 2.;
      Platform.kill_controller platform leader_index;
      (* Submit more while the fail-over is in progress. *)
      let late =
        List.init 3 (fun i ->
            Platform.submit platform ~proc:"spawnVM"
              ~args:(spawn_args (Printf.sprintf "g%d" i)))
      in
      List.iteri
        (fun i id ->
          expect_committed (Printf.sprintf "early %d" i)
            (Platform.await platform id))
        early;
      List.iteri
        (fun i id ->
          expect_committed (Printf.sprintf "late %d" i)
            (Platform.await platform id))
        late;
      let new_leader = Platform.await_leader_controller platform in
      check bool_c "leadership moved" true (new_leader != leader))

let test_e2e_reload_refuses_violating_state () =
  with_platform (fun platform inv ->
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      (* Out-of-band, the hypervisor ends up overcommitted: 2 x 8 GB VMs on
         an 8 GB host.  Reload must refuse to adopt a state that violates
         the memory constraint (paper §4). *)
      Devices.Compute.preload_vm compute0 ~name:"oob1" ~image:"x.img"
        ~mem_mb:8192 ~state:`Running;
      Devices.Compute.preload_vm compute0 ~name:"oob2" ~image:"y.img"
        ~mem_mb:8192 ~state:`Running;
      Platform.reload platform (Data.Path.v host0);
      Des.Proc.sleep 5.;
      check bool_c "violating state not adopted" false
        (Data.Tree.mem (Platform.logical_tree platform)
           (Data.Path.v (host0 ^ "/oob1")));
      (* A single extra VM fits: that reload succeeds. *)
      Devices.Compute.force_remove_vm compute0 "oob1";
      Devices.Compute.force_remove_vm compute0 "oob2";
      Devices.Compute.preload_vm compute0 ~name:"oob3" ~image:"z.img"
        ~mem_mb:1024 ~state:`Running;
      Platform.reload platform (Data.Path.v host0);
      Des.Proc.sleep 5.;
      check bool_c "legal state adopted" true
        (Data.Tree.mem (Platform.logical_tree platform)
           (Data.Path.v (host0 ^ "/oob3"))))

let test_e2e_failover_preserves_quarantine () =
  with_platform ~horizon:900. (fun platform inv ->
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      let faults = Devices.Device.faults (Devices.Compute.device compute0) in
      Devices.Fault.fail_next faults ~action:Schema.act_start_vm;
      Devices.Fault.fail_next faults ~action:Schema.act_remove_vm;
      (match Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "q1") with
       | Txn.Failed _ -> ()
       | other -> Alcotest.failf "expected failed, got %s" (Txn.state_to_string other));
      (* Crash the leader: the next leader must still refuse the host. *)
      let leader = Platform.await_leader_controller platform in
      let index =
        let found = ref 0 in
        Array.iteri
          (fun i c -> if c == leader then found := i)
          (Platform.controllers platform);
        !found
      in
      Platform.kill_controller platform index;
      (match Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "q2") with
       | Txn.Aborted reason ->
         check bool_c "still quarantined after failover" true
           (Str_contains.contains reason "quarantined")
       | other ->
         Alcotest.failf "expected quarantine abort, got %s"
           (Txn.state_to_string other));
      (* Reconciliation still lifts it. *)
      Platform.reload platform (Data.Path.v host0);
      Platform.reload platform (Data.Path.v storage0);
      Des.Proc.sleep 5.;
      expect_committed "after reload"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "q3")))

(* A goal-state convergence with the lead controller crashing mid-plan:
   the executor waits out the fail-over, its next round's fresh diff picks
   up whatever the crash left behind, and the system still reaches the
   goal exactly.  A second converge against the reached goal must plan
   nothing (idempotence). *)
let test_e2e_converge_under_failover () =
  with_platform ~horizon:900. (fun platform inv ->
      let goal =
        {
          Plan.Model.hosts =
            [
              {
                Plan.Model.host_index = 0;
                vms =
                  [
                    { Plan.Model.vm_name = "cvg0"; running = true; mem_mb = 1024 };
                    { Plan.Model.vm_name = "cvg1"; running = false; mem_mb = 512 };
                  ];
              };
            ];
          switches =
            [
              {
                Plan.Model.switch_index = 0;
                vlans =
                  [
                    { Plan.Model.vlan_id = 200; vlan_name = "cvg"; ports = [ "cvg0" ] };
                  ];
              };
            ];
        }
      in
      let ctx = { Plan.Planner.storage_hosts = 2; template = "base.img" } in
      let leader = Platform.await_leader_controller platform in
      let leader_index =
        let found = ref 0 in
        Array.iteri
          (fun i c -> if c == leader then found := i)
          (Platform.controllers platform);
        !found
      in
      ignore
        (Des.Proc.spawn ~name:"mid-plan-crash" (Platform.sim platform)
           (fun () ->
             Des.Proc.sleep 3.;
             Platform.kill_controller platform leader_index));
      let report = Plan.Executor.converge platform ctx ~model:goal in
      check bool_c "converged despite the fail-over" true
        (report.Plan.Executor.status = Plan.Executor.Converged);
      check int_c "no residual drift reported" 0
        (List.length report.Plan.Executor.residual);
      (* A fresh diff against the leader's tree agrees. *)
      (match Plan.Model.diff goal ~actual:(Platform.logical_tree platform) with
       | Ok [] -> ()
       | Ok changes -> Alcotest.failf "%d residual changes" (List.length changes)
       | Error e -> Alcotest.fail e);
      (* The devices agree too. *)
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      check (Alcotest.option vm_state_c) "cvg0 running" (Some `Running)
        (Devices.Compute.vm_state compute0 "cvg0");
      check (Alcotest.option vm_state_c) "cvg1 stopped" (Some `Stopped)
        (Devices.Compute.vm_state compute0 "cvg1");
      let new_leader = Platform.await_leader_controller platform in
      check bool_c "leadership moved" true (new_leader != leader);
      (* Converging again plans no steps at all. *)
      let again = Plan.Executor.converge platform ctx ~model:goal in
      check bool_c "reconverge is a no-op" true
        (again.Plan.Executor.status = Plan.Executor.Converged
        && again.Plan.Executor.history = []))

(* ------------------------------------------------------------------ *)
(* Robustness: retry backoff, deadlines, stall watchdog *)

(* Nominal (jitter-free) backoff is non-decreasing in the attempt number
   and never exceeds the cap. *)
let backoff_bounded_prop =
  let gen =
    QCheck.Gen.(
      quad (float_range 0.01 10.) (float_range 1. 4.) (float_range 0.01 100.)
        (int_range 1 20))
  in
  QCheck.Test.make ~name:"backoff monotone and bounded by cap" ~count:300
    (QCheck.make gen) (fun (base, factor, cap, attempts) ->
      let policy =
        {
          Physical.no_retry with
          Physical.max_attempts = attempts + 1;
          backoff_base = base;
          backoff_factor = factor;
          backoff_cap = cap;
        }
      in
      let rec go prev n =
        if n > attempts then true
        else
          let d = Physical.backoff_nominal policy n in
          if d < prev -. 1e-9 then
            QCheck.Test.fail_reportf "retry %d: %.4f < previous %.4f" n d prev
          else if d > cap +. 1e-9 then
            QCheck.Test.fail_reportf "retry %d: %.4f above cap %.4f" n d cap
          else go d (n + 1)
      in
      go 0. 1)

(* With the default ±50% jitter, every delay lands in
   [nominal/2, 3*nominal/2]; seeds pinned so a regression reproduces. *)
let test_backoff_jitter_within_bounds () =
  let policy = Physical.default_retry in
  let j = policy.Physical.jitter in
  check bool_c "default jitter is 50%" true (j = 0.5);
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      for n = 1 to 50 do
        let nominal = Physical.backoff_nominal policy n in
        let d = Physical.backoff_delay policy ~rng n in
        let lo = nominal *. (1. -. j) and hi = nominal *. (1. +. j) in
        if d < lo -. 1e-9 || d > hi +. 1e-9 then
          Alcotest.failf "seed %d, retry %d: delay %.4f outside [%.4f, %.4f]"
            seed n d lo hi
      done)
    [ 1; 7; 42; 1337 ]

(* A transient device error is retried in place by the worker: the
   transaction still commits, and the retry shows up in the leader's
   counters (carried home on the Result message). *)
let test_e2e_transient_fault_retried () =
  let spec = { quick_spec with Platform.worker_retry = Physical.default_retry } in
  with_platform ~spec (fun platform inv ->
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      Devices.Fault.fail_next
        (Devices.Device.faults (Devices.Compute.device compute0))
        ~severity:Devices.Fault.Transient ~action:Schema.act_start_vm;
      expect_committed "spawn survives a transient fault"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "rt1"));
      let st = Controller.stats (Platform.await_leader_controller platform) in
      check bool_c "retry counted" true (st.Controller.exec_retries > 0);
      check bool_c "transient failure counted" true
        (st.Controller.transient_failures > 0))

(* A hung device invocation is killed by the per-action deadline, counted
   as a (transient) timeout, and the retry commits the transaction. *)
let test_e2e_hang_rescued_by_deadline () =
  let spec =
    {
      quick_spec with
      Platform.worker_retry =
        { Physical.default_retry with Physical.deadline = Some 10. };
    }
  in
  with_platform ~spec (fun platform inv ->
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      Devices.Fault.hang_next
        (Devices.Device.faults (Devices.Compute.device compute0))
        ~action:Schema.act_start_vm;
      expect_committed "spawn survives a hung invocation"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "hg1"));
      let st = Controller.stats (Platform.await_leader_controller platform) in
      check bool_c "deadline expiry counted" true (st.Controller.timeouts > 0))

(* Regression: a worker crash mid-transaction strands the txn — the phyQ
   item is gone and no Result will ever arrive.  The watchdog must escalate
   TERM (ignored, the worker is dead) → KILL, failing the transaction,
   releasing its locks and draining the waiter it was blocking; after the
   operator heals the quarantine the platform is fully usable. *)
let test_e2e_worker_crash_rescued_by_watchdog () =
  let spec =
    {
      quick_spec with
      Platform.controller_config =
        {
          Tcloud.Setup.controller_config with
          Controller.watchdog =
            {
              Watchdog.default_config with
              Watchdog.latency_factor = 1.0;
              slack = 2.;
              term_grace = 3.;
              kill_grace = 3.;
              poll_interval = 0.5;
            };
        };
    }
  in
  with_platform ~spec (fun platform _inv ->
      let a = Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "wd1") in
      (* Let txn A reach the physical layer (cloneImage takes 4 s), then
         crash both workers: A is now abandoned mid-execution. *)
      Des.Proc.sleep 6.;
      Platform.kill_worker platform 0;
      Platform.kill_worker platform 1;
      (* B conflicts on the same host and parks in the blocked table. *)
      let b = Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "wd2") in
      (match Platform.await platform a with
       | Txn.Failed _ -> ()
       | other ->
         Alcotest.failf "abandoned txn: expected failed, got %s"
           (Txn.state_to_string other));
      (* A's locks were released, so B drains out of the blocked table —
         to an abort, because the KILL quarantined the subtree. *)
      (match Platform.await platform b with
       | Txn.Aborted _ -> ()
       | other ->
         Alcotest.failf "blocked txn: expected abort, got %s"
           (Txn.state_to_string other));
      let st = Controller.stats (Platform.await_leader_controller platform) in
      check bool_c "watchdog TERMed" true (st.Controller.auto_terms > 0);
      check bool_c "watchdog KILLed" true (st.Controller.auto_kills > 0);
      (* Operator heals: fresh workers, reload the quarantined subtrees. *)
      Platform.restart_worker platform 0;
      Platform.restart_worker platform 1;
      Platform.reload platform (Data.Path.v host0);
      Platform.reload platform (Data.Path.v storage0);
      Des.Proc.sleep 5.;
      expect_committed "platform usable after rescue"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "wd3")))

(* ------------------------------------------------------------------ *)
(* Overload: health scoring, circuit breakers, admission control *)

(* Random op sequences against one breaker; after every op:
   - the combined score stays in [0, 1];
   - Tripped is only left through [gate], and never before the cooldown;
   - at most one canary is outstanding while Half_open. *)
let breaker_fsm_prop =
  let cfg =
    {
      Health.default_config with
      Health.alpha = 0.5;
      trip_threshold = 0.6;
      cooldown = 10.;
      latency_ref = 10.;
    }
  in
  let gen =
    QCheck.Gen.(list_size (int_range 5 80) (pair (int_bound 5) (float_range 0.5 6.)))
  in
  QCheck.Test.make ~name:"health breaker FSM invariants" ~count:300
    (QCheck.make gen) (fun ops ->
      let h = Health.create cfg in
      let root = Data.Path.v host0 in
      let now = ref 0. in
      let next_txn = ref 0 in
      let outstanding = ref None in
      let tripped_since = ref None in
      let invariants ~via_gate =
        let s = Health.score h ~root in
        if s < 0. || s > 1. then
          QCheck.Test.fail_reportf "score %.3f outside [0, 1]" s;
        match (Health.state_of h ~root, !tripped_since) with
        | Health.Tripped, None -> tripped_since := Some !now
        | Health.Tripped, Some _ -> ()
        | (Health.Closed | Health.Half_open), Some since ->
          if !now -. since < cfg.Health.cooldown -. 1e-9 then
            QCheck.Test.fail_reportf
              "left Tripped after %.2fs, cooldown is %.2fs" (!now -. since)
              cfg.Health.cooldown;
          if not via_gate then
            QCheck.Test.fail_report "left Tripped without a gate call";
          tripped_since := None
        | (Health.Closed | Health.Half_open), None -> ()
      in
      List.iter
        (fun (op, dt) ->
          let via_gate = ref false in
          (match op with
           | 0 -> now := !now +. dt (* time passes *)
           | 1 ->
             via_gate := true;
             ignore (Health.gate h ~now:!now ~root)
           | 2 ->
             (* Try to claim the canary slot with a fresh txn. *)
             incr next_txn;
             let before = Health.probes h in
             Health.begin_probe h ~now:!now ~root ~txn:!next_txn;
             if Health.probes h > before then begin
               if !outstanding <> None then
                 QCheck.Test.fail_report
                   "second canary admitted while one is outstanding";
               outstanding := Some !next_txn
             end
           | 3 | 4 ->
             (* Observe an outcome — for the outstanding canary when there
                is one, else for an unrelated transaction. *)
             let txn, is_probe =
               match !outstanding with
               | Some t -> (t, true)
               | None ->
                 incr next_txn;
                 (!next_txn, false)
             in
             let ok = op = 3 in
             Health.observe h ~now:!now ~root ~txn ~ok
               ~retries:(if ok then 0 else 2)
               ~timeouts:(if ok then 0 else 1)
               ~latency:(if ok then 0.5 else 30.);
             if is_probe then outstanding := None
           | _ ->
             (match !outstanding with
              | Some t ->
                Health.forget_probe h ~txn:t;
                outstanding := None
              | None -> ()));
          invariants ~via_gate:!via_gate)
        ops;
      true)

(* Admission control under a storm: with watermarks high=4 / low=2 a
   burst of conflicting spawns sheds the overflow with a fast
   `Overload abort, while the admitted prefix still commits. *)
let test_e2e_admission_sheds_overload () =
  let spec =
    {
      quick_spec with
      Platform.controller_config =
        {
          Tcloud.Setup.controller_config with
          Controller.admission = { Health.queue_high = Some 4; queue_low = 2 };
        };
    }
  in
  with_platform ~spec (fun platform _inv ->
      let ids =
        List.init 12 (fun i ->
            Platform.submit platform ~proc:"spawnVM"
              ~args:(spawn_args (Printf.sprintf "ov%02d" i)))
      in
      let states = List.map (Platform.await platform) ids in
      let committed =
        List.length (List.filter (fun s -> s = Txn.Committed) states)
      in
      let overloads =
        List.length (List.filter Txn.is_overload states)
      in
      check bool_c "some commits" true (committed >= 1);
      check bool_c "some overload aborts" true (overloads >= 1);
      let st = Controller.stats (Platform.await_leader_controller platform) in
      check bool_c "sheds counted" true (st.Controller.sheds >= overloads);
      (* Hysteresis drained the queue, so a late arrival is admitted. *)
      expect_committed "post-storm spawn"
        (Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "ov-late")))

(* Breaker end-to-end: a host that fails everything trips its breaker;
   transactions writing under it are deferred (not failed) while Tripped;
   once the device heals, the cooldown canary commits and the breaker
   closes, releasing the parked transaction. *)
let test_e2e_breaker_trips_then_canary_reopens () =
  let spec =
    {
      quick_spec with
      Platform.worker_retry =
        { Physical.default_retry with Physical.max_attempts = 2 };
      Platform.controller_config =
        {
          Tcloud.Setup.controller_config with
          Controller.health =
            {
              Health.default_config with
              Health.alpha = 0.9;
              trip_threshold = 0.6;
              cooldown = 15.;
              poll_interval = 1.0;
            };
        };
    }
  in
  with_platform ~spec (fun platform inv ->
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      let faults = Devices.Device.faults (Devices.Compute.device compute0) in
      (match Devices.Fault.set_probability faults 1.0 with
       | Ok () -> ()
       | Error e -> Alcotest.fail e);
      (* Every action on host 0 fails: the first spawn aborts on rollback
         and its failure sample (alpha 0.9) trips the breaker. *)
      (match Platform.run_txn platform ~proc:"spawnVM" ~args:(spawn_args "cb1") with
       | Txn.Aborted _ | Txn.Failed _ -> ()
       | other ->
         Alcotest.failf "expected abort under faults, got %s"
           (Txn.state_to_string other));
      let leader = Platform.await_leader_controller platform in
      let st = Controller.stats leader in
      check bool_c "breaker tripped" true (st.Controller.breaker_trips >= 1);
      (* A transaction submitted while Tripped parks at admission. *)
      let parked =
        Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "cb2")
      in
      Des.Proc.sleep 5.;
      check bool_c "parked txn deferred, not finished" true
        (st.Controller.breaker_deferrals >= 1);
      (* Heal the device; after the cooldown the canary commits, closes
         the breaker and the parked transaction drains. *)
      (match Devices.Fault.set_probability faults 0.0 with
       | Ok () -> ()
       | Error e -> Alcotest.fail e);
      expect_committed "parked txn commits after reopen"
        (Platform.await platform parked);
      let st = Controller.stats leader in
      check bool_c "canary probed" true (st.Controller.breaker_probes >= 1);
      check bool_c "breaker closed" true (st.Controller.breaker_closes >= 1))

(* ------------------------------------------------------------------ *)
(* Per-transaction span tracing (lib/trace) *)

(* Like [with_platform] but with a span recorder attached; [scenario]
   additionally receives the tracer. *)
let with_traced_platform ?(spec = quick_spec) ?(size = Tcloud.Setup.small)
    ?(horizon = 600.) ?(seed = 11) scenario =
  let sim = Des.Sim.create ~seed () in
  let tracer = Trace.create ~sim () in
  let inv = Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim) size in
  let platform =
    Platform.create
      { spec with Platform.trace = Some tracer }
      inv.Tcloud.Setup.env ~initial_tree:inv.Tcloud.Setup.tree
      ~devices:inv.Tcloud.Setup.devices sim
  in
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"scenario" sim (fun () ->
         scenario platform inv tracer;
         finished := true));
  ignore (Des.Sim.run ~until:horizon sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     Alcotest.failf "process %s crashed: %s" who (Printexc.to_string exn));
  if not !finished then Alcotest.fail "scenario did not finish before horizon"

let txn_spans tracer id =
  List.filter (fun s -> s.Trace.txn = id) (Trace.spans tracer)

let has_prefix prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let span_named spans name =
  match List.find_opt (fun s -> s.Trace.name = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "no %S span" name

let expect_valid_trace tracer =
  match Trace.Check.validate tracer with
  | [] -> ()
  | errors ->
    Alcotest.failf "trace invariant violations: %s"
      (String.concat "; " (List.map Trace.Check.error_to_string errors))

let test_trace_commit_lifecycle () =
  with_traced_platform (fun platform _inv tracer ->
      let id =
        Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "trc1")
      in
      expect_committed "spawnVM" (Platform.await platform id);
      let spans = txn_spans tracer id in
      let root = span_named spans "spawnVM" in
      check (Alcotest.option string_c) "root state" (Some "committed")
        (Trace.attr root "state");
      let simulate = span_named spans "simulate" in
      let replay = span_named spans "replay" in
      (* Lifecycle order: logical simulation completes before physical
         replay begins. *)
      (match simulate.Trace.end_ts with
       | Some e ->
         check bool_c "simulate before replay" true
           (e <= replay.Trace.start_ts)
       | None -> Alcotest.fail "simulate span still open");
      check (Alcotest.option string_c) "replay outcome" (Some "committed")
        (Trace.attr replay "outcome");
      check bool_c "no undo spans on commit path" true
        (List.for_all (fun s -> s.Trace.cat <> "undo") spans);
      expect_valid_trace tracer)

let test_trace_fault_replay_undo_reversed () =
  with_traced_platform (fun platform inv tracer ->
      let _, compute0 = inv.Tcloud.Setup.computes.(0) in
      Devices.Fault.fail_next
        (Devices.Device.faults (Devices.Compute.device compute0))
        ~action:Schema.act_start_vm;
      let id =
        Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "trc2")
      in
      (match Platform.await platform id with
       | Txn.Aborted _ -> ()
       | other ->
         Alcotest.failf "expected abort, got %s" (Txn.state_to_string other));
      let spans = txn_spans tracer id in
      let index_of s =
        match Option.bind (Trace.attr s "index") int_of_string_opt with
        | Some i -> i
        | None -> Alcotest.failf "span %s has no index" s.Trace.name
      in
      let ok_actions =
        List.filter
          (fun s ->
            has_prefix "action:" s.Trace.name
            && Trace.attr s "outcome" = Some "ok")
          spans
      in
      let undo_actions =
        List.filter (fun s -> has_prefix "undo:" s.Trace.name) spans
      in
      check bool_c "some actions replayed" true (ok_actions <> []);
      check bool_c "undo recorded" true (undo_actions <> []);
      (* Undo runs in exact reverse order of the ok'd replayed actions. *)
      check (Alcotest.list int_c) "undo reverses replay"
        (List.rev (List.map index_of ok_actions))
        (List.map index_of undo_actions);
      expect_valid_trace tracer)

let test_trace_lock_wait_names_holder () =
  with_traced_platform (fun platform _inv tracer ->
      (* Two spawns sharing host0 + storage0: the second conflicts on the
         first's W locks and parks until release. *)
      let a =
        Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "trw1")
      in
      let b =
        Platform.submit platform ~proc:"spawnVM" ~args:(spawn_args "trw2")
      in
      expect_committed "first spawn" (Platform.await platform a);
      expect_committed "second spawn" (Platform.await platform b);
      let wait = span_named (txn_spans tracer b) "lock-wait" in
      check (Alcotest.option string_c) "blocking holder named"
        (Some (string_of_int a))
        (Trace.attr wait "holder");
      (match wait.Trace.end_ts with
       | Some e -> check bool_c "wait ended" true (e >= wait.Trace.start_ts)
       | None -> Alcotest.fail "lock-wait span still open");
      expect_valid_trace tracer)

let suite =
  [
    ("xlog: codec roundtrip", `Quick, test_xlog_roundtrip);
    ("txn: codec roundtrip", `Quick, test_txn_roundtrip);
    QCheck_alcotest.to_alcotest txn_state_strings_prop;
    ("proto: codec roundtrip", `Quick, test_proto_roundtrip);
    ("proto: item key parsing", `Quick, test_seq_of_item_key);
    ("deque: basic operations", `Quick, test_deque);
    ("logical: Table 1 spawn log", `Quick, test_table1_spawn_log);
    ("logical: constraint violation aborts", `Quick, test_simulation_constraint_violation);
    ("logical: lock inference", `Quick, test_lock_inference);
    ("logical: rollback restores tree", `Quick, test_logical_rollback_restores_tree);
    ("logical: irreversible undo fails", `Quick, test_rollback_irreversible_fails);
    ("logical: migrate hypervisor rule", `Quick, test_migrate_hypervisor_rule);
    ("constraints: helpers", `Quick, test_constraints_helpers);
    QCheck_alcotest.to_alcotest rollback_inverse_prop;
    ("physical: commit and rollback", `Quick, test_physical_execute_commit_and_rollback);
    ("physical: undo failure", `Quick, test_physical_undo_failure_is_failed);
    ("recon: repair plan after power cycle", `Quick, test_plan_repair_after_power_cycle);
    ("e2e: spawn commits, layers consistent", `Quick, test_e2e_spawn_commits);
    ("e2e: violation aborts before devices", `Quick, test_e2e_violation_aborts_before_devices);
    ("e2e: physical failure rolls back", `Quick, test_e2e_physical_failure_rolls_back_both_layers);
    ("e2e: undo failure quarantines; reload recovers", `Quick, test_e2e_undo_failure_quarantines_then_reload_recovers);
    ("e2e: concurrent spawns respect memory", `Quick, test_e2e_concurrent_spawns_memory_safety);
    ("e2e: conflicting spawns defer then commit", `Quick, test_e2e_deferred_conflict_then_commit);
    ("e2e: KILL quarantines; reload recovers", `Quick, test_e2e_kill_signal_quarantines_then_repair);
    ("e2e: repair after power cycle", `Quick, test_e2e_repair_after_power_cycle);
    ("e2e: periodic repair detects drift", `Quick, test_e2e_periodic_repair_detects_drift);
    ("e2e: reload adopts out-of-band change", `Quick, test_e2e_reload_adopts_oob_change);
    ("e2e: destroy roundtrip", `Quick, test_e2e_destroy_roundtrip);
    ("e2e: network procedures", `Quick, test_e2e_network_procedures);
    ("e2e: TERM on queued txn", `Quick, test_e2e_term_on_queued_txn);
    ("e2e: aggressive scheduling", `Quick, test_e2e_aggressive_scheduling);
    ("e2e: aggressive hot subtree does not starve", `Quick, test_e2e_aggressive_no_starvation);
    ("e2e: FIFO preserves submission order", `Quick, test_e2e_fifo_preserves_submission_order);
    ("e2e: controller failover loses nothing", `Quick, test_e2e_controller_failover_no_loss);
    ("e2e: failover preserves quarantine", `Quick, test_e2e_failover_preserves_quarantine);
    ("e2e: converge under failover", `Quick, test_e2e_converge_under_failover);
    ("e2e: reload refuses violating state", `Quick, test_e2e_reload_refuses_violating_state);
    QCheck_alcotest.to_alcotest backoff_bounded_prop;
    ("robust: jittered backoff within bounds", `Quick, test_backoff_jitter_within_bounds);
    ("robust: transient fault retried", `Quick, test_e2e_transient_fault_retried);
    ("robust: hang rescued by deadline", `Quick, test_e2e_hang_rescued_by_deadline);
    ("robust: worker crash rescued by watchdog", `Quick, test_e2e_worker_crash_rescued_by_watchdog);
    QCheck_alcotest.to_alcotest breaker_fsm_prop;
    ("overload: admission sheds under storm", `Quick, test_e2e_admission_sheds_overload);
    ("overload: breaker trips then canary reopens", `Quick, test_e2e_breaker_trips_then_canary_reopens);
    ("trace: commit lifecycle span order", `Quick, test_trace_commit_lifecycle);
    ("trace: fault replay undo reversed", `Quick, test_trace_fault_replay_undo_reversed);
    ("trace: lock-wait names blocking holder", `Quick, test_trace_lock_wait_names_holder);
  ]

let () = Alcotest.run "tropic" [ ("tropic", suite) ]
