(* Tests for the discrete-event simulation kernel. *)

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let float_c = Alcotest.float 1e-9

(* Run [body] as a process in a fresh simulation and drain all events. *)
let in_sim ?(seed = 1) body =
  let sim = Des.Sim.create ~seed () in
  let p = Des.Proc.spawn ~name:"test-body" sim (fun () -> body sim) in
  ignore (Des.Sim.run sim);
  (sim, p)

let no_failures sim =
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.pass))
    "no process failures" [] (Des.Sim.failures sim)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_order () =
  let h = Des.Heap.create ~cmp:Int.compare in
  List.iter (Des.Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let out = List.init 7 (fun _ -> Des.Heap.pop h) in
  check (Alcotest.list int_c) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] out

and test_heap_empty () =
  let h = Des.Heap.create ~cmp:Int.compare in
  check bool_c "empty" true (Des.Heap.is_empty h);
  check (Alcotest.option int_c) "peek none" None (Des.Heap.peek h);
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop: empty heap")
    (fun () -> ignore (Des.Heap.pop h))

let heap_sort_prop =
  QCheck.Test.make ~name:"heap sorts arbitrary int lists" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Des.Heap.create ~cmp:Int.compare in
      List.iter (Des.Heap.push h) xs;
      let out = List.init (List.length xs) (fun _ -> Des.Heap.pop h) in
      out = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_fifo_same_time () =
  let sim = Des.Sim.create () in
  let log = ref [] in
  let push x () = log := x :: !log in
  ignore (Des.Sim.at sim 1.0 (push "a"));
  ignore (Des.Sim.at sim 1.0 (push "b"));
  ignore (Des.Sim.at sim 0.5 (push "c"));
  ignore (Des.Sim.run sim);
  check (Alcotest.list Alcotest.string) "order" [ "c"; "a"; "b" ]
    (List.rev !log)

let test_sim_cancel () =
  let sim = Des.Sim.create () in
  let fired = ref false in
  let ev = Des.Sim.after sim 1.0 (fun () -> fired := true) in
  Des.Sim.cancel ev;
  ignore (Des.Sim.run sim);
  check bool_c "cancelled event did not fire" false !fired

let test_sim_past_raises () =
  let sim = Des.Sim.create () in
  ignore (Des.Sim.after sim 2.0 (fun () -> ()));
  ignore (Des.Sim.run sim);
  check float_c "clock" 2.0 (Des.Sim.now sim);
  match Des.Sim.at sim 1.0 (fun () -> ()) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_sim_run_until () =
  let sim = Des.Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Des.Sim.at sim (float_of_int i) (fun () -> incr count))
  done;
  ignore (Des.Sim.run ~until:5.5 sim);
  check int_c "only first five fired" 5 !count;
  check float_c "clock parked at limit" 5.5 (Des.Sim.now sim);
  ignore (Des.Sim.run sim);
  check int_c "rest fired" 10 !count

(* ------------------------------------------------------------------ *)
(* Proc *)

let test_proc_sleep_advances_time () =
  let seen = ref 0. in
  let sim, p =
    in_sim (fun _sim ->
        Des.Proc.sleep 3.5;
        seen := Des.Proc.now ())
  in
  no_failures sim;
  check float_c "time after sleep" 3.5 !seen;
  check bool_c "finished" false (Des.Proc.alive p)

let test_proc_kill_suspended () =
  let cleaned = ref false in
  let sim = Des.Sim.create () in
  let p =
    Des.Proc.spawn ~name:"sleeper" sim (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> Des.Proc.sleep 100.))
  in
  ignore (Des.Proc.spawn sim (fun () ->
      Des.Proc.sleep 1.;
      Des.Proc.kill p));
  ignore (Des.Sim.run sim);
  check bool_c "finalizer ran" true !cleaned;
  check bool_c "dead" false (Des.Proc.alive p);
  (match Des.Proc.result p with
   | Some (Error Des.Proc.Killed) -> ()
   | Some (Ok ()) -> Alcotest.fail "expected Killed, got Ok"
   | Some (Error e) -> Alcotest.fail ("expected Killed, got " ^ Printexc.to_string e)
   | None -> Alcotest.fail "not finished");
  check float_c "killed promptly, not after 100 s" 1.0 (Des.Sim.now sim);
  no_failures sim

let test_proc_kill_before_start () =
  let ran = ref false in
  let sim = Des.Sim.create () in
  let p = Des.Proc.spawn sim (fun () -> ran := true) in
  Des.Proc.kill p;
  ignore (Des.Sim.run sim);
  check bool_c "body never ran" false !ran;
  match Des.Proc.result p with
  | Some (Error Des.Proc.Killed) -> ()
  | _ -> Alcotest.fail "expected Killed"

let test_proc_failure_recorded () =
  let sim = Des.Sim.create () in
  ignore (Des.Proc.spawn ~name:"crasher" sim (fun () -> failwith "boom"));
  ignore (Des.Sim.run sim);
  match Des.Sim.failures sim with
  | [ ("crasher", Failure msg) ] when String.equal msg "boom" -> ()
  | _ -> Alcotest.fail "expected one recorded failure"

let test_proc_await () =
  let order = ref [] in
  let sim = Des.Sim.create () in
  let child =
    Des.Proc.spawn ~name:"child" sim (fun () ->
        Des.Proc.sleep 2.;
        order := "child" :: !order)
  in
  ignore
    (Des.Proc.spawn ~name:"parent" sim (fun () ->
         match Des.Proc.await child with
         | Ok () -> order := "parent" :: !order
         | Error _ -> ()));
  ignore (Des.Sim.run sim);
  check (Alcotest.list Alcotest.string) "child before parent"
    [ "child"; "parent" ] (List.rev !order);
  no_failures sim

let test_proc_await_finished () =
  let sim = Des.Sim.create () in
  let child = Des.Proc.spawn sim (fun () -> ()) in
  ignore
    (Des.Proc.spawn sim (fun () ->
         Des.Proc.sleep 5.;
         match Des.Proc.await child with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "await on finished proc"));
  ignore (Des.Sim.run sim);
  no_failures sim

(* ------------------------------------------------------------------ *)
(* Channel *)

let test_channel_fifo () =
  let out = ref [] in
  let sim, _ =
    in_sim (fun sim ->
        let ch = Des.Channel.create () in
        List.iter (Des.Channel.send ch) [ 1; 2; 3 ];
        ignore sim;
        for _ = 1 to 3 do
          out := Des.Channel.recv ch :: !out
        done)
  in
  no_failures sim;
  check (Alcotest.list int_c) "fifo" [ 1; 2; 3 ] (List.rev !out)

let test_channel_blocking_recv () =
  let sim = Des.Sim.create () in
  let ch = Des.Channel.create () in
  let got_at = ref 0. in
  ignore
    (Des.Proc.spawn sim (fun () ->
         let v = Des.Channel.recv ch in
         check int_c "value" 7 v;
         got_at := Des.Proc.now ()));
  ignore
    (Des.Proc.spawn sim (fun () ->
         Des.Proc.sleep 4.;
         Des.Channel.send ch 7));
  ignore (Des.Sim.run sim);
  check float_c "received when sent" 4.0 !got_at;
  no_failures sim

let test_channel_waiters_fifo () =
  let sim = Des.Sim.create () in
  let ch = Des.Channel.create () in
  let out = ref [] in
  let reader tag delay =
    ignore
      (Des.Proc.spawn sim (fun () ->
           Des.Proc.sleep delay;
           let v = Des.Channel.recv ch in
           out := (tag, v) :: !out))
  in
  reader "first" 0.1;
  reader "second" 0.2;
  ignore
    (Des.Proc.spawn sim (fun () ->
         Des.Proc.sleep 1.;
         Des.Channel.send ch 10;
         Des.Channel.send ch 20));
  ignore (Des.Sim.run sim);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string int_c))
    "oldest waiter first"
    [ ("first", 10); ("second", 20) ]
    (List.rev !out);
  no_failures sim

let test_channel_timeout () =
  let sim = Des.Sim.create () in
  let ch = Des.Channel.create () in
  let results = ref [] in
  ignore
    (Des.Proc.spawn sim (fun () ->
         let r = Des.Channel.recv_timeout ch ~timeout:2. in
         results := ("timeout", r, Des.Proc.now ()) :: !results;
         let r2 = Des.Channel.recv_timeout ch ~timeout:10. in
         results := ("value", r2, Des.Proc.now ()) :: !results));
  ignore
    (Des.Proc.spawn sim (fun () ->
         Des.Proc.sleep 5.;
         Des.Channel.send ch 42));
  ignore (Des.Sim.run sim);
  (match List.rev !results with
   | [ ("timeout", None, t1); ("value", Some 42, t2) ] ->
     check float_c "timed out at 2" 2. t1;
     check float_c "value at 5" 5. t2
   | _ -> Alcotest.fail "unexpected sequence");
  no_failures sim

let test_channel_killed_waiter_does_not_steal () =
  let sim = Des.Sim.create () in
  let ch = Des.Channel.create () in
  let victim =
    Des.Proc.spawn ~name:"victim" sim (fun () ->
        ignore (Des.Channel.recv ch);
        Alcotest.fail "victim should never receive")
  in
  let got = ref None in
  ignore
    (Des.Proc.spawn ~name:"survivor" sim (fun () ->
         Des.Proc.sleep 1.;
         got := Some (Des.Channel.recv ch)));
  ignore
    (Des.Proc.spawn sim (fun () ->
         Des.Proc.sleep 2.;
         Des.Proc.kill victim;
         Des.Channel.send ch 99));
  ignore (Des.Sim.run sim);
  check (Alcotest.option int_c) "survivor got the message" (Some 99) !got;
  no_failures sim

(* ------------------------------------------------------------------ *)
(* Station *)

let test_station_fifo_serial () =
  let sim = Des.Sim.create () in
  let st = Des.Station.create sim in
  let done_at = ref [] in
  let client tag arrive service =
    ignore
      (Des.Proc.spawn sim (fun () ->
           Des.Proc.sleep arrive;
           Des.Station.request st ~service;
           done_at := (tag, Des.Proc.now ()) :: !done_at))
  in
  client "a" 0. 2.;
  client "b" 0.5 1.;
  (* b arrives while a is in service: waits until 2.0, done at 3.0 *)
  ignore (Des.Sim.run sim);
  (match List.rev !done_at with
   | [ ("a", ta); ("b", tb) ] ->
     check float_c "a done" 2.0 ta;
     check float_c "b done (queued)" 3.0 tb
   | _ -> Alcotest.fail "unexpected completion order");
  check float_c "busy time" 3.0 (Des.Station.busy_time st);
  check int_c "completed" 2 (Des.Station.completed st);
  no_failures sim

let test_station_negative_service () =
  let sim = Des.Sim.create () in
  let st = Des.Station.create sim in
  ignore
    (Des.Proc.spawn sim (fun () ->
         match Des.Station.request st ~service:(-1.) with
         | () -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ()));
  ignore (Des.Sim.run sim);
  no_failures sim

(* ------------------------------------------------------------------ *)
(* Net *)

let constant_latency d ~src:_ ~dst:_ ~rng:_ = d

let test_net_delivery () =
  let sim = Des.Sim.create () in
  let net = Des.Net.create ~latency:(constant_latency 0.01) sim ~nodes:3 in
  let got = ref None in
  ignore
    (Des.Proc.spawn sim (fun () ->
         let src, msg = Des.Channel.recv (Des.Net.inbox net 1) in
         got := Some (src, msg, Des.Proc.now ())));
  Des.Net.send net ~src:0 ~dst:1 "hello";
  ignore (Des.Sim.run sim);
  (match !got with
   | Some (0, "hello", t) -> check float_c "latency applied" 0.01 t
   | _ -> Alcotest.fail "message not delivered");
  check int_c "delivered count" 1 (Des.Net.delivered net);
  no_failures sim

let test_net_crash_blocks_delivery () =
  let sim = Des.Sim.create () in
  let net = Des.Net.create ~latency:(constant_latency 0.01) sim ~nodes:2 in
  Des.Net.crash net 1;
  Des.Net.send net ~src:0 ~dst:1 "lost";
  ignore (Des.Sim.run sim);
  check int_c "nothing delivered" 0 (Des.Net.delivered net);
  check int_c "dropped" 1 (Des.Net.dropped net);
  Des.Net.restart net 1;
  Des.Net.send net ~src:0 ~dst:1 "ok";
  ignore (Des.Sim.run sim);
  check int_c "delivered after restart" 1 (Des.Net.delivered net)

let test_net_crash_drops_in_flight () =
  let sim = Des.Sim.create () in
  let net = Des.Net.create ~latency:(constant_latency 1.0) sim ~nodes:2 in
  Des.Net.send net ~src:0 ~dst:1 "in-flight";
  ignore (Des.Sim.run ~until:0.5 sim);
  Des.Net.crash net 1;
  ignore (Des.Sim.run sim);
  check int_c "in-flight message dropped" 0 (Des.Net.delivered net)

let test_net_partition_and_heal () =
  let sim = Des.Sim.create () in
  let net = Des.Net.create ~latency:(constant_latency 0.01) sim ~nodes:4 in
  Des.Net.partition net [ 0; 1 ] [ 2; 3 ];
  Des.Net.send net ~src:0 ~dst:2 "cut";
  Des.Net.send net ~src:0 ~dst:1 "same-side";
  ignore (Des.Sim.run sim);
  check int_c "only same-side delivered" 1 (Des.Net.delivered net);
  Des.Net.heal net;
  Des.Net.send net ~src:0 ~dst:2 "healed";
  ignore (Des.Sim.run sim);
  check int_c "after heal" 2 (Des.Net.delivered net)

let test_net_drop_rate () =
  let sim = Des.Sim.create () in
  let net =
    Des.Net.create ~latency:(constant_latency 0.01) ~drop_rate:1.0 sim ~nodes:2
  in
  for _ = 1 to 10 do
    Des.Net.send net ~src:0 ~dst:1 "x"
  done;
  ignore (Des.Sim.run sim);
  check int_c "all dropped" 10 (Des.Net.dropped net)

(* ------------------------------------------------------------------ *)
(* Dist *)

let test_dist_bounds () =
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 1000 do
    let x = Des.Dist.uniform st ~lo:2. ~hi:5. in
    if x < 2. || x >= 5. then Alcotest.fail "uniform out of bounds";
    let e = Des.Dist.exponential st ~mean:3. in
    if e < 0. then Alcotest.fail "exponential negative"
  done

let test_dist_weighted_index () =
  let st = Random.State.make [| 7 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Des.Dist.weighted_index st [| 0.; 1.; 3. |] in
    counts.(i) <- counts.(i) + 1
  done;
  check int_c "zero weight never picked" 0 counts.(0);
  check bool_c "heavier weight picked more" true (counts.(2) > counts.(1))

let test_dist_determinism () =
  let draw seed =
    let st = Random.State.make [| seed |] in
    List.init 20 (fun _ -> Des.Dist.uniform st ~lo:0. ~hi:1.)
  in
  check (Alcotest.list float_c) "same seed, same stream" (draw 3) (draw 3)

let test_dist_errors () =
  let st = Random.State.make [| 1 |] in
  Alcotest.check_raises "choice []"
    (Invalid_argument "Dist.choice: empty list") (fun () ->
      ignore (Des.Dist.choice st []));
  (match Des.Dist.weighted_index st [| 0.; 0. |] with
   | _ -> Alcotest.fail "expected Invalid_argument"
   | exception Invalid_argument _ -> ());
  match Des.Dist.int st 0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Determinism of a whole simulation: same seed -> identical event counts. *)
let test_sim_determinism () =
  let run seed =
    let sim = Des.Sim.create ~seed () in
    let net = Des.Net.create sim ~nodes:3 ~drop_rate:0.2 in
    let received = ref [] in
    for i = 0 to 2 do
      ignore
        (Des.Proc.spawn sim (fun () ->
             for _ = 1 to 20 do
               match
                 Des.Channel.recv_timeout (Des.Net.inbox net i) ~timeout:0.5
               with
               | Some (src, msg) -> received := (i, src, msg) :: !received
               | None -> ()
             done))
    done;
    ignore
      (Des.Proc.spawn sim (fun () ->
           for k = 1 to 30 do
             Des.Proc.sleep 0.05;
             Des.Net.send net ~src:(k mod 3) ~dst:((k + 1) mod 3) k
           done));
    ignore (Des.Sim.run sim);
    (!received, Des.Sim.executed sim)
  in
  let a = run 11 and b = run 11 and c = run 12 in
  check bool_c "same seed identical" true (a = b);
  check bool_c "different seed differs" true (a <> c)


(* ------------------------------------------------------------------ *)
(* Additional kernel coverage *)

let test_station_post_fire_and_forget () =
  let sim = Des.Sim.create () in
  let st = Des.Station.create sim in
  Des.Station.post st ~service:2.;
  Des.Station.post st ~service:3.;
  check int_c "queued" 2 (Des.Station.queue_length st);
  ignore (Des.Sim.run sim);
  check float_c "busy" 5. (Des.Station.busy_time st);
  check int_c "completed" 2 (Des.Station.completed st);
  check int_c "drained" 0 (Des.Station.queue_length st)

let test_net_broadcast () =
  let sim = Des.Sim.create () in
  let net = Des.Net.create ~latency:(constant_latency 0.01) sim ~nodes:4 in
  Des.Net.broadcast net ~src:1 "hi";
  ignore (Des.Sim.run sim);
  check int_c "three deliveries" 3 (Des.Net.delivered net);
  check int_c "sender got nothing" 0
    (Des.Channel.length (Des.Net.inbox net 1))

let test_proc_identity () =
  let sim = Des.Sim.create () in
  let seen = ref "" in
  let p =
    Des.Proc.spawn ~name:"identity" sim (fun () ->
        let self = Des.Proc.self () in
        seen := Des.Proc.name self)
  in
  ignore (Des.Sim.run sim);
  check Alcotest.string "self name" "identity" !seen;
  check Alcotest.string "handle name" "identity" (Des.Proc.name p);
  check bool_c "ids positive" true (Des.Proc.id p > 0)

let test_proc_kill_is_idempotent () =
  let sim = Des.Sim.create () in
  let p = Des.Proc.spawn sim (fun () -> Des.Proc.sleep 10.) in
  ignore
    (Des.Proc.spawn sim (fun () ->
         Des.Proc.sleep 1.;
         Des.Proc.kill p;
         Des.Proc.kill p;
         Des.Proc.kill p));
  ignore (Des.Sim.run sim);
  match Des.Proc.result p with
  | Some (Error Des.Proc.Killed) -> ()
  | _ -> Alcotest.fail "expected Killed exactly once"

let test_channel_try_recv () =
  let ch = Des.Channel.create () in
  check (Alcotest.option int_c) "empty" None (Des.Channel.try_recv ch);
  Des.Channel.send ch 5;
  check (Alcotest.option int_c) "value" (Some 5) (Des.Channel.try_recv ch);
  check (Alcotest.option int_c) "drained" None (Des.Channel.try_recv ch)

let test_sim_event_counters () =
  let sim = Des.Sim.create () in
  ignore (Des.Sim.after sim 1. (fun () -> ()));
  ignore (Des.Sim.after sim 2. (fun () -> ()));
  check int_c "pending before" 2 (Des.Sim.pending sim);
  check int_c "executed before" 0 (Des.Sim.executed sim);
  ignore (Des.Sim.run sim);
  check int_c "pending after" 0 (Des.Sim.pending sim);
  check int_c "executed after" 2 (Des.Sim.executed sim)

let suite =
  [
    ("heap: pop order", `Quick, test_heap_order);
    ("heap: empty", `Quick, test_heap_empty);
    QCheck_alcotest.to_alcotest heap_sort_prop;
    ("sim: same-time FIFO", `Quick, test_sim_fifo_same_time);
    ("sim: cancel", `Quick, test_sim_cancel);
    ("sim: scheduling in the past", `Quick, test_sim_past_raises);
    ("sim: run until", `Quick, test_sim_run_until);
    ("sim: determinism", `Quick, test_sim_determinism);
    ("proc: sleep advances time", `Quick, test_proc_sleep_advances_time);
    ("proc: kill suspended", `Quick, test_proc_kill_suspended);
    ("proc: kill before start", `Quick, test_proc_kill_before_start);
    ("proc: failure recorded", `Quick, test_proc_failure_recorded);
    ("proc: await", `Quick, test_proc_await);
    ("proc: await finished", `Quick, test_proc_await_finished);
    ("channel: fifo", `Quick, test_channel_fifo);
    ("channel: blocking recv", `Quick, test_channel_blocking_recv);
    ("channel: waiters fifo", `Quick, test_channel_waiters_fifo);
    ("channel: timeout", `Quick, test_channel_timeout);
    ( "channel: killed waiter does not steal",
      `Quick,
      test_channel_killed_waiter_does_not_steal );
    ("station: fifo serial service", `Quick, test_station_fifo_serial);
    ("station: negative service", `Quick, test_station_negative_service);
    ("net: delivery", `Quick, test_net_delivery);
    ("net: crash blocks delivery", `Quick, test_net_crash_blocks_delivery);
    ("net: crash drops in-flight", `Quick, test_net_crash_drops_in_flight);
    ("net: partition and heal", `Quick, test_net_partition_and_heal);
    ("net: drop rate", `Quick, test_net_drop_rate);
    ("dist: bounds", `Quick, test_dist_bounds);
    ("dist: weighted index", `Quick, test_dist_weighted_index);
    ("dist: determinism", `Quick, test_dist_determinism);
    ("dist: errors", `Quick, test_dist_errors);
    ("station: post fire-and-forget", `Quick, test_station_post_fire_and_forget);
    ("net: broadcast", `Quick, test_net_broadcast);
    ("proc: identity", `Quick, test_proc_identity);
    ("proc: kill idempotent", `Quick, test_proc_kill_is_idempotent);
    ("channel: try_recv", `Quick, test_channel_try_recv);
    ("sim: event counters", `Quick, test_sim_event_counters);
  ]

let () = Alcotest.run "des" [ ("des", suite) ]
