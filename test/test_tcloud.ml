(* Tests for the TCloud service layer: logical actions and their undo
   pairings, constraints, stored procedures, and the inventory builder. *)

open Tropic

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

module Schema = Devices.Schema

let v_str s = Data.Value.Str s
let v_int i = Data.Value.Int i
let host0 = Data.Path.v "/vmRoot/host00000"
let host0_s = "/vmRoot/host00000"
let storage0_s = "/storageRoot/storage00000"
let switch0 = Data.Path.v "/netRoot/switch000"

let inventory () = Tcloud.Setup.build Tcloud.Setup.small

let simulate ?(inv = inventory ()) proc args =
  Logical.simulate inv.Tcloud.Setup.env ~tree:inv.Tcloud.Setup.tree ~proc ~args

let expect_ok what = function
  | Ok v -> v
  | Error reason -> Alcotest.failf "%s: %s" what reason

let expect_error what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error reason -> reason

(* ------------------------------------------------------------------ *)
(* Logical actions applied directly *)

let apply_action inv tree path action args =
  match
    Dsl.find_action inv.Tcloud.Setup.env
      ~kind:
        (match Data.Tree.kind tree path with
         | Some k -> k
         | None -> Alcotest.failf "no node at %s" (Data.Path.to_string path))
      ~action
  with
  | None -> Alcotest.failf "no action %s" action
  | Some def -> def.Dsl.logical tree path args

let test_action_import_unimport () =
  let inv = inventory () in
  let tree = inv.Tcloud.Setup.tree in
  let tree =
    expect_ok "import"
      (apply_action inv tree host0 Schema.act_import_image [ v_str "a.img" ])
  in
  ignore
    (expect_error "double import"
       (apply_action inv tree host0 Schema.act_import_image [ v_str "a.img" ]));
  let tree' =
    expect_ok "unimport"
      (apply_action inv tree host0 Schema.act_unimport_image [ v_str "a.img" ])
  in
  ignore
    (expect_error "unimport twice"
       (apply_action inv tree' host0 Schema.act_unimport_image [ v_str "a.img" ]))

let test_action_create_vm_requires_import () =
  let inv = inventory () in
  let tree = inv.Tcloud.Setup.tree in
  ignore
    (expect_error "create without import"
       (apply_action inv tree host0 Schema.act_create_vm
          [ v_str "x"; v_str "ghost.img"; v_int 512 ]));
  let tree =
    expect_ok "import"
      (apply_action inv tree host0 Schema.act_import_image [ v_str "a.img" ])
  in
  let tree =
    expect_ok "create"
      (apply_action inv tree host0 Schema.act_create_vm
         [ v_str "x"; v_str "a.img"; v_int 512 ])
  in
  ignore
    (expect_error "unimport while in use"
       (apply_action inv tree host0 Schema.act_unimport_image [ v_str "a.img" ]));
  match Data.Tree.get_attr tree (Data.Path.child host0 "x") Schema.attr_state with
  | Some (Data.Value.Str s) -> check string_c "created stopped" "stopped" s
  | _ -> Alcotest.fail "vm state"

let test_action_vlan_lifecycle () =
  let inv = inventory () in
  let tree = inv.Tcloud.Setup.tree in
  let tree =
    expect_ok "create vlan"
      (apply_action inv tree switch0 Schema.act_create_vlan
         [ v_int 9; v_str "t" ])
  in
  let tree =
    expect_ok "add port"
      (apply_action inv tree switch0 Schema.act_add_port [ v_int 9; v_str "p0" ])
  in
  ignore
    (expect_error "remove vlan with ports"
       (apply_action inv tree switch0 Schema.act_remove_vlan [ v_int 9 ]));
  let tree =
    expect_ok "remove port"
      (apply_action inv tree switch0 Schema.act_remove_port
         [ v_int 9; v_str "p0" ])
  in
  let tree =
    expect_ok "remove vlan"
      (apply_action inv tree switch0 Schema.act_remove_vlan [ v_int 9 ])
  in
  check bool_c "vlan gone" false
    (Data.Tree.mem tree (Data.Path.child switch0 "vlan0009"))

(* ------------------------------------------------------------------ *)
(* Undo pairings *)

let spawn_args vm =
  Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img" ~mem_mb:1024
    ~storage:storage0_s ~host:host0_s

let test_remove_vm_undo_recreates () =
  let inv = inventory () in
  let { Logical.new_tree; _ } =
    expect_ok "spawn" (simulate ~inv "spawnVM" (spawn_args "u1"))
  in
  (* Simulate a destroy and roll the whole thing back logically; the VM
     reappears with its exact configuration thanks to removeVM's undo. *)
  let destroyed =
    expect_ok "destroy simulate"
      (Logical.simulate inv.Tcloud.Setup.env ~tree:new_tree ~proc:"stopVM"
         ~args:(Tcloud.Procs.stop_vm_args ~host:host0_s ~vm:"u1"))
  in
  let tree1 = destroyed.Logical.new_tree in
  let remove =
    expect_ok "removeVM sim"
      (Logical.simulate inv.Tcloud.Setup.env ~tree:tree1 ~proc:"startVM"
         ~args:(Tcloud.Procs.start_vm_args ~host:host0_s ~vm:"u1"))
  in
  ignore remove;
  (* Direct check on the undo metadata of a migrate log. *)
  let inv2 =
    Tcloud.Setup.build
      { Tcloud.Setup.small with Tcloud.Setup.prepopulated_vms_per_host = 1 }
  in
  let vm = Tcloud.Setup.prepop_vm_name ~host:0 ~index:0 in
  let migrate =
    expect_ok "migrate sim"
      (Logical.simulate inv2.Tcloud.Setup.env ~tree:inv2.Tcloud.Setup.tree
         ~proc:"migrateVM"
         ~args:
           (Tcloud.Procs.migrate_vm_args ~src:host0_s
              ~dst:"/vmRoot/host00002" ~vm))
  in
  let remove_record =
    List.find
      (fun (r : Xlog.record) -> String.equal r.Xlog.action Schema.act_remove_vm)
      migrate.Logical.log
  in
  (match remove_record.Xlog.undo with
   | Some undo -> check string_c "undo is createVM" Schema.act_create_vm undo
   | None -> Alcotest.fail "removeVM should be reversible");
  check int_c "undo carries name+image+mem" 3
    (List.length remove_record.Xlog.undo_args);
  (* And the migrate log as a whole rolls back cleanly. *)
  let restored =
    match
      Logical.rollback inv2.Tcloud.Setup.env ~tree:migrate.Logical.new_tree
        ~log:migrate.Logical.log
    with
    | Ok t -> t
    | Error (i, reason) -> Alcotest.failf "undo #%d: %s" i reason
  in
  check bool_c "migrate rollback exact" true
    (Data.Tree.equal restored inv2.Tcloud.Setup.tree)

let test_remove_image_irreversible () =
  let inv = inventory () in
  let { Logical.new_tree; _ } =
    expect_ok "spawn" (simulate ~inv "spawnVM" (spawn_args "u2"))
  in
  let destroy =
    expect_ok "destroy sim"
      (Logical.simulate inv.Tcloud.Setup.env ~tree:new_tree ~proc:"destroyVM"
         ~args:
           (Tcloud.Procs.destroy_vm_args ~host:host0_s ~storage:storage0_s
              ~vm:"u2"))
  in
  (* The irreversible record is the last one. *)
  match List.rev destroy.Logical.log with
  | last :: _ ->
    check string_c "last is removeImage" Schema.act_remove_image
      last.Xlog.action;
    check bool_c "irreversible" true (last.Xlog.undo = None)
  | [] -> Alcotest.fail "empty log"

(* ------------------------------------------------------------------ *)
(* Constraints *)

let test_storage_capacity_constraint () =
  let inv =
    Tcloud.Setup.build
      { Tcloud.Setup.small with Tcloud.Setup.storage_capacity_mb = 25_000 }
  in
  (* Template is 10 GB; first clone fits (20 GB total), second exceeds. *)
  let first =
    expect_ok "first spawn" (simulate ~inv "spawnVM" (spawn_args "s1"))
  in
  let reason =
    expect_error "second spawn"
      (Logical.simulate inv.Tcloud.Setup.env ~tree:first.Logical.new_tree
         ~proc:"spawnVM" ~args:(spawn_args "s2"))
  in
  check bool_c "names storage-capacity" true
    (String.length reason > 0
     && Option.is_some
          (String.index_opt reason 's')
     && Str_contains.contains reason "storage-capacity")

and test_vlan_capacity_constraint () =
  let inv =
    Tcloud.Setup.build { Tcloud.Setup.small with Tcloud.Setup.max_vlans = 1 }
  in
  let switch = Data.Path.to_string switch0 in
  let first =
    expect_ok "first vlan"
      (simulate ~inv "createVlan"
         (Tcloud.Procs.create_vlan_args ~switch ~vlan:1 ~name:"a"))
  in
  let reason =
    expect_error "second vlan"
      (Logical.simulate inv.Tcloud.Setup.env ~tree:first.Logical.new_tree
         ~proc:"createVlan"
         ~args:(Tcloud.Procs.create_vlan_args ~switch ~vlan:2 ~name:"b"))
  in
  check bool_c "names switch-vlan-capacity" true
    (Str_contains.contains reason "switch-vlan-capacity")

let test_spawn_with_network () =
  let inv = inventory () in
  let switch = Data.Path.to_string switch0 in
  let vlan_setup =
    expect_ok "create vlan"
      (simulate ~inv "createVlan"
         (Tcloud.Procs.create_vlan_args ~switch ~vlan:10 ~name:"tenant"))
  in
  let spawn =
    expect_ok "spawn with network"
      (Logical.simulate inv.Tcloud.Setup.env ~tree:vlan_setup.Logical.new_tree
         ~proc:"spawnVMWithNetwork"
         ~args:
           (Tcloud.Procs.spawn_vm_with_network_args ~vm:"web" ~template:"base.img"
              ~mem_mb:512 ~storage:storage0_s ~host:host0_s ~switch ~vlan:10))
  in
  check int_c "six actions" 6 spawn.Logical.actions;
  match
    Data.Tree.get_attr spawn.Logical.new_tree
      (Data.Path.child switch0 "vlan0010")
      Schema.attr_ports
  with
  | Some (Data.Value.List [ Data.Value.Str port ]) ->
    check string_c "vm port attached" "web.eth0" port
  | _ -> Alcotest.fail "port list"

(* ------------------------------------------------------------------ *)
(* Setup invariants *)

let test_setup_layers_consistent () =
  let inv =
    Tcloud.Setup.build
      { Tcloud.Setup.small with Tcloud.Setup.prepopulated_vms_per_host = 3 }
  in
  (* The logical tree must equal the devices' own exports at time zero. *)
  Array.iter
    (fun (path, compute) ->
      let logical =
        match Data.Tree.subtree inv.Tcloud.Setup.tree path with
        | Ok node -> node
        | Error e -> Alcotest.fail (Data.Tree.error_to_string e)
      in
      check bool_c
        (Printf.sprintf "compute %s consistent" (Data.Path.to_string path))
        true
        (Data.Tree.equal logical
           (Devices.Device.export (Devices.Compute.device compute))))
    inv.Tcloud.Setup.computes;
  (* And the initial state violates no constraint anywhere. *)
  let registry = Dsl.constraints_of inv.Tcloud.Setup.env in
  Array.iter
    (fun (path, _) ->
      check int_c "no initial violations" 0
        (List.length (Constraints.check_path registry inv.Tcloud.Setup.tree path)))
    inv.Tcloud.Setup.computes

let test_setup_prepopulated_spawnable () =
  let inv =
    Tcloud.Setup.build
      { Tcloud.Setup.small with Tcloud.Setup.prepopulated_vms_per_host = 2 }
  in
  (* Prepopulated VMs are stopped and startable. *)
  let vm = Tcloud.Setup.prepop_vm_name ~host:1 ~index:0 in
  let result =
    expect_ok "start prepopulated"
      (simulate ~inv "startVM"
         (Tcloud.Procs.start_vm_args ~host:"/vmRoot/host00001" ~vm))
  in
  check int_c "one action" 1 result.Logical.actions

let test_setup_scales () =
  let inv =
    Tcloud.Setup.build
      {
        Tcloud.Setup.small with
        Tcloud.Setup.compute_hosts = 500;
        storage_hosts = 125;
      }
  in
  (* 500 hosts + 125 storage (each with one template) + 1 switch + 3 roots *)
  check int_c "tree size" (3 + 500 + 125 + 125 + 1)
    (Data.Tree.size inv.Tcloud.Setup.tree);
  check int_c "device count" (500 + 125 + 1)
    (List.length inv.Tcloud.Setup.devices)

let test_controller_config_has_repair_rules () =
  check bool_c "repair rules wired" true
    (List.length Tcloud.Setup.controller_config.Controller.repair_rules >= 2)

let suite =
  [
    ("action: import/unimport", `Quick, test_action_import_unimport);
    ("action: createVM requires import", `Quick, test_action_create_vm_requires_import);
    ("action: vlan lifecycle", `Quick, test_action_vlan_lifecycle);
    ("undo: removeVM recreates from pre-tree", `Quick, test_remove_vm_undo_recreates);
    ("undo: removeImage irreversible, ordered last", `Quick, test_remove_image_irreversible);
    ("constraint: storage capacity", `Quick, test_storage_capacity_constraint);
    ("constraint: vlan capacity", `Quick, test_vlan_capacity_constraint);
    ("proc: spawnVMWithNetwork", `Quick, test_spawn_with_network);
    ("setup: layers consistent at t0", `Quick, test_setup_layers_consistent);
    ("setup: prepopulated VMs usable", `Quick, test_setup_prepopulated_spawnable);
    ("setup: scales", `Quick, test_setup_scales);
    ("setup: controller config", `Quick, test_controller_config_has_repair_rules);
  ]

let () = Alcotest.run "tcloud" [ ("tcloud", suite) ]
