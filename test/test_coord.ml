(* Tests for the coordination service: the replicated store, the Raft-style
   replica group, client sessions, and the queue/election recipes. *)

open Coord

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* Run [scenario] as a process against a fresh ensemble; the simulation is
   bounded by [horizon] because replicas and pingers run forever. *)
let with_ensemble ?(replicas = 3) ?(horizon = 120.) ?(seed = 7) scenario =
  let sim = Des.Sim.create ~seed () in
  let ens = Ensemble.create ~replicas sim in
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"scenario" sim (fun () ->
         scenario sim ens;
         finished := true));
  ignore (Des.Sim.run ~until:horizon sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     Alcotest.failf "process %s crashed: %s" who (Printexc.to_string exn));
  if not !finished then Alcotest.fail "scenario did not finish before horizon"

let ok_create what = function
  | Ok key -> key
  | Error e -> Alcotest.failf "%s: %s" what (Format.asprintf "%a" Types.pp_op_error e)

(* ------------------------------------------------------------------ *)
(* Store unit tests (the replicated state machine in isolation) *)

let mk_create ?(session = 1) ?(req = 1) ?(ephemeral = false) ?(sequential = false)
    key value =
  Types.Create { session; req; key; value; ephemeral; sequential }

let test_store_create_get () =
  let s = Store.create () in
  (match Store.apply s (mk_create "/a" "1") with
   | Types.Created "/a", [ "/a" ] -> ()
   | _ -> Alcotest.fail "create");
  (match Store.get s "/a" with
   | Some ("1", 1) -> ()
   | _ -> Alcotest.fail "get");
  match Store.apply s (mk_create ~req:2 "/a" "other") with
  | Types.Op_failed Types.Key_exists, [] -> ()
  | _ -> Alcotest.fail "duplicate create"

let test_store_sequential () =
  let s = Store.create () in
  let k1 =
    match Store.apply s (mk_create ~sequential:true ~req:1 "/q/item-" "a") with
    | Types.Created k, _ -> k
    | _ -> Alcotest.fail "seq create 1"
  in
  let k2 =
    match Store.apply s (mk_create ~sequential:true ~req:2 "/q/item-" "b") with
    | Types.Created k, _ -> k
    | _ -> Alcotest.fail "seq create 2"
  in
  check bool_c "ordered" true (k1 < k2);
  check (Alcotest.list string_c) "children in order" [ k1; k2 ]
    (Store.children s "/q")

let test_store_versions () =
  let s = Store.create () in
  ignore (Store.apply s (mk_create "/k" "v1"));
  (match Store.apply s (Types.Write { session = 1; req = 2; key = "/k"; value = "v2"; expect_version = Some 1 }) with
   | Types.Written 2, [ "/k" ] -> ()
   | _ -> Alcotest.fail "cas write");
  (match Store.apply s (Types.Write { session = 1; req = 3; key = "/k"; value = "v3"; expect_version = Some 1 }) with
   | Types.Op_failed Types.Bad_version, [] -> ()
   | _ -> Alcotest.fail "stale cas");
  (match Store.apply s (Types.Delete { session = 1; req = 4; key = "/k"; expect_version = Some 9 }) with
   | Types.Op_failed Types.Bad_version, _ -> ()
   | _ -> Alcotest.fail "stale delete");
  match Store.apply s (Types.Delete { session = 1; req = 5; key = "/k"; expect_version = Some 2 }) with
  | Types.Deleted_ok, [ "/k" ] -> ()
  | _ -> Alcotest.fail "delete"

let test_store_upsert () =
  let s = Store.create () in
  (match Store.apply s (Types.Write { session = 1; req = 1; key = "/new"; value = "x"; expect_version = None }) with
   | Types.Written 1, _ -> ()
   | _ -> Alcotest.fail "upsert creates");
  match Store.apply s (Types.Write { session = 1; req = 2; key = "/new"; value = "y"; expect_version = None }) with
  | Types.Written 2, _ -> ()
  | _ -> Alcotest.fail "upsert bumps version"

let test_store_children_direct_only () =
  let s = Store.create () in
  List.iteri
    (fun i key -> ignore (Store.apply s (mk_create ~req:(i + 1) key "v")))
    [ "/q/a"; "/q/b"; "/q/b/nested"; "/qq/c"; "/other" ];
  check (Alcotest.list string_c) "direct children" [ "/q/a"; "/q/b" ]
    (Store.children s "/q")

let test_store_ephemeral_expiry () =
  let s = Store.create () in
  ignore (Store.apply s (mk_create ~session:5 ~ephemeral:true "/e1" "x"));
  ignore (Store.apply s (mk_create ~session:5 ~req:2 ~ephemeral:true "/e2" "y"));
  ignore (Store.apply s (mk_create ~session:6 "/p" "z"));
  check (Alcotest.list int_c) "owners" [ 5 ] (Store.ephemeral_owners s);
  (match Store.apply s (Types.Expire_session 5) with
   | Types.Expired_ok, changed ->
     check (Alcotest.list string_c) "expired keys" [ "/e1"; "/e2" ]
       (List.sort compare changed)
   | _ -> Alcotest.fail "expire");
  check bool_c "persistent survives" true (Store.exists s "/p");
  check bool_c "ephemeral gone" false (Store.exists s "/e1")

let test_store_dedup () =
  let s = Store.create () in
  let cmd = mk_create ~session:9 ~req:3 ~sequential:true "/q/item-" "v" in
  let r1, _ = Store.apply s cmd in
  let r2, changed2 = Store.apply s cmd in
  check bool_c "same cached result" true (r1 = r2);
  check int_c "no second key created" 1 (Store.size s);
  check int_c "no changed keys on replay" 0 (List.length changed2)

let test_store_parent () =
  check (Alcotest.option string_c) "parent" (Some "/a/b")
    (Store.parent "/a/b/c");
  check (Alcotest.option string_c) "no parent" None (Store.parent "nokey")

(* ------------------------------------------------------------------ *)
(* Ensemble: elections and replication *)

let test_single_leader_elected () =
  with_ensemble (fun _sim ens ->
      let leader = Ensemble.await_leader ens in
      check bool_c "leader id valid" true (leader >= 0 && leader < 3);
      (* Exactly one leader among live replicas once settled. *)
      Des.Proc.sleep 2.;
      let leaders =
        List.filter
          (fun i -> Replica.is_leader (Ensemble.replica ens i))
          [ 0; 1; 2 ]
      in
      check int_c "exactly one leader" 1 (List.length leaders))

let test_client_kv_roundtrip () =
  with_ensemble (fun _sim ens ->
      let c = Ensemble.connect ens ~name:"kv" () in
      let key = ok_create "create" (Client.create c ~key:"/app/cfg" ~value:"v1" ()) in
      check string_c "key" "/app/cfg" key;
      (match Client.get c "/app/cfg" with
       | Some ("v1", 1) -> ()
       | _ -> Alcotest.fail "get after create");
      (match Client.write c ~expect_version:1 ~key:"/app/cfg" ~value:"v2" () with
       | Ok 2 -> ()
       | _ -> Alcotest.fail "cas write");
      (match Client.write c ~expect_version:1 ~key:"/app/cfg" ~value:"v3" () with
       | Error Types.Bad_version -> ()
       | _ -> Alcotest.fail "stale cas rejected");
      (match Client.delete c ~key:"/app/cfg" () with
       | Ok () -> ()
       | _ -> Alcotest.fail "delete");
      check (Alcotest.option Alcotest.pass) "gone" None (Client.get c "/app/cfg");
      Client.close c)

let test_replicas_converge () =
  with_ensemble (fun _sim ens ->
      let c = Ensemble.connect ens ~name:"writer" () in
      for i = 1 to 20 do
        ignore
          (ok_create "create"
             (Client.create c ~key:(Printf.sprintf "/data/k%02d" i)
                ~value:(string_of_int i) ()))
      done;
      (* Give followers time to apply. *)
      Des.Proc.sleep 1.;
      List.iter
        (fun i ->
          let store = Replica.store (Ensemble.replica ens i) in
          check int_c
            (Printf.sprintf "replica %d applied all" i)
            20
            (List.length (Store.children store "/data")))
        [ 0; 1; 2 ];
      Client.close c)

let test_watch_key_fires () =
  with_ensemble (fun _sim ens ->
      let c = Ensemble.connect ens ~name:"watcher" () in
      let w = Ensemble.connect ens ~name:"writer" () in
      ignore (ok_create "create" (Client.create w ~key:"/watched" ~value:"0" ()));
      Client.watch_key c "/watched";
      ignore
        (Des.Proc.spawn ~name:"trigger" (Ensemble.sim ens) (fun () ->
             Des.Proc.sleep 0.5;
             ignore (Client.write w ~key:"/watched" ~value:"1" ())));
      let fired = Client.await_change c ~timeout:5. in
      check bool_c "watch fired" true fired;
      Client.close c;
      Client.close w)

let test_watch_children_fires () =
  with_ensemble (fun _sim ens ->
      let c = Ensemble.connect ens ~name:"watcher" () in
      let w = Ensemble.connect ens ~name:"writer" () in
      Client.watch_children c "/dir";
      ignore
        (Des.Proc.spawn ~name:"trigger" (Ensemble.sim ens) (fun () ->
             Des.Proc.sleep 0.5;
             ignore (Client.create w ~key:"/dir/child" ~value:"x" ())));
      check bool_c "child watch fired" true (Client.await_change c ~timeout:5.);
      Client.close c;
      Client.close w)

let test_ephemeral_expires_on_close () =
  with_ensemble ~horizon:60. (fun _sim ens ->
      let c = Ensemble.connect ens ~session_timeout:3. ~name:"mortal" () in
      let observer = Ensemble.connect ens ~name:"observer" () in
      ignore
        (ok_create "create"
           (Client.create c ~ephemeral:true ~key:"/presence/me" ~value:"hi" ()));
      check bool_c "present" true
        (Option.is_some (Client.get observer "/presence/me"));
      Client.close c;
      (* Session timeout 3 s + expiry sweep 1 s. *)
      Des.Proc.sleep 6.;
      check bool_c "expired" false
        (Option.is_some (Client.get observer "/presence/me"));
      Client.close observer)

let test_leader_crash_no_committed_loss () =
  with_ensemble ~horizon:120. (fun _sim ens ->
      let c = Ensemble.connect ens ~name:"client" () in
      for i = 1 to 10 do
        ignore
          (ok_create "pre-crash create"
             (Client.create c ~key:(Printf.sprintf "/durable/k%d" i) ~value:"v" ()))
      done;
      let old_leader = Ensemble.await_leader ens in
      Ensemble.crash_replica ens old_leader;
      (* Ops continue against the new leader (the client re-discovers it). *)
      for i = 11 to 15 do
        ignore
          (ok_create "post-crash create"
             (Client.create c ~key:(Printf.sprintf "/durable/k%d" i) ~value:"v" ()))
      done;
      let new_leader = Ensemble.await_leader ens in
      check bool_c "leader changed" true (new_leader <> old_leader);
      check int_c "all 15 keys durable" 15
        (List.length (Client.get_children c "/durable"));
      Client.close c)

let test_crashed_replica_rejoins () =
  with_ensemble ~horizon:120. (fun _sim ens ->
      let c = Ensemble.connect ens ~name:"client" () in
      ignore (ok_create "w1" (Client.create c ~key:"/log/a" ~value:"1" ()));
      let victim =
        (* Crash a follower. *)
        let leader = Ensemble.await_leader ens in
        (leader + 1) mod 3
      in
      Ensemble.crash_replica ens victim;
      for i = 1 to 5 do
        ignore
          (ok_create "while-down"
             (Client.create c ~key:(Printf.sprintf "/log/b%d" i) ~value:"v" ()))
      done;
      Ensemble.restart_replica ens victim;
      Des.Proc.sleep 3.;
      let store = Replica.store (Ensemble.replica ens victim) in
      check int_c "rejoined replica caught up" 6
        (List.length (Store.children store "/log"));
      Client.close c)

let test_majority_loss_blocks_then_recovers () =
  with_ensemble ~horizon:200. (fun _sim ens ->
      let c = Ensemble.connect ens ~name:"client" () in
      ignore (ok_create "before" (Client.create c ~key:"/x/a" ~value:"1" ()));
      let leader = Ensemble.await_leader ens in
      let f1 = (leader + 1) mod 3 and f2 = (leader + 2) mod 3 in
      Ensemble.crash_replica ens f1;
      Ensemble.crash_replica ens f2;
      (* Without a quorum nothing commits: run a write attempt with its own
         watchdog. *)
      let attempted = ref false in
      ignore
        (Des.Proc.spawn ~name:"blocked-writer" (Ensemble.sim ens) (fun () ->
             ignore (Client.create c ~key:"/x/blocked" ~value:"2" ());
             attempted := true));
      Des.Proc.sleep 10.;
      check bool_c "write blocked without quorum" false !attempted;
      Ensemble.restart_replica ens f1;
      Des.Proc.sleep 20.;
      check bool_c "write completed after quorum back" true !attempted;
      Client.close c)

(* ------------------------------------------------------------------ *)
(* Recipes *)

let test_queue_fifo () =
  with_ensemble (fun _sim ens ->
      let c = Ensemble.connect ens ~name:"queue" () in
      List.iter
        (fun v -> ignore (Recipes.enqueue c ~queue:"/q/test" v))
        [ "a"; "b"; "c" ];
      check int_c "length" 3 (Recipes.queue_length c ~queue:"/q/test");
      (match Recipes.peek c ~queue:"/q/test" with
       | Some (_, "a") -> ()
       | _ -> Alcotest.fail "peek");
      let vals =
        List.init 3 (fun _ ->
            match Recipes.dequeue c ~queue:"/q/test" () with
            | Some (_, v) -> v
            | None -> Alcotest.fail "dequeue")
      in
      check (Alcotest.list string_c) "fifo" [ "a"; "b"; "c" ] vals;
      check int_c "empty" 0 (Recipes.queue_length c ~queue:"/q/test");
      Client.close c)

let test_queue_blocking_dequeue () =
  with_ensemble (fun _sim ens ->
      let consumer = Ensemble.connect ens ~name:"consumer" () in
      let producer = Ensemble.connect ens ~name:"producer" () in
      ignore
        (Des.Proc.spawn ~name:"producer-proc" (Ensemble.sim ens) (fun () ->
             Des.Proc.sleep 2.;
             ignore (Recipes.enqueue producer ~queue:"/q/blk" "late")));
      let t0 = Des.Proc.now () in
      (match Recipes.dequeue consumer ~queue:"/q/blk" () with
       | Some (_, "late") -> ()
       | _ -> Alcotest.fail "blocking dequeue");
      check bool_c "waited for item" true (Des.Proc.now () -. t0 >= 1.5);
      check bool_c "dequeue timeout" true
        (Recipes.dequeue consumer ~queue:"/q/blk" ~timeout:1. () = None);
      Client.close consumer;
      Client.close producer)

let test_queue_concurrent_consumers () =
  with_ensemble ~horizon:200. (fun _sim ens ->
      let producer = Ensemble.connect ens ~name:"producer" () in
      let total = 12 in
      for i = 1 to total do
        ignore (Recipes.enqueue producer ~queue:"/q/mc" (Printf.sprintf "job%d" i))
      done;
      let taken = ref [] in
      let consumers =
        List.init 3 (fun k ->
            let c = Ensemble.connect ens ~name:(Printf.sprintf "cons%d" k) () in
            Des.Proc.spawn
              ~name:(Printf.sprintf "cons%d" k)
              (Ensemble.sim ens)
              (fun () ->
                let rec go () =
                  match Recipes.dequeue c ~queue:"/q/mc" ~timeout:3. () with
                  | Some (_, v) ->
                    taken := v :: !taken;
                    go ()
                  | None -> Client.close c
                in
                go ()))
      in
      List.iter (fun p -> ignore (Des.Proc.await p)) consumers;
      check int_c "each job taken exactly once" total
        (List.length (List.sort_uniq compare !taken));
      check int_c "no duplicates" total (List.length !taken);
      Client.close producer)

let test_election_recipe () =
  with_ensemble ~horizon:120. (fun _sim ens ->
      let a = Ensemble.connect ens ~session_timeout:3. ~name:"ctrl-a" () in
      let b = Ensemble.connect ens ~session_timeout:3. ~name:"ctrl-b" () in
      let ma = Recipes.join_election a ~election:"/elect" ~payload:"A" in
      let mb = Recipes.join_election b ~election:"/elect" ~payload:"B" in
      check bool_c "a is leader" true (Recipes.is_leader a ~election:"/elect" ~member:ma);
      check bool_c "b is not leader" false (Recipes.is_leader b ~election:"/elect" ~member:mb);
      check (Alcotest.option string_c) "payload" (Some "A")
        (Recipes.leader_payload b ~election:"/elect");
      (* A dies; B should take over once the session expires. *)
      let t0 = Des.Proc.now () in
      Client.close a;
      Recipes.await_leadership b ~election:"/elect" ~member:mb;
      let elapsed = Des.Proc.now () -. t0 in
      check bool_c "took over after session expiry" true (elapsed >= 2.5);
      check bool_c "took over promptly" true (elapsed < 10.);
      Client.close b)


(* ------------------------------------------------------------------ *)
(* Model-based property: Store vs a naive map model (no sessions). *)

type store_op =
  | S_create of string * string * bool (* key, value, sequential *)
  | S_write of string * string * int option
  | S_delete of string * int option

let store_op_gen =
  let open QCheck.Gen in
  let key_gen = oneofl [ "/q/a"; "/q/b"; "/r/c"; "/r/d"; "/q/item-" ] in
  let value_gen = oneofl [ "x"; "y"; "z" ] in
  let version_gen = oneof [ return None; map (fun v -> Some v) (int_range 1 3) ] in
  frequency
    [
      3, map3 (fun k v s -> S_create (k, v, s)) key_gen value_gen bool;
      3, map3 (fun k v ver -> S_write (k, v, ver)) key_gen value_gen version_gen;
      2, map2 (fun k ver -> S_delete (k, ver)) key_gen version_gen;
    ]

let store_ops_arbitrary =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | S_create (k, v, s) ->
               Printf.sprintf "create %s=%s seq=%b" k v s
             | S_write (k, v, ver) ->
               Printf.sprintf "write %s=%s v=%s" k v
                 (match ver with Some n -> string_of_int n | None -> "-")
             | S_delete (k, ver) ->
               Printf.sprintf "delete %s v=%s" k
                 (match ver with Some n -> string_of_int n | None -> "-"))
           ops))
    QCheck.Gen.(list_size (int_bound 40) store_op_gen)

let store_model_prop =
  QCheck.Test.make ~name:"store agrees with reference map" ~count:300
    store_ops_arbitrary (fun ops ->
      let store = Store.create () in
      let req = ref 0 in
      (* model: key -> (value, version) *)
      let model = Hashtbl.create 16 in
      let seq = ref 0 in
      List.for_all
        (fun op ->
          incr req;
          match op with
          | S_create (key, value, sequential) ->
            let result, _ =
              Store.apply store
                (Types.Create
                   { session = 1; req = !req; key; value;
                     ephemeral = false; sequential })
            in
            (match result with
             | Types.Created final ->
               let expected =
                 if sequential then begin
                   incr seq;
                   (* The suffix must make the key fresh and ordered. *)
                   not (Hashtbl.mem model final)
                   && String.length final > String.length key
                 end
                 else not (Hashtbl.mem model key)
               in
               Hashtbl.replace model final (value, 1);
               expected
             | Types.Op_failed Types.Key_exists ->
               (not sequential) && Hashtbl.mem model key
             | _ -> false)
          | S_write (key, value, expect_version) ->
            let result, _ =
              Store.apply store
                (Types.Write { session = 1; req = !req; key; value; expect_version })
            in
            (match result, Hashtbl.find_opt model key, expect_version with
             | Types.Written v, Some (_, mv), None ->
               Hashtbl.replace model key (value, mv + 1);
               v = mv + 1
             | Types.Written 1, None, None ->
               Hashtbl.replace model key (value, 1);
               true
             | Types.Written v, Some (_, mv), Some expected ->
               if mv = expected then begin
                 Hashtbl.replace model key (value, mv + 1);
                 v = mv + 1
               end
               else false
             | Types.Op_failed Types.Bad_version, Some (_, mv), Some expected ->
               mv <> expected
             | Types.Op_failed Types.Key_missing, None, Some _ -> true
             | _, _, _ -> false)
          | S_delete (key, expect_version) ->
            let result, _ =
              Store.apply store
                (Types.Delete { session = 1; req = !req; key; expect_version })
            in
            (match result, Hashtbl.find_opt model key, expect_version with
             | Types.Deleted_ok, Some (_, mv), Some expected ->
               if mv = expected then begin
                 Hashtbl.remove model key;
                 true
               end
               else false
             | Types.Deleted_ok, Some _, None ->
               Hashtbl.remove model key;
               true
             | Types.Op_failed Types.Bad_version, Some (_, mv), Some expected ->
               mv <> expected
             | Types.Op_failed Types.Key_missing, None, _ -> true
             | _, _, _ -> false))
        ops
      && Store.size store = Hashtbl.length model)

(* ------------------------------------------------------------------ *)
(* Chaos property: random single-replica crashes and restarts never lose
   an acknowledged write (a quorum stays up throughout). *)

let test_chaos_single_crashes () =
  List.iter
    (fun seed ->
      with_ensemble ~horizon:400. ~seed (fun sim ens ->
          let client = Ensemble.connect ens ~name:"chaos-writer" () in
          let acked = ref [] in
          let writer =
            Des.Proc.spawn ~name:"writer" sim (fun () ->
                for i = 1 to 40 do
                  match
                    Client.create client
                      ~key:(Printf.sprintf "/chaos/k%03d" i)
                      ~value:(string_of_int i) ()
                  with
                  | Ok key ->
                    acked := key :: !acked;
                    Des.Proc.sleep 0.3
                  | Error _ -> Des.Proc.sleep 0.3
                done)
          in
          ignore
            (Des.Proc.spawn ~name:"chaos" sim (fun () ->
                 let rng = Random.State.make [| seed * 7 |] in
                 for _ = 1 to 4 do
                   Des.Proc.sleep (1. +. Random.State.float rng 2.);
                   let victim = Random.State.int rng 3 in
                   Ensemble.crash_replica ens victim;
                   Des.Proc.sleep (1. +. Random.State.float rng 2.);
                   Ensemble.restart_replica ens victim
                 done));
          (match Des.Proc.await writer with
           | Ok () -> ()
           | Error e -> raise e);
          (* Let the cluster settle, then every acked key must be there. *)
          Des.Proc.sleep 5.;
          List.iter
            (fun key ->
              match Client.get client key with
              | Some _ -> ()
              | None -> Alcotest.failf "acked key %s lost (seed %d)" key seed)
            !acked;
          check bool_c "most writes acked" true (List.length !acked >= 35);
          Client.close client))
    [ 101; 202; 303 ]


(* ------------------------------------------------------------------ *)
(* Partitions: divergent logs must converge, acked writes must survive *)

let test_partitioned_leader_steps_down () =
  with_ensemble ~horizon:200. (fun _sim ens ->
      let c = Ensemble.connect ens ~name:"part-writer" () in
      ignore (ok_create "before" (Client.create c ~key:"/p/before" ~value:"1" ()));
      let old_leader = Ensemble.await_leader ens in
      let others = List.filter (fun i -> i <> old_leader) [ 0; 1; 2 ] in
      (* Cut the leader off.  The majority side elects a new leader; the
         old one cannot commit anything. *)
      Des.Net.partition (Ensemble.net ens) [ old_leader ] others;
      Des.Proc.sleep 3.;
      let minority = Ensemble.replica ens old_leader in
      let new_leader =
        List.find
          (fun i -> Replica.is_leader (Ensemble.replica ens i))
          others
      in
      check bool_c "majority elected a new leader" true
        (new_leader <> old_leader);
      check bool_c "new term is higher" true
        (Replica.term (Ensemble.replica ens new_leader) > 0);
      (* Writes continue on the majority side. *)
      ignore (ok_create "during" (Client.create c ~key:"/p/during" ~value:"2" ()));
      (* Heal: the deposed leader must step down and adopt the new log. *)
      Des.Net.heal (Ensemble.net ens);
      Des.Proc.sleep 3.;
      check bool_c "old leader stepped down" false (Replica.is_leader minority);
      check bool_c "old leader caught up" true
        (Coord.Store.exists (Replica.store minority) "/p/during");
      ignore (ok_create "after" (Client.create c ~key:"/p/after" ~value:"3" ()));
      List.iter
        (fun key ->
          check bool_c (key ^ " present") true
            (Option.is_some (Client.get c key)))
        [ "/p/before"; "/p/during"; "/p/after" ];
      Client.close c)

let test_divergent_log_truncated () =
  with_ensemble ~horizon:300. (fun sim ens ->
      let c = Ensemble.connect ens ~name:"div-writer" () in
      ignore (ok_create "w0" (Client.create c ~key:"/d/base" ~value:"0" ()));
      let old_leader = Ensemble.await_leader ens in
      let others = List.filter (fun i -> i <> old_leader) [ 0; 1; 2 ] in
      Des.Net.partition (Ensemble.net ens) [ old_leader ] others;
      (* A writer talking only to the minority leader: its submissions can
         be appended to the stale leader's log but never commit. *)
      let doomed = Ensemble.connect ens ~name:"doomed" () in
      let doomed_acked = ref false in
      ignore
        (Des.Proc.spawn ~name:"doomed-writer" sim (fun () ->
             (* Force the doomed client onto the minority. *)
             Des.Net.partition (Ensemble.net ens)
               [ Coord.Client.session_id doomed ]
               others;
             match Client.create doomed ~key:"/d/ghost" ~value:"x" () with
             | Ok _ -> doomed_acked := true
             | Error _ -> ()));
      Des.Proc.sleep 4.;
      (* The client gives up before the partition heals: its command sits
         uncommitted in the stale leader's log.  (If it kept retrying, the
         retry machinery would legitimately deliver it after the heal.) *)
      Client.close doomed;
      check bool_c "ghost never acked" false !doomed_acked;
      (* Meanwhile the majority commits real writes. *)
      for i = 1 to 5 do
        ignore
          (ok_create "majority write"
             (Client.create c ~key:(Printf.sprintf "/d/real%d" i) ~value:"y" ()))
      done;
      Des.Net.heal (Ensemble.net ens);
      Des.Proc.sleep 5.;
      (* The unacked write must not exist anywhere after the stale
         leader's divergent suffix is truncated. *)
      List.iter
        (fun i ->
          check bool_c
            (Printf.sprintf "replica %d has no ghost" i)
            false
            (Coord.Store.exists (Replica.store (Ensemble.replica ens i)) "/d/ghost"))
        [ 0; 1; 2 ];
      List.iter
        (fun i ->
          check int_c
            (Printf.sprintf "replica %d converged" i)
            6
            (List.length (Coord.Store.children (Replica.store (Ensemble.replica ens i)) "/d")))
        [ 0; 1; 2 ];
      Client.close c)

let test_graceful_disconnect_immediate () =
  with_ensemble ~horizon:60. (fun _sim ens ->
      let c = Ensemble.connect ens ~session_timeout:30. ~name:"polite" () in
      let observer = Ensemble.connect ens ~name:"observer" () in
      ignore
        (ok_create "create"
           (Client.create c ~ephemeral:true ~key:"/presence/polite" ~value:"hi" ()));
      check bool_c "present" true
        (Option.is_some (Client.get observer "/presence/polite"));
      let t0 = Des.Proc.now () in
      Client.disconnect c;
      (* Immediately gone — no 30 s session timeout. *)
      Des.Proc.sleep 0.5;
      check bool_c "ephemeral cleaned immediately" false
        (Option.is_some (Client.get observer "/presence/polite"));
      check bool_c "well before the session timeout" true
        (Des.Proc.now () -. t0 < 2.);
      Client.close observer)

(* ------------------------------------------------------------------ *)
(* Log compaction and snapshot installation *)

let compaction_config =
  { Types.default_config with Types.snapshot_threshold = 25 }

let with_compacting_ensemble ?(horizon = 200.) scenario =
  let sim = Des.Sim.create ~seed:9 () in
  let ens = Ensemble.create ~replicas:3 ~config:compaction_config sim in
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"scenario" sim (fun () ->
         scenario ens;
         finished := true));
  ignore (Des.Sim.run ~until:horizon sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     Alcotest.failf "process %s crashed: %s" who (Printexc.to_string exn));
  if not !finished then Alcotest.fail "scenario did not finish"

let write_n ?(from = 1) client n =
  for i = from to from + n - 1 do
    ignore
      (ok_create "write"
         (Client.create client ~key:(Printf.sprintf "/cp/k%04d" i) ~value:"v" ()))
  done

let test_compaction_bounds_log () =
  with_compacting_ensemble (fun ens ->
      let c = Ensemble.connect ens ~name:"compact-writer" () in
      write_n c 120;
      Des.Proc.sleep 2.;
      List.iter
        (fun i ->
          let r = Ensemble.replica ens i in
          check bool_c
            (Printf.sprintf "replica %d log bounded" i)
            true
            (Replica.log_length r <= 60);
          check bool_c (Printf.sprintf "replica %d snapshotted" i) true
            (Replica.has_snapshot r);
          check bool_c (Printf.sprintf "replica %d base advanced" i) true
            (Replica.log_base r > 0);
          check int_c
            (Printf.sprintf "replica %d has all keys" i)
            120
            (List.length (Store.children (Replica.store r) "/cp")))
        [ 0; 1; 2 ];
      Client.close c)

let test_snapshot_install_catches_up_follower () =
  with_compacting_ensemble (fun ens ->
      let c = Ensemble.connect ens ~name:"writer" () in
      write_n c 10;
      let leader = Ensemble.await_leader ens in
      let victim = (leader + 1) mod 3 in
      Ensemble.crash_replica ens victim;
      (* Enough writes that the victim's gap is compacted away on the
         survivors: catching up requires a snapshot transfer. *)
      write_n ~from:11 c 100;
      Des.Proc.sleep 1.;
      check bool_c "gap compacted on leader" true
        (Replica.log_base (Ensemble.replica ens leader) > 10);
      Ensemble.restart_replica ens victim;
      Des.Proc.sleep 5.;
      let r = Ensemble.replica ens victim in
      check int_c "victim caught up via snapshot" 110
        (List.length (Store.children (Replica.store r) "/cp"));
      check bool_c "victim adopted a snapshot" true (Replica.has_snapshot r);
      (* And the cluster keeps serving. *)
      write_n ~from:111 c 5;
      check int_c "post-recovery writes" 115
        (List.length (Client.get_children c "/cp"));
      Client.close c)

let test_restart_from_snapshot () =
  with_compacting_ensemble (fun ens ->
      let c = Ensemble.connect ens ~name:"writer" () in
      write_n c 80;
      Des.Proc.sleep 1.;
      (* Restart a follower in place: it must rebuild from its own snapshot
         plus the retained log tail, not from index zero. *)
      let leader = Ensemble.await_leader ens in
      let victim = (leader + 2) mod 3 in
      check bool_c "victim snapshotted before crash" true
        (Replica.has_snapshot (Ensemble.replica ens victim));
      Ensemble.crash_replica ens victim;
      Ensemble.restart_replica ens victim;
      Des.Proc.sleep 3.;
      check int_c "state rebuilt" 80
        (List.length
           (Store.children (Replica.store (Ensemble.replica ens victim)) "/cp"));
      Client.close c)

(* The openraft rejoin-bug family: a lagging follower whose gap was
   compacted away must rejoin via snapshot install — including when it
   crashes again mid-install and comes back to an even bigger gap. *)
let test_rejoin_after_compaction_repeated_crashes () =
  with_compacting_ensemble ~horizon:300. (fun ens ->
      let c = Ensemble.connect ens ~name:"writer" () in
      write_n c 10;
      let leader = Ensemble.await_leader ens in
      let victim = (leader + 1) mod 3 in
      Ensemble.crash_replica ens victim;
      (* Push the survivors far past the victim's log so its entire gap
         lives only in snapshots. *)
      write_n ~from:11 c 60;
      Des.Proc.sleep 1.;
      check bool_c "gap compacted away on leader" true
        (Replica.log_base (Ensemble.replica ens leader) > 10);
      (* First rejoin attempt dies almost immediately — before the
         snapshot install completes. *)
      Ensemble.restart_replica ens victim;
      Des.Proc.sleep 0.05;
      Ensemble.crash_replica ens victim;
      (* The cluster keeps committing while the victim is down again, so
         the second rejoin faces a fresh gap and a newer snapshot. *)
      write_n ~from:71 c 60;
      Des.Proc.sleep 1.;
      Ensemble.restart_replica ens victim;
      Des.Proc.sleep 5.;
      let r = Ensemble.replica ens victim in
      check int_c "victim converged after repeated crashes" 130
        (List.length (Store.children (Replica.store r) "/cp"));
      check bool_c "victim adopted a snapshot" true (Replica.has_snapshot r);
      check bool_c "victim's log base advanced" true (Replica.log_base r > 10);
      (* The rejoined follower really participates: with the other
         follower down, it is needed for quorum. *)
      let leader2 = Ensemble.await_leader ens in
      let other =
        List.find (fun i -> i <> leader2 && i <> victim) [ 0; 1; 2 ]
      in
      Ensemble.crash_replica ens other;
      write_n ~from:131 c 5;
      check int_c "quorum held by the rejoined follower" 135
        (List.length (Client.get_children c "/cp"));
      Ensemble.restart_replica ens other;
      Des.Proc.sleep 2.;
      Client.close c)

let store_snapshot_roundtrip_prop =
  QCheck.Test.make ~name:"store snapshot codec roundtrip" ~count:100
    store_ops_arbitrary (fun ops ->
      let store = Store.create () in
      let req = ref 0 in
      List.iter
        (fun op ->
          incr req;
          ignore
            (match op with
             | S_create (key, value, sequential) ->
               Store.apply store
                 (Types.Create
                    { session = 1; req = !req; key; value;
                      ephemeral = false; sequential })
             | S_write (key, value, expect_version) ->
               Store.apply store
                 (Types.Write { session = 1; req = !req; key; value; expect_version })
             | S_delete (key, expect_version) ->
               Store.apply store
                 (Types.Delete { session = 1; req = !req; key; expect_version })))
        ops;
      match Result.bind (Data.Sexp.of_string (Data.Sexp.to_string (Store.to_sexp store))) Store.of_sexp with
      | Error _ -> false
      | Ok restored ->
        Store.size restored = Store.size store
        (* Replays after the snapshot behave identically: dedup survives. *)
        && Store.apply restored
             (Types.Create
                { session = 1; req = !req; key = "/any"; value = "v";
                  ephemeral = false; sequential = false })
           = Store.apply store
               (Types.Create
                  { session = 1; req = !req; key = "/any"; value = "v";
                    ephemeral = false; sequential = false }))

let suite =
  [
    ("store: create/get", `Quick, test_store_create_get);
    ("store: sequential keys", `Quick, test_store_sequential);
    ("store: versions and CAS", `Quick, test_store_versions);
    ("store: upsert", `Quick, test_store_upsert);
    ("store: direct children only", `Quick, test_store_children_direct_only);
    ("store: ephemeral expiry", `Quick, test_store_ephemeral_expiry);
    ("store: request dedup", `Quick, test_store_dedup);
    ("store: parent", `Quick, test_store_parent);
    ("ensemble: single leader elected", `Quick, test_single_leader_elected);
    ("client: kv roundtrip", `Quick, test_client_kv_roundtrip);
    ("ensemble: replicas converge", `Quick, test_replicas_converge);
    ("watch: key", `Quick, test_watch_key_fires);
    ("watch: children", `Quick, test_watch_children_fires);
    ("session: ephemeral expires on close", `Quick, test_ephemeral_expires_on_close);
    ("session: graceful disconnect is immediate", `Quick, test_graceful_disconnect_immediate);
    ("failover: no committed writes lost", `Quick, test_leader_crash_no_committed_loss);
    ("failover: crashed replica rejoins", `Quick, test_crashed_replica_rejoins);
    ("failover: majority loss blocks, recovers", `Quick, test_majority_loss_blocks_then_recovers);
    ("recipe: queue fifo", `Quick, test_queue_fifo);
    ("recipe: queue blocking dequeue", `Quick, test_queue_blocking_dequeue);
    ("recipe: queue concurrent consumers", `Quick, test_queue_concurrent_consumers);
    ("recipe: leader election", `Quick, test_election_recipe);
    QCheck_alcotest.to_alcotest store_model_prop;
    ("chaos: crashes lose no acked writes", `Slow, test_chaos_single_crashes);
    ("partition: minority leader steps down", `Quick, test_partitioned_leader_steps_down);
    ("partition: divergent log truncated", `Quick, test_divergent_log_truncated);
    ("compaction: log stays bounded", `Quick, test_compaction_bounds_log);
    ("compaction: snapshot install catch-up", `Quick, test_snapshot_install_catches_up_follower);
    ("compaction: restart from snapshot", `Quick, test_restart_from_snapshot);
    ( "compaction: rejoin after repeated crashes mid-install",
      `Quick,
      test_rejoin_after_compaction_repeated_crashes );
    QCheck_alcotest.to_alcotest store_snapshot_roundtrip_prop;
  ]

let () = Alcotest.run "coord" [ ("coord", suite) ]
