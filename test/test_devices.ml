(* Tests for the simulated physical devices. *)

open Devices

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string
let v_str s = Data.Value.Str s
let v_int i = Data.Value.Int i

let vm_state_c =
  Alcotest.testable
    (fun fmt s ->
      Format.pp_print_string fmt
        (match s with `Running -> "running" | `Stopped -> "stopped"))
    ( = )

let ok what = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" what (Device.error_to_string e)

let err what = function
  | Ok () -> Alcotest.failf "%s: expected an error" what
  | Error _ -> ()

let pass what = function
  | Fault.Pass -> ()
  | Fault.Fail (_, msg) -> Alcotest.failf "%s: injected %s" what msg
  | Fault.Hang -> Alcotest.failf "%s: injected hang" what

let fail_verdict what = function
  | Fault.Pass -> Alcotest.failf "%s: expected an injected fault" what
  | Fault.Fail _ -> ()
  | Fault.Hang -> Alcotest.failf "%s: expected a failure, got a hang" what

let set_probability f p =
  match Fault.set_probability f p with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "set_probability: %s" msg

let mk_compute () =
  Compute.create ~root:(Data.Path.v "/vmRoot/h1") ~mem_mb:8192
    ~hypervisor:"xen" ()

let mk_storage () =
  let s = Storage.create ~root:(Data.Path.v "/storageRoot/s1") ~capacity_mb:100_000 () in
  Storage.add_template s ~name:"tmpl" ~size_mb:10_000;
  s

let invoke d = Device.invoke d

(* ------------------------------------------------------------------ *)
(* Compute host *)

let spawn_vm_actions host name =
  let d = Compute.device host in
  ok "import" (invoke d ~action:Schema.act_import_image ~args:[ v_str (name ^ ".img") ]);
  ok "create"
    (invoke d ~action:Schema.act_create_vm
       ~args:[ v_str name; v_str (name ^ ".img"); v_int 1024 ]);
  ok "start" (invoke d ~action:Schema.act_start_vm ~args:[ v_str name ])

let test_compute_vm_lifecycle () =
  let host = mk_compute () in
  let d = Compute.device host in
  spawn_vm_actions host "vm1";
  check (Alcotest.option vm_state_c) "running" (Some `Running)
    (Compute.vm_state host "vm1");
  check int_c "used memory" 1024 (Compute.used_mem_mb host);
  err "start running vm" (invoke d ~action:Schema.act_start_vm ~args:[ v_str "vm1" ]);
  err "remove running vm" (invoke d ~action:Schema.act_remove_vm ~args:[ v_str "vm1" ]);
  ok "stop" (invoke d ~action:Schema.act_stop_vm ~args:[ v_str "vm1" ]);
  ok "remove" (invoke d ~action:Schema.act_remove_vm ~args:[ v_str "vm1" ]);
  check (Alcotest.list string_c) "no vms" [] (Compute.vm_names host)

let test_compute_preconditions () =
  let host = mk_compute () in
  let d = Compute.device host in
  err "create without image"
    (invoke d ~action:Schema.act_create_vm
       ~args:[ v_str "vm1"; v_str "ghost.img"; v_int 512 ]);
  ok "import" (invoke d ~action:Schema.act_import_image ~args:[ v_str "a.img" ]);
  err "double import" (invoke d ~action:Schema.act_import_image ~args:[ v_str "a.img" ]);
  ok "create"
    (invoke d ~action:Schema.act_create_vm ~args:[ v_str "vm1"; v_str "a.img"; v_int 512 ]);
  err "unimport while used"
    (invoke d ~action:Schema.act_unimport_image ~args:[ v_str "a.img" ]);
  err "duplicate vm"
    (invoke d ~action:Schema.act_create_vm ~args:[ v_str "vm1"; v_str "a.img"; v_int 512 ]);
  err "bad args" (invoke d ~action:Schema.act_create_vm ~args:[ v_int 3 ]);
  err "unknown action" (invoke d ~action:"fooBar" ~args:[])

let test_compute_export () =
  let host = mk_compute () in
  spawn_vm_actions host "vm1";
  let node = Device.export (Compute.device host) in
  check string_c "kind" Schema.vm_host_kind node.Data.Tree.kind;
  (match Data.Tree.Smap.find_opt "vm1" node.Data.Tree.children with
   | Some vm_node ->
     (match Data.Tree.Smap.find_opt Schema.attr_state vm_node.Data.Tree.attrs with
      | Some (Data.Value.Str s) -> check string_c "state" Schema.state_running s
      | _ -> Alcotest.fail "state attr")
   | None -> Alcotest.fail "vm1 exported")

let test_compute_power_cycle () =
  let host = mk_compute () in
  spawn_vm_actions host "vm1";
  spawn_vm_actions host "vm2";
  Compute.power_cycle host;
  check (Alcotest.option vm_state_c) "vm1 stopped" (Some `Stopped)
    (Compute.vm_state host "vm1");
  check (Alcotest.option vm_state_c) "vm2 stopped" (Some `Stopped)
    (Compute.vm_state host "vm2")

let test_device_offline () =
  let host = mk_compute () in
  let d = Compute.device host in
  Device.set_online d false;
  err "offline fails" (invoke d ~action:Schema.act_import_image ~args:[ v_str "x" ]);
  Device.set_online d true;
  ok "back online" (invoke d ~action:Schema.act_import_image ~args:[ v_str "x" ]);
  check int_c "failure counted" 1 (Device.failures d)

let test_fault_injection () =
  let host = mk_compute () in
  let d = Compute.device host in
  Fault.fail_next (Device.faults d) ~action:Schema.act_start_vm;
  ok "import" (invoke d ~action:Schema.act_import_image ~args:[ v_str "a.img" ]);
  ok "create"
    (invoke d ~action:Schema.act_create_vm ~args:[ v_str "vm"; v_str "a.img"; v_int 256 ]);
  err "injected failure" (invoke d ~action:Schema.act_start_vm ~args:[ v_str "vm" ]);
  ok "second try succeeds" (invoke d ~action:Schema.act_start_vm ~args:[ v_str "vm" ]);
  check int_c "one injection" 1 (Fault.injected (Device.faults d))

let test_fault_always_and_clear () =
  let f = Fault.create () in
  let rng = Random.State.make [| 1 |] in
  Fault.fail_always f ~action:"op";
  fail_verdict "1st" (Fault.check f ~rng ~action:"op");
  fail_verdict "2nd" (Fault.check f ~rng ~action:"op");
  pass "other action fine" (Fault.check f ~rng ~action:"other");
  Fault.clear f ~action:"op";
  pass "cleared" (Fault.check f ~rng ~action:"op")

let test_fault_probability () =
  let f = Fault.create () in
  let rng = Random.State.make [| 5 |] in
  set_probability f 1.0;
  fail_verdict "p=1 always fails" (Fault.check f ~rng ~action:"x");
  set_probability f 0.;
  pass "p=0 never fails" (Fault.check f ~rng ~action:"x")

let test_fault_probability_clamp () =
  let f = Fault.create () in
  set_probability f 3.7;
  check (Alcotest.float 1e-9) "clamped high" 1.0 (Fault.probability f);
  set_probability f (-0.5);
  check (Alcotest.float 1e-9) "clamped low" 0.0 (Fault.probability f);
  (match Fault.set_probability f Float.nan with
   | Ok () -> Alcotest.fail "NaN probability accepted"
   | Error _ -> ());
  check (Alcotest.float 1e-9) "NaN left probability unchanged" 0.0
    (Fault.probability f)

let test_fault_severity () =
  let f = Fault.create () in
  let rng = Random.State.make [| 2 |] in
  Fault.fail_next f ~severity:Fault.Transient ~action:"op";
  (match Fault.check f ~rng ~action:"op" with
   | Fault.Fail (Fault.Transient, _) -> ()
   | _ -> Alcotest.fail "expected a transient injected fault");
  Fault.fail_next f ~action:"op";
  (match Fault.check f ~rng ~action:"op" with
   | Fault.Fail (Fault.Permanent, _) -> ()
   | _ -> Alcotest.fail "planned faults default to permanent");
  (* Background (probability-driven) faults are always transient. *)
  set_probability f 1.0;
  (match Fault.check f ~rng ~action:"op" with
   | Fault.Fail (Fault.Transient, _) -> ()
   | _ -> Alcotest.fail "background faults must be transient")

let test_fault_hang_next () =
  let f = Fault.create () in
  let rng = Random.State.make [| 3 |] in
  Fault.hang_next f ~action:"op";
  (match Fault.check f ~rng ~action:"op" with
   | Fault.Hang -> ()
   | _ -> Alcotest.fail "expected a hang verdict");
  pass "one-shot" (Fault.check f ~rng ~action:"op");
  check int_c "hang counted" 1 (Fault.hangs f)

(* A hang plan makes [Device.invoke] suspend forever: the invoking
   process never resumes, and the simulation drains without it. *)
let test_device_hang_in_sim () =
  let sim = Des.Sim.create () in
  let host =
    Compute.create ~timing:`Process
      ~latency:(fun _ -> 1.0)
      ~rng:(Des.Sim.rng sim)
      ~root:(Data.Path.v "/vmRoot/h1") ~mem_mb:1024 ~hypervisor:"xen" ()
  in
  let d = Compute.device host in
  Fault.hang_next (Device.faults d) ~action:Schema.act_import_image;
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"hung" sim (fun () ->
         ignore (invoke d ~action:Schema.act_import_image ~args:[ v_str "a" ]);
         finished := true));
  ignore (Des.Sim.run sim);
  check bool_c "invocation never returned" false !finished;
  check int_c "hang counted" 1 (Fault.hangs (Device.faults d));
  (* The plan was consumed: a retry would pass. *)
  let rng = Random.State.make [| 4 |] in
  pass "plan consumed" (Fault.check (Device.faults d) ~rng ~action:Schema.act_import_image)

let test_device_latency_in_sim () =
  let sim = Des.Sim.create () in
  let host =
    Compute.create ~timing:`Process
      ~latency:(fun _ -> 1.5)
      ~rng:(Des.Sim.rng sim)
      ~root:(Data.Path.v "/vmRoot/h1") ~mem_mb:1024 ~hypervisor:"xen" ()
  in
  let elapsed = ref 0. in
  ignore
    (Des.Proc.spawn sim (fun () ->
         let t0 = Des.Proc.now () in
         ok "import"
           (invoke (Compute.device host) ~action:Schema.act_import_image
              ~args:[ v_str "a.img" ]);
         elapsed := Des.Proc.now () -. t0));
  ignore (Des.Sim.run sim);
  check (Alcotest.float 1e-9) "took latency" 1.5 !elapsed

(* ------------------------------------------------------------------ *)
(* Storage host *)

let test_storage_clone_export () =
  let s = mk_storage () in
  let d = Storage.device s in
  ok "clone"
    (invoke d ~action:Schema.act_clone_image ~args:[ v_str "tmpl"; v_str "vm1.img" ]);
  check bool_c "clone exists" true (List.mem "vm1.img" (Storage.image_names s));
  check bool_c "clone not template" false (Storage.is_template s "vm1.img");
  ok "export" (invoke d ~action:Schema.act_export_image ~args:[ v_str "vm1.img" ]);
  check bool_c "exported" true (Storage.is_exported s "vm1.img");
  err "remove while exported"
    (invoke d ~action:Schema.act_remove_image ~args:[ v_str "vm1.img" ]);
  ok "unexport" (invoke d ~action:Schema.act_unexport_image ~args:[ v_str "vm1.img" ]);
  ok "remove" (invoke d ~action:Schema.act_remove_image ~args:[ v_str "vm1.img" ]);
  check bool_c "gone" false (List.mem "vm1.img" (Storage.image_names s))

let test_storage_preconditions () =
  let s = mk_storage () in
  let d = Storage.device s in
  err "clone from missing template"
    (invoke d ~action:Schema.act_clone_image ~args:[ v_str "ghost"; v_str "x" ]);
  ok "clone" (invoke d ~action:Schema.act_clone_image ~args:[ v_str "tmpl"; v_str "x" ]);
  err "clone from non-template"
    (invoke d ~action:Schema.act_clone_image ~args:[ v_str "x"; v_str "y" ]);
  err "remove template" (invoke d ~action:Schema.act_remove_image ~args:[ v_str "tmpl" ]);
  err "double export after none"
    (invoke d ~action:Schema.act_unexport_image ~args:[ v_str "x" ])

let test_storage_capacity () =
  let s = Storage.create ~root:(Data.Path.v "/storageRoot/tiny") ~capacity_mb:25_000 () in
  Storage.add_template s ~name:"tmpl" ~size_mb:10_000;
  let d = Storage.device s in
  ok "first clone"
    (invoke d ~action:Schema.act_clone_image ~args:[ v_str "tmpl"; v_str "a" ]);
  err "out of space"
    (invoke d ~action:Schema.act_clone_image ~args:[ v_str "tmpl"; v_str "b" ]);
  check int_c "used" 20_000 (Storage.used_mb s)

(* ------------------------------------------------------------------ *)
(* Switch *)

let test_switch_vlans () =
  let sw = Network.create ~root:(Data.Path.v "/netRoot/sw1") ~max_vlans:2 () in
  let d = Network.device sw in
  ok "create vlan"
    (invoke d ~action:Schema.act_create_vlan ~args:[ v_int 100; v_str "tenantA" ]);
  err "duplicate vlan"
    (invoke d ~action:Schema.act_create_vlan ~args:[ v_int 100; v_str "again" ]);
  ok "add port" (invoke d ~action:Schema.act_add_port ~args:[ v_int 100; v_str "vm1.eth0" ]);
  err "remove vlan with ports"
    (invoke d ~action:Schema.act_remove_vlan ~args:[ v_int 100 ]);
  ok "remove port"
    (invoke d ~action:Schema.act_remove_port ~args:[ v_int 100; v_str "vm1.eth0" ]);
  ok "remove vlan" (invoke d ~action:Schema.act_remove_vlan ~args:[ v_int 100 ])

let test_switch_capacity () =
  let sw = Network.create ~root:(Data.Path.v "/netRoot/sw1") ~max_vlans:1 () in
  let d = Network.device sw in
  ok "first" (invoke d ~action:Schema.act_create_vlan ~args:[ v_int 1; v_str "a" ]);
  err "at capacity" (invoke d ~action:Schema.act_create_vlan ~args:[ v_int 2; v_str "b" ])

let test_switch_export () =
  let sw = Network.create ~root:(Data.Path.v "/netRoot/sw1") ~max_vlans:8 () in
  let d = Network.device sw in
  ok "create" (invoke d ~action:Schema.act_create_vlan ~args:[ v_int 7; v_str "t" ]);
  ok "port" (invoke d ~action:Schema.act_add_port ~args:[ v_int 7; v_str "p1" ]);
  let node = Device.export d in
  match Data.Tree.Smap.find_opt "vlan0007" node.Data.Tree.children with
  | Some vlan ->
    (match Data.Tree.Smap.find_opt Schema.attr_ports vlan.Data.Tree.attrs with
     | Some (Data.Value.List [ Data.Value.Str "p1" ]) -> ()
     | _ -> Alcotest.fail "ports attr")
  | None -> Alcotest.fail "vlan exported"

let suite =
  [
    ("compute: vm lifecycle", `Quick, test_compute_vm_lifecycle);
    ("compute: preconditions", `Quick, test_compute_preconditions);
    ("compute: export", `Quick, test_compute_export);
    ("compute: power cycle", `Quick, test_compute_power_cycle);
    ("device: offline", `Quick, test_device_offline);
    ("device: fault injection", `Quick, test_fault_injection);
    ("fault: always and clear", `Quick, test_fault_always_and_clear);
    ("fault: probability", `Quick, test_fault_probability);
    ("fault: probability clamp and NaN", `Quick, test_fault_probability_clamp);
    ("fault: severity classification", `Quick, test_fault_severity);
    ("fault: hang_next", `Quick, test_fault_hang_next);
    ("device: hang in sim", `Quick, test_device_hang_in_sim);
    ("device: latency in sim", `Quick, test_device_latency_in_sim);
    ("storage: clone/export", `Quick, test_storage_clone_export);
    ("storage: preconditions", `Quick, test_storage_preconditions);
    ("storage: capacity", `Quick, test_storage_capacity);
    ("switch: vlans", `Quick, test_switch_vlans);
    ("switch: capacity", `Quick, test_switch_capacity);
    ("switch: export", `Quick, test_switch_export);
  ]

let () = Alcotest.run "devices" [ ("devices", suite) ]
