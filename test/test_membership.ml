(* Tests for dynamic coordination membership: add/remove through the
   replicated configuration, learner catch-up, quorum arithmetic over the
   effective member set, the session-timeout clamp, and the
   rejoin-within-one-term window that replication session ids close. *)

open Coord

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

(* Run [scenario] as a process against a fresh ensemble; the simulation is
   bounded by [horizon] because replicas and pingers run forever. *)
let with_ensemble ?(replicas = 3) ?(horizon = 240.) ?(seed = 7)
    ?(config = Types.default_config) scenario =
  let sim = Des.Sim.create ~seed () in
  let ens = Ensemble.create ~replicas ~config sim in
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"scenario" sim (fun () ->
         scenario sim ens;
         finished := true));
  ignore (Des.Sim.run ~until:horizon sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     Alcotest.failf "process %s crashed: %s" who (Printexc.to_string exn));
  if not !finished then Alcotest.fail "scenario did not finish before horizon"

let ok_create what = function
  | Ok key -> key
  | Error e ->
    Alcotest.failf "%s: %s" what (Format.asprintf "%a" Types.pp_op_error e)

(* Poll [cond] every 0.1 simulated seconds for up to [for_] seconds. *)
let eventually ?(for_ = 30.) what cond =
  let deadline = Des.Proc.now () +. for_ in
  let rec wait () =
    if cond () then ()
    else if Des.Proc.now () >= deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Des.Proc.sleep 0.1;
      wait ()
    end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* Add / remove through the ensemble *)

let test_add_remove_replica () =
  with_ensemble (fun _sim ens ->
      ignore (Ensemble.await_leader ens);
      let c = Ensemble.connect ens ~name:"cli" () in
      ignore (ok_create "create" (Client.create c ~key:"/m/a" ~value:"1" ()));
      let id = Ensemble.add_replica ens () in
      check bool_c "new id outside the boot range" true (id >= 3);
      let members = Ensemble.members ens in
      check int_c "four members" 4 (List.length members);
      check bool_c "new id is a member" true (List.mem id members);
      (* The add blocked on catch-up, so the new replica already holds the
         data written before it existed. *)
      let store = Replica.store (Ensemble.replica ens id) in
      eventually "learner applied pre-join writes" (fun () ->
          match Store.get store "/m/a" with Some ("1", _) -> true | _ -> false);
      Ensemble.remove_replica ens 2;
      let members = Ensemble.members ens in
      check bool_c "removed id gone" true (not (List.mem 2 members));
      check int_c "three members again" 3 (List.length members);
      (* Writes still commit under the new configuration's quorum. *)
      ignore (ok_create "create after churn"
                (Client.create c ~key:"/m/b" ~value:"2" ()));
      let st = Ensemble.membership_stats ens in
      check bool_c "join counted" true (st.Types.joins >= 1);
      check bool_c "leave counted" true (st.Types.leaves >= 1);
      check bool_c "catch-up counted" true (st.Types.catchups >= 1))

(* The config state machine travels with snapshots: a replica added after
   compaction learns the membership from the snapshot, not the log. *)
let test_add_survives_leader_crash_of_old_member () =
  with_ensemble (fun _sim ens ->
      let leader = Ensemble.await_leader ens in
      let c = Ensemble.connect ens ~name:"cli" () in
      ignore (ok_create "seed write" (Client.create c ~key:"/k" ~value:"v" ()));
      let id = Ensemble.add_replica ens () in
      (* Four members now; crash the old leader — the three survivors
         (including the newcomer) must elect and keep serving. *)
      Ensemble.crash_replica ens leader;
      eventually ~for_:60. "post-crash leader among the new membership"
        (fun () ->
          match Ensemble.leader_id ens with
          | Some l -> l <> leader
          | None -> false);
      ignore (ok_create "write after fail-over"
                (Client.create c ~key:"/k2" ~value:"w" ()));
      check bool_c "newcomer still a member" true
        (List.mem id (Ensemble.members ens)))

(* ------------------------------------------------------------------ *)
(* Client leader retry follows the current membership *)

let test_client_follows_membership () =
  with_ensemble (fun _sim ens ->
      ignore (Ensemble.await_leader ens);
      let c = Ensemble.connect ens ~name:"cli" () in
      ignore (ok_create "before" (Client.create c ~key:"/f/a" ~value:"x" ()));
      (* Swap replica 1 for a spare-slot newcomer (a decommissioned server
         is crashed after removal, or its stale Not_leader hints would keep
         pointing clients at the old configuration), then crash the leader:
         the client's boot-time view [0;1;2] now names one live node at
         most, and only the membership refreshed from that node's
         Not_leader reply can reach a leader living outside the boot id
         range. *)
      let n1 = Ensemble.add_replica ens () in
      Ensemble.remove_replica ens 1;
      Ensemble.crash_replica ens 1;
      ignore (ok_create "mid" (Client.create c ~key:"/f/b" ~value:"y" ()));
      let leader =
        match Ensemble.leader_id ens with
        | Some l -> l
        | None -> Alcotest.fail "no leader after the swap"
      in
      Ensemble.crash_replica ens leader;
      eventually ~for_:60. "fail-over among the remaining members" (fun () ->
          match Ensemble.leader_id ens with
          | Some l -> l <> leader
          | None -> false);
      ignore (ok_create "after" (Client.create c ~key:"/f/c" ~value:"z" ()));
      check bool_c "newcomer can lead" true
        (List.mem n1 (Ensemble.members ens));
      check bool_c "all three writes visible" true
        (Client.get c "/f/a" <> None && Client.get c "/f/b" <> None
        && Client.get c "/f/c" <> None))

(* ------------------------------------------------------------------ *)
(* Session-timeout clamp (mirrors the Fault.set_probability fix) *)

let test_session_timeout_clamp () =
  with_ensemble (fun _sim ens ->
      let leader = Ensemble.await_leader ens in
      let observer = Ensemble.connect ens ~name:"observer" () in
      let victim = Ensemble.connect ens ~name:"victim" () in
      let sid = Client.session_id victim in
      (* Close the client object; we drive its session with raw requests so
         the pathological timeouts bypass any client-side sanitizing. *)
      Client.close victim;
      let net = Ensemble.net ens in
      let send ~req_id ~session_timeout request =
        Des.Net.send net ~src:sid ~dst:leader
          (Types.Client_req { req_id; session_timeout; request })
      in
      send ~req_id:1 ~session_timeout:Float.nan
        (Types.Submit
           (Types.Create
              {
                session = sid;
                req = 1;
                key = "/clamp/e";
                value = "x";
                ephemeral = true;
                sequential = false;
              }));
      eventually "ephemeral created" (fun () ->
          Client.get observer "/clamp/e" <> None);
      (* Ping with NaN and non-positive timeouts across several reaper
         ticks (the session checker runs every second).  Unclamped, a
         non-positive timeout expires the session at the next tick even
         though its client is pinging; NaN makes it immortal instead.
         Clamped, both fall back to the default and the session lives. *)
      for i = 0 to 5 do
        send ~req_id:(100 + i)
          ~session_timeout:(if i mod 2 = 0 then Float.nan else -1.0)
          Types.Ping;
        Des.Proc.sleep 1.2
      done;
      check bool_c "ephemeral survives pathological timeouts" true
        (Client.get observer "/clamp/e" <> None))

(* ------------------------------------------------------------------ *)
(* Quorum arithmetic over the effective configuration (qcheck) *)

let member_sets =
  (* Membership sizes 1..7 drawn from a node-id space of 0..9. *)
  QCheck.Gen.(
    sized_size (int_range 1 7) (fun n st ->
        let rec draw acc =
          if List.length acc >= n then acc
          else
            let id = int_range 0 9 st in
            if List.mem id acc then draw acc else draw (id :: acc)
        in
        List.sort compare (draw [])))

let arb_members =
  QCheck.make ~print:(fun ms ->
      "{" ^ String.concat "," (List.map string_of_int ms) ^ "}")
    member_sets

let prop_quorum_majority =
  QCheck.Test.make ~name:"quorum is a strict majority of the members"
    ~count:200 arb_members (fun members ->
      let n = List.length members in
      let q = Types.quorum_of members in
      (* Strict majority: q acks are more than half, q-1 are not. *)
      (2 * q > n) && (2 * (q - 1) <= n))

let prop_removed_votes_never_count =
  QCheck.Test.make
    ~name:"votes from outside the configuration never reach quorum"
    ~count:200
    QCheck.(pair arb_members (list_of_size (Gen.int_range 0 20) (int_range 0 15)))
    (fun (members, votes) ->
      let counted = Types.count_votes ~members votes in
      let member_votes =
        List.sort_uniq compare (List.filter (fun v -> List.mem v members) votes)
      in
      (* Exactly the distinct member votes count — duplicates and
         non-members (removed servers, unpromoted learners) never do. *)
      counted = List.length member_votes
      && counted <= List.length members)

let prop_removal_shrinks_quorum =
  QCheck.Test.make ~name:"removing a member never raises the quorum"
    ~count:200 arb_members (fun members ->
      match members with
      | [] | [ _ ] -> QCheck.assume_fail ()
      | doomed :: _ ->
        Types.quorum_of (Types.remove_member members doomed)
        <= Types.quorum_of members)

(* ------------------------------------------------------------------ *)
(* Rejoin within one term: the delayed-ack window, stock vs. ablation *)

(* Drive the exact nemesis sequence by hand: egress latency on a follower,
   remove it, re-add a fresh instance at the same id while the old
   incarnation's high-match append replies are still in flight.  Returns
   [(lied, stale_rejected)]: whether the leader's progress entry for the
   victim ever ran ahead of the victim's actual log, and how many stale
   session echoes the leader dropped. *)
let rejoin_window ~session_ids =
  let config = { Types.default_config with Types.session_ids } in
  let lied = ref false in
  let stale = ref 0 in
  with_ensemble ~seed:11 ~config (fun sim ens ->
      let leader = Ensemble.await_leader ens in
      let c = Ensemble.connect ens ~name:"load" () in
      (* Steady append traffic, so the victim has fresh acks to delay. *)
      let writer =
        Des.Proc.spawn ~name:"writer" sim (fun () ->
            let i = ref 0 in
            while true do
              incr i;
              ignore
                (Client.write c ~key:(Printf.sprintf "/w/%03d" (!i mod 50))
                   ~value:(string_of_int !i) ());
              Des.Proc.sleep 0.02
            done)
      in
      Des.Proc.sleep 5.;
      let victim =
        match List.filter (fun i -> i <> leader) (Ensemble.members ens) with
        | v :: _ -> v
        | [] -> Alcotest.fail "no follower to churn"
      in
      (* Watch the leader's progress entry for the victim against the
         victim's actual log, concurrently with the churn below. *)
      let poller =
        Des.Proc.spawn ~name:"poller" sim (fun () ->
            while true do
              (match Ensemble.leader_id ens with
               | Some lid ->
                 List.iter
                   (fun (peer, match_index) ->
                     if
                       peer = victim
                       && List.mem peer (Ensemble.replica_ids ens)
                       && match_index
                          > Replica.last_log_index (Ensemble.replica ens peer)
                     then lied := true)
                   (Replica.progress_snapshot (Ensemble.replica ens lid))
               | None -> ());
              Des.Proc.sleep 0.05
            done)
      in
      let net = Ensemble.net ens in
      Des.Net.set_node_delay net victim 1.0;
      Des.Proc.sleep 0.15;
      Ensemble.remove_replica ens victim;
      ignore
        (Des.Proc.spawn ~name:"clear-delay" sim (fun () ->
             Des.Proc.sleep 4.;
             Des.Net.set_node_delay net victim 0.));
      ignore (Ensemble.add_replica ens ~id:victim ());
      (* Let any still-delayed echoes land before reading the verdict. *)
      Des.Proc.sleep 3.;
      stale := (Ensemble.membership_stats ens).Types.stale_sessions_rejected;
      Des.Proc.kill writer;
      Des.Proc.kill poller;
      Client.close c);
  (!lied, !stale)

let test_rejoin_stock_clean () =
  let lied, stale = rejoin_window ~session_ids:true in
  check bool_c "stale echoes were actually in flight" true (stale > 0);
  check bool_c "progress never ran ahead of the rejoined log" false lied

let test_rejoin_ablation_lies () =
  let lied, stale = rejoin_window ~session_ids:false in
  check int_c "nothing rejected without session ids" 0 stale;
  check bool_c "leader progress ran ahead of the rejoined log" true lied

(* ------------------------------------------------------------------ *)

let suite =
  [
    ("add then remove a replica", `Quick, test_add_remove_replica);
    ( "newcomer participates in fail-over",
      `Quick,
      test_add_survives_leader_crash_of_old_member );
    ("client follows membership changes", `Quick, test_client_follows_membership);
    ("session-timeout clamp", `Quick, test_session_timeout_clamp);
    QCheck_alcotest.to_alcotest prop_quorum_majority;
    QCheck_alcotest.to_alcotest prop_removed_votes_never_count;
    QCheck_alcotest.to_alcotest prop_removal_shrinks_quorum;
    ("rejoin window: stock stays honest", `Quick, test_rejoin_stock_clean);
    ( "rejoin window: no-session-id build lies",
      `Quick,
      test_rejoin_ablation_lies );
  ]

let () = Alcotest.run "membership" [ ("membership", suite) ]
