let delta_series sim ~bucket ~duration ~sample ~scale =
  let series = Series.create ~bucket ~duration in
  let buckets = Series.bucket_count series in
  let previous = ref (sample ()) in
  for i = 0 to buckets - 1 do
    let edge = float_of_int (i + 1) *. bucket in
    ignore
      (Des.Sim.at sim edge (fun () ->
           let current = sample () in
           Series.set_bucket series i ((current -. !previous) *. scale);
           previous := current))
  done;
  series

let utilization_series sim ~bucket ~duration ~busy =
  delta_series sim ~bucket ~duration ~sample:busy ~scale:(1. /. bucket)

let rate_series sim ~bucket ~duration ~count =
  delta_series sim ~bucket ~duration ~sample:count ~scale:(1. /. bucket)
