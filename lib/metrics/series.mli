(** Time-bucketed series: accumulate (time, value) points into fixed-width
    buckets, for rate and utilization plots (Figs. 3 and 4). *)

type t

(** [create ~bucket ~duration] — buckets of [bucket] seconds covering
    [0, duration). *)
val create : bucket:float -> duration:float -> t

(** Add [v] (default 1.0) at time [t]; out-of-range times are clamped to
    the first/last bucket. *)
val add : ?v:float -> t -> float -> unit

(** Set a bucket's value directly (for sampled gauges). *)
val set_bucket : t -> int -> float -> unit

val bucket_count : t -> int
val bucket_width : t -> float

(** [(bucket_start_time, value)] rows, in order. *)
val rows : t -> (float * float) list

val max_value : t -> float
val sum : t -> float

(** Render as aligned two-column text, with a crude ASCII bar chart. *)
val render : ?label:string -> ?time_unit:[ `Seconds | `Hours ] -> t -> string
