(** Periodic sampling of cumulative counters inside a simulation.

    The Fig. 4 pattern: sample a monotonically growing busy-time counter at
    bucket edges and difference consecutive samples, yielding per-bucket
    utilization. *)

(** [utilization_series sim ~bucket ~duration ~busy] schedules samples of
    [busy ()] every [bucket] seconds and returns the series; each bucket
    holds (Δbusy / bucket), i.e. utilization in [0, 1] for a single-server
    resource.  Must be called before the relevant interval runs. *)
val utilization_series :
  Des.Sim.t -> bucket:float -> duration:float -> busy:(unit -> float) ->
  Series.t

(** [rate_series sim ~bucket ~duration ~count] — same, for event counters:
    each bucket holds Δcount / bucket (events per second). *)
val rate_series :
  Des.Sim.t -> bucket:float -> duration:float -> count:(unit -> float) ->
  Series.t
