type t = { bucket : float; values : float array }

let create ~bucket ~duration =
  if bucket <= 0. then invalid_arg "Series.create: bucket must be positive";
  let n = max 1 (int_of_float (ceil (duration /. bucket))) in
  { bucket; values = Array.make n 0. }

let index t time =
  let i = int_of_float (time /. t.bucket) in
  min (Array.length t.values - 1) (max 0 i)

let add ?(v = 1.0) t time =
  let i = index t time in
  t.values.(i) <- t.values.(i) +. v

let set_bucket t i v =
  if i >= 0 && i < Array.length t.values then t.values.(i) <- v

let bucket_count t = Array.length t.values
let bucket_width t = t.bucket

let rows t =
  Array.to_list
    (Array.mapi (fun i v -> (float_of_int i *. t.bucket, v)) t.values)

let max_value t = Array.fold_left Float.max neg_infinity t.values
let sum t = Array.fold_left ( +. ) 0. t.values

let render ?(label = "value") ?(time_unit = `Seconds) t =
  let buf = Buffer.create 1024 in
  let peak = Float.max 1e-9 (max_value t) in
  let time_header, time_of =
    match time_unit with
    | `Seconds -> ("t(s)", fun time -> Printf.sprintf "%8.0f" time)
    | `Hours -> ("t(h)", fun time -> Printf.sprintf "%8.3f" (time /. 3600.))
  in
  Buffer.add_string buf (Printf.sprintf "%8s  %12s\n" time_header label);
  List.iter
    (fun (time, v) ->
      let bar_len = int_of_float (v /. peak *. 40.) in
      Buffer.add_string buf
        (Printf.sprintf "%s  %12.3f  %s\n" (time_of time) v
           (String.make (max 0 bar_len) '#')))
    (rows t);
  Buffer.contents buf
