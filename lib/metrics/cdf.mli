(** Latency recorder with exact quantiles and CDF rendering (Fig. 5). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

(** [quantile t q] with [q] in [0, 1]; 0.5 is the median.  An empty
    recorder answers 0 (a placeholder, so summaries survive runs where
    load shedding leaves zero commits).
    @raise Invalid_argument on an out-of-range [q]. *)
val quantile : t -> float -> float

(** [quantile_opt t q] is [None] on an empty recorder, [Some (quantile t q)]
    otherwise.  Prefer this over {!quantile} in summaries so empty phases
    print "n/a" instead of a misleading 0.0.
    @raise Invalid_argument on an out-of-range [q]. *)
val quantile_opt : t -> float -> float option

(** [quantile_pair t ~p] renders ["<p50>/<p>"] with two decimals, or
    ["n/a"] when the recorder is empty. *)
val quantile_pair : t -> p:float -> string

(** 0 on an empty recorder, like {!quantile}. *)
val min_value : t -> float

(** 0 on an empty recorder, like {!quantile}. *)
val max_value : t -> float

(** CDF support points [(value, fraction_le)], one per sample, thinned to
    at most [points] entries (default 100). *)
val points : ?points:int -> t -> (float * float) list

(** Render selected percentiles plus a log-ish CDF table. *)
val render : ?label:string -> t -> string
