type t = { mutable samples : float list; mutable n : int; mutable dirty : bool;
           mutable sorted : float array }

let create () = { samples = []; n = 0; dirty = true; sorted = [||] }

let add t v =
  t.samples <- v :: t.samples;
  t.n <- t.n + 1;
  t.dirty <- true

let count t = t.n

let ensure_sorted t =
  if t.dirty then begin
    let a = Array.of_list t.samples in
    Array.sort Float.compare a;
    t.sorted <- a;
    t.dirty <- false
  end;
  t.sorted

let mean t =
  if t.n = 0 then 0.
  else List.fold_left ( +. ) 0. t.samples /. float_of_int t.n

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Cdf.quantile: q out of range";
  if t.n = 0 then 0.
  else begin
    let a = ensure_sorted t in
    let idx = int_of_float (q *. float_of_int (t.n - 1)) in
    a.(idx)
  end

let quantile_opt t q =
  if q < 0. || q > 1. then invalid_arg "Cdf.quantile_opt: q out of range";
  if t.n = 0 then None else Some (quantile t q)

let quantile_pair t ~p =
  match (quantile_opt t 0.5, quantile_opt t p) with
  | Some median, Some high -> Printf.sprintf "%.2f/%.2f" median high
  | _ -> "n/a"

let min_value t = quantile t 0.
let max_value t = quantile t 1.

let points ?(points = 100) t =
  let a = ensure_sorted t in
  let n = Array.length a in
  if n = 0 then []
  else begin
    let step = max 1 (n / points) in
    let out = ref [] in
    let i = ref 0 in
    while !i < n do
      out := (a.(!i), float_of_int (!i + 1) /. float_of_int n) :: !out;
      i := !i + step
    done;
    (* Always include the max. *)
    let out =
      match !out with
      | (v, _) :: _ when v = a.(n - 1) -> !out
      | _ -> (a.(n - 1), 1.) :: !out
    in
    List.rev out
  end

let render ?(label = "latency (s)") t =
  if t.n = 0 then Printf.sprintf "%s: no samples\n" label
  else begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "%s: n=%d mean=%.4f min=%.4f max=%.4f\n" label t.n
         (mean t) (min_value t) (max_value t));
    List.iter
      (fun q ->
        Buffer.add_string buf
          (Printf.sprintf "  p%-5g %10.4f\n" (q *. 100.) (quantile t q)))
      [ 0.10; 0.25; 0.50; 0.75; 0.90; 0.95; 0.99; 1.0 ];
    Buffer.contents buf
  end
