type outcome = {
  lines : string list;
  failed_expectations : int;
  transactions : int;
  unexpected_outcomes : int;
  blocked_convergences : int;
  layers_consistent : bool;
  trace : Trace.t option;
}

(* ------------------------------------------------------------------ *)
(* Parsing *)

type header = {
  mutable hosts : int;
  mutable storage : int;
  mutable seed : int;
  mutable full_mode : bool;
  mutable admission_high : int option;
  mutable admission_low : int;
}

type command =
  | Spawn of string * int * int
  | Start of string * int
  | Stop of string * int
  | Migrate of string * int * int
  | Destroy of string * int
  | Vlan_create of int * int * string
  | Vlan_attach of int * int * string
  | Sleep of float
  | Power_cycle of int
  | Fail_next of int * string
  | Kill_leader
  | Repair of int
  | Reload of int
  | Show of int
  | Stats
  | Storm of int * int
  | Converge of string
  | Expect of [ `Committed | `Aborted | `Overload | `Failed ]
  | Expect_converged

let parse_line header line_number line =
  let fail message =
    Error (Printf.sprintf "line %d: %s (%S)" line_number message line)
  in
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  let int_of word what =
    match int_of_string_opt word with
    | Some n -> Ok n
    | None -> fail (what ^ " must be an integer")
  in
  let ( let* ) r f = Result.bind r f in
  match words with
  | [] -> Ok None
  | word :: _ when String.length word > 0 && word.[0] = '#' -> Ok None
  | [ "hosts"; n ] ->
    let* n = int_of n "hosts" in
    header.hosts <- n;
    Ok None
  | [ "storage"; n ] ->
    let* n = int_of n "storage" in
    header.storage <- n;
    Ok None
  | [ "seed"; n ] ->
    let* n = int_of n "seed" in
    header.seed <- n;
    Ok None
  | [ "mode"; "full" ] ->
    header.full_mode <- true;
    Ok None
  | [ "admission"; high; low ] ->
    let* high = int_of high "admission high watermark" in
    let* low = int_of low "admission low watermark" in
    if high < 1 || low < 0 || low >= high then
      fail "admission wants 0 <= low < high"
    else begin
      header.admission_high <- Some high;
      header.admission_low <- low;
      Ok None
    end
  | [ "mode"; "logical" ] ->
    header.full_mode <- false;
    Ok None
  | [ "spawn"; vm; host ] ->
    let* host = int_of host "host" in
    Ok (Some (Spawn (vm, host, 1024)))
  | [ "spawn"; vm; host; mem ] ->
    let* host = int_of host "host" in
    let* mem = int_of mem "mem_mb" in
    Ok (Some (Spawn (vm, host, mem)))
  | [ "start"; vm; host ] ->
    let* host = int_of host "host" in
    Ok (Some (Start (vm, host)))
  | [ "stop"; vm; host ] ->
    let* host = int_of host "host" in
    Ok (Some (Stop (vm, host)))
  | [ "migrate"; vm; src; dst ] ->
    let* src = int_of src "src" in
    let* dst = int_of dst "dst" in
    Ok (Some (Migrate (vm, src, dst)))
  | [ "destroy"; vm; host ] ->
    let* host = int_of host "host" in
    Ok (Some (Destroy (vm, host)))
  | [ "vlan-create"; switch; id; name ] ->
    let* switch = int_of switch "switch" in
    let* id = int_of id "vlan id" in
    Ok (Some (Vlan_create (switch, id, name)))
  | [ "vlan-attach"; switch; id; vm ] ->
    let* switch = int_of switch "switch" in
    let* id = int_of id "vlan id" in
    Ok (Some (Vlan_attach (switch, id, vm)))
  | [ "sleep"; seconds ] ->
    (match float_of_string_opt seconds with
     | Some s when s >= 0. -> Ok (Some (Sleep s))
     | Some _ | None -> fail "sleep takes a non-negative number")
  | [ "power-cycle"; host ] ->
    let* host = int_of host "host" in
    Ok (Some (Power_cycle host))
  | [ "fail-next"; host; action ] ->
    let* host = int_of host "host" in
    Ok (Some (Fail_next (host, action)))
  | [ "kill-leader" ] -> Ok (Some Kill_leader)
  | [ "repair"; host ] ->
    let* host = int_of host "host" in
    Ok (Some (Repair host))
  | [ "reload"; host ] ->
    let* host = int_of host "host" in
    Ok (Some (Reload host))
  | [ "show"; host ] ->
    let* host = int_of host "host" in
    Ok (Some (Show host))
  | [ "stats" ] -> Ok (Some Stats)
  | [ "storm"; count; host ] ->
    let* count = int_of count "storm count" in
    let* host = int_of host "host" in
    Ok (Some (Storm (count, host)))
  | [ "converge"; file ] -> Ok (Some (Converge file))
  | [ "expect-converged" ] -> Ok (Some Expect_converged)
  | [ "expect"; "committed" ] -> Ok (Some (Expect `Committed))
  | [ "expect"; "aborted" ] -> Ok (Some (Expect `Aborted))
  | [ "expect"; "overload" ] -> Ok (Some (Expect `Overload))
  | [ "expect"; "failed" ] -> Ok (Some (Expect `Failed))
  | word :: _ -> fail ("unknown command " ^ word)

let parse script =
  let header =
    {
      hosts = 8;
      storage = 2;
      seed = 1;
      full_mode = true;
      admission_high = None;
      admission_low = 0;
    }
  in
  let rec go line_number acc = function
    | [] -> Ok (header, List.rev acc)
    | line :: rest ->
      (match parse_line header line_number line with
       | Error _ as e -> e
       | Ok None -> go (line_number + 1) acc rest
       | Ok (Some cmd) -> go (line_number + 1) (cmd :: acc) rest)
  in
  go 1 [] (String.split_on_char '\n' script)

(* ------------------------------------------------------------------ *)
(* Execution *)

let host_path i = Data.Path.to_string (Tcloud.Setup.compute_path i)
let switch_path i = Data.Path.to_string (Tcloud.Setup.switch_path i)

let run_script ?(record_trace = false) ?(base_dir = ".") script =
  match parse script with
  | Error _ as e -> e
  | Ok (header, commands) ->
    let sim = Des.Sim.create ~seed:header.seed () in
    let tracer = if record_trace then Some (Trace.create ~sim ()) else None in
    let size =
      {
        Tcloud.Setup.small with
        Tcloud.Setup.compute_hosts = header.hosts;
        storage_hosts = header.storage;
        storage_capacity_mb = 5_000_000;
      }
    in
    let inv =
      Tcloud.Setup.build
        ~timing:(if header.full_mode then `Process else `Instant)
        ~rng:(Des.Sim.rng sim) size
    in
    let platform =
      Tropic.Platform.create
        {
          Tropic.Platform.default_spec with
          Tropic.Platform.mode =
            (if header.full_mode then Tropic.Platform.Full
             else Tropic.Platform.Logical_only 0.01);
          workers = 4;
          controller_config =
            {
              Tcloud.Setup.controller_config with
              Tropic.Controller.admission =
                {
                  Tropic.Health.queue_high = header.admission_high;
                  queue_low = header.admission_low;
                };
            };
          controller_session_timeout = 5.0;
          trace = tracer;
        }
        inv.Tcloud.Setup.env ~initial_tree:inv.Tcloud.Setup.tree
        ~devices:inv.Tcloud.Setup.devices sim
    in
    let storage_for host =
      Data.Path.to_string
        (Tcloud.Setup.storage_path (host mod header.storage))
    in
    let lines = ref [] in
    let emit fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
    let failed_expectations = ref 0 in
    let transactions = ref 0 in
    let last_state = ref None in
    (* A transaction that aborts or fails is fine when the script says so
       with a following [expect]; otherwise it counts as unexpected and
       makes the run (and [tcloud_sim]'s exit status) unhealthy. *)
    let unexpected_outcomes = ref 0 in
    (* Goal-state convergence: [converge FILE] drives the platform to the
       declarative model in FILE (path relative to the scenario file); a
       run left blocked — residual drift after the executor gave up — is
       unhealthy on its own, no [expect-converged] needed. *)
    let blocked_convergences = ref 0 in
    let last_converge = ref None in
    let pending_bad = ref None in
    let flush_pending () =
      match !pending_bad with
      | None -> ()
      | Some (label, state) ->
        incr unexpected_outcomes;
        pending_bad := None;
        emit "UNEXPECTED OUTCOME: %s ended %s with no expect" label
          (Tropic.Txn.state_to_string state)
    in
    let txn label proc args =
      flush_pending ();
      incr transactions;
      let state = Tropic.Platform.run_txn platform ~proc ~args in
      last_state := Some state;
      (match state with
       | Tropic.Txn.Aborted _ when Tropic.Txn.is_overload state ->
         (* Load shedding is the platform protecting itself, not an
            orchestration failure: expected even with no [expect]. *)
         ()
       | Tropic.Txn.Aborted _ | Tropic.Txn.Failed _ ->
         pending_bad := Some (label, state)
       | Tropic.Txn.Committed | Tropic.Txn.Initialized | Tropic.Txn.Accepted
       | Tropic.Txn.Deferred | Tropic.Txn.Started ->
         ());
      emit "%-40s -> %s" label (Tropic.Txn.state_to_string state)
    in
    let interpret = function
      | Spawn (vm, host, mem_mb) ->
        txn
          (Printf.sprintf "spawn %s on host%d (%d MB)" vm host mem_mb)
          "spawnVM"
          (Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img" ~mem_mb
             ~storage:(storage_for host) ~host:(host_path host))
      | Start (vm, host) ->
        txn
          (Printf.sprintf "start %s on host%d" vm host)
          "startVM"
          (Tcloud.Procs.start_vm_args ~host:(host_path host) ~vm)
      | Stop (vm, host) ->
        txn
          (Printf.sprintf "stop %s on host%d" vm host)
          "stopVM"
          (Tcloud.Procs.stop_vm_args ~host:(host_path host) ~vm)
      | Migrate (vm, src, dst) ->
        txn
          (Printf.sprintf "migrate %s host%d->host%d" vm src dst)
          "migrateVM"
          (Tcloud.Procs.migrate_vm_args ~src:(host_path src)
             ~dst:(host_path dst) ~vm)
      | Destroy (vm, host) ->
        txn
          (Printf.sprintf "destroy %s on host%d" vm host)
          "destroyVM"
          (Tcloud.Procs.destroy_vm_args ~host:(host_path host)
             ~storage:(storage_for host) ~vm)
      | Vlan_create (switch, id, name) ->
        txn
          (Printf.sprintf "create vlan %d on switch%d" id switch)
          "createVlan"
          (Tcloud.Procs.create_vlan_args ~switch:(switch_path switch)
             ~vlan:id ~name)
      | Vlan_attach (switch, id, vm) ->
        txn
          (Printf.sprintf "attach %s to vlan %d" vm id)
          "attachVmVlan"
          (Tcloud.Procs.attach_vm_vlan_args ~switch:(switch_path switch)
             ~vlan:id ~vm)
      | Sleep seconds ->
        Des.Proc.sleep seconds;
        emit "slept %.1f s (t=%.1f)" seconds (Des.Proc.now ())
      | Power_cycle host ->
        let _, compute = inv.Tcloud.Setup.computes.(host) in
        Devices.Compute.power_cycle compute;
        emit "power-cycled host%d" host
      | Fail_next (host, action) ->
        let _, compute = inv.Tcloud.Setup.computes.(host) in
        Devices.Fault.fail_next
          (Devices.Device.faults (Devices.Compute.device compute))
          ~action;
        emit "armed fault: next %s on host%d fails" action host
      | Kill_leader ->
        let leader = Tropic.Platform.await_leader_controller platform in
        let index =
          let found = ref 0 in
          Array.iteri
            (fun i c -> if c == leader then found := i)
            (Tropic.Platform.controllers platform);
          !found
        in
        Tropic.Platform.kill_controller platform index;
        emit "killed %s" (Tropic.Controller.name leader)
      | Repair host ->
        Tropic.Platform.repair platform (Tcloud.Setup.compute_path host);
        Des.Proc.sleep 10.;
        emit "repair(host%d) issued" host
      | Reload host ->
        Tropic.Platform.reload platform (Tcloud.Setup.compute_path host);
        Tropic.Platform.reload platform
          (Data.Path.v (storage_for host));
        Des.Proc.sleep 5.;
        emit "reload(host%d + its storage) issued" host
      | Show host ->
        (match
           Data.Tree.subtree
             (Tropic.Platform.logical_tree platform)
             (Tcloud.Setup.compute_path host)
         with
         | Ok node ->
           emit "host%d:\n%s" host
             (String.trim (Format.asprintf "%a" Data.Tree.pp node))
         | Error e -> emit "show host%d: %s" host (Data.Tree.error_to_string e))
      | Stats ->
        let c = Tropic.Platform.await_leader_controller platform in
        let s = Tropic.Controller.stats c in
        emit
          "stats: accepted=%d committed=%d aborted=%d failed=%d deferrals=%d \
           violations=%d sheds=%d breaker=%d/%d/%d"
          s.Tropic.Controller.accepted s.Tropic.Controller.committed
          s.Tropic.Controller.aborted s.Tropic.Controller.failed
          s.Tropic.Controller.deferrals s.Tropic.Controller.violations
          s.Tropic.Controller.sheds s.Tropic.Controller.breaker_trips
          s.Tropic.Controller.breaker_probes s.Tropic.Controller.breaker_closes;
        emit "%s" (Tropic.Controller.phase_summary s)
      | Storm (count, host) ->
        (* Fire-and-forget burst: flood the controller without awaiting, so
           a following awaited command observes admission control. *)
        for i = 1 to count do
          ignore
            (Tropic.Platform.submit platform ~proc:"spawnVM"
               ~args:
                 (Tcloud.Procs.spawn_vm_args
                    ~vm:(Printf.sprintf "storm%d" i)
                    ~template:"base.img" ~mem_mb:256
                    ~storage:(storage_for host) ~host:(host_path host)))
        done;
        emit "storm: %d spawns submitted to host%d" count host
      | Converge file ->
        flush_pending ();
        let path =
          if Filename.is_relative file then Filename.concat base_dir file
          else file
        in
        let contents =
          try
            let ic = open_in path in
            Ok
              (Fun.protect
                 ~finally:(fun () -> close_in ic)
                 (fun () -> really_input_string ic (in_channel_length ic)))
          with Sys_error message -> Error message
        in
        (match Result.bind contents Plan.Model.of_string with
         | Error message ->
           incr blocked_convergences;
           last_converge := None;
           emit "converge %s: %s" file message
         | Ok model ->
           let ctx =
             {
               Plan.Planner.storage_hosts = header.storage;
               template = "base.img";
             }
           in
           let report = Plan.Executor.converge platform ctx ~model in
           last_converge := Some report;
           let submitted =
             List.length
               (List.filter
                  (fun ex -> ex.Plan.Executor.ex_txn <> None)
                  report.Plan.Executor.history)
           in
           transactions := !transactions + submitted;
           if report.Plan.Executor.status <> Plan.Executor.Converged then
             incr blocked_convergences;
           emit "converge %-33s -> %s" file (Plan.Executor.summary report);
           List.iter
             (fun reason -> emit "  unplannable: %s" reason)
             report.Plan.Executor.unplannable;
           List.iter
             (fun change ->
               emit "  residual: %s" (Data.Diff.change_to_string change))
             report.Plan.Executor.residual)
      | Expect_converged ->
        let ok =
          match !last_converge with
          | Some report ->
            report.Plan.Executor.status = Plan.Executor.Converged
          | None -> false
        in
        if not ok then begin
          incr failed_expectations;
          emit "EXPECTATION FAILED: wanted convergence, %s"
            (match !last_converge with
             | Some report -> Plan.Executor.summary report
             | None -> "no converge has run")
        end
      | Expect wanted ->
        (* Whatever was expected, the script acknowledged this outcome —
           a mismatch is already counted as a failed expectation. *)
        pending_bad := None;
        let ok =
          match !last_state, wanted with
          | Some Tropic.Txn.Committed, `Committed -> true
          | Some (Tropic.Txn.Aborted _), `Aborted -> true
          | Some s, `Overload -> Tropic.Txn.is_overload s
          | Some (Tropic.Txn.Failed _), `Failed -> true
          | Some _, (`Committed | `Aborted | `Failed) | None, _ -> false
        in
        if not ok then begin
          incr failed_expectations;
          emit "EXPECTATION FAILED: wanted %s, last transaction was %s"
            (match wanted with
             | `Committed -> "committed"
             | `Aborted -> "aborted"
             | `Overload -> "overload-aborted"
             | `Failed -> "failed")
            (match !last_state with
             | Some s -> Tropic.Txn.state_to_string s
             | None -> "absent")
        end
    in
    Common.run_scenario ~horizon:36_000. sim (fun () ->
        List.iter interpret commands;
        flush_pending ());
    (* End-of-run cross-layer check: every device either matches its
       logical subtree or is quarantined awaiting reconciliation. *)
    let layers_consistent =
      match Tropic.Platform.leader_controller platform with
      | None -> false
      | Some leader ->
        let quarantined = Tropic.Controller.quarantined leader in
        let tree = Tropic.Controller.tree leader in
        List.for_all
          (fun device ->
            let root = Devices.Device.root device in
            List.exists (fun q -> Data.Path.is_prefix q root) quarantined
            ||
            match Data.Tree.subtree tree root with
            | Error _ -> false
            | Ok logical ->
              Data.Tree.equal logical (Devices.Device.export device))
          inv.Tcloud.Setup.devices
    in
    Ok
      {
        lines = List.rev !lines;
        failed_expectations = !failed_expectations;
        transactions = !transactions;
        unexpected_outcomes = !unexpected_outcomes;
        blocked_convergences = !blocked_convergences;
        layers_consistent;
        trace = tracer;
      }

let run_file ?record_trace path =
  let ic = open_in path in
  let script =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  run_script ?record_trace ~base_dir:(Filename.dirname path) script
