(** §6.2 — safety: the logical-layer cost of enforcing constraints.

    The paper reports that checking the two representative TCloud
    constraints (VM-type compatibility for migration, aggregate VM memory
    for placement) costs < 10 ms per transaction in their Python
    controller.  Here we measure the real OCaml cost of logical simulation
    with and without the constraint registry, over the hosting mix. *)

type result = {
  iterations : int;
  with_constraints_us : float;     (** mean per simulated txn *)
  without_constraints_us : float;
  overhead_us : float;
  migrate_block_us : float;
      (** mean cost of a migrateVM simulation that the hypervisor rule
          rejects *)
}

val run : ?iterations:int -> unit -> result
val print : result -> unit
