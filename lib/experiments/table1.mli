(** Table 1: the execution log generated for [spawnVM], with its undo
    actions — regenerated live from the DSL, not hard-coded. *)

(** The records of a simulated spawn on a fresh small deployment. *)
val spawn_log : unit -> Tropic.Xlog.t

val print : unit -> unit
