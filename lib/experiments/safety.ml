type result = {
  iterations : int;
  with_constraints_us : float;
  without_constraints_us : float;
  overhead_us : float;
  migrate_block_us : float;
}

(* An environment identical to TCloud's but with no constraints registered:
   the ablation baseline. *)
let env_without_constraints () =
  let env = Tropic.Dsl.create_env () in
  Tcloud.Actions.register_all env;
  Tcloud.Procs.register_all env;
  env

let deployment =
  {
    Tcloud.Setup.small with
    Tcloud.Setup.compute_hosts = 100;
    storage_hosts = 25;
    prepopulated_vms_per_host = 4;
  }

let mean_simulate_us env tree calls iterations =
  let n_calls = Array.length calls in
  let (), seconds =
    Common.time_it (fun () ->
        for i = 0 to iterations - 1 do
          let proc, args = calls.(i mod n_calls) in
          ignore (Tropic.Logical.simulate env ~tree ~proc ~args)
        done)
  in
  seconds /. float_of_int iterations *. 1e6

let run ?(iterations = 20_000) () =
  let inv = Tcloud.Setup.build deployment in
  let tree = inv.Tcloud.Setup.tree in
  let bare_env = env_without_constraints () in
  (* The hosting mix as simulation inputs, against the prepopulated tree. *)
  let host i = Data.Path.to_string (Tcloud.Setup.compute_path i) in
  let storage i = Data.Path.to_string (Tcloud.Setup.storage_path i) in
  let calls =
    Array.init 100 (fun k ->
        let h = k mod deployment.Tcloud.Setup.compute_hosts in
        let vm = Tcloud.Setup.prepop_vm_name ~host:h ~index:(k mod 4) in
        match k mod 4 with
        | 0 ->
          ( "spawnVM",
            Tcloud.Procs.spawn_vm_args
              ~vm:(Printf.sprintf "new%04d" k)
              ~template:"base.img" ~mem_mb:1024
              ~storage:(storage (h mod deployment.Tcloud.Setup.storage_hosts))
              ~host:(host h) )
        | 1 -> ("startVM", Tcloud.Procs.start_vm_args ~host:(host h) ~vm)
        | 2 ->
          (* Same-hypervisor migration (hosts h and h+2 share a type). *)
          ( "migrateVM",
            Tcloud.Procs.migrate_vm_args ~src:(host h)
              ~dst:(host ((h + 2) mod deployment.Tcloud.Setup.compute_hosts))
              ~vm )
        | _ ->
          ( "destroyVM",
            Tcloud.Procs.destroy_vm_args ~host:(host h)
              ~storage:(storage (h mod deployment.Tcloud.Setup.storage_hosts))
              ~vm ))
  in
  let with_constraints_us =
    mean_simulate_us inv.Tcloud.Setup.env tree calls iterations
  in
  let without_constraints_us = mean_simulate_us bare_env tree calls iterations in
  (* Cross-hypervisor migration: rejected by the VM-type rule. *)
  let blocked_migrations =
    Array.init 16 (fun k ->
        let h = 2 * k in
        let vm = Tcloud.Setup.prepop_vm_name ~host:h ~index:0 in
        ( "migrateVM",
          Tcloud.Procs.migrate_vm_args ~src:(host h) ~dst:(host (h + 1)) ~vm ))
  in
  let migrate_block_us =
    mean_simulate_us inv.Tcloud.Setup.env tree blocked_migrations
      (iterations / 4)
  in
  {
    iterations;
    with_constraints_us;
    without_constraints_us;
    overhead_us = with_constraints_us -. without_constraints_us;
    migrate_block_us;
  }

let print r =
  Common.section "§6.2 Safety: constraint-checking overhead (logical layer)";
  Printf.printf
    "logical simulation per txn: %.2f us with constraints, %.2f us without\n"
    r.with_constraints_us r.without_constraints_us;
  Printf.printf "constraint-checking overhead: %.2f us per txn (paper: < 10 ms)\n"
    r.overhead_us;
  Printf.printf "illegal migration rejected in %.2f us (before any device op)\n%!"
    r.migrate_block_us
