(** Shared plumbing for experiment harnesses. *)

(** [run_scenario ?horizon sim body] spawns [body] as a process, drains the
    simulation (bounded by [horizon], default 36 000 s), and fails with the
    first recorded process crash, if any.
    @raise Failure if a process crashed or [body] did not finish. *)
val run_scenario : ?horizon:float -> Des.Sim.t -> (unit -> unit) -> unit

(** Wall-clock seconds spent evaluating [f] (monotonic-ish, via
    [Sys.time]'s processor time — the experiments are CPU-bound). *)
val time_it : (unit -> 'a) -> 'a * float

(** Print a section header to stdout. *)
val section : string -> unit

(** TROPIC_BENCH_QUICK=1 shrinks the big experiments (documented per
    experiment). *)
val quick_mode : unit -> bool

(** Scheduler counters snapshotted from a platform's leader controller at
    the end of a run — the wake-on-release observability every experiment
    summary line carries. *)
type sched_counters = {
  sc_committed : int;
  sc_deferrals : int;  (** lock-conflict deferments *)
  sc_wakeups : int;  (** blocked txns re-readied by a lock release *)
  sc_spurious : int;  (** wakeups that conflicted again *)
  sc_retries_saved : int;  (** rescan attempts avoided *)
}

val zero_sched_counters : sched_counters

(** Leader's counters, or {!zero_sched_counters} when no controller leads
    (e.g. after an unhealed crash). *)
val sched_counters : Tropic.Platform.t -> sched_counters

(** One-line human summary: deferrals per committed txn + wakeup counters. *)
val sched_summary : sched_counters -> string

(** Robustness counters snapshotted from a platform's leader controller:
    physical retry/timeout activity and operator-signal traffic. *)
type robust_counters = {
  rc_retries : int;  (** physical retry attempts *)
  rc_transient : int;  (** transient device errors workers observed *)
  rc_timeouts : int;  (** per-action deadline expiries *)
  rc_terms : int;  (** TERM signals handled *)
  rc_kills : int;  (** KILL signals handled *)
  rc_auto_terms : int;  (** TERMs issued by the watchdog *)
  rc_auto_kills : int;  (** KILLs issued by the watchdog *)
  rc_sheds : int;  (** arrivals shed by admission control *)
  rc_breaker_deferrals : int;  (** txns parked by an open breaker *)
  rc_breaker_trips : int;  (** breaker → Tripped transitions *)
  rc_breaker_probes : int;  (** canary transactions dispatched *)
  rc_breaker_closes : int;  (** canaries that re-closed a breaker *)
}

val zero_robust_counters : robust_counters

(** Leader's counters, or {!zero_robust_counters} when no controller
    leads. *)
val robust_counters : Tropic.Platform.t -> robust_counters

(** One-line human summary of retry/timeout/signal activity. *)
val robust_summary : robust_counters -> string

(** Leader's per-phase latency breakdown ({!Tropic.Controller.phase_summary});
    phases with no samples print [n/a]. *)
val phase_summary : Tropic.Platform.t -> string

(** One-line summary of the coordination-membership counters summed over
    every shard's ensemble (joins, leaves, catch-ups, stale replication
    sessions rejected).  All zeroes on runs with no membership churn. *)
val membership_summary : Tropic.Platform.t -> string

(** One-line summary of the group-commit batching counters summed over
    every shard's ensemble: flushes by trigger, mean/max batch size, ack
    discipline and the batch-size histogram.  All zeroes with
    [group_commit:false]. *)
val group_summary : Tropic.Platform.t -> string

(** Write [tracer]'s Chrome trace-event JSON to [file] and return the
    lifecycle-invariant violations {!Trace.Check.validate} found (ideally
    none). *)
val dump_trace : Trace.t -> file:string -> Trace.Check.error list
