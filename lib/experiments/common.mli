(** Shared plumbing for experiment harnesses. *)

(** [run_scenario ?horizon sim body] spawns [body] as a process, drains the
    simulation (bounded by [horizon], default 36 000 s), and fails with the
    first recorded process crash, if any.
    @raise Failure if a process crashed or [body] did not finish. *)
val run_scenario : ?horizon:float -> Des.Sim.t -> (unit -> unit) -> unit

(** Wall-clock seconds spent evaluating [f] (monotonic-ish, via
    [Sys.time]'s processor time — the experiments are CPU-bound). *)
val time_it : (unit -> 'a) -> 'a * float

(** Print a section header to stdout. *)
val section : string -> unit

(** TROPIC_BENCH_QUICK=1 shrinks the big experiments (documented per
    experiment). *)
val quick_mode : unit -> bool
