(** Ablations of TROPIC's design choices (DESIGN.md §5).

    1. {b Scheduling}: the paper's strict FIFO todoQ (a deferred head
       blocks everything) against the "aggressive" policy it sketches as
       future work (try every queued transaction once per round).
    2. {b Logical-first safety}: constraint checking in the logical layer
       against a build with no constraints, where overcommit reaches — and
       is silently accepted by — the devices (they cannot check aggregate
       rules), demonstrating why safety must live above the device layer.
    3. {b Quiescent checkpointing}: recovery cost after a controller crash
       with and without checkpoints (full log replay). *)

type scheduling_result = {
  fifo_makespan : float;
  aggressive_makespan : float;
  fifo_mean_latency : float;
  aggressive_mean_latency : float;
  fifo_sched : Common.sched_counters;
  aggressive_sched : Common.sched_counters;
  fifo_robust : Common.robust_counters;
  aggressive_robust : Common.robust_counters;
  fifo_phases : string;  (** per-phase p50/p99 latency breakdown *)
  aggressive_phases : string;
}

type safety_result = {
  with_constraints_overcommitted_hosts : int;  (** must be 0 *)
  with_constraints_device_ops : int;           (** ops wasted on doomed txns *)
  without_constraints_overcommitted_hosts : int;
  without_constraints_device_ops : int;
}

type checkpoint_result = {
  txns_before_crash : int;
  recovery_with_checkpoint : float;
  recovery_without_checkpoint : float;
}

type result = {
  scheduling : scheduling_result;
  safety : safety_result;
  checkpointing : checkpoint_result;
}

(** Base seed used when [?seed] is not given; the three sub-experiments
    run on [seed], [seed+1] and [seed+2]. *)
val default_seed : int

val run : ?seed:int -> unit -> result
val print : result -> unit
