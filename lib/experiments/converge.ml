(* Rolling-upgrade walkthrough for the goal-state frontend: a small
   single-hypervisor deployment with two stopped VMs pre-installed per
   host is driven through two declarative goals — drain host 0 while
   bringing the whole fleet online behind a tenant VLAN, then restore the
   original placement — each phase one [Plan.Executor.converge] call. *)

let default_seed = 11
let compute_hosts = 4
let vms_per_host = 2
let vlan_id = 100
let vlan_name = "tenants"

type result = {
  phases : (string * Plan.Executor.report) list;
  stats : Tropic.Platform.leader_stats;
  trace : Trace.t option;
}

let converged r =
  List.for_all
    (fun (_, report) -> report.Plan.Executor.status = Plan.Executor.Converged)
    r.phases

let total f r = List.fold_left (fun acc (_, rep) -> acc + f rep) 0 r.phases

(* ------------------------------------------------------------------ *)
(* The two goals *)

let prepop h i = Tcloud.Setup.prepop_vm_name ~host:h ~index:i

let vm name = { Plan.Model.vm_name = name; running = true; mem_mb = 1024 }

let all_vm_names =
  List.concat_map
    (fun h -> List.init vms_per_host (fun i -> prepop h i))
    (List.init compute_hosts (fun h -> h))

let tenant_switch =
  {
    Plan.Model.switch_index = 0;
    vlans = [ { Plan.Model.vlan_id; vlan_name; ports = all_vm_names } ];
  }

(* Phase 1: host 0 drained for maintenance — its VMs rehomed across the
   survivors — every VM running, and the tenant VLAN spanning the fleet. *)
let drained_goal =
  {
    Plan.Model.hosts =
      [
        { Plan.Model.host_index = 0; vms = [] };
        {
          Plan.Model.host_index = 1;
          vms = [ vm (prepop 1 0); vm (prepop 1 1); vm (prepop 0 0) ];
        };
        {
          Plan.Model.host_index = 2;
          vms = [ vm (prepop 2 0); vm (prepop 2 1); vm (prepop 0 1) ];
        };
        {
          Plan.Model.host_index = 3;
          vms = [ vm (prepop 3 0); vm (prepop 3 1) ];
        };
      ];
    switches = [ tenant_switch ];
  }

(* Phase 2: host 0 back in service — original placement, fleet still
   running, VLAN membership unchanged. *)
let restored_goal =
  {
    Plan.Model.hosts =
      List.init compute_hosts (fun h ->
          {
            Plan.Model.host_index = h;
            vms = List.init vms_per_host (fun i -> vm (prepop h i));
          });
    switches = [ tenant_switch ];
  }

let builtin_phases = [ "drain-host0", drained_goal; "restore", restored_goal ]

(* ------------------------------------------------------------------ *)

let run ?(seed = default_seed) ?(quick = false) ?(record_trace = false)
    ?goal () =
  let sim = Des.Sim.create ~seed () in
  let tracer = if record_trace then Some (Trace.create ~sim ()) else None in
  let size =
    {
      Tcloud.Setup.small with
      Tcloud.Setup.compute_hosts;
      hypervisors = [ "xen" ];
      storage_capacity_mb = 5_000_000;
      prepopulated_vms_per_host = vms_per_host;
      prepop_vm_mem_mb = 1024;
    }
  in
  let inv =
    Tcloud.Setup.build
      ~timing:(if quick then `Instant else `Process)
      ~rng:(Des.Sim.rng sim) size
  in
  let platform =
    Tropic.Platform.create
      {
        Tropic.Platform.default_spec with
        Tropic.Platform.mode =
          (if quick then Tropic.Platform.Logical_only 0.01
           else Tropic.Platform.Full);
        workers = 4;
        controller_config = Tcloud.Setup.controller_config;
        controller_session_timeout = 5.0;
        trace = tracer;
      }
      inv.Tcloud.Setup.env ~initial_tree:inv.Tcloud.Setup.tree
      ~devices:inv.Tcloud.Setup.devices sim
  in
  let ctx =
    {
      Plan.Planner.storage_hosts = size.Tcloud.Setup.storage_hosts;
      template = "base.img";
    }
  in
  let phases =
    match goal with
    | Some model -> [ "goal", model ]
    | None -> builtin_phases
  in
  let reports = ref [] in
  Common.run_scenario ~horizon:36_000. sim (fun () ->
      List.iter
        (fun (name, model) ->
          let report = Plan.Executor.converge platform ctx ~model in
          reports := (name, report) :: !reports)
        phases);
  {
    phases = List.rev !reports;
    stats = Tropic.Platform.leader_stats platform;
    trace = tracer;
  }

(* ------------------------------------------------------------------ *)

let print r =
  Common.section "Goal-state convergence: rolling upgrade";
  List.iter
    (fun (name, report) ->
      Printf.printf "phase %-14s %s\n" name (Plan.Executor.summary report);
      List.iter
        (fun ex ->
          Printf.printf "  round %d  %-52s -> %s\n" ex.Plan.Executor.ex_round
            (Plan.Planner.step_to_string ex.Plan.Executor.ex_step)
            (Plan.Executor.outcome_to_string ex.Plan.Executor.ex_outcome))
        report.Plan.Executor.history;
      List.iter
        (fun reason -> Printf.printf "  UNPLANNABLE: %s\n" reason)
        report.Plan.Executor.unplannable;
      List.iter
        (fun change ->
          Printf.printf "  RESIDUAL: %s\n" (Data.Diff.change_to_string change))
        report.Plan.Executor.residual)
    r.phases;
  Printf.printf
    "plan steps: committed=%d shed=%d aborted=%d skipped=%d rounds=%d\n"
    (total Plan.Executor.steps_committed r)
    (total Plan.Executor.steps_shed r)
    (total Plan.Executor.steps_aborted r)
    (total Plan.Executor.steps_skipped r)
    (total (fun rep -> rep.Plan.Executor.rounds) r);
  let s = r.stats in
  Printf.printf
    "controller: committed=%d aborted=%d failed=%d sheds=%d todo=%d\n%!"
    s.Tropic.Platform.ls_committed s.Tropic.Platform.ls_aborted
    s.Tropic.Platform.ls_failed s.Tropic.Platform.ls_sheds
    s.Tropic.Platform.ls_todo
