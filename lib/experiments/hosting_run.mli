(** The hosting-provider workload (§6.2–§6.4's driver) run end-to-end on a
    full-mode TCloud deployment, reporting the operation mix, outcomes and
    per-operation-type latency — the "realistic TCloud deployment" the
    paper mimics with this trace. *)

type op_stats = {
  op_name : string;
  submitted : int;
  committed : int;
  aborted : int;
  latency : Metrics.Cdf.t;
}

type result = {
  duration : float;
  rate : float;
  ops : op_stats list;
  deferrals : int;
  violations : int;
  layers_consistent : bool;
      (** every non-quarantined device equals its logical subtree at the
          end of the run *)
  sched : Common.sched_counters;  (** leader's wake-on-release counters *)
  robust : Common.robust_counters;  (** leader's retry/timeout/signal tallies *)
  phases : string;  (** per-phase p50/p99 breakdown (simulate/lock-wait/...) *)
  membership : string;  (** coordination membership/session counters *)
  trace : Trace.t option;  (** span recorder, when [record_trace] was set *)
}

(** Simulation seed used when [?seed] is not given. *)
val default_seed : int

(** [record_trace] (default false) attaches a span recorder to every
    controller and worker; the result then carries the trace. *)
val run :
  ?seed:int ->
  ?rate:float ->
  ?duration:float ->
  ?record_trace:bool ->
  unit ->
  result
val print : result -> unit
