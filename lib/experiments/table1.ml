let spawn_log () =
  let inv = Tcloud.Setup.build Tcloud.Setup.small in
  (* The VM is literally called vmName so the log reads like the paper's
     Table 1; base.img is the small deployment's image template. *)
  let args =
    Tcloud.Procs.spawn_vm_args ~vm:"vmName" ~template:"base.img" ~mem_mb:1024
      ~storage:(Data.Path.to_string (Tcloud.Setup.storage_path 0))
      ~host:(Data.Path.to_string (Tcloud.Setup.compute_path 0))
  in
  match
    Tropic.Logical.simulate inv.Tcloud.Setup.env ~tree:inv.Tcloud.Setup.tree
      ~proc:"spawnVM" ~args
  with
  | Ok { Tropic.Logical.log; _ } -> log
  | Error reason -> failwith reason

let print () =
  Common.section "Table 1: execution log for spawnVM";
  Printf.printf "%-3s %-28s %-14s %-28s %-14s %s\n" "#" "resource object path"
    "action" "args" "undo action" "undo args";
  List.iter
    (fun (r : Tropic.Xlog.record) ->
      Printf.printf "%-3d %-28s %-14s %-28s %-14s %s\n" r.Tropic.Xlog.index
        (Data.Path.to_string r.Tropic.Xlog.path)
        r.Tropic.Xlog.action
        (String.concat ", " (List.map Data.Value.to_string r.Tropic.Xlog.args))
        (Option.value r.Tropic.Xlog.undo ~default:"-")
        (String.concat ", "
           (List.map Data.Value.to_string r.Tropic.Xlog.undo_args)))
    (spawn_log ());
  print_newline ()
