(** Scriptable orchestration scenarios.

    A scenario is a small line-oriented script driving a fresh simulated
    TCloud deployment — spawn/start/stop/migrate/destroy VMs, inject
    faults, crash controllers, reconcile, and assert outcomes.  Scenarios
    double as reproducible bug reports and operator runbooks; the
    [tcloud_sim] binary runs one from a file.

    Grammar (one command per line, [#] starts a comment):

    {v
    hosts N | storage N | seed N | mode full|logical   (header, optional)
    admission HIGH LOW          (shed arrivals at HIGH pending, resume at LOW)
    spawn VM HOST [MEM_MB]      start VM HOST     stop VM HOST
    migrate VM SRC DST          destroy VM HOST
    vlan-create SWITCH ID NAME  vlan-attach SWITCH ID VM
    sleep SECONDS               power-cycle HOST
    fail-next HOST ACTION       kill-leader
    repair HOST                 reload HOST
    show HOST                   stats
    storm COUNT HOST            (fire-and-forget burst of small spawns)
    converge FILE               (drive the platform to the goal model in FILE)
    expect committed|aborted|overload|failed
    expect-converged
    v}

    [expect] asserts the outcome of the most recent transaction
    ([overload] matches only the admission-control shed abort).  A shed
    transaction never counts as an unexpected outcome even without an
    [expect] — load shedding is the platform protecting itself.

    [converge FILE] parses the {!Plan.Model} goal in [FILE] (resolved
    relative to the scenario file) and runs {!Plan.Executor.converge};
    [expect-converged] asserts the most recent [converge] ended
    [Converged].  A blocked convergence makes the run unhealthy even
    without the assertion. *)

type outcome = {
  lines : string list;   (** transcript, in order *)
  failed_expectations : int;
  transactions : int;
  unexpected_outcomes : int;
      (** transactions that ended aborted/failed with no [expect]
          acknowledging the outcome *)
  blocked_convergences : int;
      (** [converge] commands that ended blocked (residual drift after
          bounded re-planning) or whose goal file did not parse *)
  layers_consistent : bool;
      (** at the end of the run, every device matches its logical subtree
          or is quarantined awaiting reconciliation *)
  trace : Trace.t option;
      (** span recorder for the run when [record_trace] was set *)
}

(** Parse and execute a scenario.  [Error] is a parse problem (line number
    and message); execution problems surface in the transcript and the
    [failed_expectations] count.  [record_trace] (default false) attaches a
    {!Trace.t} to the platform and returns it in the outcome.  [base_dir]
    (default ["."]) anchors relative [converge] goal-file paths. *)
val run_script :
  ?record_trace:bool -> ?base_dir:string -> string -> (outcome, string) result

(** Convenience: read a file and {!run_script} it. *)
val run_file : ?record_trace:bool -> string -> (outcome, string) result
