module Schema = Devices.Schema

type scheduling_result = {
  fifo_makespan : float;
  aggressive_makespan : float;
  fifo_mean_latency : float;
  aggressive_mean_latency : float;
  fifo_sched : Common.sched_counters;
  aggressive_sched : Common.sched_counters;
  fifo_robust : Common.robust_counters;
  aggressive_robust : Common.robust_counters;
  fifo_phases : string;
  aggressive_phases : string;
}

type safety_result = {
  with_constraints_overcommitted_hosts : int;
  with_constraints_device_ops : int;
  without_constraints_overcommitted_hosts : int;
  without_constraints_device_ops : int;
}

type checkpoint_result = {
  txns_before_crash : int;
  recovery_with_checkpoint : float;
  recovery_without_checkpoint : float;
}

type result = {
  scheduling : scheduling_result;
  safety : safety_result;
  checkpointing : checkpoint_result;
}

let host i = Data.Path.to_string (Tcloud.Setup.compute_path i)
let storage i = Data.Path.to_string (Tcloud.Setup.storage_path i)

let spawn_args ~vm ~h ~storage_hosts =
  Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img" ~mem_mb:1024
    ~storage:(storage (h mod storage_hosts))
    ~host:(host h)

(* ------------------------------------------------------------------ *)
(* 1. FIFO vs aggressive scheduling *)

(* Four transactions contend on host 0 ahead of six independent ones: a
   strict FIFO keeps deferring the head and blocks the independents. *)
let scheduling_run ~seed policy =
  let sim = Des.Sim.create ~seed () in
  let size =
    { Tcloud.Setup.small with Tcloud.Setup.compute_hosts = 8; storage_hosts = 8 }
  in
  let inv = Tcloud.Setup.build size in
  let spec =
    {
      Tropic.Platform.default_spec with
      Tropic.Platform.mode = Tropic.Platform.Logical_only 1.0;
      workers = 8;
      controller_config =
        { Tropic.Controller.default_config with Tropic.Controller.scheduling = policy };
    }
  in
  let platform =
    Tropic.Platform.create spec inv.Tcloud.Setup.env
      ~initial_tree:inv.Tcloud.Setup.tree ~devices:inv.Tcloud.Setup.devices sim
  in
  let latencies = Metrics.Cdf.create () in
  let last_commit = ref 0. in
  Common.run_scenario ~horizon:600. sim (fun () ->
      (* Let elections settle so submission order is scheduling order. *)
      ignore (Tropic.Platform.await_leader_controller platform);
      Des.Proc.sleep 1.;
      let t0 = Des.Proc.now () in
      let submit_and_track vm h =
        let args = spawn_args ~vm ~h ~storage_hosts:8 in
        ignore
          (Des.Proc.spawn ~name:vm sim (fun () ->
               let id = Tropic.Platform.submit platform ~proc:"spawnVM" ~args in
               match Tropic.Platform.await platform id with
               | Tropic.Txn.Committed ->
                 let t = Des.Proc.now () in
                 Metrics.Cdf.add latencies (t -. t0);
                 if t -. t0 > !last_commit then last_commit := t -. t0
               | other ->
                 failwith
                   (Printf.sprintf "ablation txn not committed: %s"
                      (Tropic.Txn.state_to_string other))))
      in
      (* Hot head: four spawns on host 0... *)
      List.iteri (fun i () -> submit_and_track (Printf.sprintf "hot%d" i) 0)
        [ (); (); (); () ];
      (* ...queued ahead of six independent spawns. *)
      List.iteri (fun i () -> submit_and_track (Printf.sprintf "ind%d" i) (i + 1))
        [ (); (); (); (); (); () ];
      (* Wait for all ten to finish. *)
      while Metrics.Cdf.count latencies < 10 do
        Des.Proc.sleep 0.5
      done);
  ( !last_commit,
    Metrics.Cdf.mean latencies,
    Common.sched_counters platform,
    Common.robust_counters platform,
    Common.phase_summary platform )

let scheduling_ablation ~seed () =
  let fifo_makespan, fifo_mean_latency, fifo_sched, fifo_robust, fifo_phases =
    scheduling_run ~seed `Fifo
  in
  let ( aggressive_makespan,
        aggressive_mean_latency,
        aggressive_sched,
        aggressive_robust,
        aggressive_phases ) =
    scheduling_run ~seed `Aggressive
  in
  {
    fifo_makespan;
    aggressive_makespan;
    fifo_mean_latency;
    aggressive_mean_latency;
    fifo_sched;
    aggressive_sched;
    fifo_robust;
    aggressive_robust;
    fifo_phases;
    aggressive_phases;
  }

(* ------------------------------------------------------------------ *)
(* 2. Logical-first safety vs device-only execution *)

let total_device_ops inv =
  List.fold_left
    (fun acc device -> acc + Devices.Device.ops device)
    0 inv.Tcloud.Setup.devices

let overcommitted_hosts inv =
  Array.fold_left
    (fun acc (_, compute) ->
      if Devices.Compute.used_mem_mb compute > Devices.Compute.mem_mb compute
      then acc + 1
      else acc)
    0 inv.Tcloud.Setup.computes

let safety_run ~seed ~with_constraints =
  let sim = Des.Sim.create ~seed () in
  let size =
    { Tcloud.Setup.small with Tcloud.Setup.storage_capacity_mb = 5_000_000 }
  in
  let inv = Tcloud.Setup.build size in
  let env =
    if with_constraints then inv.Tcloud.Setup.env
    else begin
      let env = Tropic.Dsl.create_env () in
      Tcloud.Actions.register_all env;
      Tcloud.Procs.register_all env;
      env
    end
  in
  let platform =
    Tropic.Platform.create
      { Tropic.Platform.default_spec with Tropic.Platform.workers = 4 }
      env ~initial_tree:inv.Tcloud.Setup.tree
      ~devices:inv.Tcloud.Setup.devices sim
  in
  Common.run_scenario ~horizon:3_000. sim (fun () ->
      (* Twelve 1 GB spawns against one 8 GB host. *)
      let ids =
        List.init 12 (fun k ->
            Tropic.Platform.submit platform ~proc:"spawnVM"
              ~args:(spawn_args ~vm:(Printf.sprintf "oc%02d" k) ~h:0 ~storage_hosts:2))
      in
      List.iter (fun id -> ignore (Tropic.Platform.await platform id)) ids);
  (overcommitted_hosts inv, total_device_ops inv)

let safety_ablation ~seed () =
  let with_oc, with_ops = safety_run ~seed ~with_constraints:true in
  let without_oc, without_ops = safety_run ~seed ~with_constraints:false in
  {
    with_constraints_overcommitted_hosts = with_oc;
    with_constraints_device_ops = with_ops;
    without_constraints_overcommitted_hosts = without_oc;
    without_constraints_device_ops = without_ops;
  }

(* ------------------------------------------------------------------ *)
(* 3. Checkpointed vs full-replay recovery *)

let recovery_run ~seed ~checkpoint_every ~txns =
  let sim = Des.Sim.create ~seed () in
  let size =
    {
      Tcloud.Setup.small with
      Tcloud.Setup.compute_hosts = 64;
      storage_hosts = 16;
      storage_capacity_mb = 50_000_000;
    }
  in
  let inv = Tcloud.Setup.build size in
  let spec =
    {
      Tropic.Platform.default_spec with
      Tropic.Platform.mode = Tropic.Platform.Logical_only 0.002;
      workers = 4;
      controller_session_timeout = 2.0;
      controller_config =
        {
          Tropic.Controller.default_config with
          Tropic.Controller.checkpoint_every;
        };
    }
  in
  let platform =
    Tropic.Platform.create spec inv.Tcloud.Setup.env
      ~initial_tree:inv.Tcloud.Setup.tree ~devices:inv.Tcloud.Setup.devices sim
  in
  let recovery = ref Float.nan in
  Common.run_scenario ~horizon:4_000. sim (fun () ->
      for k = 0 to txns - 1 do
        let h = k mod size.Tcloud.Setup.compute_hosts in
        ignore
          (Tropic.Platform.run_txn platform ~proc:"spawnVM"
             ~args:
               (spawn_args ~vm:(Printf.sprintf "ck%04d" k) ~h ~storage_hosts:16))
      done;
      let leader = Tropic.Platform.await_leader_controller platform in
      let index =
        let found = ref (-1) in
        Array.iteri
          (fun i c -> if c == leader then found := i)
          (Tropic.Platform.controllers platform);
        !found
      in
      let t_kill = Des.Proc.now () in
      Tropic.Platform.kill_controller platform index;
      (* Probe: the first transaction to commit marks recovery done. *)
      let probe =
        Tropic.Platform.run_txn platform ~proc:"spawnVM"
          ~args:(spawn_args ~vm:"probe" ~h:0 ~storage_hosts:16)
      in
      (match probe with
       | Tropic.Txn.Committed -> ()
       | other ->
         failwith ("probe not committed: " ^ Tropic.Txn.state_to_string other));
      recovery := Des.Proc.now () -. t_kill);
  !recovery

let checkpoint_ablation ~seed () =
  let txns = 400 in
  {
    txns_before_crash = txns;
    recovery_with_checkpoint =
      recovery_run ~seed ~checkpoint_every:(Some 50) ~txns;
    recovery_without_checkpoint = recovery_run ~seed ~checkpoint_every:None ~txns;
  }

let default_seed = 71

(* The three sub-experiments historically ran on seeds 71/72/73; keep
   that spacing relative to whatever base seed the caller picks. *)
let run ?(seed = default_seed) () =
  {
    scheduling = scheduling_ablation ~seed ();
    safety = safety_ablation ~seed:(seed + 1) ();
    checkpointing = checkpoint_ablation ~seed:(seed + 2) ();
  }

let print r =
  Common.section "Ablation 1: FIFO vs aggressive scheduling (hot head-of-line)";
  Printf.printf
    "FIFO:       makespan %.2f s, mean latency %.2f s  (%s | %s | %s)\nAggressive: makespan %.2f s, mean latency %.2f s  (%s | %s | %s)\n"
    r.scheduling.fifo_makespan r.scheduling.fifo_mean_latency
    (Common.sched_summary r.scheduling.fifo_sched)
    (Common.robust_summary r.scheduling.fifo_robust)
    r.scheduling.fifo_phases
    r.scheduling.aggressive_makespan r.scheduling.aggressive_mean_latency
    (Common.sched_summary r.scheduling.aggressive_sched)
    (Common.robust_summary r.scheduling.aggressive_robust)
    r.scheduling.aggressive_phases;
  Common.section "Ablation 2: logical-first safety vs device-only execution";
  Printf.printf
    "with constraints:    %d overcommitted hosts, %d device ops\nwithout constraints: %d overcommitted hosts, %d device ops\n"
    r.safety.with_constraints_overcommitted_hosts
    r.safety.with_constraints_device_ops
    r.safety.without_constraints_overcommitted_hosts
    r.safety.without_constraints_device_ops;
  Common.section "Ablation 3: checkpointed vs full-replay recovery";
  Printf.printf
    "%d txns before crash: recovery %.2f s with checkpoints, %.2f s with full replay\n%!"
    r.checkpointing.txns_before_crash
    r.checkpointing.recovery_with_checkpoint
    r.checkpointing.recovery_without_checkpoint
