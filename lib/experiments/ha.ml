type result = {
  session_timeout : float;
  kill_time : float;
  new_leader_time : float;
  first_commit_after : float;
  takeover_seconds : float;
  recovery_seconds : float;
  submitted : int;
  committed : int;
  aborted : int;
  lost : int;
  sched : Common.sched_counters;
  robust : Common.robust_counters;
  phases : string;
  membership : string;
}

(* Historical seed of this experiment's runs; --seed overrides it. *)
let default_seed = 64

let run ?(seed = default_seed) ?(session_timeout = 10.) ?(rate = 2.)
    ?(kill_at = 60.) ?(duration = 180.) () =
  let sim = Des.Sim.create ~seed () in
  let size =
    {
      Tcloud.Setup.small with
      Tcloud.Setup.compute_hosts = 64;
      storage_hosts = 16;
      storage_capacity_mb = 5_000_000;
    }
  in
  let inv = Tcloud.Setup.build size in
  let spec =
    {
      Tropic.Platform.default_spec with
      Tropic.Platform.mode = Tropic.Platform.Logical_only 0.005;
      workers = 4;
      controller_config = Tcloud.Setup.controller_config;
      controller_session_timeout = session_timeout;
    }
  in
  let platform =
    Tropic.Platform.create spec inv.Tcloud.Setup.env
      ~initial_tree:inv.Tcloud.Setup.tree ~devices:inv.Tcloud.Setup.devices sim
  in
  let submitted = ref 0 and committed = ref 0 and aborted = ref 0 in
  let kill_time = ref 0. in
  let new_leader_time = ref Float.nan in
  let first_commit_after = ref Float.nan in
  (* Killer process: waits, then crashes whoever currently leads, then
     records when a different controller takes over. *)
  let killer () =
    Des.Proc.sleep kill_at;
    let leader = Tropic.Platform.await_leader_controller platform in
    let index =
      let found = ref (-1) in
      Array.iteri
        (fun i c -> if c == leader then found := i)
        (Tropic.Platform.controllers platform);
      !found
    in
    kill_time := Des.Proc.now ();
    Tropic.Platform.kill_controller platform index;
    let rec wait_new () =
      match Tropic.Platform.leader_controller platform with
      | Some c when c != leader -> new_leader_time := Des.Proc.now ()
      | Some _ | None ->
        Des.Proc.sleep 0.05;
        wait_new ()
    in
    wait_new ()
  in
  (* Open-loop submission at a constant rate; every transaction is awaited
     so losses are observable. *)
  let host i = Data.Path.to_string (Tcloud.Setup.compute_path i) in
  let storage i = Data.Path.to_string (Tcloud.Setup.storage_path i) in
  let generator () =
    let gap = 1. /. rate in
    let count = int_of_float (duration *. rate) in
    for k = 0 to count - 1 do
      incr submitted;
      let h = k mod size.Tcloud.Setup.compute_hosts in
      let args =
        Tcloud.Procs.spawn_vm_args
          ~vm:(Printf.sprintf "ha%05d" k)
          ~template:"base.img" ~mem_mb:512
          ~storage:(storage (h mod size.Tcloud.Setup.storage_hosts))
          ~host:(host h)
      in
      ignore
        (Des.Proc.spawn ~name:(Printf.sprintf "ha-sub-%d" k) sim (fun () ->
             let id = Tropic.Platform.submit platform ~proc:"spawnVM" ~args in
             match Tropic.Platform.await platform id with
             | Tropic.Txn.Committed ->
               incr committed;
               let t = Des.Proc.now () in
               if
                 t > !kill_time && !kill_time > 0.
                 && Float.is_nan !first_commit_after
               then first_commit_after := t
             | Tropic.Txn.Aborted _ -> incr aborted
             | _ -> ()));
      Des.Proc.sleep gap
    done
  in
  Common.run_scenario ~horizon:(duration +. 120.) sim (fun () ->
      ignore (Des.Proc.spawn ~name:"killer" sim killer);
      generator ());
  {
    session_timeout;
    kill_time = !kill_time;
    new_leader_time = !new_leader_time;
    first_commit_after = !first_commit_after;
    takeover_seconds = !new_leader_time -. !kill_time;
    recovery_seconds = !first_commit_after -. !kill_time;
    submitted = !submitted;
    committed = !committed;
    aborted = !aborted;
    lost = !submitted - !committed - !aborted;
    sched = Common.sched_counters platform;
    robust = Common.robust_counters platform;
    phases = Common.phase_summary platform;
    membership = Common.membership_summary platform;
  }

let print r =
  Common.section "§6.4 High availability: controller fail-over";
  Printf.printf "session timeout (failure detection): %.1f s\n" r.session_timeout;
  Printf.printf "leader killed at t=%.1f s\n" r.kill_time;
  Printf.printf "new leader elected after %.2f s\n" r.takeover_seconds;
  Printf.printf
    "transactions flowing again after %.2f s (paper: within 12.5 s)\n"
    r.recovery_seconds;
  Printf.printf "submitted=%d committed=%d aborted=%d lost=%d (paper: 0 lost)\n"
    r.submitted r.committed r.aborted r.lost;
  Printf.printf "%s\n%s\n%s\n%s\n%!" (Common.sched_summary r.sched)
    (Common.robust_summary r.robust) r.phases r.membership
