(** The performance experiments of §6.1: Figures 3, 4 and 5.

    One {!run} drives the synthetic EC2 trace (scaled 1×–5×) through a
    full TROPIC deployment in logical-only mode at the paper's scale
    (12 500 compute hosts / 100 000 VM slots), and collects the controller
    CPU-utilization series (Fig. 4), the coordination-service I/O
    utilization (the bottleneck the paper identifies), and the
    per-transaction latency distribution (Fig. 5). *)

type config = {
  multiplier : int;       (** workload scale, 1–5 *)
  hosts : int;            (** compute hosts (12 500 = paper scale) *)
  window_start : int;     (** first trace second to use *)
  duration : int;         (** seconds of trace to replay *)
  bucket : float;         (** series bucket width (60 s in the paper) *)
  drain : float;          (** extra time to let the backlog finish *)
  seed : int;
}

val default_config : config

(** Shrunk variant for TROPIC_BENCH_QUICK: 600 s around the peak, 2 000
    hosts. *)
val quick_config : config

type result = {
  cfg : config;
  offered : int;
  committed : int;
  aborted : int;
  failed : int;
  lost : int;                     (** non-terminal at the end (must be 0) *)
  cpu_util : Metrics.Series.t;    (** controller CPU utilization, 0–1 *)
  coord_util : Metrics.Series.t;  (** coordination leader I/O utilization *)
  latency : Metrics.Cdf.t;
  sim_events : int;
  wall_seconds : float;
  sched : Common.sched_counters;  (** leader's wake-on-release counters *)
  robust : Common.robust_counters;  (** leader's retry/timeout/signal tallies *)
  phases : string;  (** per-phase p50/p99 latency breakdown *)
}

val run : config -> result

(** Deployment size the perf runs use (also reused by {!Scale}). *)
val deployment_size : config -> Tcloud.Setup.size

(** The logical-only platform spec of the §6.1 runs. *)
val platform_spec : Tropic.Platform.spec

(** Fig. 3 needs no simulation: the workload itself. *)
val fig3_series : ?seed:int -> bucket:float -> unit -> Metrics.Series.t

val print_fig3 : unit -> unit

(** Run multipliers 1..n and print Fig. 4 / Fig. 5 style output. *)
val print_fig4_fig5 : ?multipliers:int list -> config -> unit
