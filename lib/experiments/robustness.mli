(** §6.3 — robustness: transaction rollback under injected errors.

    The paper injects exceptions into the last step of VM spawn and
    migrate and reports the logical-layer rollback completing in < 9 ms
    per transaction.  This experiment measures (a) the real OCaml cost of
    logical rollback for spawn and migrate logs, and (b) an end-to-end
    fault-injection run on a full platform: every injected error must end
    in a clean [Aborted] with both layers rolled back. *)

type micro = {
  iterations : int;
  spawn_rollback_us : float;
  migrate_rollback_us : float;
}

type e2e = {
  injected : int;
  aborted : int;       (** transactions that rolled back cleanly *)
  committed : int;     (** control transactions without faults *)
  residue : int;       (** VMs left behind on devices by aborted txns *)
}

type result = { micro : micro; e2e : e2e }

(** Simulation seed used when [?seed] is not given (end-to-end part only;
    the micro-benchmark is deterministic). *)
val default_seed : int

val run : ?seed:int -> ?iterations:int -> ?injections:int -> unit -> result
val print : result -> unit
