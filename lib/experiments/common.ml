let run_scenario ?(horizon = 36_000.) sim body =
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"experiment" sim (fun () ->
         body ();
         finished := true));
  ignore (Des.Sim.run ~until:horizon sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     failwith
       (Printf.sprintf "process %s crashed: %s" who (Printexc.to_string exn)));
  if not !finished then failwith "experiment did not finish before horizon"

let time_it f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let quick_mode () =
  match Sys.getenv_opt "TROPIC_BENCH_QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

type sched_counters = {
  sc_committed : int;
  sc_deferrals : int;
  sc_wakeups : int;
  sc_spurious : int;
  sc_retries_saved : int;
}

let zero_sched_counters =
  {
    sc_committed = 0;
    sc_deferrals = 0;
    sc_wakeups = 0;
    sc_spurious = 0;
    sc_retries_saved = 0;
  }

let sched_counters platform =
  match Tropic.Platform.leader_controller platform with
  | None -> zero_sched_counters
  | Some c ->
    let st = Tropic.Controller.stats c in
    {
      sc_committed = st.Tropic.Controller.committed;
      sc_deferrals = st.Tropic.Controller.deferrals;
      sc_wakeups = st.Tropic.Controller.wakeups;
      sc_spurious = st.Tropic.Controller.spurious_wakeups;
      sc_retries_saved = st.Tropic.Controller.retries_saved;
    }

type robust_counters = {
  rc_retries : int;
  rc_transient : int;
  rc_timeouts : int;
  rc_terms : int;
  rc_kills : int;
  rc_auto_terms : int;
  rc_auto_kills : int;
  rc_sheds : int;
  rc_breaker_deferrals : int;
  rc_breaker_trips : int;
  rc_breaker_probes : int;
  rc_breaker_closes : int;
}

let zero_robust_counters =
  {
    rc_retries = 0;
    rc_transient = 0;
    rc_timeouts = 0;
    rc_terms = 0;
    rc_kills = 0;
    rc_auto_terms = 0;
    rc_auto_kills = 0;
    rc_sheds = 0;
    rc_breaker_deferrals = 0;
    rc_breaker_trips = 0;
    rc_breaker_probes = 0;
    rc_breaker_closes = 0;
  }

let robust_counters platform =
  match Tropic.Platform.leader_controller platform with
  | None -> zero_robust_counters
  | Some c ->
    let st = Tropic.Controller.stats c in
    {
      rc_retries = st.Tropic.Controller.exec_retries;
      rc_transient = st.Tropic.Controller.transient_failures;
      rc_timeouts = st.Tropic.Controller.timeouts;
      rc_terms = st.Tropic.Controller.terms;
      rc_kills = st.Tropic.Controller.kills;
      rc_auto_terms = st.Tropic.Controller.auto_terms;
      rc_auto_kills = st.Tropic.Controller.auto_kills;
      rc_sheds = st.Tropic.Controller.sheds;
      rc_breaker_deferrals = st.Tropic.Controller.breaker_deferrals;
      rc_breaker_trips = st.Tropic.Controller.breaker_trips;
      rc_breaker_probes = st.Tropic.Controller.breaker_probes;
      rc_breaker_closes = st.Tropic.Controller.breaker_closes;
    }

let robust_summary c =
  Printf.sprintf
    "robust: retries %d (%d transient, %d timeouts), signals %d TERM / %d \
     KILL (watchdog %d/%d), shed %d, breaker %d trips / %d probes / %d \
     closes (%d deferred)"
    c.rc_retries c.rc_transient c.rc_timeouts c.rc_terms c.rc_kills
    c.rc_auto_terms c.rc_auto_kills c.rc_sheds c.rc_breaker_trips
    c.rc_breaker_probes c.rc_breaker_closes c.rc_breaker_deferrals

let membership_summary platform =
  let m = Tropic.Platform.membership_stats platform in
  Printf.sprintf
    "membership: %d joins / %d leaves / %d catchups, %d stale sessions \
     rejected"
    m.Coord.Types.joins m.Coord.Types.leaves m.Coord.Types.catchups
    m.Coord.Types.stale_sessions_rejected

(* Group-commit batching telemetry: flush counts by trigger, the mean and
   max flushed batch size, ack discipline, and the power-of-two batch-size
   histogram (bucket i covers sizes [2^i, 2^(i+1))). *)
let group_summary platform =
  let g = Tropic.Platform.group_commit_stats platform in
  let mean_batch =
    if g.Coord.Types.flushes = 0 then 0.
    else
      float_of_int g.Coord.Types.batched_cmds
      /. float_of_int g.Coord.Types.flushes
  in
  let hist =
    String.concat ","
      (Array.to_list (Array.map string_of_int g.Coord.Types.batch_hist))
  in
  Printf.sprintf
    "group-commit: %d flushes (%d full, %d timeout), %d cmds batched, mean \
     batch %.1f (max %d), acks %d deferred / %d unsafe, hist [%s]"
    g.Coord.Types.flushes g.Coord.Types.flush_full g.Coord.Types.flush_timeout
    g.Coord.Types.batched_cmds mean_batch g.Coord.Types.max_batch
    g.Coord.Types.acks_deferred g.Coord.Types.unsafe_acks hist

(* Per-phase p50/p99 breakdown from the leader's recorders; empty phases
   print n/a rather than a placeholder 0. *)
let phase_summary platform =
  match Tropic.Platform.leader_controller platform with
  | None ->
    "phases[p50/p99 s]: simulate n/a, lock-wait n/a, replay n/a, undo n/a"
  | Some c -> Tropic.Controller.phase_summary (Tropic.Controller.stats c)

(* Shared by the binaries' --trace flags: persist the Chrome-format trace
   and report any lifecycle-invariant violations the recorder saw. *)
let dump_trace tracer ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Trace.to_chrome_json tracer));
  Trace.Check.validate tracer

let sched_summary c =
  let per_commit =
    if c.sc_committed = 0 then 0.
    else float_of_int c.sc_deferrals /. float_of_int c.sc_committed
  in
  Printf.sprintf
    "sched: deferrals/commit %.3f (%d/%d), wakeups %d (%d spurious), retries saved %d"
    per_commit c.sc_deferrals c.sc_committed c.sc_wakeups c.sc_spurious
    c.sc_retries_saved
