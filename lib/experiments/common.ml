let run_scenario ?(horizon = 36_000.) sim body =
  let finished = ref false in
  ignore
    (Des.Proc.spawn ~name:"experiment" sim (fun () ->
         body ();
         finished := true));
  ignore (Des.Sim.run ~until:horizon sim);
  (match Des.Sim.failures sim with
   | [] -> ()
   | (who, exn) :: _ ->
     failwith
       (Printf.sprintf "process %s crashed: %s" who (Printexc.to_string exn)));
  if not !finished then failwith "experiment did not finish before horizon"

let time_it f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let quick_mode () =
  match Sys.getenv_opt "TROPIC_BENCH_QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false
