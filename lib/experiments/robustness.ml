module Schema = Devices.Schema

type micro = {
  iterations : int;
  spawn_rollback_us : float;
  migrate_rollback_us : float;
}

type e2e = {
  injected : int;
  aborted : int;
  committed : int;
  residue : int;
}

type result = { micro : micro; e2e : e2e }

let host i = Data.Path.to_string (Tcloud.Setup.compute_path i)
let storage i = Data.Path.to_string (Tcloud.Setup.storage_path i)

(* ------------------------------------------------------------------ *)
(* Micro: cost of Logical.rollback on spawn / migrate logs *)

let rollback_us env ~tree ~proc ~args iterations =
  match Tropic.Logical.simulate env ~tree ~proc ~args with
  | Error reason -> failwith reason
  | Ok { Tropic.Logical.new_tree; log; _ } ->
    let (), seconds =
      Common.time_it (fun () ->
          for _ = 1 to iterations do
            match Tropic.Logical.rollback env ~tree:new_tree ~log with
            | Ok _ -> ()
            | Error (_, reason) -> failwith reason
          done)
    in
    seconds /. float_of_int iterations *. 1e6

let micro_run iterations =
  let size =
    { Tcloud.Setup.small with Tcloud.Setup.prepopulated_vms_per_host = 2 }
  in
  let inv = Tcloud.Setup.build size in
  let env = inv.Tcloud.Setup.env in
  let tree = inv.Tcloud.Setup.tree in
  let spawn_rollback_us =
    rollback_us env ~tree ~proc:"spawnVM"
      ~args:
        (Tcloud.Procs.spawn_vm_args ~vm:"rb1" ~template:"base.img" ~mem_mb:1024
           ~storage:(storage 0) ~host:(host 0))
      iterations
  in
  let migrate_rollback_us =
    rollback_us env ~tree ~proc:"migrateVM"
      ~args:
        (Tcloud.Procs.migrate_vm_args ~src:(host 0) ~dst:(host 2)
           ~vm:(Tcloud.Setup.prepop_vm_name ~host:0 ~index:0))
      iterations
  in
  { iterations; spawn_rollback_us; migrate_rollback_us }

(* ------------------------------------------------------------------ *)
(* End to end: inject faults into the last spawn step on a live platform *)

let e2e_run ~seed injections =
  let sim = Des.Sim.create ~seed () in
  let size =
    { Tcloud.Setup.small with Tcloud.Setup.compute_hosts = 8; storage_hosts = 4 }
  in
  let inv = Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim) size in
  let spec =
    {
      Tropic.Platform.default_spec with
      Tropic.Platform.workers = 4;
      controller_config = Tcloud.Setup.controller_config;
      controller_session_timeout = 3.0;
    }
  in
  let platform =
    Tropic.Platform.create spec inv.Tcloud.Setup.env
      ~initial_tree:inv.Tcloud.Setup.tree ~devices:inv.Tcloud.Setup.devices sim
  in
  let aborted = ref 0 and committed = ref 0 in
  Common.run_scenario ~horizon:36_000. sim (fun () ->
      for k = 0 to injections - 1 do
        let h = k mod size.Tcloud.Setup.compute_hosts in
        let _, compute = inv.Tcloud.Setup.computes.(h) in
        (* The last step of spawnVM is startVM: fail it once. *)
        Devices.Fault.fail_next
          (Devices.Device.faults (Devices.Compute.device compute))
          ~action:Schema.act_start_vm;
        let args =
          Tcloud.Procs.spawn_vm_args
            ~vm:(Printf.sprintf "inj%04d" k)
            ~template:"base.img" ~mem_mb:512
            ~storage:(storage (h mod size.Tcloud.Setup.storage_hosts))
            ~host:(host h)
        in
        (match Tropic.Platform.run_txn platform ~proc:"spawnVM" ~args with
         | Tropic.Txn.Aborted _ -> incr aborted
         | Tropic.Txn.Committed -> incr committed
         | Tropic.Txn.Failed _ | Tropic.Txn.Initialized | Tropic.Txn.Accepted
         | Tropic.Txn.Deferred | Tropic.Txn.Started ->
           ());
        (* A control transaction without fault injection must commit. *)
        let control_args =
          Tcloud.Procs.spawn_vm_args
            ~vm:(Printf.sprintf "ok%04d" k)
            ~template:"base.img" ~mem_mb:512
            ~storage:(storage (h mod size.Tcloud.Setup.storage_hosts))
            ~host:(host h)
        in
        match Tropic.Platform.run_txn platform ~proc:"spawnVM" ~args:control_args with
        | Tropic.Txn.Committed -> incr committed
        | _ -> ()
      done);
  (* Residue: any injNNNN VM still present on a device. *)
  let residue =
    Array.fold_left
      (fun acc (_, compute) ->
        acc
        + List.length
            (List.filter
               (fun name -> String.length name >= 3 && String.sub name 0 3 = "inj")
               (Devices.Compute.vm_names compute)))
      0 inv.Tcloud.Setup.computes
  in
  { injected = injections; aborted = !aborted; committed = !committed; residue }

let default_seed = 63

let run ?(seed = default_seed) ?(iterations = 20_000) ?(injections = 20) () =
  { micro = micro_run iterations; e2e = e2e_run ~seed injections }

let print r =
  Common.section "§6.3 Robustness: rollback under injected errors";
  Printf.printf
    "logical rollback: spawn %.2f us, migrate %.2f us per txn (paper: < 9 ms)\n"
    r.micro.spawn_rollback_us r.micro.migrate_rollback_us;
  Printf.printf
    "end-to-end: %d faults injected at the last spawn step -> %d clean aborts, %d control commits, %d leftover VMs on devices\n%!"
    r.e2e.injected r.e2e.aborted r.e2e.committed r.e2e.residue
