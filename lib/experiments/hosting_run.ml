type op_stats = {
  op_name : string;
  submitted : int;
  committed : int;
  aborted : int;
  latency : Metrics.Cdf.t;
}

type result = {
  duration : float;
  rate : float;
  ops : op_stats list;
  deferrals : int;
  violations : int;
  layers_consistent : bool;
  sched : Common.sched_counters;
  robust : Common.robust_counters;
  phases : string;
  membership : string;
  trace : Trace.t option;
}

let op_names = [ "spawnVM"; "startVM"; "stopVM"; "migrateVM"; "destroyVM" ]

let layers_consistent platform inv =
  match Tropic.Platform.leader_controller platform with
  | None -> false
  | Some leader ->
    let quarantined = Tropic.Controller.quarantined leader in
    let tree = Tropic.Controller.tree leader in
    List.for_all
      (fun device ->
        let root = Devices.Device.root device in
        List.exists (fun q -> Data.Path.is_prefix q root) quarantined
        ||
        match Data.Tree.subtree tree root with
        | Error _ -> false
        | Ok logical ->
          Data.Tree.equal logical (Devices.Device.export device))
      inv.Tcloud.Setup.devices

let default_seed = 97

let run ?(seed = default_seed) ?(rate = 1.0) ?(duration = 300.)
    ?(record_trace = false) () =
  let sim = Des.Sim.create ~seed () in
  let tracer = if record_trace then Some (Trace.create ~sim ()) else None in
  let size =
    {
      Tcloud.Setup.small with
      Tcloud.Setup.compute_hosts = 16;
      storage_hosts = 4;
      storage_capacity_mb = 50_000_000;
    }
  in
  let inv = Tcloud.Setup.build ~rng:(Des.Sim.rng sim) size in
  let platform =
    Tropic.Platform.create
      {
        Tropic.Platform.default_spec with
        Tropic.Platform.workers = 4;
        controller_config = Tcloud.Setup.controller_config;
        trace = tracer;
      }
      inv.Tcloud.Setup.env ~initial_tree:inv.Tcloud.Setup.tree
      ~devices:inv.Tcloud.Setup.devices sim
  in
  let stats =
    List.map
      (fun op_name ->
        ( op_name,
          ref 0,
          ref 0,
          ref 0,
          Metrics.Cdf.create () ))
      op_names
  in
  let find name =
    List.find (fun (n, _, _, _, _) -> String.equal n name) stats
  in
  let workload_config =
    {
      Workload.Hosting.default_config with
      Workload.Hosting.rate_per_second = rate;
      duration_seconds = duration;
      compute_hosts = size.Tcloud.Setup.compute_hosts;
      storage_hosts = size.Tcloud.Setup.storage_hosts;
      hypervisor_groups = List.length size.Tcloud.Setup.hypervisors;
      vm_mem_mb = 1024;
    }
  in
  let ops = Workload.Hosting.generate ~seed workload_config in
  Common.run_scenario ~horizon:(duration +. 3_600.) sim (fun () ->
      (* Ops are issued in trace order; each is awaited so the generated
         stream stays well-formed (a start only follows its spawn). *)
      List.iter
        (fun (at, op) ->
          let now = Des.Proc.now () in
          if at > now then Des.Proc.sleep (at -. now);
          let proc, args =
            Workload.Hosting.to_submission
              ~host_path:(fun i ->
                Data.Path.to_string (Tcloud.Setup.compute_path i))
              ~storage_path:(fun i ->
                Data.Path.to_string (Tcloud.Setup.storage_path i))
              op
          in
          let _, submitted, committed, aborted, latency = find proc in
          incr submitted;
          let t0 = Des.Proc.now () in
          (match Tropic.Platform.run_txn platform ~proc ~args with
           | Tropic.Txn.Committed ->
             incr committed;
             Metrics.Cdf.add latency (Des.Proc.now () -. t0)
           | Tropic.Txn.Aborted _ -> incr aborted
           | Tropic.Txn.Failed _ | Tropic.Txn.Initialized | Tropic.Txn.Accepted
           | Tropic.Txn.Deferred | Tropic.Txn.Started ->
             ()))
        ops);
  let controller_stats =
    match Tropic.Platform.leader_controller platform with
    | Some c -> Tropic.Controller.stats c
    | None -> failwith "no leader at end of run"
  in
  {
    duration;
    rate;
    ops =
      List.map
        (fun (op_name, submitted, committed, aborted, latency) ->
          { op_name; submitted = !submitted; committed = !committed;
            aborted = !aborted; latency })
        stats;
    deferrals = controller_stats.Tropic.Controller.deferrals;
    violations = controller_stats.Tropic.Controller.violations;
    layers_consistent = layers_consistent platform inv;
    sched = Common.sched_counters platform;
    robust = Common.robust_counters platform;
    phases = Common.phase_summary platform;
    membership = Common.membership_summary platform;
    trace = tracer;
  }

let print r =
  Common.section
    (Printf.sprintf
       "Hosting workload (TCloud deployment): %.0f s at %.1f op/s" r.duration
       r.rate);
  Printf.printf "%-10s %10s %10s %8s %12s %12s\n" "operation" "submitted"
    "committed" "aborted" "median (s)" "p95 (s)";
  List.iter
    (fun s ->
      let q p =
        if Metrics.Cdf.count s.latency = 0 then Float.nan
        else Metrics.Cdf.quantile s.latency p
      in
      Printf.printf "%-10s %10d %10d %8d %12.2f %12.2f\n" s.op_name s.submitted
        s.committed s.aborted (q 0.5) (q 0.95))
    r.ops;
  Printf.printf
    "lock-conflict deferrals: %d; constraint violations: %d; layers consistent at end: %b\n"
    r.deferrals r.violations r.layers_consistent;
  Printf.printf "%s\n%s\n%s\n%s\n%!" (Common.sched_summary r.sched)
    (Common.robust_summary r.robust) r.phases r.membership
