(** §6.4 — high availability: controller fail-over.

    A steady transaction stream runs against three controllers; the lead
    controller is killed mid-stream.  The paper reports recovery within
    12.5 s — dominated by ZooKeeper's failure-detection (session) timeout —
    with no transaction submitted during recovery lost.  We measure the
    same three quantities: time until a new controller leads, time until
    it resumes committing, and the number of lost transactions. *)

type result = {
  session_timeout : float;
  kill_time : float;
  new_leader_time : float;        (** simulation time a new leader led *)
  first_commit_after : float;     (** first commit by the new leader *)
  takeover_seconds : float;       (** new_leader_time - kill_time *)
  recovery_seconds : float;       (** first_commit_after - kill_time *)
  submitted : int;
  committed : int;
  aborted : int;
  lost : int;                     (** must be 0 *)
  sched : Common.sched_counters;  (** surviving leader's wake counters *)
  robust : Common.robust_counters;
      (** surviving leader's retry/timeout/signal tallies *)
  phases : string;  (** per-phase p50/p99 latency breakdown *)
  membership : string;  (** coordination membership/session counters *)
}

(** Simulation seed used when [?seed] is not given. *)
val default_seed : int

val run :
  ?seed:int -> ?session_timeout:float -> ?rate:float -> ?kill_at:float ->
  ?duration:float -> unit -> result

val print : result -> unit
