type throughput_point = {
  hosts : int;
  offered : int;
  committed : int;
  throughput_per_s : float;
  median_latency : float;
  sched : Common.sched_counters;
  robust : Common.robust_counters;
  phases : string;
}

type memory_point = {
  resources : int;
  live_bytes : int;
  bytes_per_resource : float;
}

type result = {
  throughput : throughput_point list;
  memory : memory_point list;
  projected_resources_32gb : float;
}

(* Constant offered load against deployments of increasing size: the
   throughput and latency should not depend on the resource count. *)
let throughput_point ~seed ~rate ~duration hosts =
  let cfg =
    {
      Perf.default_config with
      Perf.hosts;
      duration = int_of_float duration;
      window_start = 0;
      bucket = 30.;
      drain = 120.;
    }
  in
  (* Replace the EC2 trace with a flat one at [rate]: reuse the perf runner
     by scaling time windows is messy, so drive directly. *)
  let sim = Des.Sim.create ~seed:(hosts + seed) () in
  let size = Perf.deployment_size cfg in
  let inv = Tcloud.Setup.build size in
  let platform =
    Tropic.Platform.create Perf.platform_spec inv.Tcloud.Setup.env
      ~initial_tree:inv.Tcloud.Setup.tree ~devices:inv.Tcloud.Setup.devices sim
  in
  let latency = Metrics.Cdf.create () in
  let committed = ref 0 and offered = ref 0 in
  let first_commit = ref Float.nan and last_commit = ref 0. in
  let rng = Random.State.make [| 17 |] in
  Common.run_scenario ~horizon:(duration +. 180.) sim (fun () ->
      let gap = 1. /. rate in
      let count = int_of_float (duration *. rate) in
      for k = 0 to count - 1 do
        incr offered;
        let host = Random.State.int rng hosts in
        let args =
          Tcloud.Procs.spawn_vm_args
            ~vm:(Printf.sprintf "sc%06d" k)
            ~template:"base.img" ~mem_mb:1024
            ~storage:
              (Data.Path.to_string
                 (Tcloud.Setup.storage_path
                    (host mod size.Tcloud.Setup.storage_hosts)))
            ~host:(Data.Path.to_string (Tcloud.Setup.compute_path host))
        in
        let arrival = Des.Proc.now () in
        ignore
          (Des.Proc.spawn ~name:(Printf.sprintf "sc-%d" k) sim (fun () ->
               let id = Tropic.Platform.submit platform ~proc:"spawnVM" ~args in
               match Tropic.Platform.await platform id with
               | Tropic.Txn.Committed ->
                 incr committed;
                 let t = Des.Proc.now () in
                 if Float.is_nan !first_commit then first_commit := t;
                 last_commit := t;
                 Metrics.Cdf.add latency (t -. arrival)
               | _ -> ()));
        Des.Proc.sleep gap
      done);
  let span = Float.max 1e-9 (!last_commit -. !first_commit) in
  {
    hosts;
    offered = !offered;
    committed = !committed;
    throughput_per_s = float_of_int (!committed - 1) /. span;
    median_latency =
      (if Metrics.Cdf.count latency = 0 then Float.nan
       else Metrics.Cdf.quantile latency 0.5);
    sched = Common.sched_counters platform;
    robust = Common.robust_counters platform;
    phases = Common.phase_summary platform;
  }

let live_bytes () =
  Gc.full_major ();
  let stat = Gc.stat () in
  stat.Gc.live_words * (Sys.word_size / 8)

let memory_point hosts =
  let before = live_bytes () in
  let size =
    {
      Tcloud.Setup.paper_scale with
      Tcloud.Setup.compute_hosts = hosts;
      storage_hosts = max 1 (hosts / 4);
      prepopulated_vms_per_host = 8;
    }
  in
  let inv = Tcloud.Setup.build size in
  let resources = Data.Tree.size inv.Tcloud.Setup.tree in
  let after = live_bytes () in
  (* Keep the inventory alive until after the measurement. *)
  let live = after - before in
  ignore (Sys.opaque_identity inv);
  {
    resources;
    live_bytes = live;
    bytes_per_resource = float_of_int live /. float_of_int resources;
  }

let default_seed = 5

let run ?(seed = default_seed) ?(host_counts = [ 500; 2_000; 8_000 ])
    ?(rate = 10.) ?(duration = 120.) () =
  let throughput =
    List.map (throughput_point ~seed ~rate ~duration) host_counts
  in
  let memory = List.map memory_point [ 250; 1_000; 4_000 ] in
  let per_resource =
    match List.rev memory with
    | largest :: _ -> largest.bytes_per_resource
    | [] -> Float.nan
  in
  {
    throughput;
    memory;
    projected_resources_32gb = 32. *. 1024. ** 3. /. per_resource;
  }

let print r =
  Common.section "§6.1 Scalability: throughput and memory vs resource count";
  List.iter
    (fun p ->
      Printf.printf
        "hosts=%6d  offered=%d committed=%d  throughput=%.2f txn/s  median=%.3f s  %s | %s | %s\n"
        p.hosts p.offered p.committed p.throughput_per_s p.median_latency
        (Common.sched_summary p.sched)
        (Common.robust_summary p.robust) p.phases)
    r.throughput;
  List.iter
    (fun m ->
      Printf.printf "resources=%8d  live=%9d bytes  (%.0f B/resource)\n"
        m.resources m.live_bytes m.bytes_per_resource)
    r.memory;
  Printf.printf
    "projected capacity of a 32 GB controller: %.1f M resources (paper: ~2 M VMs)\n%!"
    (r.projected_resources_32gb /. 1e6)
