(** §6.1 scalability: throughput vs. resource count, and the memory
    footprint of the data model.

    The paper finds transaction throughput constant as resources and
    transactions scale up (the bottleneck is coordination I/O, whose cost
    is independent of the tree size), with physical memory for the data
    model the limiting factor — topping out around 2 M VMs on their 32 GB
    controllers. *)

type throughput_point = {
  hosts : int;
  offered : int;
  committed : int;
  throughput_per_s : float;
  median_latency : float;
  sched : Common.sched_counters;  (** leader's wake-on-release counters *)
  robust : Common.robust_counters;  (** leader's retry/timeout/signal tallies *)
  phases : string;  (** per-phase p50/p99 latency breakdown *)
}

type memory_point = {
  resources : int;           (** nodes in the data model *)
  live_bytes : int;          (** live heap bytes after building it *)
  bytes_per_resource : float;
}

type result = {
  throughput : throughput_point list;
  memory : memory_point list;
  projected_resources_32gb : float;
}

(** Base seed used when [?seed] is not given; each throughput point runs
    on [hosts + seed] so different sizes stay decorrelated. *)
val default_seed : int

val run :
  ?seed:int -> ?host_counts:int list -> ?rate:float -> ?duration:float ->
  unit -> result
val print : result -> unit
