type config = {
  multiplier : int;
  hosts : int;
  window_start : int;
  duration : int;
  bucket : float;
  drain : float;
  seed : int;
}

let default_config =
  {
    multiplier = 1;
    hosts = 12_500;
    window_start = 0;
    duration = Workload.Ec2.duration;
    bucket = 60.;
    drain = 600.;
    seed = 42;
  }

let quick_config =
  {
    default_config with
    hosts = 2_000;
    window_start = 2_400;
    duration = 600;
    bucket = 30.;
    drain = 300.;
  }

type result = {
  cfg : config;
  offered : int;
  committed : int;
  aborted : int;
  failed : int;
  lost : int;
  cpu_util : Metrics.Series.t;
  coord_util : Metrics.Series.t;
  latency : Metrics.Cdf.t;
  sim_events : int;
  wall_seconds : float;
  sched : Common.sched_counters;
  robust : Common.robust_counters;
  phases : string;
}

(* The paper's logical-only deployment (§5, §6.1): 8 VM slots per host,
   4 compute hosts per storage host. *)
let deployment_size cfg =
  {
    Tcloud.Setup.paper_scale with
    Tcloud.Setup.compute_hosts = cfg.hosts;
    storage_hosts = max 1 (cfg.hosts / 4);
  }

let platform_spec =
  {
    Tropic.Platform.default_spec with
    Tropic.Platform.mode = Tropic.Platform.Logical_only 0.005;
    controller_config = Tcloud.Setup.controller_config;
    workers = 8;
    submit_clients = 16;
    client_slots = 64;
  }

let run cfg =
  let trace =
    Workload.Ec2.scale (Workload.Ec2.generate ~seed:cfg.seed ()) cfg.multiplier
  in
  let sim = Des.Sim.create ~seed:cfg.seed () in
  let inventory = Tcloud.Setup.build (deployment_size cfg) in
  let platform =
    Tropic.Platform.create platform_spec inventory.Tcloud.Setup.env
      ~initial_tree:inventory.Tcloud.Setup.tree
      ~devices:inventory.Tcloud.Setup.devices sim
  in
  let horizon = float_of_int cfg.duration +. cfg.drain in
  let cpu_util =
    Metrics.Gauge.utilization_series sim ~bucket:cfg.bucket ~duration:horizon
      ~busy:(fun () -> Tropic.Platform.controller_cpu_busy platform)
  in
  let coord_util =
    Metrics.Gauge.utilization_series sim ~bucket:cfg.bucket ~duration:horizon
      ~busy:(fun () -> Tropic.Platform.coord_io_busy platform)
  in
  let latency = Metrics.Cdf.create () in
  let offered = ref 0 in
  let committed = ref 0 and aborted = ref 0 and failed = ref 0 in
  let lost = ref 0 in
  let rng = Random.State.make [| cfg.seed + 1 |] in
  let storage_hosts = (deployment_size cfg).Tcloud.Setup.storage_hosts in
  let vm_counter = ref 0 in
  let spawn_one () =
    incr vm_counter;
    incr offered;
    let vm = Printf.sprintf "ec2-%07d" !vm_counter in
    let host = Random.State.int rng cfg.hosts in
    let args =
      Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img" ~mem_mb:1024
        ~storage:(Data.Path.to_string (Tcloud.Setup.storage_path (host mod storage_hosts)))
        ~host:(Data.Path.to_string (Tcloud.Setup.compute_path host))
    in
    let arrival = Des.Proc.now () in
    ignore
      (Des.Proc.spawn ~name:vm sim (fun () ->
           let id = Tropic.Platform.submit platform ~proc:"spawnVM" ~args in
           match Tropic.Platform.await platform id with
           | Tropic.Txn.Committed ->
             incr committed;
             Metrics.Cdf.add latency (Des.Proc.now () -. arrival)
           | Tropic.Txn.Aborted _ ->
             incr aborted;
             Metrics.Cdf.add latency (Des.Proc.now () -. arrival)
           | Tropic.Txn.Failed _ -> incr failed
           | Tropic.Txn.Initialized | Tropic.Txn.Accepted | Tropic.Txn.Deferred
           | Tropic.Txn.Started ->
             () (* unreachable: await only returns terminal states *)))
  in
  let generator () =
    for second = 0 to cfg.duration - 1 do
      let launches = trace.(cfg.window_start + second) in
      if launches = 0 then Des.Proc.sleep 1.0
      else begin
        let gap = 1.0 /. float_of_int launches in
        for _ = 1 to launches do
          spawn_one ();
          Des.Proc.sleep gap
        done
      end
    done
  in
  let (), wall_seconds =
    Common.time_it (fun () ->
        Common.run_scenario ~horizon sim generator;
        (* run_scenario drains every event up to horizon, including awaits. *)
        ())
  in
  (* Any spawned awaiter that never resolved counts as lost. *)
  let resolved = !committed + !aborted + !failed in
  lost := !offered - resolved;
  {
    cfg;
    offered = !offered;
    committed = !committed;
    aborted = !aborted;
    failed = !failed;
    lost = !lost;
    cpu_util;
    coord_util;
    latency;
    sim_events = Des.Sim.executed sim;
    wall_seconds;
    sched = Common.sched_counters platform;
    robust = Common.robust_counters platform;
    phases = Common.phase_summary platform;
  }

(* ------------------------------------------------------------------ *)
(* Printing *)

let fig3_series ?(seed = 42) ~bucket () =
  let trace = Workload.Ec2.generate ~seed () in
  let series =
    Metrics.Series.create ~bucket ~duration:(float_of_int Workload.Ec2.duration)
  in
  Array.iteri
    (fun t count ->
      Metrics.Series.add ~v:(float_of_int count) series (float_of_int t))
    trace;
  series

let print_fig3 () =
  Common.section "Figure 3: VMs launched per second (EC2 workload)";
  let trace = Workload.Ec2.generate () in
  Format.printf "workload: %a@." Workload.Ec2.pp_stats (Workload.Ec2.stats trace);
  let series = fig3_series ~bucket:60. () in
  (* Per-minute average launches/second, like reading Fig. 3 smoothed. *)
  let per_second =
    Metrics.Series.create ~bucket:60.
      ~duration:(float_of_int Workload.Ec2.duration)
  in
  List.iteri
    (fun i (_, v) -> Metrics.Series.set_bucket per_second i (v /. 60.))
    (Metrics.Series.rows series);
  print_string
    (Metrics.Series.render ~label:"VMs/s (min avg)" ~time_unit:`Hours per_second)

let print_result r =
  Printf.printf
    "%dx: offered=%d committed=%d aborted=%d failed=%d lost=%d | median=%.3fs p90=%.3fs p99=%.3fs max=%.1fs | peak CPU=%.1f%% peak coordIO=%.1f%% | %d events, %.1fs wall\n%!"
    r.cfg.multiplier r.offered r.committed r.aborted r.failed r.lost
    (Metrics.Cdf.quantile r.latency 0.5)
    (Metrics.Cdf.quantile r.latency 0.9)
    (Metrics.Cdf.quantile r.latency 0.99)
    (Metrics.Cdf.max_value r.latency)
    (100. *. Metrics.Series.max_value r.cpu_util)
    (100. *. Metrics.Series.max_value r.coord_util)
    r.sim_events r.wall_seconds;
  Printf.printf "    %s\n    %s\n    %s\n%!" (Common.sched_summary r.sched)
    (Common.robust_summary r.robust) r.phases

let print_fig4_fig5 ?(multipliers = [ 1; 2; 3; 4; 5 ]) cfg =
  Common.section
    (Printf.sprintf
       "Figures 4 & 5: controller CPU and txn latency, EC2 x{1..%d} (%d hosts, %ds window)"
       (List.fold_left max 1 multipliers)
       cfg.hosts cfg.duration);
  let results =
    List.map (fun m -> run { cfg with multiplier = m }) multipliers
  in
  List.iter print_result results;
  Common.section "Figure 4 detail: CPU utilization per bucket";
  List.iter
    (fun r ->
      Printf.printf "-- %dx EC2 --\n" r.cfg.multiplier;
      print_string
        (Metrics.Series.render ~label:"CPU util" ~time_unit:`Hours r.cpu_util))
    results;
  Common.section "Figure 5 detail: latency CDFs";
  List.iter
    (fun r ->
      print_string
        (Metrics.Cdf.render
           ~label:(Printf.sprintf "%dx EC2 latency (s)" r.cfg.multiplier)
           r.latency))
    results
