(** Rolling-upgrade convergence walkthrough: the goal-state frontend
    ({!Plan}) driving a live platform through two declarative goals —
    drain host 0 (migrating its VMs out, starting the whole fleet, and
    wiring every VM into a tenant VLAN), then restore the original
    placement.  Each phase is one {!Plan.Executor.converge} call; the
    experiment is the [tropic_exp converge] subcommand.

    With [goal], runs a single phase converging on the given model
    instead of the built-in rolling upgrade (same deployment: 4 xen
    hosts, 8 GB each, 2 stopped 1 GB VMs pre-installed per host,
    2 storage hosts, 1 switch). *)

val default_seed : int

(** The built-in phase-1 / phase-2 models (exposed for tests and for
    writing derived goal files). *)
val drained_goal : Plan.Model.t

val restored_goal : Plan.Model.t

type result = {
  phases : (string * Plan.Executor.report) list;  (** in execution order *)
  stats : Tropic.Platform.leader_stats;
  trace : Trace.t option;
}

(** Every phase reached [Converged]. *)
val converged : result -> bool

(** Sum a per-report counter over all phases. *)
val total : (Plan.Executor.report -> int) -> result -> int

(** [quick] swaps full physical replay for logical-only timing. *)
val run :
  ?seed:int ->
  ?quick:bool ->
  ?record_trace:bool ->
  ?goal:Plan.Model.t ->
  unit ->
  result

val print : result -> unit
