(** Invariant checkers for chaos runs.

    Two kinds: a {e tracker} process that polls continuously while the
    simulation runs (for properties that must hold at every instant), and
    a one-shot {e quiescence} check the runner calls once the workload is
    terminal and reconciliation has had time to heal the layers.

    Continuous:
    - [one-leader-per-term]: no two coordination replicas ever lead the
      same term (the raft election safety property).
    - [no-overcommit]: the memory placed on a compute host never exceeds
      its capacity — the paper's headline constraint; devices deliberately
      do not enforce it physically, only TROPIC's logical layer does.
    - [stuck-lock] (only with [~stall_budget]): no transaction stays in
      flight — write locks held — longer than the budget.  The robustness
      layer (retries, per-action deadlines, watchdog escalation) exists
      precisely to bound this; the no-watchdog ablation makes it fire.
    - [bounded-queue] (only with [~queue_budget]): the leader's pending
      (ready + blocked) queue never exceeds the budget.  Admission
      control's watermarks exist precisely to bound this; the no-breaker
      ablation under a request storm makes it fire.  Reported once per
      run.

    At quiescence:
    - [transaction-terminal]: every submitted transaction reached
      Committed/Aborted/Failed — nothing lost across fail-overs.
    - [leader-election]: every shard has a leading controller.
    - [exactly-once]: committed spawn/stop/destroy effects appear on the
      devices exactly once — the right VM on the right host in the right
      state, no duplicates, no resurrections, no ghosts.
    - [no-overcommit]: final-state capacity check, same as above.
    - [convergence]: no subtree is still quarantined and every device's
      exported state equals its {e owning} shard leader's logical
      subtree.
    - [quiescence-drained]: every shard leader's todo queue, in-flight
      set and lock table are empty. *)

type violation = { invariant : string; at : float; detail : string }

val violation_to_string : violation -> string

(** {1 Continuous tracker} *)

type tracker

(** [start ?period ?stall_budget ?queue_budget ~platform ~computes ()]
    spawns the polling process ([period] defaults to 0.25 s).
    [stall_budget] (seconds a transaction may stay in flight) enables the
    [stuck-lock] check; [queue_budget] (max pending transactions on the
    leader) enables the [bounded-queue] check. *)
val start :
  ?period:float ->
  ?stall_budget:float ->
  ?queue_budget:int ->
  platform:Tropic.Platform.t ->
  computes:(Data.Path.t * Devices.Compute.t) array ->
  unit ->
  tracker

val stop : tracker -> unit
val tracker_violations : tracker -> violation list

(** {1 Trace lifecycle check}

    Runs {!Trace.Check.validate} over the span tree the platform recorded
    and maps each error to a [trace-*] violation (e.g.
    [trace-committed-no-undo], [trace-undo-order]).  Only meaningful at
    quiescence: live transactions legitimately hold open spans. *)
val check_trace : at:float -> Trace.t -> violation list

(** {1 Quiescence check} *)

(** Expected terminal fate of one VM, folded by the runner from its
    committed operations. *)
type vm_fate = {
  vm : string;
  host : int;  (** index into [computes] *)
  present : bool;  (** spawned and not destroyed *)
  running : bool;
}

(** [check_quiescence ~platform ~computes ~devices ~txns ~expected
    ~skip_vm] — [txns] pairs every submitted transaction id with its
    final observed state; [skip_vm] excuses VMs whose fate the harness
    cannot predict (out-of-band removals, write sets of Failed
    transactions). *)
val check_quiescence :
  platform:Tropic.Platform.t ->
  computes:(Data.Path.t * Devices.Compute.t) array ->
  devices:Devices.Device.t list ->
  txns:(int * Tropic.Txn.state option) list ->
  expected:vm_fate list ->
  skip_vm:(string -> bool) ->
  violation list
