(** Seed-sweep fault explorer.

    One {e run} builds a fresh TCloud deployment and TROPIC platform
    inside a seeded simulation, drives a deterministic mixed workload
    (spawn / stop / destroy, with a hot host that tempts overcommit),
    installs a nemesis schedule, waits for quiescence (workload terminal,
    schedule exhausted, reconciliation given time to heal — including the
    operator [reload] for unrepairable drift such as out-of-band VM
    removals), and evaluates every invariant.

    A {e sweep} runs seed × schedule combinations and collects violating
    runs as one-line reproducers; re-running a reproducer with [~trace]
    replays the identical fault sequence with full event tracing. *)

(** Which build the harness exercises.  [No_constraints] strips the
    logical-layer constraints (the ablation that must make the sweep
    light up); [No_guard_locks] disables the §3.1.3 constraint-guard
    R-locks only; [No_watchdog] strips the robustness layer — stall
    watchdog, per-action deadlines and transient-error retries — so
    hang/crash schedules leave transactions wedged with their locks
    held; [No_breaker] strips the overload layer — device health
    scoring, circuit breakers and admission control — so a flap-storm
    schedule queues unboundedly behind the flapping host and trips the
    [bounded-queue] invariant; [No_plan_deps] compiles goal-state plans
    with every dependency edge dropped ({!Plan.Planner.compile}
    [~ordered:false]), so the plan-crash schedule's capacity swap
    livelocks and trips the [plan-converged] invariant; [No_2pc] skips
    the durable cross-shard commit decision record, so a coordinator
    crash between prepare and decision presumes abort on transactions
    whose commit already took effect elsewhere — the shard-crash
    schedule's [exactly-once]/[convergence] invariants convict it;
    [No_session_ids] drops the replication-session check on coordination
    append replies, so a replica removed and re-added within one term can
    poison the leader's progress tracking with acks from its previous
    incarnation — the member-churn schedule's [progress-integrity]
    invariant convicts it; [Unsafe_ack] makes the coordination leader
    release client acks at enqueue time instead of after its group-commit
    batch reaches quorum, so a leader crash inside the batch window loses
    acked submissions — the commit-storm schedule's [acked-durable]
    invariant convicts it. *)
type build =
  | Stock
  | No_constraints
  | No_guard_locks
  | No_watchdog
  | No_breaker
  | No_plan_deps
  | No_2pc
  | No_session_ids
  | Unsafe_ack

val build_to_string : build -> string
val build_of_string : string -> (build, string) result

type config = {
  build : build;
  hosts : int;  (** compute hosts in the deployment *)
  txns : int;  (** workload transactions (spawn chains) *)
  horizon : float;  (** hard virtual-time stop *)
  quiesce_grace : float;  (** settle time between reconciliation waves *)
}

val default_config : config

(** Smaller workload for smoke tests and [--quick]. *)
val quick_config : config

type result = {
  schedule : string;
  seed : int;
  rbuild : build;
  committed : int;
  aborted : int;
  failed : int;
  injected : int;  (** nemesis events actually fired *)
  deferrals : int;  (** lock-conflict deferrals seen by the final leader *)
  wakeups : int;  (** waiters moved blocked→ready by the final leader *)
  spurious_wakeups : int;  (** woken waiters that conflicted again *)
  retries : int;  (** physical retry attempts (final leader's tally) *)
  transient_failures : int;  (** transient device errors workers saw *)
  timeouts : int;  (** per-action deadline expiries *)
  auto_terms : int;  (** TERMs the watchdog issued *)
  auto_kills : int;  (** KILLs the watchdog issued *)
  sheds : int;  (** requests fast-aborted by admission control *)
  breaker_trips : int;  (** breaker [Closed]/[Half_open] -> [Tripped] *)
  breaker_probes : int;  (** canary transactions admitted half-open *)
  breaker_closes : int;  (** probe successes that re-closed a breaker *)
  twopc_started : int;  (** cross-shard transactions reaching prepare *)
  twopc_committed : int;  (** cross-shard commits (decision durable) *)
  twopc_aborted : int;  (** cross-shard aborts, incl. presumed aborts *)
  twopc_prepares : int;  (** participant prepare votes cast *)
  joins : int;  (** replicas added to the coordination membership *)
  leaves : int;  (** replicas removed from the coordination membership *)
  catchups : int;  (** learners caught up and promoted to voting *)
  stale_sessions : int;
      (** append replies dropped for carrying a stale replication
          session id (proof the churn window was actually exercised) *)
  group_flushes : int;  (** grouped appends the coordination leader flushed *)
  group_batched : int;  (** client commands that rode a grouped append *)
  acks_deferred : int;  (** acks held back until their batch reached quorum *)
  unsafe_acks : int;
      (** acks released before quorum — nonzero only on the unsafe-ack
          build (proof the ablation was actually exercised) *)
  shards : int;  (** resource-tree shards the platform ran with *)
  per_shard : string list;
      (** one per-shard counter line per shard leader (sheds, wakeups,
          watchdog, 2PC, phase p50/p99); empty on single-shard runs *)
  violations : Invariant.violation list;
      (** includes [trace-*] lifecycle violations from
          {!Invariant.check_trace} when the run quiesced *)
  trace : string list;  (** injection/progress log, oldest first *)
  phases : string;  (** final leader's per-phase p50/p99 breakdown *)
  span_dump : string list;
      (** normalized span-tree dump of the run (only with [~trace:true],
          i.e. when replaying a reproducer); empty otherwise *)
  duration : float;  (** virtual seconds to quiescence *)
}

(** One-line reproducer: the exact CLI invocation that replays this run. *)
val reproducer : result -> string

val run_one : ?trace:bool -> config -> schedule:Schedule.t -> seed:int -> result

type sweep = {
  runs : result list;
  violating : result list;  (** runs with at least one violation *)
}

(** [sweep ?progress config ~schedules ~seeds] assigns seed [i] to
    schedule [i mod length schedules] (round-robin), runs each pair, and
    calls [progress] after every run. *)
val sweep :
  ?progress:(result -> unit) ->
  config ->
  schedules:Schedule.t list ->
  seeds:int list ->
  sweep
