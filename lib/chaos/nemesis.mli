(** Compiles a {!Schedule.t} into DES processes against a live platform.

    All randomness (random targets, random-window fire times) is drawn
    from the simulation's seeded rng, so a (seed, schedule) pair replays
    the exact same faults at the exact same virtual times.

    The nemesis is safety-guarded: it never crashes the last live
    controller, never breaks the coordination quorum, and never stacks a
    second network partition on top of an unhealed one.  A firing whose
    guard fails is skipped (and traced), not deferred. *)

type env = {
  platform : Tropic.Platform.t;
  computes : (Data.Path.t * Devices.Compute.t) array;
  devices : Devices.Device.t list;  (** fault-burst targets (all kinds) *)
  live_txns : unit -> int list;  (** non-terminal submitted transactions *)
  trace : string -> unit;  (** one line per injected (or skipped) event *)
}

type t

(** Install the schedule: one process per step, firing per its trigger.
    Call before running the simulation (or from inside a process). *)
val install : env -> Schedule.t -> t

(** Fault events actually injected so far (skipped firings not counted). *)
val fired : t -> int

(** Names of VMs deleted behind TROPIC's back ([Oob_remove_vm]); the
    invariant checker must not expect them to be present. *)
val oob_removed : t -> string list

(** VM names submitted by [Request_storm] firings.  Fire-and-forget: the
    harness never awaits them, so their fate (committed, shed, aborted on
    capacity) is unpredictable and the quiescence check must skip them. *)
val storm_vms : t -> string list

(** Transaction ids of the storm submissions, i.e. every id whose enqueue
    the coordination service acked.  While a storm txn's {e fate} is
    unpredictable, its {e existence} is not: an acked submission must
    reach some terminal record — the acked-durable invariant. *)
val storm_txns : t -> int list
