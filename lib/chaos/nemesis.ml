type env = {
  platform : Tropic.Platform.t;
  computes : (Data.Path.t * Devices.Compute.t) array;
  devices : Devices.Device.t list;
  live_txns : unit -> int list;
  trace : string -> unit;
}

type t = {
  nenv : env;
  rng : Random.State.t;
  ctrl_down : bool array;
  worker_down : bool array;
  mutable partitioned : bool;
  mutable churning : bool; (* a member-churn cycle is in progress *)
  mutable fired_count : int;
  mutable removed : string list;
  mutable storm_submitted : string list; (* storm VM names, newest first *)
  mutable storm_ids : int list; (* acked storm txn ids, newest first *)
}

let fired t = t.fired_count
let oob_removed t = t.removed
let storm_vms t = t.storm_submitted
let storm_txns t = t.storm_ids

let pick t = function
  | [] -> None
  | xs -> Some (List.nth xs (Random.State.int t.rng (List.length xs)))

let inject t message =
  t.fired_count <- t.fired_count + 1;
  t.nenv.trace message

let skip t message = t.nenv.trace ("skip: " ^ message)

(* ------------------------------------------------------------------ *)
(* Actions *)

let up_controllers t =
  let ups = ref [] in
  Array.iteri
    (fun i down -> if not down then ups := i :: !ups)
    t.ctrl_down;
  List.rev !ups

let crash_controller t target down_for =
  let ups = up_controllers t in
  if List.length ups <= 1 then skip t "last controller standing"
  else
    let choice =
      match target with
      | Schedule.Leader ->
        (match Tropic.Platform.leader_index t.nenv.platform with
         | Some i when not t.ctrl_down.(i) -> Some i
         | Some _ | None -> None)
      | Schedule.Random -> pick t ups
    in
    match choice with
    | None -> skip t "no eligible controller"
    | Some i ->
      t.ctrl_down.(i) <- true;
      inject t (Printf.sprintf "crash controller-%d (down %.0fs)" i down_for);
      Tropic.Platform.kill_controller t.nenv.platform i;
      Des.Proc.sleep down_for;
      Tropic.Platform.restart_controller t.nenv.platform i;
      t.ctrl_down.(i) <- false;
      t.nenv.trace (Printf.sprintf "restart controller-%d" i)

(* Same crash/restart cycle as [crash_controller], but aimed at one
   shard's replica group: the victim is whoever currently leads that
   shard, so on a schedule that fires mid-2PC the crash lands between
   prepare and decision.  Guarded like the generic crash — never the
   shard's last controller standing. *)
let crash_shard_leader t shard down_for =
  let platform = t.nenv.platform in
  if shard < 0 || shard >= Tropic.Platform.shard_count platform then
    skip t (Printf.sprintf "no shard %d" shard)
  else begin
    let per_shard = (Tropic.Platform.spec platform).Tropic.Platform.controllers in
    let slots = List.init per_shard (fun j -> (shard * per_shard) + j) in
    let ups = List.filter (fun i -> not t.ctrl_down.(i)) slots in
    if List.length ups <= 1 then
      skip t (Printf.sprintf "last controller of shard %d standing" shard)
    else
      match Tropic.Platform.shard_leader_index platform shard with
      | Some i when not t.ctrl_down.(i) ->
        t.ctrl_down.(i) <- true;
        inject t
          (Printf.sprintf "crash shard %d leader controller-%d (down %.0fs)"
             shard i down_for);
        Tropic.Platform.kill_controller platform i;
        Des.Proc.sleep down_for;
        Tropic.Platform.restart_controller platform i;
        t.ctrl_down.(i) <- false;
        t.nenv.trace (Printf.sprintf "restart controller-%d" i)
      | Some _ | None -> skip t (Printf.sprintf "shard %d has no leader" shard)
  end

(* Members of the current effective configuration that are up.  Node ids
   are no longer a contiguous range: replicas added at runtime live in the
   spare id region, and removed-but-running instances are not members. *)
let live_members ens =
  List.filter (Coord.Ensemble.replica_up ens) (Coord.Ensemble.members ens)

let crash_coord_replica t target down_for =
  let ens = Tropic.Platform.coord t.nenv.platform in
  let n = List.length (Coord.Ensemble.members ens) in
  let ups = live_members ens in
  if t.partitioned then skip t "coord crash during partition"
  else if t.churning then skip t "coord crash during member churn"
  else if 2 * (List.length ups - 1) <= n then skip t "would break quorum"
  else
    let choice =
      match target with
      | Schedule.Leader ->
        (match Coord.Ensemble.leader_id ens with
         | Some i when Coord.Ensemble.replica_up ens i -> Some i
         | Some _ | None -> None)
      | Schedule.Random -> pick t ups
    in
    match choice with
    | None -> skip t "no eligible replica"
    | Some i ->
      inject t (Printf.sprintf "crash coord replica %d (down %.0fs)" i down_for);
      Coord.Ensemble.crash_replica ens i;
      Des.Proc.sleep down_for;
      if not (Coord.Ensemble.replica_up ens i) then
        Coord.Ensemble.restart_replica ens i;
      t.nenv.trace (Printf.sprintf "restart coord replica %d" i)

let partition_coord_leader t heal_after =
  let ens = Tropic.Platform.coord t.nenv.platform in
  let members = Coord.Ensemble.members ens in
  if t.partitioned then skip t "partition already active"
  else if t.churning then skip t "partition during member churn"
  else if List.length (live_members ens) < List.length members then
    skip t "partition while a replica is down"
  else
    match Coord.Ensemble.leader_id ens with
    | None -> skip t "no coordination leader to partition"
    | Some leader ->
      let others = List.filter (fun i -> i <> leader) members in
      t.partitioned <- true;
      inject t
        (Printf.sprintf "partition coord leader %d from peers (heal %.0fs)"
           leader heal_after);
      let net = Coord.Ensemble.net ens in
      Des.Net.partition net [ leader ] others;
      Des.Proc.sleep heal_after;
      Des.Net.heal net;
      t.partitioned <- false;
      t.nenv.trace "heal partition"

let fault_burst t probability lasting =
  inject t (Printf.sprintf "fault burst p=%.2f for %.0fs" probability lasting);
  let set p =
    List.iter
      (fun device ->
        match
          Devices.Fault.set_probability (Devices.Device.faults device) p
        with
        | Ok () -> ()
        | Error reason -> t.nenv.trace ("fault burst rejected: " ^ reason))
      t.nenv.devices
  in
  set probability;
  Des.Proc.sleep lasting;
  set 0.;
  t.nenv.trace "fault burst over"

let random_compute t =
  let n = Array.length t.nenv.computes in
  if n = 0 then None else Some t.nenv.computes.(Random.State.int t.rng n)

let fail_next_device_action t action =
  match random_compute t with
  | None -> skip t "no compute hosts"
  | Some (root, compute) ->
    inject t
      (Printf.sprintf "arm one-shot %s failure on %s" action
         (Data.Path.to_string root));
    Devices.Fault.fail_next
      (Devices.Device.faults (Devices.Compute.device compute))
      ~action

(* The device kind whose dispatcher implements [action] — a hang must be
   aimed at a device that will actually run it, or the plan is inert. *)
let kind_of_action action =
  let storage =
    Devices.Schema.
      [ act_clone_image; act_remove_image; act_export_image; act_unexport_image ]
  and switch =
    Devices.Schema.[ act_create_vlan; act_remove_vlan; act_add_port; act_remove_port ]
  in
  if List.mem action storage then Devices.Schema.storage_host_kind
  else if List.mem action switch then Devices.Schema.switch_kind
  else Devices.Schema.vm_host_kind

(* Arm the hang on one random device of the matching kind (arming every
   device would multiply each schedule step into one hang per device —
   and at a ~30 s deadline rescue each, a storm of them outlasts any
   reasonable quiescence horizon). *)
let hang_next_device_action t action =
  let eligible =
    List.filter
      (fun d -> Devices.Device.kind d = kind_of_action action)
      t.nenv.devices
  in
  match pick t eligible with
  | None -> skip t (Printf.sprintf "no device runs %s" action)
  | Some device ->
    inject t
      (Printf.sprintf "arm one-shot %s hang on %s" action
         (Data.Path.to_string (Devices.Device.root device)));
    Devices.Fault.hang_next (Devices.Device.faults device) ~action

let up_workers t =
  let ups = ref [] in
  Array.iteri
    (fun i down -> if not down then ups := i :: !ups)
    t.worker_down;
  List.rev !ups

let crash_worker t down_for =
  match pick t (up_workers t) with
  | None -> skip t "no worker standing"
  | Some i ->
    t.worker_down.(i) <- true;
    inject t (Printf.sprintf "crash worker-%d (down %.0fs)" i down_for);
    Tropic.Platform.kill_worker t.nenv.platform i;
    Des.Proc.sleep down_for;
    Tropic.Platform.restart_worker t.nenv.platform i;
    t.worker_down.(i) <- false;
    t.nenv.trace (Printf.sprintf "restart worker-%d" i)

let power_cycle_host t =
  match random_compute t with
  | None -> skip t "no compute hosts"
  | Some (root, compute) ->
    inject t (Printf.sprintf "power-cycle %s" (Data.Path.to_string root));
    Devices.Compute.power_cycle compute

(* VMs across all hosts currently in [state]. *)
let vms_in_state t state =
  Array.fold_left
    (fun acc (root, compute) ->
      List.fold_left
        (fun acc vm ->
          if Devices.Compute.vm_state compute vm = Some state then
            (root, compute, vm) :: acc
          else acc)
        acc
        (Devices.Compute.vm_names compute))
    [] t.nenv.computes
  |> List.rev

let oob_stop_vm t =
  match pick t (vms_in_state t `Running) with
  | None -> skip t "no running VM to stop out-of-band"
  | Some (root, compute, vm) ->
    inject t
      (Printf.sprintf "out-of-band stop of %s on %s" vm
         (Data.Path.to_string root));
    Devices.Compute.force_set_vm_state compute vm `Stopped

let oob_remove_vm t =
  match pick t (vms_in_state t `Stopped) with
  | None -> skip t "no stopped VM to remove out-of-band"
  | Some (root, compute, vm) ->
    inject t
      (Printf.sprintf "out-of-band removal of %s from %s" vm
         (Data.Path.to_string root));
    t.removed <- vm :: t.removed;
    Devices.Compute.force_remove_vm compute vm

(* Transactions are live for only milliseconds under instant device
   timing, so sampling a single instant would almost never find one:
   poll until one appears (or the hunt window closes). *)
let hunt_live_txn t ~window =
  let deadline = Des.Proc.now () +. window in
  let rec go () =
    match pick t (t.nenv.live_txns ()) with
    | Some id -> Some id
    | None ->
      if Des.Proc.now () +. 0.02 > deadline then None
      else begin
        Des.Proc.sleep 0.02;
        go ()
      end
  in
  go ()

let signal_txn t signal stall =
  match hunt_live_txn t ~window:15. with
  | None -> skip t "no live transaction to signal"
  | Some txn_id ->
    let name = match signal with `Term -> "TERM" | `Kill -> "KILL" in
    t.nenv.trace
      (Printf.sprintf "stalking txn %d (%s after %.1fs stall)" txn_id name
         stall);
    Des.Proc.sleep stall;
    let target =
      if List.mem txn_id (t.nenv.live_txns ()) then Some txn_id
      else hunt_live_txn t ~window:3.
    in
    match target with
    | None -> skip t "no live transaction after stall"
    | Some txn_id ->
      inject t (Printf.sprintf "%s txn %d" name txn_id);
      Tropic.Platform.signal t.nenv.platform txn_id
        (match signal with `Term -> Tropic.Proto.Term | `Kill -> Tropic.Proto.Kill)

(* Flap a specific host between healthy and always-failing: probability
   1.0 makes every device action fail transiently (retries engage, then
   exhaust), 0.0 restores it — the pattern health scoring must recognise
   and fence off. *)
let flap_device t host up_for down_for cycles =
  if host < 0 || host >= Array.length t.nenv.computes then
    skip t (Printf.sprintf "no compute host %d to flap" host)
  else begin
    let root, compute = t.nenv.computes.(host) in
    let faults = Devices.Device.faults (Devices.Compute.device compute) in
    inject t
      (Printf.sprintf "flap %s: %d cycles of %.0fs up / %.0fs down"
         (Data.Path.to_string root) cycles up_for down_for);
    let set p =
      match Devices.Fault.set_probability faults p with
      | Ok () -> ()
      | Error reason -> t.nenv.trace ("flap rejected: " ^ reason)
    in
    for _ = 1 to cycles do
      Des.Proc.sleep up_for;
      set 1.0;
      Des.Proc.sleep down_for;
      set 0.
    done;
    t.nenv.trace "flap over"
  end

(* Fire-and-forget request flood against the flappable hot host: nobody
   awaits these, so under admission control the excess is shed with the
   fast overload abort while the accepted ones drain normally. *)
let request_storm t count gap =
  if Array.length t.nenv.computes = 0 then skip t "no compute hosts"
  else begin
    let root, _ = t.nenv.computes.(0) in
    inject t
      (Printf.sprintf "request storm: %d spawns on %s, %.2fs apart" count
         (Data.Path.to_string root) gap);
    for i = 1 to count do
      let vm = Printf.sprintf "storm%03d" i in
      t.storm_submitted <- vm :: t.storm_submitted;
      (* [submit] returning means the enqueue was acked by the
         coordination service — from here on the request must be durable
         (the acked-durable invariant holds every one of these ids to a
         terminal record at quiescence). *)
      let id =
        Tropic.Platform.submit t.nenv.platform ~proc:"spawnVM"
          ~args:
            (Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img" ~mem_mb:256
               ~storage:(Data.Path.to_string (Tcloud.Setup.storage_path 0))
               ~host:(Data.Path.to_string root))
      in
      t.storm_ids <- id :: t.storm_ids;
      Des.Proc.sleep gap
    done;
    t.nenv.trace "storm submitted"
  end

(* Remove a random non-leader member and re-add a fresh instance at the
   same node id, all within one leader term.  Extra latency on the victim
   keeps the old incarnation's high-match append replies in flight across
   the remove/re-add: with replication session ids the leader rejects them
   as stale; without, they corrupt the fresh learner's progress entry —
   the leader then believes a wiped replica holds entries it never
   received (convicted by the progress-integrity invariant).  The latency
   clears after [gap] seconds so the learner's catch-up can finish. *)
let member_churn t delay gap =
  let ens = Tropic.Platform.coord t.nenv.platform in
  let members = Coord.Ensemble.members ens in
  if t.partitioned then skip t "member churn during partition"
  else if t.churning then skip t "member churn already active"
  else if List.exists (fun i -> not (Coord.Ensemble.replica_up ens i)) members
  then skip t "member churn while a member is down"
  else if List.length members < 3 then skip t "membership too small to churn"
  else
    match Coord.Ensemble.leader_id ens with
    | None -> skip t "no coordination leader"
    | Some leader ->
      (match pick t (List.filter (fun i -> i <> leader) members) with
       | None -> skip t "no non-leader member to churn"
       | Some victim ->
         t.churning <- true;
         inject t
           (Printf.sprintf
              "member churn: +%.1fs latency on replica %d, remove, re-add"
              delay victim);
         let net = Coord.Ensemble.net ens in
         Des.Net.set_node_delay net victim delay;
         (* Let the victim answer a few heartbeats first — it still hears
            the leader on time, but its replies (full match index, the
            pre-removal session id) are now in flight with the egress
            latency and will land after the remove/re-add. *)
         Des.Proc.sleep 0.15;
         Coord.Ensemble.remove_replica ens victim;
         (* Clear the latency after [gap] from a side process: add_replica
            below blocks until the learner catches up, which needs the
            link back at LAN speed. *)
         ignore
           (Des.Proc.spawn
              ~name:(Printf.sprintf "nemesis-churn-clear-%d" victim)
              (Tropic.Platform.sim t.nenv.platform)
              (fun () ->
                Des.Proc.sleep gap;
                Des.Net.set_node_delay net victim 0.));
         ignore (Coord.Ensemble.add_replica ens ~id:victim ());
         t.churning <- false;
         t.nenv.trace
           (Printf.sprintf "member churn over: replica %d rejoined" victim))

let perform t = function
  | Schedule.Crash_controller { target; down_for } ->
    crash_controller t target down_for
  | Schedule.Crash_coord_replica { target; down_for } ->
    crash_coord_replica t target down_for
  | Schedule.Partition_coord_leader { heal_after } ->
    partition_coord_leader t heal_after
  | Schedule.Fault_burst { probability; lasting } ->
    fault_burst t probability lasting
  | Schedule.Fail_next_device_action action -> fail_next_device_action t action
  | Schedule.Hang_next_device_action action -> hang_next_device_action t action
  | Schedule.Crash_worker { down_for } -> crash_worker t down_for
  | Schedule.Power_cycle_host -> power_cycle_host t
  | Schedule.Oob_stop_vm -> oob_stop_vm t
  | Schedule.Oob_remove_vm -> oob_remove_vm t
  | Schedule.Signal_txn { signal; stall } -> signal_txn t signal stall
  | Schedule.Flap_device { host; up_for; down_for; cycles } ->
    flap_device t host up_for down_for cycles
  | Schedule.Request_storm { count; gap } -> request_storm t count gap
  | Schedule.Crash_shard_leader { shard; down_for } ->
    crash_shard_leader t shard down_for
  | Schedule.Member_churn { delay; gap } -> member_churn t delay gap

(* ------------------------------------------------------------------ *)
(* Trigger compilation *)

let fire_times t trigger =
  match trigger with
  | Schedule.At time -> [ time ]
  | Schedule.Every { start; period; until } ->
    if period <= 0. then [ start ]
    else begin
      let times = ref [] in
      let time = ref start in
      while !time <= until do
        times := !time :: !times;
        time := !time +. period
      done;
      List.rev !times
    end
  | Schedule.Random_window { start; until; count } ->
    (* Drawn once at install time from the seeded rng: deterministic. *)
    List.init count (fun _ ->
        start +. (Random.State.float t.rng (Float.max 0. (until -. start))))
    |> List.sort compare

let install env schedule =
  let sim = Tropic.Platform.sim env.platform in
  let t =
    {
      nenv = env;
      rng = Des.Sim.rng sim;
      ctrl_down =
        Array.make (Array.length (Tropic.Platform.controllers env.platform)) false;
      worker_down =
        Array.make (Array.length (Tropic.Platform.workers env.platform)) false;
      partitioned = false;
      churning = false;
      fired_count = 0;
      removed = [];
      storm_submitted = [];
      storm_ids = [];
    }
  in
  List.iteri
    (fun i { Schedule.trigger; action } ->
      let times = fire_times t trigger in
      ignore
        (Des.Proc.spawn
           ~name:(Printf.sprintf "nemesis-%s-%d" schedule.Schedule.name i)
           sim
           (fun () ->
             List.iter
               (fun time ->
                 let delay = time -. Des.Sim.now sim in
                 if delay > 0. then Des.Proc.sleep delay;
                 (* Each firing runs in its own process so a long action
                    (restart delays, stalls) never pushes later firings. *)
                 ignore
                   (Des.Proc.spawn
                      ~name:
                        (Printf.sprintf "nemesis-%s-%d@%.0f"
                           schedule.Schedule.name i time)
                      sim
                      (fun () -> perform t action)))
               times)))
    schedule.Schedule.steps;
  t
