type violation = { invariant : string; at : float; detail : string }

let violation_to_string v =
  Printf.sprintf "[%8.2f] %-22s %s" v.at v.invariant v.detail

(* ------------------------------------------------------------------ *)
(* Continuous tracker *)

type tracker = {
  sim : Des.Sim.t;
  mutable stopped : bool;
  mutable found : violation list;
  leaders_by_term : (int, int) Hashtbl.t;  (* coord term -> replica id *)
  overcommitted : (int, unit) Hashtbl.t;   (* host idx already reported *)
  progress_lied : (int * int, unit) Hashtbl.t;
      (* (shard, peer) pairs already reported by progress-integrity *)
  stall_budget : float option;
  first_started : (int, float) Hashtbl.t;  (* txn id -> first seen Started *)
  stuck_reported : (int, unit) Hashtbl.t;
  queue_budget : int option;
  mutable queue_reported : bool;
}

let record tracker invariant detail =
  tracker.found <-
    { invariant; at = Des.Sim.now tracker.sim; detail } :: tracker.found

let poll_coord_leadership tracker platform =
  let ens = Tropic.Platform.coord platform in
  List.iter
    (fun i ->
      if Coord.Ensemble.replica_up ens i then begin
        let replica = Coord.Ensemble.replica ens i in
        if Coord.Replica.is_leader replica then begin
          let term = Coord.Replica.term replica in
          match Hashtbl.find_opt tracker.leaders_by_term term with
          | None -> Hashtbl.replace tracker.leaders_by_term term i
          | Some j when j <> i ->
            record tracker "one-leader-per-term"
              (Printf.sprintf "replicas %d and %d both lead term %d" j i term)
          | Some _ -> ()
        end
      end)
    (Coord.Ensemble.replica_ids ens)

(* The leader's replication progress must never run ahead of reality: if
   it believes peer P has replicated up to index m, P's log must actually
   reach m.  Under the current leader this holds unconditionally — acked
   entries are never truncated out from under the leader that acked them —
   unless a stale append reply leaks across a membership change (node
   removed and re-added within one term) and inflates the fresh
   incarnation's progress entry.  Checked only when exactly one live
   member claims leadership, so a transient split view (old leader not yet
   deposed) cannot false-positive. *)
let poll_progress_integrity tracker platform =
  for sid = 0 to Tropic.Platform.shard_count platform - 1 do
    let ens = Tropic.Platform.coord_ensemble platform sid in
    let leaders =
      List.filter
        (fun i ->
          Coord.Ensemble.replica_up ens i
          &&
          let r = Coord.Ensemble.replica ens i in
          Coord.Replica.is_leader r && Coord.Replica.is_member r)
        (Coord.Ensemble.replica_ids ens)
    in
    match leaders with
    | [ lid ] ->
      let leader = Coord.Ensemble.replica ens lid in
      List.iter
        (fun (peer, match_index) ->
          if List.mem peer (Coord.Ensemble.replica_ids ens) then begin
            let actual =
              Coord.Replica.last_log_index (Coord.Ensemble.replica ens peer)
            in
            if
              match_index > actual
              && not (Hashtbl.mem tracker.progress_lied (sid, peer))
            then begin
              Hashtbl.replace tracker.progress_lied (sid, peer) ();
              record tracker "progress-integrity"
                (Printf.sprintf
                   "shard %d: leader %d believes replica %d matches index \
                    %d, but its log ends at %d"
                   sid lid peer match_index actual)
            end
          end)
        (Coord.Replica.progress_snapshot leader)
    | _ -> ()
  done

(* A transaction may be Started for a long time legitimately (phyQ
   queueing, retries, fail-overs), but past the stall budget it is stuck:
   it holds its write locks, so everything conflicting is wedged behind
   it.  Tracks the first time each id is seen Started on whoever leads;
   ids that leave Started are forgiven (recovery re-Starting an id keeps
   its original clock — the locks were held the whole time). *)
let poll_stuck_locks tracker platform =
  match tracker.stall_budget with
  | None -> ()
  | Some budget ->
    (* Observe every shard that currently has a leader; ids owned by a
       leaderless shard are neither clocked nor forgiven this poll (same
       blind spot the single-shard tracker has during fail-over). *)
    let shards = Tropic.Platform.shard_count platform in
    let observed = Array.make shards false in
    let started = ref [] in
    for sid = 0 to shards - 1 do
      match Tropic.Platform.shard_leader platform sid with
      | None -> ()
      | Some leader ->
        observed.(sid) <- true;
        started := Tropic.Controller.started_txns leader @ !started
    done;
    let started = !started in
    let now = Des.Sim.now tracker.sim in
    let live = Hashtbl.create 16 in
    List.iter (fun id -> Hashtbl.replace live id ()) started;
    let gone =
      Hashtbl.fold
        (fun id _ acc ->
          if Hashtbl.mem live id || not observed.(id mod shards) then acc
          else id :: acc)
        tracker.first_started []
    in
    List.iter (Hashtbl.remove tracker.first_started) gone;
    List.iter
      (fun id ->
        match Hashtbl.find_opt tracker.first_started id with
        | None -> Hashtbl.replace tracker.first_started id now
        | Some since ->
          if now -. since > budget && not (Hashtbl.mem tracker.stuck_reported id)
          then begin
            Hashtbl.replace tracker.stuck_reported id ();
            record tracker "stuck-lock"
              (Printf.sprintf
                 "txn %d in flight (locks held) for %.0fs, budget %.0fs" id
                 (now -. since) budget)
          end)
      started

(* Admission control exists to bound the controller's pending queue; past
   the budget the platform is queueing unboundedly under load it should
   shed.  Reported once per run — a storm would otherwise drown the
   violation list in one line per poll. *)
let poll_bounded_queue tracker platform =
  match tracker.queue_budget with
  | None -> ()
  | Some budget ->
    if not tracker.queue_reported then begin
      (* Per-shard bound: each shard's admission control sheds on its own
         queue, so the budget applies to every leader separately. *)
      for sid = 0 to Tropic.Platform.shard_count platform - 1 do
        match Tropic.Platform.shard_leader platform sid with
        | None -> ()
        | Some leader ->
          let pending = Tropic.Controller.todo_length leader in
          if pending > budget && not tracker.queue_reported then begin
            tracker.queue_reported <- true;
            record tracker "bounded-queue"
              (Printf.sprintf "%d transactions pending on shard %d, budget %d"
                 pending sid budget)
          end
      done
    end

let overcommit_violations ?(once = None) computes =
  let found = ref [] in
  Array.iteri
    (fun i (root, compute) ->
      let used = Devices.Compute.used_mem_mb compute in
      let capacity = Devices.Compute.mem_mb compute in
      let already =
        match once with Some seen -> Hashtbl.mem seen i | None -> false
      in
      if used > capacity && not already then begin
        (match once with Some seen -> Hashtbl.replace seen i () | None -> ());
        found :=
          Printf.sprintf "%s holds %d MB of VMs on %d MB of memory"
            (Data.Path.to_string root) used capacity
          :: !found
      end)
    computes;
  List.rev !found

let start ?(period = 0.25) ?stall_budget ?queue_budget ~platform ~computes () =
  let tracker =
    {
      sim = Tropic.Platform.sim platform;
      stopped = false;
      found = [];
      leaders_by_term = Hashtbl.create 16;
      overcommitted = Hashtbl.create 8;
      progress_lied = Hashtbl.create 8;
      stall_budget;
      first_started = Hashtbl.create 16;
      stuck_reported = Hashtbl.create 8;
      queue_budget;
      queue_reported = false;
    }
  in
  ignore
    (Des.Proc.spawn ~name:"invariant-tracker" tracker.sim (fun () ->
         while not tracker.stopped do
           Des.Proc.sleep period;
           poll_coord_leadership tracker platform;
           poll_progress_integrity tracker platform;
           poll_stuck_locks tracker platform;
           poll_bounded_queue tracker platform;
           List.iter
             (record tracker "no-overcommit")
             (overcommit_violations ~once:(Some tracker.overcommitted) computes)
         done));
  tracker

let stop tracker = tracker.stopped <- true
let tracker_violations tracker = List.rev tracker.found

(* ------------------------------------------------------------------ *)
(* Trace lifecycle check *)

let check_trace ~at tracer =
  List.map
    (fun e ->
      {
        invariant = "trace-" ^ e.Trace.Check.check;
        at;
        detail =
          Printf.sprintf "txn %d: %s" e.Trace.Check.ctxn e.Trace.Check.detail;
      })
    (Trace.Check.validate tracer)

(* ------------------------------------------------------------------ *)
(* Quiescence check *)

type vm_fate = { vm : string; host : int; present : bool; running : bool }

let check_quiescence ~platform ~computes ~devices ~txns ~expected ~skip_vm =
  let at = Des.Sim.now (Tropic.Platform.sim platform) in
  let found = ref [] in
  let violation invariant detail =
    found := { invariant; at; detail } :: !found
  in
  (* 1. Nothing lost: every submitted transaction reached a terminal state. *)
  List.iter
    (fun (id, state) ->
      match state with
      | Some s when Tropic.Txn.is_terminal s -> ()
      | Some s ->
        violation "transaction-terminal"
          (Printf.sprintf "txn %d stuck in %s" id (Tropic.Txn.state_to_string s))
      | None ->
        violation "transaction-terminal"
          (Printf.sprintf "txn %d has no record" id))
    txns;
  (* 2. Exactly-once commit effects on the devices. *)
  let expected_present = Hashtbl.create 64 in
  List.iter
    (fun fate -> if fate.present then Hashtbl.replace expected_present fate.vm fate)
    expected;
  Array.iteri
    (fun i (root, compute) ->
      List.iter
        (fun vm ->
          if not (skip_vm vm) then
            match Hashtbl.find_opt expected_present vm with
            | None ->
              violation "exactly-once"
                (Printf.sprintf "unexpected VM %s on %s" vm
                   (Data.Path.to_string root))
            | Some fate when fate.host <> i ->
              violation "exactly-once"
                (Printf.sprintf "VM %s found on %s, expected host %d" vm
                   (Data.Path.to_string root) fate.host)
            | Some _ -> ())
        (Devices.Compute.vm_names compute))
    computes;
  List.iter
    (fun fate ->
      if not (skip_vm fate.vm) then
        if fate.present then begin
          let _, compute = computes.(fate.host) in
          match Devices.Compute.vm_state compute fate.vm with
          | None ->
            violation "exactly-once"
              (Printf.sprintf "committed VM %s missing from host %d" fate.vm
                 fate.host)
          | Some state ->
            let want = if fate.running then `Running else `Stopped in
            if state <> want then
              violation "exactly-once"
                (Printf.sprintf "VM %s is %s, expected %s" fate.vm
                   (match state with `Running -> "running" | `Stopped -> "stopped")
                   (if fate.running then "running" else "stopped"))
        end
        else
          Array.iteri
            (fun i (_, compute) ->
              if Devices.Compute.vm_state compute fate.vm <> None then
                violation "exactly-once"
                  (Printf.sprintf "destroyed VM %s resurrected on host %d"
                     fate.vm i))
            computes)
    expected;
  (* 3. Capacity: final physical placement respects host memory. *)
  List.iter (violation "no-overcommit") (overcommit_violations computes);
  (* 4/5/6 need a leading controller — on every shard.  Each device
     subtree is judged against its owning shard's leader (the copies a
     shard keeps of foreign subtrees are cosmetic and go stale), and the
     drained checks apply to every shard's scheduler state. *)
  let shards = Tropic.Platform.shard_count platform in
  for sid = 0 to shards - 1 do
    let where =
      if shards = 1 then "" else Printf.sprintf " (shard %d)" sid
    in
    match Tropic.Platform.shard_leader platform sid with
    | None ->
      violation "leader-election"
        (Printf.sprintf "no controller leads%s at quiescence" where)
    | Some leader ->
      List.iter
        (fun path ->
          violation "convergence"
            (Printf.sprintf "%s still quarantined%s" (Data.Path.to_string path)
               where))
        (Tropic.Controller.quarantined leader);
      let tree = Tropic.Controller.tree leader in
      List.iter
        (fun device ->
          let root = Devices.Device.root device in
          if Tropic.Platform.shard_of_path platform root = sid then
            match Data.Tree.subtree tree root with
            | Error e ->
              violation "convergence"
                (Printf.sprintf "%s missing from logical tree%s: %s"
                   (Data.Path.to_string root) where
                   (Data.Tree.error_to_string e))
            | Ok logical ->
              let physical = Devices.Device.export device in
              if not (Data.Tree.equal logical physical) then begin
                if Sys.getenv_opt "TROPIC_DIVERGE_DUMP" <> None then
                  Printf.eprintf
                    "=== diverge %s ===\n-- logical --\n%s\n-- physical --\n%s\n"
                    (Data.Path.to_string root) (Data.Tree.to_string logical)
                    (Data.Tree.to_string physical);
                violation "convergence"
                  (Printf.sprintf "layers diverge at %s%s"
                     (Data.Path.to_string root) where)
              end)
        devices;
      let todo = Tropic.Controller.todo_length leader in
      let inflight = Tropic.Controller.inflight leader in
      let locks = Tropic.Controller.lock_count leader in
      if todo > 0 then
        violation "quiescence-drained"
          (Printf.sprintf "todo queue still holds %d transactions%s" todo
             where);
      if inflight > 0 then
        violation "quiescence-drained"
          (Printf.sprintf "%d transactions still in flight%s" inflight where);
      if locks > 0 then
        violation "quiescence-drained"
          (Printf.sprintf "lock table still holds %d entries%s" locks where);
      let blocked = Tropic.Controller.blocked_length leader in
      let waiters = Tropic.Controller.waiter_count leader in
      if blocked > 0 then
        violation "quiescence-drained"
          (Printf.sprintf "blocked table still holds %d transactions%s" blocked
             where);
      if waiters > 0 then
        violation "quiescence-drained"
          (Printf.sprintf "lock table still indexes %d waiters%s" waiters
             where)
  done;
  List.rev !found
