(** Declarative nemesis schedules.

    A schedule is a named list of steps; each step pairs a {!trigger}
    (when to fire) with an {!action} (what fault to inject).  Schedules
    are pure data — {!Nemesis.install} compiles them into DES processes
    against a live platform, so the same schedule replayed under the same
    simulation seed injects exactly the same faults at exactly the same
    virtual times. *)

(** Which instance a controller/replica fault hits. *)
type target =
  | Leader  (** whoever currently leads (skipped if nobody does) *)
  | Random  (** a uniformly random live instance *)

type action =
  | Crash_controller of { target : target; down_for : float }
      (** kill a TROPIC controller; restart it [down_for] seconds later *)
  | Crash_coord_replica of { target : target; down_for : float }
      (** crash a coordination replica (stable state survives); restarted
          after [down_for].  Skipped if it would break the quorum. *)
  | Partition_coord_leader of { heal_after : float }
      (** cut the coordination leader off from its peers, heal later *)
  | Fault_burst of { probability : float; lasting : float }
      (** background device-action failure probability, then back to 0 *)
  | Fail_next_device_action of string
      (** arm a one-shot failure of the named action on a random host *)
  | Hang_next_device_action of string
      (** arm a one-shot hang of the named action on a random device: the
          invocation never returns until the invoking process is killed *)
  | Crash_worker of { down_for : float }
      (** kill a random worker (abandoning any in-flight execution);
          restart it [down_for] seconds later *)
  | Power_cycle_host     (** random host: every running VM found stopped *)
  | Oob_stop_vm          (** stop a random running VM behind TROPIC's back *)
  | Oob_remove_vm        (** delete a random stopped VM behind TROPIC's back *)
  | Signal_txn of { signal : [ `Term | `Kill ]; stall : float }
      (** wait [stall] seconds, then TERM/KILL a random live transaction *)
  | Flap_device of { host : int; up_for : float; down_for : float; cycles : int }
      (** alternate compute host [host] between healthy and
          always-failing-transiently, [cycles] times *)
  | Request_storm of { count : int; gap : float }
      (** fire-and-forget burst of [count] small spawnVM requests against
          the flappable hot host, one every [gap] seconds *)
  | Crash_shard_leader of { shard : int; down_for : float }
      (** kill the named shard's current leader controller; restart it
          [down_for] seconds later.  Skipped if the shard has no leader
          or only one controller still standing. *)
  | Member_churn of { delay : float; gap : float }
      (** remove a random non-leader coordination replica from the
          ensemble configuration and immediately re-add a fresh instance
          at the same node id, inside one leader term.  [delay] seconds of
          extra egress latency are put on that node first, so the old
          incarnation's append replies are still in flight when the fresh
          learner takes over the id; the latency clears after [gap]
          seconds.  Skipped when there is no leader, a member is down, or
          the membership is below three. *)

type trigger =
  | At of float
  | Every of { start : float; period : float; until : float }
  | Random_window of { start : float; until : float; count : int }
      (** [count] firings at uniformly random times in the window, drawn
          from the simulation's seeded rng *)

type step = { trigger : trigger; action : action }

(** Which workload the runner drives while the schedule injects faults:
    the imperative spawn/stop/destroy chains, the goal-state convergence
    workload (two {!Plan} goals, the second a capacity swap that needs
    dependency ordering and a staging hop), or the cross-shard migration
    waves (spawn on one shard's host, migrate to the other shard's and
    back — every migration a 2PC transaction). *)
type workload = Chains | Converge | Migrate

type t = {
  name : string;
  workload : workload;
  shards : int;  (** resource-tree shards the platform is built with *)
  steps : step list;
}

(** {1 Step builders} *)

val at : float -> action -> step
val every : ?start:float -> period:float -> until:float -> action -> step
val random_window : start:float -> until:float -> count:int -> action -> step

(** {1 Preset schedules (the default sweep grid)} *)

(** Leader-controller crash/restart cycles. *)
val controller_crashes : t

(** Coordination-service chaos: replica crashes and leader partitions. *)
val coord_faults : t

(** Device chaos: fault bursts, power cycles, out-of-band mutations. *)
val device_storm : t

(** Operator signals: TERM and KILL against live transactions. *)
val signal_storm : t

(** Leader crashes aimed at the window where conflicting transactions sit
    in the scheduler's blocked table: the recovered leader must re-derive
    the blocked set from persisted transaction records, losing no
    transaction and waking none twice. *)
val blocked_crash : t

(** A bit of everything at once. *)
val mixed : t

(** The robustness gauntlet: device hangs on the slow actions, transient
    fault bursts, and worker crashes mid-execution.  Clean only when the
    retry/deadline/watchdog layer is on. *)
val hang_storm : t

(** The overload gauntlet: the hot host flaps between dead and healthy
    while a request storm floods the controller.  Clean only with health
    scoring + circuit breakers + admission control; the no-breaker build
    trips the bounded-queue invariant. *)
val flap_storm : t

(** The goal-state gauntlet: leader and worker crashes landing mid-plan
    while the converge workload runs.  The executor must resume after
    fail-over and converge exactly; the no-plan-deps build livelocks on
    the workload's capacity swap and is convicted. *)
val plan_crash : t

(** The sharding gauntlet: shard-leader crashes landing between 2PC
    prepare and decision while the two-shard migrate workload runs.
    Recovery must resume every in-doubt transaction to its durably
    decided outcome; the no-2pc build (decision record skipped) is
    convicted by the exactly-once and convergence invariants. *)
val shard_crash : t

(** The membership gauntlet: coordination replicas removed and re-added
    within one leader term while crashes and partitions run, with a
    delayed-message window keeping the old incarnation's append replies
    in flight across the churn.  Clean only with replication session ids;
    the no-session-id build is convicted by the progress-integrity
    invariant. *)
val member_churn : t

(** The group-commit durability gauntlet: an open-loop request storm
    keeps the coordination leader's append batcher full while
    leader-targeted replica crashes land inside the batch windows.
    Stock group commit acks only after batch quorum, so every acked
    submission survives; the unsafe-ack build (acks at enqueue) is
    convicted by the acked-durable invariant. *)
val commit_storm : t

(** All of the above, in sweep order. *)
val presets : t list

(** Look a preset up by name. *)
val find : string -> t option

val action_to_string : action -> string
val describe : t -> string

(** Latest virtual time at which the schedule can still be acting
    (last possible firing plus the action's own tail — restart delays,
    heal delays, burst durations).  The runner waits this out before its
    quiescence checks. *)
val end_time : t -> float
