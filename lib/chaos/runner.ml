type build =
  | Stock
  | No_constraints
  | No_guard_locks
  | No_watchdog
  | No_breaker
  | No_plan_deps
  | No_2pc
  | No_session_ids
  | Unsafe_ack

let build_to_string = function
  | Stock -> "stock"
  | No_constraints -> "no-constraints"
  | No_guard_locks -> "no-guard-locks"
  | No_watchdog -> "no-watchdog"
  | No_breaker -> "no-breaker"
  | No_plan_deps -> "no-plan-deps"
  | No_2pc -> "no-2pc"
  | No_session_ids -> "no-session-id"
  | Unsafe_ack -> "unsafe-ack"

let build_of_string = function
  | "stock" -> Ok Stock
  | "no-constraints" -> Ok No_constraints
  | "no-guard-locks" -> Ok No_guard_locks
  | "no-watchdog" -> Ok No_watchdog
  | "no-breaker" -> Ok No_breaker
  | "no-plan-deps" -> Ok No_plan_deps
  | "no-2pc" -> Ok No_2pc
  | "no-session-id" | "no-session-ids" -> Ok No_session_ids
  | "unsafe-ack" -> Ok Unsafe_ack
  | other ->
    Error
      (Printf.sprintf
         "unknown build %S (expected stock, no-constraints, no-guard-locks, \
          no-watchdog, no-breaker, no-plan-deps, no-2pc, no-session-id or \
          unsafe-ack)"
         other)

type config = {
  build : build;
  hosts : int;
  txns : int;
  horizon : float;
  quiesce_grace : float;
}

let default_config =
  { build = Stock; hosts = 8; txns = 40; horizon = 500.; quiesce_grace = 12. }

let quick_config = { default_config with txns = 16; horizon = 400. }

type result = {
  schedule : string;
  seed : int;
  rbuild : build;
  committed : int;
  aborted : int;
  failed : int;
  injected : int;
  deferrals : int;
  wakeups : int;
  spurious_wakeups : int;
  retries : int;
  transient_failures : int;
  timeouts : int;
  auto_terms : int;
  auto_kills : int;
  sheds : int;
  breaker_trips : int;
  breaker_probes : int;
  breaker_closes : int;
  twopc_started : int;
  twopc_committed : int;
  twopc_aborted : int;
  twopc_prepares : int;
  joins : int;
  leaves : int;
  catchups : int;
  stale_sessions : int; (* append replies rejected as stale-session *)
  group_flushes : int;
  group_batched : int; (* commands that rode a grouped append *)
  acks_deferred : int; (* acks held back until batch quorum *)
  unsafe_acks : int;   (* acks released before quorum (unsafe-ack build) *)
  shards : int;
  per_shard : string list;
  violations : Invariant.violation list;
  trace : string list;
  phases : string;
  span_dump : string list;
  duration : float;
}

let reproducer r =
  Printf.sprintf "tropic_exp chaos --build %s --schedule %s --seed %d"
    (build_to_string r.rbuild) r.schedule r.seed

(* How often the controller's sweeper compares the layers and repairs. *)
let repair_interval = 5.0

(* Watchdog tuned for this harness: a Started transaction can sit in phyQ
   for tens of seconds behind 4 busy workers, so the flat slack must cover
   queueing on top of the per-log latency estimate.  Deadline for a
   spawnVM log lands around 105 s — far past honest queueing, far before
   the stall budget below. *)
let watchdog_config =
  {
    Tropic.Watchdog.default_config with
    Tropic.Watchdog.latency_factor = 6.;
    slack = 60.;
    term_grace = 15.;
    kill_grace = 15.;
  }

(* Stuck-lock conviction threshold for the continuous invariant: past the
   watchdog's worst-case rescue (deadline + both graces + signal
   processing), well before the horizon. *)
let stall_budget = 240.0

(* Health scoring tuned for the flap cadence: two clean failures on a
   root push the combined score past the threshold, and the cooldown is
   long enough that the canary usually lands in a healthy up-phase after
   a couple of re-trips.  latency_ref sits past the watchdog deadline so
   honest queueing never trips a breaker on its own. *)
let health_config =
  {
    Tropic.Health.default_config with
    Tropic.Health.alpha = 0.4;
    trip_threshold = 0.6;
    cooldown = 20.;
    latency_ref = 150.;
    poll_interval = 1.0;
  }

(* Admission watermarks: shed at 48 pending, resume at 32.  The
   bounded-queue budget sits above the high watermark — with shedding on,
   the pending count cannot legitimately reach it. *)
let admission_watermarks =
  { Tropic.Health.queue_high = Some 48; queue_low = 32 }

let queue_budget = 64

(* ------------------------------------------------------------------ *)
(* Deterministic workload.

   Transaction chain [k] spawns VM "cNNN"; every 4th chain targets host 0
   with an oversized VM (the hot host — under constraints those spawns
   abort once memory runs out, without constraints they overcommit and
   the invariant tracker must catch it).  Every 5th chain stops its VM
   after spawning, every 10th destroys it after stopping. *)

type op_kind = Spawn | Stop | Destroy | Migrated  (** op_host = destination *)

type op = { kind : op_kind; op_vm : string; op_host : int }

let chain_plan config k =
  let hot = k mod 4 = 3 in
  let host = if hot then 0 else k mod config.hosts in
  let mem = if hot then 2048 else 512 in
  let vm = Printf.sprintf "c%03d" k in
  let stop = k mod 5 = 2 in
  let destroy = k mod 10 = 2 in
  (vm, host, mem, stop, destroy)

let storage_hosts = 2

(* ------------------------------------------------------------------ *)
(* Goal-state convergence workload (the plan-crash schedule).

   Two declarative goals, executed in sequence by [Plan.Executor]:
   populate hosts 0 and 2 (both xen) to the brim — two 4096 MB VMs each —
   then swap one VM between them.  The swap is the planner's hardest
   shape: both hosts are full, so the migrations need drain-before-fill
   capacity edges, which form a cycle the planner breaks with a staging
   hop through host 4.  The no-plan-deps build drops every edge, so both
   migrations race straight into full hosts, abort on the memory
   constraint every round, and the phase livelocks — the plan-converged
   invariant convicts it.  Leader/worker crashes land mid-plan; the
   re-diff between rounds makes resumption idempotent, which the
   exactly-once check verifies against the final goal's placement. *)

let plan_vm name = { Plan.Model.vm_name = name; running = true; mem_mb = 4096 }

let plan_switch =
  {
    Plan.Model.switch_index = 0;
    vlans =
      [ { Plan.Model.vlan_id = 100; vlan_name = "plan"; ports = [ "p0"; "q0" ] } ];
  }

let plan_host index vms = { Plan.Model.host_index = index; vms }

let converge_populate_goal =
  {
    Plan.Model.hosts =
      [
        plan_host 0 [ plan_vm "p0"; plan_vm "p1" ];
        plan_host 2 [ plan_vm "q0"; plan_vm "q1" ];
        plan_host 4 [];
      ];
    switches = [ plan_switch ];
  }

let converge_swap_goal =
  {
    Plan.Model.hosts =
      [
        plan_host 0 [ plan_vm "q0"; plan_vm "p1" ];
        plan_host 2 [ plan_vm "p0"; plan_vm "q1" ];
        plan_host 4 [];
      ];
    switches = [ plan_switch ];
  }

(* Expected per-VM placement at quiescence: the last goal, verbatim. *)
let converge_expected_fates goal =
  List.concat_map
    (fun (h : Plan.Model.host_goal) ->
      List.map
        (fun (vm : Plan.Model.vm_goal) ->
          {
            Invariant.vm = vm.Plan.Model.vm_name;
            host = h.Plan.Model.host_index;
            present = true;
            running = vm.Plan.Model.running;
          })
        h.Plan.Model.vms)
    goal.Plan.Model.hosts

(* ------------------------------------------------------------------ *)

let run_one ?(trace = false) config ~schedule ~seed =
  let sim = Des.Sim.create ~seed () in
  (* Span recorder: always on, so every violating seed carries its span
     tree (the reproducer replays it as a dump) and the lifecycle
     invariants below get checked on all 128 sweep runs, not just
     replays. *)
  let tracer = Trace.create ~sim () in
  let size =
    {
      Tcloud.Setup.small with
      Tcloud.Setup.compute_hosts = config.hosts;
      storage_hosts;
      storage_capacity_mb = 5_000_000;
    }
  in
  (* The migrate workload shuttles VMs between adjacent hosts; a uniform
     hypervisor keeps every pair legal under the §6.2 VM-type rule. *)
  let size =
    match schedule.Schedule.workload with
    | Schedule.Migrate -> { size with Tcloud.Setup.hypervisors = [ "xen" ] }
    | Schedule.Chains | Schedule.Converge -> size
  in
  (* Process timing: device actions take simulated seconds, so chains
     overlap and conflicting transactions really park in the blocked
     table (the window the blocked-crash schedule aims its crashes at).
     Instant timing would serialize the whole workload trivially. *)
  let inventory =
    Tcloud.Setup.build ~timing:`Process ~rng:(Des.Sim.rng sim) size
  in
  let env =
    match config.build with
    | No_constraints ->
      (* Same actions and procedures, no logical-layer constraints: the
         ablation the harness must be able to convict. *)
      let env = Tropic.Dsl.create_env () in
      Tcloud.Actions.register_all env;
      Tcloud.Procs.register_all env;
      env
    | Stock | No_guard_locks | No_watchdog | No_breaker | No_plan_deps
    | No_2pc | No_session_ids | Unsafe_ack ->
      inventory.Tcloud.Setup.env
  in
  (* No_watchdog strips the whole robustness layer — watchdog AND the
     workers' retry/deadline policy.  Leaving deadlines on would rescue
     hung invocations anyway and hide exactly the stalls the ablation is
     meant to exhibit.  No_breaker strips only the overload layer —
     health scoring, breakers and admission control — keeping the
     watchdog and retries, so the flap-storm conviction isolates exactly
     what the breakers buy. *)
  let robust = config.build <> No_watchdog in
  let breaker = config.build <> No_breaker in
  let controller_config =
    {
      Tcloud.Setup.controller_config with
      Tropic.Controller.repair_interval = Some repair_interval;
      constraint_guard_locks = config.build <> No_guard_locks;
      watchdog =
        (if robust then watchdog_config else Tropic.Watchdog.disabled);
      health = (if breaker then health_config else Tropic.Health.disabled);
      admission =
        (if breaker then admission_watermarks else Tropic.Health.no_admission);
      (* No_2pc skips the durable cross-shard decision record: a crashed
         coordinator presumes abort on transactions whose commit already
         reached the other shard — the ablation the shard-crash schedule
         must convict. *)
      twopc_decision_record = config.build <> No_2pc;
    }
  in
  let platform =
    Tropic.Platform.create
      {
        Tropic.Platform.default_spec with
        Tropic.Platform.controllers = 3;
        workers = 4;
        shards = schedule.Schedule.shards;
        mode = Tropic.Platform.Full;
        coord_replicas = 3;
        (* No_session_ids drops the replication-session check on append
           replies: a response from a node removed and re-added within
           one term then corrupts the fresh incarnation's progress entry
           — the ablation the member-churn schedule must convict. *)
        coord_config =
          {
            Coord.Types.default_config with
            Coord.Types.session_ids = config.build <> No_session_ids;
            (* Unsafe_ack releases client acks at enqueue instead of
               after batch quorum: a coordination leader crash inside the
               batch window then loses acked submissions — the ablation
               the commit-storm schedule must convict.  For that schedule
               only, the batch window is stretched to the storm's
               submission gap so a leader crash during the storm reliably
               lands while acked commands are still short of quorum;
               stock group commit defers those acks and stays clean
               regardless.  Other schedules keep the default window —
               their convictions are tuned to sub-ms ack latency. *)
            unsafe_ack = config.build = Unsafe_ack;
            group_timeout =
              (if schedule.Schedule.name = "commit-storm" then 0.05
               else Coord.Types.default_config.Coord.Types.group_timeout);
          };
        controller_config;
        (* Generous enough that a healed 8 s partition does not expire
           live controller sessions behind their backs. *)
        controller_session_timeout = 5.0;
        (* Room for the workload chains plus a 90-txn request storm. *)
        client_slots = 256;
        worker_retry =
          (if robust then Tropic.Physical.default_retry
           else Tropic.Physical.no_retry);
        trace = Some tracer;
      }
      env ~initial_tree:inventory.Tcloud.Setup.tree
      ~devices:inventory.Tcloud.Setup.devices sim
  in
  let trace_buf = ref [] in
  let tr line =
    trace_buf := Printf.sprintf "[%8.2f] %s" (Des.Sim.now sim) line :: !trace_buf
  in
  let tr_verbose line = if trace then tr line in
  (* Workload bookkeeping *)
  let ops = ref [] in (* (txn_id, op), newest first *)
  let states = Hashtbl.create 64 in (* txn_id -> final state *)
  let live = Hashtbl.create 16 in
  let completed = ref 0 in
  let submit_op op ~proc ~args =
    let id = Tropic.Platform.submit platform ~proc ~args in
    ops := (id, op) :: !ops;
    Hashtbl.replace live id ();
    tr_verbose
      (Printf.sprintf "txn %d: %s %s @ host %d" id proc op.op_vm op.op_host);
    let state = Tropic.Platform.await platform id in
    Hashtbl.remove live id;
    Hashtbl.replace states id state;
    tr_verbose
      (Printf.sprintf "txn %d: %s" id (Tropic.Txn.state_to_string state));
    state
  in
  let workload = schedule.Schedule.workload in
  let workload_target =
    match workload with
    | Schedule.Chains | Schedule.Migrate -> config.txns
    | Schedule.Converge -> 1
  in
  let plan_reports = ref [] in
  (* Operator move shared by the quiesce monitor and the converge
     driver: [reload] every device subtree whose divergence has no
     repair rule (out-of-band removals, crash-stranded partial effects
     such as an orphaned cloned image).  Returns how many were
     reloaded.  Must run inside a simulation process. *)
  let reload_unrepairable () =
    (* Judge each device against its owning shard's leader view (grafted
       into one platform-wide tree); blocks until every shard leads. *)
    let tree = Tropic.Platform.composite_tree platform in
    let reloaded = ref 0 in
    List.iter
      (fun device ->
        let root = Devices.Device.root device in
        let physical = Devices.Device.export device in
        match Data.Tree.subtree tree root with
        | Error _ -> ()
        | Ok logical ->
          if not (Data.Tree.equal logical physical) then begin
            let plan =
              Tropic.Recon.plan_repair ~rules:Tcloud.Rules.repair_rules
                ~at:root ~logical ~physical
            in
            if plan.Tropic.Recon.unrepaired <> [] then begin
              incr reloaded;
              tr
                (Printf.sprintf "operator reload of %s"
                   (Data.Path.to_string root));
              Tropic.Platform.reload platform root
            end
          end)
      inventory.Tcloud.Setup.devices;
    !reloaded
  in
  (match workload with
   | Schedule.Converge ->
     ignore
       (Des.Proc.spawn ~name:"converge-driver" sim (fun () ->
            Des.Proc.sleep 5.0;
            let ctx =
              { Plan.Planner.storage_hosts; template = "base.img" }
            in
            (* Generous rounds: crashes can burn several re-plans. *)
            let econfig =
              {
                Plan.Executor.parallelism = 4;
                max_rounds = 12;
                round_delay = 2.0;
              }
            in
            let ordered = config.build <> No_plan_deps in
            (* A worker crash can strand partial effects — an orphaned
               cloned image, a half-created VM — that no repair rule
               covers and that make the same plan step abort
               deterministically on every re-plan.  When a phase blocks,
               play operator exactly as the quiesce monitor does: reload
               the drifted subtrees (adopting the stranded artifacts into
               the logical layer) and converge again; the fresh diff then
               plans around them.  Only the final attempt per phase
               counts for the plan-converged invariant. *)
            let rec attempt phase model tries =
              let report =
                Plan.Executor.converge ~config:econfig ~ordered platform
                  ctx ~model
              in
              plan_reports := (phase, report) :: !plan_reports;
              tr
                (Printf.sprintf "converge %s: %s" phase
                   (Plan.Executor.summary report));
              if report.Plan.Executor.status <> Plan.Executor.Converged
                 && tries > 0
              then begin
                let reloaded = reload_unrepairable () in
                tr
                  (Printf.sprintf
                     "converge %s: blocked; operator reloaded %d \
                      subtree(s), retrying"
                     phase reloaded);
                Des.Proc.sleep config.quiesce_grace;
                attempt phase model (tries - 1)
              end
            in
            List.iter
              (fun (phase, model) -> attempt phase model 2)
              [
                "populate", converge_populate_goal;
                "swap", converge_swap_goal;
              ];
            incr completed))
   | Schedule.Migrate ->
     (* Per-VM migration chains on a sharded platform: spawn on host [k
        mod hosts] (single-shard), migrate to the adjacent host and back.
        Device roots are assigned round-robin from the sorted root list,
        so adjacent compute hosts land on different shards and every
        migration commits through cross-shard 2PC. *)
     for k = 0 to config.txns - 1 do
       let src = k mod config.hosts in
       let dst = (src + 1) mod config.hosts in
       let vm = Printf.sprintf "m%03d" k in
       let stop = k mod 3 = 2 in
       ignore
         (Des.Proc.spawn ~name:(Printf.sprintf "migrate-%d" k) sim (fun () ->
              Des.Proc.sleep (5.0 +. (0.9 *. float_of_int k));
              let path h =
                Data.Path.to_string (Tcloud.Setup.compute_path h)
              in
              let storage_path =
                Data.Path.to_string
                  (Tcloud.Setup.storage_path (src mod storage_hosts))
              in
              let spawned =
                submit_op { kind = Spawn; op_vm = vm; op_host = src }
                  ~proc:"spawnVM"
                  ~args:
                    (Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img"
                       ~mem_mb:512 ~storage:storage_path ~host:(path src))
              in
              if spawned = Tropic.Txn.Committed then begin
                let out =
                  submit_op { kind = Migrated; op_vm = vm; op_host = dst }
                    ~proc:"migrateVM"
                    ~args:
                      (Tcloud.Procs.migrate_vm_args ~src:(path src)
                         ~dst:(path dst) ~vm)
                in
                let back =
                  if out = Tropic.Txn.Committed then
                    submit_op { kind = Migrated; op_vm = vm; op_host = src }
                      ~proc:"migrateVM"
                      ~args:
                        (Tcloud.Procs.migrate_vm_args ~src:(path dst)
                           ~dst:(path src) ~vm)
                  else out
                in
                (* Where the committed hops left the VM. *)
                let here =
                  match out, back with
                  | Tropic.Txn.Committed, Tropic.Txn.Committed -> src
                  | Tropic.Txn.Committed, _ -> dst
                  | _ -> src
                in
                if stop then
                  ignore
                    (submit_op { kind = Stop; op_vm = vm; op_host = here }
                       ~proc:"stopVM"
                       ~args:(Tcloud.Procs.stop_vm_args ~host:(path here) ~vm))
              end;
              incr completed))
     done
   | Schedule.Chains ->
  for k = 0 to config.txns - 1 do
    let vm, host, mem, stop, destroy = chain_plan config k in
    ignore
      (Des.Proc.spawn ~name:(Printf.sprintf "chain-%d" k) sim (fun () ->
           Des.Proc.sleep (5.0 +. (0.75 *. float_of_int k));
           let host_path = Data.Path.to_string (Tcloud.Setup.compute_path host) in
           let storage_path =
             Data.Path.to_string
               (Tcloud.Setup.storage_path (host mod storage_hosts))
           in
           let spawned =
             submit_op { kind = Spawn; op_vm = vm; op_host = host }
               ~proc:"spawnVM"
               ~args:
                 (Tcloud.Procs.spawn_vm_args ~vm ~template:"base.img" ~mem_mb:mem
                    ~storage:storage_path ~host:host_path)
           in
           (if spawned = Tropic.Txn.Committed && stop then
              let stopped =
                submit_op { kind = Stop; op_vm = vm; op_host = host }
                  ~proc:"stopVM"
                  ~args:(Tcloud.Procs.stop_vm_args ~host:host_path ~vm)
              in
              if stopped = Tropic.Txn.Committed && destroy then
                ignore
                  (submit_op { kind = Destroy; op_vm = vm; op_host = host }
                     ~proc:"destroyVM"
                     ~args:
                       (Tcloud.Procs.destroy_vm_args ~host:host_path
                          ~storage:storage_path ~vm)));
           incr completed))
  done);
  (* Nemesis and continuous invariants *)
  let live_txns () = Hashtbl.fold (fun id () acc -> id :: acc) live [] in
  let nemesis =
    Nemesis.install
      {
        Nemesis.platform;
        computes = inventory.Tcloud.Setup.computes;
        devices = inventory.Tcloud.Setup.devices;
        live_txns;
        trace = tr;
      }
      schedule
  in
  let tracker =
    Invariant.start ~stall_budget ~queue_budget ~platform
      ~computes:inventory.Tcloud.Setup.computes ()
  in
  (* Quiescence monitor: wait for the workload and the schedule, give the
     repair sweeper time, then play operator: [reload] any subtree whose
     divergence has no repair rule (out-of-band removals), and settle. *)
  let quiesced = ref false in
  let final_states = Hashtbl.create 64 in
  let storm_states = Hashtbl.create 64 in
  ignore
    (Des.Proc.spawn ~name:"quiesce-monitor" sim (fun () ->
         let deadline = config.horizon -. (3. *. config.quiesce_grace) -. 20. in
         while !completed < workload_target && Des.Sim.now sim < deadline do
           Des.Proc.sleep 1.0
         done;
         let schedule_end = Schedule.end_time schedule +. 10. in
         if Des.Sim.now sim < schedule_end then
           Des.Proc.sleep (schedule_end -. Des.Sim.now sim);
         (* The storm's fire-and-forget backlog must also drain before
            quiescence is declared: acked submissions still parked behind
            workload locks are live transactions, not durability
            violations.  Bounded by the same deadline — a backlog that
            never drains is a wedge the invariants should convict. *)
         let storm_live () =
           List.exists
             (fun id ->
               match Tropic.Platform.txn_state platform id with
               | Some state -> not (Tropic.Txn.is_terminal state)
               | None -> false)
             (Nemesis.storm_txns nemesis)
         in
         while storm_live () && Des.Sim.now sim < deadline do
           Des.Proc.sleep 5.0
         done;
         Des.Proc.sleep config.quiesce_grace;
         if reload_unrepairable () > 0 then Des.Proc.sleep config.quiesce_grace;
         if reload_unrepairable () > 0 then Des.Proc.sleep config.quiesce_grace;
         (* Authoritative final states, including never-awaited stragglers. *)
         List.iter
           (fun (id, _) ->
             match Hashtbl.find_opt states id with
             | Some state -> Hashtbl.replace final_states id state
             | None ->
               (match Tropic.Platform.txn_state platform id with
                | Some state -> Hashtbl.replace final_states id state
                | None -> ()))
           !ops;
         List.iter
           (fun (_, report) ->
             List.iter
               (fun ex ->
                 match ex.Plan.Executor.ex_txn with
                 | None -> ()
                 | Some id ->
                   (match Tropic.Platform.txn_state platform id with
                    | Some state -> Hashtbl.replace final_states id state
                    | None -> ()))
               report.Plan.Executor.history)
           !plan_reports;
         (* Storm submissions are fire-and-forget, but each returned id
            was acked by the coordination service — read their records
            here (client queries must run inside the simulation) for the
            acked-durable check below. *)
         List.iter
           (fun id ->
             match Tropic.Platform.txn_state platform id with
             | Some state -> Hashtbl.replace storm_states id state
             | None -> ())
           (Nemesis.storm_txns nemesis);
         quiesced := true));
  (* Drive the simulation by hand so the run ends at quiescence instead of
     grinding heartbeats until the horizon. *)
  while
    (not !quiesced)
    && Des.Sim.now sim <= config.horizon
    && Des.Sim.step sim
  do
    ()
  done;
  Invariant.stop tracker;
  (* Cumulative scheduler counters per shard: the leader at quiescence
     plus the banked totals of every instance a crash retired, summed
     into platform totals; [per_shard] keeps the breakdown for the run
     line on multi-shard platforms.  Latency percentiles come from the
     final leader only (quantiles don't merge). *)
  let shard_stats =
    List.filter_map
      (fun sid ->
        let retired = Tropic.Platform.shard_retired_stats platform sid in
        match Tropic.Platform.shard_leader platform sid with
        | None -> Some (sid, Tropic.Controller.copy_stats retired)
        | Some leader ->
          (* Leader counters plus whatever earlier (crashed) instances
             banked — a late fail-over must not erase the shard's totals. *)
          let s = Tropic.Controller.copy_stats (Tropic.Controller.stats leader) in
          Tropic.Controller.absorb_stats ~into:s retired;
          Some (sid, s))
      (List.init (Tropic.Platform.shard_count platform) Fun.id)
  in
  let sum f = List.fold_left (fun acc (_, s) -> acc + f s) 0 shard_stats in
  let deferrals = sum (fun s -> s.Tropic.Controller.deferrals)
  and wakeups = sum (fun s -> s.Tropic.Controller.wakeups)
  and spurious_wakeups = sum (fun s -> s.Tropic.Controller.spurious_wakeups)
  and retries = sum (fun s -> s.Tropic.Controller.exec_retries)
  and transient_failures = sum (fun s -> s.Tropic.Controller.transient_failures)
  and timeouts = sum (fun s -> s.Tropic.Controller.timeouts)
  and auto_terms = sum (fun s -> s.Tropic.Controller.auto_terms)
  and auto_kills = sum (fun s -> s.Tropic.Controller.auto_kills)
  and sheds = sum (fun s -> s.Tropic.Controller.sheds)
  and breaker_trips = sum (fun s -> s.Tropic.Controller.breaker_trips)
  and breaker_probes = sum (fun s -> s.Tropic.Controller.breaker_probes)
  and breaker_closes = sum (fun s -> s.Tropic.Controller.breaker_closes)
  and twopc_started = sum (fun s -> s.Tropic.Controller.twopc_started)
  and twopc_committed = sum (fun s -> s.Tropic.Controller.twopc_committed)
  and twopc_aborted = sum (fun s -> s.Tropic.Controller.twopc_aborted)
  and twopc_prepares = sum (fun s -> s.Tropic.Controller.twopc_prepares) in
  let phases =
    match shard_stats with
    | (_, s) :: _ -> Tropic.Controller.phase_summary s
    | [] ->
      "phases[p50/p99 s]: simulate n/a, lock-wait n/a, replay n/a, undo n/a"
  in
  let per_shard =
    if Tropic.Platform.shard_count platform = 1 then []
    else
      List.map
        (fun (sid, s) ->
          Printf.sprintf
            "shard %d: %d committed / %d aborted / %d failed, shed %d, %d \
             wakeups, watchdog %d TERM / %d KILL, 2pc %d started / %d \
             committed / %d aborted / %d prepares, %s"
            sid s.Tropic.Controller.committed s.Tropic.Controller.aborted
            s.Tropic.Controller.failed s.Tropic.Controller.sheds
            s.Tropic.Controller.wakeups s.Tropic.Controller.auto_terms
            s.Tropic.Controller.auto_kills s.Tropic.Controller.twopc_started
            s.Tropic.Controller.twopc_committed
            s.Tropic.Controller.twopc_aborted
            s.Tropic.Controller.twopc_prepares
            (Tropic.Controller.phase_summary s))
        shard_stats
  in
  (* Lifecycle invariants over the recorded span tree — only meaningful
     once quiesced: live transactions legitimately hold open spans, and a
     non-quiescent run already reports the [quiescence] violation. *)
  let trace_violations =
    if !quiesced then Invariant.check_trace ~at:(Des.Sim.now sim) tracer
    else []
  in
  let membership = Tropic.Platform.membership_stats platform in
  let group = Tropic.Platform.group_commit_stats platform in
  (* Evaluate *)
  let ordered_ops = List.sort (fun (a, _) (b, _) -> compare a b) !ops in
  let txns =
    match workload with
    | Schedule.Chains | Schedule.Migrate ->
      List.map
        (fun (id, _) -> (id, Hashtbl.find_opt final_states id))
        ordered_ops
    | Schedule.Converge ->
      (* Every transaction the plan executor submitted, across phases and
         rounds; states were read off the persisted records at quiescence
         (the quiesce monitor runs inside the simulation). *)
      List.sort_uniq compare
        (List.concat_map
           (fun (_, report) ->
             List.filter_map
               (fun ex ->
                 match ex.Plan.Executor.ex_txn with
                 | None -> None
                 | Some id -> Some (id, Hashtbl.find_opt final_states id))
               report.Plan.Executor.history)
           !plan_reports)
  in
  let state_of id = Hashtbl.find_opt final_states id in
  (* Fold committed operations, in submission order, into per-VM fates. *)
  let fates = Hashtbl.create 64 in
  List.iter
    (fun (id, op) ->
      if state_of id = Some Tropic.Txn.Committed then
        match op.kind with
        | Spawn ->
          Hashtbl.replace fates op.op_vm
            {
              Invariant.vm = op.op_vm;
              host = op.op_host;
              present = true;
              running = true;
            }
        | Stop ->
          (match Hashtbl.find_opt fates op.op_vm with
           | Some fate -> Hashtbl.replace fates op.op_vm { fate with running = false }
           | None -> ())
        | Migrated ->
          (match Hashtbl.find_opt fates op.op_vm with
           | Some fate -> Hashtbl.replace fates op.op_vm { fate with host = op.op_host }
           | None -> ())
        | Destroy ->
          (match Hashtbl.find_opt fates op.op_vm with
           | Some fate -> Hashtbl.replace fates op.op_vm { fate with present = false }
           | None -> ()))
    ordered_ops;
  let expected =
    match workload with
    | Schedule.Chains | Schedule.Migrate ->
      Hashtbl.fold (fun _ fate acc -> fate :: acc) fates []
    | Schedule.Converge ->
      (* The final goal is the authoritative placement — exactly the
         "no duplicate side-effects across crashes" check. *)
      converge_expected_fates converge_swap_goal
  in
  (* VMs whose fate the harness cannot predict: removed out-of-band, or
     touched by a transaction that Failed (cross-layer inconsistency was
     resolved by adopting the physical state, whatever it was). *)
  let unpredictable = Hashtbl.create 16 in
  List.iter (fun vm -> Hashtbl.replace unpredictable vm ()) (Nemesis.oob_removed nemesis);
  (* Storm submissions are never awaited; whether each one committed,
     was shed, or aborted on capacity depends on timing the harness does
     not model. *)
  List.iter (fun vm -> Hashtbl.replace unpredictable vm ()) (Nemesis.storm_vms nemesis);
  List.iter
    (fun (id, op) ->
      match state_of id with
      | Some (Tropic.Txn.Failed _) -> Hashtbl.replace unpredictable op.op_vm ()
      | _ -> ())
    ordered_ops;
  let skip_vm vm = Hashtbl.mem unpredictable vm in
  let quiescence_violations =
    Invariant.check_quiescence ~platform
      ~computes:inventory.Tcloud.Setup.computes
      ~devices:inventory.Tcloud.Setup.devices ~txns ~expected ~skip_vm
  in
  let crash_violations =
    List.map
      (fun (who, exn) ->
        {
          Invariant.invariant = "no-process-crash";
          at = Des.Sim.now sim;
          detail = Printf.sprintf "%s raised %s" who (Printexc.to_string exn);
        })
      (Des.Sim.failures sim)
  in
  (* Converge workload: every phase must end Converged — a blocked plan
     means residual drift the executor could not drive out.  Only the
     final attempt per phase counts: a phase the driver retried after an
     operator reload is judged by where it ended up, not by the blocked
     intermediate report. *)
  let plan_violations =
    let seen = Hashtbl.create 4 in
    List.filter_map
      (fun (phase, report) ->
        (* [plan_reports] is newest-first: the first report per phase
           is the final attempt. *)
        if Hashtbl.mem seen phase then None
        else begin
          Hashtbl.add seen phase ();
          if report.Plan.Executor.status = Plan.Executor.Converged then None
          else
            Some
              {
                Invariant.invariant = "plan-converged";
                at = Des.Sim.now sim;
                detail =
                  Printf.sprintf "%s: %s" phase (Plan.Executor.summary report);
              }
        end)
      !plan_reports
    |> List.rev
  in
  (* Acked-implies-durable: [submit] returning means the coordination
     service acked the enqueue, so every such id must carry a terminal
     transaction record at quiescence.  A missing record means the acked
     submission was lost (the post-crash coordination leader never had
     it); an id acked twice means a lost enqueue's sequence number was
     recycled.  Stock group commit releases acks only after batch quorum
     and stays clean; the unsafe-ack build acks at enqueue and loses the
     batch window's tail on a leader crash.  Skipped when not quiesced —
     such runs already carry the [quiescence] violation. *)
  let acked_durable_violations =
    if not !quiesced then []
    else begin
      let now = Des.Sim.now sim in
      let seen = Hashtbl.create 64 in
      List.iter (fun (id, _) -> Hashtbl.replace seen id ()) !ops;
      List.concat_map
        (fun id ->
          let recycled =
            if Hashtbl.mem seen id then
              [
                {
                  Invariant.invariant = "acked-durable";
                  at = now;
                  detail =
                    Printf.sprintf
                      "txn id %d acked twice: a lost acked enqueue's \
                       sequence number was recycled"
                      id;
                };
              ]
            else begin
              Hashtbl.replace seen id ();
              []
            end
          in
          let lost =
            match Hashtbl.find_opt storm_states id with
            | Some state when Tropic.Txn.is_terminal state -> []
            | Some state ->
              [
                {
                  Invariant.invariant = "acked-durable";
                  at = now;
                  detail =
                    Printf.sprintf "acked txn %d still %s at quiescence" id
                      (Tropic.Txn.state_to_string state);
                };
              ]
            | None ->
              [
                {
                  Invariant.invariant = "acked-durable";
                  at = now;
                  detail =
                    Printf.sprintf
                      "acked txn %d has no transaction record at \
                       quiescence: the acked submission was lost"
                      id;
                };
              ]
          in
          recycled @ lost)
        (Nemesis.storm_txns nemesis)
    end
  in
  let horizon_violations =
    if !quiesced then []
    else
      [
        {
          Invariant.invariant = "quiescence";
          at = Des.Sim.now sim;
          detail =
            Printf.sprintf "run still active at horizon %.0fs" config.horizon;
        };
      ]
  in
  let count state =
    List.fold_left
      (fun n (_, s) ->
        match (s, state) with
        | Some (Tropic.Txn.Committed), `C -> n + 1
        | Some (Tropic.Txn.Aborted _), `A -> n + 1
        | Some (Tropic.Txn.Failed _), `F -> n + 1
        | _ -> n)
      0 txns
  in
  {
    schedule = schedule.Schedule.name;
    seed;
    rbuild = config.build;
    committed = count `C;
    aborted = count `A;
    failed = count `F;
    injected = Nemesis.fired nemesis;
    deferrals;
    wakeups;
    spurious_wakeups;
    retries;
    transient_failures;
    timeouts;
    auto_terms;
    auto_kills;
    sheds;
    breaker_trips;
    breaker_probes;
    breaker_closes;
    twopc_started;
    twopc_committed;
    twopc_aborted;
    twopc_prepares;
    joins = membership.Coord.Types.joins;
    leaves = membership.Coord.Types.leaves;
    catchups = membership.Coord.Types.catchups;
    stale_sessions = membership.Coord.Types.stale_sessions_rejected;
    group_flushes = group.Coord.Types.flushes;
    group_batched = group.Coord.Types.batched_cmds;
    acks_deferred = group.Coord.Types.acks_deferred;
    unsafe_acks = group.Coord.Types.unsafe_acks;
    shards = Tropic.Platform.shard_count platform;
    per_shard;
    violations =
      Invariant.tracker_violations tracker
      @ quiescence_violations @ crash_violations @ plan_violations
      @ acked_durable_violations @ horizon_violations @ trace_violations;
    trace = List.rev !trace_buf;
    phases;
    span_dump = (if trace then Trace.to_normalized_lines tracer else []);
    duration = Des.Sim.now sim;
  }

(* ------------------------------------------------------------------ *)

type sweep = { runs : result list; violating : result list }

let sweep ?progress config ~schedules ~seeds =
  let n = List.length schedules in
  if n = 0 then invalid_arg "Runner.sweep: no schedules";
  let runs =
    List.mapi
      (fun i seed ->
        let schedule = List.nth schedules (i mod n) in
        let result = run_one config ~schedule ~seed in
        (match progress with Some f -> f result | None -> ());
        result)
      seeds
  in
  { runs; violating = List.filter (fun r -> r.violations <> []) runs }
