type target = Leader | Random

type action =
  | Crash_controller of { target : target; down_for : float }
  | Crash_coord_replica of { target : target; down_for : float }
  | Partition_coord_leader of { heal_after : float }
  | Fault_burst of { probability : float; lasting : float }
  | Fail_next_device_action of string
  | Hang_next_device_action of string
  | Crash_worker of { down_for : float }
  | Power_cycle_host
  | Oob_stop_vm
  | Oob_remove_vm
  | Signal_txn of { signal : [ `Term | `Kill ]; stall : float }
  | Flap_device of { host : int; up_for : float; down_for : float; cycles : int }
  | Request_storm of { count : int; gap : float }
  | Crash_shard_leader of { shard : int; down_for : float }
  | Member_churn of { delay : float; gap : float }
      (* remove a random non-leader coord replica and re-add a fresh
         instance at the same node id, with [delay] seconds of extra
         network latency on that node so the old incarnation's append
         replies are still in flight across the remove/re-add; the delay
         clears after [gap] seconds *)

type trigger =
  | At of float
  | Every of { start : float; period : float; until : float }
  | Random_window of { start : float; until : float; count : int }

type step = { trigger : trigger; action : action }

type workload = Chains | Converge | Migrate

type t = {
  name : string;
  workload : workload;
  shards : int;
  steps : step list;
}

let at time action = { trigger = At time; action }

let every ?(start = 0.) ~period ~until action =
  { trigger = Every { start; period; until }; action }

let random_window ~start ~until ~count action =
  { trigger = Random_window { start; until; count }; action }

let target_to_string = function Leader -> "leader" | Random -> "random"

let action_to_string = function
  | Crash_controller { target; down_for } ->
    Printf.sprintf "crash-controller(%s, down %.0fs)" (target_to_string target)
      down_for
  | Crash_coord_replica { target; down_for } ->
    Printf.sprintf "crash-coord-replica(%s, down %.0fs)"
      (target_to_string target) down_for
  | Partition_coord_leader { heal_after } ->
    Printf.sprintf "partition-coord-leader(heal after %.0fs)" heal_after
  | Fault_burst { probability; lasting } ->
    Printf.sprintf "fault-burst(p=%.2f, %.0fs)" probability lasting
  | Fail_next_device_action a -> Printf.sprintf "fail-next(%s)" a
  | Hang_next_device_action a -> Printf.sprintf "hang-next(%s)" a
  | Crash_worker { down_for } ->
    Printf.sprintf "crash-worker(down %.0fs)" down_for
  | Power_cycle_host -> "power-cycle-host"
  | Oob_stop_vm -> "oob-stop-vm"
  | Oob_remove_vm -> "oob-remove-vm"
  | Signal_txn { signal; stall } ->
    Printf.sprintf "signal(%s after %.1fs stall)"
      (match signal with `Term -> "TERM" | `Kill -> "KILL")
      stall
  | Flap_device { host; up_for; down_for; cycles } ->
    Printf.sprintf "flap-device(host%d, %d cycles of %.0fs up / %.0fs down)"
      host cycles up_for down_for
  | Request_storm { count; gap } ->
    Printf.sprintf "request-storm(%d spawns, %.2fs gap)" count gap
  | Crash_shard_leader { shard; down_for } ->
    Printf.sprintf "crash-shard-leader(shard %d, down %.0fs)" shard down_for
  | Member_churn { delay; gap } ->
    Printf.sprintf "member-churn(delay %.1fs, clear after %.0fs)" delay gap

let step_end { trigger; action } =
  let trigger_end =
    match trigger with
    | At time -> time
    | Every { until; _ } -> until
    | Random_window { until; _ } -> until
  in
  let action_tail =
    match action with
    | Crash_controller { down_for; _ }
    | Crash_coord_replica { down_for; _ }
    | Crash_shard_leader { down_for; _ } ->
      down_for
    | Partition_coord_leader { heal_after } -> heal_after
    | Fault_burst { lasting; _ } -> lasting
    | Signal_txn { stall; _ } -> stall
    | Crash_worker { down_for } -> down_for
    | Flap_device { up_for; down_for; cycles; _ } ->
      float_of_int cycles *. (up_for +. down_for)
    | Request_storm { count; gap } -> float_of_int count *. gap
    | Member_churn { gap; _ } -> gap +. 8.
    | Fail_next_device_action _ | Hang_next_device_action _ | Power_cycle_host
    | Oob_stop_vm | Oob_remove_vm ->
      0.
  in
  trigger_end +. action_tail

let end_time t = List.fold_left (fun acc s -> Float.max acc (step_end s)) 0. t.steps

let describe t =
  String.concat "\n"
    (Printf.sprintf "schedule %s:" t.name
     :: List.map
          (fun { trigger; action } ->
            let when_ =
              match trigger with
              | At time -> Printf.sprintf "at %.0fs" time
              | Every { start; period; until } ->
                Printf.sprintf "every %.0fs in [%.0f, %.0f]" period start until
              | Random_window { start; until; count } ->
                Printf.sprintf "%d at random in [%.0f, %.0f]" count start until
            in
            Printf.sprintf "  %-28s %s" when_ (action_to_string action))
          t.steps)

(* ------------------------------------------------------------------ *)
(* Presets.  Windows assume the runner's default workload: submissions
   start after ~5 s (elections settle) and stretch over ~60–120 s. *)

let controller_crashes =
  {
    name = "controller-crashes";
    workload = Chains;
    shards = 1;
    steps =
      [
        every ~start:15. ~period:35. ~until:120.
          (Crash_controller { target = Leader; down_for = 12. });
        random_window ~start:20. ~until:110. ~count:2
          (Crash_controller { target = Random; down_for = 8. });
      ];
  }

let coord_faults =
  {
    name = "coord-faults";
    workload = Chains;
    shards = 1;
    steps =
      [
        every ~start:12. ~period:40. ~until:110.
          (Crash_coord_replica { target = Random; down_for = 10. });
        at 30. (Partition_coord_leader { heal_after = 8. });
        at 75. (Partition_coord_leader { heal_after = 6. });
      ];
  }

let device_storm =
  {
    name = "device-storm";
    workload = Chains;
    shards = 1;
    steps =
      [
        at 10. (Fault_burst { probability = 0.05; lasting = 25. });
        random_window ~start:15. ~until:100. ~count:3
          (Fail_next_device_action "startVM");
        random_window ~start:25. ~until:100. ~count:2 Power_cycle_host;
        random_window ~start:30. ~until:105. ~count:3 Oob_stop_vm;
        random_window ~start:40. ~until:105. ~count:2 Oob_remove_vm;
      ];
  }

let signal_storm =
  {
    name = "signal-storm";
    workload = Chains;
    shards = 1;
    steps =
      [
        random_window ~start:8. ~until:100. ~count:4
          (Signal_txn { signal = `Term; stall = 0.5 });
        random_window ~start:12. ~until:100. ~count:3
          (Signal_txn { signal = `Kill; stall = 0.2 });
      ];
  }

(* Leader crashes timed to land while conflicting transactions sit in the
   scheduler's blocked table (the hot host keeps it populated from ~8 s
   on): recovery must re-derive the blocked set from persisted txn
   records — no transaction lost, none woken twice. *)
let blocked_crash =
  {
    name = "blocked-crash";
    workload = Chains;
    shards = 1;
    steps =
      [
        at 16. (Crash_controller { target = Leader; down_for = 8. });
        at 30. (Crash_controller { target = Leader; down_for = 8. });
        random_window ~start:45. ~until:80. ~count:1
          (Crash_controller { target = Leader; down_for = 6. });
      ];
  }

let mixed =
  {
    name = "mixed";
    workload = Chains;
    shards = 1;
    steps =
      [
        at 18. (Crash_controller { target = Leader; down_for = 10. });
        at 55. (Crash_coord_replica { target = Random; down_for = 10. });
        at 35. (Fault_burst { probability = 0.04; lasting = 15. });
        random_window ~start:20. ~until:100. ~count:2 Oob_stop_vm;
        random_window ~start:25. ~until:100. ~count:2
          (Signal_txn { signal = `Term; stall = 0.3 });
        random_window ~start:30. ~until:95. ~count:1 Power_cycle_host;
      ];
  }

(* The robustness gauntlet: hangs on the slow actions, transient-error
   bursts, and worker crashes mid-execution.  With retries + per-action
   deadlines + the watchdog every seed must quiesce cleanly; without them
   (the no-watchdog build) hung/abandoned transactions hold their locks
   forever.  Appended last so preset indices stay stable. *)
let hang_storm =
  {
    name = "hang-storm";
    workload = Chains;
    shards = 1;
    steps =
      [
        random_window ~start:10. ~until:90. ~count:3
          (Hang_next_device_action "startVM");
        random_window ~start:15. ~until:95. ~count:2
          (Hang_next_device_action "cloneImage");
        at 20. (Fault_burst { probability = 0.08; lasting = 20. });
        at 60. (Fault_burst { probability = 0.05; lasting = 15. });
        random_window ~start:25. ~until:85. ~count:2
          (Crash_worker { down_for = 15. });
      ];
  }

(* The overload gauntlet: the workload's hot host flaps between dead and
   healthy on a short period while a fire-and-forget request storm floods
   the controller.  With health scoring + breakers the flapping subtree is
   fenced off at admission and the watermarks shed the excess, so the
   pending queue stays bounded; the no-breaker build lets the storm pile
   up behind the flap-wedged FIFO head and the bounded-queue invariant
   convicts it.  Appended last so preset indices stay stable. *)
let flap_storm =
  {
    name = "flap-storm";
    workload = Chains;
    shards = 1;
    steps =
      [
        at 10.
          (Flap_device { host = 0; up_for = 6.; down_for = 6.; cycles = 8 });
        at 18. (Request_storm { count = 90; gap = 0.08 });
      ];
  }

(* The goal-state gauntlet: the converge workload drives the planner's
   hardest shape (a VM swap between two full hosts, resolved through a
   staging hop) while the leader and a worker crash mid-plan.  The
   executor must resume after fail-over and still converge exactly — no
   VM duplicated, lost, or left on the wrong host.  The no-plan-deps
   build compiles plans with every dependency edge dropped, so the swap's
   migrations race into full hosts and livelock: the plan-converged and
   exactly-once invariants convict it.  Appended last so preset indices
   stay stable. *)
let plan_crash =
  {
    name = "plan-crash";
    workload = Converge;
    shards = 1;
    steps =
      [
        at 12. (Crash_controller { target = Leader; down_for = 8. });
        at 24. (Crash_worker { down_for = 10. });
        random_window ~start:35. ~until:70. ~count:1
          (Crash_controller { target = Leader; down_for = 6. });
      ];
  }

(* The sharding gauntlet: a two-shard platform under the migrate workload
   (every chain's migrations are cross-shard, so 2PC runs continuously)
   while shard leaders crash mid-wave.  Shard 0 coordinates every
   cross-shard transaction here (the coordinator is the lowest touched
   shard), so its crashes land between prepare and decision and recovery
   must resume each in-doubt transaction to the durably decided outcome;
   shard 1's crash exercises the participant side (vote lost, re-prepare,
   presumed abort).  The no-2pc build skips the decision record, so a
   crashed coordinator presumes abort on transactions whose commit
   already reached the other shard — the exactly-once and convergence
   invariants convict it.  Appended last so preset indices stay stable. *)
let shard_crash =
  {
    name = "shard-crash";
    workload = Migrate;
    shards = 2;
    steps =
      [
        at 14. (Crash_shard_leader { shard = 0; down_for = 8. });
        at 32. (Crash_shard_leader { shard = 1; down_for = 8. });
        (* Lock serialization pushes the bulk of the cross-shard traffic
           into the 50–170 s range, so the coordinator crashes spread over
           that window to land inside prepare→finish gaps. *)
        random_window ~start:50. ~until:160. ~count:3
          (Crash_shard_leader { shard = 0; down_for = 6. });
        random_window ~start:90. ~until:150. ~count:1
          (Crash_shard_leader { shard = 1; down_for = 6. });
      ];
  }

(* The membership gauntlet: coord replicas leave and rejoin while crash
   and partition faults run — removal, a delayed-message window, and the
   re-add all land inside one leader term.  The delayed node keeps the old
   incarnation's append replies in flight across the remove/re-add; with
   replication session ids the leader drops them as stale, so the fresh
   learner's progress stays honest.  The no-session-id build accepts them:
   the leader then believes the wiped replica holds entries it never
   received, and the progress-integrity invariant convicts it (or, if the
   phantom acks reach quorum, lost-commit does).  Appended last so preset
   indices stay stable. *)
let member_churn =
  {
    name = "member-churn";
    workload = Chains;
    shards = 1;
    steps =
      [
        every ~start:12. ~period:25. ~until:100.
          (Member_churn { delay = 1.0; gap = 4.0 });
        (* Offset from the churn windows (12–16.5, 37–41.5, 62–66.5,
           87–91.5): overlapping faults skip rather than stack. *)
        at 45. (Crash_coord_replica { target = Random; down_for = 8. });
        at 70. (Partition_coord_leader { heal_after = 6. });
      ];
  }

(* The durability gauntlet for group commit: an open-loop request storm
   keeps the coordination leader's append batcher full while
   leader-targeted replica crashes land inside the batch windows — the
   gap between an enqueue's ack and its batch reaching quorum is exactly
   where an early ack loses the request.  Stock group commit releases
   acks only after batch quorum, so every acked submission survives into
   the new term and the run stays clean; the unsafe-ack build acks at
   enqueue time and the acked-durable invariant convicts it (a lost
   acked submission has no transaction record at quiescence, or its
   recycled id collides with a later one).  The storm fires after the
   chain workload's submission wave so lost sequence numbers stay
   visibly unfilled.  Appended last so preset indices stay stable. *)
let commit_storm =
  {
    name = "commit-storm";
    workload = Chains;
    shards = 1;
    steps =
      [
        at 40. (Request_storm { count = 60; gap = 0.05 });
        every ~start:40.3 ~period:2.5 ~until:48.
          (Crash_coord_replica { target = Leader; down_for = 2. });
      ];
  }

let presets =
  [
    controller_crashes;
    coord_faults;
    device_storm;
    signal_storm;
    blocked_crash;
    mixed;
    hang_storm;
    flap_storm;
    plan_crash;
    shard_crash;
    member_churn;
    commit_storm;
  ]

let find name = List.find_opt (fun s -> s.name = name) presets
