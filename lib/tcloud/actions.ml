module Schema = Devices.Schema
module Tree = Data.Tree
module Value = Data.Value

let ( let* ) r f = Result.bind r f

(* ------------------------------------------------------------------ *)
(* Typed accessors *)

let attr node name =
  match Tree.Smap.find_opt name node.Tree.attrs with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing attribute %s" name)

let int_attr node name =
  let* v = attr node name in
  match Value.as_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "attribute %s is not an int" name)

let str_attr node name =
  let* v = attr node name in
  match Value.as_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "attribute %s is not a string" name)

let str_list_attr node name =
  let* v = attr node name in
  match Value.as_list v with
  | None -> Error (Printf.sprintf "attribute %s is not a list" name)
  | Some items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match Value.as_str item with
        | Some s -> Ok (s :: acc)
        | None -> Error (Printf.sprintf "attribute %s has non-string items" name))
      (Ok []) items
    |> Result.map List.rev

let sum_children node ~kind ~attr_name =
  Tree.Smap.fold
    (fun _ (child : Tree.node) acc ->
      if String.equal child.Tree.kind kind then
        match Tree.Smap.find_opt attr_name child.Tree.attrs with
        | Some v -> acc + Option.value (Value.as_int v) ~default:0
        | None -> acc
      else acc)
    node.Tree.children 0

let vm_memory_sum node =
  sum_children node ~kind:Schema.vm_kind ~attr_name:Schema.attr_mem_mb

let image_size_sum node =
  sum_children node ~kind:Schema.image_kind ~attr_name:Schema.attr_size_mb

(* ------------------------------------------------------------------ *)
(* Argument decoding *)

let str_arg args i =
  match List.nth_opt args i with
  | Some (Value.Str s) -> Ok s
  | Some _ | None -> Error (Printf.sprintf "argument %d: expected string" i)

let int_arg args i =
  match List.nth_opt args i with
  | Some (Value.Int n) -> Ok n
  | Some _ | None -> Error (Printf.sprintf "argument %d: expected int" i)

let node_at tree path =
  match Tree.find tree path with
  | Some node -> Ok node
  | None -> Error (Printf.sprintf "no node at %s" (Data.Path.to_string path))

let tree_err result = Result.map_error Tree.error_to_string result

(* ------------------------------------------------------------------ *)
(* Compute host actions *)

let import_image tree path args =
  let* image = str_arg args 0 in
  let* host = node_at tree path in
  let* imported = str_list_attr host Schema.attr_imported in
  if List.mem image imported then
    Error (Printf.sprintf "image %s already imported" image)
  else
    (* Kept sorted: the canonical form the devices export, so the two
       layers compare equal structurally. *)
    let imported' = List.sort String.compare (image :: imported) in
    tree_err
      (Tree.set_attr tree path Schema.attr_imported
         (Value.List (List.map (fun s -> Value.Str s) imported')))

let unimport_image tree path args =
  let* image = str_arg args 0 in
  let* host = node_at tree path in
  let* imported = str_list_attr host Schema.attr_imported in
  if not (List.mem image imported) then
    Error (Printf.sprintf "image %s not imported" image)
  else
    let used =
      Tree.Smap.exists
        (fun _ (vm : Tree.node) ->
          String.equal vm.Tree.kind Schema.vm_kind
          && Tree.Smap.find_opt Schema.attr_image vm.Tree.attrs
             = Some (Value.Str image))
        host.Tree.children
    in
    if used then Error (Printf.sprintf "image %s still used by a VM" image)
    else
      let remaining = List.filter (fun s -> not (String.equal s image)) imported in
      tree_err
        (Tree.set_attr tree path Schema.attr_imported
           (Value.List (List.map (fun s -> Value.Str s) remaining)))

let create_vm tree path args =
  let* name = str_arg args 0 in
  let* image = str_arg args 1 in
  let* mem = int_arg args 2 in
  let* host = node_at tree path in
  let* imported = str_list_attr host Schema.attr_imported in
  if Tree.Smap.mem name host.Tree.children then
    Error (Printf.sprintf "vm %s already exists" name)
  else if not (List.mem image imported) then
    Error (Printf.sprintf "image %s not imported" image)
  else
    tree_err
      (Tree.insert tree (Data.Path.child path name) ~kind:Schema.vm_kind
         ~attrs:
           [
             Schema.attr_state, Value.Str Schema.state_stopped;
             Schema.attr_mem_mb, Value.Int mem;
             Schema.attr_image, Value.Str image;
           ]
         ())

let vm_state tree path name =
  let vm_path = Data.Path.child path name in
  let* vm = node_at tree vm_path in
  let* state = str_attr vm Schema.attr_state in
  Ok (vm_path, state)

let remove_vm tree path args =
  let* name = str_arg args 0 in
  let* vm_path, state = vm_state tree path name in
  if String.equal state Schema.state_running then
    Error (Printf.sprintf "vm %s is running" name)
  else tree_err (Tree.remove tree vm_path)

let set_vm_state tree path args ~from_state ~to_state =
  let* name = str_arg args 0 in
  let* vm_path, state = vm_state tree path name in
  if not (String.equal state from_state) then
    Error (Printf.sprintf "vm %s is %s, not %s" name state from_state)
  else
    tree_err (Tree.set_attr tree vm_path Schema.attr_state (Value.Str to_state))

let start_vm tree path args =
  set_vm_state tree path args ~from_state:Schema.state_stopped
    ~to_state:Schema.state_running

let stop_vm tree path args =
  set_vm_state tree path args ~from_state:Schema.state_running
    ~to_state:Schema.state_stopped

(* ------------------------------------------------------------------ *)
(* Storage host actions *)

let image_node host name =
  match Tree.Smap.find_opt name host.Tree.children with
  | Some (node : Tree.node) when String.equal node.Tree.kind Schema.image_kind ->
    Ok node
  | Some _ | None -> Error (Printf.sprintf "image %s does not exist" name)

let bool_attr node name =
  let* v = attr node name in
  match Value.as_bool v with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "attribute %s is not a bool" name)

let clone_image tree path args =
  let* template = str_arg args 0 in
  let* image = str_arg args 1 in
  let* host = node_at tree path in
  let* template_node = image_node host template in
  let* is_template = bool_attr template_node Schema.attr_template in
  if not is_template then Error (Printf.sprintf "%s is not a template" template)
  else if Tree.Smap.mem image host.Tree.children then
    Error (Printf.sprintf "image %s already exists" image)
  else
    let* size = int_attr template_node Schema.attr_size_mb in
    tree_err
      (Tree.insert tree (Data.Path.child path image) ~kind:Schema.image_kind
         ~attrs:
           [
             Schema.attr_size_mb, Value.Int size;
             Schema.attr_template, Value.Bool false;
             Schema.attr_exported, Value.Bool false;
           ]
         ())

let remove_image tree path args =
  let* image = str_arg args 0 in
  let* host = node_at tree path in
  let* node = image_node host image in
  let* is_template = bool_attr node Schema.attr_template in
  let* exported = bool_attr node Schema.attr_exported in
  if is_template then Error "cannot remove a template"
  else if exported then Error (Printf.sprintf "image %s is still exported" image)
  else tree_err (Tree.remove tree (Data.Path.child path image))

let set_exported tree path args ~target =
  let* image = str_arg args 0 in
  let* host = node_at tree path in
  let* node = image_node host image in
  let* exported = bool_attr node Schema.attr_exported in
  if Bool.equal exported target then
    Error
      (Printf.sprintf "image %s already %s" image
         (if target then "exported" else "unexported"))
  else
    tree_err
      (Tree.set_attr tree (Data.Path.child path image) Schema.attr_exported
         (Value.Bool target))

let export_image tree path args = set_exported tree path args ~target:true
let unexport_image tree path args = set_exported tree path args ~target:false

(* ------------------------------------------------------------------ *)
(* Switch actions *)

let vlan_node_name id = Printf.sprintf "vlan%04d" id

let create_vlan tree path args =
  let* id = int_arg args 0 in
  let* name = str_arg args 1 in
  let* switch = node_at tree path in
  if Tree.Smap.mem (vlan_node_name id) switch.Tree.children then
    Error (Printf.sprintf "vlan %d already exists" id)
  else
    tree_err
      (Tree.insert tree
         (Data.Path.child path (vlan_node_name id))
         ~kind:Schema.vlan_kind
         ~attrs:
           [
             Schema.attr_vlan_name, Value.Str name;
             Schema.attr_ports, Value.List [];
           ]
         ())

let vlan_ports tree path id =
  let vlan_path = Data.Path.child path (vlan_node_name id) in
  let* node = node_at tree vlan_path in
  let* ports = str_list_attr node Schema.attr_ports in
  Ok (vlan_path, ports)

let remove_vlan tree path args =
  let* id = int_arg args 0 in
  let* vlan_path, ports = vlan_ports tree path id in
  if ports <> [] then Error (Printf.sprintf "vlan %d still has ports" id)
  else tree_err (Tree.remove tree vlan_path)

let add_port tree path args =
  let* id = int_arg args 0 in
  let* port = str_arg args 1 in
  let* vlan_path, ports = vlan_ports tree path id in
  if List.mem port ports then
    Error (Printf.sprintf "port %s already in vlan %d" port id)
  else
    tree_err
      (Tree.set_attr tree vlan_path Schema.attr_ports
         (Value.List
            (List.map (fun p -> Value.Str p)
               (List.sort String.compare (port :: ports)))))

let remove_port tree path args =
  let* id = int_arg args 0 in
  let* port = str_arg args 1 in
  let* vlan_path, ports = vlan_ports tree path id in
  if not (List.mem port ports) then
    Error (Printf.sprintf "port %s not in vlan %d" port id)
  else
    let remaining = List.filter (fun p -> not (String.equal p port)) ports in
    tree_err
      (Tree.set_attr tree vlan_path Schema.attr_ports
         (Value.List (List.map (fun p -> Value.Str p) remaining)))

(* ------------------------------------------------------------------ *)
(* Registration with Table 1's undo pairings *)

let first_arg args = match args with a :: _ -> [ a ] | [] -> []

(* removeVM is reversible because the undo captures the VM's recorded
   configuration from the pre-action tree: createVM can recreate it (its
   volume still exists at every point a removeVM appears in a procedure). *)
let remove_vm_undo tree path args =
  match args with
  | [ Value.Str name ] ->
    (match Tree.find tree (Data.Path.child path name) with
     | Some vm ->
       (match
          ( Tree.Smap.find_opt Schema.attr_image vm.Tree.attrs,
            Tree.Smap.find_opt Schema.attr_mem_mb vm.Tree.attrs )
        with
        | Some image, Some mem ->
          Some (Schema.act_create_vm, [ Value.Str name; image; mem ])
        | _, _ -> None)
     | None -> None)
  | _ -> None

let remove_vlan_undo tree path args =
  match args with
  | [ Value.Int id ] ->
    (match Tree.find tree (Data.Path.child path (vlan_node_name id)) with
     | Some vlan ->
       (match Tree.Smap.find_opt Schema.attr_vlan_name vlan.Tree.attrs with
        | Some name -> Some (Schema.act_create_vlan, [ Value.Int id; name ])
        | None -> None)
     | None -> None)
  | _ -> None

let register_all env =
  let register kind act_name logical undo_of =
    Tropic.Dsl.register_action env
      { Tropic.Dsl.act_name; act_kind = kind; logical; undo_of }
  in
  let simple undo_of _tree _path args = undo_of args in
  let irreversible _tree _path _args = None in
  (* Compute host *)
  register Schema.vm_host_kind Schema.act_import_image import_image
    (simple (fun args -> Some (Schema.act_unimport_image, first_arg args)));
  register Schema.vm_host_kind Schema.act_unimport_image unimport_image
    (simple (fun args -> Some (Schema.act_import_image, first_arg args)));
  register Schema.vm_host_kind Schema.act_create_vm create_vm
    (simple (fun args -> Some (Schema.act_remove_vm, first_arg args)));
  register Schema.vm_host_kind Schema.act_remove_vm remove_vm remove_vm_undo;
  register Schema.vm_host_kind Schema.act_start_vm start_vm
    (simple (fun args -> Some (Schema.act_stop_vm, first_arg args)));
  register Schema.vm_host_kind Schema.act_stop_vm stop_vm
    (simple (fun args -> Some (Schema.act_start_vm, first_arg args)));
  (* Storage host: removeImage destroys data and stays irreversible, so
     procedures order it last. *)
  register Schema.storage_host_kind Schema.act_clone_image clone_image
    (simple (fun args ->
         match args with
         | [ _template; image ] -> Some (Schema.act_remove_image, [ image ])
         | _ -> None));
  register Schema.storage_host_kind Schema.act_remove_image remove_image
    irreversible;
  register Schema.storage_host_kind Schema.act_export_image export_image
    (simple (fun args -> Some (Schema.act_unexport_image, first_arg args)));
  register Schema.storage_host_kind Schema.act_unexport_image unexport_image
    (simple (fun args -> Some (Schema.act_export_image, first_arg args)));
  (* Switch *)
  register Schema.switch_kind Schema.act_create_vlan create_vlan
    (simple (fun args -> Some (Schema.act_remove_vlan, first_arg args)));
  register Schema.switch_kind Schema.act_remove_vlan remove_vlan
    remove_vlan_undo;
  register Schema.switch_kind Schema.act_add_port add_port
    (simple (fun args -> Some (Schema.act_remove_port, args)));
  register Schema.switch_kind Schema.act_remove_port remove_port
    (simple (fun args -> Some (Schema.act_add_port, args)))
