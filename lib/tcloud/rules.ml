module Schema = Devices.Schema
module Value = Data.Value

let ( let* ) r f = Result.bind r f

let vm_host_memory =
  {
    Tropic.Constraints.name = "vm-host-memory";
    kind = Schema.vm_host_kind;
    check =
      (fun _tree _path node ->
        let* capacity = Actions.int_attr node Schema.attr_mem_mb in
        let used = Actions.vm_memory_sum node in
        if used <= capacity then Ok ()
        else
          Error
            (Printf.sprintf "VM memory %d MB exceeds host capacity %d MB" used
               capacity));
  }

let storage_capacity =
  {
    Tropic.Constraints.name = "storage-capacity";
    kind = Schema.storage_host_kind;
    check =
      (fun _tree _path node ->
        let* capacity = Actions.int_attr node Schema.attr_size_mb in
        let used = Actions.image_size_sum node in
        if used <= capacity then Ok ()
        else
          Error
            (Printf.sprintf "images use %d MB, capacity is %d MB" used capacity));
  }

let switch_vlan_capacity =
  {
    Tropic.Constraints.name = "switch-vlan-capacity";
    kind = Schema.switch_kind;
    check =
      (fun _tree _path node ->
        let* limit = Actions.int_attr node Schema.attr_max_vlans in
        let used =
          Data.Tree.Smap.fold
            (fun _ (child : Data.Tree.node) n ->
              if String.equal child.Data.Tree.kind Schema.vlan_kind then n + 1
              else n)
            node.Data.Tree.children 0
        in
        if used <= limit then Ok ()
        else Error (Printf.sprintf "%d VLANs exceed switch limit %d" used limit));
  }

let vm_state_valid =
  {
    Tropic.Constraints.name = "vm-state-valid";
    kind = Schema.vm_kind;
    check =
      (fun _tree _path node ->
        let* state = Actions.str_attr node Schema.attr_state in
        if
          String.equal state Schema.state_stopped
          || String.equal state Schema.state_running
        then Ok ()
        else Error (Printf.sprintf "illegal VM state %S" state));
  }

let register_constraints env =
  let registry = Tropic.Dsl.constraints_of env in
  List.iter
    (Tropic.Constraints.register registry)
    [ vm_host_memory; storage_capacity; switch_vlan_capacity; vm_state_valid ]

(* ------------------------------------------------------------------ *)
(* Repair rules: logical value -> device action on the parent object *)

let repair_rules =
  [
    {
      Tropic.Recon.rule_kind = Schema.vm_kind;
      rule_attr = Schema.attr_state;
      make_action =
        (fun ~node_name ~target ->
          match Value.as_str target with
          | Some s when String.equal s Schema.state_running ->
            Some (Schema.act_start_vm, [ Value.Str node_name ])
          | Some s when String.equal s Schema.state_stopped ->
            Some (Schema.act_stop_vm, [ Value.Str node_name ])
          | Some _ | None -> None);
    };
    {
      Tropic.Recon.rule_kind = Schema.image_kind;
      rule_attr = Schema.attr_exported;
      make_action =
        (fun ~node_name ~target ->
          match Value.as_bool target with
          | Some true -> Some (Schema.act_export_image, [ Value.Str node_name ])
          | Some false ->
            Some (Schema.act_unexport_image, [ Value.Str node_name ])
          | None -> None);
    };
  ]
