module Schema = Devices.Schema

type size = {
  compute_hosts : int;
  host_mem_mb : int;
  hypervisors : string list;
  storage_hosts : int;
  storage_capacity_mb : int;
  templates : (string * int) list;
  switches : int;
  max_vlans : int;
  prepopulated_vms_per_host : int;
  prepop_vm_mem_mb : int;
}

let small =
  {
    compute_hosts = 4;
    host_mem_mb = 8192;
    hypervisors = [ "xen"; "kvm" ];
    storage_hosts = 2;
    storage_capacity_mb = 500_000;
    templates = [ ("base.img", 10_240) ];
    switches = 1;
    max_vlans = 64;
    prepopulated_vms_per_host = 0;
    prepop_vm_mem_mb = 1024;
  }

let paper_scale =
  {
    compute_hosts = 12_500;
    host_mem_mb = 8192;
    hypervisors = [ "xen" ];
    storage_hosts = 3_125;
    storage_capacity_mb = 2_000_000;
    templates = [ ("base.img", 10_240) ];
    switches = 8;
    max_vlans = 4096;
    prepopulated_vms_per_host = 0;
    prepop_vm_mem_mb = 1024;
  }

type t = {
  env : Tropic.Dsl.env;
  tree : Data.Tree.t;
  devices : Devices.Device.t list;
  computes : (Data.Path.t * Devices.Compute.t) array;
  storages : (Data.Path.t * Devices.Storage.t) array;
  switches : (Data.Path.t * Devices.Network.t) array;
}

let controller_config =
  {
    Tropic.Controller.default_config with
    Tropic.Controller.repair_rules = Rules.repair_rules;
  }

let make_env () =
  let env = Tropic.Dsl.create_env () in
  Actions.register_all env;
  Procs.register_all env;
  Rules.register_constraints env;
  env

let compute_path i = Data.Path.v (Printf.sprintf "/vmRoot/host%05d" i)
let storage_path i = Data.Path.v (Printf.sprintf "/storageRoot/storage%05d" i)
let switch_path i = Data.Path.v (Printf.sprintf "/netRoot/switch%03d" i)

let storage_for_host size h = storage_path (h mod size.storage_hosts)
let prepop_vm_name ~host ~index = Printf.sprintf "pre%05d-%d" host index

let ok_tree what = function
  | Ok t -> t
  | Error e -> failwith (what ^ ": " ^ Data.Tree.error_to_string e)

let build ?(timing = `Instant) ?rng size =
  let computes =
    Array.init size.compute_hosts (fun i ->
        let root = compute_path i in
        let hypervisor =
          List.nth size.hypervisors (i mod List.length size.hypervisors)
        in
        let host =
          Devices.Compute.create ~timing ?rng ~root ~mem_mb:size.host_mem_mb
            ~hypervisor ()
        in
        (root, host))
  in
  let storages =
    Array.init size.storage_hosts (fun i ->
        let root = storage_path i in
        let host =
          Devices.Storage.create ~timing ?rng ~root
            ~capacity_mb:size.storage_capacity_mb ()
        in
        List.iter
          (fun (name, size_mb) ->
            Devices.Storage.add_template host ~name ~size_mb)
          size.templates;
        (root, host))
  in
  let switches =
    Array.init size.switches (fun i ->
        let root = switch_path i in
        ( root,
          Devices.Network.create ~timing ?rng ~root ~max_vlans:size.max_vlans
            () ))
  in
  (* Prepopulated VMs exist on both layers from the start: stopped VMs with
     their cloned, exported images. *)
  for h = 0 to size.compute_hosts - 1 do
    for k = 0 to size.prepopulated_vms_per_host - 1 do
      let vm = prepop_vm_name ~host:h ~index:k in
      let image = Procs.image_of_vm vm in
      let _, compute = computes.(h) in
      Devices.Compute.preload_vm compute ~name:vm ~image
        ~mem_mb:size.prepop_vm_mem_mb ~state:`Stopped;
      let storage_idx = h mod size.storage_hosts in
      let _, storage = storages.(storage_idx) in
      Devices.Storage.preload_image storage ~name:image
        ~size_mb:(match size.templates with (_, s) :: _ -> s | [] -> 10_240)
        ~exported:true
    done
  done;
  (* The initial logical tree is built from the devices' own exports, so
     the two layers start consistent by construction. *)
  let tree = Data.Tree.empty in
  let tree =
    List.fold_left
      (fun tree (kind, name) ->
        ok_tree "insert root"
          (Data.Tree.insert tree (Data.Path.v ("/" ^ name)) ~kind ()))
      tree
      [
        Schema.vm_root_kind, "vmRoot";
        Schema.storage_root_kind, "storageRoot";
        Schema.net_root_kind, "netRoot";
      ]
  in
  let graft tree (root, device) =
    let tree =
      match Data.Tree.find tree root with
      | Some _ -> tree
      | None ->
        ok_tree "insert stub" (Data.Tree.insert tree root ~kind:"stub" ())
    in
    ok_tree "graft device"
      (Data.Tree.replace_subtree tree root (Devices.Device.export device))
  in
  let all_devices =
    Array.to_list (Array.map (fun (_, c) -> Devices.Compute.device c) computes)
    @ Array.to_list (Array.map (fun (_, s) -> Devices.Storage.device s) storages)
    @ Array.to_list (Array.map (fun (_, n) -> Devices.Network.device n) switches)
  in
  let tree =
    List.fold_left
      (fun tree device -> graft tree (Devices.Device.root device, device))
      tree all_devices
  in
  {
    env = make_env ();
    tree;
    devices = all_devices;
    computes;
    storages;
    switches;
  }
