(** TCloud's safety rules (the constraints of §6.2) and repair rules (§4).

    Constraints registered by [register_constraints]:
    - {b vm-host-memory}: the aggregate memory of the VMs placed on a
      compute host may not exceed the host's capacity;
    - {b storage-capacity}: images on a storage host may not exceed its
      capacity;
    - {b switch-vlan-capacity}: a switch may not carry more VLANs than its
      hardware limit;
    - {b vm-state-valid}: a VM's state attribute is one of the legal
      lifecycle states.

    (The second §6.2 rule — no migration across hypervisor types — is a
    service rule enforced by the [migrateVM] stored procedure before it
    emits any action.)

    Repair rules translate logical/physical attribute differences into
    device actions: a VM whose logical state says running is started, a
    volume that should be exported is exported, and vice versa. *)

val register_constraints : Tropic.Dsl.env -> unit

val repair_rules : Tropic.Recon.rule list
