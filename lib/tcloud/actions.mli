(** Logical implementations of TCloud's actions.

    Every device action of {!Devices} has a twin here that performs the
    same state transition on the logical data-model tree (paper §2.2: each
    action is defined twice).  The logical versions enforce the same
    preconditions as the devices, so the simulation in the logical layer
    detects the same errors the hardware would raise — without touching it.

    [register_all] installs the definitions (with their undo pairings from
    Table 1) into a {!Tropic.Dsl.env}. *)

val register_all : Tropic.Dsl.env -> unit

(** {1 Typed tree accessors shared with procedures and constraints} *)

val int_attr : Data.Tree.node -> string -> (int, string) result
val str_attr : Data.Tree.node -> string -> (string, string) result
val str_list_attr : Data.Tree.node -> string -> (string list, string) result

(** Sum of [mem_mb] over all [vm] children of a host node. *)
val vm_memory_sum : Data.Tree.node -> int

(** Sum of [size_mb] over all [image] children of a storage host node. *)
val image_size_sum : Data.Tree.node -> int
