module Schema = Devices.Schema
module Dsl = Tropic.Dsl
module Value = Data.Value

let image_of_vm vm = vm ^ ".img"

(* ------------------------------------------------------------------ *)
(* Argument decoding (procedures abort on malformed arguments) *)

let str_arg args i =
  match List.nth_opt args i with
  | Some (Value.Str s) -> s
  | Some _ | None -> Dsl.abort (Printf.sprintf "argument %d: expected string" i)

let int_arg args i =
  match List.nth_opt args i with
  | Some (Value.Int n) -> n
  | Some _ | None -> Dsl.abort (Printf.sprintf "argument %d: expected int" i)

let path_arg args i =
  match Data.Path.of_string (str_arg args i) with
  | Ok path -> path
  | Error reason -> Dsl.abort (Printf.sprintf "argument %d: %s" i reason)

let vm_attr ctx host_path vm name =
  match Dsl.get_attr ctx (Data.Path.child host_path vm) name with
  | Some v -> v
  | None ->
    Dsl.abort
      (Printf.sprintf "vm %s has no attribute %s on %s" vm name
         (Data.Path.to_string host_path))

(* ------------------------------------------------------------------ *)
(* VM life cycle (Table 1 and §5) *)

(* spawnVM vm template mem storage host — the execution log of Table 1. *)
let spawn_vm ctx args =
  let vm = str_arg args 0 in
  let template = str_arg args 1 in
  let mem_mb = int_arg args 2 in
  let storage = path_arg args 3 in
  let host = path_arg args 4 in
  let image = image_of_vm vm in
  Dsl.act ctx storage ~action:Schema.act_clone_image
    ~args:[ Value.Str template; Value.Str image ];
  Dsl.act ctx storage ~action:Schema.act_export_image ~args:[ Value.Str image ];
  Dsl.act ctx host ~action:Schema.act_import_image ~args:[ Value.Str image ];
  Dsl.act ctx host ~action:Schema.act_create_vm
    ~args:[ Value.Str vm; Value.Str image; Value.Int mem_mb ];
  Dsl.act ctx host ~action:Schema.act_start_vm ~args:[ Value.Str vm ]

let start_vm ctx args =
  let host = path_arg args 0 in
  let vm = str_arg args 1 in
  Dsl.act ctx host ~action:Schema.act_start_vm ~args:[ Value.Str vm ]

let stop_vm ctx args =
  let host = path_arg args 0 in
  let vm = str_arg args 1 in
  Dsl.act ctx host ~action:Schema.act_stop_vm ~args:[ Value.Str vm ]

(* destroyVM host storage vm — reversible steps first, destructive
   (irreversible) removals last, so a late failure can still roll back. *)
let destroy_vm ctx args =
  let host = path_arg args 0 in
  let storage = path_arg args 1 in
  let vm = str_arg args 2 in
  let image = image_of_vm vm in
  let state = vm_attr ctx host vm Schema.attr_state in
  if Value.equal state (Value.Str Schema.state_running) then
    Dsl.act ctx host ~action:Schema.act_stop_vm ~args:[ Value.Str vm ];
  Dsl.act ctx host ~action:Schema.act_remove_vm ~args:[ Value.Str vm ];
  Dsl.act ctx host ~action:Schema.act_unimport_image ~args:[ Value.Str image ];
  Dsl.act ctx storage ~action:Schema.act_unexport_image ~args:[ Value.Str image ];
  Dsl.act ctx storage ~action:Schema.act_remove_image ~args:[ Value.Str image ]

(* migrateVM src dst vm — the §6.2 "VM type" service rule: migration across
   hypervisor types is illegal and aborts before any action runs. *)
let migrate_vm ctx args =
  let src = path_arg args 0 in
  let dst = path_arg args 1 in
  let vm = str_arg args 2 in
  let hypervisor_of host =
    match Dsl.get_attr ctx host Schema.attr_hypervisor with
    | Some (Value.Str h) -> h
    | Some _ | None ->
      Dsl.abort
        (Printf.sprintf "host %s has no hypervisor attribute"
           (Data.Path.to_string host))
  in
  let src_hv = hypervisor_of src and dst_hv = hypervisor_of dst in
  if not (String.equal src_hv dst_hv) then
    Dsl.abort
      (Printf.sprintf "cannot migrate %s: hypervisor %s at source, %s at target"
         vm src_hv dst_hv);
  let image =
    match vm_attr ctx src vm Schema.attr_image with
    | Value.Str image -> image
    | _ -> Dsl.abort (Printf.sprintf "vm %s has a malformed image attribute" vm)
  in
  let mem_mb =
    match vm_attr ctx src vm Schema.attr_mem_mb with
    | Value.Int mem -> mem
    | _ -> Dsl.abort (Printf.sprintf "vm %s has a malformed memory attribute" vm)
  in
  let was_running =
    Value.equal (vm_attr ctx src vm Schema.attr_state)
      (Value.Str Schema.state_running)
  in
  if was_running then
    Dsl.act ctx src ~action:Schema.act_stop_vm ~args:[ Value.Str vm ];
  Dsl.act ctx dst ~action:Schema.act_import_image ~args:[ Value.Str image ];
  Dsl.act ctx dst ~action:Schema.act_create_vm
    ~args:[ Value.Str vm; Value.Str image; Value.Int mem_mb ];
  if was_running then
    Dsl.act ctx dst ~action:Schema.act_start_vm ~args:[ Value.Str vm ];
  Dsl.act ctx src ~action:Schema.act_remove_vm ~args:[ Value.Str vm ];
  Dsl.act ctx src ~action:Schema.act_unimport_image ~args:[ Value.Str image ]

(* ------------------------------------------------------------------ *)
(* Network procedures *)

let create_vlan ctx args =
  let switch = path_arg args 0 in
  let vlan = int_arg args 1 in
  let name = str_arg args 2 in
  Dsl.act ctx switch ~action:Schema.act_create_vlan
    ~args:[ Value.Int vlan; Value.Str name ]

let remove_vlan ctx args =
  let switch = path_arg args 0 in
  let vlan = int_arg args 1 in
  Dsl.act ctx switch ~action:Schema.act_remove_vlan ~args:[ Value.Int vlan ]

let vm_port vm = vm ^ ".eth0"

let attach_vm_vlan ctx args =
  let switch = path_arg args 0 in
  let vlan = int_arg args 1 in
  let vm = str_arg args 2 in
  Dsl.act ctx switch ~action:Schema.act_add_port
    ~args:[ Value.Int vlan; Value.Str (vm_port vm) ]

let detach_vm_vlan ctx args =
  let switch = path_arg args 0 in
  let vlan = int_arg args 1 in
  let vm = str_arg args 2 in
  Dsl.act ctx switch ~action:Schema.act_remove_port
    ~args:[ Value.Int vlan; Value.Str (vm_port vm) ]

(* spawnVM composed with tenant networking — procedures calling
   procedures, the composition the DSL is meant for. *)
let spawn_vm_with_network ctx args =
  let vm = str_arg args 0 in
  let switch = str_arg args 5 in
  let vlan = int_arg args 6 in
  let spawn_args =
    [ List.nth args 0; List.nth args 1; List.nth args 2; List.nth args 3;
      List.nth args 4 ]
  in
  Dsl.call ctx ~proc:"spawnVM" ~args:spawn_args;
  Dsl.call ctx ~proc:"attachVmVlan"
    ~args:[ Value.Str switch; Value.Int vlan; Value.Str vm ]

let register_all env =
  List.iter
    (fun (name, body) -> Dsl.register_proc env ~name body)
    [
      "spawnVM", spawn_vm;
      "startVM", start_vm;
      "stopVM", stop_vm;
      "destroyVM", destroy_vm;
      "migrateVM", migrate_vm;
      "createVlan", create_vlan;
      "removeVlan", remove_vlan;
      "attachVmVlan", attach_vm_vlan;
      "detachVmVlan", detach_vm_vlan;
      "spawnVMWithNetwork", spawn_vm_with_network;
    ]

(* ------------------------------------------------------------------ *)
(* Argument builders *)

let spawn_vm_args ~vm ~template ~mem_mb ~storage ~host =
  [ Value.Str vm; Value.Str template; Value.Int mem_mb; Value.Str storage;
    Value.Str host ]

let start_vm_args ~host ~vm = [ Value.Str host; Value.Str vm ]
let stop_vm_args ~host ~vm = [ Value.Str host; Value.Str vm ]

let destroy_vm_args ~host ~storage ~vm =
  [ Value.Str host; Value.Str storage; Value.Str vm ]

let migrate_vm_args ~src ~dst ~vm = [ Value.Str src; Value.Str dst; Value.Str vm ]

let spawn_vm_with_network_args ~vm ~template ~mem_mb ~storage ~host ~switch
    ~vlan =
  spawn_vm_args ~vm ~template ~mem_mb ~storage ~host
  @ [ Value.Str switch; Value.Int vlan ]

let create_vlan_args ~switch ~vlan ~name =
  [ Value.Str switch; Value.Int vlan; Value.Str name ]

let remove_vlan_args ~switch ~vlan = [ Value.Str switch; Value.Int vlan ]

let attach_vm_vlan_args ~switch ~vlan ~vm =
  [ Value.Str switch; Value.Int vlan; Value.Str vm ]

let detach_vm_vlan_args ~switch ~vlan ~vm =
  [ Value.Str switch; Value.Int vlan; Value.Str vm ]
