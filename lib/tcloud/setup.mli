(** TCloud deployment builder: a complete environment (actions, stored
    procedures, constraints), an initial logical tree, and the matching
    simulated devices — the single source of truth for both layers at
    bootstrap. *)

type size = {
  compute_hosts : int;
  host_mem_mb : int;
  hypervisors : string list;  (** assigned round-robin across hosts *)
  storage_hosts : int;
  storage_capacity_mb : int;
  templates : (string * int) list;  (** name, size in MB; on every host *)
  switches : int;
  max_vlans : int;
  prepopulated_vms_per_host : int;
  prepop_vm_mem_mb : int;
}

(** A small deployment: 4 compute hosts (8 GB, xen/kvm alternating),
    2 storage hosts, 1 switch, one 10 GB template, no prepopulated VMs. *)
val small : size

(** The paper's performance scale (§6.1): 12 500 compute hosts with 8 VM
    slots each (100 000 VMs), 3 125 storage hosts. *)
val paper_scale : size

type t = {
  env : Tropic.Dsl.env;
  tree : Data.Tree.t;
  devices : Devices.Device.t list;
  computes : (Data.Path.t * Devices.Compute.t) array;
  storages : (Data.Path.t * Devices.Storage.t) array;
  switches : (Data.Path.t * Devices.Network.t) array;
}

(** Environment only (no inventory): actions + procedures + constraints. *)
val make_env : unit -> Tropic.Dsl.env

(** {!Tropic.Controller.default_config} with TCloud's repair rules wired
    in — what a TCloud deployment should run its controllers with. *)
val controller_config : Tropic.Controller.config

(** [build ?timing ?rng size] — [timing] selects whether device actions
    consume simulated time (pass [`Process] with the platform's sim rng
    for full-mode runs). *)
val build :
  ?timing:Devices.Device.timing -> ?rng:Random.State.t -> size -> t

(** {1 Naming} *)

(** [/vmRoot/hostNNNNN] *)
val compute_path : int -> Data.Path.t

(** [/storageRoot/storageNNNNN] *)
val storage_path : int -> Data.Path.t

(** [/netRoot/switchNNN] *)
val switch_path : int -> Data.Path.t

(** Storage host co-assigned to a compute host (4 hosts per storage). *)
val storage_for_host : size -> int -> Data.Path.t

(** Name of the [i]-th prepopulated VM on host [h]. *)
val prepop_vm_name : host:int -> index:int -> string
