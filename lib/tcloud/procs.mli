(** TCloud's stored procedures (paper §5): the orchestration operations
    exposed to end users and operators, composed from queries and actions.

    Resource arguments are full data-model paths encoded as strings, e.g.
    [spawn_vm_args ~vm:"tenant1-web" ~template:"base.img" ~mem_mb:1024
    ~storage:"/storageRoot/storage00000" ~host:"/vmRoot/host00003"].

    [register_all] installs them under these names:
    ["spawnVM"], ["startVM"], ["stopVM"], ["destroyVM"], ["migrateVM"],
    ["spawnVMWithNetwork"], ["createVlan"], ["removeVlan"],
    ["attachVmVlan"], ["detachVmVlan"]. *)

val register_all : Tropic.Dsl.env -> unit

(** Image name a VM's volume uses: [vm ^ ".img"]. *)
val image_of_vm : string -> string

(** Switch-port name a VM's NIC attaches under: [vm ^ ".eth0"] — the name
    [attachVmVlan]/[detachVmVlan] register on the switch, which the
    goal-state planner must reproduce when diffing port sets. *)
val vm_port : string -> string

(** {1 Argument builders} *)

val spawn_vm_args :
  vm:string -> template:string -> mem_mb:int -> storage:string -> host:string ->
  Data.Value.t list

val start_vm_args : host:string -> vm:string -> Data.Value.t list
val stop_vm_args : host:string -> vm:string -> Data.Value.t list

val destroy_vm_args :
  host:string -> storage:string -> vm:string -> Data.Value.t list

val migrate_vm_args :
  src:string -> dst:string -> vm:string -> Data.Value.t list

val spawn_vm_with_network_args :
  vm:string -> template:string -> mem_mb:int -> storage:string -> host:string ->
  switch:string -> vlan:int ->
  Data.Value.t list

val create_vlan_args : switch:string -> vlan:int -> name:string -> Data.Value.t list
val remove_vlan_args : switch:string -> vlan:int -> Data.Value.t list

val attach_vm_vlan_args :
  switch:string -> vlan:int -> vm:string -> Data.Value.t list

val detach_vm_vlan_args :
  switch:string -> vlan:int -> vm:string -> Data.Value.t list
