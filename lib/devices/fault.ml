type severity = Transient | Permanent

let severity_to_string = function
  | Transient -> "transient"
  | Permanent -> "permanent"

type verdict = Pass | Fail of severity * string | Hang

type plan =
  | Fail_next of int * severity
  | Fail_always of severity
  | Hang_next of int

type t = {
  plans : (string, plan) Hashtbl.t;
  mutable probability : float;
  mutable injected_count : int;
  mutable hang_count : int;
}

let create () =
  { plans = Hashtbl.create 8; probability = 0.; injected_count = 0; hang_count = 0 }

let fail_next ?(count = 1) ?(severity = Permanent) t ~action =
  if count > 0 then Hashtbl.replace t.plans action (Fail_next (count, severity))

let fail_always ?(severity = Permanent) t ~action =
  Hashtbl.replace t.plans action (Fail_always severity)

let hang_next ?(count = 1) t ~action =
  if count > 0 then Hashtbl.replace t.plans action (Hang_next count)

let clear t ~action = Hashtbl.remove t.plans action

let clear_all t =
  Hashtbl.reset t.plans;
  t.probability <- 0.

(* Clamped to [0,1]; NaN has no sensible clamp and is rejected. *)
let set_probability t p =
  if Float.is_nan p then Error "fault probability is NaN"
  else begin
    t.probability <- Float.min 1. (Float.max 0. p);
    Ok ()
  end

let probability t = t.probability

let check t ~rng ~action =
  let planned =
    match Hashtbl.find_opt t.plans action with
    | Some (Fail_next (1, severity)) ->
      Hashtbl.remove t.plans action;
      Some (`Fail severity)
    | Some (Fail_next (n, severity)) ->
      Hashtbl.replace t.plans action (Fail_next (n - 1, severity));
      Some (`Fail severity)
    | Some (Fail_always severity) -> Some (`Fail severity)
    | Some (Hang_next 1) ->
      Hashtbl.remove t.plans action;
      Some `Hang
    | Some (Hang_next n) ->
      Hashtbl.replace t.plans action (Hang_next (n - 1));
      Some `Hang
    | None -> None
  in
  match planned with
  | Some `Hang ->
    t.injected_count <- t.injected_count + 1;
    t.hang_count <- t.hang_count + 1;
    Hang
  | Some (`Fail severity) ->
    t.injected_count <- t.injected_count + 1;
    Fail
      ( severity,
        Printf.sprintf "injected %s fault in %s"
          (severity_to_string severity) action )
  | None ->
    (* Background random failures model environmental blips: transient. *)
    if t.probability > 0. && Des.Dist.flip rng ~p:t.probability then begin
      t.injected_count <- t.injected_count + 1;
      Fail (Transient, Printf.sprintf "injected transient fault in %s" action)
    end
    else Pass

let injected t = t.injected_count
let hangs t = t.hang_count
