type plan = Next of int | Always

type t = {
  plans : (string, plan) Hashtbl.t;
  mutable probability : float;
  mutable injected_count : int;
}

let create () = { plans = Hashtbl.create 8; probability = 0.; injected_count = 0 }

let fail_next ?(count = 1) t ~action =
  if count > 0 then Hashtbl.replace t.plans action (Next count)

let fail_always t ~action = Hashtbl.replace t.plans action Always
let clear t ~action = Hashtbl.remove t.plans action

let clear_all t =
  Hashtbl.reset t.plans;
  t.probability <- 0.

let set_probability t p = t.probability <- p

let check t ~rng ~action =
  let planned =
    match Hashtbl.find_opt t.plans action with
    | Some (Next 1) ->
      Hashtbl.remove t.plans action;
      true
    | Some (Next n) ->
      Hashtbl.replace t.plans action (Next (n - 1));
      true
    | Some Always -> true
    | None -> false
  in
  let random =
    t.probability > 0. && Des.Dist.flip rng ~p:t.probability
  in
  if planned || random then begin
    t.injected_count <- t.injected_count + 1;
    Error (Printf.sprintf "injected fault in %s" action)
  end
  else Ok ()

let injected t = t.injected_count
