(** Simulated programmable switch layer (the Juniper/VLAN substrate of
    TCloud).  VLANs are created per tenant; VM virtual interfaces are
    attached as ports. *)

type t

val create :
  ?timing:Device.timing ->
  ?latency:(string -> float) ->
  ?rng:Random.State.t ->
  root:Data.Path.t ->
  max_vlans:int ->
  unit ->
  t

val device : t -> Device.t

(** {1 Inspection} *)

val vlan_ids : t -> int list
val ports_of : t -> int -> string list option
val max_vlans : t -> int

(** {1 Out-of-band events} *)

(** An operator deletes a VLAN from the CLI behind TROPIC's back. *)
val force_remove_vlan : t -> int -> unit
