(** Simulated compute host (the Xen server of the paper's TCloud).

    Holds imported images and VMs.  Physical preconditions are the ones a
    hypervisor would enforce (a VM must exist and be stopped to be removed,
    its image must be imported to create it, …).  Note that memory capacity
    is deliberately *not* checked here: overcommit is physically possible
    — preventing it is the job of TROPIC's logical-layer constraints. *)

type t

val create :
  ?timing:Device.timing ->
  ?latency:(string -> float) ->
  ?rng:Random.State.t ->
  root:Data.Path.t ->
  mem_mb:int ->
  hypervisor:string ->
  unit ->
  t

(** The uniform device handle workers use. *)
val device : t -> Device.t

(** Pre-populate a VM (with its image imported) at build time — setup
    helper, not an orchestration action. *)
val preload_vm :
  t -> name:string -> image:string -> mem_mb:int ->
  state:[ `Stopped | `Running ] -> unit

(** {1 Inspection} *)

val mem_mb : t -> int
val hypervisor : t -> string
val vm_names : t -> string list

(** [`Stopped], [`Running], or [None] if the VM does not exist. *)
val vm_state : t -> string -> [ `Stopped | `Running ] option

val imported_images : t -> string list

(** Sum of memory of all VMs placed on the host. *)
val used_mem_mb : t -> int

(** {1 Out-of-band events (resource volatility, §4)} *)

(** Power failure: every running VM is found stopped afterwards. *)
val power_cycle : t -> unit

(** An operator deletes a VM behind TROPIC's back. *)
val force_remove_vm : t -> string -> unit

(** Flip a VM's state without going through the platform. *)
val force_set_vm_state : t -> string -> [ `Stopped | `Running ] -> unit
