(** Fault injection for simulated devices.

    Supports the error scenarios of the paper's robustness evaluation
    (§6.3) plus the stall scenarios of the watchdog layer: deterministic
    one-shot failures of a named action (e.g. "the last step of VM spawning
    fails"), persistent failures, hang injection (an invocation that never
    returns), and a background random failure probability.

    Every injected failure carries a {!severity}: [Transient] errors model
    environmental blips the physical layer may retry in place; [Permanent]
    errors model hard faults that warrant rollback.  Planned failures
    default to [Permanent] (the paper's operator-style error scenarios);
    background random failures are always [Transient]. *)

type severity = Transient | Permanent

val severity_to_string : severity -> string

(** Fate of one invocation: proceed, fail with a classified reason, or
    never return. *)
type verdict = Pass | Fail of severity * string | Hang

type t

val create : unit -> t

(** The next [count] (default 1) invocations of [action] fail. *)
val fail_next : ?count:int -> ?severity:severity -> t -> action:string -> unit

(** Every invocation of [action] fails until {!clear}. *)
val fail_always : ?severity:severity -> t -> action:string -> unit

(** The next [count] (default 1) invocations of [action] hang forever
    (until the calling process is killed, e.g. by the physical layer's
    per-action deadline). *)
val hang_next : ?count:int -> t -> action:string -> unit

val clear : t -> action:string -> unit
val clear_all : t -> unit

(** Background failure probability applied to every action.  Values outside
    [\[0, 1\]] are clamped; NaN is rejected. *)
val set_probability : t -> float -> (unit, string) result

(** Current background failure probability. *)
val probability : t -> float

(** [check t ~rng ~action] decides the fate of one invocation. *)
val check : t -> rng:Random.State.t -> action:string -> verdict

(** Injected failures so far (hangs included). *)
val injected : t -> int

(** Injected hangs so far. *)
val hangs : t -> int
