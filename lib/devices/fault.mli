(** Fault injection for simulated devices.

    Supports the error scenarios of the paper's robustness evaluation
    (§6.3): deterministic one-shot failures of a named action (e.g. "the
    last step of VM spawning fails"), persistent failures, and a background
    random failure probability. *)

type t

val create : unit -> t

(** The next [count] (default 1) invocations of [action] fail. *)
val fail_next : ?count:int -> t -> action:string -> unit

(** Every invocation of [action] fails until {!clear}. *)
val fail_always : t -> action:string -> unit

val clear : t -> action:string -> unit
val clear_all : t -> unit

(** Background failure probability applied to every action. *)
val set_probability : t -> float -> unit

(** [check t ~rng ~action] decides the fate of one invocation. *)
val check : t -> rng:Random.State.t -> action:string -> (unit, string) result

(** Injected failures so far. *)
val injected : t -> int
