type timing = [ `Process | `Instant ]

type error = { reason : string; transient : bool }

let error_to_string e =
  if e.transient then "transient: " ^ e.reason else e.reason

let permanent reason = { reason; transient = false }
let transient reason = { reason; transient = true }

type t = {
  droot : Data.Path.t;
  dkind : string;
  timing : timing;
  latency : string -> float;
  rng : Random.State.t;
  dispatch : action:string -> args:Data.Value.t list -> (unit, string) result;
  export_state : unit -> Data.Tree.node;
  fault_injector : Fault.t;
  mutable is_online : bool;
  mutable op_count : int;
  mutable failure_count : int;
}

let make ~root ~kind ~timing ~latency ~rng ~dispatch ~export_state =
  {
    droot = root;
    dkind = kind;
    timing;
    latency;
    rng;
    dispatch;
    export_state;
    fault_injector = Fault.create ();
    is_online = true;
    op_count = 0;
    failure_count = 0;
  }

let root d = d.droot
let kind d = d.dkind
let faults d = d.fault_injector
let online d = d.is_online
let set_online d up = d.is_online <- up
let ops d = d.op_count
let failures d = d.failure_count
let export d = d.export_state ()

(* Rough magnitudes for real cloud operations: storage cloning dominates,
   VM boot comes next, control-plane tweaks are fast. *)
let default_latency action =
  if String.equal action Schema.act_clone_image then 4.0
  else if String.equal action Schema.act_remove_image then 0.8
  else if String.equal action Schema.act_export_image then 0.5
  else if String.equal action Schema.act_unexport_image then 0.3
  else if String.equal action Schema.act_import_image then 0.4
  else if String.equal action Schema.act_unimport_image then 0.3
  else if String.equal action Schema.act_create_vm then 0.6
  else if String.equal action Schema.act_remove_vm then 0.4
  else if String.equal action Schema.act_start_vm then 2.0
  else if String.equal action Schema.act_stop_vm then 1.0
  else 0.2

(* Park the calling process forever: the injected-hang behaviour.  Only a
   kill (worker crash, or the physical layer's per-action deadline) ever
   resumes it — with [Des.Proc.Killed], which unwinds the caller. *)
let hang_forever () = Des.Proc.suspend (fun _proc _resumer () -> ())

let invoke d ~action ~args =
  d.op_count <- d.op_count + 1;
  let result =
    if not d.is_online then
      (* Power loss is an availability blip, the canonical transient error. *)
      Error
        (transient
           (Printf.sprintf "device %s is offline" (Data.Path.to_string d.droot)))
    else begin
      (match d.timing with
       | `Process -> Des.Proc.sleep (d.latency action)
       | `Instant -> ());
      match Fault.check d.fault_injector ~rng:d.rng ~action with
      | Fault.Hang ->
        d.failure_count <- d.failure_count + 1;
        hang_forever ()
      | Fault.Fail (severity, reason) ->
        Error { reason; transient = severity = Fault.Transient }
      | Fault.Pass ->
        (* Precondition violations are permanent: retrying cannot help. *)
        Result.map_error permanent (d.dispatch ~action ~args)
    end
  in
  (match result with
   | Error _ -> d.failure_count <- d.failure_count + 1
   | Ok () -> ());
  result

let str_arg args i =
  match List.nth_opt args i with
  | Some (Data.Value.Str s) -> Ok s
  | Some v ->
    Error
      (Printf.sprintf "argument %d: expected string, got %s" i
         (Data.Value.to_string v))
  | None -> Error (Printf.sprintf "argument %d missing" i)

let int_arg args i =
  match List.nth_opt args i with
  | Some (Data.Value.Int n) -> Ok n
  | Some v ->
    Error
      (Printf.sprintf "argument %d: expected int, got %s" i
         (Data.Value.to_string v))
  | None -> Error (Printf.sprintf "argument %d missing" i)
