type vlan = { vlan_name : string; mutable ports : string list }

type t = {
  limit : int;
  vlans : (int, vlan) Hashtbl.t;
  handle : Device.t Lazy.t;
}

let vlan_key id = Printf.sprintf "vlan%04d" id

let export_state switch () =
  let children =
    Hashtbl.fold
      (fun id vlan acc ->
        let node =
          Data.Tree.make_node ~kind:Schema.vlan_kind
            ~attrs:
              [
                Schema.attr_vlan_name, Data.Value.Str vlan.vlan_name;
                ( Schema.attr_ports,
                  Data.Value.List
                    (List.map
                       (fun p -> Data.Value.Str p)
                       (List.sort String.compare vlan.ports)) );
              ]
            ()
        in
        (vlan_key id, node) :: acc)
      switch.vlans []
  in
  Data.Tree.make_node ~kind:Schema.switch_kind
    ~attrs:[ Schema.attr_max_vlans, Data.Value.Int switch.limit ]
    ~children ()

let ( let* ) r f = Result.bind r f

let dispatch switch ~action ~args =
  if String.equal action Schema.act_create_vlan then
    let* id = Device.int_arg args 0 in
    let* name = Device.str_arg args 1 in
    if Hashtbl.mem switch.vlans id then
      Error (Printf.sprintf "vlan %d already exists" id)
    else if Hashtbl.length switch.vlans >= switch.limit then
      Error "switch out of vlan capacity"
    else Ok (Hashtbl.replace switch.vlans id { vlan_name = name; ports = [] })
  else if String.equal action Schema.act_remove_vlan then
    let* id = Device.int_arg args 0 in
    (match Hashtbl.find_opt switch.vlans id with
     | None -> Error (Printf.sprintf "vlan %d does not exist" id)
     | Some { ports = _ :: _; _ } ->
       Error (Printf.sprintf "vlan %d still has ports" id)
     | Some { ports = []; _ } -> Ok (Hashtbl.remove switch.vlans id))
  else if String.equal action Schema.act_add_port then
    let* id = Device.int_arg args 0 in
    let* port = Device.str_arg args 1 in
    (match Hashtbl.find_opt switch.vlans id with
     | None -> Error (Printf.sprintf "vlan %d does not exist" id)
     | Some vlan ->
       if List.mem port vlan.ports then
         Error (Printf.sprintf "port %s already in vlan %d" port id)
       else Ok (vlan.ports <- port :: vlan.ports))
  else if String.equal action Schema.act_remove_port then
    let* id = Device.int_arg args 0 in
    let* port = Device.str_arg args 1 in
    (match Hashtbl.find_opt switch.vlans id with
     | None -> Error (Printf.sprintf "vlan %d does not exist" id)
     | Some vlan ->
       if not (List.mem port vlan.ports) then
         Error (Printf.sprintf "port %s not in vlan %d" port id)
       else Ok (vlan.ports <- List.filter (fun p -> p <> port) vlan.ports))
  else Error (Printf.sprintf "switch: unknown action %s" action)

let create ?(timing = `Instant) ?latency ?rng ~root ~max_vlans () =
  let latency = Option.value latency ~default:Device.default_latency in
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| 2213 |]
  in
  let rec switch =
    {
      limit = max_vlans;
      vlans = Hashtbl.create 16;
      handle =
        lazy
          (Device.make ~root ~kind:Schema.switch_kind ~timing ~latency ~rng
             ~dispatch:(fun ~action ~args -> dispatch switch ~action ~args)
             ~export_state:(export_state switch));
    }
  in
  switch

let device switch = Lazy.force switch.handle

let vlan_ids switch =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) switch.vlans [])

let ports_of switch id =
  Option.map
    (fun vlan -> List.sort String.compare vlan.ports)
    (Hashtbl.find_opt switch.vlans id)

let max_vlans switch = switch.limit
let force_remove_vlan switch id = Hashtbl.remove switch.vlans id
