type image = {
  size_mb : int;
  template : bool;
  mutable exported : bool;
}

type t = {
  capacity : int;
  images : (string, image) Hashtbl.t;
  handle : Device.t Lazy.t;
}

let export_state host () =
  let children =
    Hashtbl.fold
      (fun name img acc ->
        let node =
          Data.Tree.make_node ~kind:Schema.image_kind
            ~attrs:
              [
                Schema.attr_size_mb, Data.Value.Int img.size_mb;
                Schema.attr_template, Data.Value.Bool img.template;
                Schema.attr_exported, Data.Value.Bool img.exported;
              ]
            ()
        in
        (name, node) :: acc)
      host.images []
  in
  Data.Tree.make_node ~kind:Schema.storage_host_kind
    ~attrs:[ Schema.attr_size_mb, Data.Value.Int host.capacity ]
    ~children ()

let used_mb host =
  Hashtbl.fold (fun _ img acc -> acc + img.size_mb) host.images 0

let ( let* ) r f = Result.bind r f

let dispatch host ~action ~args =
  if String.equal action Schema.act_clone_image then
    let* template = Device.str_arg args 0 in
    let* image = Device.str_arg args 1 in
    (match Hashtbl.find_opt host.images template with
     | None -> Error (Printf.sprintf "template %s does not exist" template)
     | Some { template = false; _ } ->
       Error (Printf.sprintf "%s is not a template" template)
     | Some src ->
       if Hashtbl.mem host.images image then
         Error (Printf.sprintf "image %s already exists" image)
       else if used_mb host + src.size_mb > host.capacity then
         Error "storage host out of space"
       else
         Ok
           (Hashtbl.replace host.images image
              { size_mb = src.size_mb; template = false; exported = false }))
  else if String.equal action Schema.act_remove_image then
    let* image = Device.str_arg args 0 in
    (match Hashtbl.find_opt host.images image with
     | None -> Error (Printf.sprintf "image %s does not exist" image)
     | Some { template = true; _ } -> Error "cannot remove a template"
     | Some { exported = true; _ } ->
       Error (Printf.sprintf "image %s is still exported" image)
     | Some _ -> Ok (Hashtbl.remove host.images image))
  else if String.equal action Schema.act_export_image then
    let* image = Device.str_arg args 0 in
    (match Hashtbl.find_opt host.images image with
     | None -> Error (Printf.sprintf "image %s does not exist" image)
     | Some ({ exported = false; _ } as img) -> Ok (img.exported <- true)
     | Some { exported = true; _ } ->
       Error (Printf.sprintf "image %s already exported" image))
  else if String.equal action Schema.act_unexport_image then
    let* image = Device.str_arg args 0 in
    (match Hashtbl.find_opt host.images image with
     | None -> Error (Printf.sprintf "image %s does not exist" image)
     | Some ({ exported = true; _ } as img) -> Ok (img.exported <- false)
     | Some { exported = false; _ } ->
       Error (Printf.sprintf "image %s not exported" image))
  else Error (Printf.sprintf "storage host: unknown action %s" action)

let create ?(timing = `Instant) ?latency ?rng ~root ~capacity_mb () =
  let latency = Option.value latency ~default:Device.default_latency in
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| 2207 |]
  in
  let rec host =
    {
      capacity = capacity_mb;
      images = Hashtbl.create 16;
      handle =
        lazy
          (Device.make ~root ~kind:Schema.storage_host_kind ~timing ~latency
             ~rng
             ~dispatch:(fun ~action ~args -> dispatch host ~action ~args)
             ~export_state:(export_state host));
    }
  in
  host

let device host = Lazy.force host.handle

let add_template host ~name ~size_mb =
  Hashtbl.replace host.images name { size_mb; template = true; exported = false }

let preload_image host ~name ~size_mb ~exported =
  Hashtbl.replace host.images name { size_mb; template = false; exported }

let image_names host =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) host.images [])

let is_template host name =
  match Hashtbl.find_opt host.images name with
  | Some img -> img.template
  | None -> false

let is_exported host name =
  match Hashtbl.find_opt host.images name with
  | Some img -> img.exported
  | None -> false

let capacity_mb host = host.capacity
let force_remove_image host name = Hashtbl.remove host.images name
