type vm = { mutable state : [ `Stopped | `Running ]; vm_mem_mb : int; image : string }

type t = {
  host_mem_mb : int;
  host_hypervisor : string;
  vms : (string, vm) Hashtbl.t;
  imported : (string, unit) Hashtbl.t;
  handle : Device.t Lazy.t;
}

let state_string = function
  | `Stopped -> Schema.state_stopped
  | `Running -> Schema.state_running

let export_state host () =
  let vm_children =
    Hashtbl.fold
      (fun name vm acc ->
        let node =
          Data.Tree.make_node ~kind:Schema.vm_kind
            ~attrs:
              [
                Schema.attr_state, Data.Value.Str (state_string vm.state);
                Schema.attr_mem_mb, Data.Value.Int vm.vm_mem_mb;
                Schema.attr_image, Data.Value.Str vm.image;
              ]
            ()
        in
        (name, node) :: acc)
      host.vms []
  in
  let imported =
    Hashtbl.fold (fun k () acc -> k :: acc) host.imported []
    |> List.sort String.compare
    |> List.map (fun i -> Data.Value.Str i)
  in
  Data.Tree.make_node ~kind:Schema.vm_host_kind
    ~attrs:
      [
        Schema.attr_mem_mb, Data.Value.Int host.host_mem_mb;
        Schema.attr_hypervisor, Data.Value.Str host.host_hypervisor;
        Schema.attr_imported, Data.Value.List imported;
      ]
    ~children:vm_children ()

let ( let* ) r f = Result.bind r f

let dispatch host ~action ~args =
  if String.equal action Schema.act_import_image then
    let* image = Device.str_arg args 0 in
    if Hashtbl.mem host.imported image then
      Error (Printf.sprintf "image %s already imported" image)
    else Ok (Hashtbl.replace host.imported image ())
  else if String.equal action Schema.act_unimport_image then
    let* image = Device.str_arg args 0 in
    if not (Hashtbl.mem host.imported image) then
      Error (Printf.sprintf "image %s not imported" image)
    else if
      Hashtbl.fold
        (fun _ vm used -> used || String.equal vm.image image)
        host.vms false
    then Error (Printf.sprintf "image %s still used by a VM" image)
    else Ok (Hashtbl.remove host.imported image)
  else if String.equal action Schema.act_create_vm then
    let* name = Device.str_arg args 0 in
    let* image = Device.str_arg args 1 in
    let* mem = Device.int_arg args 2 in
    if Hashtbl.mem host.vms name then
      Error (Printf.sprintf "vm %s already exists" name)
    else if not (Hashtbl.mem host.imported image) then
      Error (Printf.sprintf "image %s not imported" image)
    else Ok (Hashtbl.replace host.vms name { state = `Stopped; vm_mem_mb = mem; image })
  else if String.equal action Schema.act_remove_vm then
    let* name = Device.str_arg args 0 in
    (match Hashtbl.find_opt host.vms name with
     | None -> Error (Printf.sprintf "vm %s does not exist" name)
     | Some { state = `Running; _ } ->
       Error (Printf.sprintf "vm %s is running" name)
     | Some { state = `Stopped; _ } -> Ok (Hashtbl.remove host.vms name))
  else if String.equal action Schema.act_start_vm then
    let* name = Device.str_arg args 0 in
    (match Hashtbl.find_opt host.vms name with
     | None -> Error (Printf.sprintf "vm %s does not exist" name)
     | Some ({ state = `Stopped; _ } as vm) -> Ok (vm.state <- `Running)
     | Some { state = `Running; _ } ->
       Error (Printf.sprintf "vm %s already running" name))
  else if String.equal action Schema.act_stop_vm then
    let* name = Device.str_arg args 0 in
    (match Hashtbl.find_opt host.vms name with
     | None -> Error (Printf.sprintf "vm %s does not exist" name)
     | Some ({ state = `Running; _ } as vm) -> Ok (vm.state <- `Stopped)
     | Some { state = `Stopped; _ } ->
       Error (Printf.sprintf "vm %s already stopped" name))
  else Error (Printf.sprintf "compute host: unknown action %s" action)

let create ?(timing = `Instant) ?latency ?rng ~root ~mem_mb ~hypervisor () =
  let latency = Option.value latency ~default:Device.default_latency in
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| 2203 |]
  in
  let rec host =
    {
      host_mem_mb = mem_mb;
      host_hypervisor = hypervisor;
      vms = Hashtbl.create 8;
      imported = Hashtbl.create 8;
      handle =
        lazy
          (Device.make ~root ~kind:Schema.vm_host_kind ~timing ~latency ~rng
             ~dispatch:(fun ~action ~args -> dispatch host ~action ~args)
             ~export_state:(export_state host));
    }
  in
  host

let device host = Lazy.force host.handle

let preload_vm host ~name ~image ~mem_mb ~state =
  if not (Hashtbl.mem host.imported image) then
    Hashtbl.replace host.imported image ();
  Hashtbl.replace host.vms name { state; vm_mem_mb = mem_mb; image }
let mem_mb host = host.host_mem_mb
let hypervisor host = host.host_hypervisor

let vm_names host =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) host.vms [])

let vm_state host name =
  Option.map (fun vm -> vm.state) (Hashtbl.find_opt host.vms name)

let imported_images host =
  List.sort String.compare
    (Hashtbl.fold (fun k () acc -> k :: acc) host.imported [])

let used_mem_mb host =
  Hashtbl.fold (fun _ vm acc -> acc + vm.vm_mem_mb) host.vms 0

let power_cycle host =
  Hashtbl.iter (fun _ vm -> vm.state <- `Stopped) host.vms

let force_remove_vm host name = Hashtbl.remove host.vms name

let force_set_vm_state host name state =
  match Hashtbl.find_opt host.vms name with
  | Some vm -> vm.state <- state
  | None -> ()
