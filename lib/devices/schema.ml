(* Shared vocabulary between the simulated devices (physical layer) and the
   TCloud data model (logical layer): entity kinds, attribute names, VM
   states, and the action names of Table 1.  Keeping these in one place is
   what lets reload/repair compare the two layers structurally. *)

(* Entity kinds *)
let vm_root_kind = "vmRoot"
let vm_host_kind = "vmHost"
let vm_kind = "vm"
let storage_root_kind = "storageRoot"
let storage_host_kind = "storageHost"
let image_kind = "image"
let net_root_kind = "netRoot"
let switch_kind = "switch"
let vlan_kind = "vlan"

(* Attribute names *)
let attr_mem_mb = "mem_mb"
let attr_hypervisor = "hypervisor"
let attr_state = "state"
let attr_image = "image"
let attr_size_mb = "size_mb"
let attr_exported = "exported"
let attr_template = "template"
let attr_ports = "ports"
let attr_vlan_name = "name"
let attr_imported = "imported"   (* images imported on a compute host *)
let attr_max_vlans = "max_vlans"

(* VM lifecycle states *)
let state_stopped = "stopped"
let state_running = "running"

(* Compute-host actions *)
let act_import_image = "importImage"
let act_unimport_image = "unimportImage"
let act_create_vm = "createVM"
let act_remove_vm = "removeVM"
let act_start_vm = "startVM"
let act_stop_vm = "stopVM"

(* Storage-host actions *)
let act_clone_image = "cloneImage"
let act_remove_image = "removeImage"
let act_export_image = "exportImage"
let act_unexport_image = "unexportImage"

(* Switch actions *)
let act_create_vlan = "createVlan"
let act_remove_vlan = "removeVlan"
let act_add_port = "addPort"
let act_remove_port = "removePort"
