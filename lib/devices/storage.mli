(** Simulated storage host (the GNBD/DRBD-over-LVM server of TCloud).

    Hosts hold image templates and cloned volumes; a clone must be exported
    (published as a network block device) before a compute host can import
    it. *)

type t

val create :
  ?timing:Device.timing ->
  ?latency:(string -> float) ->
  ?rng:Random.State.t ->
  root:Data.Path.t ->
  capacity_mb:int ->
  unit ->
  t

val device : t -> Device.t

(** Pre-load a golden image template (not an orchestration action). *)
val add_template : t -> name:string -> size_mb:int -> unit

(** Pre-populate a cloned (non-template) image — setup helper. *)
val preload_image : t -> name:string -> size_mb:int -> exported:bool -> unit

(** {1 Inspection} *)

val image_names : t -> string list
val is_template : t -> string -> bool
val is_exported : t -> string -> bool
val used_mb : t -> int
val capacity_mb : t -> int

(** {1 Out-of-band events} *)

(** An image disappears behind TROPIC's back (disk failure, manual rm). *)
val force_remove_image : t -> string -> unit
