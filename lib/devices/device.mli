(** Uniform handle over a simulated physical device.

    Workers in the physical layer drive devices only through this
    interface: invoke an action (which takes simulated time and may fail by
    injection or by precondition), or retrieve the device's current state
    as a data-model subtree (the basis of reload/repair). *)

type t

(** How invocations consume time: [`Process] sleeps for the action's
    latency (caller must be inside a {!Des.Proc} process); [`Instant]
    returns immediately (unit tests, logical-only mode). *)
type timing = [ `Process | `Instant ]

(** Classified invocation failure.  [transient] errors (offline device,
    injected transient fault) may be retried in place by the physical
    layer; permanent errors (precondition violations, injected permanent
    faults) warrant rollback. *)
type error = { reason : string; transient : bool }

val error_to_string : error -> string

(** [make] is used by the concrete device modules, not by clients. *)
val make :
  root:Data.Path.t ->
  kind:string ->
  timing:timing ->
  latency:(string -> float) ->
  rng:Random.State.t ->
  dispatch:(action:string -> args:Data.Value.t list -> (unit, string) result) ->
  export_state:(unit -> Data.Tree.node) ->
  t

(** Data-model path this device's subtree lives at. *)
val root : t -> Data.Path.t

val kind : t -> string

(** Execute one action against the device.  Sequence: online check,
    latency, fault injection, precondition check + state change.  An
    injected hang parks the calling process forever (it only unwinds if
    the process is killed). *)
val invoke :
  t -> action:string -> args:Data.Value.t list -> (unit, error) result

(** Snapshot of the device's physical state as a data-model node. *)
val export : t -> Data.Tree.node

(** Fault injector of this device. *)
val faults : t -> Fault.t

(** Power state: an offline device fails every invocation. *)
val online : t -> bool

val set_online : t -> bool -> unit

(** Invocations attempted / failed (any cause). *)
val ops : t -> int

val failures : t -> int

(** Default per-action latency (seconds) used when none is supplied. *)
val default_latency : string -> float

(** {1 Argument decoding helpers for dispatch functions} *)

val str_arg : Data.Value.t list -> int -> (string, string) result
val int_arg : Data.Value.t list -> int -> (int, string) result
