(** Minimal s-expressions, used as the on-the-wire / on-disk codec for the
    data model, execution logs and transaction records (no JSON library is
    vendored; s-expressions parse fast and print deterministically). *)

type t = Atom of string | List of t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Deterministic single-line rendering; atoms are quoted when needed. *)
val to_string : t -> string

(** Inverse of {!to_string}; also accepts surrounding whitespace and [;]
    line comments (goal files and scenarios annotate themselves). *)
val of_string : string -> (t, string) result

(** {1 Construction helpers} *)

val atom : string -> t
val list : t list -> t
val of_int : int -> t
val of_float : float -> t
val of_bool : bool -> t

(** {1 Destruction helpers} *)

val to_int : t -> (int, string) result
val to_float : t -> (float, string) result
val to_bool : t -> (bool, string) result
val to_atom : t -> (string, string) result
val to_list : t -> (t list, string) result

(** [assoc key fields] looks up [(key v)] in a list of two-element lists. *)
val assoc : string -> t list -> (t, string) result
