(** The hierarchical resource data model: a persistent (immutable) tree of
    typed nodes with attribute maps.

    Persistence is what makes the logical layer cheap to checkpoint and roll
    back: the controller keeps the pre-transaction tree value and restores
    it in O(1) on abort. *)

module Smap : Map.S with type key = string

type node = {
  kind : string;  (** entity type, e.g. ["vmHost"], ["vm"], ["image"] *)
  attrs : Value.t Smap.t;
  children : node Smap.t;
}

type t = node

type error =
  | Missing of Path.t      (** path does not exist *)
  | Exists of Path.t       (** insert target already exists *)
  | No_parent of Path.t    (** insert target's parent does not exist *)
  | Root_immutable         (** attempt to remove or replace the root *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val empty : t
val equal : t -> t -> bool

(** {1 Reading} *)

val find : t -> Path.t -> node option
val mem : t -> Path.t -> bool
val get_attr : t -> Path.t -> string -> Value.t option
val kind : t -> Path.t -> string option

(** Children of the node at [path], in name order. *)
val children : t -> Path.t -> (string * node) list option

(** Child names only. *)
val child_names : t -> Path.t -> string list option

(** Attributes of a node, in name order. *)
val attrs_of : node -> (string * Value.t) list

(** Preorder fold over every node (including the root, path = []). *)
val fold : (Path.t -> node -> 'a -> 'a) -> t -> 'a -> 'a

(** Number of nodes, root excluded. *)
val size : t -> int

(** {1 Updating — all persistent} *)

val insert :
  t -> Path.t -> kind:string -> ?attrs:(string * Value.t) list -> unit ->
  (t, error) result

(** Removes the node and its whole subtree. *)
val remove : t -> Path.t -> (t, error) result

val set_attr : t -> Path.t -> string -> Value.t -> (t, error) result
val remove_attr : t -> Path.t -> string -> (t, error) result

(** [replace_subtree t path node] substitutes the node (with children) at
    [path]; used by reload to adopt freshly retrieved physical state. *)
val replace_subtree : t -> Path.t -> node -> (t, error) result

(** [subtree t path] is the node at [path] viewed as a standalone tree. *)
val subtree : t -> Path.t -> (node, error) result

(** {1 Codec} *)

val node_to_sexp : node -> Sexp.t
val node_of_sexp : Sexp.t -> (node, string) result
val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result

(** Render as an indented outline (for examples and debugging). *)
val pp : Format.formatter -> t -> unit

(** Build a node value directly (for {!replace_subtree} and tests). *)
val make_node :
  kind:string -> ?attrs:(string * Value.t) list ->
  ?children:(string * node) list -> unit -> node
