(** Structural difference between two trees.

    Reconciliation uses this to compare the logical and physical data
    models, and the goal-state planner ([lib/plan]) compiles the change
    list into transactions: [diff ~old_tree ~new_tree] lists the changes
    that turn [old_tree] into [new_tree]. *)

type change =
  | Added of Path.t * Tree.node       (** subtree present only in [new_tree] *)
  | Removed of Path.t                 (** subtree present only in [old_tree] *)
  | Kind_changed of Path.t * string * string  (** old kind, new kind *)
  | Attr_set of Path.t * string * Value.t option * Value.t
      (** attribute added or changed: old value ([None] = absent), new *)
  | Attr_removed of Path.t * string * Value.t

val pp_change : Format.formatter -> change -> unit
val change_to_string : change -> string

(** [path_of change] is the node the change applies to. *)
val path_of : change -> Path.t

(** Changes in a {e deterministic, dependency-safe} order; empty iff the
    trees are equal.  The order is a guarantee the goal-state planner
    depends on:

    - Nodes are visited in preorder: a node's own changes always precede
      those of its descendants.
    - Per node, changes appear as: [Kind_changed] first, then attribute
      changes in ascending attribute-name order, then child changes in
      ascending child-name order.
    - [Added] and [Removed] each cover a whole subtree and are emitted
      exactly once, at the subtree's root — two [Added] (or two [Removed])
      changes are never ancestor-related.  Because of the preorder, the
      parent of every [Added] node already exists when the change is
      reached: an add for a parent always precedes adds {e inside} other
      subtrees deeper in the list, and removals of a subtree's interior
      never appear (the subtree root's single [Removed] subsumes them —
      deepest-first removal is vacuously satisfied).

    Consequently folding the list over [old_tree] with {!apply} (see
    {!patch}) reconstructs [new_tree] exactly, in one pass, in list
    order. *)
val diff : old_tree:Tree.t -> new_tree:Tree.t -> change list

(** Apply one change to a tree.  Errors surface the underlying tree edit
    failure (e.g. [Missing] for an [Attr_set] on an absent node). *)
val apply : Tree.t -> change -> (Tree.t, Tree.error) result

(** [patch tree changes] folds {!apply} left-to-right, stopping at the
    first error.  [patch old_tree (diff ~old_tree ~new_tree)] is
    [Ok new_tree] — the regression suite pins this property. *)
val patch : Tree.t -> change list -> (Tree.t, Tree.error) result
