(** Structural difference between two trees.

    Reconciliation uses this to compare the logical and physical data
    models: [diff ~old_tree ~new_tree] lists the changes that turn
    [old_tree] into [new_tree]. *)

type change =
  | Added of Path.t * Tree.node       (** subtree present only in [new_tree] *)
  | Removed of Path.t                 (** subtree present only in [old_tree] *)
  | Kind_changed of Path.t * string * string  (** old kind, new kind *)
  | Attr_set of Path.t * string * Value.t option * Value.t
      (** attribute added or changed: old value ([None] = absent), new *)
  | Attr_removed of Path.t * string * Value.t

val pp_change : Format.formatter -> change -> unit
val change_to_string : change -> string

(** [path_of change] is the node the change applies to. *)
val path_of : change -> Path.t

(** Changes in deterministic (preorder, name-sorted) order; empty iff the
    trees are equal. *)
val diff : old_tree:Tree.t -> new_tree:Tree.t -> change list
