module Smap = Map.Make (String)

type node = {
  kind : string;
  attrs : Value.t Smap.t;
  children : node Smap.t;
}

type t = node

type error =
  | Missing of Path.t
  | Exists of Path.t
  | No_parent of Path.t
  | Root_immutable

let pp_error fmt = function
  | Missing p -> Format.fprintf fmt "no such path %a" Path.pp p
  | Exists p -> Format.fprintf fmt "path already exists %a" Path.pp p
  | No_parent p -> Format.fprintf fmt "parent of %a does not exist" Path.pp p
  | Root_immutable -> Format.pp_print_string fmt "the root cannot be removed"

let error_to_string e = Format.asprintf "%a" pp_error e

let make_node ~kind ?(attrs = []) ?(children = []) () =
  {
    kind;
    attrs = Smap.of_seq (List.to_seq attrs);
    children = Smap.of_seq (List.to_seq children);
  }

let empty = make_node ~kind:"root" ()

let rec node_equal a b =
  String.equal a.kind b.kind
  && Smap.equal Value.equal a.attrs b.attrs
  && Smap.equal node_equal a.children b.children

let equal = node_equal

let rec find_node node segs =
  match segs with
  | [] -> Some node
  | seg :: rest ->
    (match Smap.find_opt seg node.children with
     | Some child -> find_node child rest
     | None -> None)

let find t path = find_node t (Path.segments path)
let mem t path = Option.is_some (find t path)

let get_attr t path name =
  Option.bind (find t path) (fun node -> Smap.find_opt name node.attrs)

let kind t path = Option.map (fun node -> node.kind) (find t path)

let children t path =
  Option.map (fun node -> Smap.bindings node.children) (find t path)

let child_names t path =
  Option.map (List.map fst) (children t path)

let attrs_of node = Smap.bindings node.attrs

let fold f t init =
  let rec go path node acc =
    let acc = f path node acc in
    Smap.fold (fun name child acc -> go (Path.child path name) child acc)
      node.children acc
  in
  go Path.root t init

let size t = fold (fun path _ acc -> if Path.is_root path then acc else acc + 1) t 0

(* Rebuild the spine from the root to [path], applying [f] to the node at
   [path] ([f None] when absent; returning [None] deletes it). *)
let update t path (f : node option -> (node option, error) result) =
  let rec go node segs =
    match segs with
    | [] ->
      (match f (Some node) with
       | Ok (Some node') -> Ok (Some node')
       | Ok None -> Error Root_immutable
       | Error e -> Error e)
    | [ last ] ->
      let current = Smap.find_opt last node.children in
      (match f current with
       | Error e -> Error e
       | Ok None ->
         (match current with
          | None -> Error (Missing path)
          | Some _ ->
            Ok (Some { node with children = Smap.remove last node.children }))
       | Ok (Some child') ->
         Ok (Some { node with children = Smap.add last child' node.children }))
    | seg :: rest ->
      (match Smap.find_opt seg node.children with
       | None ->
         (* An intermediate node is absent: classify the failure. *)
         (match f None with
          | Error e -> Error e
          | Ok (Some _) -> Error (No_parent path)
          | Ok None -> Error (Missing path))
       | Some child ->
         (match go child rest with
          | Error e -> Error e
          | Ok None -> assert false (* only the last step deletes *)
          | Ok (Some child') ->
            Ok (Some { node with children = Smap.add seg child' node.children })))
  in
  match go t (Path.segments path) with
  | Ok (Some root) -> Ok root
  | Ok None -> Error Root_immutable
  | Error e -> Error e

let insert t path ~kind ?(attrs = []) () =
  update t path (function
    | Some _ -> Error (Exists path)
    | None -> Ok (Some (make_node ~kind ~attrs ())))

let remove t path =
  if Path.is_root path then Error Root_immutable
  else
    update t path (function
      | None -> Error (Missing path)
      | Some _ -> Ok None)

let modify_existing t path f =
  update t path (function
    | None -> Error (Missing path)
    | Some node -> Ok (Some (f node)))

let set_attr t path name value =
  modify_existing t path (fun node ->
      { node with attrs = Smap.add name value node.attrs })

let remove_attr t path name =
  modify_existing t path (fun node ->
      { node with attrs = Smap.remove name node.attrs })

let replace_subtree t path node =
  if Path.is_root path then Ok node
  else
    update t path (function
      | None -> Error (Missing path)
      | Some _ -> Ok (Some node))

let subtree t path =
  match find t path with Some node -> Ok node | None -> Error (Missing path)

(* Codec: (node <kind> (attrs (<name> <value>)...) (children (<name> <node>)...)) *)
let rec node_to_sexp node =
  Sexp.List
    [
      Sexp.Atom "node";
      Sexp.Atom node.kind;
      Sexp.List
        (Sexp.Atom "attrs"
         :: List.map
              (fun (name, v) -> Sexp.List [ Sexp.Atom name; Value.to_sexp v ])
              (Smap.bindings node.attrs));
      Sexp.List
        (Sexp.Atom "children"
         :: List.map
              (fun (name, child) ->
                Sexp.List [ Sexp.Atom name; node_to_sexp child ])
              (Smap.bindings node.children));
    ]

let ( let* ) r f = Result.bind r f

let rec node_of_sexp sexp =
  match sexp with
  | Sexp.List
      [
        Sexp.Atom "node";
        Sexp.Atom kind;
        Sexp.List (Sexp.Atom "attrs" :: attrs);
        Sexp.List (Sexp.Atom "children" :: children);
      ] ->
    let* attrs =
      List.fold_left
        (fun acc entry ->
          let* acc = acc in
          match entry with
          | Sexp.List [ Sexp.Atom name; v ] ->
            let* v = Value.of_sexp v in
            Ok ((name, v) :: acc)
          | other -> Error ("bad attr entry: " ^ Sexp.to_string other))
        (Ok []) attrs
    in
    let* children =
      List.fold_left
        (fun acc entry ->
          let* acc = acc in
          match entry with
          | Sexp.List [ Sexp.Atom name; child ] ->
            let* child = node_of_sexp child in
            Ok ((name, child) :: acc)
          | other -> Error ("bad child entry: " ^ Sexp.to_string other))
        (Ok []) children
    in
    Ok (make_node ~kind ~attrs ~children ())
  | other -> Error ("Tree.node_of_sexp: bad node " ^ Sexp.to_string other)

let to_sexp = node_to_sexp
let of_sexp = node_of_sexp
let to_string t = Sexp.to_string (to_sexp t)

let of_string s =
  let* sexp = Sexp.of_string s in
  of_sexp sexp

let pp fmt t =
  let rec go indent name node =
    Format.fprintf fmt "%s%s [%s]" indent name node.kind;
    Smap.iter
      (fun attr_name v -> Format.fprintf fmt " %s=%a" attr_name Value.pp v)
      node.attrs;
    Format.pp_print_newline fmt ();
    Smap.iter (fun child_name child -> go (indent ^ "  ") child_name child)
      node.children
  in
  go "" "/" t
