(** Attribute values stored at data-model nodes and passed to actions. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> (t, string) result

(** {1 Typed accessors} — [None] on a type mismatch. *)

val as_bool : t -> bool option
val as_int : t -> int option
val as_float : t -> float option

(** [as_number] accepts both [Int] and [Float]. *)
val as_number : t -> float option

val as_str : t -> string option
val as_list : t -> t list option
