(** Resource object paths in the hierarchical data model,
    e.g. [/vmRoot/vmHost3/vm17].

    Segments may contain letters, digits and [_ . : + = @ -]; the root path
    is ["/"]. *)

type t

val root : t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Parse ["/a/b"]; rejects empty or malformed segments. *)
val of_string : string -> (t, string) result

(** Like {!of_string} but raises [Invalid_argument]; for literals in code. *)
val v : string -> t

(** [child p seg] appends one segment.
    @raise Invalid_argument on a malformed segment. *)
val child : t -> string -> t

(** [parent p] is [None] for the root. *)
val parent : t -> t option

(** Last segment; [None] for the root. *)
val basename : t -> string option

(** Segments from the root down. *)
val segments : t -> string list

val depth : t -> int
val is_root : t -> bool

(** [is_prefix p q] — is [p] an ancestor of [q] or equal to it? *)
val is_prefix : t -> t -> bool

(** Strict ancestors of [p], nearest (parent) first, ending with the root. *)
val ancestors : t -> t list

(** [append p q] concatenates [q]'s segments under [p]. *)
val append : t -> t -> t

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> (t, string) result
