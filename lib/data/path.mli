(** Resource object paths in the hierarchical data model,
    e.g. [/vmRoot/vmHost3/vm17].

    Segments may contain letters, digits and [_ . : + = @ -]; the root path
    is ["/"]. *)

type t

val root : t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Parse ["/a/b"]; rejects empty or malformed segments. *)
val of_string : string -> (t, string) result

(** Like {!of_string} but raises [Invalid_argument]; for literals in code. *)
val v : string -> t

(** [child p seg] appends one segment.
    @raise Invalid_argument on a malformed segment. *)
val child : t -> string -> t

(** [parent p] is [None] for the root. *)
val parent : t -> t option

(** Last segment; [None] for the root. *)
val basename : t -> string option

(** Segments from the root down. *)
val segments : t -> string list

val depth : t -> int
val is_root : t -> bool

(** [is_prefix p q] — is [p] an ancestor of [q] or equal to it? *)
val is_prefix : t -> t -> bool

(** Strict ancestors of [p], nearest (parent) first, ending with the root. *)
val ancestors : t -> t list

(** [append p q] concatenates [q]'s segments under [p]. *)
val append : t -> t -> t

(** Interned path handles.

    [intern] hash-conses a path into a process-global table and returns a
    small handle with O(1) [equal]/[hash]/[compare] and a pre-computed
    ancestor chain — built for hot lock-table keys, where structural
    comparison of segment lists dominated.  Handles for equal paths are
    physically equal.  The table only grows; its size is bounded by the
    number of distinct paths interned (the same order as the resource
    tree), and [compare] orders handles by interning time, which is
    deterministic for a deterministic workload — use {!Path.compare} on
    {!path} when path order matters. *)
module Id : sig
  type id

  (** Intern a path; O(depth), one hash lookup per segment. *)
  val intern : t -> id

  (** The path this handle stands for (no copy). *)
  val path : id -> t

  (** Dense small-int identity, unique per distinct path. *)
  val uid : id -> int

  val equal : id -> id -> bool
  val compare : id -> id -> int
  val hash : id -> int
  val root : id

  (** [parent id] is [None] for the root; O(1). *)
  val parent : id -> id option

  (** Strict ancestors, nearest (parent) first, ending with the root;
      cached at interning time, O(1). *)
  val ancestors : id -> id list

  val pp : Format.formatter -> id -> unit

  (** Number of distinct paths interned so far (including the root). *)
  val interned_count : unit -> int
end

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> (t, string) result
