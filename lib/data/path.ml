(* Represented as the segment list from the root down; root = []. *)
type t = string list

let root = []
let equal = List.equal String.equal
let compare = List.compare String.compare
let segments p = p
let depth = List.length
let is_root p = p = []

let valid_segment_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '_' | '.' | ':' | '+' | '=' | '@' | '-' -> true
  | _ -> false

let valid_segment s = String.length s > 0 && String.for_all valid_segment_char s

let to_string p =
  match p with [] -> "/" | segs -> "/" ^ String.concat "/" segs

let pp fmt p = Format.pp_print_string fmt (to_string p)

let of_string s =
  if String.length s = 0 || s.[0] <> '/' then
    Error (Printf.sprintf "path must start with '/': %S" s)
  else if String.equal s "/" then Ok []
  else
    let segs = String.split_on_char '/' (String.sub s 1 (String.length s - 1)) in
    if List.for_all valid_segment segs then Ok segs
    else Error (Printf.sprintf "malformed path: %S" s)

let v s =
  match of_string s with
  | Ok p -> p
  | Error msg -> invalid_arg ("Path.v: " ^ msg)

let child p seg =
  if not (valid_segment seg) then
    invalid_arg (Printf.sprintf "Path.child: malformed segment %S" seg);
  p @ [ seg ]

let parent p =
  match List.rev p with [] -> None | _ :: rev -> Some (List.rev rev)

let basename p = match List.rev p with [] -> None | last :: _ -> Some last

let rec is_prefix p q =
  match p, q with
  | [], _ -> true
  | _ :: _, [] -> false
  | a :: p', b :: q' -> String.equal a b && is_prefix p' q'

let ancestors p =
  let rec go acc current =
    match parent current with
    | None -> acc
    | Some up -> go (up :: acc) up
  in
  List.rev (go [] p)

let append p q = p @ q

module Id = struct
  type path = t

  type id = {
    uid : int;
    path : path;
    parent : id option;
    ancestors : id list; (* nearest (parent) first, ending with the root *)
  }

  (* One global interning table: nodes are identified by (parent uid,
     segment), so interning a path walks its segments from the root and
     each step is a single small-key hash lookup.  The table only ever
     grows, but it is bounded by the number of distinct paths the process
     locks — the same order as the resource tree itself. *)
  let table : (int * string, id) Hashtbl.t = Hashtbl.create 1024
  let next_uid = ref 1

  let root =
    { uid = 0; path = []; parent = None; ancestors = [] }

  let intern p =
    let step node seg =
      match Hashtbl.find_opt table (node.uid, seg) with
      | Some child -> child
      | None ->
        let uid = !next_uid in
        incr next_uid;
        let child =
          {
            uid;
            path = node.path @ [ seg ];
            parent = Some node;
            ancestors = node :: node.ancestors;
          }
        in
        Hashtbl.replace table (node.uid, seg) child;
        child
    in
    List.fold_left step root p

  let path node = node.path
  let uid node = node.uid
  let equal a b = a.uid = b.uid
  let compare a b = Int.compare a.uid b.uid
  let hash node = node.uid
  let parent node = node.parent
  let ancestors node = node.ancestors
  let pp fmt node = pp fmt node.path
  let interned_count () = Hashtbl.length table + 1
end

let to_sexp p = Sexp.Atom (to_string p)

let of_sexp sexp =
  match sexp with
  | Sexp.Atom s -> of_string s
  | Sexp.List _ -> Error "Path.of_sexp: expected atom"
