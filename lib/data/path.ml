(* Represented as the segment list from the root down; root = []. *)
type t = string list

let root = []
let equal = List.equal String.equal
let compare = List.compare String.compare
let segments p = p
let depth = List.length
let is_root p = p = []

let valid_segment_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '_' | '.' | ':' | '+' | '=' | '@' | '-' -> true
  | _ -> false

let valid_segment s = String.length s > 0 && String.for_all valid_segment_char s

let to_string p =
  match p with [] -> "/" | segs -> "/" ^ String.concat "/" segs

let pp fmt p = Format.pp_print_string fmt (to_string p)

let of_string s =
  if String.length s = 0 || s.[0] <> '/' then
    Error (Printf.sprintf "path must start with '/': %S" s)
  else if String.equal s "/" then Ok []
  else
    let segs = String.split_on_char '/' (String.sub s 1 (String.length s - 1)) in
    if List.for_all valid_segment segs then Ok segs
    else Error (Printf.sprintf "malformed path: %S" s)

let v s =
  match of_string s with
  | Ok p -> p
  | Error msg -> invalid_arg ("Path.v: " ^ msg)

let child p seg =
  if not (valid_segment seg) then
    invalid_arg (Printf.sprintf "Path.child: malformed segment %S" seg);
  p @ [ seg ]

let parent p =
  match List.rev p with [] -> None | _ :: rev -> Some (List.rev rev)

let basename p = match List.rev p with [] -> None | last :: _ -> Some last

let rec is_prefix p q =
  match p, q with
  | [], _ -> true
  | _ :: _, [] -> false
  | a :: p', b :: q' -> String.equal a b && is_prefix p' q'

let ancestors p =
  let rec go acc current =
    match parent current with
    | None -> acc
    | Some up -> go (up :: acc) up
  in
  List.rev (go [] p)

let append p q = p @ q
let to_sexp p = Sexp.Atom (to_string p)

let of_sexp sexp =
  match sexp with
  | Sexp.Atom s -> of_string s
  | Sexp.List _ -> Error "Path.of_sexp: expected atom"
