type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
    (try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | (Null | Bool _ | Int _ | Float _ | Str _ | List _), _ -> false

let tag = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4
  | List _ -> 5

let rec compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | List xs, List ys -> List.compare compare xs ys
  | _, _ -> Int.compare (tag a) (tag b)

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | List xs ->
    Format.fprintf fmt "[@[%a@]]"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
         pp)
      xs

let to_string v = Format.asprintf "%a" pp v

let rec to_sexp = function
  | Null -> Sexp.List [ Sexp.Atom "null" ]
  | Bool b -> Sexp.List [ Sexp.Atom "bool"; Sexp.of_bool b ]
  | Int i -> Sexp.List [ Sexp.Atom "int"; Sexp.of_int i ]
  | Float f -> Sexp.List [ Sexp.Atom "float"; Sexp.of_float f ]
  | Str s -> Sexp.List [ Sexp.Atom "str"; Sexp.Atom s ]
  | List xs -> Sexp.List (Sexp.Atom "list" :: List.map to_sexp xs)

let ( let* ) r f = Result.bind r f

let rec of_sexp sexp =
  match sexp with
  | Sexp.List [ Sexp.Atom "null" ] -> Ok Null
  | Sexp.List [ Sexp.Atom "bool"; b ] ->
    let* b = Sexp.to_bool b in
    Ok (Bool b)
  | Sexp.List [ Sexp.Atom "int"; i ] ->
    let* i = Sexp.to_int i in
    Ok (Int i)
  | Sexp.List [ Sexp.Atom "float"; f ] ->
    let* f = Sexp.to_float f in
    Ok (Float f)
  | Sexp.List [ Sexp.Atom "str"; Sexp.Atom s ] -> Ok (Str s)
  | Sexp.List (Sexp.Atom "list" :: xs) ->
    let* xs =
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          let* v = of_sexp x in
          Ok (v :: acc))
        (Ok []) xs
    in
    Ok (List (List.rev xs))
  | other -> Error ("Value.of_sexp: bad value " ^ Sexp.to_string other)

let as_bool = function Bool b -> Some b | _ -> None
let as_int = function Int i -> Some i | _ -> None
let as_float = function Float f -> Some f | _ -> None

let as_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let as_str = function Str s -> Some s | _ -> None
let as_list = function List xs -> Some xs | _ -> None
