type t = Atom of string | List of t list

let rec equal a b =
  match a, b with
  | Atom x, Atom y -> String.equal x y
  | List xs, List ys ->
    (try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | Atom _, List _ | List _, Atom _ -> false

let atom s = Atom s
let list xs = List xs
let of_int i = Atom (string_of_int i)

(* %h is an exact hexadecimal representation, so float round-trips are
   lossless; plain integers stay readable. *)
let of_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Atom (Printf.sprintf "%.0f." f)
  else Atom (Printf.sprintf "%h" f)

let of_bool b = Atom (if b then "true" else "false")

let needs_quoting s =
  String.length s = 0
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | '\\' | ';' -> true
         | c -> Char.code c < 32 || Char.code c = 127)
       s

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string sexp =
  let buf = Buffer.create 64 in
  let rec go = function
    | Atom s -> if needs_quoting s then escape buf s else Buffer.add_string buf s
    | List xs ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ' ';
          go x)
        xs;
      Buffer.add_char buf ')'
  in
  go sexp;
  Buffer.contents buf

let pp fmt sexp = Format.pp_print_string fmt (to_string sexp)

exception Parse_error of string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  (* [;] starts a comment running to end of line — the atom printer quotes
     any atom containing [;], so reading back printed output is safe. *)
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      let rec to_eol () =
        match peek () with
        | Some '\n' | None -> ()
        | Some _ ->
          advance ();
          to_eol ()
      in
      to_eol ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let parse_quoted () =
    advance ();
    (* opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'
         | Some '\\' -> Buffer.add_char buf '\\'
         | Some 'n' -> Buffer.add_char buf '\n'
         | Some 't' -> Buffer.add_char buf '\t'
         | Some 'r' -> Buffer.add_char buf '\r'
         | Some c -> fail (Printf.sprintf "bad escape \\%c" c)
         | None -> fail "unterminated escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let parse_bare () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"') | None -> ()
      | Some _ ->
        advance ();
        go ()
    in
    go ();
    if !pos = start then fail "empty atom";
    Atom (String.sub input start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '(' ->
      advance ();
      let rec items acc =
        skip_ws ();
        match peek () with
        | Some ')' ->
          advance ();
          List (List.rev acc)
        | None -> fail "unterminated list"
        | Some _ -> items (parse_value () :: acc)
      in
      items []
    | Some ')' -> fail "unexpected ')'"
    | Some '"' -> parse_quoted ()
    | Some _ -> parse_bare ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let to_atom = function
  | Atom s -> Ok s
  | List _ -> Error "expected atom, got list"

let to_list = function
  | List xs -> Ok xs
  | Atom s -> Error (Printf.sprintf "expected list, got atom %S" s)

let to_int sexp =
  match sexp with
  | Atom s ->
    (match int_of_string_opt s with
     | Some i -> Ok i
     | None -> Error (Printf.sprintf "not an int: %S" s))
  | List _ -> Error "expected int, got list"

let to_float sexp =
  match sexp with
  | Atom s ->
    (match float_of_string_opt s with
     | Some f -> Ok f
     | None -> Error (Printf.sprintf "not a float: %S" s))
  | List _ -> Error "expected float, got list"

let to_bool sexp =
  match sexp with
  | Atom "true" -> Ok true
  | Atom "false" -> Ok false
  | Atom s -> Error (Printf.sprintf "not a bool: %S" s)
  | List _ -> Error "expected bool, got list"

let assoc key fields =
  let matches = function
    | List (Atom k :: _) -> String.equal k key
    | List _ | Atom _ -> false
  in
  match List.find_opt matches fields with
  | Some (List [ _; v ]) -> Ok v
  | Some (List (_ :: vs)) -> Ok (List vs)
  | Some _ | None -> Error (Printf.sprintf "missing field %S" key)
