type change =
  | Added of Path.t * Tree.node
  | Removed of Path.t
  | Kind_changed of Path.t * string * string
  | Attr_set of Path.t * string * Value.t option * Value.t
  | Attr_removed of Path.t * string * Value.t

let pp_change fmt = function
  | Added (p, node) -> Format.fprintf fmt "+ %a [%s]" Path.pp p node.Tree.kind
  | Removed p -> Format.fprintf fmt "- %a" Path.pp p
  | Kind_changed (p, old_kind, new_kind) ->
    Format.fprintf fmt "~ %a kind %s -> %s" Path.pp p old_kind new_kind
  | Attr_set (p, name, None, v) ->
    Format.fprintf fmt "~ %a +%s=%a" Path.pp p name Value.pp v
  | Attr_set (p, name, Some old_v, v) ->
    Format.fprintf fmt "~ %a %s: %a -> %a" Path.pp p name Value.pp old_v
      Value.pp v
  | Attr_removed (p, name, v) ->
    Format.fprintf fmt "~ %a -%s (was %a)" Path.pp p name Value.pp v

let change_to_string c = Format.asprintf "%a" pp_change c

let path_of = function
  | Added (p, _) | Removed p | Kind_changed (p, _, _)
  | Attr_set (p, _, _, _) | Attr_removed (p, _, _) ->
    p

(* The ordering contract (see diff.mli) is enforced structurally: every
   per-node pass below folds over an [Smap.merge] of the old and new maps,
   and [Smap.fold] visits keys in ascending name order.  The accumulator is
   built by prepending and reversed once at the end, so emission order is
   final order. *)
let diff ~old_tree ~new_tree =
  let rec go path (old_node : Tree.node) (new_node : Tree.node) acc =
    let acc =
      if String.equal old_node.Tree.kind new_node.Tree.kind then acc
      else Kind_changed (path, old_node.Tree.kind, new_node.Tree.kind) :: acc
    in
    let attrs =
      Tree.Smap.merge
        (fun _ o n -> Some (o, n))
        old_node.Tree.attrs new_node.Tree.attrs
    in
    let acc =
      Tree.Smap.fold
        (fun name pair acc ->
          match pair with
          | Some old_v, None -> Attr_removed (path, name, old_v) :: acc
          | None, Some new_v -> Attr_set (path, name, None, new_v) :: acc
          | Some old_v, Some new_v when Value.equal old_v new_v -> acc
          | Some old_v, Some new_v ->
            Attr_set (path, name, Some old_v, new_v) :: acc
          | None, None -> acc)
        attrs acc
    in
    let children =
      Tree.Smap.merge
        (fun _ o n -> Some (o, n))
        old_node.Tree.children new_node.Tree.children
    in
    Tree.Smap.fold
      (fun name pair acc ->
        let child_path = Path.child path name in
        match pair with
        | Some _, None -> Removed child_path :: acc
        | None, Some new_child -> Added (child_path, new_child) :: acc
        | Some old_child, Some new_child -> go child_path old_child new_child acc
        | None, None -> acc)
      children acc
  in
  List.rev (go Path.root old_tree new_tree [])

let apply tree = function
  | Added (p, node) ->
    (match Tree.insert tree p ~kind:node.Tree.kind () with
     | Error _ as e -> e
     | Ok t -> Tree.replace_subtree t p node)
  | Removed p -> Tree.remove tree p
  | Kind_changed (p, _, new_kind) ->
    (match Tree.find tree p with
     | None -> Error (Tree.Missing p)
     | Some n -> Tree.replace_subtree tree p { n with Tree.kind = new_kind })
  | Attr_set (p, name, _, v) -> Tree.set_attr tree p name v
  | Attr_removed (p, name, _) -> Tree.remove_attr tree p name

let patch tree changes =
  List.fold_left
    (fun tree change ->
      match tree with Error _ as e -> e | Ok t -> apply t change)
    (Ok tree) changes
