type change =
  | Added of Path.t * Tree.node
  | Removed of Path.t
  | Kind_changed of Path.t * string * string
  | Attr_set of Path.t * string * Value.t option * Value.t
  | Attr_removed of Path.t * string * Value.t

let pp_change fmt = function
  | Added (p, node) -> Format.fprintf fmt "+ %a [%s]" Path.pp p node.Tree.kind
  | Removed p -> Format.fprintf fmt "- %a" Path.pp p
  | Kind_changed (p, old_kind, new_kind) ->
    Format.fprintf fmt "~ %a kind %s -> %s" Path.pp p old_kind new_kind
  | Attr_set (p, name, None, v) ->
    Format.fprintf fmt "~ %a +%s=%a" Path.pp p name Value.pp v
  | Attr_set (p, name, Some old_v, v) ->
    Format.fprintf fmt "~ %a %s: %a -> %a" Path.pp p name Value.pp old_v
      Value.pp v
  | Attr_removed (p, name, v) ->
    Format.fprintf fmt "~ %a -%s (was %a)" Path.pp p name Value.pp v

let change_to_string c = Format.asprintf "%a" pp_change c

let path_of = function
  | Added (p, _) | Removed p | Kind_changed (p, _, _)
  | Attr_set (p, _, _, _) | Attr_removed (p, _, _) ->
    p

let diff ~old_tree ~new_tree =
  let rec go path (old_node : Tree.node) (new_node : Tree.node) acc =
    let acc =
      if String.equal old_node.Tree.kind new_node.Tree.kind then acc
      else Kind_changed (path, old_node.Tree.kind, new_node.Tree.kind) :: acc
    in
    let acc =
      Tree.Smap.fold
        (fun name old_v acc ->
          match Tree.Smap.find_opt name new_node.Tree.attrs with
          | None -> Attr_removed (path, name, old_v) :: acc
          | Some new_v when Value.equal old_v new_v -> acc
          | Some new_v -> Attr_set (path, name, Some old_v, new_v) :: acc)
        old_node.Tree.attrs acc
    in
    let acc =
      Tree.Smap.fold
        (fun name new_v acc ->
          if Tree.Smap.mem name old_node.Tree.attrs then acc
          else Attr_set (path, name, None, new_v) :: acc)
        new_node.Tree.attrs acc
    in
    let acc =
      Tree.Smap.fold
        (fun name old_child acc ->
          let child_path = Path.child path name in
          match Tree.Smap.find_opt name new_node.Tree.children with
          | None -> Removed child_path :: acc
          | Some new_child -> go child_path old_child new_child acc)
        old_node.Tree.children acc
    in
    Tree.Smap.fold
      (fun name new_child acc ->
        if Tree.Smap.mem name old_node.Tree.children then acc
        else Added (Path.child path name, new_child) :: acc)
      new_node.Tree.children acc
  in
  List.rev (go Path.root old_tree new_tree [])
