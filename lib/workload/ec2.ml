type t = int array

let duration = 3600
let total_launches = 8417
let peak_rate = 14
let peak_second = 2880 (* 0.8 h *)

(* Expected launch rate at second [t]: a baseline plus a Gaussian burst
   centred on the peak.  Integrates to roughly the paper's total; exact
   normalization happens after sampling. *)
let rate t =
  let x = float_of_int (t - peak_second) /. 130. in
  1.62 +. (11.5 *. exp (-.(x *. x)))

let poisson rng lambda =
  (* Knuth's method; lambda is small (< 15). *)
  let limit = exp (-.lambda) in
  let rec go k p =
    let p = p *. Random.State.float rng 1. in
    if p <= limit then k else go (k + 1) p
  in
  go 0 1.

let generate ?(seed = 20110701) () =
  let rng = Random.State.make [| seed |] in
  let trace = Array.init duration (fun t -> poisson rng (rate t)) in
  (* Pin the documented peak and keep it unique. *)
  trace.(peak_second) <- peak_rate;
  Array.iteri
    (fun t c -> if t <> peak_second && c >= peak_rate then trace.(t) <- peak_rate - 1)
    trace;
  (* Normalize to the exact total by nudging random non-peak seconds. *)
  let total () = Array.fold_left ( + ) 0 trace in
  let adjust delta =
    let step = if delta > 0 then 1 else -1 in
    let remaining = ref (abs delta) in
    while !remaining > 0 do
      let t = Random.State.int rng duration in
      if t <> peak_second then begin
        let candidate = trace.(t) + step in
        if candidate >= 0 && candidate < peak_rate then begin
          trace.(t) <- candidate;
          decr remaining
        end
      end
    done
  in
  adjust (total_launches - total ());
  trace

let scale trace k = Array.map (fun c -> c * k) trace

type stats = {
  total : int;
  mean_per_second : float;
  peak : int;
  peak_at_second : int;
}

let stats trace =
  let total = Array.fold_left ( + ) 0 trace in
  let peak = ref 0 and peak_at = ref 0 in
  Array.iteri
    (fun t c ->
      if c > !peak then begin
        peak := c;
        peak_at := t
      end)
    trace;
  {
    total;
    mean_per_second = float_of_int total /. float_of_int (Array.length trace);
    peak = !peak;
    peak_at_second = !peak_at;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "%d launches, %.2f/s mean, peak %d/s at %.2f h" s.total s.mean_per_second
    s.peak
    (float_of_int s.peak_at_second /. 3600.)
