(** Synthetic hosting-provider workload (paper §6.2–6.4).

    Unlike the EC2 trace (spawn-only), the hosting workload mixes the full
    set of TCloud operations — Spawn, Start, Stop, Migrate, Destroy — with
    configurable weights.  The generator tracks which VMs exist and their
    expected state, so the emitted stream is mostly well-formed (as a real
    trace would be), and migrations stay within one hypervisor type. *)

type op =
  | Spawn of { vm : string; host : int; storage : int; mem_mb : int }
  | Start of { vm : string; host : int }
  | Stop of { vm : string; host : int }
  | Migrate of { vm : string; src : int; dst : int }
  | Destroy of { vm : string; host : int; storage : int }

val pp_op : Format.formatter -> op -> unit

type weights = {
  w_spawn : float;
  w_start : float;
  w_stop : float;
  w_migrate : float;
  w_destroy : float;
}

val default_weights : weights

type config = {
  weights : weights;
  rate_per_second : float;     (** mean op arrival rate (Poisson) *)
  duration_seconds : float;
  compute_hosts : int;
  storage_hosts : int;
  hypervisor_groups : int;     (** hosts i and j are compatible iff
                                   [i mod groups = j mod groups] *)
  vm_mem_mb : int;
}

val default_config : config

(** Timestamped operation stream, increasing in time. *)
val generate : ?seed:int -> config -> (float * op) list

(** Stored-procedure call for one operation, given the deployment's path
    naming scheme. *)
val to_submission :
  host_path:(int -> string) -> storage_path:(int -> string) -> op ->
  string * Data.Value.t list

type mix = {
  n_spawn : int;
  n_start : int;
  n_stop : int;
  n_migrate : int;
  n_destroy : int;
}

val mix_of : (float * op) list -> mix
val pp_mix : Format.formatter -> mix -> unit
