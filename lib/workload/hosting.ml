type op =
  | Spawn of { vm : string; host : int; storage : int; mem_mb : int }
  | Start of { vm : string; host : int }
  | Stop of { vm : string; host : int }
  | Migrate of { vm : string; src : int; dst : int }
  | Destroy of { vm : string; host : int; storage : int }

let pp_op fmt = function
  | Spawn { vm; host; _ } -> Format.fprintf fmt "spawn %s on host %d" vm host
  | Start { vm; host } -> Format.fprintf fmt "start %s on host %d" vm host
  | Stop { vm; host } -> Format.fprintf fmt "stop %s on host %d" vm host
  | Migrate { vm; src; dst } -> Format.fprintf fmt "migrate %s %d->%d" vm src dst
  | Destroy { vm; host; _ } -> Format.fprintf fmt "destroy %s on host %d" vm host

type weights = {
  w_spawn : float;
  w_start : float;
  w_stop : float;
  w_migrate : float;
  w_destroy : float;
}

let default_weights =
  { w_spawn = 0.4; w_start = 0.15; w_stop = 0.15; w_migrate = 0.2; w_destroy = 0.1 }

type config = {
  weights : weights;
  rate_per_second : float;
  duration_seconds : float;
  compute_hosts : int;
  storage_hosts : int;
  hypervisor_groups : int;
  vm_mem_mb : int;
}

let default_config =
  {
    weights = default_weights;
    rate_per_second = 1.0;
    duration_seconds = 300.;
    compute_hosts = 8;
    storage_hosts = 2;
    hypervisor_groups = 2;
    vm_mem_mb = 1024;
  }

(* Generator-side model of one VM's expected placement and state. *)
type vm_model = { name : string; mutable on : int; mutable running : bool }

let generate ?(seed = 7) config =
  let rng = Random.State.make [| seed |] in
  let vms : vm_model list ref = ref [] in
  let next_vm = ref 0 in
  let storage_of host = host mod config.storage_hosts in
  let pick_vm pred =
    match List.filter pred !vms with
    | [] -> None
    | candidates ->
      Some (List.nth candidates (Random.State.int rng (List.length candidates)))
  in
  let spawn () =
    incr next_vm;
    let vm =
      {
        name = Printf.sprintf "hv%05d" !next_vm;
        on = Random.State.int rng config.compute_hosts;
        running = true;
      }
    in
    vms := vm :: !vms;
    Spawn
      {
        vm = vm.name;
        host = vm.on;
        storage = storage_of vm.on;
        mem_mb = config.vm_mem_mb;
      }
  in
  let weights = config.weights in
  let choose () =
    let table =
      [| weights.w_spawn; weights.w_start; weights.w_stop; weights.w_migrate;
         weights.w_destroy |]
    in
    match Des.Dist.weighted_index rng table with
    | 0 -> Some (spawn ())
    | 1 ->
      (match pick_vm (fun vm -> not vm.running) with
       | Some vm ->
         vm.running <- true;
         Some (Start { vm = vm.name; host = vm.on })
       | None -> Some (spawn ()))
    | 2 ->
      (match pick_vm (fun vm -> vm.running) with
       | Some vm ->
         vm.running <- false;
         Some (Stop { vm = vm.name; host = vm.on })
       | None -> Some (spawn ()))
    | 3 ->
      (match pick_vm (fun _ -> config.compute_hosts > config.hypervisor_groups) with
       | Some vm ->
         let src = vm.on in
         let group = src mod config.hypervisor_groups in
         let compatible =
           List.filter
             (fun h -> h <> src && h mod config.hypervisor_groups = group)
             (List.init config.compute_hosts Fun.id)
         in
         (match compatible with
          | [] -> Some (spawn ())
          | hosts ->
            let dst = List.nth hosts (Random.State.int rng (List.length hosts)) in
            vm.on <- dst;
            Some (Migrate { vm = vm.name; src; dst }))
       | None -> Some (spawn ()))
    | _ ->
      (match pick_vm (fun _ -> true) with
       | Some vm ->
         vms := List.filter (fun other -> other != vm) !vms;
         Some
           (Destroy { vm = vm.name; host = vm.on; storage = storage_of vm.on })
       | None -> Some (spawn ()))
  in
  let rec go t acc =
    if t >= config.duration_seconds then List.rev acc
    else
      let dt = Des.Dist.exponential rng ~mean:(1. /. config.rate_per_second) in
      let t = t +. dt in
      if t >= config.duration_seconds then List.rev acc
      else
        match choose () with
        | Some op -> go t ((t, op) :: acc)
        | None -> go t acc
  in
  go 0. []

let to_submission ~host_path ~storage_path op =
  let v_str s = Data.Value.Str s in
  match op with
  | Spawn { vm; host; storage; mem_mb } ->
    ( "spawnVM",
      [ v_str vm; v_str "base.img"; Data.Value.Int mem_mb;
        v_str (storage_path storage); v_str (host_path host) ] )
  | Start { vm; host } -> ("startVM", [ v_str (host_path host); v_str vm ])
  | Stop { vm; host } -> ("stopVM", [ v_str (host_path host); v_str vm ])
  | Migrate { vm; src; dst } ->
    ("migrateVM", [ v_str (host_path src); v_str (host_path dst); v_str vm ])
  | Destroy { vm; host; storage } ->
    ( "destroyVM",
      [ v_str (host_path host); v_str (storage_path storage); v_str vm ] )

type mix = {
  n_spawn : int;
  n_start : int;
  n_stop : int;
  n_migrate : int;
  n_destroy : int;
}

let mix_of ops =
  List.fold_left
    (fun mix (_, op) ->
      match op with
      | Spawn _ -> { mix with n_spawn = mix.n_spawn + 1 }
      | Start _ -> { mix with n_start = mix.n_start + 1 }
      | Stop _ -> { mix with n_stop = mix.n_stop + 1 }
      | Migrate _ -> { mix with n_migrate = mix.n_migrate + 1 }
      | Destroy _ -> { mix with n_destroy = mix.n_destroy + 1 })
    { n_spawn = 0; n_start = 0; n_stop = 0; n_migrate = 0; n_destroy = 0 }
    ops

let pp_mix fmt m =
  Format.fprintf fmt "spawn=%d start=%d stop=%d migrate=%d destroy=%d"
    m.n_spawn m.n_start m.n_stop m.n_migrate m.n_destroy
