(** Synthetic EC2 VM-launch trace (paper §6.1, Figure 3).

    The paper measured VM launches in EC2 us-east over one hour: 8 417
    spawns, an average of 2.34/s, and a peak of 14/s at 0.8 h.  The real
    trace is not public, so this generator reproduces those statistics: a
    noisy baseline with a burst centred at 0.8 h, seeded and deterministic,
    normalized to the exact total with the peak pinned at 14/s. *)

type t = int array
(** VM launches per second; length {!duration}. *)

val duration : int  (** 3600 seconds *)

val total_launches : int  (** 8417 *)

val peak_rate : int  (** 14 *)

val peak_second : int  (** 2880 = 0.8 h *)

(** Deterministic for a given seed. *)
val generate : ?seed:int -> unit -> t

(** [scale trace k] multiplies each second's count by [k] (the paper's
    2×–5× workloads). *)
val scale : t -> int -> t

type stats = {
  total : int;
  mean_per_second : float;
  peak : int;
  peak_at_second : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
