module Schema = Devices.Schema
module Value = Data.Value
module Tree = Data.Tree
module Path = Data.Path
module Sexp = Data.Sexp

type vm_goal = { vm_name : string; running : bool; mem_mb : int }
type host_goal = { host_index : int; vms : vm_goal list }
type vlan_goal = { vlan_id : int; vlan_name : string; ports : string list }
type switch_goal = { switch_index : int; vlans : vlan_goal list }
type t = { hosts : host_goal list; switches : switch_goal list }

let ( let* ) = Result.bind

let host_path g = Tcloud.Setup.compute_path g.host_index
let switch_path g = Tcloud.Setup.switch_path g.switch_index
let vlan_node_name id = Printf.sprintf "vlan%04d" id

(* ------------------------------------------------------------------ *)
(* Codec *)

let vm_to_sexp v =
  Sexp.List
    [
      Sexp.atom "vm"; Sexp.atom v.vm_name;
      Sexp.atom (if v.running then Schema.state_running else Schema.state_stopped);
      Sexp.of_int v.mem_mb;
    ]

let host_to_sexp h =
  Sexp.List
    (Sexp.atom "host" :: Sexp.of_int h.host_index :: List.map vm_to_sexp h.vms)

let vlan_to_sexp v =
  Sexp.List
    (Sexp.atom "vlan" :: Sexp.of_int v.vlan_id :: Sexp.atom v.vlan_name
    :: List.map (fun p -> Sexp.List [ Sexp.atom "port"; Sexp.atom p ]) v.ports)

let switch_to_sexp s =
  Sexp.List
    (Sexp.atom "switch" :: Sexp.of_int s.switch_index
    :: List.map vlan_to_sexp s.vlans)

let to_sexp t =
  Sexp.List
    (Sexp.atom "goal"
    :: (List.map host_to_sexp t.hosts @ List.map switch_to_sexp t.switches))

let to_string t = Sexp.to_string (to_sexp t)

let parse_vm = function
  | Sexp.List [ Sexp.Atom "vm"; Sexp.Atom name; Sexp.Atom state; mem ] ->
    let* mem_mb = Sexp.to_int mem in
    let* running =
      if String.equal state Schema.state_running then Ok true
      else if String.equal state Schema.state_stopped then Ok false
      else Error (Printf.sprintf "vm %s: unknown state %S" name state)
    in
    Ok { vm_name = name; running; mem_mb }
  | s -> Error ("malformed vm entry: " ^ Sexp.to_string s)

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
    let* v = f x in
    let* vs = collect f rest in
    Ok (v :: vs)

let parse_port = function
  | Sexp.List [ Sexp.Atom "port"; Sexp.Atom vm ] -> Ok vm
  | s -> Error ("malformed port entry: " ^ Sexp.to_string s)

let parse_vlan = function
  | Sexp.List (Sexp.Atom "vlan" :: id :: Sexp.Atom name :: ports) ->
    let* vlan_id = Sexp.to_int id in
    let* ports = collect parse_port ports in
    Ok { vlan_id; vlan_name = name; ports }
  | s -> Error ("malformed vlan entry: " ^ Sexp.to_string s)

let parse_entry t = function
  | Sexp.List (Sexp.Atom "host" :: idx :: vms) ->
    let* host_index = Sexp.to_int idx in
    let* vms = collect parse_vm vms in
    Ok { t with hosts = { host_index; vms } :: t.hosts }
  | Sexp.List (Sexp.Atom "switch" :: idx :: vlans) ->
    let* switch_index = Sexp.to_int idx in
    let* vlans = collect parse_vlan vlans in
    Ok { t with switches = { switch_index; vlans } :: t.switches }
  | s -> Error ("malformed goal entry: " ^ Sexp.to_string s)

let of_sexp = function
  | Sexp.List (Sexp.Atom "goal" :: entries) ->
    let* t =
      List.fold_left
        (fun acc entry ->
          let* t = acc in
          parse_entry t entry)
        (Ok { hosts = []; switches = [] })
        entries
    in
    let dup_check what ids =
      let sorted = List.sort compare ids in
      let rec dup = function
        | a :: (b :: _ as rest) ->
          if a = b then Some a else dup rest
        | _ -> None
      in
      match dup sorted with
      | Some i -> Error (Printf.sprintf "duplicate %s %d in goal" what i)
      | None -> Ok ()
    in
    let* () = dup_check "host" (List.map (fun h -> h.host_index) t.hosts) in
    let* () =
      dup_check "switch" (List.map (fun s -> s.switch_index) t.switches)
    in
    let vm_names =
      List.concat_map (fun h -> List.map (fun v -> v.vm_name) h.vms) t.hosts
    in
    let sorted = List.sort String.compare vm_names in
    let rec dup = function
      | a :: (b :: _ as rest) ->
        if String.equal a b then Some a else dup rest
      | _ -> None
    in
    (match dup sorted with
     | Some name ->
       Error (Printf.sprintf "vm %s appears on more than one host" name)
     | None ->
       Ok { hosts = List.rev t.hosts; switches = List.rev t.switches })
  | s -> Error ("expected (goal ...), got: " ^ Sexp.to_string s)

let of_string s =
  let* sexp = Sexp.of_string s in
  of_sexp sexp

(* ------------------------------------------------------------------ *)
(* Projection: both layers restricted to the managed schema, so the diff
   lists exactly the actionable drift and nothing else. *)

let vm_node ~running ~mem_mb =
  Tree.make_node ~kind:Schema.vm_kind
    ~attrs:
      [
        ( Schema.attr_state,
          Value.Str
            (if running then Schema.state_running else Schema.state_stopped) );
        Schema.attr_mem_mb, Value.Int mem_mb;
      ]
    ()

let project_host_node (node : Tree.node) =
  let children =
    Tree.Smap.fold
      (fun name (child : Tree.node) acc ->
        if String.equal child.Tree.kind Schema.vm_kind then
          let keep attr =
            match Tree.Smap.find_opt attr child.Tree.attrs with
            | Some v -> [ attr, v ]
            | None -> []
          in
          ( name,
            Tree.make_node ~kind:Schema.vm_kind
              ~attrs:(keep Schema.attr_mem_mb @ keep Schema.attr_state)
              () )
          :: acc
        else acc)
      node.Tree.children []
  in
  Tree.make_node ~kind:Schema.vm_host_kind ~children ()

let desired_host_node h =
  Tree.make_node ~kind:Schema.vm_host_kind
    ~children:
      (List.map
         (fun v -> v.vm_name, vm_node ~running:v.running ~mem_mb:v.mem_mb)
         h.vms)
    ()

let project_vlan_node (node : Tree.node) =
  let keep attr =
    match Tree.Smap.find_opt attr node.Tree.attrs with
    | Some v -> [ attr, v ]
    | None -> []
  in
  Tree.make_node ~kind:Schema.vlan_kind
    ~attrs:(keep Schema.attr_vlan_name @ keep Schema.attr_ports)
    ()

let project_switch_node (node : Tree.node) =
  let children =
    Tree.Smap.fold
      (fun name (child : Tree.node) acc ->
        if String.equal child.Tree.kind Schema.vlan_kind then
          (name, project_vlan_node child) :: acc
        else acc)
      node.Tree.children []
  in
  Tree.make_node ~kind:Schema.switch_kind ~children ()

let desired_vlan_node v =
  let ports =
    List.sort String.compare (List.map Tcloud.Procs.vm_port v.ports)
  in
  Tree.make_node ~kind:Schema.vlan_kind
    ~attrs:
      [
        Schema.attr_vlan_name, Value.Str v.vlan_name;
        Schema.attr_ports, Value.List (List.map (fun p -> Value.Str p) ports);
      ]
    ()

let desired_switch_node s =
  Tree.make_node ~kind:Schema.switch_kind
    ~children:(List.map (fun v -> vlan_node_name v.vlan_id, desired_vlan_node v) s.vlans)
    ()

let tree_err = function
  | Ok t -> Ok t
  | Error e -> Error (Tree.error_to_string e)

let graft tree path node =
  let* tree =
    match Tree.find tree path with
    | Some _ -> Ok tree
    | None -> tree_err (Tree.insert tree path ~kind:"stub" ())
  in
  tree_err (Tree.replace_subtree tree path node)

let skeleton t =
  let roots =
    (if t.hosts = [] then [] else [ Schema.vm_root_kind, "vmRoot" ])
    @ if t.switches = [] then [] else [ Schema.net_root_kind, "netRoot" ]
  in
  List.fold_left
    (fun acc (kind, name) ->
      let* tree = acc in
      tree_err (Tree.insert tree (Path.v ("/" ^ name)) ~kind ()))
    (Ok Tree.empty) roots

let project t ~actual =
  let* base = skeleton t in
  let* projected =
    List.fold_left
      (fun acc h ->
        let* tree = acc in
        let path = host_path h in
        match Tree.find actual path with
        | None ->
          Error
            (Printf.sprintf "managed host %s is not in the tree"
               (Path.to_string path))
        | Some node when not (String.equal node.Tree.kind Schema.vm_host_kind)
          ->
          Error
            (Printf.sprintf "managed host %s has kind %s"
               (Path.to_string path) node.Tree.kind)
        | Some node -> graft tree path (project_host_node node))
      (Ok base) t.hosts
  in
  List.fold_left
    (fun acc s ->
      let* tree = acc in
      let path = switch_path s in
      match Tree.find actual path with
      | None ->
        Error
          (Printf.sprintf "managed switch %s is not in the tree"
             (Path.to_string path))
      | Some node when not (String.equal node.Tree.kind Schema.switch_kind) ->
        Error
          (Printf.sprintf "managed switch %s has kind %s" (Path.to_string path)
             node.Tree.kind)
      | Some node -> graft tree path (project_switch_node node))
    (Ok projected) t.switches

let desired t =
  let* base = skeleton t in
  let* tree =
    List.fold_left
      (fun acc h ->
        let* tree = acc in
        graft tree (host_path h) (desired_host_node h))
      (Ok base) t.hosts
  in
  List.fold_left
    (fun acc s ->
      let* tree = acc in
      graft tree (switch_path s) (desired_switch_node s))
    (Ok tree) t.switches

let diff t ~actual =
  let* old_tree = project t ~actual in
  let* new_tree = desired t in
  Ok (Data.Diff.diff ~old_tree ~new_tree)
