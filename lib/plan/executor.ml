module Diff = Data.Diff

type outcome =
  | Committed
  | Shed  (** aborted by admission control; retried on the next round *)
  | Aborted of string
  | Failed of string
  | Skipped of string  (** a dependency did not commit this round *)

let outcome_to_string = function
  | Committed -> "committed"
  | Shed -> "shed"
  | Aborted reason -> "aborted: " ^ reason
  | Failed reason -> "failed: " ^ reason
  | Skipped reason -> "skipped: " ^ reason

let is_committed = function Committed -> true | _ -> false

type executed = {
  ex_step : Planner.step;
  ex_round : int;
  ex_txn : int option;  (** [None] for skipped steps *)
  ex_outcome : outcome;
}

type config = {
  parallelism : int;  (** concurrent transactions per wave chunk *)
  max_rounds : int;   (** re-plan attempts before reporting Blocked *)
  round_delay : float;  (** simulated seconds between rounds *)
}

let default_config = { parallelism = 4; max_rounds = 8; round_delay = 1.0 }

type status = Converged | Blocked

type report = {
  status : status;
  rounds : int;  (** rounds that submitted at least one transaction *)
  residual : Diff.change list;  (** empty iff [Converged] *)
  unplannable : string list;
  history : executed list;  (** chronological, across all rounds *)
}

let count p report =
  List.length (List.filter (fun e -> p e.ex_outcome) report.history)

let steps_committed = count is_committed
let steps_shed = count (function Shed -> true | _ -> false)

let steps_aborted =
  count (function Aborted _ | Failed _ -> true | _ -> false)

let steps_skipped = count (function Skipped _ -> true | _ -> false)

let summary report =
  Printf.sprintf
    "%s after %d round(s): %d committed, %d shed, %d aborted, %d skipped, %d \
     residual change(s)%s"
    (match report.status with
     | Converged -> "converged"
     | Blocked -> "BLOCKED")
    report.rounds (steps_committed report) (steps_shed report)
    (steps_aborted report) (steps_skipped report)
    (List.length report.residual)
    (match report.unplannable with
     | [] -> ""
     | u -> Printf.sprintf ", %d unplannable" (List.length u))

let outcome_of_state state =
  if Tropic.Txn.is_overload state then Shed
  else
    match state with
    | Tropic.Txn.Committed -> Committed
    | Tropic.Txn.Aborted reason -> Aborted reason
    | Tropic.Txn.Failed reason -> Failed reason
    | other -> Aborted (Tropic.Txn.state_to_string other)

(* The logical tree lives on the shard leaders; during fail-over some
   shard may have none — wait for the next election rather than crash
   mid-plan.  On a sharded platform this grafts every leader's owned
   subtrees into one platform-wide view. *)
let leader_tree platform = Tropic.Platform.composite_tree platform

(* Execute one compiled plan as dependency waves: a step becomes ready
   when all its dependencies committed; ready steps are submitted in
   chunks of [parallelism].  Steps whose dependencies did not commit are
   skipped (the next round re-plans from the actual tree). *)
let run_plan config platform (plan : Planner.t) ~round =
  let outcomes : (int, outcome) Hashtbl.t = Hashtbl.create 16 in
  let history = ref [] in
  let record step txn outcome =
    Hashtbl.replace outcomes step.Planner.step_id outcome;
    history :=
      { ex_step = step; ex_round = round; ex_txn = txn; ex_outcome = outcome }
      :: !history
  in
  let committed id =
    match Hashtbl.find_opt outcomes id with
    | Some Committed -> true
    | _ -> false
  in
  let rec chunks = function
    | [] -> ()
    | steps ->
      let rec take n = function
        | [] -> [], []
        | rest when n = 0 -> [], rest
        | s :: rest ->
          let batch, remaining = take (n - 1) rest in
          s :: batch, remaining
      in
      let batch, rest = take config.parallelism steps in
      let results =
        Tropic.Platform.submit_batch platform
          (List.map (fun (s : Planner.step) -> s.Planner.proc, s.Planner.args) batch)
      in
      List.iter2
        (fun step (txn_id, state) ->
          record step (Some txn_id) (outcome_of_state state))
        batch results;
      chunks rest
  in
  let rec waves pending =
    match pending with
    | [] -> ()
    | _ ->
      let ready, rest =
        List.partition
          (fun (s : Planner.step) -> List.for_all committed s.Planner.deps)
          pending
      in
      if ready = [] then
        List.iter
          (fun step -> record step None (Skipped "dependency did not commit"))
          rest
      else begin
        chunks ready;
        waves rest
      end
  in
  waves plan.Planner.steps;
  List.rev !history

let converge ?(config = default_config) ?(ordered = true) platform ctx ~model
    =
  let rec loop round history =
    let actual = leader_tree platform in
    match Model.diff model ~actual with
    | Error e ->
      {
        status = Blocked;
        rounds = round;
        residual = [];
        unplannable = [ e ];
        history = List.rev history;
      }
    | Ok [] ->
      {
        status = Converged;
        rounds = round;
        residual = [];
        unplannable = [];
        history = List.rev history;
      }
    | Ok residual ->
      if round >= config.max_rounds then
        {
          status = Blocked;
          rounds = round;
          residual;
          unplannable = [];
          history = List.rev history;
        }
      else (
        match Planner.compile ~ordered ctx model ~actual with
        | Error e ->
          {
            status = Blocked;
            rounds = round;
            residual;
            unplannable = [ e ];
            history = List.rev history;
          }
        | Ok plan when plan.Planner.steps = [] ->
          {
            status = Blocked;
            rounds = round;
            residual;
            unplannable = plan.Planner.unplannable;
            history = List.rev history;
          }
        | Ok plan ->
          let executed = run_plan config platform plan ~round in
          Des.Proc.sleep config.round_delay;
          loop (round + 1) (List.rev_append executed history))
  in
  loop 0 []

(* Pure variant for property tests: run the plan's steps one at a time
   through the logical simulator (no platform, no DES), re-planning until
   convergence.  Aborted steps are dropped for the round, exactly like the
   live executor skips them; the next round re-plans from the new tree. *)
let converge_logical ?(max_rounds = 8) env ctx ~model ~tree =
  let rec loop round tree steps_run =
    match Model.diff model ~actual:tree with
    | Error e -> Error ("model: " ^ e)
    | Ok [] -> Ok (tree, steps_run)
    | Ok residual ->
      if round >= max_rounds then
        Error
          (Printf.sprintf "blocked after %d rounds; %d residual change(s)"
             round (List.length residual))
      else (
        match Planner.compile ctx model ~actual:tree with
        | Error e -> Error ("planner: " ^ e)
        | Ok { Planner.steps = []; unplannable } ->
          Error
            (Printf.sprintf "unplannable: %s" (String.concat "; " unplannable))
        | Ok plan ->
          let tree', steps_run' =
            List.fold_left
              (fun (tree, n) (s : Planner.step) ->
                match
                  Tropic.Logical.simulate env ~tree ~proc:s.Planner.proc
                    ~args:s.Planner.args
                with
                | Ok success -> success.Tropic.Logical.new_tree, n + 1
                | Error _ -> tree, n)
              (tree, steps_run) plan.Planner.steps
          in
          loop (round + 1) tree' steps_run')
  in
  loop 0 tree 0
