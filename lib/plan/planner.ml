module Schema = Devices.Schema
module Value = Data.Value
module Tree = Data.Tree
module Path = Data.Path
module Diff = Data.Diff

type step = {
  step_id : int;
  proc : string;
  args : Value.t list;
  label : string;
  deps : int list;
}

type t = { steps : step list; unplannable : string list }

type context = { storage_hosts : int; template : string }

let empty = { steps = []; unplannable = [] }
let pp_step fmt s = Format.fprintf fmt "#%d %s [%s]" s.step_id s.proc s.label

let step_to_string s = Format.asprintf "%a" pp_step s

(* ------------------------------------------------------------------ *)
(* Change classification.  The diff is over the managed projection
   (Model.project / Model.desired), so the only shapes that can appear
   are: vm added/removed, vm attr changed, vlan added/removed, vlan attr
   changed.  Anything else is drift the procedures cannot realize. *)

type vm_change = {
  vc_vm : string;
  vc_host : int;  (** Setup host index *)
  vc_running : bool;
  vc_mem : int;
}

type intent =
  | Spawn of vm_change
  | Destroy of vm_change  (** current state of the vm being removed *)
  | Migrate of {
      mg : vm_change;  (** vc_host = destination, vc_running = desired *)
      mg_src : int;
      mg_fix : [ `None | `Start | `Stop ];
          (** migrateVM preserves the running state; when the desired state
              differs from the source's, a follow-up start/stop is needed *)
    }
  | Rebuild of { rb_old : vm_change; rb_new : vm_change }
      (** same host or cross-host, memory resize: destroy then spawn *)
  | Start of { st_vm : string; st_host : int }
  | Stop of { st_vm : string; st_host : int }
  | Create_vlan of { cv_switch : int; cv_id : int; cv_name : string }
  | Remove_vlan of { rv_switch : int; rv_id : int }
  | Attach of { at_switch : int; at_id : int; at_vm : string }
  | Detach of { dt_switch : int; dt_id : int; dt_vm : string }

let host_index_of_path path =
  match Path.segments path with
  | [ "vmRoot"; host ] | [ "vmRoot"; host; _ ] ->
    (try Some (int_of_string (String.sub host 4 (String.length host - 4)))
     with _ -> None)
  | _ -> None

let switch_index_of_path path =
  match Path.segments path with
  | [ "netRoot"; sw ] | [ "netRoot"; sw; _ ] ->
    (try Some (int_of_string (String.sub sw 6 (String.length sw - 6)))
     with _ -> None)
  | _ -> None

let vlan_id_of_name name =
  try Some (int_of_string (String.sub name 4 (String.length name - 4)))
  with _ -> None

let node_vm_change ~vm ~host (node : Tree.node) =
  let running =
    match Tree.Smap.find_opt Schema.attr_state node.Tree.attrs with
    | Some (Value.Str s) -> String.equal s Schema.state_running
    | Some _ | None -> false
  in
  let mem =
    match Tree.Smap.find_opt Schema.attr_mem_mb node.Tree.attrs with
    | Some (Value.Int m) -> m
    | Some _ | None -> 0
  in
  { vc_vm = vm; vc_host = host; vc_running = running; vc_mem = mem }

let str_ports = function
  | Value.List vs ->
    List.filter_map (function Value.Str s -> Some s | _ -> None) vs
  | _ -> []

(* Ports are registered on the switch as [vm ^ ".eth0"]; recover the vm. *)
let vm_of_port port =
  match String.rindex_opt port '.' with
  | Some i -> String.sub port 0 i
  | None -> port

(* Fold the diff's changes into planning intents.  Relies on the diff
   ordering contract: a vm subtree add/remove appears exactly once, at the
   vm node, so pairing by vm name across hosts is well defined. *)
let classify ~actual changes =
  let intents = ref [] in
  let unplannable = ref [] in
  let emit i = intents := i :: !intents in
  let reject c =
    unplannable := Diff.change_to_string c :: !unplannable
  in
  let vm_path_parts path =
    match Path.segments path, Path.basename path with
    | [ "vmRoot"; _; _ ], Some vm ->
      (match host_index_of_path path with
       | Some h -> Some (vm, h)
       | None -> None)
    | _ -> None
  in
  let vlan_path_parts path =
    match Path.segments path, Path.basename path with
    | [ "netRoot"; _; _ ], Some vlan ->
      (match switch_index_of_path path, vlan_id_of_name vlan with
       | Some sw, Some id -> Some (sw, id)
       | _ -> None)
    | _ -> None
  in
  List.iter
    (fun change ->
      match change with
      | Diff.Added (path, node) ->
        (match vm_path_parts path with
         | Some (vm, host) -> emit (Spawn (node_vm_change ~vm ~host node))
         | None ->
           (match vlan_path_parts path with
            | Some (sw, id) ->
              let name =
                match Tree.Smap.find_opt Schema.attr_vlan_name node.Tree.attrs with
                | Some (Value.Str s) -> s
                | Some _ | None -> Printf.sprintf "vlan%d" id
              in
              emit (Create_vlan { cv_switch = sw; cv_id = id; cv_name = name });
              let ports =
                match Tree.Smap.find_opt Schema.attr_ports node.Tree.attrs with
                | Some v -> str_ports v
                | None -> []
              in
              List.iter
                (fun port ->
                  emit
                    (Attach
                       { at_switch = sw; at_id = id; at_vm = vm_of_port port }))
                ports
            | None -> reject change))
      | Diff.Removed path ->
        (match vm_path_parts path with
         | Some (vm, host) ->
           (match Tree.find actual path with
            | Some node -> emit (Destroy (node_vm_change ~vm ~host node))
            | None -> reject change)
         | None ->
           (match vlan_path_parts path with
            | Some (sw, id) ->
              let ports =
                match Tree.get_attr actual path Schema.attr_ports with
                | Some v -> str_ports v
                | None -> []
              in
              List.iter
                (fun port ->
                  emit
                    (Detach
                       { dt_switch = sw; dt_id = id; dt_vm = vm_of_port port }))
                ports;
              emit (Remove_vlan { rv_switch = sw; rv_id = id })
            | None -> reject change))
      | Diff.Attr_set (path, attr, _, new_v)
        when String.equal attr Schema.attr_state -> (
        match vm_path_parts path with
        | Some (vm, host) ->
          if Value.equal new_v (Value.Str Schema.state_running) then
            emit (Start { st_vm = vm; st_host = host })
          else emit (Stop { st_vm = vm; st_host = host })
        | None -> reject change)
      | Diff.Attr_set (path, attr, _, new_v)
        when String.equal attr Schema.attr_mem_mb -> (
        match vm_path_parts path with
        | Some (vm, host) -> (
          match Tree.find actual path, Value.as_int new_v with
          | Some node, Some new_mem ->
            let current = node_vm_change ~vm ~host node in
            (* desired running state: the same diff may also carry a state
               change for this vm; the rebuild reads it from the desired
               value directly when present, else keeps the current state. *)
            let desired_running =
              List.fold_left
                (fun acc c ->
                  match c with
                  | Diff.Attr_set (p, a, _, v)
                    when Path.equal p path && String.equal a Schema.attr_state
                    -> Value.equal v (Value.Str Schema.state_running)
                  | _ -> acc)
                current.vc_running changes
            in
            emit
              (Rebuild
                 {
                   rb_old = current;
                   rb_new =
                     {
                       vc_vm = vm;
                       vc_host = host;
                       vc_running = desired_running;
                       vc_mem = new_mem;
                     };
                 })
          | _ -> reject change)
        | None -> reject change)
      | Diff.Attr_set (path, attr, old_v, new_v)
        when String.equal attr Schema.attr_ports -> (
        match vlan_path_parts path with
        | Some (sw, id) ->
          let old_ports =
            match old_v with Some v -> str_ports v | None -> []
          in
          let new_ports = str_ports new_v in
          List.iter
            (fun p ->
              if not (List.mem p new_ports) then
                emit
                  (Detach { dt_switch = sw; dt_id = id; dt_vm = vm_of_port p }))
            old_ports;
          List.iter
            (fun p ->
              if not (List.mem p old_ports) then
                emit
                  (Attach { at_switch = sw; at_id = id; at_vm = vm_of_port p }))
            new_ports
        | None -> reject change)
      | Diff.Attr_set _ | Diff.Attr_removed _ | Diff.Kind_changed _ ->
        reject change)
    changes;
  (* A state-only change on a vm that is also being rebuilt is subsumed by
     the rebuild (spawn ends running; a Stop step is added as needed). *)
  let rebuilt =
    List.filter_map
      (function Rebuild { rb_new; _ } -> Some rb_new.vc_vm | _ -> None)
      !intents
  in
  let intents =
    List.filter
      (function
        | Start { st_vm; _ } | Stop { st_vm; _ } -> not (List.mem st_vm rebuilt)
        | _ -> true)
      !intents
  in
  (List.rev intents, List.rev !unplannable)

(* Migrate pairing: a vm removed from one host and added on another with
   the same memory is a migration — TROPIC's migrateVM preserves the
   running state and moves the image import in one transaction. *)
let pair_migrations ~actual intents =
  let hypervisor_of host =
    match
      Tree.get_attr actual
        (Tcloud.Setup.compute_path host)
        Schema.attr_hypervisor
    with
    | Some (Value.Str h) -> Some h
    | Some _ | None -> None
  in
  let spawns, rest =
    List.partition (function Spawn _ -> true | _ -> false) intents
  in
  let destroys, rest2 =
    List.partition (function Destroy _ -> true | _ -> false) rest
  in
  let destroys =
    List.filter_map (function Destroy d -> Some d | _ -> None) destroys
  in
  let paired = ref [] in
  let used = Hashtbl.create 8 in
  let spawns' =
    List.map
      (fun intent ->
        match intent with
        | Spawn s -> (
          match
            List.find_opt
              (fun d ->
                String.equal d.vc_vm s.vc_vm
                && (not (Hashtbl.mem used d.vc_vm))
                && d.vc_mem = s.vc_mem
                &&
                match hypervisor_of d.vc_host, hypervisor_of s.vc_host with
                | Some a, Some b -> String.equal a b
                | _ -> false)
              destroys
          with
          | Some d ->
            Hashtbl.replace used d.vc_vm ();
            paired := d.vc_vm :: !paired;
            let mg_fix =
              if Bool.equal s.vc_running d.vc_running then `None
              else if s.vc_running then `Start
              else `Stop
            in
            Migrate { mg = s; mg_src = d.vc_host; mg_fix }
          | None -> (
            (* same name, but memory or hypervisor differs: rebuild *)
            match
              List.find_opt
                (fun d ->
                  String.equal d.vc_vm s.vc_vm
                  && not (Hashtbl.mem used d.vc_vm))
                destroys
            with
            | Some d ->
              Hashtbl.replace used d.vc_vm ();
              paired := d.vc_vm :: !paired;
              Rebuild { rb_old = d; rb_new = s }
            | None -> intent))
        | other -> other)
      spawns
  in
  let destroys' =
    List.filter_map
      (fun d -> if Hashtbl.mem used d.vc_vm then None else Some (Destroy d))
      destroys
  in
  spawns' @ destroys' @ rest2

(* ------------------------------------------------------------------ *)
(* Step emission *)

let host_str i = Path.to_string (Tcloud.Setup.compute_path i)
let switch_str i = Path.to_string (Tcloud.Setup.switch_path i)

let storage_str ctx host =
  Path.to_string (Tcloud.Setup.storage_path (host mod ctx.storage_hosts))

type emitted = {
  e_proc : string;
  e_args : Value.t list;
  e_label : string;
  (* memory accounting for capacity edges: (host, mem) pairs *)
  e_inbound : (int * int) list;
  e_outbound : (int * int) list;
  (* intra-intent ordering: this emitted step depends on the previous
     emitted step of the same intent *)
  e_after_prev : bool;
  e_vm : string option;  (** vm this step spawns/migrates (attach deps) *)
  e_destroyed_vm : string option;
  e_vlan : (int * int) option;  (** vlan this step creates *)
  e_removed_vlan : (int * int) option;
}

let plain ~proc ~args ~label =
  {
    e_proc = proc;
    e_args = args;
    e_label = label;
    e_inbound = [];
    e_outbound = [];
    e_after_prev = false;
    e_vm = None;
    e_destroyed_vm = None;
    e_vlan = None;
    e_removed_vlan = None;
  }

let emit_intent ctx intent =
  match intent with
  | Spawn s ->
    let spawn =
      {
        (plain ~proc:"spawnVM"
           ~args:
             (Tcloud.Procs.spawn_vm_args ~vm:s.vc_vm ~template:ctx.template
                ~mem_mb:s.vc_mem
                ~storage:(storage_str ctx s.vc_host)
                ~host:(host_str s.vc_host))
           ~label:
             (Printf.sprintf "spawn %s on host%05d (%d MB)" s.vc_vm s.vc_host
                s.vc_mem))
        with
        e_inbound = [ s.vc_host, s.vc_mem ];
        e_vm = Some s.vc_vm;
      }
    in
    if s.vc_running then [ spawn ]
    else
      [
        spawn;
        {
          (plain ~proc:"stopVM"
             ~args:
               (Tcloud.Procs.stop_vm_args ~host:(host_str s.vc_host)
                  ~vm:s.vc_vm)
             ~label:(Printf.sprintf "stop %s after spawn" s.vc_vm))
          with
          e_after_prev = true;
        };
      ]
  | Destroy d ->
    [
      {
        (plain ~proc:"destroyVM"
           ~args:
             (Tcloud.Procs.destroy_vm_args ~host:(host_str d.vc_host)
                ~storage:(storage_str ctx d.vc_host) ~vm:d.vc_vm)
           ~label:(Printf.sprintf "destroy %s on host%05d" d.vc_vm d.vc_host))
        with
        e_outbound = [ d.vc_host, d.vc_mem ];
        e_destroyed_vm = Some d.vc_vm;
      };
    ]
  | Migrate { mg; mg_src; mg_fix } ->
    let migrate =
      {
        (plain ~proc:"migrateVM"
           ~args:
             (Tcloud.Procs.migrate_vm_args ~src:(host_str mg_src)
                ~dst:(host_str mg.vc_host) ~vm:mg.vc_vm)
           ~label:
             (Printf.sprintf "migrate %s host%05d -> host%05d" mg.vc_vm mg_src
                mg.vc_host))
        with
        e_inbound = [ mg.vc_host, mg.vc_mem ];
        e_outbound = [ mg_src, mg.vc_mem ];
        e_vm = Some mg.vc_vm;
      }
    in
    (match mg_fix with
     | `None -> [ migrate ]
     | `Start ->
       [
         migrate;
         {
           (plain ~proc:"startVM"
              ~args:
                (Tcloud.Procs.start_vm_args ~host:(host_str mg.vc_host)
                   ~vm:mg.vc_vm)
              ~label:(Printf.sprintf "start %s after migrate" mg.vc_vm))
           with
           e_after_prev = true;
         };
       ]
     | `Stop ->
       [
         migrate;
         {
           (plain ~proc:"stopVM"
              ~args:
                (Tcloud.Procs.stop_vm_args ~host:(host_str mg.vc_host)
                   ~vm:mg.vc_vm)
              ~label:(Printf.sprintf "stop %s after migrate" mg.vc_vm))
           with
           e_after_prev = true;
         };
       ])
  | Rebuild { rb_old; rb_new } ->
    let destroy =
      {
        (plain ~proc:"destroyVM"
           ~args:
             (Tcloud.Procs.destroy_vm_args ~host:(host_str rb_old.vc_host)
                ~storage:(storage_str ctx rb_old.vc_host) ~vm:rb_old.vc_vm)
           ~label:
             (Printf.sprintf "destroy %s on host%05d (rebuild)" rb_old.vc_vm
                rb_old.vc_host))
        with
        e_outbound = [ rb_old.vc_host, rb_old.vc_mem ];
        e_destroyed_vm = Some rb_old.vc_vm;
      }
    in
    let spawn =
      {
        (plain ~proc:"spawnVM"
           ~args:
             (Tcloud.Procs.spawn_vm_args ~vm:rb_new.vc_vm
                ~template:ctx.template ~mem_mb:rb_new.vc_mem
                ~storage:(storage_str ctx rb_new.vc_host)
                ~host:(host_str rb_new.vc_host))
           ~label:
             (Printf.sprintf "respawn %s on host%05d (%d MB)" rb_new.vc_vm
                rb_new.vc_host rb_new.vc_mem))
        with
        e_inbound = [ rb_new.vc_host, rb_new.vc_mem ];
        e_after_prev = true;
        e_vm = Some rb_new.vc_vm;
      }
    in
    if rb_new.vc_running then [ destroy; spawn ]
    else
      [
        destroy; spawn;
        {
          (plain ~proc:"stopVM"
             ~args:
               (Tcloud.Procs.stop_vm_args ~host:(host_str rb_new.vc_host)
                  ~vm:rb_new.vc_vm)
             ~label:(Printf.sprintf "stop %s after rebuild" rb_new.vc_vm))
          with
          e_after_prev = true;
        };
      ]
  | Start { st_vm; st_host } ->
    [
      plain ~proc:"startVM"
        ~args:(Tcloud.Procs.start_vm_args ~host:(host_str st_host) ~vm:st_vm)
        ~label:(Printf.sprintf "start %s on host%05d" st_vm st_host);
    ]
  | Stop { st_vm; st_host } ->
    [
      plain ~proc:"stopVM"
        ~args:(Tcloud.Procs.stop_vm_args ~host:(host_str st_host) ~vm:st_vm)
        ~label:(Printf.sprintf "stop %s on host%05d" st_vm st_host);
    ]
  | Create_vlan { cv_switch; cv_id; cv_name } ->
    [
      {
        (plain ~proc:"createVlan"
           ~args:
             (Tcloud.Procs.create_vlan_args ~switch:(switch_str cv_switch)
                ~vlan:cv_id ~name:cv_name)
           ~label:(Printf.sprintf "create vlan %d on switch%03d" cv_id cv_switch))
        with
        e_vlan = Some (cv_switch, cv_id);
      };
    ]
  | Remove_vlan { rv_switch; rv_id } ->
    [
      {
        (plain ~proc:"removeVlan"
           ~args:
             (Tcloud.Procs.remove_vlan_args ~switch:(switch_str rv_switch)
                ~vlan:rv_id)
           ~label:(Printf.sprintf "remove vlan %d on switch%03d" rv_id rv_switch))
        with
        e_removed_vlan = Some (rv_switch, rv_id);
      };
    ]
  | Attach { at_switch; at_id; at_vm } ->
    [
      plain ~proc:"attachVmVlan"
        ~args:
          (Tcloud.Procs.attach_vm_vlan_args ~switch:(switch_str at_switch)
             ~vlan:at_id ~vm:at_vm)
        ~label:(Printf.sprintf "attach %s to vlan %d" at_vm at_id);
    ]
  | Detach { dt_switch; dt_id; dt_vm } ->
    [
      plain ~proc:"detachVmVlan"
        ~args:
          (Tcloud.Procs.detach_vm_vlan_args ~switch:(switch_str dt_switch)
             ~vlan:dt_id ~vm:dt_vm)
        ~label:(Printf.sprintf "detach %s from vlan %d" dt_vm dt_id);
    ]

(* ------------------------------------------------------------------ *)
(* Dependency edges *)

let host_free ~actual host =
  let path = Tcloud.Setup.compute_path host in
  match Tree.find actual path with
  | None -> 0
  | Some node ->
    let capacity =
      match Tree.Smap.find_opt Schema.attr_mem_mb node.Tree.attrs with
      | Some (Value.Int m) -> m
      | Some _ | None -> 0
    in
    let used =
      Tree.Smap.fold
        (fun _ (child : Tree.node) acc ->
          if String.equal child.Tree.kind Schema.vm_kind then
            acc
            +
            match Tree.Smap.find_opt Schema.attr_mem_mb child.Tree.attrs with
            | Some (Value.Int m) -> m
            | Some _ | None -> 0
          else acc)
        node.Tree.children 0
    in
    capacity - used

(* Edges, by rule:
   - within an intent, each step follows the previous one (start/stop after
     spawn, spawn after destroy in a rebuild);
   - attaching a port for a vm this plan spawns or migrates waits for it;
   - destroying a vm this plan detaches ports from waits for the detaches;
   - adding ports to a vlan this plan creates waits for the createVlan;
   - removing a vlan waits for every port detach on it;
   - capacity: when a host's inbound memory exceeds its current free
     memory, every inbound step on that host waits for every outbound step
     on that host (drain before fill). *)
let edges_of ~actual (emitted : emitted array) =
  let deps = Array.make (Array.length emitted) [] in
  let add_dep i j = if i <> j then deps.(i) <- j :: deps.(i) in
  Array.iteri
    (fun i e ->
      (* attach waits for the vm's spawn/migrate step *)
      (match e.e_proc with
       | "attachVmVlan" -> (
         match e.e_args with
         | [ _; _; Value.Str vm ] ->
           Array.iteri
             (fun j other ->
               match other.e_vm with
               | Some v when String.equal v vm -> add_dep i j
               | _ -> ())
             emitted
         | _ -> ())
       | "destroyVM" -> (
         (* destroy waits for this vm's port detaches *)
         match e.e_destroyed_vm with
         | Some vm ->
           Array.iteri
             (fun j other ->
               if String.equal other.e_proc "detachVmVlan" then
                 match other.e_args with
                 | [ _; _; Value.Str v ] when String.equal v vm -> add_dep i j
                 | _ -> ())
             emitted
         | None -> ())
       | _ -> ());
      (* attach to a created vlan waits for createVlan *)
      (match e.e_proc with
       | "attachVmVlan" | "detachVmVlan" -> (
         match e.e_args with
         | [ Value.Str sw; Value.Int id; _ ] ->
           Array.iteri
             (fun j other ->
               match other.e_vlan with
               | Some (osw, oid) when oid = id && String.equal (switch_str osw) sw
                 -> add_dep i j
               | _ -> ())
             emitted
         | _ -> ())
       | _ -> ());
      (* removeVlan waits for its detaches *)
      match e.e_removed_vlan with
      | Some (sw, id) ->
        Array.iteri
          (fun j other ->
            if String.equal other.e_proc "detachVmVlan" then
              match other.e_args with
              | [ Value.Str osw; Value.Int oid; _ ]
                when oid = id && String.equal osw (switch_str sw) ->
                add_dep i j
              | _ -> ())
          emitted
      | None -> ())
    emitted;
  (* capacity edges *)
  let hosts = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      List.iter
        (fun (h, _) -> Hashtbl.replace hosts h ())
        (e.e_inbound @ e.e_outbound))
    emitted;
  Hashtbl.iter
    (fun host () ->
      let inbound = ref 0 in
      Array.iter
        (fun e ->
          List.iter
            (fun (h, m) -> if h = host then inbound := !inbound + m)
            e.e_inbound)
        emitted;
      if !inbound > host_free ~actual host then
        Array.iteri
          (fun i e ->
            if List.exists (fun (h, _) -> h = host) e.e_inbound then
              Array.iteri
                (fun j other ->
                  if List.exists (fun (h, _) -> h = host) other.e_outbound then
                    add_dep i j)
                emitted)
          emitted)
    hosts;
  deps

(* ------------------------------------------------------------------ *)
(* Topological order (Kahn), deterministic: among ready steps the lowest
   id goes first.  Returns the order, or the ids of a cycle's members. *)

let toposort n deps =
  let indeg = Array.make n 0 in
  let out = Array.make n [] in
  Array.iteri
    (fun i ds ->
      List.iter
        (fun j ->
          indeg.(i) <- indeg.(i) + 1;
          out.(j) <- i :: out.(j))
        ds)
    deps;
  let order = ref [] in
  let placed = Array.make n false in
  let count = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let ready = ref None in
    for i = n - 1 downto 0 do
      if (not placed.(i)) && indeg.(i) = 0 then ready := Some i
    done;
    match !ready with
    | None -> continue_ := false
    | Some i ->
      placed.(i) <- true;
      incr count;
      order := i :: !order;
      List.iter (fun j -> indeg.(j) <- indeg.(j) - 1) out.(i)
  done;
  if !count = n then Ok (List.rev !order)
  else
    Error
      (Array.to_list
         (Array.of_seq
            (Seq.filter_map
               (fun i -> if placed.(i) then None else Some i)
               (Seq.init n Fun.id))))

(* Cycle break: split one migrate of the cycle into two hops through a
   staging host — a managed host with a matching hypervisor and enough
   free memory that is neither endpoint.  The classic case is a swap
   between two full hosts: neither migration can go first, but routing one
   vm through a third host leaves a straight line. *)
let break_cycle ~actual ~model cycle intents =
  let managed = List.map (fun h -> h.Model.host_index) model.Model.hosts in
  let hypervisor_of host =
    match
      Tree.get_attr actual
        (Tcloud.Setup.compute_path host)
        Schema.attr_hypervisor
    with
    | Some (Value.Str h) -> Some h
    | Some _ | None -> None
  in
  (* candidate: the cycle's lowest-indexed migrate intent *)
  let indexed = List.mapi (fun i intent -> i, intent) intents in
  let in_cycle =
    List.filter_map
      (fun (i, intent) ->
        match intent with
        | Migrate { mg; mg_src; mg_fix } when List.mem i cycle ->
          Some (i, (mg, mg_src, mg_fix))
        | _ -> None)
      indexed
  in
  match in_cycle with
  | [] -> None
  | (idx, (mg, mg_src, mg_fix)) :: _ ->
    let inbound_elsewhere host =
      List.exists
        (function
          | Migrate { mg = m; _ } -> m.vc_host = host
          | Spawn s -> s.vc_host = host
          | Rebuild { rb_new; _ } -> rb_new.vc_host = host
          | _ -> false)
        intents
    in
    let staging =
      List.find_opt
        (fun h ->
          h <> mg_src && h <> mg.vc_host
          && (not (inbound_elsewhere h))
          && host_free ~actual h >= mg.vc_mem
          &&
          match hypervisor_of h, hypervisor_of mg_src with
          | Some a, Some b -> String.equal a b
          | _ -> false)
        (List.sort compare managed)
    in
    (match staging with
     | None -> None
     | Some stage ->
       let hop1 =
         Migrate { mg = { mg with vc_host = stage }; mg_src; mg_fix = `None }
       in
       let hop2 = Migrate { mg; mg_src = stage; mg_fix } in
       Some
         (List.concat_map
            (fun (i, intent) ->
              if i = idx then [ hop1; hop2 ] else [ intent ])
            indexed))

(* ------------------------------------------------------------------ *)

let compile ?(ordered = true) ctx model ~actual =
  match Model.diff model ~actual with
  | Error e -> Error e
  | Ok [] -> Ok empty
  | Ok changes ->
    let intents, unplannable = classify ~actual changes in
    let intents = pair_migrations ~actual intents in
    let rec build attempts intents =
      let emitted =
        List.concat_map
          (fun intent ->
            let steps = emit_intent ctx intent in
            (* tag each emitted step with its intent's position so
               intra-intent chains can be wired below *)
            List.map (fun e -> intent, e) steps)
          intents
      in
      let emitted_arr = Array.of_list (List.map snd emitted) in
      let n = Array.length emitted_arr in
      (* intra-intent edges *)
      let base_deps = Array.make n [] in
      Array.iteri
        (fun i e -> if e.e_after_prev && i > 0 then base_deps.(i) <- [ i - 1 ])
        emitted_arr;
      if not ordered then
        Ok
          {
            steps =
              List.mapi
                (fun i e ->
                  {
                    step_id = i;
                    proc = e.e_proc;
                    args = e.e_args;
                    label = e.e_label;
                    deps = [];
                  })
                (Array.to_list emitted_arr);
            unplannable;
          }
      else
        let deps = edges_of ~actual emitted_arr in
        Array.iteri
          (fun i ds ->
            deps.(i) <- List.sort_uniq compare (ds @ base_deps.(i)))
          deps;
        match toposort n deps with
        | Ok order ->
          (* renumber in topological order; keep deps as step ids *)
          let rank = Array.make n 0 in
          List.iteri (fun r i -> rank.(i) <- r) order;
          let steps =
            List.map
              (fun i ->
                let e = emitted_arr.(i) in
                {
                  step_id = rank.(i);
                  proc = e.e_proc;
                  args = e.e_args;
                  label = e.e_label;
                  deps = List.sort compare (List.map (fun j -> rank.(j)) deps.(i));
                })
              order
          in
          Ok { steps; unplannable }
        | Error cycle_steps ->
          if attempts <= 0 then
            Ok
              {
                steps = [];
                unplannable =
                  unplannable
                  @ List.map
                      (fun i -> "cyclic: " ^ emitted_arr.(i).e_label)
                      cycle_steps;
              }
          else
            (* map cycle step indices back to intent indices *)
            let intent_of_step = Array.make n 0 in
            let k = ref 0 in
            List.iteri
              (fun intent_idx intent ->
                List.iter
                  (fun _ ->
                    intent_of_step.(!k) <- intent_idx;
                    incr k)
                  (emit_intent ctx intent))
              intents;
            let cycle_intents =
              List.sort_uniq compare
                (List.map (fun i -> intent_of_step.(i)) cycle_steps)
            in
            (match break_cycle ~actual ~model cycle_intents intents with
             | Some intents' -> build (attempts - 1) intents'
             | None ->
               Ok
                 {
                   steps = [];
                   unplannable =
                     unplannable
                     @ List.map
                         (fun i -> "cyclic: " ^ emitted_arr.(i).e_label)
                         cycle_steps;
                 })
    in
    build (List.length intents) intents
