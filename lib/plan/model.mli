(** Declarative goal models: the desired state of a managed slice of the
    TCloud inventory, written as an s-expression.

    A goal lists the compute hosts and switches it manages; everything
    else in the tree is out of scope and never touched.  A managed host
    lists the VMs that should exist on it (a host listed with no VMs is a
    drain target); a managed switch lists its VLANs and their member VMs:

    {v
    (goal
      (host 0 (vm web0 running 1024) (vm web1 stopped 512))
      (host 1)
      (switch 0 (vlan 100 tenantA (port web0) (port web1))))
    v}

    [project]/[desired] reduce both the actual tree and the goal to the
    {e managed schema} — managed hosts with their VM children restricted
    to the [state]/[mem_mb] attributes, managed switches with their VLAN
    children restricted to [name]/[ports] — so {!diff} lists exactly the
    actionable drift, never incidental attributes like image imports. *)

type vm_goal = { vm_name : string; running : bool; mem_mb : int }
type host_goal = { host_index : int; vms : vm_goal list }

type vlan_goal = {
  vlan_id : int;
  vlan_name : string;
  ports : string list;  (** VM names; rendered as [vm ^ ".eth0"] ports *)
}

type switch_goal = { switch_index : int; vlans : vlan_goal list }
type t = { hosts : host_goal list; switches : switch_goal list }

(** [/vmRoot/hostNNNNN] of a host goal (Setup naming). *)
val host_path : host_goal -> Data.Path.t

(** [/netRoot/switchNNN] of a switch goal. *)
val switch_path : switch_goal -> Data.Path.t

(** Node name of vlan [id] in the tree: ["vlan%04d"]. *)
val vlan_node_name : int -> string

(** {1 Codec} *)

val to_sexp : t -> Data.Sexp.t
val to_string : t -> string
val of_sexp : Data.Sexp.t -> (t, string) result

(** Parse a goal file's contents.  Rejects duplicate host/switch indices
    and a VM listed on more than one host. *)
val of_string : string -> (t, string) result

(** {1 Projection} *)

(** The actual tree restricted to the managed schema.  Errors when a
    managed host or switch is missing from the tree (the planner cannot
    create hardware). *)
val project : t -> actual:Data.Tree.t -> (Data.Tree.t, string) result

(** The goal rendered as a tree over the managed schema. *)
val desired : t -> (Data.Tree.t, string) result

(** [diff t ~actual] is [Diff.diff] between the two projections: the
    actionable drift, empty iff the system is converged. *)
val diff : t -> actual:Data.Tree.t -> (Data.Diff.change list, string) result
