(** The goal-state planner: compile the drift between the actual tree and
    a {!Model.t} into a dependency-ordered DAG of TROPIC transactions,
    each resolved to a stored procedure from the TCloud registry.

    Planning rules:
    - a VM present only in the goal is spawned ([spawnVM], plus a
      [stopVM] follow-up when the desired state is stopped);
    - a VM present only in the tree is destroyed ([destroyVM]);
    - a VM removed from one managed host and added on another with the
      same memory and a matching hypervisor becomes one [migrateVM]
      (plus a state fix-up when the desired state differs);
    - a memory change is a rebuild: [destroyVM] then [spawnVM], ordered;
    - VLAN/port drift maps to [createVlan]/[removeVlan]/
      [attachVmVlan]/[detachVmVlan], with port detaches before the VLAN
      remove and port attaches after the VLAN create and after the
      spawn/migrate of the VM they reference;
    - capacity edges: when a host's inbound memory (spawns + migrations
      in) exceeds its free memory, every inbound step waits for every
      outbound step on that host — drain before fill.

    The step list is a deterministic topological order of the DAG.  When
    the capacity edges form a cycle (e.g. a swap between two full hosts),
    the planner breaks it by splitting one migration into two hops
    through a staging host — a managed host with matching hypervisor and
    enough free memory.  If no staging host exists the cyclic steps are
    reported as unplannable rather than emitted in an unexecutable
    order. *)

type step = {
  step_id : int;
  proc : string;             (** stored-procedure name *)
  args : Data.Value.t list;
  label : string;            (** human-readable description *)
  deps : int list;           (** step ids that must commit first *)
}

type t = {
  steps : step list;         (** topologically ordered *)
  unplannable : string list; (** drift no procedure can realize *)
}

(** Planner inputs that come from the deployment, not the tree: how VM
    images map to storage hosts and which template spawns clone. *)
type context = { storage_hosts : int; template : string }

val empty : t
val pp_step : Format.formatter -> step -> unit
val step_to_string : step -> string

(** Free memory of a managed host in [tree] (capacity minus VM sum). *)
val host_free : actual:Data.Tree.t -> int -> int

(** [compile ctx model ~actual] — [Ok empty] when already converged.
    [ordered:false] drops every dependency edge and emits the steps in
    raw emission order (the chaos ablation; never use it for real). *)
val compile :
  ?ordered:bool ->
  context ->
  Model.t ->
  actual:Data.Tree.t ->
  (t, string) result
