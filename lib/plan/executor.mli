(** The convergence executor: run a compiled plan against a live platform
    as dependency waves with bounded parallelism, classify per-step
    outcomes, and re-diff/re-plan on partial failure up to a bounded
    number of rounds.

    One round: read the leader's logical tree, diff against the goal,
    compile a plan, execute it wave by wave ([Planner.step.deps] gate
    readiness; ready steps are submitted in chunks of [parallelism]
    through {!Tropic.Platform.submit_batch}).  Steps whose dependencies
    did not commit are skipped for the round.  Any drift left after the
    round — aborts, sheds, skips, or faults that landed mid-plan — is
    picked up by the next round's fresh diff, so the executor is
    idempotent across controller fail-overs: already-converged resources
    produce no further transactions. *)

type outcome =
  | Committed
  | Shed  (** aborted by admission control; retried on the next round *)
  | Aborted of string
  | Failed of string
  | Skipped of string  (** a dependency did not commit this round *)

val outcome_to_string : outcome -> string
val is_committed : outcome -> bool

type executed = {
  ex_step : Planner.step;
  ex_round : int;
  ex_txn : int option;  (** [None] for skipped steps *)
  ex_outcome : outcome;
}

type config = {
  parallelism : int;    (** concurrent transactions per wave chunk *)
  max_rounds : int;     (** re-plan attempts before reporting Blocked *)
  round_delay : float;  (** simulated seconds between rounds *)
}

(** parallelism 4, max_rounds 8, round_delay 1.0 *)
val default_config : config

type status = Converged | Blocked

type report = {
  status : status;
  rounds : int;  (** rounds that submitted at least one transaction *)
  residual : Data.Diff.change list;  (** empty iff [Converged] *)
  unplannable : string list;
  history : executed list;  (** chronological, across all rounds *)
}

val steps_committed : report -> int
val steps_shed : report -> int
val steps_aborted : report -> int
val steps_skipped : report -> int

(** One-line result, e.g.
    ["converged after 2 round(s): 7 committed, 0 shed, 1 aborted, ..."]. *)
val summary : report -> string

(** Drive the system to the goal.  Must be called from inside a simulation
    process (it submits, awaits and sleeps).  Waits out leaderless spells
    (controller fail-over) rather than failing.  [ordered:false] is the
    chaos ablation: plans are compiled with every dependency edge dropped
    ({!Planner.compile}). *)
val converge :
  ?config:config ->
  ?ordered:bool ->
  Tropic.Platform.t ->
  Planner.context ->
  model:Model.t ->
  report

(** Pure variant for property tests: execute each plan step through
    {!Tropic.Logical.simulate} (no platform, no DES), re-planning until
    convergence.  [Ok (final_tree, steps_executed)], or [Error reason] if
    blocked or unplannable. *)
val converge_logical :
  ?max_rounds:int ->
  Tropic.Dsl.env ->
  Planner.context ->
  model:Model.t ->
  tree:Data.Tree.t ->
  (Data.Tree.t * int, string) result
