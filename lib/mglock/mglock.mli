(** Multi-granularity lock manager over the resource tree (paper §3.1.3).

    Modes follow the classic hierarchy-locking scheme: [R]/[W] on the object
    itself, intention locks [IR]/[IW] placed automatically on every ancestor
    so conflicts are detected high up the tree.  Per the paper: IW conflicts
    with R and W; IR conflicts with W only.

    Acquisition is all-or-nothing: a transaction's full lock set is either
    granted atomically or refused with the first conflict, leaving the table
    untouched.  Combined with the scheduler's defer-and-retry policy this
    rules out deadlocks — a transaction never holds some locks while waiting
    for others.

    The table is keyed by interned paths ({!Data.Path.Id}), and it doubles
    as the scheduler's wake-up index: a deferred transaction parks on the
    node its conflict arose at ({!wait}), and {!release_all} returns every
    parked transaction whose node the releasing transaction held — the set
    that may now be grantable.  Wakeups over-approximate (a woken waiter can
    still conflict with a remaining holder and re-park), but never
    under-approximate: a waiter's node always has at least one conflicting
    holder, and every holder eventually releases. *)

type mode = R | W | IR | IW

val pp_mode : Format.formatter -> mode -> unit
val mode_to_string : mode -> string

(** [compatible a b] — can locks of modes [a] and [b] be held on the same
    object by two different transactions? (Symmetric.) *)
val compatible : mode -> mode -> bool

(** [join a b] is the weakest mode at least as strong as both; used to merge
    requests by the same transaction on the same object ([R ∨ IW] has no
    exact mode in this lattice and widens to [W]). *)
val join : mode -> mode -> mode

(** Intention mode to place on ancestors of an object locked with the given
    mode. *)
val intention : mode -> mode

type t

type conflict = {
  path : Data.Path.t;      (** object on which the conflict arose *)
  wanted : mode;
  holder : int;            (** transaction currently in the way *)
  held : mode;
}

val pp_conflict : Format.formatter -> conflict -> unit

val create : unit -> t

(** [try_acquire t ~txn locks] atomically grants [locks] (plus the implied
    intention locks on every ancestor, including the root) to [txn], or
    returns the first conflict — in deterministic path order — without
    changing any state.  Locks already held by [txn] are upgraded via
    {!join}. *)
val try_acquire :
  t -> txn:int -> (Data.Path.t * mode) list -> (unit, conflict) result

(** [wait t ~txn ~on] parks [txn] on the node its conflict arose at (the
    [path] field of the refused {!conflict}).  A transaction waits on at
    most one node; a second call re-parks it.  Precondition: some other
    transaction currently holds a conflicting lock on [on] — parking on an
    unheld node would never be woken. *)
val wait : t -> txn:int -> on:Data.Path.t -> unit

(** Drop [txn]'s waiter registration, if any (signal/abort paths). *)
val cancel_wait : t -> txn:int -> unit

(** Release everything held by [txn]; returns the ids of transactions that
    were parked on a node [txn] held — deduplicated, ascending, and removed
    from the waiters index.  The caller must re-attempt (and possibly
    re-park) each of them. *)
val release_all : t -> txn:int -> int list

(** The node [txn] is parked on, if any. *)
val waiting_on : t -> txn:int -> Data.Path.t option

(** Number of parked transactions — 0 at quiescence. *)
val waiter_count : t -> int

(** Transactions holding a lock on exactly this path, with their modes. *)
val holders : t -> Data.Path.t -> (int * mode) list

(** All paths locked by [txn] (including intention locks), sorted. *)
val held_by : t -> txn:int -> (Data.Path.t * mode) list

(** Number of (path, txn) lock entries in the table. *)
val lock_count : t -> int

(** Cumulative {!try_acquire} calls on this table — the contention
    benchmark's cost metric. *)
val acquire_attempts : t -> int
