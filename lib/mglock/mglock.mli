(** Multi-granularity lock manager over the resource tree (paper §3.1.3).

    Modes follow the classic hierarchy-locking scheme: [R]/[W] on the object
    itself, intention locks [IR]/[IW] placed automatically on every ancestor
    so conflicts are detected high up the tree.  Per the paper: IW conflicts
    with R and W; IR conflicts with W only.

    Acquisition is all-or-nothing: a transaction's full lock set is either
    granted atomically or refused with the first conflict, leaving the table
    untouched.  Combined with the scheduler's defer-and-retry policy this
    rules out deadlocks — a transaction never holds some locks while waiting
    for others. *)

type mode = R | W | IR | IW

val pp_mode : Format.formatter -> mode -> unit
val mode_to_string : mode -> string

(** [compatible a b] — can locks of modes [a] and [b] be held on the same
    object by two different transactions? (Symmetric.) *)
val compatible : mode -> mode -> bool

(** [join a b] is the weakest mode at least as strong as both; used to merge
    requests by the same transaction on the same object ([R ∨ IW] has no
    exact mode in this lattice and widens to [W]). *)
val join : mode -> mode -> mode

(** Intention mode to place on ancestors of an object locked with the given
    mode. *)
val intention : mode -> mode

type t

type conflict = {
  path : Data.Path.t;      (** object on which the conflict arose *)
  wanted : mode;
  holder : int;            (** transaction currently in the way *)
  held : mode;
}

val pp_conflict : Format.formatter -> conflict -> unit

val create : unit -> t

(** [try_acquire t ~txn locks] atomically grants [locks] (plus the implied
    intention locks on every ancestor, including the root) to [txn], or
    returns the first conflict — in deterministic path order — without
    changing any state.  Locks already held by [txn] are upgraded via
    {!join}. *)
val try_acquire :
  t -> txn:int -> (Data.Path.t * mode) list -> (unit, conflict) result

(** Release everything held by [txn]. *)
val release_all : t -> txn:int -> unit

(** Transactions holding a lock on exactly this path, with their modes. *)
val holders : t -> Data.Path.t -> (int * mode) list

(** All paths locked by [txn] (including intention locks), sorted. *)
val held_by : t -> txn:int -> (Data.Path.t * mode) list

(** Number of (path, txn) lock entries in the table. *)
val lock_count : t -> int
