module Path = Data.Path
module Id = Data.Path.Id

type mode = R | W | IR | IW

let mode_to_string = function R -> "R" | W -> "W" | IR -> "IR" | IW -> "IW"
let pp_mode fmt m = Format.pp_print_string fmt (mode_to_string m)

let compatible a b =
  match a, b with
  | IR, (IR | IW | R) | (IW | R), IR -> true
  | IW, IW -> true
  | R, R -> true
  | IR, W | W, IR -> false
  | IW, (R | W) | (R | W), IW -> false
  | R, W | W, R -> false
  | W, W -> false

(* Lattice order: IR < IW < W, IR < R < W; R and IW join to W because this
   scheme has no RIW/SIX mode. *)
let join a b =
  match a, b with
  | x, y when x = y -> x
  | IR, m | m, IR -> m
  | W, _ | _, W -> W
  | IW, R | R, IW -> W
  | IW, IW | R, R -> assert false (* covered by the first clause *)

let intention = function R | IR -> IR | W | IW -> IW

type conflict = { path : Path.t; wanted : mode; holder : int; held : mode }

let pp_conflict fmt c =
  Format.fprintf fmt "%a: txn %d holds %a, wanted %a" Path.pp c.path c.holder
    pp_mode c.held pp_mode c.wanted

module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

(* One entry per interned tree node that currently carries holders or
   waiters.  Holder maps stay as small immutable maps so snapshots
   (holders/held_by) and deterministic txn-id iteration come for free. *)
type entry = {
  node : Id.id;
  mutable eholders : mode Imap.t; (* txn -> mode *)
  mutable waiters : Iset.t; (* txns deferred on a conflict at this node *)
}

type t = {
  entries : (int, entry) Hashtbl.t; (* Id.uid -> entry *)
  by_txn : (int, Id.id list) Hashtbl.t; (* txn -> nodes it locks *)
  waiting : (int, Id.id) Hashtbl.t; (* waiter txn -> node it waits on *)
  mutable attempts : int; (* cumulative try_acquire calls *)
}

let create () =
  {
    entries = Hashtbl.create 64;
    by_txn = Hashtbl.create 64;
    waiting = Hashtbl.create 16;
    attempts = 0;
  }

let find_entry t node = Hashtbl.find_opt t.entries (Id.uid node)

let find_or_create_entry t node =
  match find_entry t node with
  | Some e -> e
  | None ->
    let e = { node; eholders = Imap.empty; waiters = Iset.empty } in
    Hashtbl.replace t.entries (Id.uid node) e;
    e

let drop_entry_if_empty t e =
  if Imap.is_empty e.eholders && Iset.is_empty e.waiters then
    Hashtbl.remove t.entries (Id.uid e.node)

(* The full requirement implied by a request: each requested lock plus
   intention locks on all ancestors, merged per node with [join].  Returned
   in path order so the "first conflict" reported is deterministic. *)
let requirements locks =
  let tbl = Hashtbl.create 16 in
  let add node mode =
    match Hashtbl.find_opt tbl (Id.uid node) with
    | None -> Hashtbl.replace tbl (Id.uid node) (node, mode)
    | Some (_, m) -> Hashtbl.replace tbl (Id.uid node) (node, join m mode)
  in
  List.iter
    (fun (path, mode) ->
      let node = Id.intern path in
      add node mode;
      List.iter (fun anc -> add anc (intention mode)) (Id.ancestors node))
    locks;
  Hashtbl.fold (fun _ nm acc -> nm :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Path.compare (Id.path a) (Id.path b))

let find_conflict t ~txn wanted =
  List.fold_left
    (fun found (node, mode) ->
      match found with
      | Some _ -> found
      | None ->
        (match find_entry t node with
         | None -> None
         | Some e ->
           (* An upgrade must be checked at the strength it will actually be
              stored at: the join of what the txn already holds with what it
              now wants (e.g. held R + wanted IW stores W). *)
           let effective =
             match Imap.find_opt txn e.eholders with
             | None -> mode
             | Some own -> join own mode
           in
           Imap.fold
             (fun holder held found ->
               match found with
               | Some _ -> found
               | None ->
                 if holder <> txn && not (compatible held effective) then
                   Some
                     { path = Id.path node; wanted = effective; holder; held }
                 else None)
             e.eholders None))
    None wanted

let try_acquire t ~txn locks =
  t.attempts <- t.attempts + 1;
  let wanted = requirements locks in
  match find_conflict t ~txn wanted with
  | Some conflict -> Error conflict
  | None ->
    let newly_locked = ref [] in
    List.iter
      (fun (node, mode) ->
        let e = find_or_create_entry t node in
        if not (Imap.mem txn e.eholders) then
          newly_locked := node :: !newly_locked;
        e.eholders <-
          Imap.update txn
            (function None -> Some mode | Some held -> Some (join held mode))
            e.eholders)
      wanted;
    (match !newly_locked with
     | [] -> ()
     | nodes ->
       let prev = Option.value (Hashtbl.find_opt t.by_txn txn) ~default:[] in
       Hashtbl.replace t.by_txn txn (List.rev_append nodes prev));
    Ok ()

let cancel_wait t ~txn =
  match Hashtbl.find_opt t.waiting txn with
  | None -> ()
  | Some node ->
    Hashtbl.remove t.waiting txn;
    (match find_entry t node with
     | None -> ()
     | Some e ->
       e.waiters <- Iset.remove txn e.waiters;
       drop_entry_if_empty t e)

let wait t ~txn ~on =
  cancel_wait t ~txn;
  let node = Id.intern on in
  let e = find_or_create_entry t node in
  e.waiters <- Iset.add txn e.waiters;
  Hashtbl.replace t.waiting txn node

let release_all t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> []
  | Some nodes ->
    Hashtbl.remove t.by_txn txn;
    let woken = ref Iset.empty in
    List.iter
      (fun node ->
        match find_entry t node with
        | None -> ()
        | Some e ->
          e.eholders <- Imap.remove txn e.eholders;
          (* Waking every waiter parked on a released node is the sound
             over-approximation: a waiter may still conflict with a
             remaining holder (a spurious wakeup, it re-parks), but no
             grantable waiter is ever left sleeping. *)
          if not (Iset.is_empty e.waiters) then begin
            woken := Iset.union !woken e.waiters;
            Iset.iter (fun w -> Hashtbl.remove t.waiting w) e.waiters;
            e.waiters <- Iset.empty
          end;
          drop_entry_if_empty t e)
      nodes;
    Iset.elements !woken

let waiting_on t ~txn =
  Option.map (fun node -> Id.path node) (Hashtbl.find_opt t.waiting txn)

let waiter_count t = Hashtbl.length t.waiting

let holders t path =
  match find_entry t (Id.intern path) with
  | None -> []
  | Some e -> Imap.bindings e.eholders

let held_by t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> []
  | Some nodes ->
    nodes
    |> List.filter_map (fun node ->
           match find_entry t node with
           | None -> None
           | Some e ->
             Option.map
               (fun mode -> (Id.path node, mode))
               (Imap.find_opt txn e.eholders))
    |> List.sort (fun (a, _) (b, _) -> Path.compare a b)

let lock_count t =
  Hashtbl.fold (fun _ e acc -> acc + Imap.cardinal e.eholders) t.entries 0

let acquire_attempts t = t.attempts
