module Path = Data.Path

type mode = R | W | IR | IW

let mode_to_string = function R -> "R" | W -> "W" | IR -> "IR" | IW -> "IW"
let pp_mode fmt m = Format.pp_print_string fmt (mode_to_string m)

let compatible a b =
  match a, b with
  | IR, (IR | IW | R) | (IW | R), IR -> true
  | IW, IW -> true
  | R, R -> true
  | IR, W | W, IR -> false
  | IW, (R | W) | (R | W), IW -> false
  | R, W | W, R -> false
  | W, W -> false

(* Lattice order: IR < IW < W, IR < R < W; R and IW join to W because this
   scheme has no RIW/SIX mode. *)
let join a b =
  match a, b with
  | x, y when x = y -> x
  | IR, m | m, IR -> m
  | W, _ | _, W -> W
  | IW, R | R, IW -> W
  | IW, IW | R, R -> assert false (* covered by the first clause *)

let intention = function R | IR -> IR | W | IW -> IW

type conflict = { path : Path.t; wanted : mode; holder : int; held : mode }

let pp_conflict fmt c =
  Format.fprintf fmt "%a: txn %d holds %a, wanted %a" Path.pp c.path c.holder
    pp_mode c.held pp_mode c.wanted

module Pmap = Map.Make (Path)
module Imap = Map.Make (Int)

type t = {
  mutable by_path : mode Imap.t Pmap.t;  (* path -> txn -> mode *)
  mutable by_txn : Path.t list Imap.t;   (* txn -> paths it locks *)
}

let create () = { by_path = Pmap.empty; by_txn = Imap.empty }

(* The full requirement implied by a request: each requested lock plus
   intention locks on all ancestors, merged per path with [join]. *)
let requirements locks =
  List.fold_left
    (fun acc (path, mode) ->
      let add acc path mode =
        Pmap.update path
          (function None -> Some mode | Some m -> Some (join m mode))
          acc
      in
      let acc = add acc path mode in
      List.fold_left
        (fun acc ancestor -> add acc ancestor (intention mode))
        acc (Path.ancestors path))
    Pmap.empty locks

let find_conflict t ~txn wanted_by_path =
  Pmap.fold
    (fun path wanted found ->
      match found with
      | Some _ -> found
      | None ->
        (match Pmap.find_opt path t.by_path with
         | None -> None
         | Some holders ->
           (* An upgrade must be checked at the strength it will actually be
              stored at: the join of what the txn already holds with what it
              now wants (e.g. held R + wanted IW stores W). *)
           let effective =
             match Imap.find_opt txn holders with
             | None -> wanted
             | Some own -> join own wanted
           in
           Imap.fold
             (fun holder held found ->
               match found with
               | Some _ -> found
               | None ->
                 if holder <> txn && not (compatible held effective) then
                   Some { path; wanted = effective; holder; held }
                 else None)
             holders None))
    wanted_by_path None

let try_acquire t ~txn locks =
  let wanted = requirements locks in
  match find_conflict t ~txn wanted with
  | Some conflict -> Error conflict
  | None ->
    let newly_locked = ref [] in
    t.by_path <-
      Pmap.fold
        (fun path mode by_path ->
          Pmap.update path
            (fun holders ->
              let holders = Option.value holders ~default:Imap.empty in
              if not (Imap.mem txn holders) then
                newly_locked := path :: !newly_locked;
              Some
                (Imap.update txn
                   (function
                     | None -> Some mode
                     | Some held -> Some (join held mode))
                   holders))
            by_path)
        wanted t.by_path;
    t.by_txn <-
      Imap.update txn
        (fun paths ->
          Some (List.rev_append !newly_locked (Option.value paths ~default:[])))
        t.by_txn;
    Ok ()

let release_all t ~txn =
  match Imap.find_opt txn t.by_txn with
  | None -> ()
  | Some paths ->
    t.by_txn <- Imap.remove txn t.by_txn;
    t.by_path <-
      List.fold_left
        (fun by_path path ->
          Pmap.update path
            (function
              | None -> None
              | Some holders ->
                let holders = Imap.remove txn holders in
                if Imap.is_empty holders then None else Some holders)
            by_path)
        t.by_path paths

let holders t path =
  match Pmap.find_opt path t.by_path with
  | None -> []
  | Some holders -> Imap.bindings holders

let held_by t ~txn =
  match Imap.find_opt txn t.by_txn with
  | None -> []
  | Some paths ->
    paths
    |> List.filter_map (fun path ->
           match Pmap.find_opt path t.by_path with
           | None -> None
           | Some holders ->
             Option.map (fun mode -> (path, mode)) (Imap.find_opt txn holders))
    |> List.sort (fun (a, _) (b, _) -> Path.compare a b)

let lock_count t =
  Pmap.fold (fun _ holders acc -> acc + Imap.cardinal holders) t.by_path 0
