(* Deterministic span-tree recorder keyed by transaction id.  All
   timestamps come from the simulation clock, so traces are reproducible
   byte-for-byte from a seed.  See trace.mli for the model. *)

type span = {
  sid : int;
  txn : int;
  cat : string;
  name : string;
  parent : int option;
  start_ts : float;
  mutable end_ts : float option;
  mutable attrs : (string * string) list;
}

type event = {
  eid : int;
  etxn : int;
  ecat : string;
  ename : string;
  ts : float;
  eattrs : (string * string) list;
}

type item = S of span | E of event

type t = {
  sim : Des.Sim.t;
  mutable next_id : int;
  mutable items : item list; (* newest first *)
  by_id : (int, span) Hashtbl.t;
  open_stacks : (int, (int * int) list) Hashtbl.t;
      (* txn -> open (lane, sid), innermost first *)
}

let create ~sim () =
  {
    sim;
    next_id = 1;
    items = [];
    by_id = Hashtbl.create 256;
    open_stacks = Hashtbl.create 64;
  }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let fresh_lane = fresh_id

let stack t txn = Option.value (Hashtbl.find_opt t.open_stacks txn) ~default:[]

(* Parent = innermost open span of the same lane; a fresh lane (a worker
   execution) falls back to the innermost controller-lane (0) span — the
   transaction root.  Lanes keep concurrent executors of the same
   transaction (duplicate dispatch after a controller fail-over) from
   parenting onto each other's open spans. *)
let begin_span t ~txn ?(lane = 0) ~cat ~name ?(attrs = []) () =
  let sid = fresh_id t in
  let st = stack t txn in
  let parent =
    match List.find_opt (fun (l, _) -> l = lane) st with
    | Some (_, p) -> Some p
    | None ->
      if lane = 0 then None
      else Option.map snd (List.find_opt (fun (l, _) -> l = 0) st)
  in
  let span =
    {
      sid;
      txn;
      cat;
      name;
      parent;
      start_ts = Des.Sim.now t.sim;
      end_ts = None;
      attrs;
    }
  in
  Hashtbl.replace t.by_id sid span;
  Hashtbl.replace t.open_stacks txn ((lane, sid) :: st);
  t.items <- S span :: t.items;
  sid

let pop_sid t txn sid =
  Hashtbl.replace t.open_stacks txn
    (List.filter (fun (_, s) -> s <> sid) (stack t txn))

let end_span t ?(attrs = []) sid =
  match Hashtbl.find_opt t.by_id sid with
  | None -> ()
  | Some span ->
    (match span.end_ts with
     | Some _ -> () (* first close wins *)
     | None ->
       span.end_ts <- Some (Des.Sim.now t.sim);
       span.attrs <- span.attrs @ attrs;
       pop_sid t span.txn sid)

let end_named t ~txn ~name ?attrs () =
  let rec find = function
    | [] -> None
    | (_, sid) :: rest ->
      (match Hashtbl.find_opt t.by_id sid with
       | Some span when span.name = name -> Some span
       | _ -> find rest)
  in
  match find (stack t txn) with
  | None -> None
  | Some span ->
    end_span t ?attrs span.sid;
    (match span.end_ts with
     | Some e -> Some (e -. span.start_ts)
     | None -> None)

let close_all t ~txn ?(attrs = []) () =
  let now = Des.Sim.now t.sim in
  List.iter
    (fun (_, sid) ->
      match Hashtbl.find_opt t.by_id sid with
      | None -> ()
      | Some span ->
        (match span.end_ts with
         | Some _ -> ()
         | None ->
           span.end_ts <- Some now;
           if span.cat = "txn" then span.attrs <- span.attrs @ attrs
           else span.attrs <- span.attrs @ [ ("closed_by", "finalize") ]))
    (stack t txn);
  Hashtbl.remove t.open_stacks txn

let instant t ~txn ~cat ~name ?(attrs = []) () =
  let eid = fresh_id t in
  let event =
    {
      eid;
      etxn = txn;
      ecat = cat;
      ename = name;
      ts = Des.Sim.now t.sim;
      eattrs = attrs;
    }
  in
  t.items <- E event :: t.items

let items t = List.rev t.items

let spans t =
  List.filter_map (function S s -> Some s | E _ -> None) (items t)

let events t =
  List.filter_map (function E e -> Some e | S _ -> None) (items t)

let span_count t = List.length (spans t)
let attr span key = List.assoc_opt key span.attrs

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_args attrs =
  let fields =
    List.map
      (fun (k, v) ->
        Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
      attrs
  in
  "{" ^ String.concat "," fields ^ "}"

let micros ts = ts *. 1e6

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  (* Thread names: one lane per transaction, labelled by its root span. *)
  let named = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if s.cat = "txn" && not (Hashtbl.mem named s.txn) then begin
        Hashtbl.replace named s.txn ();
        emit
          (Printf.sprintf
             "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":%d,\
              \"args\":{\"name\":\"txn %d %s\"}}"
             s.txn s.txn (json_escape s.name))
      end)
    (spans t);
  List.iter
    (function
      | S s ->
        let dur, extra =
          match s.end_ts with
          | Some e -> (micros e -. micros s.start_ts, s.attrs)
          | None -> (0., s.attrs @ [ ("unclosed", "true") ])
        in
        emit
          (Printf.sprintf
             "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":1,\
              \"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}"
             (json_escape s.name) (json_escape s.cat) s.txn
             (micros s.start_ts) dur (json_args extra))
      | E e ->
        emit
          (Printf.sprintf
             "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"%s\",\"cat\":\"%s\",\
              \"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":%s}"
             (json_escape e.ename) (json_escape e.ecat) e.etxn (micros e.ts)
             (json_args e.eattrs)))
    (items t);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Normalized textual export (golden tests, chaos reproducer dumps) *)

let to_normalized_lines t =
  let all = items t in
  (* Renumber ids densely in creation order so the dump is insensitive to
     how many ids were burnt elsewhere. *)
  let renum = Hashtbl.create 256 in
  List.iteri
    (fun i item ->
      let id = match item with S s -> s.sid | E e -> e.eid in
      Hashtbl.replace renum id (i + 1))
    all;
  let rid id = try Hashtbl.find renum id with Not_found -> 0 in
  let fmt_attrs attrs =
    if attrs = [] then ""
    else
      " {"
      ^ String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
      ^ "}"
  in
  List.map
    (function
      | S s ->
        let parent =
          match s.parent with None -> "-" | Some p -> string_of_int (rid p)
        in
        let close =
          match s.end_ts with
          | Some e -> Printf.sprintf "%.6f" e
          | None -> "open"
        in
        Printf.sprintf "span #%d parent=%s txn=%d %s/%s t=[%.6f %s]%s"
          (rid s.sid) parent s.txn s.cat s.name s.start_ts close
          (fmt_attrs s.attrs)
      | E e ->
        Printf.sprintf "evt  #%d txn=%d %s/%s t=%.6f%s" (rid e.eid) e.etxn
          e.ecat e.ename e.ts (fmt_attrs e.eattrs))
    all

let to_normalized_string t =
  String.concat "\n" (to_normalized_lines t) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Structural invariants *)

module Check = struct
  type error = { check : string; ctxn : int; detail : string }

  let error_to_string e =
    Printf.sprintf "[%s] txn %d: %s" e.check e.ctxn e.detail

  let eps = 1e-9

  let int_attr span key = Option.bind (attr span key) int_of_string_opt

  let is_undo span =
    span.name = "undo"
    || String.length span.name > 5
       && String.sub span.name 0 5 = "undo:"

  let is_action span =
    String.length span.name > 7 && String.sub span.name 0 7 = "action:"

  let validate t =
    let errs = ref [] in
    let err check ctxn fmt =
      Printf.ksprintf
        (fun detail -> errs := { check; ctxn; detail } :: !errs)
        fmt
    in
    let all_spans = spans t in
    let by_sid = Hashtbl.create 256 in
    List.iter (fun s -> Hashtbl.replace by_sid s.sid s) all_spans;
    (* balanced / duration / parent / containment *)
    List.iter
      (fun s ->
        (match s.end_ts with
         | None -> err "balanced" s.txn "span #%d %s/%s never closed" s.sid s.cat s.name
         | Some e ->
           if e < s.start_ts -. eps then
             err "duration" s.txn "span #%d %s/%s ends before it starts" s.sid
               s.cat s.name);
        match s.parent with
        | None -> ()
        | Some p ->
          (match Hashtbl.find_opt by_sid p with
           | None -> err "parent" s.txn "span #%d has unknown parent #%d" s.sid p
           | Some ps ->
             if ps.txn <> s.txn then
               err "parent" s.txn "span #%d parented across txns (#%d txn %d)"
                 s.sid p ps.txn;
             if s.start_ts < ps.start_ts -. eps then
               err "containment" s.txn
                 "span #%d %s/%s starts before parent #%d" s.sid s.cat s.name p;
             (match (s.end_ts, ps.end_ts) with
              | Some ce, Some pe ->
                if ce > pe +. eps then
                  err "containment" s.txn
                    "span #%d %s/%s ends after parent #%d" s.sid s.cat s.name p
              | _ -> ())))
      all_spans;
    (* monotone creation order *)
    let _ =
      List.fold_left
        (fun prev item ->
          let ts = match item with S s -> s.start_ts | E e -> e.ts in
          if ts < prev -. eps then
            (match item with
             | S s ->
               err "monotone" s.txn "span #%d recorded out of time order" s.sid
             | E e ->
               err "monotone" e.etxn "event #%d recorded out of time order"
                 e.eid);
          Float.max prev ts)
        neg_infinity (items t)
    in
    (* per-transaction lifecycle *)
    let by_txn = Hashtbl.create 64 in
    List.iter
      (fun s ->
        let prev = Option.value (Hashtbl.find_opt by_txn s.txn) ~default:[] in
        Hashtbl.replace by_txn s.txn (s :: prev))
      all_spans;
    let children_of group parent_sid =
      List.filter (fun s -> s.parent = Some parent_sid) group
    in
    Hashtbl.iter
      (fun txn rev_group ->
        let group = List.rev rev_group in
        let roots = List.filter (fun s -> s.cat = "txn") group in
        (match roots with
         | [] | [ _ ] -> ()
         | _ -> err "root" txn "%d root spans" (List.length roots));
        let ok_actions parent_sid =
          List.filter_map
            (fun s ->
              if is_action s && attr s "outcome" = Some "ok" then
                int_attr s "index"
              else None)
            (children_of group parent_sid)
        in
        (* committed lifecycle *)
        (match roots with
         | [ root ] when attr root "state" = Some "committed" ->
           (* After a fail-over the same transaction can be replayed by two
              workers at once; the losing duplicate legitimately aborts on
              the already-applied state and undoes its (empty) progress.
              Only undo work under the *committed* execution — or outside
              any replay span — contradicts the committed state. *)
           let span_by_sid sid = List.find_opt (fun s -> s.sid = sid) group in
           let rec enclosing_replay s =
             match Option.bind s.parent span_by_sid with
             | None -> None
             | Some p -> if p.name = "replay" then Some p else enclosing_replay p
           in
           let offending_undo =
             List.filter
               (fun s ->
                 is_undo s && s.parent <> None
                 &&
                 match enclosing_replay s with
                 | Some r -> attr r "outcome" = Some "committed"
                 | None -> true)
               group
           in
           if offending_undo <> [] then
             err "committed-no-undo" txn
               "%d undo spans under the committed execution"
               (List.length offending_undo);
           let replays = List.filter (fun s -> s.name = "replay") group in
           (* A replay that resumed after a crash (attr [resume=k]) only
              runs actions k..n-1 itself; actions 0..k-1 were applied by
              earlier incarnations, whose interrupted replay spans still
              carry the ok action spans.  Coverage is therefore: the
              committed incarnation ran exactly its own tail, and every
              skipped index has an ok action span under {e some} replay
              of this transaction. *)
           let covering replay =
             attr replay "outcome" = Some "committed"
             && (attr replay "mode" = Some "logical"
                ||
                match int_attr replay "actions" with
                | None -> false
                | Some n ->
                  let resume =
                    Option.value (int_attr replay "resume") ~default:0
                  in
                  let idx = List.sort_uniq compare (ok_actions replay.sid) in
                  (* Action indices are 1-based: a resume of [k] means
                     records 1..k were skipped and k+1..n ran here. *)
                  List.length idx = n - resume
                  && List.for_all (fun i -> i > resume) idx
                  &&
                  let all =
                    List.sort_uniq compare
                      (List.concat_map (fun s -> ok_actions s.sid) replays)
                  in
                  List.for_all
                    (fun i -> List.mem i all)
                    (List.init resume (fun i -> i + 1)))
           in
           if not (List.exists covering replays) then
             err "committed-coverage" txn
               "no replay span with committed outcome covering all actions"
         | _ -> ());
        (* aborted-in-physical lifecycle: undo order mirrors replay order.
           A replay that lost a duplicate-race to a committed incarnation
           deliberately skips its rollback (unwinding would corrupt the
           winner's effects), so a committed sibling replay waives the
           undo requirement. *)
        let committed_sibling =
          List.exists
            (fun s ->
              s.name = "replay" && attr s "outcome" = Some "committed")
            group
        in
        List.iter
          (fun replay ->
            if replay.name = "replay" && attr replay "outcome" = Some "aborted"
            then begin
              let executed = ok_actions replay.sid in
              let undos =
                List.filter (fun s -> s.name = "undo")
                  (children_of group replay.sid)
              in
              match undos with
              | [] ->
                if executed <> [] && not committed_sibling then
                  err "undo-missing" txn
                    "aborted replay #%d with %d executed actions has no undo \
                     span"
                    replay.sid (List.length executed)
              | u :: _ ->
                let undone =
                  List.filter_map
                    (fun s -> if is_undo s then int_attr s "index" else None)
                    (children_of group u.sid)
                in
                if undone <> List.rev executed then
                  err "undo-order" txn
                    "undo indices [%s] are not the reverse of executed [%s]"
                    (String.concat ";" (List.map string_of_int undone))
                    (String.concat ";" (List.map string_of_int executed))
            end)
          group)
      by_txn;
    List.rev !errs
end
