(** Deterministic per-transaction span tracing.

    A [Trace.t] records the lifecycle of every transaction as a tree of
    spans stamped with the simulation clock: controller admission,
    scheduling transitions, lock waits (with the blocking holder), logical
    simulation, per-action physical replay including retries and
    backoffs, undo chains, and watchdog/health escalations.  The recorder
    is purely in-memory and deterministic — the same seed produces the
    same trace, byte for byte — which makes traces a test surface as well
    as an observability tool.

    Spans are keyed by transaction id.  Each transaction has at most one
    {e root} span (category ["txn"]); all other spans parent onto the
    innermost open span of the same transaction at the time they begin, so
    emitters never thread parent ids around.  [close_all] force-closes
    whatever is still open for a transaction when the controller finalizes
    it, guaranteeing balance even when a worker was killed mid-replay. *)

type t

type span = {
  sid : int;  (** unique, monotone in start time *)
  txn : int;  (** owning transaction id (0 = platform/system) *)
  cat : string;
  name : string;
  parent : int option;  (** sid of the enclosing span, if any *)
  start_ts : float;  (** sim seconds *)
  mutable end_ts : float option;
  mutable attrs : (string * string) list;  (** in emission order *)
}

type event = {
  eid : int;
  etxn : int;
  ecat : string;
  ename : string;
  ts : float;
  eattrs : (string * string) list;
}

val create : sim:Des.Sim.t -> unit -> t

val begin_span :
  t ->
  txn:int ->
  ?lane:int ->
  cat:string ->
  name:string ->
  ?attrs:(string * string) list ->
  unit ->
  int
(** Opens a span; returns its sid.  Parent = innermost open span of the
    same transaction {e and lane} (None for the first).  [lane] defaults
    to 0, the controller lane.  A concurrent executor (e.g. a worker
    replaying a transaction that was re-dispatched after a controller
    fail-over) should open its spans under a [fresh_lane] so that two
    executors of the same transaction never parent onto each other's open
    spans; a non-zero lane with no open span of its own parents onto the
    innermost lane-0 span (normally the txn root). *)

val fresh_lane : t -> int
(** A lane id never used before in this trace.  Lane ids share the span
    id counter, which is harmless: normalized dumps renumber. *)

val end_span : t -> ?attrs:(string * string) list -> int -> unit
(** Closes a span (idempotent: the first close wins; later calls only
    append attributes if the span is somehow still open — otherwise they
    are ignored entirely). *)

val end_named :
  t -> txn:int -> name:string -> ?attrs:(string * string) list -> unit ->
  float option
(** Closes the innermost open span with the given name for [txn], if any,
    returning its duration.  Used to close park spans (lock-wait,
    breaker-park) whose closing site is far from their opening site. *)

val close_all :
  t -> txn:int -> ?attrs:(string * string) list -> unit -> unit
(** Force-closes every open span of [txn] at the current sim time.
    [attrs] are appended to the root (category ["txn"]) span; other
    stragglers get [closed_by=finalize].  Called when the controller
    finalizes a transaction, so traces are balanced at quiescence even if
    workers were killed mid-flight. *)

val instant :
  t ->
  txn:int ->
  cat:string ->
  name:string ->
  ?attrs:(string * string) list ->
  unit ->
  unit
(** Records a zero-duration event (sched transitions, watchdog/health
    escalations, admission sheds). *)

val spans : t -> span list
(** All spans in creation (= start-time) order. *)

val events : t -> event list
(** All instant events in creation order. *)

val span_count : t -> int

val attr : span -> string -> string option
(** First binding of the attribute, if present. *)

val to_chrome_json : t -> string
(** Chrome [trace_event] JSON (an array of "X"/"i"/"M" events, ts in
    microseconds, pid 1, tid = txn id) loadable in about://tracing or
    Perfetto. *)

val to_normalized_lines : t -> string list
(** Stable one-line-per-item textual form (spans and events interleaved in
    creation order, ids renumbered from 1) used for golden-trace tests and
    chaos reproducer dumps. *)

val to_normalized_string : t -> string

module Check : sig
  (** Structural lifecycle invariants over a finished trace. *)

  type error = { check : string; ctxn : int; detail : string }

  val error_to_string : error -> string

  val validate : t -> error list
  (** Validates, per trace:
      - {b balanced}: every span has an end timestamp;
      - {b duration}: [end_ts >= start_ts];
      - {b monotone}: items were recorded in non-decreasing sim time;
      - {b parent}: parents exist, belong to the same transaction, and
        contain their children in time;
      - {b root}: at most one ["txn"]-category root span per transaction;
      - {b committed lifecycle}: a root that ended in state [committed]
        has at least one replay span with outcome [committed] whose ok'd
        action spans cover the whole xlog, and no undo spans under the
        committed execution or outside any replay span (a duplicate
        execution dispatched around a fail-over may lose the race, abort
        on the already-applied state and undo its own progress);
      - {b aborted lifecycle}: every replay span with outcome [aborted]
        has an undo child whose per-action undo spans run in exact
        reverse order of the ok'd replayed actions. *)
end
