let uniform st ~lo ~hi = lo +. Random.State.float st (hi -. lo)

let exponential st ~mean =
  let u = 1. -. Random.State.float st 1. in
  -.mean *. log u

let gaussian st ~mean ~stddev =
  let u1 = 1. -. Random.State.float st 1. in
  let u2 = Random.State.float st 1. in
  mean +. (stddev *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let flip st ~p =
  if p <= 0. then false
  else if p >= 1. then true
  else Random.State.float st 1. < p

let int st n =
  if n <= 0 then invalid_arg "Dist.int: bound must be positive";
  Random.State.int st n

let choice st xs =
  match xs with
  | [] -> invalid_arg "Dist.choice: empty list"
  | _ -> List.nth xs (int st (List.length xs))

let weighted_index st weights =
  let total =
    Array.fold_left
      (fun acc w ->
        if w < 0. then invalid_arg "Dist.weighted_index: negative weight";
        acc +. w)
      0. weights
  in
  if total <= 0. then invalid_arg "Dist.weighted_index: zero total weight";
  let target = Random.State.float st total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.
