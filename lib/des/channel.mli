(** Unbounded FIFO channels between processes.

    [send] never blocks and may be called from anywhere (including plain
    simulator events); [recv] blocks the calling process until an item is
    available.  Items are delivered in FIFO order to waiting receivers in
    FIFO order.  An item handed to a receiver that was killed before its
    resumption event fires is dropped (crash = loss, as on a real host). *)

type 'a t

val create : ?name:string -> unit -> 'a t
val name : 'a t -> string

(** Enqueue an item (or hand it to the oldest waiting receiver). *)
val send : 'a t -> 'a -> unit

(** Dequeue an item, blocking the calling process if the channel is empty. *)
val recv : 'a t -> 'a

(** Like {!recv} but gives up after [timeout] seconds, returning [None]. *)
val recv_timeout : 'a t -> timeout:float -> 'a option

(** Dequeue without blocking. *)
val try_recv : 'a t -> 'a option

(** Items currently queued (excludes waiting receivers). *)
val length : 'a t -> int

(** Number of receivers currently blocked. *)
val waiting : 'a t -> int
