type event = {
  time : float;
  seq : int;
  fn : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable executed : int;
  queue : event Heap.t;
  random : Random.State.t;
  mutable failure_log : (string * exn) list;
}

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 42) () =
  {
    clock = 0.;
    next_seq = 0;
    executed = 0;
    queue = Heap.create ~cmp:compare_event;
    random = Random.State.make [| seed |];
    failure_log = [];
  }

let now sim = sim.clock
let rng sim = sim.random

let at sim time fn =
  if time < sim.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is before now %g" time sim.clock);
  let ev = { time; seq = sim.next_seq; fn; cancelled = false } in
  sim.next_seq <- sim.next_seq + 1;
  Heap.push sim.queue ev;
  ev

let after sim delay fn = at sim (sim.clock +. Float.max 0. delay) fn
let cancel ev = ev.cancelled <- true

(* Drop cancelled events from the head of the queue so they neither fire
   nor advance the clock. *)
let rec purge sim =
  match Heap.peek sim.queue with
  | Some ev when ev.cancelled ->
    ignore (Heap.pop sim.queue);
    purge sim
  | Some _ | None -> ()

let step sim =
  purge sim;
  match Heap.pop_opt sim.queue with
  | None -> false
  | Some ev ->
    sim.clock <- ev.time;
    sim.executed <- sim.executed + 1;
    ev.fn ();
    true

let run ?until sim =
  let start = sim.executed in
  let continue () =
    purge sim;
    match Heap.peek sim.queue, until with
    | None, _ -> false
    | Some _, None -> true
    | Some ev, Some limit -> ev.time <= limit
  in
  while continue () do
    ignore (step sim)
  done;
  (match until with
   | Some limit -> sim.clock <- Float.max sim.clock limit
   | None -> ());
  sim.executed - start

let executed sim = sim.executed
let pending sim = purge sim; Heap.length sim.queue

let record_failure sim who exn =
  sim.failure_log <- (who, exn) :: sim.failure_log

let failures sim = List.rev sim.failure_log
