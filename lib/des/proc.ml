exception Killed

type 'a resumer = ('a, exn) result -> unit

type state =
  | Embryo
  | Running
  | Suspended of { abort : exn -> unit }
  | Finished of (unit, exn) result

type t = {
  pid : int;
  pname : string;
  sim : Sim.t;
  mutable state : state;
  mutable kill_requested : bool;
  mutable joiners : (unit, exn) result resumer list;
}

type _ Effect.t +=
  | Suspend : (t -> 'b resumer -> unit -> unit) -> 'b Effect.t
  | Self : t Effect.t

let counter = ref 0

let alive p = match p.state with Finished _ -> false | Embryo | Running | Suspended _ -> true
let name p = p.pname
let id p = p.pid
let sim_of p = p.sim

let result p =
  match p.state with
  | Finished r -> Some r
  | Embryo | Running | Suspended _ -> None

let finish p r =
  p.state <- Finished r;
  let joiners = List.rev p.joiners in
  p.joiners <- [];
  List.iter (fun resume -> resume (Ok r)) joiners

(* Park the continuation [k]: hand a one-shot resumer to [register], and
   remember an abort hook so that [kill] can resume with an exception.
   Resumption always goes through a zero-delay event, so a process never
   runs inside another process's stack frame. *)
let handle_suspend :
    type b. t -> (t -> b resumer -> unit -> unit) -> (b, unit) Effect.Deep.continuation -> unit
  =
 fun p register k ->
  let resumed = ref false in
  let cleanup = ref (fun () -> ()) in
  let resume res =
    if not !resumed then begin
      resumed := true;
      ignore
        (Sim.after p.sim 0. (fun () ->
             p.state <- Running;
             if p.kill_requested then Effect.Deep.discontinue k Killed
             else
               match res with
               | Ok v -> Effect.Deep.continue k v
               | Error e -> Effect.Deep.discontinue k e))
    end
  in
  let abort e =
    if not !resumed then begin
      !cleanup ();
      resume (Error e)
    end
  in
  p.state <- Suspended { abort };
  match register p resume with
  | c -> cleanup := c
  | exception e -> resume (Error e)

let start p body =
  p.state <- Running;
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> finish p (Ok ()));
      exnc =
        (fun e ->
          (match e with
           | Killed -> ()
           | e -> Sim.record_failure p.sim p.pname e);
          finish p (Error e));
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (c, unit) Effect.Deep.continuation) ->
                handle_suspend p register k)
          | Self -> Some (fun k -> Effect.Deep.continue k p)
          | _ -> None);
    }

let spawn ?name sim body =
  incr counter;
  let pid = !counter in
  let pname =
    match name with Some n -> n | None -> Printf.sprintf "proc-%d" pid
  in
  let p =
    { pid; pname; sim; state = Embryo; kill_requested = false; joiners = [] }
  in
  ignore
    (Sim.after sim 0. (fun () ->
         if p.kill_requested then finish p (Error Killed) else start p body));
  p

let kill p =
  match p.state with
  | Finished _ -> ()
  | Embryo | Running -> p.kill_requested <- true
  | Suspended { abort } ->
    p.kill_requested <- true;
    abort Killed

let suspend register = Effect.perform (Suspend register)
let self () = Effect.perform Self

let sleep d =
  suspend (fun p resume ->
      let ev = Sim.after p.sim d (fun () -> resume (Ok ())) in
      fun () -> Sim.cancel ev)

let yield () = sleep 0.
let now () = Sim.now (sim_of (self ()))

let await target =
  match target.state with
  | Finished r -> r
  | Embryo | Running | Suspended _ ->
    suspend (fun _self resume ->
        target.joiners <- resume :: target.joiners;
        fun () -> ())
