(** Deterministic discrete-event simulation core.

    A simulation owns a virtual clock and an event queue.  Events scheduled
    for the same instant fire in scheduling order (FIFO), which — together
    with the seeded random state — makes every run fully deterministic. *)

type t

(** Handle to a scheduled event, usable to cancel it. *)
type event

(** [create ?seed ()] is a fresh simulation whose clock reads 0.
    [seed] (default 42) seeds the simulation-wide random state. *)
val create : ?seed:int -> unit -> t

(** Current virtual time, in seconds. *)
val now : t -> float

(** Simulation-wide deterministic random state. *)
val rng : t -> Random.State.t

(** [at sim time fn] schedules [fn] to run at absolute [time].
    @raise Invalid_argument if [time] is in the past. *)
val at : t -> float -> (unit -> unit) -> event

(** [after sim delay fn] schedules [fn] to run [delay] seconds from now.
    A negative delay is clamped to 0. *)
val after : t -> float -> (unit -> unit) -> event

(** [cancel sim ev] prevents [ev] from firing; no-op if already fired. *)
val cancel : event -> unit

(** [run ?until sim] executes events in order until the queue is empty or
    the clock would pass [until].  Returns the number of events executed. *)
val run : ?until:float -> t -> int

(** [step sim] executes the next event if any; [true] if one was run. *)
val step : t -> bool

(** Number of events executed so far. *)
val executed : t -> int

(** Number of events currently pending. *)
val pending : t -> int

(** Record an asynchronous failure (used by {!Proc} for crashed processes);
    exposed so tests and harnesses can assert that nothing crashed. *)
val record_failure : t -> string -> exn -> unit

(** Failures recorded so far, oldest first, as [(who, exn)]. *)
val failures : t -> (string * exn) list
