module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type 'm t = {
  net_sim : Sim.t;
  nodes : int;
  latency : src:int -> dst:int -> rng:Random.State.t -> float;
  mutable drop_rate : float;
  up : bool array;
  inboxes : (int * 'm) Channel.t array;
  mutable cuts : Pair_set.t;
  extra_delay : float array;
  mutable n_delivered : int;
  mutable n_dropped : int;
}

let default_latency ~src:_ ~dst:_ ~rng = Dist.uniform rng ~lo:0.0005 ~hi:0.0015

let create ?(latency = default_latency) ?(drop_rate = 0.) sim ~nodes =
  {
    net_sim = sim;
    nodes;
    latency;
    drop_rate;
    up = Array.make nodes true;
    inboxes =
      Array.init nodes (fun i ->
          Channel.create ~name:(Printf.sprintf "inbox-%d" i) ());
    cuts = Pair_set.empty;
    extra_delay = Array.make nodes 0.;
    n_delivered = 0;
    n_dropped = 0;
  }

let sim net = net.net_sim
let node_count net = net.nodes
let inbox net i = net.inboxes.(i)
let is_up net i = net.up.(i)

let ordered a b = if a <= b then (a, b) else (b, a)
let cut net a b = Pair_set.mem (ordered a b) net.cuts

let send net ~src ~dst msg =
  let deliverable =
    net.up.(src) && net.up.(dst)
    && (not (cut net src dst))
    && not (Dist.flip (Sim.rng net.net_sim) ~p:net.drop_rate)
  in
  if not deliverable then net.n_dropped <- net.n_dropped + 1
  else begin
    let delay =
      net.latency ~src ~dst ~rng:(Sim.rng net.net_sim)
      +. net.extra_delay.(src)
    in
    ignore
      (Sim.after net.net_sim delay (fun () ->
           if net.up.(dst) then begin
             net.n_delivered <- net.n_delivered + 1;
             Channel.send net.inboxes.(dst) (src, msg)
           end
           else net.n_dropped <- net.n_dropped + 1))
  end

let broadcast net ~src msg =
  for dst = 0 to net.nodes - 1 do
    if dst <> src then send net ~src ~dst msg
  done

let crash net i =
  net.up.(i) <- false;
  (* A rebooted node loses its volatile inbox. *)
  let rec drain () =
    match Channel.try_recv net.inboxes.(i) with
    | Some _ -> drain ()
    | None -> ()
  in
  drain ()

let restart net i = net.up.(i) <- true

let partition net group_a group_b =
  List.iter
    (fun a ->
      List.iter
        (fun b -> if a <> b then net.cuts <- Pair_set.add (ordered a b) net.cuts)
        group_b)
    group_a

let heal net = net.cuts <- Pair_set.empty
let set_drop_rate net p = net.drop_rate <- p

let set_node_delay net i extra =
  net.extra_delay.(i) <- (if extra > 0. then extra else 0.)

let node_delay net i = net.extra_delay.(i)
let delivered net = net.n_delivered
let dropped net = net.n_dropped
