type 'a waiter = { mutable live : bool; deliver : 'a -> unit }

type 'a t = {
  chan_name : string;
  items : 'a Queue.t;
  waiters : 'a waiter Queue.t;
}

let create ?(name = "chan") () =
  { chan_name = name; items = Queue.create (); waiters = Queue.create () }

let name ch = ch.chan_name
let length ch = Queue.length ch.items

let waiting ch =
  Queue.fold (fun n w -> if w.live then n + 1 else n) 0 ch.waiters

let rec pop_live_waiter ch =
  match Queue.take_opt ch.waiters with
  | None -> None
  | Some w when not w.live -> pop_live_waiter ch
  | Some w -> Some w

let send ch item =
  match pop_live_waiter ch with
  | Some w ->
    w.live <- false;
    w.deliver item
  | None -> Queue.push item ch.items

let try_recv ch = Queue.take_opt ch.items

(* Register a waiter together with an optional timeout timer; whichever of
   delivery, timeout and abort comes first wins and disarms the others. *)
let recv_general ch ~timeout =
  match Queue.take_opt ch.items with
  | Some v -> Some v
  | None ->
    Proc.suspend (fun p resume ->
        let timer = ref None in
        let cancel_timer () =
          match !timer with None -> () | Some ev -> Sim.cancel ev
        in
        let w =
          {
            live = true;
            deliver =
              (fun v ->
                cancel_timer ();
                resume (Ok (Some v)));
          }
        in
        Queue.push w ch.waiters;
        (match timeout with
         | None -> ()
         | Some d ->
           timer :=
             Some
               (Sim.after (Proc.sim_of p) d (fun () ->
                    if w.live then begin
                      w.live <- false;
                      resume (Ok None)
                    end)));
        fun () ->
          w.live <- false;
          cancel_timer ())

let recv ch =
  match recv_general ch ~timeout:None with
  | Some v -> v
  | None -> assert false (* no timeout was armed *)

let recv_timeout ch ~timeout = recv_general ch ~timeout:(Some timeout)
