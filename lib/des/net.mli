(** Simulated message-passing network with fault injection.

    Nodes are integers [0 .. nodes-1]; each has an inbox channel carrying
    [(src, message)] pairs.  Delivery is unicast, unordered across distinct
    latencies, and unreliable under injected faults:

    - a crashed node neither sends nor receives (its inbox is flushed);
    - partitioned node pairs drop messages at send time;
    - a global drop probability models lossy links;
    - messages in flight to a node that crashes are dropped at delivery. *)

type 'm t

val create :
  ?latency:(src:int -> dst:int -> rng:Random.State.t -> float) ->
  ?drop_rate:float ->
  Sim.t ->
  nodes:int ->
  'm t

val sim : 'm t -> Sim.t
val node_count : 'm t -> int

(** [send net ~src ~dst msg] attempts delivery of [msg] to [dst]'s inbox. *)
val send : 'm t -> src:int -> dst:int -> 'm -> unit

(** [broadcast net ~src msg] sends to every node except [src]. *)
val broadcast : 'm t -> src:int -> 'm -> unit

val inbox : 'm t -> int -> (int * 'm) Channel.t

val crash : 'm t -> int -> unit
val restart : 'm t -> int -> unit
val is_up : 'm t -> int -> bool

(** [partition net a b] cuts all links between node groups [a] and [b]. *)
val partition : 'm t -> int list -> int list -> unit

(** Remove all partitions. *)
val heal : 'm t -> unit

val set_drop_rate : 'm t -> float -> unit

(** [set_node_delay net i extra] adds [extra] seconds of latency to every
    message node [i] {e sends} (egress congestion: the node still hears
    the world on time, but the world hears it late).  Pass [0.] (or a
    negative value) to clear.  Messages already in flight keep the delay
    drawn at send time. *)
val set_node_delay : 'm t -> int -> float -> unit

val node_delay : 'm t -> int -> float

(** Total messages actually delivered (for tests / stats). *)
val delivered : 'm t -> int

(** Total messages dropped by faults. *)
val dropped : 'm t -> int
