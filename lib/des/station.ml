type job = { service : float; notify : unit Proc.resumer option }

type t = {
  station_name : string;
  jobs : job Channel.t;
  mutable busy : float;
  mutable in_system : int;
  mutable served : int;
}

let serve st () =
  while true do
    let job = Channel.recv st.jobs in
    Proc.sleep job.service;
    st.busy <- st.busy +. job.service;
    st.served <- st.served + 1;
    st.in_system <- st.in_system - 1;
    match job.notify with None -> () | Some resume -> resume (Ok ())
  done

let create ?(name = "station") sim =
  let st =
    {
      station_name = name;
      jobs = Channel.create ~name:(name ^ ".jobs") ();
      busy = 0.;
      in_system = 0;
      served = 0;
    }
  in
  ignore (Proc.spawn ~name:(name ^ ".server") sim (serve st));
  st

let name st = st.station_name

let check_service service =
  if service < 0. then invalid_arg "Station: negative service time"

let request st ~service =
  check_service service;
  st.in_system <- st.in_system + 1;
  Proc.suspend (fun _p resume ->
      Channel.send st.jobs { service; notify = Some resume };
      fun () -> ())

let post st ~service =
  check_service service;
  st.in_system <- st.in_system + 1;
  Channel.send st.jobs { service; notify = None }

let busy_time st = st.busy
let queue_length st = st.in_system
let completed st = st.served
