(** Random-variate helpers over a {!Random.State.t} (usually {!Sim.rng}). *)

(** Uniform float in [\[lo, hi)]. *)
val uniform : Random.State.t -> lo:float -> hi:float -> float

(** Exponential variate with the given mean. *)
val exponential : Random.State.t -> mean:float -> float

(** Standard-normal-based variate (Box–Muller) with [mean] and [stddev]. *)
val gaussian : Random.State.t -> mean:float -> stddev:float -> float

(** Bernoulli trial: [true] with probability [p] (clamped to [0,1]). *)
val flip : Random.State.t -> p:float -> bool

(** Uniform integer in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)
val int : Random.State.t -> int -> int

(** Pick a uniformly random element. @raise Invalid_argument on []. *)
val choice : Random.State.t -> 'a list -> 'a

(** Pick an index distributed by the given non-negative weights.
    @raise Invalid_argument if all weights are zero or any is negative. *)
val weighted_index : Random.State.t -> float array -> int
