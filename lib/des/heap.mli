(** Array-based binary min-heap.

    Used as the event queue of the simulator, but generic: the ordering is
    fixed at creation time by a comparison function. *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push h x] inserts [x]. Amortized O(log n). *)
val push : 'a t -> 'a -> unit

(** [pop h] removes and returns the minimum element.
    @raise Invalid_argument on an empty heap. *)
val pop : 'a t -> 'a

(** [peek h] is the minimum element without removing it, if any. *)
val peek : 'a t -> 'a option

(** [pop_opt h] is [Some (pop h)] unless the heap is empty. *)
val pop_opt : 'a t -> 'a option
