(** Single-server FIFO service station.

    Models a serial resource (a CPU core, a disk, a replica's apply loop):
    jobs queue up and are served one at a time, each occupying the server
    for its service time.  The cumulative busy time lets harnesses compute
    utilization over arbitrary windows — this is how the reproduction
    measures "controller CPU utilization" (Fig. 4). *)

type t

val create : ?name:string -> Sim.t -> t
val name : t -> string

(** [request st ~service] blocks the calling process until a job with the
    given service time (seconds) has been fully served, FIFO behind earlier
    jobs.  @raise Invalid_argument if [service] is negative. *)
val request : t -> service:float -> unit

(** [post st ~service] enqueues work without waiting for completion. *)
val post : t -> service:float -> unit

(** Cumulative time the server has spent serving jobs. *)
val busy_time : t -> float

(** Jobs queued or in service right now. *)
val queue_length : t -> int

(** Jobs fully served so far. *)
val completed : t -> int
