(** Cooperative processes on top of {!Sim}, implemented with effect handlers.

    A process is a plain OCaml function executed inside a deep effect
    handler.  It runs until it suspends ({!sleep}, {!suspend}, channel
    receive, …); suspensions are resumed by simulator events, so all process
    interleaving is deterministic.

    Processes can be {!kill}ed: a killed process is resumed with the
    {!Killed} exception at its current (or next) suspension point, which
    unwinds its stack and runs any [Fun.protect] finalizers — the mechanism
    behind TROPIC's KILL signal. *)

type t

exception Killed

(** A resumer completes a pending suspension exactly once; subsequent calls
    are ignored.  [Error e] resumes the process by raising [e] at the
    suspension point. *)
type 'a resumer = ('a, exn) result -> unit

(** [spawn ?name sim body] schedules a new process.  [body] starts running
    at the current simulation time (after pending events).  An exception
    escaping [body] is recorded via {!Sim.record_failure}, except {!Killed}. *)
val spawn : ?name:string -> Sim.t -> (unit -> unit) -> t

(** {1 Operations callable only from inside a process} *)

(** The calling process. *)
val self : unit -> t

(** Suspend for [d] simulated seconds. *)
val sleep : float -> unit

(** Let other ready processes run, then continue. *)
val yield : unit -> unit

(** Current simulation time (convenience for [Sim.now (sim_of (self ()))]). *)
val now : unit -> float

(** [suspend register] parks the process.  [register] is called immediately
    with the process and a one-shot resumer; it must arrange for the resumer
    to be called later and return a cleanup thunk, which is run if the
    suspension is aborted (e.g. the process is killed) before resumption.
    [register] must not perform effects. *)
val suspend : (t -> 'a resumer -> unit -> unit) -> 'a

(** Block until [p] finishes; its result is [Error Killed] if it was killed. *)
val await : t -> (unit, exn) result

(** {1 Operations callable from anywhere} *)

(** Request termination.  A suspended process is resumed immediately with
    {!Killed}; a running process dies at its next suspension point. *)
val kill : t -> unit

val alive : t -> bool
val name : t -> string
val id : t -> int
val sim_of : t -> Sim.t

(** [result p] is [Some r] once [p] has finished. *)
val result : t -> (unit, exn) result option
