type breaker_state = Closed | Tripped | Half_open

let breaker_state_to_string = function
  | Closed -> "closed"
  | Tripped -> "tripped"
  | Half_open -> "half-open"

type config = {
  enabled : bool;
  alpha : float;
  trip_threshold : float;
  cooldown : float;
  latency_ref : float;
  poll_interval : float;
}

let default_config =
  {
    enabled = true;
    alpha = 0.35;
    trip_threshold = 0.6;
    cooldown = 20.;
    latency_ref = 120.;
    poll_interval = 1.0;
  }

let disabled = { default_config with enabled = false }

type admission = { queue_high : int option; queue_low : int }

let no_admission = { queue_high = None; queue_low = 0 }

type event = { kind : string; root : string; txn : int option }

type entry = {
  ekey : string; (* root path, for event reporting *)
  mutable state : breaker_state;
  mutable failure : float;
  mutable timeout : float;
  mutable latency : float;
  mutable tripped_at : float;
  mutable probe : int option; (* txn id of the outstanding canary *)
  mutable probe_at : float;
}

type t = {
  cfg : config;
  entries : (string, entry) Hashtbl.t; (* keyed by root path *)
  mutable trips : int;
  mutable probes : int;
  mutable closes : int;
  mutable listener : (event -> unit) option;
}

let create cfg =
  { cfg; entries = Hashtbl.create 8; trips = 0; probes = 0; closes = 0;
    listener = None }

let set_listener t f = t.listener <- Some f

let emit t kind e ~txn =
  match t.listener with
  | None -> ()
  | Some f -> f { kind; root = e.ekey; txn }

let key root = Data.Path.to_string root

let entry t root =
  let k = key root in
  match Hashtbl.find_opt t.entries k with
  | Some e -> e
  | None ->
    let e =
      {
        ekey = k;
        state = Closed;
        failure = 0.;
        timeout = 0.;
        latency = 0.;
        tripped_at = 0.;
        probe = None;
        probe_at = 0.;
      }
    in
    Hashtbl.replace t.entries k e;
    e

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x
let combined e = Float.max e.failure (Float.max e.timeout e.latency)

let trip t e ~now =
  e.state <- Tripped;
  e.tripped_at <- now;
  e.probe <- None;
  t.trips <- t.trips + 1;
  emit t "breaker-trip" e ~txn:None

let gate t ~now ~root =
  if not t.cfg.enabled then `Admit
  else
    match Hashtbl.find_opt t.entries (key root) with
    | None -> `Admit
    | Some e ->
      (match e.state with
       | Closed -> `Admit
       | Tripped ->
         if now -. e.tripped_at >= t.cfg.cooldown then begin
           e.state <- Half_open;
           e.probe <- None;
           `Probe
         end
         else `Defer
       | Half_open ->
         (match e.probe with
          | None -> `Probe
          | Some _ ->
            (* A canary that never reported back (lost with a crashed
               worker) must not wedge the breaker half-open forever: give
               it one cooldown, then re-trip so a later gate re-probes. *)
            if now -. e.probe_at >= t.cfg.cooldown then trip t e ~now;
            `Defer))

let begin_probe t ~now ~root ~txn =
  if t.cfg.enabled then begin
    let e = entry t root in
    match e.state, e.probe with
    | Half_open, None ->
      e.probe <- Some txn;
      e.probe_at <- now;
      t.probes <- t.probes + 1;
      emit t "breaker-probe" e ~txn:(Some txn)
    | _, _ -> ()
  end

let observe t ~now ~root ~txn ~ok ~retries ~timeouts ~latency =
  if t.cfg.enabled then begin
    let e = entry t root in
    let is_probe = e.state = Half_open && e.probe = Some txn in
    let a = t.cfg.alpha in
    let blend score sample = ((1. -. a) *. score) +. (a *. clamp01 sample) in
    e.failure <-
      blend e.failure (if not ok then 1. else if retries > 0 then 0.5 else 0.);
    e.timeout <- blend e.timeout (if timeouts > 0 then 1. else 0.);
    e.latency <- blend e.latency (latency /. Float.max t.cfg.latency_ref 1e-9);
    if is_probe then begin
      if ok then begin
        (* Canary came back clean: close and start from a clean slate so
           stale pre-trip history cannot immediately re-trip. *)
        e.state <- Closed;
        e.probe <- None;
        e.failure <- 0.;
        e.timeout <- 0.;
        e.latency <- 0.;
        t.closes <- t.closes + 1;
        emit t "breaker-close" e ~txn:(Some txn)
      end
      else trip t e ~now
    end
    else
      match e.state with
      | Closed -> if combined e >= t.cfg.trip_threshold then trip t e ~now
      | Tripped | Half_open ->
        (* Stragglers started before the trip only feed the scores; state
           transitions out of Tripped go through gate's cooldown check. *)
        ()
  end

let forget_probe t ~txn =
  Hashtbl.iter
    (fun _ e -> if e.probe = Some txn then e.probe <- None)
    t.entries

let score t ~root =
  match Hashtbl.find_opt t.entries (key root) with
  | None -> 0.
  | Some e -> combined e

let state_of t ~root =
  match Hashtbl.find_opt t.entries (key root) with
  | None -> Closed
  | Some e -> e.state

let trips t = t.trips
let probes t = t.probes
let closes t = t.closes
