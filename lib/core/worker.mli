(** Physical-layer worker (paper §3.2).

    Workers compete for transactions on phyQ, replay each execution log
    against the devices (checking for TERM/KILL signals between actions)
    and report the outcome back to the controller through inputQ.

    In logical-only mode (paper §5) device calls are bypassed: the worker
    just models a small handling delay and reports success — the mode the
    performance evaluation (Figs. 4, 5) runs in. *)

type mode =
  | Full
  | Logical_only of float  (** stand-in handling delay per transaction *)

type t

(** [retry] (default {!Physical.no_retry}) is the per-action robustness
    policy applied to every log replayed by this worker.  [trace], when
    given, records a replay span (plus per-action/backoff/undo spans in
    [Full] mode) for every transaction this worker executes.  [ns] is the
    shard namespace whose queues this worker serves (default
    {!Proto.default_ns}); [client] must connect to that shard's
    coordination ensemble. *)
val create :
  ?retry:Physical.retry_policy ->
  ?trace:Trace.t ->
  ?ns:string ->
  name:string ->
  client:Coord.Client.t ->
  mode:mode ->
  devices:Physical.device_lookup ->
  sim:Des.Sim.t ->
  unit ->
  t

val start : t -> unit
val crash : t -> unit
val name : t -> string

(** Transactions physically executed so far, by outcome. *)
val executed : t -> int

val committed : t -> int
