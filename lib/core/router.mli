(** Transaction routing: classify a request's resource footprint against
    the shard partition.

    The footprint is derived from the request arguments — every absolute
    path argument names a resource the stored procedure will touch (the
    tcloud procedures all follow this convention), so the owning shards
    can be computed before any simulation.  A request whose paths all land
    on one shard is routed entirely locally; a request spanning shards is
    a cross-shard transaction, coordinated by the lowest-numbered
    participant via presumed-abort two-phase commit. *)

type route =
  | Single of int  (** every path owned by one shard *)
  | Cross of { coord : int; participants : int list }
      (** [coord] is the lowest owning shard; [participants] the rest *)

(** Absolute-path arguments of a request, in argument order. *)
val arg_paths : Data.Value.t list -> Data.Path.t list

(** Pathless requests route to shard 0. *)
val classify : Shard.t -> args:Data.Value.t list -> route

val is_cross : Shard.t -> args:Data.Value.t list -> bool
val pp : Format.formatter -> route -> unit
