(** Conflict-driven transaction scheduler (paper §3.1.1, refactored).

    The paper's todoQ is split into an explicit {e ready} queue and a
    {e blocked} table.  A transaction that hits a lock conflict moves to
    the blocked table (its waiter registration lives in {!Mglock}); when a
    completing transaction releases locks, only the waiters
    {!Mglock.release_all} reports are moved back to the ready queue —
    turning the per-completion retry cost from O(deferred × locks) rescans
    into O(woken) re-attempts.

    Both of the paper's policies are preserved:
    - [`Fifo]: strict submission order — while the queue head is blocked
      nothing behind it runs, so at most one transaction is ever parked.
    - [`Aggressive]: ready transactions flow past blocked ones; each
      conflicting transaction parks individually.

    Wake order is deterministic: woken transactions rejoin the {e front}
    of the ready queue in ascending txn id (= submission) order, so a
    long-deferred transaction is always retried before anything newer —
    the defer-don't-block no-deadlock argument and FIFO fairness carry
    over from the rescan implementation unchanged. *)

type policy = [ `Fifo | `Aggressive ]

(** Outcome of one admission attempt, reported by the controller callback:
    [`Started] (locks granted, handed to the physical layer), [`Finished]
    (terminal without starting — constraint violation, quarantine),
    [`Conflict] (locks refused; the callback has already parked the txn in
    the lock manager's waiter index via {!Mglock.wait}). *)
type attempt = [ `Started | `Finished | `Conflict ]

type t

val create : policy -> t
val policy : t -> policy

(** Enqueue a newly accepted transaction at the back of the ready queue.
    Returns [true] when the scheduler was idle (no ready, no blocked) —
    per §3.1.1, the only arrival that triggers an immediate drain. *)
val submit : t -> Txn.t -> bool

(** Run ready transactions through [attempt] until the queue is empty (or,
    under [`Fifo], until the head blocks).  [on_spurious] is called for a
    woken transaction whose re-attempt conflicts again. *)
val drain :
  t -> attempt:(Txn.t -> attempt) -> on_spurious:(Txn.t -> unit) -> unit

(** Move the given blocked transactions back to the ready queue (front,
    ascending id order).  Ids that are not blocked — signalled away, or
    internal lock owners — are ignored.  Returns how many actually moved. *)
val wake : t -> int list -> int

(** Drop a transaction wherever it sits (signal-before-start path).
    The caller is responsible for {!Mglock.cancel_wait} when the result is
    [`Blocked]. *)
val remove : t -> int -> [ `Ready | `Blocked | `Absent ]

val ready_length : t -> int
val blocked_length : t -> int

(** ready + blocked — the refactored equivalent of the old todoQ length. *)
val length : t -> int

val is_idle : t -> bool

(** Blocked txn ids, ascending. *)
val blocked_ids : t -> int list

(** Ready transactions in queue order, then blocked ones by id. *)
val to_list : t -> Txn.t list
