type route =
  | Single of int
  | Cross of { coord : int; participants : int list }

let arg_paths args =
  List.filter_map
    (function
      | Data.Value.Str s when String.length s > 0 && s.[0] = '/' ->
        (match Data.Path.of_string s with Ok p -> Some p | Error _ -> None)
      | Data.Value.Null | Data.Value.Bool _ | Data.Value.Int _
      | Data.Value.Float _ | Data.Value.Str _ | Data.Value.List _ ->
        None)
    args

let classify shard ~args =
  match
    arg_paths args
    |> List.map (Shard.owner_of shard)
    |> List.sort_uniq compare
  with
  | [] -> Single 0
  | [ sid ] -> Single sid
  | coord :: rest -> Cross { coord; participants = rest }

let is_cross shard ~args =
  match classify shard ~args with Single _ -> false | Cross _ -> true

let pp fmt = function
  | Single sid -> Format.fprintf fmt "single(%d)" sid
  | Cross { coord; participants } ->
    Format.fprintf fmt "cross(coord=%d, participants=[%s])" coord
      (String.concat "," (List.map string_of_int participants))
