(** Global integrity constraints — the "safety" in TROPIC's consistency.

    A constraint attaches to an entity kind (e.g. "every [vmHost] node must
    have enough memory for its VMs") and is evaluated on each node of that
    kind lying on the path from the root to a touched object.  The logical
    layer runs affected constraints after every simulated action and aborts
    the transaction on the first violation — before any physical resource
    is touched.

    Constraint placement also drives a locking rule (§3.1.3): a transaction
    writing an object takes an R lock on the object's highest constrained
    ancestor, making that subtree read-only to concurrent transactions so
    no concurrent write can invalidate the constraint check. *)

type violation = {
  constraint_name : string;
  at : Data.Path.t;       (** node the constraint was evaluated at *)
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

type t = {
  name : string;
  kind : string;  (** entity kind whose nodes this constraint guards *)
  check :
    Data.Tree.t -> Data.Path.t -> Data.Tree.node -> (unit, string) result;
      (** [check tree path node] where [node] has kind {!field-kind} *)
}

type registry

val create : unit -> registry
val register : registry -> t -> unit
val all : registry -> t list

(** Does any constraint attach to this kind? *)
val constrained_kind : registry -> string -> bool

(** Evaluate every constraint attached to the kind of each ancestor-or-self
    node of [path], and of every node inside the subtree rooted at [path]
    (missing nodes are skipped: a removal cannot violate kind-local
    constraints).  Outermost violations first. *)
val check_path :
  registry -> Data.Tree.t -> Data.Path.t -> violation list

(** Outermost ancestor-or-self of [path] whose node kind carries a
    constraint — the node the R-lock rule applies to. *)
val highest_constrained_ancestor :
  registry -> Data.Tree.t -> Data.Path.t -> Data.Path.t option
