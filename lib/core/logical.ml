type success = {
  new_tree : Data.Tree.t;
  log : Xlog.t;
  locks : (Data.Path.t * Mglock.mode) list;
  actions : int;
}

let infer_locks env ~guard_locks ~tree ~reads ~writes =
  let write_locks = List.map (fun path -> (path, Mglock.W)) writes in
  let read_locks = List.map (fun path -> (path, Mglock.R)) reads in
  (* The constraint-ancestor rule: R on the outermost constrained node above
     each written object. *)
  let guards =
    if not guard_locks then []
    else
      List.filter_map
      (fun path ->
        match
          Constraints.highest_constrained_ancestor (Dsl.constraints_of env)
            tree path
        with
          | Some ancestor -> Some (ancestor, Mglock.R)
          | None -> None)
        writes
  in
  write_locks @ read_locks @ guards

let simulate ?(guard_locks = true) env ~tree ~proc ~args =
  let ctx = Dsl.fresh_ctx env tree in
  match Dsl.run_proc env ctx ~proc ~args with
  | () ->
    let new_tree = Dsl.current_tree ctx in
    let locks =
      infer_locks env ~guard_locks ~tree:new_tree ~reads:(Dsl.reads_of ctx)
        ~writes:(Dsl.writes_of ctx)
    in
    Ok
      {
        new_tree;
        log = Dsl.log_of ctx;
        locks;
        actions = Dsl.action_count ctx;
      }
  | exception Dsl.Abort reason -> Error reason

let rollback env ~tree ~log =
  let rec undo_all tree = function
    | [] -> Ok tree
    | (record : Xlog.record) :: rest ->
      (match Dsl.apply_undo env tree record with
       | Ok tree' -> undo_all tree' rest
       | Error reason -> Error (record.Xlog.index, reason))
  in
  undo_all tree (List.rev log)
