type mode = Full | Logical_only of float

type spec = {
  controllers : int;
  workers : int;
  mode : mode;
  coord_replicas : int;
  coord_config : Coord.Types.config;
  controller_config : Controller.config;
  controller_session_timeout : float;
  submit_clients : int;
  client_slots : int;
  worker_retry : Physical.retry_policy;
  trace : Trace.t option;
      (* span recorder shared by every controller and worker *)
}

let default_spec =
  {
    controllers = 3;
    workers = 1;
    mode = Full;
    coord_replicas = 3;
    coord_config = Coord.Types.default_config;
    controller_config = Controller.default_config;
    controller_session_timeout = 10.0;
    submit_clients = 4;
    client_slots = 64;
    worker_retry = Physical.no_retry;
    trace = None;
  }

type t = {
  psim : Des.Sim.t;
  pspec : spec;
  penv : Dsl.env;
  pdevices : Physical.device_lookup;
  pdevice_roots : Data.Path.t list;
  ensemble : Coord.Ensemble.t;
  control : Controller.t array;
  work : Worker.t array;
  submitters : Coord.Client.t array;
  mutable next_submitter : int;
  (* await support: key -> wakeup channels, fed by per-client dispatchers *)
  awaiters : (string, unit Des.Channel.t list ref) Hashtbl.t;
}

let sim t = t.psim
let spec t = t.pspec
let controllers t = t.control
let workers t = t.work
let coord t = t.ensemble

let leader_controller t =
  Array.fold_left
    (fun found c ->
      match found with
      | Some _ -> found
      | None -> if Controller.is_leader c then Some c else None)
    None t.control

let await_leader_controller t =
  let rec wait () =
    match leader_controller t with
    | Some c -> c
    | None ->
      Des.Proc.sleep 0.25;
      wait ()
  in
  wait ()

let logical_tree t =
  match leader_controller t with
  | Some c -> Controller.tree c
  | None -> failwith "Platform.logical_tree: no leading controller"

let controller_cpu_busy t =
  Array.fold_left (fun acc c -> acc +. Controller.cpu_busy_time c) 0. t.control

let coord_io_busy t =
  match Coord.Ensemble.leader_id t.ensemble with
  | Some leader ->
    Coord.Replica.station_busy_time (Coord.Ensemble.replica t.ensemble leader)
  | None -> 0.

(* ------------------------------------------------------------------ *)
(* Construction *)

let worker_mode = function
  | Full -> Worker.Full
  | Logical_only delay -> Worker.Logical_only delay

let create pspec env ~initial_tree ~devices psim =
  let ensemble =
    Coord.Ensemble.create ~replicas:pspec.coord_replicas
      ~clients:pspec.client_slots ~config:pspec.coord_config psim
  in
  let device_lookup = Physical.lookup_of_list devices in
  let device_roots = List.map Devices.Device.root devices in
  let control =
    Array.init pspec.controllers (fun i ->
        let cname = Printf.sprintf "controller-%d" i in
        let client =
          Coord.Ensemble.connect ensemble
            ~session_timeout:pspec.controller_session_timeout ~name:cname ()
        in
        Controller.create ?trace:pspec.trace ~name:cname ~client ~env
          ~config:pspec.controller_config ~devices:device_lookup ~device_roots
          ~sim:psim ())
  in
  let work =
    Array.init pspec.workers (fun i ->
        let wname = Printf.sprintf "worker-%d" i in
        let client = Coord.Ensemble.connect ensemble ~name:wname () in
        Worker.create ~retry:pspec.worker_retry ?trace:pspec.trace ~name:wname
          ~client ~mode:(worker_mode pspec.mode) ~devices:device_lookup
          ~sim:psim ())
  in
  let submitters =
    Array.init pspec.submit_clients (fun i ->
        Coord.Ensemble.connect ensemble
          ~name:(Printf.sprintf "submitter-%d" i) ())
  in
  let t =
    {
      psim;
      pspec;
      penv = env;
      pdevices = device_lookup;
      pdevice_roots = device_roots;
      ensemble;
      control;
      work;
      submitters;
      next_submitter = 0;
      awaiters = Hashtbl.create 256;
    }
  in
  (* Watch-event dispatcher: wake every awaiter registered on the key a
     watch fired for.  One dispatcher per submit client. *)
  Array.iteri
    (fun i client ->
      ignore
        (Des.Proc.spawn
           ~name:(Printf.sprintf "await-dispatch-%d" i)
           psim
           (fun () ->
             let events = Coord.Client.events client in
             while not (Coord.Client.closed client) do
               let event = Des.Channel.recv events in
               match Hashtbl.find_opt t.awaiters event.Coord.Types.watched with
               | Some channels ->
                 List.iter (fun ch -> Des.Channel.send ch ()) !channels
               | None -> ()
             done)))
    submitters;
  (* Bootstrap: the initial logical tree is checkpoint 0; controllers wait
     for it before recovering. *)
  ignore
    (Des.Proc.spawn ~name:"bootstrap" psim (fun () ->
         let snapshot =
           Data.Sexp.List
             [ Data.Sexp.of_int 0; Data.Tree.to_sexp initial_tree ]
         in
         match
           Coord.Client.write t.submitters.(0) ~key:Proto.checkpoint_key
             ~value:(Data.Sexp.to_string snapshot) ()
         with
         | Ok _ -> ()
         | Error e ->
           failwith
             (Printf.sprintf "bootstrap failed: %s"
                (Format.asprintf "%a" Coord.Types.pp_op_error e))));
  Array.iter Controller.start control;
  Array.iter Worker.start work;
  t

(* ------------------------------------------------------------------ *)
(* Client API *)

let pick_submitter t =
  let client = t.submitters.(t.next_submitter mod Array.length t.submitters) in
  t.next_submitter <- t.next_submitter + 1;
  client

let enqueue_input t item =
  let client = pick_submitter t in
  Coord.Recipes.enqueue client ~queue:Proto.input_queue
    (Proto.input_to_string item)

let submit t ~proc ~args =
  let key = enqueue_input t (Proto.Request { proc; args }) in
  match Proto.seq_of_item_key key with
  | Ok txn_id -> txn_id
  | Error reason -> failwith ("Platform.submit: " ^ reason)

let txn_state_via client txn_id =
  match Coord.Client.get client (Txn.record_key txn_id) with
  | None -> None
  | Some (value, _) ->
    (match Txn.of_string value with
     | Ok txn -> Some txn.Txn.state
     | Error _ -> None)

let txn_state t txn_id = txn_state_via (pick_submitter t) txn_id

let register_awaiter t key channel =
  let channels =
    match Hashtbl.find_opt t.awaiters key with
    | Some existing -> existing
    | None ->
      let fresh = ref [] in
      Hashtbl.replace t.awaiters key fresh;
      fresh
  in
  channels := channel :: !channels

let unregister_awaiter t key channel =
  match Hashtbl.find_opt t.awaiters key with
  | None -> ()
  | Some channels ->
    channels := List.filter (fun ch -> ch != channel) !channels;
    if !channels = [] then Hashtbl.remove t.awaiters key

let await t txn_id =
  let client = pick_submitter t in
  let key = Txn.record_key txn_id in
  let wakeup = Des.Channel.create ~name:"await" () in
  register_awaiter t key wakeup;
  Fun.protect
    ~finally:(fun () -> unregister_awaiter t key wakeup)
    (fun () ->
      let rec wait () =
        match txn_state_via client txn_id with
        | Some state when Txn.is_terminal state -> state
        | Some _ | None ->
          Coord.Client.watch_key client key;
          (* Re-check: the transition may have happened before the watch was
             armed; fall back to a poll in case the event is lost. *)
          (match txn_state_via client txn_id with
           | Some state when Txn.is_terminal state -> state
           | Some _ | None ->
             ignore (Des.Channel.recv_timeout wakeup ~timeout:1.0);
             wait ())
      in
      wait ())

let run_txn t ~proc ~args =
  let txn_id = submit t ~proc ~args in
  await t txn_id

(* Submit the whole batch before awaiting any of it, so the requests are
   pipelined through the input queue and the controller can interleave
   their scheduling — the goal-state executor runs each plan wave this
   way. *)
let submit_batch t specs =
  let ids = List.map (fun (proc, args) -> submit t ~proc ~args) specs in
  List.map (fun id -> id, await t id) ids

let signal t txn_id s = ignore (enqueue_input t (Proto.Control (Proto.Signal (txn_id, s))))
let reload t path = ignore (enqueue_input t (Proto.Control (Proto.Reload path)))
let repair t path = ignore (enqueue_input t (Proto.Control (Proto.Repair path)))

let kill_controller t i = Controller.crash t.control.(i)

(* A crashed controller's coordination session is gone for good; a restart
   is a brand-new controller instance (fresh session, fresh recovery) that
   keeps the slot and the name — exactly a process supervisor restarting
   the daemon on the same machine. *)
let restart_controller t i =
  let cname = Controller.name t.control.(i) in
  let client =
    Coord.Ensemble.connect t.ensemble
      ~session_timeout:t.pspec.controller_session_timeout ~name:cname ()
  in
  let c =
    Controller.create ?trace:t.pspec.trace ~name:cname ~client ~env:t.penv
      ~config:t.pspec.controller_config ~devices:t.pdevices
      ~device_roots:t.pdevice_roots ~sim:t.psim ()
  in
  t.control.(i) <- c;
  Controller.start c

let kill_worker t i = Worker.crash t.work.(i)

(* Same supervisor model as [restart_controller]: the replacement worker is
   a fresh instance (new session — the old ephemeral executing markers die
   with the crashed session) under the same name and slot. *)
let restart_worker t i =
  let wname = Worker.name t.work.(i) in
  let client = Coord.Ensemble.connect t.ensemble ~name:wname () in
  let w =
    Worker.create ~retry:t.pspec.worker_retry ?trace:t.pspec.trace ~name:wname
      ~client ~mode:(worker_mode t.pspec.mode) ~devices:t.pdevices ~sim:t.psim
      ()
  in
  t.work.(i) <- w;
  Worker.start w

let leader_index t =
  let found = ref None in
  Array.iteri
    (fun i c -> if !found = None && Controller.is_leader c then found := Some i)
    t.control;
  !found

type leader_stats = {
  ls_leader : int option;
  ls_committed : int;
  ls_aborted : int;
  ls_failed : int;
  ls_sheds : int;
  ls_todo : int;
}

let no_leader_stats =
  {
    ls_leader = None;
    ls_committed = 0;
    ls_aborted = 0;
    ls_failed = 0;
    ls_sheds = 0;
    ls_todo = 0;
  }

let leader_stats t =
  match leader_index t with
  | None -> no_leader_stats
  | Some i ->
    let c = t.control.(i) in
    let st = Controller.stats c in
    {
      ls_leader = Some i;
      ls_committed = st.Controller.committed;
      ls_aborted = st.Controller.aborted;
      ls_failed = st.Controller.failed;
      ls_sheds = st.Controller.sheds;
      ls_todo = Controller.todo_length c;
    }
