type mode = Full | Logical_only of float

type spec = {
  controllers : int;
  workers : int;
  shards : int;
  mode : mode;
  coord_replicas : int;
  coord_config : Coord.Types.config;
  controller_config : Controller.config;
  controller_session_timeout : float;
  submit_clients : int;
  client_slots : int;
  persist_clients : int;
      (* extra coordination sessions per controller, used to overlap the
         txn-record writes of an input burst (0 = synchronous persists) *)
  worker_retry : Physical.retry_policy;
  trace : Trace.t option;
      (* span recorder shared by every controller and worker *)
}

let default_spec =
  {
    controllers = 3;
    workers = 1;
    shards = 1;
    mode = Full;
    coord_replicas = 3;
    coord_config = Coord.Types.default_config;
    controller_config = Controller.default_config;
    controller_session_timeout = 10.0;
    submit_clients = 4;
    client_slots = 64;
    persist_clients = 0;
    worker_retry = Physical.no_retry;
    trace = None;
  }

(* Controllers and workers live in flat shard-major arrays: shard [s]'s
   replica group occupies slots [s*n .. s*n + n-1].  A single-shard
   platform therefore has exactly the pre-sharding layout (and nemeses
   that pick random slots keep working unchanged). *)
type t = {
  psim : Des.Sim.t;
  pspec : spec;
  penv : Dsl.env;
  pdevices : Physical.device_lookup;
  pdevice_roots : Data.Path.t list;
  pshard : Shard.t;  (* base assignment, viewed from shard 0 *)
  ensembles : Coord.Ensemble.t array;  (* one per shard; slot 0 is global *)
  control : Controller.t array;
  work : Worker.t array;
  submitters : Coord.Client.t array array;  (* per shard *)
  retired : Controller.stats array;
      (* per shard: counters of controller instances retired by
         [restart_controller], so fail-overs do not erase transaction
         totals (a crashed leader's commits would otherwise vanish from
         the run summary with its in-memory stats record) *)
  mutable next_submitter : int;
  (* await support: key -> wakeup channels, fed by per-client dispatchers.
     Namespaced keys are globally unique, so one table serves all shards. *)
  awaiters : (string, unit Des.Channel.t list ref) Hashtbl.t;
}

let sim t = t.psim
let spec t = t.pspec
let controllers t = t.control
let workers t = t.work
let coord t = t.ensembles.(0)
let coord_ensemble t sid = t.ensembles.(sid)

(* Membership counters summed across shards (each ensemble's instances
   share one stats record; here we merge the per-shard records). *)
let membership_stats t =
  let total = Coord.Types.fresh_membership_stats () in
  Array.iter
    (fun e ->
      let s = Coord.Ensemble.membership_stats e in
      total.Coord.Types.joins <- total.Coord.Types.joins + s.Coord.Types.joins;
      total.Coord.Types.leaves <- total.Coord.Types.leaves + s.Coord.Types.leaves;
      total.Coord.Types.catchups <-
        total.Coord.Types.catchups + s.Coord.Types.catchups;
      total.Coord.Types.stale_sessions_rejected <-
        total.Coord.Types.stale_sessions_rejected
        + s.Coord.Types.stale_sessions_rejected)
    t.ensembles;
  total

(* Group-commit counters, merged the same way (the batch-size histogram
   sums bucket-wise; max_batch takes the max). *)
let group_commit_stats t =
  let total = Coord.Types.fresh_group_stats () in
  Array.iter
    (fun e ->
      let s = Coord.Ensemble.group_stats e in
      total.Coord.Types.flushes <- total.Coord.Types.flushes + s.Coord.Types.flushes;
      total.Coord.Types.flush_full <-
        total.Coord.Types.flush_full + s.Coord.Types.flush_full;
      total.Coord.Types.flush_timeout <-
        total.Coord.Types.flush_timeout + s.Coord.Types.flush_timeout;
      total.Coord.Types.batched_cmds <-
        total.Coord.Types.batched_cmds + s.Coord.Types.batched_cmds;
      total.Coord.Types.acks_deferred <-
        total.Coord.Types.acks_deferred + s.Coord.Types.acks_deferred;
      total.Coord.Types.unsafe_acks <-
        total.Coord.Types.unsafe_acks + s.Coord.Types.unsafe_acks;
      if s.Coord.Types.max_batch > total.Coord.Types.max_batch then
        total.Coord.Types.max_batch <- s.Coord.Types.max_batch;
      Array.iteri
        (fun i n ->
          total.Coord.Types.batch_hist.(i) <-
            total.Coord.Types.batch_hist.(i) + n)
        s.Coord.Types.batch_hist)
    t.ensembles;
  total

let shard_count t = t.pspec.shards

(* Shard responsible for a transaction: where its single-shard execution
   runs, or the coordinator (lowest touched shard) of a cross-shard one. *)
let route t ~args =
  if t.pspec.shards = 1 then 0
  else
    match Router.classify t.pshard ~args with
    | Router.Single sid -> sid
    | Router.Cross { coord; _ } -> coord

let shard_of_path t path = Shard.owner_of t.pshard path
let shard_of_txn t txn_id = txn_id mod t.pspec.shards
let ns_of_txn t txn_id = Proto.ns_of_shard (shard_of_txn t txn_id)

let controller_slots t sid =
  let n = t.pspec.controllers in
  List.init n (fun j -> (sid * n) + j)

let shard_leader_index t sid =
  List.find_opt
    (fun i -> Controller.is_leader t.control.(i))
    (controller_slots t sid)

let shard_leader t sid =
  Option.map (fun i -> t.control.(i)) (shard_leader_index t sid)

let await_shard_leader t sid =
  let rec wait () =
    match shard_leader t sid with
    | Some c -> c
    | None ->
      Des.Proc.sleep 0.25;
      wait ()
  in
  wait ()

let leader_controller t = shard_leader t 0
let await_leader_controller t = await_shard_leader t 0
let leader_index t = shard_leader_index t 0

let logical_tree t =
  match leader_controller t with
  | Some c -> Controller.tree c
  | None -> failwith "Platform.logical_tree: no leading controller"

(* The platform-wide logical tree: shard 0's view with every other
   shard's owned subtrees grafted in from that shard's leader (the local
   copies of foreign subtrees are cosmetic and go stale).  Blocks until
   every shard has a leader. *)
let composite_tree t =
  let base = Controller.tree (await_shard_leader t 0) in
  let rec graft tree sid =
    if sid >= t.pspec.shards then tree
    else begin
      let c = await_shard_leader t sid in
      let shard_tree = Controller.tree c in
      let tree =
        List.fold_left
          (fun tree root ->
            match Data.Tree.subtree shard_tree root with
            | Error _ -> tree
            | Ok node ->
              (match Data.Tree.replace_subtree tree root node with
               | Ok tree' -> tree'
               | Error _ -> tree))
          tree
          (Shard.roots_of t.pshard sid)
      in
      graft tree (sid + 1)
    end
  in
  graft base 1

let controller_cpu_busy t =
  Array.fold_left (fun acc c -> acc +. Controller.cpu_busy_time c) 0. t.control

let coord_io_busy t =
  Array.fold_left
    (fun acc ensemble ->
      match Coord.Ensemble.leader_id ensemble with
      | Some leader ->
        acc +. Coord.Replica.station_busy_time (Coord.Ensemble.replica ensemble leader)
      | None -> acc)
    0. t.ensembles

(* ------------------------------------------------------------------ *)
(* Construction *)

let worker_mode = function
  | Full -> Worker.Full
  | Logical_only delay -> Worker.Logical_only delay

let connect_controller t sid cname =
  let client =
    Coord.Ensemble.connect t.ensembles.(sid)
      ~session_timeout:t.pspec.controller_session_timeout ~name:cname ()
  in
  let gclient =
    if sid = 0 then None
    else
      Some
        (Coord.Ensemble.connect t.ensembles.(0)
           ~session_timeout:t.pspec.controller_session_timeout
           ~name:(cname ^ "-g") ())
  in
  let persist_pool =
    List.init
      (max 0 t.pspec.persist_clients)
      (fun i ->
        Coord.Ensemble.connect t.ensembles.(sid)
          ~session_timeout:t.pspec.controller_session_timeout
          ~name:(Printf.sprintf "%s-p%d" cname i)
          ())
  in
  Controller.create ?trace:t.pspec.trace
    ~shard:(Shard.view t.pshard ~sid)
    ?gclient ~persist_pool ~name:cname ~client ~env:t.penv
    ~config:t.pspec.controller_config ~devices:t.pdevices
    ~device_roots:t.pdevice_roots ~sim:t.psim ()

let connect_worker t sid wname =
  let client = Coord.Ensemble.connect t.ensembles.(sid) ~name:wname () in
  Worker.create ~retry:t.pspec.worker_retry ?trace:t.pspec.trace
    ~ns:(Proto.ns_of_shard sid) ~name:wname ~client
    ~mode:(worker_mode t.pspec.mode) ~devices:t.pdevices ~sim:t.psim ()

let create pspec env ~initial_tree ~devices psim =
  let pspec = { pspec with shards = max 1 pspec.shards } in
  let on_event =
    Option.map
      (fun tracer { Coord.Ensemble.ev_name; ev_attrs } ->
        Trace.instant tracer ~txn:0 ~cat:"membership" ~name:ev_name
          ~attrs:ev_attrs ())
      pspec.trace
  in
  let ensembles =
    Array.init pspec.shards (fun _ ->
        Coord.Ensemble.create ~replicas:pspec.coord_replicas
          ~clients:pspec.client_slots ~config:pspec.coord_config ?on_event psim)
  in
  let device_lookup = Physical.lookup_of_list devices in
  let device_roots = List.map Devices.Device.root devices in
  let pshard = Shard.make ~sid:0 ~shards:pspec.shards device_roots in
  let submitters =
    Array.init pspec.shards (fun sid ->
        Array.init pspec.submit_clients (fun i ->
            Coord.Ensemble.connect ensembles.(sid)
              ~name:(Printf.sprintf "submitter-%d-%d" sid i) ()))
  in
  let t =
    {
      psim;
      pspec;
      penv = env;
      pdevices = device_lookup;
      pdevice_roots = device_roots;
      pshard;
      ensembles;
      control = [||];
      work = [||];
      submitters;
      retired = Array.init pspec.shards (fun _ -> Controller.fresh_stats ());
      next_submitter = 0;
      awaiters = Hashtbl.create 256;
    }
  in
  let control =
    Array.init
      (pspec.shards * pspec.controllers)
      (fun i ->
        let sid = i / pspec.controllers in
        connect_controller t sid (Printf.sprintf "controller-%d" i))
  in
  let work =
    Array.init
      (pspec.shards * pspec.workers)
      (fun i ->
        let sid = i / pspec.workers in
        connect_worker t sid (Printf.sprintf "worker-%d" i))
  in
  let t = { t with control; work } in
  (* Watch-event dispatcher: wake every awaiter registered on the key a
     watch fired for.  One dispatcher per submit client. *)
  Array.iteri
    (fun sid shard_submitters ->
      Array.iteri
        (fun i client ->
          ignore
            (Des.Proc.spawn
               ~name:(Printf.sprintf "await-dispatch-%d-%d" sid i)
               psim
               (fun () ->
                 let events = Coord.Client.events client in
                 while not (Coord.Client.closed client) do
                   let event = Des.Channel.recv events in
                   match
                     Hashtbl.find_opt t.awaiters event.Coord.Types.watched
                   with
                   | Some channels ->
                     List.iter (fun ch -> Des.Channel.send ch ()) !channels
                   | None -> ()
                 done)))
        shard_submitters)
    t.submitters;
  (* Bootstrap: the full initial logical tree is checkpoint 0 of {e every}
     shard; each controller group waits for its own before recovering.
     (Foreign subtrees in a shard's tree are cosmetic copies — only the
     owned roots are served, see [composite_tree].) *)
  ignore
    (Des.Proc.spawn ~name:"bootstrap" psim (fun () ->
         let snapshot =
           Data.Sexp.List
             [ Data.Sexp.of_int 0; Data.Tree.to_sexp initial_tree ]
         in
         let value = Data.Sexp.to_string snapshot in
         for sid = 0 to pspec.shards - 1 do
           match
             Coord.Client.write
               t.submitters.(sid).(0)
               ~key:(Proto.checkpoint_key_ns (Proto.ns_of_shard sid))
               ~value ()
           with
           | Ok _ -> ()
           | Error e ->
             failwith
               (Printf.sprintf "bootstrap of shard %d failed: %s" sid
                  (Format.asprintf "%a" Coord.Types.pp_op_error e))
         done));
  Array.iter Controller.start control;
  Array.iter Worker.start work;
  t

(* ------------------------------------------------------------------ *)
(* Client API *)

let pick_submitter t sid =
  let shard_submitters = t.submitters.(sid) in
  let client =
    shard_submitters.(t.next_submitter mod Array.length shard_submitters)
  in
  t.next_submitter <- t.next_submitter + 1;
  client

let enqueue_input t sid item =
  let client = pick_submitter t sid in
  Coord.Recipes.enqueue client
    ~queue:(Proto.input_queue_ns (Proto.ns_of_shard sid))
    (Proto.input_to_string item)

(* Transaction ids carry their shard in the residue: [id = seq * shards +
   sid].  The accepting controller derives the same id from the queue-item
   sequence number, so the platform can compute it at submit time without
   a round trip. *)
let submit t ~proc ~args =
  let sid = route t ~args in
  let key = enqueue_input t sid (Proto.Request { proc; args }) in
  match Proto.seq_of_item_key key with
  | Ok seq -> (seq * t.pspec.shards) + sid
  | Error reason -> failwith ("Platform.submit: " ^ reason)

let txn_state_via client ~ns txn_id =
  match Coord.Client.get client (Txn.record_key_ns ns txn_id) with
  | None -> None
  | Some (value, _) ->
    (match Txn.of_string value with
     | Ok txn -> Some txn.Txn.state
     | Error _ -> None)

let txn_state t txn_id =
  let sid = shard_of_txn t txn_id in
  txn_state_via (pick_submitter t sid) ~ns:(ns_of_txn t txn_id) txn_id

let register_awaiter t key channel =
  let channels =
    match Hashtbl.find_opt t.awaiters key with
    | Some existing -> existing
    | None ->
      let fresh = ref [] in
      Hashtbl.replace t.awaiters key fresh;
      fresh
  in
  channels := channel :: !channels

let unregister_awaiter t key channel =
  match Hashtbl.find_opt t.awaiters key with
  | None -> ()
  | Some channels ->
    channels := List.filter (fun ch -> ch != channel) !channels;
    if !channels = [] then Hashtbl.remove t.awaiters key

let await t txn_id =
  let sid = shard_of_txn t txn_id in
  let ns = ns_of_txn t txn_id in
  let client = pick_submitter t sid in
  let key = Txn.record_key_ns ns txn_id in
  let wakeup = Des.Channel.create ~name:"await" () in
  register_awaiter t key wakeup;
  Fun.protect
    ~finally:(fun () -> unregister_awaiter t key wakeup)
    (fun () ->
      let rec wait () =
        match txn_state_via client ~ns txn_id with
        | Some state when Txn.is_terminal state -> state
        | Some _ | None ->
          Coord.Client.watch_key client key;
          (* Re-check: the transition may have happened before the watch was
             armed; fall back to a poll in case the event is lost. *)
          (match txn_state_via client ~ns txn_id with
           | Some state when Txn.is_terminal state -> state
           | Some _ | None ->
             ignore (Des.Channel.recv_timeout wakeup ~timeout:1.0);
             wait ())
      in
      wait ())

let run_txn t ~proc ~args =
  let txn_id = submit t ~proc ~args in
  await t txn_id

(* Submit the whole batch before awaiting any of it, so the requests are
   pipelined through the input queue and the controller can interleave
   their scheduling — the goal-state executor runs each plan wave this
   way. *)
let submit_batch t specs =
  let ids = List.map (fun (proc, args) -> submit t ~proc ~args) specs in
  List.map (fun id -> id, await t id) ids

let signal t txn_id s =
  ignore
    (enqueue_input t (shard_of_txn t txn_id)
       (Proto.Control (Proto.Signal (txn_id, s))))

let reload t path =
  ignore
    (enqueue_input t
       (Shard.owner_of t.pshard path)
       (Proto.Control (Proto.Reload path)))

let repair t path =
  ignore
    (enqueue_input t
       (Shard.owner_of t.pshard path)
       (Proto.Control (Proto.Repair path)))

let kill_controller t i = Controller.crash t.control.(i)

(* A crashed controller's coordination session is gone for good; a restart
   is a brand-new controller instance (fresh session, fresh recovery) that
   keeps the slot and the name — exactly a process supervisor restarting
   the daemon on the same machine. *)
let restart_controller t i =
  let cname = Controller.name t.control.(i) in
  let sid = i / t.pspec.controllers in
  (* The replaced instance's counters would die with it; bank them so the
     shard's cumulative totals survive the fail-over. *)
  Controller.absorb_stats ~into:t.retired.(sid)
    (Controller.stats t.control.(i));
  let c = connect_controller t sid cname in
  t.control.(i) <- c;
  Controller.start c

let shard_retired_stats t sid = t.retired.(sid)

let kill_worker t i = Worker.crash t.work.(i)

(* Same supervisor model as [restart_controller]: the replacement worker is
   a fresh instance (new session — the old ephemeral executing markers die
   with the crashed session) under the same name and slot. *)
let restart_worker t i =
  let wname = Worker.name t.work.(i) in
  let sid = i / t.pspec.workers in
  let w = connect_worker t sid wname in
  t.work.(i) <- w;
  Worker.start w

type leader_stats = {
  ls_leader : int option;
  ls_committed : int;
  ls_aborted : int;
  ls_failed : int;
  ls_sheds : int;
  ls_todo : int;
}

let no_leader_stats =
  {
    ls_leader = None;
    ls_committed = 0;
    ls_aborted = 0;
    ls_failed = 0;
    ls_sheds = 0;
    ls_todo = 0;
  }

(* Platform totals: every shard leader's counters summed.  [ls_leader]
   reports shard 0's leading slot (the historical single-shard field). *)
let leader_stats t =
  let acc = ref no_leader_stats in
  let any = ref false in
  for sid = 0 to t.pspec.shards - 1 do
    match shard_leader t sid with
    | None -> ()
    | Some c ->
      any := true;
      let st = Controller.stats c in
      acc :=
        {
          ls_leader =
            (if sid = 0 then shard_leader_index t 0 else !acc.ls_leader);
          ls_committed = !acc.ls_committed + st.Controller.committed;
          ls_aborted = !acc.ls_aborted + st.Controller.aborted;
          ls_failed = !acc.ls_failed + st.Controller.failed;
          ls_sheds = !acc.ls_sheds + st.Controller.sheds;
          ls_todo = !acc.ls_todo + Controller.todo_length c;
        }
  done;
  if !any then !acc else no_leader_stats
