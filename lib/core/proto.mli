(** Payloads carried through the distributed queues.

    [inputQ] multiplexes three kinds of items (paper Fig. 1/2): client
    orchestration requests, execution results from physical workers, and
    operator control commands (reconciliation, signals).  [phyQ] carries
    bare transaction ids — workers fetch the execution log from the
    transaction record. *)

type signal = Term | Kill

val signal_to_string : signal -> string

type control =
  | Reload of Data.Path.t             (** physical -> logical sync *)
  | Repair of Data.Path.t             (** logical -> physical sync *)
  | Signal of int * signal            (** unstick a transaction *)

type outcome =
  | Phy_committed
  | Phy_aborted of string  (** an action failed; undo chain completed *)
  | Phy_failed of string   (** an undo failed too: layers now inconsistent *)

val pp_outcome : Format.formatter -> outcome -> unit

(** Physical-layer robustness counters a worker accumulated while
    executing one transaction (retried attempts, transient device
    errors observed, per-action deadline expiries), plus phase timings
    in sim seconds so the controller can build per-phase latency
    breakdowns without a trace attached. *)
type exec_stats = {
  retries : int;
  transient_failures : int;
  timeouts : int;
  replay_s : float;
  undo_s : float;
}

val no_exec_stats : exec_stats

type input_item =
  | Request of { proc : string; args : Data.Value.t list }
  | Result of { txn_id : int; outcome : outcome; exec : exec_stats }
  | Control of control

val input_to_string : input_item -> string
val input_of_string : string -> (input_item, string) result

(** Extract the numeric suffix of a queue item key
    (e.g. ".../item-0000000042" -> 42). *)
val seq_of_item_key : string -> (int, string) result

(** {1 Well-known coordination-service keys} *)

val election_path : string
val input_queue : string
val phy_queue : string
val checkpoint_key : string
val txns_prefix : string

(** Key carrying a pending TERM/KILL signal for a transaction. *)
val signal_key : int -> string

(** Ephemeral marker a worker holds while physically executing a txn. *)
val executing_key : int -> string
