(** Payloads carried through the distributed queues.

    [inputQ] multiplexes three kinds of items (paper Fig. 1/2): client
    orchestration requests, execution results from physical workers, and
    operator control commands (reconciliation, signals).  [phyQ] carries
    bare transaction ids — workers fetch the execution log from the
    transaction record. *)

type signal = Term | Kill

val signal_to_string : signal -> string

type control =
  | Reload of Data.Path.t             (** physical -> logical sync *)
  | Repair of Data.Path.t             (** logical -> physical sync *)
  | Signal of int * signal            (** unstick a transaction *)

type outcome =
  | Phy_committed
  | Phy_aborted of string  (** an action failed; undo chain completed *)
  | Phy_failed of string   (** an undo failed too: layers now inconsistent *)

val pp_outcome : Format.formatter -> outcome -> unit

(** Physical-layer robustness counters a worker accumulated while
    executing one transaction (retried attempts, transient device
    errors observed, per-action deadline expiries), plus phase timings
    in sim seconds so the controller can build per-phase latency
    breakdowns without a trace attached. *)
type exec_stats = {
  retries : int;
  transient_failures : int;
  timeouts : int;
  replay_s : float;
  undo_s : float;
}

val no_exec_stats : exec_stats

type input_item =
  | Request of { proc : string; args : Data.Value.t list }
  | Result of { txn_id : int; outcome : outcome; exec : exec_stats }
  | Control of control

val input_to_string : input_item -> string
val input_of_string : string -> (input_item, string) result

(** Extract the numeric suffix of a queue item key
    (e.g. ".../item-0000000042" -> 42). *)
val seq_of_item_key : string -> (int, string) result

(** {1 Well-known coordination-service keys}

    Every shard runs the full controller/worker key layout under its own
    namespace on its own coordination ensemble.  Shard 0 keeps the
    historical ["/tropic"] prefix, so a single-shard platform is laid out
    exactly as before sharding. *)

val ns_of_shard : int -> string
val default_ns : string
val election_path_ns : string -> string
val input_queue_ns : string -> string
val phy_queue_ns : string -> string
val checkpoint_key_ns : string -> string
val txns_prefix_ns : string -> string
val signals_prefix_ns : string -> string
val signal_key_ns : string -> int -> string
val executing_key_ns : string -> int -> string

(** Durable replay cursor: highest log index whose physical action has
    completed and not been undone.  Lets a replay after a worker or
    leader crash {e resume} instead of re-running non-idempotent actions
    whose effects already landed on the device. *)
val progress_key_ns : string -> int -> string

(** Shard-0 values of the namespaced keys above. *)

val election_path : string
val input_queue : string
val phy_queue : string
val checkpoint_key : string
val txns_prefix : string

(** Key carrying a pending TERM/KILL signal for a transaction. *)
val signal_key : int -> string

(** Ephemeral marker a worker holds while physically executing a txn. *)
val executing_key : int -> string

(** {1 Cross-shard two-phase commit (presumed abort)}

    2PC state lives on the {e global} (shard 0) ensemble: a durable
    message queue per shard plus per-transaction decision and finish
    records.  The decision record is written with an atomic create —
    first writer wins, everyone else obeys what they read; a missing
    record means abort. *)

(** Durable 2PC mailbox of shard [sid]. *)
val twopc_queue : int -> string

(** Decision record of global transaction [gid] ([Commit]/[Abort]). *)
val twopc_decision_key : int -> string

(** Finish record of [gid]: whether the physical replay committed. *)
val twopc_finish_key : int -> string

type twopc_msg =
  | Prepare of { gid : int; coord : int; roots : Data.Path.t list }
      (** coordinator -> participant: W-lock [roots], snapshot them *)
  | Prepared of {
      gid : int;
      shard : int;
      ok : bool;
      reason : string;  (** refusal reason when [ok = false] *)
      snaps : (Data.Path.t * Data.Sexp.t) list;
          (** locked subtree snapshots the coordinator simulates against *)
    }
  | Decide of { gid : int; commit : bool; log : Xlog.t }
      (** coordinator -> participant; [log] is the participant's slice *)
  | Finish of { gid : int; ok : bool }
      (** physical outcome: [ok = false] rolls the slice back *)

val twopc_to_string : twopc_msg -> string
val twopc_of_string : string -> (twopc_msg, string) result

(** Decision-record payload: on commit, the per-shard log slices ride
    along so a participant recovering from a crash can apply its share
    even after the coordinator finished and pruned everything else. *)
type twopc_decision = Commit of (int * Xlog.t) list | Abort

val decision_to_string : twopc_decision -> string
val decision_of_string : string -> (twopc_decision, string) result
