(** Per-device health scoring and circuit breaking.

    The physical layer already reports per-transaction execution stats
    (retries / transient failures / timeouts) through [Proto.Result]; the
    health tracker folds them — together with the commit outcome and the
    observed latency — into three EWMA scores per device subtree, each
    kept in [0, 1]:

    - failure: 1 on a physical abort/failure, ½ on a commit that needed
      retries, 0 on a clean commit;
    - timeout: 1 when any action hit its deadline, 0 otherwise;
    - latency: observed latency clamped against [latency_ref].

    The combined score is the max of the three.  When it crosses
    [trip_threshold] the subtree's circuit breaker trips:

    {v Closed --score >= threshold--> Tripped --cooldown--> Half_open
       Half_open --canary commits--> Closed (scores reset)
       Half_open --canary fails / probe lost--> Tripped v}

    While Tripped, {!gate} answers [`Defer] so the controller parks
    transactions that write under the subtree {e before} lock acquisition
    or hardware contact.  Once the cooldown elapses the breaker moves to
    Half_open and admits exactly one canary transaction ([`Probe]); its
    outcome decides whether the breaker closes or re-trips.  A canary
    that never reports back (lost with a crashed worker) is given one
    cooldown before the breaker re-trips and later re-probes.

    All timestamps are simulation time; the tracker itself has no clock,
    callers pass [~now]. *)

type breaker_state = Closed | Tripped | Half_open

val breaker_state_to_string : breaker_state -> string

type config = {
  enabled : bool;
  alpha : float;  (** EWMA weight of the newest sample, in (0, 1] *)
  trip_threshold : float;  (** combined score that trips the breaker *)
  cooldown : float;  (** seconds Tripped must age before Half_open *)
  latency_ref : float;  (** latency mapping to score 1.0, seconds *)
  poll_interval : float;  (** health-monitor wake period, seconds *)
}

(** Enabled; alpha 0.35, threshold 0.6, cooldown 20s, latency_ref 120s,
    poll 1s. *)
val default_config : config

val disabled : config

(** Admission-control watermarks for the controller's pending queue.
    [queue_high = Some h] sheds new arrivals once the pending count
    reaches [h]; shedding stays on (hysteresis) until the count drains
    back to [queue_low]. *)
type admission = { queue_high : int option; queue_low : int }

val no_admission : admission

type t

val create : config -> t

(** Breaker transition notification: [kind] is ["breaker-trip"],
    ["breaker-probe"] or ["breaker-close"]; [root] the subtree's root
    path; [txn] the canary transaction when one is involved. *)
type event = { kind : string; root : string; txn : int option }

(** At most one listener; used by the controller to surface breaker
    transitions into the span trace. *)
val set_listener : t -> (event -> unit) -> unit

(** Admission decision for one device root.  [`Admit] — breaker closed
    (or tracking disabled); [`Probe] — breaker half-open with the canary
    slot free, the caller may start this transaction as the probe;
    [`Defer] — breaker tripped (or a canary is already out), park the
    transaction.  Calling [gate] is what ages Tripped into Half_open and
    re-trips a breaker whose canary was lost. *)
val gate : t -> now:float -> root:Data.Path.t -> [ `Admit | `Probe | `Defer ]

(** Claim the half-open canary slot for [txn].  No-op unless the breaker
    is Half_open with no outstanding probe. *)
val begin_probe : t -> now:float -> root:Data.Path.t -> txn:int -> unit

(** Feed one finished transaction's outcome into the scores and the
    breaker state machine.  [ok] means physically committed.  A Tripped
    breaker only updates scores — it never changes state here (only
    {!gate} can age it out).  If [txn] is the outstanding canary, the
    breaker closes on success (scores reset) and re-trips on failure. *)
val observe :
  t ->
  now:float ->
  root:Data.Path.t ->
  txn:int ->
  ok:bool ->
  retries:int ->
  timeouts:int ->
  latency:float ->
  unit

(** Drop [txn]'s canary claim without a verdict (operator KILL): frees
    the probe slot so the next {!gate} can send another canary. *)
val forget_probe : t -> txn:int -> unit

(** Combined score (max of the three EWMAs); 0 for untracked roots. *)
val score : t -> root:Data.Path.t -> float

val state_of : t -> root:Data.Path.t -> breaker_state
val trips : t -> int  (** Closed/Half_open → Tripped transitions *)

val probes : t -> int  (** canary slots claimed *)

val closes : t -> int  (** Half_open → Closed transitions *)
