(** Shard identity and resource-tree partitioning.

    The resource hierarchy is partitioned by {e device root}: each root is
    owned by exactly one shard, and a shard's controller replica group
    serves only transactions whose write set stays inside its owned
    subtrees.  The assignment is computed once from the sorted root list
    (round-robin, so sequentially numbered hosts spread evenly) and shared
    verbatim by every controller and client-side router — ownership is a
    pure function, no directory service involved. *)

type t = {
  sid : int;  (** this shard's id, [0 <= sid < count] *)
  count : int;
  assignment : (Data.Path.t * int) list;  (** device root -> owning shard *)
}

(** The unsharded platform: one shard owning everything ([count = 1]). *)
val singleton : roots:Data.Path.t list -> t

(** Round-robin assignment of the (sorted, deduplicated) roots. *)
val partition : shards:int -> Data.Path.t list -> (Data.Path.t * int) list

(** [make ~sid ~shards roots] — shard [sid]'s view of the full partition. *)
val make : sid:int -> shards:int -> Data.Path.t list -> t

(** Same partition, seen from another shard. *)
val view : t -> sid:int -> t

val roots_of : t -> int -> Data.Path.t list
val owned_roots : t -> Data.Path.t list

(** Owning shard of an arbitrary path — total: paths inside an assigned
    subtree (or on its root-ward spine) map to that subtree's owner,
    anything else falls back to a deterministic string hash, so every
    participant agrees on ownership without coordination. *)
val owner_of : t -> Data.Path.t -> int

val owns : t -> Data.Path.t -> bool
