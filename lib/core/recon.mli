(** Reconciliation planning (paper §4).

    Pure logic only: compare a device's exported physical state with the
    logical subtree and derive the repair actions (logical → physical
    synchronization).  Executing the plan, locking, and quarantine
    bookkeeping live in the controller.

    Repairs are rule-driven: a rule says how to force one attribute of one
    entity kind to its logical value (e.g. a [vm] whose [state] should be
    ["running"] is repaired with [startVM]).  Differences with no rule —
    nodes that appeared or vanished physically — are reported as
    unrepairable; the operator handles those with [reload] or by marking
    the resource unusable. *)

type rule = {
  rule_kind : string;  (** entity kind of the node the attribute lives on *)
  rule_attr : string;
  make_action :
    node_name:string ->
    target:Data.Value.t ->
    (string * Data.Value.t list) option;
      (** action (and args) to run on the node's parent device object;
          [None] if this target value cannot be repaired *)
}

type step = {
  at : Data.Path.t;  (** object the action targets (the node's parent) *)
  action : string;
  args : Data.Value.t list;
}

val pp_step : Format.formatter -> step -> unit

type plan = {
  steps : step list;
  unrepaired : Data.Diff.change list;
}

(** [plan_repair ~rules ~at ~logical ~physical] — changes that turn the
    physical subtree into the logical one, translated through [rules].
    [at] is the subtree's root path (used to address the steps). *)
val plan_repair :
  rules:rule list ->
  at:Data.Path.t ->
  logical:Data.Tree.node ->
  physical:Data.Tree.node ->
  plan
