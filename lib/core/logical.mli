(** Logical-layer execution (paper §3.1.2): simulate a stored procedure
    against the logical tree, producing the execution log, the transformed
    tree, and the inferred lock set — all without touching any device.

    Lock inference: every read takes R on the object, every action takes W,
    and every write additionally takes R on the object's highest
    constrained ancestor (so concurrent transactions cannot invalidate the
    constraint checks this simulation performed). *)

type success = {
  new_tree : Data.Tree.t;
  log : Xlog.t;
  locks : (Data.Path.t * Mglock.mode) list;
  actions : int;  (** number of actions simulated (CPU-model input) *)
}

(** [simulate env ~tree ~proc ~args] — [Error reason] on a constraint
    violation, a failed action precondition or an explicit abort; the input
    tree is unaffected either way (it is persistent).  [guard_locks]
    (default true) controls the constraint-ancestor R-lock rule — exposed
    only so the benchmark harness can ablate it. *)
val simulate :
  ?guard_locks:bool ->
  Dsl.env ->
  tree:Data.Tree.t ->
  proc:string ->
  args:Data.Value.t list ->
  (success, string) result

(** Roll the logical tree back by applying the log's undo actions in
    reverse chronological order.  [Error (index, reason)] identifies the
    first record whose undo could not be applied (irreversible action or
    inapplicable undo) — the cross-layer inconsistency case. *)
val rollback :
  Dsl.env -> tree:Data.Tree.t -> log:Xlog.t ->
  (Data.Tree.t, int * string) result
