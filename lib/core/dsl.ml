exception Abort of string

type action_def = {
  act_name : string;
  act_kind : string;
  logical :
    Data.Tree.t -> Data.Path.t -> Data.Value.t list ->
    (Data.Tree.t, string) result;
  undo_of :
    Data.Tree.t -> Data.Path.t -> Data.Value.t list ->
    (string * Data.Value.t list) option;
}

type env = {
  actions : (string * string, action_def) Hashtbl.t; (* kind, action name *)
  procs : (string, proc_body) Hashtbl.t;
  constraints : Constraints.registry;
}

and ctx = {
  env : env;
  mutable tree : Data.Tree.t;
  mutable rev_log : Xlog.record list;
  mutable reads : Data.Path.t list;
  mutable writes : Data.Path.t list;
  mutable n_actions : int;
}

and proc_body = ctx -> Data.Value.t list -> unit

let create_env () =
  {
    actions = Hashtbl.create 32;
    procs = Hashtbl.create 16;
    constraints = Constraints.create ();
  }

let constraints_of env = env.constraints

let register_action env def =
  Hashtbl.replace env.actions (def.act_kind, def.act_name) def

let register_proc env ~name body = Hashtbl.replace env.procs name body
let find_action env ~kind ~action = Hashtbl.find_opt env.actions (kind, action)
let has_proc env name = Hashtbl.mem env.procs name
let abort message = raise (Abort message)

let fresh_ctx env tree =
  { env; tree; rev_log = []; reads = []; writes = []; n_actions = 0 }

let current_tree ctx = ctx.tree
let log_of ctx = List.rev ctx.rev_log
let reads_of ctx = List.rev ctx.reads
let writes_of ctx = List.rev ctx.writes
let action_count ctx = ctx.n_actions

(* ------------------------------------------------------------------ *)
(* Queries *)

let query_opt ctx path =
  ctx.reads <- path :: ctx.reads;
  Data.Tree.find ctx.tree path

let query ctx path =
  match query_opt ctx path with
  | Some node -> node
  | None -> abort (Printf.sprintf "no such resource %s" (Data.Path.to_string path))

let get_attr ctx path attr =
  ctx.reads <- path :: ctx.reads;
  Data.Tree.get_attr ctx.tree path attr

let children ctx path =
  ctx.reads <- path :: ctx.reads;
  Option.value (Data.Tree.children ctx.tree path) ~default:[]

(* ------------------------------------------------------------------ *)
(* Actions *)

let resolve_action env tree path action =
  match Data.Tree.find tree path with
  | None ->
    Error (Printf.sprintf "no such resource %s" (Data.Path.to_string path))
  | Some node ->
    (match find_action env ~kind:node.Data.Tree.kind ~action with
     | Some def -> Ok def
     | None ->
       Error
         (Printf.sprintf "entity %s has no action %s" node.Data.Tree.kind
            action))

let act ctx path ~action ~args =
  let def =
    match resolve_action ctx.env ctx.tree path action with
    | Ok def -> def
    | Error message -> abort message
  in
  let pre_tree = ctx.tree in
  (match def.logical ctx.tree path args with
   | Ok tree' -> ctx.tree <- tree'
   | Error message ->
     abort (Printf.sprintf "%s at %s: %s" action (Data.Path.to_string path) message));
  ctx.n_actions <- ctx.n_actions + 1;
  let undo, undo_args =
    match def.undo_of pre_tree path args with
    | Some (undo_name, undo_args) -> (Some undo_name, undo_args)
    | None -> (None, [])
  in
  ctx.rev_log <-
    { Xlog.index = ctx.n_actions; path; action; args; undo; undo_args }
    :: ctx.rev_log;
  ctx.writes <- path :: ctx.writes;
  match Constraints.check_path ctx.env.constraints ctx.tree path with
  | [] -> ()
  | violation :: _ ->
    abort (Format.asprintf "%a" Constraints.pp_violation violation)

(* ------------------------------------------------------------------ *)
(* Procedures *)

let run_proc env ctx ~proc ~args =
  match Hashtbl.find_opt env.procs proc with
  | Some body -> body ctx args
  | None -> abort (Printf.sprintf "no such stored procedure %s" proc)

let call ctx ~proc ~args = run_proc ctx.env ctx ~proc ~args

(* ------------------------------------------------------------------ *)
(* Log replay (recovery) and logical rollback *)

let apply_record env tree (record : Xlog.record) =
  match resolve_action env tree record.Xlog.path record.Xlog.action with
  | Error _ as e -> e
  | Ok def -> def.logical tree record.Xlog.path record.Xlog.args

let apply_undo env tree (record : Xlog.record) =
  match record.Xlog.undo with
  | None ->
    Error (Printf.sprintf "action %s is irreversible" record.Xlog.action)
  | Some undo_name ->
    (match resolve_action env tree record.Xlog.path undo_name with
     | Error _ as e -> e
     | Ok def -> def.logical tree record.Xlog.path record.Xlog.undo_args)
