type t = {
  sid : int;
  count : int;
  assignment : (Data.Path.t * int) list;
}

let singleton ~roots =
  { sid = 0; count = 1; assignment = List.map (fun r -> (r, 0)) roots }

let partition ~shards roots =
  let shards = max 1 shards in
  let sorted = List.sort_uniq Data.Path.compare roots in
  List.mapi (fun i root -> (root, i mod shards)) sorted

let make ~sid ~shards roots =
  let shards = max 1 shards in
  { sid; count = shards; assignment = partition ~shards roots }

let view t ~sid = { t with sid }

let roots_of t sid =
  List.filter_map
    (fun (root, owner) -> if owner = sid then Some root else None)
    t.assignment

let owned_roots t = roots_of t t.sid

(* Deterministic fallback for paths outside every assigned subtree (the
   hierarchy above the device roots, or paths of a workload the partition
   never saw): a stable string hash, so [owner_of] is total and every
   replica — and the router on the client side — agrees. *)
let hash_owner t path =
  let s = Data.Path.to_string path in
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land 0x3FFFFFFF) s;
  !h mod t.count

let owner_of t path =
  let rec scan = function
    | [] -> hash_owner t path
    | (root, owner) :: rest ->
      if Data.Path.is_prefix root path || Data.Path.is_prefix path root then
        owner
      else scan rest
  in
  scan t.assignment

let owns t path = owner_of t path = t.sid
