(** TROPIC's orchestration programming constructs (§2.2).

    Services are built from three kinds of definitions registered in an
    {!env}:

    - {b actions}: atomic state transitions of one resource, defined twice —
      the logical implementation here (a pure tree transformation used by
      simulation, rollback and recovery replay) and the physical one on the
      device (dispatched by action name);
    - {b queries}: read-only inspection of the logical tree;
    - {b stored procedures}: orchestration logic composing queries, actions
      and other procedures.  Procedures run only in the logical layer; what
      reaches the physical layer is the execution log they generate.

    A {!ctx} is one transaction's logical execution in progress: the tree
    being transformed, the accumulated execution log, and the read/write
    sets from which locks are inferred.  Every {!act} checks the affected
    constraints and raises {!Abort} on a violation. *)

exception Abort of string

type action_def = {
  act_name : string;
  act_kind : string;  (** entity kind of the node the action targets *)
  logical :
    Data.Tree.t -> Data.Path.t -> Data.Value.t list ->
    (Data.Tree.t, string) result;
  undo_of :
    Data.Tree.t -> Data.Path.t -> Data.Value.t list ->
    (string * Data.Value.t list) option;
      (** [undo_of pre_tree path args] — the undo action and its arguments,
          computed against the tree {e before} the action applied (so a
          remove can record how to recreate); [None] = irreversible *)
}

type env
type ctx

(** [proc_body ctx args] — a stored procedure. *)
type proc_body = ctx -> Data.Value.t list -> unit

val create_env : unit -> env
val constraints_of : env -> Constraints.registry
val register_action : env -> action_def -> unit
val register_proc : env -> name:string -> proc_body -> unit
val find_action : env -> kind:string -> action:string -> action_def option
val has_proc : env -> string -> bool

(** {1 Primitives usable inside stored procedures} *)

(** Read a node; records an R intent on the path. @raise Abort if absent. *)
val query : ctx -> Data.Path.t -> Data.Tree.node

val query_opt : ctx -> Data.Path.t -> Data.Tree.node option

(** Attribute of a node (recorded read); [None] if node or attribute absent. *)
val get_attr : ctx -> Data.Path.t -> string -> Data.Value.t option

(** Children (name, node) of a node (recorded read); [] if absent. *)
val children : ctx -> Data.Path.t -> (string * Data.Tree.node) list

(** Execute an action on the node at [path]: applies its logical
    implementation, appends an execution-log record, records a W intent,
    and checks affected constraints.  @raise Abort on any failure. *)
val act : ctx -> Data.Path.t -> action:string -> args:Data.Value.t list -> unit

(** Invoke another stored procedure inline. *)
val call : ctx -> proc:string -> args:Data.Value.t list -> unit

(** Abort the transaction explicitly. *)
val abort : string -> 'a

(** The tree as currently transformed by this transaction. *)
val current_tree : ctx -> Data.Tree.t

(** {1 Execution support (used by the logical layer and recovery)} *)

val fresh_ctx : env -> Data.Tree.t -> ctx
val run_proc : env -> ctx -> proc:string -> args:Data.Value.t list -> unit
val log_of : ctx -> Xlog.t
val reads_of : ctx -> Data.Path.t list
val writes_of : ctx -> Data.Path.t list
val action_count : ctx -> int

(** Re-apply one log record's logical effect (recovery replay). *)
val apply_record : env -> Data.Tree.t -> Xlog.record -> (Data.Tree.t, string) result

(** Apply one log record's logical undo (rollback); [Error] if the record
    is irreversible or the undo does not apply. *)
val apply_undo : env -> Data.Tree.t -> Xlog.record -> (Data.Tree.t, string) result
