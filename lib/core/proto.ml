type signal = Term | Kill

let signal_to_string = function Term -> "TERM" | Kill -> "KILL"

let signal_of_string = function
  | "TERM" -> Ok Term
  | "KILL" -> Ok Kill
  | s -> Error (Printf.sprintf "unknown signal %S" s)

type control =
  | Reload of Data.Path.t
  | Repair of Data.Path.t
  | Signal of int * signal

type outcome =
  | Phy_committed
  | Phy_aborted of string
  | Phy_failed of string

let pp_outcome fmt = function
  | Phy_committed -> Format.pp_print_string fmt "committed"
  | Phy_aborted reason -> Format.fprintf fmt "aborted (%s)" reason
  | Phy_failed reason -> Format.fprintf fmt "failed (%s)" reason

type exec_stats = {
  retries : int;
  transient_failures : int;
  timeouts : int;
  replay_s : float;  (** sim seconds the worker spent replaying the log *)
  undo_s : float;  (** sim seconds spent rolling back, 0 when none *)
}

let no_exec_stats =
  { retries = 0; transient_failures = 0; timeouts = 0; replay_s = 0.;
    undo_s = 0. }

type input_item =
  | Request of { proc : string; args : Data.Value.t list }
  | Result of { txn_id : int; outcome : outcome; exec : exec_stats }
  | Control of control

let outcome_to_sexp =
  let open Data.Sexp in
  function
  | Phy_committed -> List [ Atom "committed" ]
  | Phy_aborted reason -> List [ Atom "aborted"; Atom reason ]
  | Phy_failed reason -> List [ Atom "failed"; Atom reason ]

let outcome_of_sexp = function
  | Data.Sexp.List [ Data.Sexp.Atom "committed" ] -> Ok Phy_committed
  | Data.Sexp.List [ Data.Sexp.Atom "aborted"; Data.Sexp.Atom reason ] ->
    Ok (Phy_aborted reason)
  | Data.Sexp.List [ Data.Sexp.Atom "failed"; Data.Sexp.Atom reason ] ->
    Ok (Phy_failed reason)
  | other -> Error ("bad outcome: " ^ Data.Sexp.to_string other)

let to_sexp item =
  let open Data.Sexp in
  match item with
  | Request { proc; args } ->
    List
      [ Atom "request"; Atom proc; List (List.map Data.Value.to_sexp args) ]
  | Result { txn_id; outcome; exec } ->
    List
      [ Atom "result"; of_int txn_id; outcome_to_sexp outcome;
        of_int exec.retries; of_int exec.transient_failures;
        of_int exec.timeouts; Atom (Printf.sprintf "%.6f" exec.replay_s);
        Atom (Printf.sprintf "%.6f" exec.undo_s) ]
  | Control (Reload path) ->
    List [ Atom "control"; Atom "reload"; Data.Path.to_sexp path ]
  | Control (Repair path) ->
    List [ Atom "control"; Atom "repair"; Data.Path.to_sexp path ]
  | Control (Signal (txn_id, signal)) ->
    List
      [ Atom "control"; Atom "signal"; of_int txn_id;
        Atom (signal_to_string signal) ]

let ( let* ) r f = Result.bind r f

let of_sexp sexp =
  match sexp with
  | Data.Sexp.List [ Data.Sexp.Atom "request"; Data.Sexp.Atom proc; Data.Sexp.List args ] ->
    let* args =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          let* v = Data.Value.of_sexp s in
          Ok (v :: acc))
        (Ok []) args
      |> Result.map List.rev
    in
    Ok (Request { proc; args })
  (* Pre-robustness form: no exec counters. *)
  | Data.Sexp.List [ Data.Sexp.Atom "result"; txn_id; outcome ] ->
    let* txn_id = Data.Sexp.to_int txn_id in
    let* outcome = outcome_of_sexp outcome in
    Ok (Result { txn_id; outcome; exec = no_exec_stats })
  (* PR 3 form: integer exec counters, no phase timings. *)
  | Data.Sexp.List
      [ Data.Sexp.Atom "result"; txn_id; outcome; retries; transient; timeouts
      ] ->
    let* txn_id = Data.Sexp.to_int txn_id in
    let* outcome = outcome_of_sexp outcome in
    let* retries = Data.Sexp.to_int retries in
    let* transient_failures = Data.Sexp.to_int transient in
    let* timeouts = Data.Sexp.to_int timeouts in
    Ok
      (Result
         { txn_id; outcome;
           exec =
             { no_exec_stats with retries; transient_failures; timeouts } })
  | Data.Sexp.List
      [ Data.Sexp.Atom "result"; txn_id; outcome; retries; transient; timeouts;
        Data.Sexp.Atom replay_s; Data.Sexp.Atom undo_s ] ->
    let* txn_id = Data.Sexp.to_int txn_id in
    let* outcome = outcome_of_sexp outcome in
    let* retries = Data.Sexp.to_int retries in
    let* transient_failures = Data.Sexp.to_int transient in
    let* timeouts = Data.Sexp.to_int timeouts in
    let to_float what s =
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "bad %s %S" what s)
    in
    let* replay_s = to_float "replay_s" replay_s in
    let* undo_s = to_float "undo_s" undo_s in
    Ok
      (Result
         { txn_id; outcome;
           exec = { retries; transient_failures; timeouts; replay_s; undo_s }
         })
  | Data.Sexp.List [ Data.Sexp.Atom "control"; Data.Sexp.Atom "reload"; path ] ->
    let* path = Data.Path.of_sexp path in
    Ok (Control (Reload path))
  | Data.Sexp.List [ Data.Sexp.Atom "control"; Data.Sexp.Atom "repair"; path ] ->
    let* path = Data.Path.of_sexp path in
    Ok (Control (Repair path))
  | Data.Sexp.List
      [ Data.Sexp.Atom "control"; Data.Sexp.Atom "signal"; txn_id; Data.Sexp.Atom s ] ->
    let* txn_id = Data.Sexp.to_int txn_id in
    let* signal = signal_of_string s in
    Ok (Control (Signal (txn_id, signal)))
  | other -> Error ("Proto.of_sexp: " ^ Data.Sexp.to_string other)

let input_to_string item = Data.Sexp.to_string (to_sexp item)

let input_of_string s =
  let* sexp = Data.Sexp.of_string s in
  of_sexp sexp

let seq_of_item_key key =
  match String.rindex_opt key '-' with
  | None -> Error (Printf.sprintf "bad item key %S" key)
  | Some i ->
    let digits = String.sub key (i + 1) (String.length key - i - 1) in
    (match int_of_string_opt digits with
     | Some n -> Ok n
     | None -> Error (Printf.sprintf "bad item key %S" key))

(* Shard 0 keeps the historical namespace, so a single-shard platform is
   bit-identical with the pre-sharding layout (checkpoints, records and
   queues land on the same keys). *)
let ns_of_shard sid = if sid = 0 then "/tropic" else Printf.sprintf "/tropic/s%d" sid
let election_path_ns ns = ns ^ "/election"
let input_queue_ns ns = ns ^ "/inputQ"
let phy_queue_ns ns = ns ^ "/phyQ"
let checkpoint_key_ns ns = ns ^ "/checkpoint"
let txns_prefix_ns ns = ns ^ "/txns"
let signals_prefix_ns ns = ns ^ "/signals"
let signal_key_ns ns txn_id = Printf.sprintf "%s/signals/s%010d" ns txn_id

let executing_key_ns ns txn_id =
  Printf.sprintf "%s/executing/e%010d" ns txn_id

(* Highest log index whose physical action completed (and has not been
   undone): a replaying worker resumes after it instead of re-running
   non-idempotent actions that already took effect on the device. *)
let progress_key_ns ns txn_id =
  Printf.sprintf "%s/progress/p%010d" ns txn_id

let default_ns = ns_of_shard 0
let election_path = election_path_ns default_ns
let input_queue = input_queue_ns default_ns
let phy_queue = phy_queue_ns default_ns
let checkpoint_key = checkpoint_key_ns default_ns
let txns_prefix = txns_prefix_ns default_ns
let signal_key = signal_key_ns default_ns
let executing_key = executing_key_ns default_ns

(* ------------------------------------------------------------------ *)
(* Cross-shard two-phase commit (presumed abort).

   All 2PC state lives on the global (shard 0) ensemble: one durable
   message queue per shard, plus per-transaction decision and finish
   records.  Decision records are written with an atomic create, so the
   first writer — normally the coordinator deciding commit, or a timed-out
   participant deciding abort — wins, and everyone else obeys what they
   read.  A missing decision record means abort (presumed abort). *)

let twopc_queue sid = Printf.sprintf "/tropic/2pc/q%03d" sid
let twopc_decision_key gid = Printf.sprintf "/tropic/2pc/d%010d" gid
let twopc_finish_key gid = Printf.sprintf "/tropic/2pc/f%010d" gid

type twopc_msg =
  | Prepare of { gid : int; coord : int; roots : Data.Path.t list }
  | Prepared of {
      gid : int;
      shard : int;
      ok : bool;
      reason : string;
      snaps : (Data.Path.t * Data.Sexp.t) list;
    }
  | Decide of { gid : int; commit : bool; log : Xlog.t }
  | Finish of { gid : int; ok : bool }

let twopc_to_sexp msg =
  let open Data.Sexp in
  match msg with
  | Prepare { gid; coord; roots } ->
    List
      [ Atom "prepare"; of_int gid; of_int coord;
        List (List.map Data.Path.to_sexp roots) ]
  | Prepared { gid; shard; ok; reason; snaps } ->
    List
      [ Atom "prepared"; of_int gid; of_int shard;
        Atom (if ok then "ok" else "no"); Atom reason;
        List
          (List.map
             (fun (path, tree) -> List [ Data.Path.to_sexp path; tree ])
             snaps) ]
  | Decide { gid; commit; log } ->
    List
      [ Atom "decide"; of_int gid; Atom (if commit then "commit" else "abort");
        Xlog.to_sexp log ]
  | Finish { gid; ok } ->
    List [ Atom "finish"; of_int gid; Atom (if ok then "ok" else "rollback") ]

let paths_of_sexps sexps =
  List.fold_left
    (fun acc s ->
      let* acc = acc in
      let* p = Data.Path.of_sexp s in
      Ok (p :: acc))
    (Ok []) sexps
  |> Result.map List.rev

let twopc_of_sexp sexp =
  match sexp with
  | Data.Sexp.List
      [ Data.Sexp.Atom "prepare"; gid; coord; Data.Sexp.List roots ] ->
    let* gid = Data.Sexp.to_int gid in
    let* coord = Data.Sexp.to_int coord in
    let* roots = paths_of_sexps roots in
    Ok (Prepare { gid; coord; roots })
  | Data.Sexp.List
      [ Data.Sexp.Atom "prepared"; gid; shard; Data.Sexp.Atom ok;
        Data.Sexp.Atom reason; Data.Sexp.List snaps ] ->
    let* gid = Data.Sexp.to_int gid in
    let* shard = Data.Sexp.to_int shard in
    let* snaps =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          match s with
          | Data.Sexp.List [ path; tree ] ->
            let* path = Data.Path.of_sexp path in
            Ok ((path, tree) :: acc)
          | other -> Error ("bad snap: " ^ Data.Sexp.to_string other))
        (Ok []) snaps
      |> Result.map List.rev
    in
    Ok (Prepared { gid; shard; ok = ok = "ok"; reason; snaps })
  | Data.Sexp.List
      [ Data.Sexp.Atom "decide"; gid; Data.Sexp.Atom decision; log ] ->
    let* gid = Data.Sexp.to_int gid in
    let* log = Xlog.of_sexp log in
    Ok (Decide { gid; commit = decision = "commit"; log })
  | Data.Sexp.List [ Data.Sexp.Atom "finish"; gid; Data.Sexp.Atom ok ] ->
    let* gid = Data.Sexp.to_int gid in
    Ok (Finish { gid; ok = ok = "ok" })
  | other -> Error ("Proto.twopc_of_sexp: " ^ Data.Sexp.to_string other)

let twopc_to_string msg = Data.Sexp.to_string (twopc_to_sexp msg)

let twopc_of_string s =
  let* sexp = Data.Sexp.of_string s in
  twopc_of_sexp sexp

(* Decision-record payload: the outcome plus, on commit, the per-shard
   log slices — so a participant that crashed between its vote and the
   decision can still apply its share after recovery, even if the
   coordinator has already finished and gone quiet. *)
type twopc_decision = Commit of (int * Xlog.t) list | Abort

let decision_to_string d =
  let open Data.Sexp in
  to_string
    (match d with
    | Abort -> List [ Atom "abort" ]
    | Commit slices ->
      List
        [ Atom "commit";
          List
            (List.map
               (fun (shard, log) -> List [ of_int shard; Xlog.to_sexp log ])
               slices) ])

let decision_of_string s =
  let* sexp = Data.Sexp.of_string s in
  match sexp with
  | Data.Sexp.List [ Data.Sexp.Atom "abort" ] -> Ok Abort
  | Data.Sexp.List [ Data.Sexp.Atom "commit"; Data.Sexp.List slices ] ->
    let* slices =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          match s with
          | Data.Sexp.List [ shard; log ] ->
            let* shard = Data.Sexp.to_int shard in
            let* log = Xlog.of_sexp log in
            Ok ((shard, log) :: acc)
          | other -> Error ("bad slice: " ^ Data.Sexp.to_string other))
        (Ok []) slices
      |> Result.map List.rev
    in
    Ok (Commit slices)
  | other -> Error ("Proto.decision_of_string: " ^ Data.Sexp.to_string other)
