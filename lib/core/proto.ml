type signal = Term | Kill

let signal_to_string = function Term -> "TERM" | Kill -> "KILL"

let signal_of_string = function
  | "TERM" -> Ok Term
  | "KILL" -> Ok Kill
  | s -> Error (Printf.sprintf "unknown signal %S" s)

type control =
  | Reload of Data.Path.t
  | Repair of Data.Path.t
  | Signal of int * signal

type outcome =
  | Phy_committed
  | Phy_aborted of string
  | Phy_failed of string

let pp_outcome fmt = function
  | Phy_committed -> Format.pp_print_string fmt "committed"
  | Phy_aborted reason -> Format.fprintf fmt "aborted (%s)" reason
  | Phy_failed reason -> Format.fprintf fmt "failed (%s)" reason

type exec_stats = {
  retries : int;
  transient_failures : int;
  timeouts : int;
  replay_s : float;  (** sim seconds the worker spent replaying the log *)
  undo_s : float;  (** sim seconds spent rolling back, 0 when none *)
}

let no_exec_stats =
  { retries = 0; transient_failures = 0; timeouts = 0; replay_s = 0.;
    undo_s = 0. }

type input_item =
  | Request of { proc : string; args : Data.Value.t list }
  | Result of { txn_id : int; outcome : outcome; exec : exec_stats }
  | Control of control

let outcome_to_sexp =
  let open Data.Sexp in
  function
  | Phy_committed -> List [ Atom "committed" ]
  | Phy_aborted reason -> List [ Atom "aborted"; Atom reason ]
  | Phy_failed reason -> List [ Atom "failed"; Atom reason ]

let outcome_of_sexp = function
  | Data.Sexp.List [ Data.Sexp.Atom "committed" ] -> Ok Phy_committed
  | Data.Sexp.List [ Data.Sexp.Atom "aborted"; Data.Sexp.Atom reason ] ->
    Ok (Phy_aborted reason)
  | Data.Sexp.List [ Data.Sexp.Atom "failed"; Data.Sexp.Atom reason ] ->
    Ok (Phy_failed reason)
  | other -> Error ("bad outcome: " ^ Data.Sexp.to_string other)

let to_sexp item =
  let open Data.Sexp in
  match item with
  | Request { proc; args } ->
    List
      [ Atom "request"; Atom proc; List (List.map Data.Value.to_sexp args) ]
  | Result { txn_id; outcome; exec } ->
    List
      [ Atom "result"; of_int txn_id; outcome_to_sexp outcome;
        of_int exec.retries; of_int exec.transient_failures;
        of_int exec.timeouts; Atom (Printf.sprintf "%.6f" exec.replay_s);
        Atom (Printf.sprintf "%.6f" exec.undo_s) ]
  | Control (Reload path) ->
    List [ Atom "control"; Atom "reload"; Data.Path.to_sexp path ]
  | Control (Repair path) ->
    List [ Atom "control"; Atom "repair"; Data.Path.to_sexp path ]
  | Control (Signal (txn_id, signal)) ->
    List
      [ Atom "control"; Atom "signal"; of_int txn_id;
        Atom (signal_to_string signal) ]

let ( let* ) r f = Result.bind r f

let of_sexp sexp =
  match sexp with
  | Data.Sexp.List [ Data.Sexp.Atom "request"; Data.Sexp.Atom proc; Data.Sexp.List args ] ->
    let* args =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          let* v = Data.Value.of_sexp s in
          Ok (v :: acc))
        (Ok []) args
      |> Result.map List.rev
    in
    Ok (Request { proc; args })
  (* Pre-robustness form: no exec counters. *)
  | Data.Sexp.List [ Data.Sexp.Atom "result"; txn_id; outcome ] ->
    let* txn_id = Data.Sexp.to_int txn_id in
    let* outcome = outcome_of_sexp outcome in
    Ok (Result { txn_id; outcome; exec = no_exec_stats })
  (* PR 3 form: integer exec counters, no phase timings. *)
  | Data.Sexp.List
      [ Data.Sexp.Atom "result"; txn_id; outcome; retries; transient; timeouts
      ] ->
    let* txn_id = Data.Sexp.to_int txn_id in
    let* outcome = outcome_of_sexp outcome in
    let* retries = Data.Sexp.to_int retries in
    let* transient_failures = Data.Sexp.to_int transient in
    let* timeouts = Data.Sexp.to_int timeouts in
    Ok
      (Result
         { txn_id; outcome;
           exec =
             { no_exec_stats with retries; transient_failures; timeouts } })
  | Data.Sexp.List
      [ Data.Sexp.Atom "result"; txn_id; outcome; retries; transient; timeouts;
        Data.Sexp.Atom replay_s; Data.Sexp.Atom undo_s ] ->
    let* txn_id = Data.Sexp.to_int txn_id in
    let* outcome = outcome_of_sexp outcome in
    let* retries = Data.Sexp.to_int retries in
    let* transient_failures = Data.Sexp.to_int transient in
    let* timeouts = Data.Sexp.to_int timeouts in
    let to_float what s =
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "bad %s %S" what s)
    in
    let* replay_s = to_float "replay_s" replay_s in
    let* undo_s = to_float "undo_s" undo_s in
    Ok
      (Result
         { txn_id; outcome;
           exec = { retries; transient_failures; timeouts; replay_s; undo_s }
         })
  | Data.Sexp.List [ Data.Sexp.Atom "control"; Data.Sexp.Atom "reload"; path ] ->
    let* path = Data.Path.of_sexp path in
    Ok (Control (Reload path))
  | Data.Sexp.List [ Data.Sexp.Atom "control"; Data.Sexp.Atom "repair"; path ] ->
    let* path = Data.Path.of_sexp path in
    Ok (Control (Repair path))
  | Data.Sexp.List
      [ Data.Sexp.Atom "control"; Data.Sexp.Atom "signal"; txn_id; Data.Sexp.Atom s ] ->
    let* txn_id = Data.Sexp.to_int txn_id in
    let* signal = signal_of_string s in
    Ok (Control (Signal (txn_id, signal)))
  | other -> Error ("Proto.of_sexp: " ^ Data.Sexp.to_string other)

let input_to_string item = Data.Sexp.to_string (to_sexp item)

let input_of_string s =
  let* sexp = Data.Sexp.of_string s in
  of_sexp sexp

let seq_of_item_key key =
  match String.rindex_opt key '-' with
  | None -> Error (Printf.sprintf "bad item key %S" key)
  | Some i ->
    let digits = String.sub key (i + 1) (String.length key - i - 1) in
    (match int_of_string_opt digits with
     | Some n -> Ok n
     | None -> Error (Printf.sprintf "bad item key %S" key))

let election_path = "/tropic/election"
let input_queue = "/tropic/inputQ"
let phy_queue = "/tropic/phyQ"
let checkpoint_key = "/tropic/checkpoint"
let txns_prefix = "/tropic/txns"
let signal_key txn_id = Printf.sprintf "/tropic/signals/s%010d" txn_id
let executing_key txn_id = Printf.sprintf "/tropic/executing/e%010d" txn_id
