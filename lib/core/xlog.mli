(** Transaction execution logs (paper Table 1).

    The logical layer records one entry per simulated action; the physical
    layer replays them in order and, on failure, executes the undo actions
    in reverse chronological order.  Logs are persisted inside transaction
    records, so a recovering controller can re-apply or roll back. *)

type record = {
  index : int;                 (** 1-based position in the log *)
  path : Data.Path.t;          (** resource object the action targets *)
  action : string;
  args : Data.Value.t list;
  undo : string option;        (** [None] — irreversible action *)
  undo_args : Data.Value.t list;
}

type t = record list (* in execution order *)

val pp_record : Format.formatter -> record -> unit
val pp : Format.formatter -> t -> unit

val record_to_sexp : record -> Data.Sexp.t
val record_of_sexp : Data.Sexp.t -> (record, string) result
val to_sexp : t -> Data.Sexp.t
val of_sexp : Data.Sexp.t -> (t, string) result

(** Distinct target paths of the log, sorted. *)
val paths : t -> Data.Path.t list

(** Records whose target path satisfies [keep] — a shard's slice of a
    cross-shard transaction's log. *)
val slice : t -> keep:(Data.Path.t -> bool) -> t
