(** Double-ended queue for the controller's todoQ: new transactions join at
    the back, deferred ones return to the front (paper §3.1.1). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push_front : 'a t -> 'a -> unit
val push_back : 'a t -> 'a -> unit
val pop_front : 'a t -> 'a option
val to_list : 'a t -> 'a list

(** Remove all elements matching the predicate; returns how many. *)
val remove : 'a t -> ('a -> bool) -> int
