(** Whole-system assembly: a TROPIC deployment inside one simulation.

    Builds the coordination ensemble, bootstraps the initial logical tree
    as checkpoint 0, starts the controller replica group and the workers,
    and gives harness code a client-side API: submit orchestration
    requests, await their outcome, send operator controls, and inject
    controller failures. *)

type mode =
  | Full                   (** workers drive the simulated devices *)
  | Logical_only of float  (** paper §5; per-txn worker stand-in delay *)

type spec = {
  controllers : int;
  workers : int;
  shards : int;
      (** partitions of the resource tree, each with its own coordination
          ensemble, controller replica group and worker pool; device roots
          are assigned round-robin.  1 (the default) is the pre-sharding
          platform, laid out bit-identically *)
  mode : mode;
  coord_replicas : int;
  coord_config : Coord.Types.config;
  controller_config : Controller.config;
  controller_session_timeout : float;
      (** failure-detection time for controller fail-over (§6.4) *)
  submit_clients : int;  (** client sessions the harness submits through *)
  client_slots : int;    (** coordination-service session slots *)
  persist_clients : int;
      (** extra coordination sessions per controller used to overlap the
          txn-record writes of an input burst so they coalesce into shared
          group-commit batches; 0 (the default) keeps persists synchronous.
          Each controller (re)start consumes [1 + persist_clients] client
          slots. *)
  worker_retry : Physical.retry_policy;
      (** per-action robustness policy every worker executes under *)
  trace : Trace.t option;
      (** span recorder shared by every controller and worker (including
          supervisor restarts); [None] disables tracing *)
}

val default_spec : spec

type t

(** [create spec env ~initial_tree ~devices sim] — asynchronous: bootstrap,
    elections and recovery happen as the simulation runs. *)
val create :
  spec ->
  Dsl.env ->
  initial_tree:Data.Tree.t ->
  devices:Devices.Device.t list ->
  Des.Sim.t ->
  t

val sim : t -> Des.Sim.t
val spec : t -> spec

(** {1 Client API (call from inside a process)} *)

(** Enqueue an orchestration request; returns the transaction id. *)
val submit : t -> proc:string -> args:Data.Value.t list -> int

(** Block until the transaction reaches a terminal state. *)
val await : t -> int -> Txn.state

(** [submit] + [await]. *)
val run_txn : t -> proc:string -> args:Data.Value.t list -> Txn.state

(** Submit every request of the batch, then await them all — the requests
    are in flight together, so independent transactions of a plan wave can
    be scheduled concurrently.  Returns [(txn_id, terminal_state)] in
    batch order. *)
val submit_batch :
  t -> (string * Data.Value.t list) list -> (int * Txn.state) list

(** Current state from the persisted record, if any. *)
val txn_state : t -> int -> Txn.state option

(** Operator controls, routed through inputQ like any request. *)
val signal : t -> int -> Proto.signal -> unit

val reload : t -> Data.Path.t -> unit
val repair : t -> Data.Path.t -> unit

(** {1 Introspection and fault injection}

    Controllers and workers live in flat shard-major arrays: shard [s]'s
    replica group is slots [s*n .. s*n + n-1]. *)

val controllers : t -> Controller.t array
val workers : t -> Worker.t array
val shard_count : t -> int

(** Leader of shard 0 (the historical accessor). *)
val leader_controller : t -> Controller.t option

(** Block until shard 0 has a leader; returns it. *)
val await_leader_controller : t -> Controller.t

(** Current leader of shard [sid], and its flat slot index. *)
val shard_leader : t -> int -> Controller.t option

(** Accumulated counters of shard [sid]'s controller instances retired by
    {!restart_controller} — add to the current leader's
    {!Controller.stats} for fail-over-proof cumulative totals.  Latency
    recorders in the result are always empty. *)
val shard_retired_stats : t -> int -> Controller.stats

val shard_leader_index : t -> int -> int option

(** Owning shard of a resource path (pure function of the assignment). *)
val shard_of_path : t -> Data.Path.t -> int

(** Block until shard [sid] has a leader; returns it. *)
val await_shard_leader : t -> int -> Controller.t

(** Logical tree of shard 0's leader.  @raise Failure if none leads. *)
val logical_tree : t -> Data.Tree.t

(** Platform-wide logical tree: every shard leader's owned subtrees
    grafted over shard 0's view.  Blocks until each shard has a leader. *)
val composite_tree : t -> Data.Tree.t

(** Crash controller [i] (process death + session loss). *)
val kill_controller : t -> int -> unit

(** Restart slot [i] after {!kill_controller}: a fresh controller instance
    (new coordination session) under the same name, which re-joins the
    election and recovers.  Each restart consumes one client slot. *)
val restart_controller : t -> int -> unit

(** Crash worker [i] (process death + session loss: its ephemeral
    executing marker disappears, any in-flight execution is abandoned). *)
val kill_worker : t -> int -> unit

(** Restart slot [i] after {!kill_worker}: a fresh worker instance (new
    coordination session) under the same name.  Each restart consumes one
    client slot. *)
val restart_worker : t -> int -> unit

(** Flat index of shard 0's leading controller, if any. *)
val leader_index : t -> int option

(** Platform transaction-counter totals (every shard leader summed) —
    what the goal-state frontend reports next to its convergence result.
    All zeroes when no controller is leading. *)
type leader_stats = {
  ls_leader : int option;
  ls_committed : int;
  ls_aborted : int;
  ls_failed : int;
  ls_sheds : int;   (** admission-control sheds *)
  ls_todo : int;    (** scheduled-but-not-started transactions *)
}

val leader_stats : t -> leader_stats

(** Shard 0's (global) coordination ensemble. *)
val coord : t -> Coord.Ensemble.t

(** Shard [sid]'s coordination ensemble. *)
val coord_ensemble : t -> int -> Coord.Ensemble.t

(** Membership counters (joins, leaves, catch-ups, stale replication
    sessions rejected) summed across all shards' ensembles. *)
val membership_stats : t -> Coord.Types.membership_stats

(** Group-commit counters (flushes by trigger, batched commands, deferred
    and unsafe acks, batch-size histogram) summed across all shards'
    ensembles. *)
val group_commit_stats : t -> Coord.Types.group_stats

(** Sum of controller-CPU busy time (all controllers; only the leader
    accrues). *)
val controller_cpu_busy : t -> float

(** Summed busy time of each ensemble leader's op station. *)
val coord_io_busy : t -> float
