type state =
  | Initialized
  | Accepted
  | Deferred
  | Started
  | Committed
  | Aborted of string
  | Failed of string

let state_to_string = function
  | Initialized -> "initialized"
  | Accepted -> "accepted"
  | Deferred -> "deferred"
  | Started -> "started"
  | Committed -> "committed"
  | Aborted reason -> "aborted:" ^ reason
  | Failed reason -> "failed:" ^ reason

let state_of_string s =
  let tagged prefix =
    let plen = String.length prefix in
    if String.length s >= plen && String.sub s 0 plen = prefix then
      Some (String.sub s plen (String.length s - plen))
    else None
  in
  match s with
  | "initialized" -> Ok Initialized
  | "accepted" -> Ok Accepted
  | "deferred" -> Ok Deferred
  | "started" -> Ok Started
  | "committed" -> Ok Committed
  | _ ->
    (match tagged "aborted:" with
     | Some reason -> Ok (Aborted reason)
     | None ->
       (match tagged "failed:" with
        | Some reason -> Ok (Failed reason)
        | None -> Error (Printf.sprintf "unknown txn state %S" s)))

let pp_state fmt s = Format.pp_print_string fmt (state_to_string s)

let overload_reason = "overload: admission queue full"

let is_overload = function
  | Aborted reason -> reason = overload_reason
  | Initialized | Accepted | Deferred | Started | Committed | Failed _ -> false

let is_terminal = function
  | Committed | Aborted _ | Failed _ -> true
  | Initialized | Accepted | Deferred | Started -> false

(* Serialization cache: a record is persisted at *every* state transition,
   but [args] never change after creation and [log]/[locks] are rebound
   only when simulation fills them in — yet the old code re-rendered all
   three sexp subtrees on each persist.  On the group-commit hot path that
   re-rendering (one full log serialization per Accepted → Started →
   terminal hop) dominated allocation, so the rendered subtrees are cached
   and keyed on the *physical identity* of the log and lock lists: any
   rebind invalidates, and sexps are immutable so sharing them is safe. *)
type ser_cache = {
  c_log : Xlog.t;
  c_locks : (Data.Path.t * Mglock.mode) list;
  c_args : Data.Sexp.t;
  c_log_sexp : Data.Sexp.t;
  c_locks_sexp : Data.Sexp.t;
}

type t = {
  id : int;
  proc : string;
  args : Data.Value.t list;
  mutable state : state;
  mutable log : Xlog.t;
  mutable locks : (Data.Path.t * Mglock.mode) list;
  mutable start_seq : int option;
  mutable submitted_at : float;
  mutable finished_at : float option;
  mutable ser_cache : ser_cache option;
}

let make ~id ~proc ~args ~submitted_at =
  {
    id;
    proc;
    args;
    state = Initialized;
    log = [];
    locks = [];
    start_seq = None;
    submitted_at;
    finished_at = None;
    ser_cache = None;
  }

let pp fmt t =
  Format.fprintf fmt "txn %d %s(%s) [%a]" t.id t.proc
    (String.concat ", " (List.map Data.Value.to_string t.args))
    pp_state t.state

let record_key_ns ns id = Printf.sprintf "%s/txns/t%010d" ns id
let record_key id = record_key_ns "/tropic" id

let mode_to_sexp mode = Data.Sexp.Atom (Mglock.mode_to_string mode)

let mode_of_sexp = function
  | Data.Sexp.Atom "R" -> Ok Mglock.R
  | Data.Sexp.Atom "W" -> Ok Mglock.W
  | Data.Sexp.Atom "IR" -> Ok Mglock.IR
  | Data.Sexp.Atom "IW" -> Ok Mglock.IW
  | other -> Error ("bad lock mode: " ^ Data.Sexp.to_string other)

let locks_to_sexp locks =
  Data.Sexp.List
    (List.map
       (fun (path, mode) ->
         Data.Sexp.List [ Data.Path.to_sexp path; mode_to_sexp mode ])
       locks)

let cached_parts t =
  match t.ser_cache with
  | Some c when c.c_log == t.log && c.c_locks == t.locks ->
    (c.c_args, c.c_log_sexp, c.c_locks_sexp)
  | stale ->
    (* Args never change; a stale cache still holds their rendering. *)
    let c_args =
      match stale with
      | Some c -> c.c_args
      | None -> Data.Sexp.List (List.map Data.Value.to_sexp t.args)
    in
    let c =
      {
        c_log = t.log;
        c_locks = t.locks;
        c_args;
        c_log_sexp = Xlog.to_sexp t.log;
        c_locks_sexp = locks_to_sexp t.locks;
      }
    in
    t.ser_cache <- Some c;
    (c.c_args, c.c_log_sexp, c.c_locks_sexp)

let to_sexp t =
  let args_sexp, log_sexp, locks_sexp = cached_parts t in
  let open Data.Sexp in
  List
    [
      List [ Atom "id"; of_int t.id ];
      List [ Atom "proc"; Atom t.proc ];
      List [ Atom "args"; args_sexp ];
      List [ Atom "state"; Atom (state_to_string t.state) ];
      List [ Atom "log"; log_sexp ];
      List [ Atom "locks"; locks_sexp ];
      List [ Atom "submitted"; of_float t.submitted_at ];
      List
        [
          Atom "start_seq";
          (match t.start_seq with Some n -> of_int n | None -> Atom "none");
        ];
    ]

let ( let* ) r f = Result.bind r f

let of_sexp sexp =
  let* fields = Data.Sexp.to_list sexp in
  let* id = Result.bind (Data.Sexp.assoc "id" fields) Data.Sexp.to_int in
  let* proc = Result.bind (Data.Sexp.assoc "proc" fields) Data.Sexp.to_atom in
  let* args_sexp = Data.Sexp.assoc "args" fields in
  let* args_list = Data.Sexp.to_list args_sexp in
  let* args =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* v = Data.Value.of_sexp s in
        Ok (v :: acc))
      (Ok []) args_list
    |> Result.map List.rev
  in
  let* state_str =
    Result.bind (Data.Sexp.assoc "state" fields) Data.Sexp.to_atom
  in
  let* state = state_of_string state_str in
  let* log = Result.bind (Data.Sexp.assoc "log" fields) Xlog.of_sexp in
  let* locks_sexp = Data.Sexp.assoc "locks" fields in
  let* locks_list = Data.Sexp.to_list locks_sexp in
  let* locks =
    List.fold_left
      (fun acc entry ->
        let* acc = acc in
        match entry with
        | Data.Sexp.List [ path; mode ] ->
          let* path = Data.Path.of_sexp path in
          let* mode = mode_of_sexp mode in
          Ok ((path, mode) :: acc)
        | other -> Error ("bad lock entry: " ^ Data.Sexp.to_string other))
      (Ok []) locks_list
    |> Result.map List.rev
  in
  let* submitted_at =
    Result.bind (Data.Sexp.assoc "submitted" fields) Data.Sexp.to_float
  in
  let* start_seq =
    match Data.Sexp.assoc "start_seq" fields with
    | Ok (Data.Sexp.Atom "none") -> Ok None
    | Ok s ->
      let* n = Data.Sexp.to_int s in
      Ok (Some n)
    | Error _ -> Ok None
  in
  Ok
    {
      id;
      proc;
      args;
      state;
      log;
      locks;
      start_seq;
      submitted_at;
      finished_at = None;
      ser_cache = None;
    }

let to_string t = Data.Sexp.to_string (to_sexp t)

let of_string s =
  let* sexp = Data.Sexp.of_string s in
  of_sexp sexp
