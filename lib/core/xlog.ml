type record = {
  index : int;
  path : Data.Path.t;
  action : string;
  args : Data.Value.t list;
  undo : string option;
  undo_args : Data.Value.t list;
}

type t = record list

let pp_record fmt r =
  Format.fprintf fmt "#%d %a %s(%s)" r.index Data.Path.pp r.path r.action
    (String.concat ", " (List.map Data.Value.to_string r.args));
  match r.undo with
  | Some undo ->
    Format.fprintf fmt " / undo %s(%s)" undo
      (String.concat ", " (List.map Data.Value.to_string r.undo_args))
  | None -> Format.fprintf fmt " / irreversible"

let pp fmt log =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_record fmt log

let record_to_sexp r =
  let open Data.Sexp in
  List
    [
      of_int r.index;
      Data.Path.to_sexp r.path;
      Atom r.action;
      List (List.map Data.Value.to_sexp r.args);
      (match r.undo with Some u -> List [ Atom "undo"; Atom u ] | None -> List []);
      List (List.map Data.Value.to_sexp r.undo_args);
    ]

let ( let* ) r f = Result.bind r f

let values_of_sexps sexps =
  List.fold_left
    (fun acc s ->
      let* acc = acc in
      let* v = Data.Value.of_sexp s in
      Ok (v :: acc))
    (Ok []) sexps
  |> Result.map List.rev

let record_of_sexp sexp =
  match sexp with
  | Data.Sexp.List [ index; path; Data.Sexp.Atom action; Data.Sexp.List args; undo_part; Data.Sexp.List undo_args ] ->
    let* index = Data.Sexp.to_int index in
    let* path = Data.Path.of_sexp path in
    let* args = values_of_sexps args in
    let* undo =
      match undo_part with
      | Data.Sexp.List [ Data.Sexp.Atom "undo"; Data.Sexp.Atom u ] -> Ok (Some u)
      | Data.Sexp.List [] -> Ok None
      | other -> Error ("bad undo field: " ^ Data.Sexp.to_string other)
    in
    let* undo_args = values_of_sexps undo_args in
    Ok { index; path; action; args; undo; undo_args }
  | other -> Error ("Xlog.record_of_sexp: " ^ Data.Sexp.to_string other)

let to_sexp log = Data.Sexp.List (List.map record_to_sexp log)

let of_sexp sexp =
  match sexp with
  | Data.Sexp.List records ->
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* r = record_of_sexp s in
        Ok (r :: acc))
      (Ok []) records
    |> Result.map List.rev
  | Data.Sexp.Atom _ -> Error "Xlog.of_sexp: expected a list"

(* Write-path footprint and per-shard slicing (cross-shard 2PC): the
   participant's share of a decided transaction is exactly the log records
   whose target path it owns, so slices are re-derivable from the full log
   by anyone who knows the partition. *)

let paths log =
  List.map (fun r -> r.path) log |> List.sort_uniq Data.Path.compare

let slice log ~keep = List.filter (fun r -> keep r.path) log
