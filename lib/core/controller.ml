let log_src = Logs.Src.create "tropic.controller" ~doc:"TROPIC controller"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  scheduling : [ `Fifo | `Aggressive ];
  cpu_per_txn : float;
  cpu_per_action : float;
  checkpoint_every : int option;
  repair_rules : Recon.rule list;
  constraint_guard_locks : bool;
  repair_interval : float option;
  watchdog : Watchdog.config;
  health : Health.config;
  admission : Health.admission;
  twopc_prepare_timeout : float;
  twopc_decision_record : bool;
}

let default_config =
  {
    scheduling = `Fifo;
    cpu_per_txn = 0.0027;
    cpu_per_action = 0.001;
    checkpoint_every = None;
    repair_rules = [];
    constraint_guard_locks = true;
    repair_interval = None;
    watchdog = Watchdog.disabled;
    health = Health.disabled;
    admission = Health.no_admission;
    twopc_prepare_timeout = 60.0;
    twopc_decision_record = true;
  }

(* Stored-procedure name of the shadow transaction a participant shard
   runs for a cross-shard 2PC: it holds the write locks and carries the
   decided log slice, but is never offered to the physical layer (the
   coordinator's worker replays the full log). *)
let participant_proc = "__2pc_participant"
let is_participant (txn : Txn.t) = String.equal txn.Txn.proc participant_proc

type stats = {
  mutable accepted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable failed : int;
  mutable deferrals : int;
  mutable violations : int;
  mutable repairs : int;
  mutable reloads : int;
  mutable wakeups : int;
  mutable spurious_wakeups : int;
  mutable retries_saved : int;
  mutable wake_passes : int;
  mutable terms : int;
  mutable kills : int;
  mutable auto_terms : int;
  mutable auto_kills : int;
  mutable exec_retries : int;
  mutable transient_failures : int;
  mutable timeouts : int;
  mutable sheds : int;
  mutable breaker_deferrals : int;
  mutable breaker_trips : int;
  mutable breaker_probes : int;
  mutable breaker_closes : int;
  mutable twopc_started : int;
  mutable twopc_committed : int;
  mutable twopc_aborted : int;
  mutable twopc_prepares : int;
  (* Per-phase latency recorders (sim seconds).  Fed from direct
     measurements — simulate and lock-wait controller-side, replay and
     undo from the worker's exec stats — so they work with no trace
     attached. *)
  simulate_lat : Metrics.Cdf.t;
  lock_wait_lat : Metrics.Cdf.t;
  replay_lat : Metrics.Cdf.t;
  undo_lat : Metrics.Cdf.t;
}

(* "p50/p99" per phase, or n/a for phases no transaction crossed. *)
let phase_summary st =
  let pair cdf = Metrics.Cdf.quantile_pair cdf ~p:0.99 in
  Printf.sprintf
    "phases[p50/p99 s]: simulate %s, lock-wait %s, replay %s, undo %s"
    (pair st.simulate_lat) (pair st.lock_wait_lat) (pair st.replay_lat)
    (pair st.undo_lat)

(* Coordinator-side state of one in-flight cross-shard transaction. *)
type pending_2pc = {
  participants : int list;
  mutable votes : (int * (Data.Path.t * Data.Sexp.t) list) list;
      (* shard -> locked-subtree snapshots, one entry per Prepared vote *)
  mutable decided : bool;
  mutable p2_deadline : float;
}

(* Participant-side state of one prepared cross-shard transaction. *)
type part_2pc = {
  coord : int;
  mutable applied : bool;  (* commit slice applied, awaiting Finish *)
  mutable pt_deadline : float;
}

(* Work item for the persist-pool sessions (parallel record writes and
   queue-item deletes). *)
type pjob =
  | Pwrite of string * string
  | Pdelete of string
  | Penqueue of string * string  (* queue, payload: sequential create *)

type t = {
  cname : string;
  client : Coord.Client.t;
  gclient : Coord.Client.t;  (* global (shard 0) ensemble: 2PC state *)
  shard : Shard.t;
  ns : string;
  env : Dsl.env;
  cfg : config;
  devices : Physical.device_lookup;
  device_roots : Data.Path.t list;
  sim : Des.Sim.t;
  cpu : Des.Station.t;
  mutable tree : Data.Tree.t;
  locks : Mglock.t;
  sched : Sched.t;
  txns : (int, Txn.t) Hashtbl.t;
  quarantine : (string, unit) Hashtbl.t;
  mutable next_start_seq : int;
  mutable next_internal_txn : int; (* negative lock owners for reload *)
  mutable checkpoint_seq : int;
  mutable commits_since_checkpoint : int;
  mutable prune_candidates : string list; (* terminal record keys *)
  signaled : (int, unit) Hashtbl.t; (* txns with a pending signal key *)
  mutable max_request_seq : int; (* highest request item seq processed *)
  watchdog : Watchdog.t;
  health : Health.t;
  breaker_parked : (int, Data.Path.t list) Hashtbl.t;
      (* txns deferred at admission by a tripped breaker, with the device
         roots they were gated on *)
  started_at : (int, float) Hashtbl.t; (* Started time, for latency scores *)
  wait_since : (int, float) Hashtbl.t; (* lock-park time, for phase stats *)
  trace : Trace.t option;
  mutable shedding : bool; (* admission watermark hysteresis *)
  mutable wake_pending : bool; (* health monitor woke parked txns *)
  wake_buf : (int, unit) Hashtbl.t;
      (* txn ids released since the last scheduler pass; delivered to the
         scheduler in ONE deduplicated [Sched.wake] per pass instead of
         one ready-deque scan per lock release *)
  persist_pool : Coord.Client.t list;
      (* extra coordination sessions for overlapping record persists and
         item deletes across an input burst; empty = the pre-pool serial
         write path *)
  dirty : (int, Txn.t) Hashtbl.t;
      (* txns whose record changed while [defer_persists] was on; written
         (concurrently, via the pool) at the next [flush_persists] *)
  mutable defer_persists : bool;
  mutable phyq_buf : int list;
      (* phyQ offers buffered during a deferred scheduler drain; enqueued
         (newest first in the list, reversed on flush) only after the
         Started records they announce are durable *)
  mutable pjobs : pjob Des.Channel.t option; (* pool work queue, lazy *)
  packs : unit Des.Channel.t; (* one ack per completed pool job *)
  pending : (int, pending_2pc) Hashtbl.t; (* coordinator-side, by gid *)
  parts : (int, part_2pc) Hashtbl.t; (* participant-side, by gid *)
  mutable recovered_cross : (Txn.t * bool) list;
      (* Started cross-coordinator records found by recovery (flag: needs
         a phyQ re-offer), resolved against the decision record on the
         first 2PC drain *)
  mutable recovered_cross_terminal : Txn.t list;
      (* terminal cross-coordinator records: re-send Finish *)
  mutable leading : bool;
  mutable stopped : bool;
  mutable procs : Des.Proc.t list;
  st : stats;
}

let fresh_stats () =
  {
    accepted = 0;
    committed = 0;
    aborted = 0;
    failed = 0;
    deferrals = 0;
    violations = 0;
    repairs = 0;
    reloads = 0;
    wakeups = 0;
    spurious_wakeups = 0;
    retries_saved = 0;
    wake_passes = 0;
    terms = 0;
    kills = 0;
    auto_terms = 0;
    auto_kills = 0;
    exec_retries = 0;
    transient_failures = 0;
    timeouts = 0;
    sheds = 0;
    breaker_deferrals = 0;
    breaker_trips = 0;
    breaker_probes = 0;
    breaker_closes = 0;
    twopc_started = 0;
    twopc_committed = 0;
    twopc_aborted = 0;
    twopc_prepares = 0;
    simulate_lat = Metrics.Cdf.create ();
    lock_wait_lat = Metrics.Cdf.create ();
    replay_lat = Metrics.Cdf.create ();
    undo_lat = Metrics.Cdf.create ();
  }

(* Snapshot of the integer counters that shares the latency recorders:
   lets a caller fold other instances' counters in (via [absorb_stats])
   without mutating the live record. *)
let copy_stats (st : stats) = { st with accepted = st.accepted }

(* Counters survive a fail-over by being absorbed into an accumulator
   when the instance is retired; the latency recorders stay with the
   instance (exact quantiles cannot be merged after the fact). *)
let absorb_stats ~(into : stats) (src : stats) =
  into.accepted <- into.accepted + src.accepted;
  into.committed <- into.committed + src.committed;
  into.aborted <- into.aborted + src.aborted;
  into.failed <- into.failed + src.failed;
  into.deferrals <- into.deferrals + src.deferrals;
  into.violations <- into.violations + src.violations;
  into.repairs <- into.repairs + src.repairs;
  into.reloads <- into.reloads + src.reloads;
  into.wakeups <- into.wakeups + src.wakeups;
  into.spurious_wakeups <- into.spurious_wakeups + src.spurious_wakeups;
  into.retries_saved <- into.retries_saved + src.retries_saved;
  into.wake_passes <- into.wake_passes + src.wake_passes;
  into.terms <- into.terms + src.terms;
  into.kills <- into.kills + src.kills;
  into.auto_terms <- into.auto_terms + src.auto_terms;
  into.auto_kills <- into.auto_kills + src.auto_kills;
  into.exec_retries <- into.exec_retries + src.exec_retries;
  into.transient_failures <- into.transient_failures + src.transient_failures;
  into.timeouts <- into.timeouts + src.timeouts;
  into.sheds <- into.sheds + src.sheds;
  into.breaker_deferrals <- into.breaker_deferrals + src.breaker_deferrals;
  into.breaker_trips <- into.breaker_trips + src.breaker_trips;
  into.breaker_probes <- into.breaker_probes + src.breaker_probes;
  into.breaker_closes <- into.breaker_closes + src.breaker_closes;
  into.twopc_started <- into.twopc_started + src.twopc_started;
  into.twopc_committed <- into.twopc_committed + src.twopc_committed;
  into.twopc_aborted <- into.twopc_aborted + src.twopc_aborted;
  into.twopc_prepares <- into.twopc_prepares + src.twopc_prepares

let create ?trace ?shard ?gclient ?(persist_pool = []) ~name ~client ~env
    ~(config : config) ~devices ~device_roots ~sim () =
  let shard =
    match shard with
    | Some s -> s
    | None -> Shard.singleton ~roots:device_roots
  in
  let gclient = Option.value gclient ~default:client in
  let health = Health.create config.health in
  (* Surface breaker transitions as trace instants (system lane when no
     canary transaction is involved). *)
  (match trace with
   | None -> ()
   | Some tr ->
     Health.set_listener health (fun ev ->
         Trace.instant tr
           ~txn:(Option.value ev.Health.txn ~default:0)
           ~cat:"health" ~name:ev.Health.kind
           ~attrs:[ ("root", ev.Health.root) ]
           ()));
  {
    cname = name;
    client;
    gclient;
    shard;
    ns = Proto.ns_of_shard shard.Shard.sid;
    env;
    cfg = config;
    devices;
    device_roots;
    sim;
    cpu = Des.Station.create ~name:(name ^ ".cpu") sim;
    tree = Data.Tree.empty;
    locks = Mglock.create ();
    sched = Sched.create config.scheduling;
    txns = Hashtbl.create 256;
    quarantine = Hashtbl.create 8;
    next_start_seq = 1;
    next_internal_txn = -1;
    checkpoint_seq = 0;
    commits_since_checkpoint = 0;
    prune_candidates = [];
    signaled = Hashtbl.create 8;
    max_request_seq = 0;
    watchdog = Watchdog.create config.watchdog;
    health;
    breaker_parked = Hashtbl.create 8;
    started_at = Hashtbl.create 32;
    wait_since = Hashtbl.create 32;
    trace;
    shedding = false;
    wake_pending = false;
    wake_buf = Hashtbl.create 32;
    persist_pool;
    dirty = Hashtbl.create 32;
    defer_persists = false;
    phyq_buf = [];
    pjobs = None;
    packs = Des.Channel.create ~name:(name ^ ".packs") ();
    pending = Hashtbl.create 8;
    parts = Hashtbl.create 8;
    recovered_cross = [];
    recovered_cross_terminal = [];
    leading = false;
    stopped = false;
    procs = [];
    st = fresh_stats ();
  }

let name t = t.cname
let is_leader t = t.leading
let tree t = t.tree
let shard t = t.shard
let shard_id t = t.shard.Shard.sid

(* The breaker counters live in Health; mirror them into the stats record
   so one struct carries everything into experiment summaries. *)
let refresh_breaker_stats t =
  t.st.breaker_trips <- Health.trips t.health;
  t.st.breaker_probes <- Health.probes t.health;
  t.st.breaker_closes <- Health.closes t.health

let stats t =
  refresh_breaker_stats t;
  t.st
let todo_length t = Sched.length t.sched
let blocked_length t = Sched.blocked_length t.sched
let lock_count t = Mglock.lock_count t.locks
let waiter_count t = Mglock.waiter_count t.locks
let cpu_busy_time t = Des.Station.busy_time t.cpu

let inflight t =
  Hashtbl.fold
    (fun _ (txn : Txn.t) n -> if txn.Txn.state = Txn.Started then n + 1 else n)
    t.txns 0

let started_txns t =
  Hashtbl.fold
    (fun id (txn : Txn.t) acc ->
      if txn.Txn.state = Txn.Started then id :: acc else acc)
    t.txns []
  |> List.sort compare

let quarantined t =
  Hashtbl.fold
    (fun key () acc ->
      match Data.Path.of_string key with Ok p -> p :: acc | Error _ -> acc)
    t.quarantine []
  |> List.sort Data.Path.compare

(* ------------------------------------------------------------------ *)
(* Persistence helpers *)

let persist_now t ~client (txn : Txn.t) =
  match
    Coord.Client.write client ~key:(Txn.record_key_ns t.ns txn.Txn.id)
      ~value:(Txn.to_string txn) ()
  with
  | Ok _ -> ()
  | Error e ->
    Log.err (fun m ->
        m "%s: persisting txn %d failed: %s" t.cname txn.Txn.id
          (Format.asprintf "%a" Coord.Types.pp_op_error e))

(* While the main loop processes a burst of input items it defers txn-record
   persists into [dirty] (latest state per txn id wins); [flush_persists]
   pushes them through the session pool so the writes overlap and ride
   shared replica-side group-commit batches.  Deferral is gated on the pool
   actually existing: without one the flush would replay the same writes
   serially through the main session — no overlap, just delayed durability
   and perturbed timing — so no-pool deployments keep the synchronous write
   path bit-for-bit. *)
let deferring t = t.defer_persists && t.persist_pool <> []

let persist t (txn : Txn.t) =
  if deferring t then Hashtbl.replace t.dirty txn.Txn.id txn
  else persist_now t ~client:t.client txn

(* Run a set of coordination writes/deletes, overlapping them through the
   persist pool when one is attached; inline through the main session
   otherwise.  Blocks until every job is applied. *)
let run_coord_jobs t jobs =
  match (t.pjobs, jobs) with
  | _, [] -> ()
  | None, jobs ->
    List.iter
      (fun job ->
        match job with
        | Pwrite (key, value) -> (
          match Coord.Client.write t.client ~key ~value () with
          | Ok _ -> ()
          | Error e ->
            Log.err (fun m ->
                m "%s: pooled persist of %s failed: %s" t.cname key
                  (Format.asprintf "%a" Coord.Types.pp_op_error e)))
        | Pdelete key -> ignore (Coord.Client.delete t.client ~key ())
        | Penqueue (queue, payload) ->
          ignore (Coord.Recipes.enqueue t.client ~queue payload))
      jobs
  | Some chan, jobs ->
    let n = List.length jobs in
    List.iter (fun job -> Des.Channel.send chan job) jobs;
    for _ = 1 to n do
      Des.Channel.recv t.packs
    done

let flush_persists t =
  if Hashtbl.length t.dirty > 0 then begin
    let txns = Hashtbl.fold (fun _ txn acc -> txn :: acc) t.dirty [] in
    Hashtbl.reset t.dirty;
    run_coord_jobs t
      (List.map
         (fun (txn : Txn.t) ->
           Pwrite (Txn.record_key_ns t.ns txn.Txn.id, Txn.to_string txn))
         txns)
  end

let finish t (txn : Txn.t) state =
  txn.Txn.state <- state;
  txn.Txn.finished_at <- Some (Des.Sim.now t.sim);
  Hashtbl.remove t.wait_since txn.Txn.id;
  (* Finalization force-closes whatever the transaction still has open
     (root span, a replay cut short by a kill, a park span), so traces
     are balanced at quiescence no matter how the txn ended. *)
  Option.iter
    (fun tr ->
      let state_label, reason =
        match state with
        | Txn.Committed -> ("committed", "")
        | Txn.Aborted r -> ("aborted", r)
        | Txn.Failed r -> ("failed", r)
        | other -> (Txn.state_to_string other, "")
      in
      let attrs =
        ("state", state_label)
        :: (if reason = "" then [] else [ ("reason", reason) ])
      in
      Trace.close_all tr ~txn:txn.Txn.id ~attrs ())
    t.trace;
  persist t txn;
  t.prune_candidates <- Txn.record_key_ns t.ns txn.Txn.id :: t.prune_candidates

(* ------------------------------------------------------------------ *)
(* Quarantine *)

(* Reconciliation is the owner's job: a coordinator never quarantines a
   foreign shard's subtree — its copy of foreign state is stale by design,
   and the owning shard (which saw the same failure as a participant)
   quarantines and heals its own slice. *)
let quarantine_path t path =
  if Shard.owns t.shard path then
    Hashtbl.replace t.quarantine (Data.Path.to_string path) ()

let unquarantine_subtree t path =
  let doomed =
    Hashtbl.fold
      (fun key () acc ->
        match Data.Path.of_string key with
        | Ok p when Data.Path.is_prefix path p -> key :: acc
        | Ok _ | Error _ -> acc)
      t.quarantine []
  in
  List.iter (Hashtbl.remove t.quarantine) doomed

let is_quarantined t path =
  Hashtbl.length t.quarantine > 0
  && List.exists
       (fun p -> Hashtbl.mem t.quarantine (Data.Path.to_string p))
       (path :: Data.Path.ancestors path)

(* ------------------------------------------------------------------ *)
(* Transaction finalization *)

(* A completion releases locks and wakes exactly the transactions parked
   on a released node; everything else stays blocked untouched — this is
   the O(woken) replacement for the old full-todo rescan.  [retries_saved]
   counts the blocked transactions a rescan would have re-attempted here
   for nothing.

   Released ids are *buffered*, not delivered: a burst of completions (a
   group-commit flush acking many persists at once) used to fire one
   [Sched.wake] — one ready-deque membership scan — per release.  Now each
   release merges its waiters into [wake_buf] and the scheduler pass
   drains the buffer with a single deduplicated wake ([flush_wakes]), so
   wakeup accounting counts distinct woken transactions no matter how
   many overlapping releases reported them. *)
let wake_released t woken =
  if woken <> [] then begin
    List.iter (fun id -> Hashtbl.replace t.wake_buf id ()) woken;
    t.wake_pending <- true
  end

let flush_wakes t =
  if Hashtbl.length t.wake_buf > 0 then begin
    let ids = Hashtbl.fold (fun id () acc -> id :: acc) t.wake_buf [] in
    Hashtbl.reset t.wake_buf;
    let blocked_before = Sched.blocked_length t.sched in
    let moved = Sched.wake t.sched ids in
    t.st.wake_passes <- t.st.wake_passes + 1;
    t.st.wakeups <- t.st.wakeups + moved;
    t.st.retries_saved <- t.st.retries_saved + (blocked_before - moved)
  end

let release_locks t (txn : Txn.t) =
  wake_released t (Mglock.release_all t.locks ~txn:txn.Txn.id)

let write_paths (txn : Txn.t) =
  List.filter_map
    (fun (path, mode) -> if mode = Mglock.W then Some path else None)
    txn.Txn.locks

(* Device roots under a lock set's write paths — the granularity at which
   health is scored and breakers trip. *)
let write_roots t locks =
  List.filter_map
    (fun (path, mode) ->
      if mode = Mglock.W then Option.map Devices.Device.root (t.devices path)
      else None)
    locks
  |> List.sort_uniq Data.Path.compare

(* Quiescent checkpoint: when nothing is physically in flight, the logical
   tree contains exactly the committed state, so it can serve as the replay
   base and all terminal records can be pruned. *)
let maybe_checkpoint t =
  match t.cfg.checkpoint_every with
  | None -> ()
  | Some period ->
    if t.commits_since_checkpoint >= period && inflight t = 0 then begin
      (* Deferred records must hit the store before the checkpoint prunes:
         a dirty record flushed after its key was pruned would resurrect a
         terminal txn the checkpoint already folded in. *)
      flush_persists t;
      let seq = t.next_start_seq - 1 in
      let snapshot =
        Data.Sexp.List
          [ Data.Sexp.of_int seq; Data.Tree.to_sexp t.tree ]
      in
      (match
         Coord.Client.write t.client ~key:(Proto.checkpoint_key_ns t.ns)
           ~value:(Data.Sexp.to_string snapshot) ()
       with
       | Ok _ ->
         t.checkpoint_seq <- seq;
         t.commits_since_checkpoint <- 0;
         List.iter
           (fun key -> ignore (Coord.Client.delete t.client ~key ()))
           t.prune_candidates;
         t.prune_candidates <- [];
         Log.info (fun m -> m "%s: checkpoint at start_seq %d" t.cname seq)
       | Error _ -> ())
    end

let commit_txn t (txn : Txn.t) =
  finish t txn Txn.Committed;
  release_locks t txn;
  t.st.committed <- t.st.committed + 1;
  t.commits_since_checkpoint <- t.commits_since_checkpoint + 1;
  maybe_checkpoint t

(* Roll the logical layer back via the undo actions in the execution log.
   If some logical undo cannot apply, the affected subtrees are quarantined
   and the transaction is failed regardless of the physical outcome. *)
let rollback_logical t (txn : Txn.t) =
  match Logical.rollback t.env ~tree:t.tree ~log:txn.Txn.log with
  | Ok tree' ->
    t.tree <- tree';
    Ok ()
  | Error (index, reason) ->
    List.iter (quarantine_path t) (write_paths txn);
    Error (Printf.sprintf "logical undo #%d failed: %s" index reason)

let abort_txn t (txn : Txn.t) reason =
  match rollback_logical t txn with
  | Ok () ->
    finish t txn (Txn.Aborted reason);
    release_locks t txn;
    t.st.aborted <- t.st.aborted + 1
  | Error undo_reason ->
    finish t txn (Txn.Failed (reason ^ "; " ^ undo_reason));
    release_locks t txn;
    t.st.failed <- t.st.failed + 1

let fail_txn t (txn : Txn.t) reason =
  (* The physical layer is now inconsistent with the logical layer under
     this transaction's write set: quarantine until reconciliation. *)
  let result = rollback_logical t txn in
  List.iter (quarantine_path t) (write_paths txn);
  (match result with
   | Ok () -> finish t txn (Txn.Failed reason)
   | Error undo_reason ->
     finish t txn (Txn.Failed (reason ^ "; " ^ undo_reason)));
  release_locks t txn;
  t.st.failed <- t.st.failed + 1

(* ------------------------------------------------------------------ *)
(* Cross-shard two-phase commit (presumed abort).

   The coordinator is the lowest-numbered shard touched by the request.
   It W-locks its own roots, then asks every other touched shard to
   prepare: the participant runs a shadow transaction that W-locks its
   roots, persists the vote, and replies with snapshots of the locked
   subtrees.  The coordinator grafts the snapshots into its logical tree,
   simulates the full procedure, persists Started, atomically creates the
   decision record (the commit point), applies the tree, offers the full
   log to its own physical layer, and sends each participant its log
   slice.  The physical outcome is propagated with Finish — a rollback
   undoes each shard's slice via the ordinary undo machinery.

   Aborts need no durable record before the commit point: a missing
   decision record means abort, and a timed-out party can close the race
   by creating the record as Abort — the atomic first-writer-wins create
   arbitrates every interleaving. *)

let twopc_instant t ~txn name =
  Option.iter
    (fun tr -> Trace.instant tr ~txn ~cat:"2pc" ~name ())
    t.trace

let send_twopc t ~shard msg =
  ignore
    (Coord.Recipes.enqueue t.gclient ~queue:(Proto.twopc_queue shard)
       (Proto.twopc_to_string msg))

let read_decision t gid =
  if not t.cfg.twopc_decision_record then None
  else
    match Coord.Client.get t.gclient (Proto.twopc_decision_key gid) with
    | None -> None
    | Some (value, _) ->
      (match Proto.decision_of_string value with
       | Ok d -> Some d
       | Error reason ->
         Log.err (fun m ->
             m "%s: corrupt 2pc decision for %d: %s" t.cname gid reason);
         None)

(* Returns the decision in force: ours if the create won, the existing
   record's otherwise.  With the decision record ablated away, every
   proposal "wins" — and is forgotten at the next crash. *)
let propose_decision t gid proposal =
  if not t.cfg.twopc_decision_record then proposal
  else
    match
      Coord.Client.create t.gclient ~key:(Proto.twopc_decision_key gid)
        ~value:(Proto.decision_to_string proposal) ()
    with
    | Ok _ -> proposal
    | Error _ -> Option.value (read_decision t gid) ~default:proposal

let write_finish t gid ~ok =
  if t.cfg.twopc_decision_record then
    ignore
      (Coord.Client.create t.gclient ~key:(Proto.twopc_finish_key gid)
         ~value:(if ok then "ok" else "rollback") ())

let read_finish t gid =
  match Coord.Client.get t.gclient (Proto.twopc_finish_key gid) with
  | Some ("ok", _) -> Some true
  | Some (_, _) -> Some false
  | None -> None

(* Coordinator-side abort before the commit point: nothing was applied to
   any tree, so only locks and the pending entry need tearing down. *)
let abort_cross t (txn : Txn.t) reason =
  let gid = txn.Txn.id in
  (match Hashtbl.find_opt t.pending gid with
   | Some p ->
     Hashtbl.remove t.pending gid;
     ignore (propose_decision t gid Proto.Abort);
     List.iter
       (fun shard ->
         send_twopc t ~shard (Proto.Decide { gid; commit = false; log = [] }))
       p.participants
   | None -> ());
  (match Sched.remove t.sched gid with
   | `Blocked -> Mglock.cancel_wait t.locks ~txn:gid
   | `Ready | `Absent -> ());
  twopc_instant t ~txn:gid "2pc-abort";
  finish t txn (Txn.Aborted reason);
  release_locks t txn;
  t.st.aborted <- t.st.aborted + 1;
  t.st.twopc_aborted <- t.st.twopc_aborted + 1

(* Participant-side terminal transitions.  These do not bump the
   client-visible committed/aborted counters: the coordinator shard
   already accounts for the transaction once. *)
let finish_participant t (txn : Txn.t) state =
  (match Sched.remove t.sched txn.Txn.id with
   | `Blocked -> Mglock.cancel_wait t.locks ~txn:txn.Txn.id
   | `Ready | `Absent -> ());
  Hashtbl.remove t.parts txn.Txn.id;
  finish t txn state;
  release_locks t txn

(* Roll a decided-and-applied participant slice back (physical replay
   failed after the commit point, or the decision turned out to be abort
   on a redelivery race). *)
let rollback_participant t (txn : Txn.t) reason =
  match rollback_logical t txn with
  | Ok () -> finish_participant t txn (Txn.Aborted reason)
  | Error undo_reason ->
    finish_participant t txn (Txn.Failed (reason ^ "; " ^ undo_reason))

(* ------------------------------------------------------------------ *)
(* Scheduling (paper §3.1.1) *)

(* A re-attempt closes the park span left open when the txn last blocked,
   and credits the wait to the lock-wait phase recorder. *)
let note_reattempt t (txn : Txn.t) =
  Option.iter
    (fun tr ->
      ignore (Trace.end_named tr ~txn:txn.Txn.id ~name:"lock-wait" ());
      ignore (Trace.end_named tr ~txn:txn.Txn.id ~name:"breaker-park" ()))
    t.trace;
  match Hashtbl.find_opt t.wait_since txn.Txn.id with
  | Some since ->
    Hashtbl.remove t.wait_since txn.Txn.id;
    Metrics.Cdf.add t.st.lock_wait_lat (Des.Sim.now t.sim -. since)
  | None -> ()

(* Park a transaction on the lock-table node its acquisition conflicted
   at; the holder's release is the wake-up call. *)
let park_on_conflict t (txn : Txn.t) (conflict : Mglock.conflict) =
  txn.Txn.state <- Txn.Deferred;
  t.st.deferrals <- t.st.deferrals + 1;
  Hashtbl.replace t.wait_since txn.Txn.id (Des.Sim.now t.sim);
  Option.iter
    (fun tr ->
      ignore
        (Trace.begin_span tr ~txn:txn.Txn.id ~cat:"lock" ~name:"lock-wait"
           ~attrs:
             [ ("path", Data.Path.to_string conflict.Mglock.path);
               ("wanted", Mglock.mode_to_string conflict.Mglock.wanted);
               ("holder", string_of_int conflict.Mglock.holder);
               ("held", Mglock.mode_to_string conflict.Mglock.held) ]
           ()))
    t.trace;
  Mglock.wait t.locks ~txn:txn.Txn.id ~on:conflict.Mglock.path

(* Participant shadow transaction: W-lock the requested roots, persist the
   vote, reply with snapshots of the locked subtrees.  Never offered to
   the physical layer. *)
let try_start_participant t (txn : Txn.t) : Sched.attempt =
  note_reattempt t txn;
  let gid = txn.Txn.id in
  match Hashtbl.find_opt t.parts gid with
  | None ->
    (* The coordinator gave up on us (Decide abort arrived while queued). *)
    finish t txn (Txn.Aborted "2pc aborted before prepare");
    `Finished
  | Some part ->
    let roots = Router.arg_paths txn.Txn.args in
    let vote_no reason =
      Hashtbl.remove t.parts gid;
      finish t txn (Txn.Aborted reason);
      send_twopc t ~shard:part.coord
        (Proto.Prepared
           { gid; shard = t.shard.Shard.sid; ok = false; reason; snaps = [] });
      `Finished
    in
    if List.exists (is_quarantined t) roots then
      vote_no "resource quarantined pending reconciliation"
    else begin
      let locks = List.map (fun p -> (p, Mglock.W)) roots in
      match Mglock.try_acquire t.locks ~txn:gid locks with
      | Error conflict ->
        park_on_conflict t txn conflict;
        `Conflict
      | Ok () ->
        let snaps =
          List.filter_map
            (fun root ->
              match Data.Tree.subtree t.tree root with
              | Ok node -> Some (root, Data.Tree.node_to_sexp node)
              | Error _ -> None)
            roots
        in
        if List.length snaps <> List.length roots then begin
          wake_released t (Mglock.release_all t.locks ~txn:gid);
          vote_no "participant root missing from logical tree"
        end
        else begin
          txn.Txn.state <- Txn.Started;
          txn.Txn.locks <- locks;
          txn.Txn.start_seq <- Some t.next_start_seq;
          t.next_start_seq <- t.next_start_seq + 1;
          (* The Prepared vote is a durability promise to the coordinator:
             the record must hit the coordination service before the vote
             leaves, so it is never deferred into a batch flush. *)
          persist_now t ~client:t.client txn;
          part.pt_deadline <-
            Des.Sim.now t.sim +. t.cfg.twopc_prepare_timeout;
          t.st.twopc_prepares <- t.st.twopc_prepares + 1;
          twopc_instant t ~txn:gid "2pc-prepared";
          send_twopc t ~shard:part.coord
            (Proto.Prepared
               { gid; shard = t.shard.Shard.sid; ok = true; reason = "";
                 snaps });
          `Started
        end
    end

(* Coordinator admission of a cross-shard transaction: W-lock the locally
   owned roots, then fan the prepare out and park until the votes are in
   (the 2PC drain, not a lock release, finishes this transaction). *)
let try_start_cross t (txn : Txn.t) ~participants : Sched.attempt =
  note_reattempt t txn;
  let gid = txn.Txn.id in
  let own_roots =
    Router.arg_paths txn.Txn.args
    |> List.filter (Shard.owns t.shard)
    |> List.sort_uniq Data.Path.compare
  in
  if List.exists (is_quarantined t) own_roots then begin
    finish t txn (Txn.Aborted "resource quarantined pending reconciliation");
    t.st.aborted <- t.st.aborted + 1;
    t.st.twopc_aborted <- t.st.twopc_aborted + 1;
    `Finished
  end
  else begin
    let locks = List.map (fun p -> (p, Mglock.W)) own_roots in
    match Mglock.try_acquire t.locks ~txn:gid locks with
    | Error conflict ->
      park_on_conflict t txn conflict;
      `Conflict
    | Ok () ->
      txn.Txn.locks <- locks;
      let now = Des.Sim.now t.sim in
      Hashtbl.replace t.pending gid
        {
          participants;
          votes = [];
          decided = false;
          p2_deadline = now +. t.cfg.twopc_prepare_timeout;
        };
      t.st.twopc_started <- t.st.twopc_started + 1;
      twopc_instant t ~txn:gid "2pc-prepare";
      List.iter
        (fun shard ->
          let roots =
            Router.arg_paths txn.Txn.args
            |> List.filter (fun p -> Shard.owner_of t.shard p = shard)
            |> List.sort_uniq Data.Path.compare
          in
          send_twopc t ~shard
            (Proto.Prepare { gid; coord = t.shard.Shard.sid; roots }))
        participants;
      (* Parked in the scheduler's blocked table with no lock waiter: the
         incoming votes (or the prepare timeout) resolve it. *)
      `Conflict
  end

let try_start_single t (txn : Txn.t) : Sched.attempt =
  note_reattempt t txn;
  let sim_t0 = Des.Sim.now t.sim in
  let sim_span =
    Option.map
      (fun tr ->
        Trace.begin_span tr ~txn:txn.Txn.id ~cat:"controller" ~name:"simulate"
          ())
      t.trace
  in
  let end_simulate ~outcome ~actions =
    Metrics.Cdf.add t.st.simulate_lat (Des.Sim.now t.sim -. sim_t0);
    match (t.trace, sim_span) with
    | Some tr, Some sid ->
      Trace.end_span tr
        ~attrs:
          (("outcome", outcome)
          ::
          (match actions with
           | None -> []
           | Some n -> [ ("actions", string_of_int n) ]))
        sid
    | _ -> ()
  in
  match
    Logical.simulate ~guard_locks:t.cfg.constraint_guard_locks t.env
      ~tree:t.tree ~proc:txn.Txn.proc ~args:txn.Txn.args
  with
  | Error reason ->
    Des.Station.request t.cpu ~service:t.cfg.cpu_per_txn;
    end_simulate ~outcome:"violation" ~actions:None;
    finish t txn (Txn.Aborted reason);
    t.st.aborted <- t.st.aborted + 1;
    t.st.violations <- t.st.violations + 1;
    `Finished
  | Ok { Logical.new_tree; log; locks; actions } ->
    (* The CPU cost model of logical simulation: base + per-action. *)
    Des.Station.request t.cpu
      ~service:(t.cfg.cpu_per_txn +. (t.cfg.cpu_per_action *. float_of_int actions));
    end_simulate ~outcome:"ok" ~actions:(Some actions);
    if List.exists (fun (path, _) -> is_quarantined t path) locks then begin
      Option.iter
        (fun tr ->
          Trace.instant tr ~txn:txn.Txn.id ~cat:"controller"
            ~name:"quarantine-abort" ())
        t.trace;
      finish t txn (Txn.Aborted "resource quarantined pending reconciliation");
      t.st.aborted <- t.st.aborted + 1;
      `Finished
    end
    else begin
      (* Circuit breakers gate admission to the device subtrees the write
         set touches — before lock acquisition or hardware contact.  A
         tripped subtree parks the transaction in the scheduler's blocked
         table (no Mglock waiter: the health monitor, not a lock release,
         wakes it once the breaker ages out). *)
      Hashtbl.remove t.breaker_parked txn.Txn.id;
      let now = Des.Sim.now t.sim in
      let gates =
        List.map
          (fun root -> (root, Health.gate t.health ~now ~root))
          (write_roots t locks)
      in
      refresh_breaker_stats t;
      if List.exists (fun (_, g) -> g = `Defer) gates then begin
        txn.Txn.state <- Txn.Deferred;
        t.st.breaker_deferrals <- t.st.breaker_deferrals + 1;
        Hashtbl.replace t.breaker_parked txn.Txn.id (List.map fst gates);
        Option.iter
          (fun tr ->
            let roots =
              List.filter_map
                (fun (root, g) ->
                  if g = `Defer then Some (Data.Path.to_string root) else None)
                gates
            in
            ignore
              (Trace.begin_span tr ~txn:txn.Txn.id ~cat:"health"
                 ~name:"breaker-park"
                 ~attrs:[ ("roots", String.concat "," roots) ]
                 ()))
          t.trace;
        `Conflict
      end
      else begin
        match Mglock.try_acquire t.locks ~txn:txn.Txn.id locks with
        | Error conflict ->
          park_on_conflict t txn conflict;
          `Conflict
        | Ok () ->
          List.iter
            (fun (root, g) ->
              if g = `Probe then
                Health.begin_probe t.health ~now ~root ~txn:txn.Txn.id)
            gates;
          refresh_breaker_stats t;
          Hashtbl.replace t.started_at txn.Txn.id now;
          Option.iter
            (fun tr ->
              Trace.instant tr ~txn:txn.Txn.id ~cat:"sched" ~name:"started"
                ~attrs:[ ("start_seq", string_of_int t.next_start_seq) ]
                ())
            t.trace;
          txn.Txn.state <- Txn.Started;
          txn.Txn.log <- log;
          txn.Txn.locks <- locks;
          txn.Txn.start_seq <- Some t.next_start_seq;
          t.next_start_seq <- t.next_start_seq + 1;
          persist t txn;
          t.tree <- new_tree;
          (* During a deferred drain the phyQ offer waits until the Started
             record is flushed (record-before-offer, same order as the
             synchronous path).  A crash between flush and offer leaves a
             Started record with no queue item — recovery's [needs_phy]
             re-offer covers exactly that window. *)
          if deferring t then t.phyq_buf <- txn.Txn.id :: t.phyq_buf
          else
            ignore
              (Coord.Recipes.enqueue t.client
                 ~queue:(Proto.phy_queue_ns t.ns)
                 (string_of_int txn.Txn.id));
          `Started
      end
    end

let try_start t (txn : Txn.t) : Sched.attempt =
  if is_participant txn then try_start_participant t txn
  else if t.shard.Shard.count = 1 then try_start_single t txn
  else
    match Router.classify t.shard ~args:txn.Txn.args with
    | Router.Single _ -> try_start_single t txn
    | Router.Cross { participants; coord } ->
      let participants =
        List.filter (fun s -> s <> t.shard.Shard.sid) (coord :: participants)
      in
      try_start_cross t txn ~participants

(* One scheduler pass: deliver the buffered wakes in a single [Sched.wake],
   then drain.  Draining can release more waiters (participant vote-no,
   cross-shard decisions), so loop until the buffer stays empty. *)
let rec schedule t =
  t.wake_pending <- false;
  flush_wakes t;
  (* The drain itself runs with persists deferred: every txn the pass
     starts batches its Started record into one pooled flush, and the phyQ
     offers follow only once those records are durable.  Participant
     prepares opt out via [persist_now] (the vote is the durability
     promise). *)
  t.defer_persists <- true;
  Sched.drain t.sched ~attempt:(try_start t) ~on_spurious:(fun _ ->
      t.st.spurious_wakeups <- t.st.spurious_wakeups + 1);
  t.defer_persists <- false;
  flush_persists t;
  (match List.rev t.phyq_buf with
   | [] -> ()
   | ids ->
     t.phyq_buf <- [];
     run_coord_jobs t
       (List.map
          (fun id -> Penqueue (Proto.phy_queue_ns t.ns, string_of_int id))
          ids));
  if Hashtbl.length t.wake_buf > 0 then schedule t

(* ------------------------------------------------------------------ *)
(* Input processing *)

(* Request items are processed in key order and their seq numbers increase
   monotonically, so anything at or below [max_request_seq] is a redelivery
   (a previous leader died after accepting but before deleting the item).
   Returns true when the scheduler must run — per §3.1.1 only when the
   transaction lands in an {e empty} todoQ; a non-empty todoQ means the head
   is deferred on a lock conflict and will be retried when a transaction
   completes, not on every arrival. *)
let accept_request t ~txn_id ~proc ~args =
  if txn_id <= t.max_request_seq || Hashtbl.mem t.txns txn_id then false
  else begin
    t.max_request_seq <- txn_id;
    let txn =
      Txn.make ~id:txn_id ~proc ~args ~submitted_at:(Des.Sim.now t.sim)
    in
    Hashtbl.replace t.txns txn_id txn;
    t.st.accepted <- t.st.accepted + 1;
    (* Root span for the whole transaction lifecycle; children auto-parent
       onto it, and [finish] closes it with the terminal state. *)
    Option.iter
      (fun tr ->
        ignore (Trace.begin_span tr ~txn:txn_id ~cat:"txn" ~name:proc ()))
      t.trace;
    (* Admission control: once the pending queue reaches the high
       watermark, shed new arrivals with a fast overload abort — no locks,
       no hardware — until it drains back to the low watermark
       (hysteresis), so admission latency stays bounded under storms. *)
    let pending = Sched.length t.sched in
    let shed =
      match t.cfg.admission.Health.queue_high with
      | None -> false
      | Some high ->
        if t.shedding then
          if pending <= t.cfg.admission.Health.queue_low then begin
            t.shedding <- false;
            false
          end
          else true
        else if pending >= high then begin
          t.shedding <- true;
          Log.info (fun m ->
              m "%s: admission shedding on (pending=%d >= high=%d)" t.cname
                pending high);
          true
        end
        else false
    in
    if shed then begin
      Option.iter
        (fun tr ->
          Trace.instant tr ~txn:txn_id ~cat:"admission" ~name:"shed"
            ~attrs:[ ("pending", string_of_int pending) ]
            ())
        t.trace;
      finish t txn (Txn.Aborted Txn.overload_reason);
      t.st.aborted <- t.st.aborted + 1;
      t.st.sheds <- t.st.sheds + 1;
      false
    end
    else begin
      txn.Txn.state <- Txn.Accepted;
      Option.iter
        (fun tr -> Trace.instant tr ~txn:txn_id ~cat:"sched" ~name:"ready" ())
        t.trace;
      persist t txn;
      Sched.submit t.sched txn
    end
  end

let handle_result t ~txn_id ~outcome ~(exec : Proto.exec_stats) =
  match Hashtbl.find_opt t.txns txn_id with
  | None -> () (* unknown or already finalized by a previous leader *)
  | Some txn ->
    if txn.Txn.state = Txn.Started then begin
      (* Accumulate the worker's robustness counters only on the first
         (effective) delivery; redeliveries after a leader crash would
         double-count otherwise. *)
      t.st.exec_retries <- t.st.exec_retries + exec.Proto.retries;
      t.st.transient_failures <-
        t.st.transient_failures + exec.Proto.transient_failures;
      t.st.timeouts <- t.st.timeouts + exec.Proto.timeouts;
      Metrics.Cdf.add t.st.replay_lat exec.Proto.replay_s;
      (match outcome with
       | Proto.Phy_aborted _ -> Metrics.Cdf.add t.st.undo_lat exec.Proto.undo_s
       | Proto.Phy_failed _ when exec.Proto.undo_s > 0. ->
         Metrics.Cdf.add t.st.undo_lat exec.Proto.undo_s
       | Proto.Phy_committed | Proto.Phy_failed _ -> ());
      (* Health scoring: fold the outcome into the written device roots.
         Operator-signaled transactions are excluded — their abort says
         nothing about device health — but must still release a canary
         claim they may hold. *)
      let now = Des.Sim.now t.sim in
      let latency =
        match Hashtbl.find_opt t.started_at txn_id with
        | Some s -> now -. s
        | None -> 0.
      in
      Hashtbl.remove t.started_at txn_id;
      if Hashtbl.mem t.signaled txn_id then
        Health.forget_probe t.health ~txn:txn_id
      else
        List.iter
          (fun root ->
            Health.observe t.health ~now ~root ~txn:txn_id
              ~ok:(outcome = Proto.Phy_committed)
              ~retries:exec.Proto.retries ~timeouts:exec.Proto.timeouts
              ~latency)
          (write_roots t txn.Txn.locks);
      refresh_breaker_stats t;
      (match outcome with
       | Proto.Phy_committed -> commit_txn t txn
       | Proto.Phy_aborted reason -> abort_txn t txn reason
       | Proto.Phy_failed reason -> fail_txn t txn reason);
      (* Cross-shard coordinator: propagate the physical outcome to the
         participants (rollback included — their slices undo through the
         same machinery). *)
      (match Hashtbl.find_opt t.pending txn_id with
       | Some p when p.decided ->
         Hashtbl.remove t.pending txn_id;
         let ok = txn.Txn.state = Txn.Committed in
         (* The terminal txn record must be durable before the Finish
            marker: participants take the marker as license to forget. *)
         flush_persists t;
         write_finish t txn_id ~ok;
         twopc_instant t ~txn:txn_id "2pc-finish";
         List.iter
           (fun shard ->
             send_twopc t ~shard (Proto.Finish { gid = txn_id; ok }))
           p.participants
       | Some _ | None -> ());
      (* Clean up the signal marker, if one was ever written. *)
      if Hashtbl.mem t.signaled txn_id then begin
        Hashtbl.remove t.signaled txn_id;
        ignore
          (Coord.Client.delete t.client ~key:(Proto.signal_key_ns t.ns txn_id)
             ())
      end
    end

(* ------------------------------------------------------------------ *)
(* Signals (§4) *)

let handle_signal t ~txn_id signal =
  match Hashtbl.find_opt t.txns txn_id with
  | None -> ()
  | Some txn ->
    (match txn.Txn.state with
     | Txn.Accepted | Txn.Deferred | Txn.Started ->
       (match signal with
        | Proto.Term -> t.st.terms <- t.st.terms + 1
        | Proto.Kill -> t.st.kills <- t.st.kills + 1)
     | Txn.Initialized | Txn.Committed | Txn.Aborted _ | Txn.Failed _ -> ());
    (match txn.Txn.state with
     | Txn.Accepted | Txn.Deferred when Hashtbl.mem t.pending txn_id ->
       (* Cross-shard coordinator still gathering votes: a decided abort
          releases the participants along with the local locks. *)
       abort_cross t txn
         (Printf.sprintf "signal %s during prepare"
            (Proto.signal_to_string signal))
     | Txn.Accepted | Txn.Deferred ->
       (* Not yet started: drop from the scheduler (and the lock manager's
          waiter index, if it was parked), nothing to roll back. *)
       (match Sched.remove t.sched txn_id with
        | `Blocked -> Mglock.cancel_wait t.locks ~txn:txn_id
        | `Ready | `Absent -> ());
       Hashtbl.remove t.breaker_parked txn_id;
       finish t txn
         (Txn.Aborted
            (Printf.sprintf "signal %s before start" (Proto.signal_to_string signal)));
       t.st.aborted <- t.st.aborted + 1
     | Txn.Started ->
       Hashtbl.replace t.signaled txn_id ();
       ignore
         (Coord.Client.write t.client ~key:(Proto.signal_key_ns t.ns txn_id)
            ~value:(Proto.signal_to_string signal) ());
       (match signal with
        | Proto.Term ->
          (* Graceful: the worker stops, undoes, and reports an abort; the
             normal result path rolls back the logical layer. *)
          ()
        | Proto.Kill ->
          (* Immediate: abort in the logical layer only; the physical side
             is left as-is.  Recorded as Failed so the cross-layer
             inconsistency (and its quarantine) survives a controller
             fail-over until reconciliation. *)
          let result = rollback_logical t txn in
          List.iter (quarantine_path t) (write_paths txn);
          (match result with
           | Ok () -> finish t txn (Txn.Failed "killed by operator")
           | Error undo_reason ->
             finish t txn (Txn.Failed ("killed by operator; " ^ undo_reason)));
          release_locks t txn;
          Health.forget_probe t.health ~txn:txn_id;
          Hashtbl.remove t.started_at txn_id;
          t.st.failed <- t.st.failed + 1)
     | Txn.Initialized | Txn.Committed | Txn.Aborted _ | Txn.Failed _ -> ())

(* ------------------------------------------------------------------ *)
(* Reconciliation (§4) *)

let internal_lock_owner t =
  let owner = t.next_internal_txn in
  t.next_internal_txn <- t.next_internal_txn - 1;
  owner

let handle_reload t path =
  match t.devices path with
  | None -> Log.err (fun m -> m "%s: reload: no device at %a" t.cname Data.Path.pp path)
  | Some device ->
    let owner = internal_lock_owner t in
    (match Mglock.try_acquire t.locks ~txn:owner [ (path, Mglock.W) ] with
     | Error _ ->
       Log.info (fun m ->
           m "%s: reload of %a deferred (locked)" t.cname Data.Path.pp path)
     | Ok () ->
       Fun.protect
         ~finally:(fun () ->
           wake_released t (Mglock.release_all t.locks ~txn:owner))
         (fun () ->
           let physical = Devices.Device.export device in
           match Data.Tree.replace_subtree t.tree path physical with
           | Error e ->
             Log.err (fun m ->
                 m "%s: reload of %a failed: %s" t.cname Data.Path.pp path
                   (Data.Tree.error_to_string e))
           | Ok candidate ->
             (match
                Constraints.check_path (Dsl.constraints_of t.env) candidate path
              with
              | violation :: _ ->
                Log.info (fun m ->
                    m "%s: reload of %a aborted: %a" t.cname Data.Path.pp path
                      Constraints.pp_violation violation)
              | [] ->
                t.tree <- candidate;
                unquarantine_subtree t path;
                t.st.reloads <- t.st.reloads + 1)))

let handle_repair t path =
  if not (Shard.owns t.shard path) then
    Log.err (fun m ->
        m "%s: repair of %a refused: foreign shard's subtree" t.cname
          Data.Path.pp path)
  else
    match t.devices path with
  | None -> Log.err (fun m -> m "%s: repair: no device at %a" t.cname Data.Path.pp path)
  | Some device ->
    (match Data.Tree.subtree t.tree path with
     | Error e ->
       Log.err (fun m ->
           m "%s: repair of %a: %s" t.cname Data.Path.pp path
             (Data.Tree.error_to_string e))
     | Ok logical ->
       let physical = Devices.Device.export device in
       let plan =
         Recon.plan_repair ~rules:t.cfg.repair_rules ~at:path ~logical ~physical
       in
       let all_ok =
         List.for_all
           (fun (step : Recon.step) ->
             match
               Devices.Device.invoke device ~action:step.Recon.action
                 ~args:step.Recon.args
             with
             | Ok () ->
               t.st.repairs <- t.st.repairs + 1;
               true
             | Error err ->
               Log.err (fun m ->
                   m "%s: repair step %a failed: %s" t.cname Recon.pp_step step
                     (Devices.Device.error_to_string err));
               false)
           plan.Recon.steps
       in
       if all_ok && plan.Recon.unrepaired = [] then
         unquarantine_subtree t path
       else
         Log.info (fun m ->
             m "%s: repair of %a incomplete (%d unrepaired diffs)" t.cname
               Data.Path.pp path
               (List.length plan.Recon.unrepaired)))

(* ------------------------------------------------------------------ *)
(* Recovery (idempotent; §2.3) *)

let load_checkpoint t =
  let rec wait () =
    match Coord.Client.get t.client (Proto.checkpoint_key_ns t.ns) with
    | Some (value, _) ->
      (match Data.Sexp.of_string value with
       | Ok (Data.Sexp.List [ seq; tree ]) ->
         (match Data.Sexp.to_int seq, Data.Tree.of_sexp tree with
          | Ok seq, Ok tree ->
            t.checkpoint_seq <- seq;
            t.next_start_seq <- seq + 1;
            t.tree <- tree
          | _, _ -> failwith "corrupt checkpoint")
       | Ok _ | Error _ -> failwith "corrupt checkpoint")
    | None ->
      (* The platform bootstrap has not written the initial checkpoint yet. *)
      Des.Proc.sleep 0.2;
      wait ()
  in
  wait ()

let recover t =
  load_checkpoint t;
  let is_cross (txn : Txn.t) =
    (not (is_participant txn))
    && t.shard.Shard.count > 1
    && Router.is_cross t.shard ~args:txn.Txn.args
  in
  let record_keys =
    Coord.Client.get_children t.client (Proto.txns_prefix_ns t.ns)
  in
  let records =
    List.filter_map
      (fun key ->
        match Coord.Client.get t.client key with
        | None -> None
        | Some (value, _) ->
          (match Txn.of_string value with
           | Ok txn -> Some txn
           | Error reason ->
             Log.err (fun m -> m "%s: corrupt record %s: %s" t.cname key reason);
             None))
      record_keys
  in
  (* Replay the logical effects of everything at-or-beyond Started, in the
     order the previous leaders started them. *)
  let replayable =
    List.filter
      (fun (txn : Txn.t) ->
        (match txn.Txn.state with
         | Txn.Started | Txn.Committed -> true
         | Txn.Initialized | Txn.Accepted | Txn.Deferred
         | Txn.Aborted _ | Txn.Failed _ -> false)
        && match txn.Txn.start_seq with
           | Some seq -> seq > t.checkpoint_seq
           | None -> false)
      records
    |> List.sort (fun (a : Txn.t) b ->
           compare a.Txn.start_seq b.Txn.start_seq)
  in
  List.iter
    (fun (txn : Txn.t) ->
      (* A cross-shard coordinator log replays own-slice-only: the foreign
         records were simulated against participant snapshots that are not
         part of this shard's checkpoint lineage (the foreign subtrees of
         the local tree are cosmetic copies). *)
      let log =
        if is_cross txn then Xlog.slice txn.Txn.log ~keep:(Shard.owns t.shard)
        else txn.Txn.log
      in
      List.iter
        (fun record ->
          match Dsl.apply_record t.env t.tree record with
          | Ok tree' -> t.tree <- tree'
          | Error reason ->
            Log.err (fun m ->
                m "%s: recovery replay of txn %d failed: %s" t.cname
                  txn.Txn.id reason))
        log)
    replayable;
  (* Rebuild scheduler and lock state; figure out which Started txns still
     need to be (re)offered to the physical layer. *)
  let phy_ids =
    List.filter_map
      (fun key ->
        match Coord.Client.get t.client key with
        | Some (value, _) -> int_of_string_opt value
        | None -> None)
      (Coord.Client.get_children t.client (Proto.phy_queue_ns t.ns))
  in
  let result_ids =
    List.filter_map
      (fun key ->
        match Coord.Client.get t.client key with
        | Some (value, _) ->
          (match Proto.input_of_string value with
           | Ok (Proto.Result { txn_id; _ }) -> Some txn_id
           | Ok (Proto.Request _ | Proto.Control _) | Error _ -> None)
        | None -> None)
      (Coord.Client.get_children t.client (Proto.input_queue_ns t.ns))
  in
  let max_seq = ref t.checkpoint_seq in
  List.iter
    (fun (txn : Txn.t) ->
      (match txn.Txn.start_seq with
       | Some seq when seq > !max_seq -> max_seq := seq
       | Some _ | None -> ());
      match txn.Txn.state with
      | Txn.Accepted | Txn.Deferred ->
        (* Re-derive the blocked set rather than persist it: the txn goes
           back to the ready queue and the first post-recovery drain either
           starts it or re-parks it on its (rebuilt) conflict.  (A queued
           cross-shard coordinator simply re-runs its prepare round — the
           decision record arbitrates against any earlier attempt.) *)
        Hashtbl.replace t.txns txn.Txn.id txn;
        if is_participant txn then
          Hashtbl.replace t.parts txn.Txn.id
            {
              coord = txn.Txn.id mod t.shard.Shard.count;
              applied = false;
              pt_deadline =
                Des.Sim.now t.sim +. t.cfg.twopc_prepare_timeout;
            };
        ignore (Sched.submit t.sched txn)
      | Txn.Started ->
        Hashtbl.replace t.txns txn.Txn.id txn;
        (match Mglock.try_acquire t.locks ~txn:txn.Txn.id txn.Txn.locks with
         | Ok () -> ()
         | Error conflict ->
           Log.err (fun m ->
               m "%s: recovery lock conflict for txn %d: %a" t.cname
                 txn.Txn.id Mglock.pp_conflict conflict));
        let executing =
          Option.is_some
            (Coord.Client.get t.client (Proto.executing_key_ns t.ns txn.Txn.id))
        in
        let needs_phy =
          (not executing)
          && (not (List.mem txn.Txn.id phy_ids))
          && not (List.mem txn.Txn.id result_ids)
        in
        if is_participant txn then
          (* A prepared shadow transaction: never physical; rebuild the
             side state with an already-expired deadline, so the first
             drain consults the decision record. *)
          Hashtbl.replace t.parts txn.Txn.id
            {
              coord = txn.Txn.id mod t.shard.Shard.count;
              applied = txn.Txn.log <> [];
              pt_deadline = Des.Sim.now t.sim;
            }
        else if is_cross txn then
          (* Coordinator of an in-flight cross-shard transaction: the
             decision record (or its absence — presumed abort) resolves it
             on the first 2PC drain. *)
          t.recovered_cross <- (txn, needs_phy) :: t.recovered_cross
        else if needs_phy then
          ignore
            (Coord.Recipes.enqueue t.client ~queue:(Proto.phy_queue_ns t.ns)
               (string_of_int txn.Txn.id))
      | Txn.Failed _ ->
        (* A failed transaction left the layers inconsistent under its
           write set; a new leader must not serve those resources until
           reconciliation.  Conservative: if the previous leader already
           reconciled but had not yet checkpointed the record away, the
           subtree needs another reload. *)
        List.iter (quarantine_path t) (write_paths txn);
        if is_cross txn then
          t.recovered_cross_terminal <- txn :: t.recovered_cross_terminal;
        t.prune_candidates <-
          Txn.record_key_ns t.ns txn.Txn.id :: t.prune_candidates
      | Txn.Committed | Txn.Aborted _ ->
        if is_cross txn then
          t.recovered_cross_terminal <- txn :: t.recovered_cross_terminal;
        t.prune_candidates <-
          Txn.record_key_ns t.ns txn.Txn.id :: t.prune_candidates
      | Txn.Initialized -> ())
    (List.sort (fun (a : Txn.t) b -> compare a.Txn.id b.Txn.id) records);
  t.next_start_seq <- !max_seq + 1;
  (* Only this shard's own request stream advances the redelivery
     watermark: participant shadow records carry the coordinator's gid —
     a different residue class, numbered by a different submitter — and
     letting one of those (often far larger) ids in would make the new
     leader silently drop every later locally-numbered request as a
     redelivery. *)
  List.iter
    (fun (txn : Txn.t) ->
      if
        txn.Txn.id mod t.shard.Shard.count = t.shard.Shard.sid
        && txn.Txn.id > t.max_request_seq
      then t.max_request_seq <- txn.Txn.id)
    records;
  List.iter
    (fun key ->
      match Proto.seq_of_item_key key with
      | Ok txn_id -> Hashtbl.replace t.signaled txn_id ()
      | Error _ -> ())
    (Coord.Client.get_children t.client (Proto.signals_prefix_ns t.ns));
  Log.info (fun m ->
      m "%s: recovered: %d records, todo=%d, inflight=%d, tree=%d nodes"
        t.cname (List.length records) (Sched.length t.sched) (inflight t)
        (Data.Tree.size t.tree))

(* ------------------------------------------------------------------ *)
(* 2PC message handling (drained from this shard's durable mailbox) *)

let subtree_snaps t roots =
  List.filter_map
    (fun root ->
      match Data.Tree.subtree t.tree root with
      | Ok node -> Some (root, Data.Tree.node_to_sexp node)
      | Error _ -> None)
    roots

(* Participant: apply the coordinator's decided log slice to the logical
   tree.  The coordinator's worker replays the full log physically, so the
   slice never reaches this shard's phyQ. *)
let apply_participant_slice t (txn : Txn.t) (part : part_2pc) log =
  List.iter
    (fun record ->
      match Dsl.apply_record t.env t.tree record with
      | Ok tree' -> t.tree <- tree'
      | Error reason ->
        Log.err (fun m ->
            m "%s: 2pc apply for txn %d failed: %s" t.cname txn.Txn.id reason))
    log;
  txn.Txn.log <- log;
  persist t txn;
  part.applied <- true;
  part.pt_deadline <- Des.Sim.now t.sim +. t.cfg.twopc_prepare_timeout;
  twopc_instant t ~txn:txn.Txn.id "2pc-applied"

(* Participant receives a Prepare.  First delivery spawns the shadow
   transaction; redeliveries (process-then-delete, coordinator retry after
   fail-over) re-vote from current state. *)
let handle_prepare t ~gid ~coord ~roots =
  match Hashtbl.find_opt t.txns gid with
  | Some txn ->
    (match Hashtbl.find_opt t.parts gid with
     | Some part when txn.Txn.state = Txn.Started && not part.applied ->
       send_twopc t ~shard:coord
         (Proto.Prepared
            {
              gid;
              shard = t.shard.Shard.sid;
              ok = true;
              reason = "";
              snaps = subtree_snaps t (Router.arg_paths txn.Txn.args);
            })
     | Some _ -> ()
     | None ->
       (match txn.Txn.state with
        | Txn.Aborted reason ->
          send_twopc t ~shard:coord
            (Proto.Prepared
               { gid; shard = t.shard.Shard.sid; ok = false; reason; snaps = [] })
        | Txn.Initialized | Txn.Accepted | Txn.Deferred | Txn.Started
        | Txn.Committed | Txn.Failed _ -> ()));
    false
  | None ->
    let args =
      List.map (fun p -> Data.Value.Str (Data.Path.to_string p)) roots
    in
    let txn =
      Txn.make ~id:gid ~proc:participant_proc ~args
        ~submitted_at:(Des.Sim.now t.sim)
    in
    txn.Txn.state <- Txn.Accepted;
    Hashtbl.replace t.txns gid txn;
    Hashtbl.replace t.parts gid
      {
        coord;
        applied = false;
        pt_deadline = Des.Sim.now t.sim +. t.cfg.twopc_prepare_timeout;
      };
    persist t txn;
    ignore (Sched.submit t.sched txn);
    true

(* Coordinator has every vote in: graft the participant snapshots, simulate
   the full procedure against the combined view, and atomically create the
   decision record — the commit point of the whole transaction. *)
let decide_cross t (txn : Txn.t) (p : pending_2pc) =
  let gid = txn.Txn.id in
  let abort reason = abort_cross t txn reason in
  let grafted =
    List.fold_left
      (fun tree (_, snaps) ->
        List.fold_left
          (fun tree (path, sexp) ->
            match Data.Tree.node_of_sexp sexp with
            | Error _ -> tree
            | Ok node ->
              (match Data.Tree.replace_subtree tree path node with
               | Ok tree' -> tree'
               | Error _ -> tree))
          tree snaps)
      t.tree p.votes
  in
  let sim_t0 = Des.Sim.now t.sim in
  match
    Logical.simulate ~guard_locks:t.cfg.constraint_guard_locks t.env
      ~tree:grafted ~proc:txn.Txn.proc ~args:txn.Txn.args
  with
  | Error reason ->
    Des.Station.request t.cpu ~service:t.cfg.cpu_per_txn;
    t.st.violations <- t.st.violations + 1;
    abort reason
  | Ok { Logical.new_tree; log; locks; actions } ->
    Des.Station.request t.cpu
      ~service:
        (t.cfg.cpu_per_txn +. (t.cfg.cpu_per_action *. float_of_int actions));
    Metrics.Cdf.add t.st.simulate_lat (Des.Sim.now t.sim -. sim_t0);
    let permitted sid =
      sid = t.shard.Shard.sid || List.mem sid p.participants
    in
    if
      List.exists
        (fun (path, _) -> not (permitted (Shard.owner_of t.shard path)))
        locks
    then abort "write set escaped the prepared shards"
    else if
      List.exists
        (fun (path, _) -> Shard.owns t.shard path && is_quarantined t path)
        locks
    then abort "resource quarantined pending reconciliation"
    else begin
      (* Swap the prepare-time root locks for the simulated lock set
         (finer-grained; includes the foreign paths in this table so local
         reconciliation serializes against the in-flight 2PC). *)
      wake_released t (Mglock.release_all t.locks ~txn:gid);
      match Mglock.try_acquire t.locks ~txn:gid locks with
      | Error conflict ->
        abort
          (Format.asprintf "lock conflict after prepare: %a" Mglock.pp_conflict
             conflict)
      | Ok () ->
        txn.Txn.state <- Txn.Started;
        txn.Txn.log <- log;
        txn.Txn.locks <- locks;
        txn.Txn.start_seq <- Some t.next_start_seq;
        t.next_start_seq <- t.next_start_seq + 1;
        persist t txn;
        let slices =
          List.map
            (fun sid ->
              ( sid,
                Xlog.slice log ~keep:(fun path ->
                    Shard.owner_of t.shard path = sid) ))
            p.participants
        in
        (match propose_decision t gid (Proto.Commit slices) with
         | Proto.Abort ->
           (* A timed-out participant presumed abort first; obey the
              record.  The tree was never applied, so nothing rolls back. *)
           Hashtbl.remove t.pending gid;
           (match Sched.remove t.sched gid with
            | `Blocked -> Mglock.cancel_wait t.locks ~txn:gid
            | `Ready | `Absent -> ());
           twopc_instant t ~txn:gid "2pc-abort";
           finish t txn (Txn.Aborted "2pc decision lost to presumed abort");
           release_locks t txn;
           t.st.aborted <- t.st.aborted + 1;
           t.st.twopc_aborted <- t.st.twopc_aborted + 1;
           List.iter
             (fun sid ->
               send_twopc t ~shard:sid
                 (Proto.Decide { gid; commit = false; log = [] }))
             p.participants
         | Proto.Commit _ ->
           p.decided <- true;
           p.p2_deadline <- Des.Sim.now t.sim +. t.cfg.twopc_prepare_timeout;
           t.tree <- new_tree;
           t.st.twopc_committed <- t.st.twopc_committed + 1;
           (match Sched.remove t.sched gid with
            | `Blocked -> Mglock.cancel_wait t.locks ~txn:gid
            | `Ready | `Absent -> ());
           Hashtbl.replace t.started_at gid (Des.Sim.now t.sim);
           twopc_instant t ~txn:gid "2pc-decide-commit";
           ignore
             (Coord.Recipes.enqueue t.client ~queue:(Proto.phy_queue_ns t.ns)
                (string_of_int gid));
           List.iter
             (fun sid ->
               let log = Option.value (List.assoc_opt sid slices) ~default:[] in
               send_twopc t ~shard:sid (Proto.Decide { gid; commit = true; log }))
             p.participants)
    end

(* Coordinator receives a vote. *)
let handle_prepared t ~gid ~shard ~ok ~reason ~snaps =
  match Hashtbl.find_opt t.pending gid with
  | None -> false (* already decided or aborted; the record arbitrates *)
  | Some p ->
    (match Hashtbl.find_opt t.txns gid with
     | None ->
       Hashtbl.remove t.pending gid;
       false
     | Some txn ->
       if p.decided then false
       else if not ok then begin
         abort_cross t txn
           (Printf.sprintf "shard %d refused prepare: %s" shard reason);
         true
       end
       else if List.mem_assoc shard p.votes then false
       else begin
         p.votes <- (shard, snaps) :: p.votes;
         if List.length p.votes = List.length p.participants then begin
           decide_cross t txn p;
           true
         end
         else false
       end)

(* Participant receives the decision. *)
let handle_decide t ~gid ~commit ~log =
  match Hashtbl.find_opt t.parts gid with
  | None -> false
  | Some part ->
    (match Hashtbl.find_opt t.txns gid with
     | None ->
       Hashtbl.remove t.parts gid;
       false
     | Some txn ->
       if not commit then begin
         if part.applied then rollback_participant t txn "2pc abort"
         else if txn.Txn.state = Txn.Started then
           finish_participant t txn (Txn.Aborted "2pc abort")
         else begin
           (* Still queued: drop before it ever votes. *)
           (match Sched.remove t.sched gid with
            | `Blocked -> Mglock.cancel_wait t.locks ~txn:gid
            | `Ready | `Absent -> ());
           Hashtbl.remove t.parts gid;
           finish t txn (Txn.Aborted "2pc abort before prepare")
         end;
         true
       end
       else begin
         if txn.Txn.state = Txn.Started && not part.applied then
           apply_participant_slice t txn part log;
         false
       end)

(* Participant receives the physical outcome. *)
let handle_finish t ~gid ~ok =
  match Hashtbl.find_opt t.parts gid with
  | None -> false
  | Some part ->
    (match Hashtbl.find_opt t.txns gid with
     | None ->
       Hashtbl.remove t.parts gid;
       false
     | Some txn ->
       if ok then finish_participant t txn Txn.Committed
       else if part.applied then
         rollback_participant t txn "2pc physical rollback"
       else finish_participant t txn (Txn.Aborted "2pc physical rollback");
       true)

(* Presumed abort: a coordinator stuck gathering votes aborts outright; a
   prepared participant that waited too long closes the race by creating
   the decision record as Abort itself — if the create loses, it obeys the
   commit it reads (applying its slice from the record's payload). *)
let check_timeouts t =
  let now = Des.Sim.now t.sim in
  let progressed = ref false in
  let stale_coords =
    Hashtbl.fold
      (fun gid p acc ->
        if (not p.decided) && now >= p.p2_deadline then gid :: acc else acc)
      t.pending []
  in
  List.iter
    (fun gid ->
      match Hashtbl.find_opt t.txns gid with
      | Some txn ->
        abort_cross t txn "2pc prepare timed out";
        progressed := true
      | None -> Hashtbl.remove t.pending gid)
    stale_coords;
  let waiting =
    Hashtbl.fold
      (fun gid part acc ->
        if now >= part.pt_deadline then (gid, part) :: acc else acc)
      t.parts []
  in
  List.iter
    (fun (gid, (part : part_2pc)) ->
      match Hashtbl.find_opt t.txns gid with
      | None -> Hashtbl.remove t.parts gid
      | Some txn ->
        if txn.Txn.state <> Txn.Started then
          (* Not yet voted (queued or lock-parked): nothing to presume. *)
          part.pt_deadline <- now +. t.cfg.twopc_prepare_timeout
        else if not part.applied then (
          match propose_decision t gid Proto.Abort with
          | Proto.Abort ->
            twopc_instant t ~txn:gid "2pc-presume-abort";
            finish_participant t txn (Txn.Aborted "2pc presumed abort");
            (* Not [st.aborted] — the coordinator shard accounts for the
               client-visible outcome — but it is a 2PC abort this shard
               decided, and the counter doc promises presumed aborts. *)
            t.st.twopc_aborted <- t.st.twopc_aborted + 1;
            progressed := true
          | Proto.Commit slices ->
            let log =
              Option.value (List.assoc_opt t.shard.Shard.sid slices) ~default:[]
            in
            apply_participant_slice t txn part log)
        else
          match read_finish t gid with
          | Some true ->
            finish_participant t txn Txn.Committed;
            progressed := true
          | Some false ->
            rollback_participant t txn "2pc physical rollback";
            progressed := true
          | None -> part.pt_deadline <- now +. t.cfg.twopc_prepare_timeout)
    waiting;
  !progressed

(* Cross-shard transactions a new leader inherited: terminal coordinators
   re-broadcast their verdict (the participants may never have heard it);
   in-flight ones resolve against the decision record — missing means
   presumed abort. *)
let participants_of t (txn : Txn.t) =
  match Router.classify t.shard ~args:txn.Txn.args with
  | Router.Single _ -> []
  | Router.Cross { coord; participants } ->
    List.filter (fun s -> s <> t.shard.Shard.sid) (coord :: participants)

let resolve_recovered t =
  let inflight_cross = t.recovered_cross in
  t.recovered_cross <- [];
  let terminal = t.recovered_cross_terminal in
  t.recovered_cross_terminal <- [];
  List.iter
    (fun (txn : Txn.t) ->
      let gid = txn.Txn.id in
      let ok = txn.Txn.state = Txn.Committed in
      write_finish t gid ~ok;
      List.iter
        (fun sid -> send_twopc t ~shard:sid (Proto.Finish { gid; ok }))
        (participants_of t txn))
    terminal;
  let progressed = ref false in
  List.iter
    (fun ((txn : Txn.t), needs_phy) ->
      let gid = txn.Txn.id in
      let participants = participants_of t txn in
      let now = Des.Sim.now t.sim in
      let commit slices =
        Hashtbl.replace t.pending gid
          {
            participants;
            votes = [];
            decided = true;
            p2_deadline = now +. t.cfg.twopc_prepare_timeout;
          };
        List.iter
          (fun sid ->
            let log = Option.value (List.assoc_opt sid slices) ~default:[] in
            send_twopc t ~shard:sid (Proto.Decide { gid; commit = true; log }))
          participants;
        if needs_phy then
          ignore
            (Coord.Recipes.enqueue t.client ~queue:(Proto.phy_queue_ns t.ns)
               (string_of_int gid))
      in
      let abort () =
        (* Recovery replayed this coordinator's own slice into the tree;
           undo exactly that slice. *)
        txn.Txn.log <- Xlog.slice txn.Txn.log ~keep:(Shard.owns t.shard);
        twopc_instant t ~txn:gid "2pc-recovery-abort";
        (match rollback_logical t txn with
         | Ok () -> finish t txn (Txn.Aborted "2pc presumed abort on recovery")
         | Error undo_reason ->
           finish t txn
             (Txn.Failed ("2pc presumed abort on recovery; " ^ undo_reason)));
        release_locks t txn;
        t.st.aborted <- t.st.aborted + 1;
        t.st.twopc_aborted <- t.st.twopc_aborted + 1;
        List.iter
          (fun sid ->
            send_twopc t ~shard:sid
              (Proto.Decide { gid; commit = false; log = [] }))
          participants;
        progressed := true
      in
      match read_decision t gid with
      | Some (Proto.Commit slices) -> commit slices
      | Some Proto.Abort -> abort ()
      | None ->
        (match propose_decision t gid Proto.Abort with
         | Proto.Commit slices -> commit slices
         | Proto.Abort -> abort ()))
    inflight_cross;
  !progressed

(* Drain this shard's 2PC mailbox (process-then-delete, like inputQ).
   Returns true when the scheduler should run afterwards. *)
let drain_twopc t =
  if t.shard.Shard.count = 1 then false
  else begin
    let progressed = ref (resolve_recovered t) in
    let queue = Proto.twopc_queue t.shard.Shard.sid in
    let rec loop () =
      match Coord.Client.first_child_value t.gclient queue with
      | None -> ()
      | Some (key, payload) ->
        (match Proto.twopc_of_string payload with
         | Error reason ->
           Log.err (fun m -> m "%s: bad 2pc item %s: %s" t.cname key reason)
         | Ok (Proto.Prepare { gid; coord; roots }) ->
           if handle_prepare t ~gid ~coord ~roots then progressed := true
         | Ok (Proto.Prepared { gid; shard; ok; reason; snaps }) ->
           if handle_prepared t ~gid ~shard ~ok ~reason ~snaps then
             progressed := true
         | Ok (Proto.Decide { gid; commit; log }) ->
           if handle_decide t ~gid ~commit ~log then progressed := true
         | Ok (Proto.Finish { gid; ok }) ->
           if handle_finish t ~gid ~ok then progressed := true);
        ignore (Coord.Client.delete t.gclient ~key ());
        loop ()
    in
    loop ();
    if check_timeouts t then progressed := true;
    !progressed
  end

(* ------------------------------------------------------------------ *)
(* Main loop *)

(* Returns true when the scheduler should run afterwards (paper §3.1.1:
   arrival into an empty queue, or a transaction completing). *)
let process_item t ~key ~payload =
  match Proto.input_of_string payload with
  | Error reason ->
    Log.err (fun m -> m "%s: bad input item %s: %s" t.cname key reason);
    false
  | Ok (Proto.Request { proc; args }) ->
    (match Proto.seq_of_item_key key with
     | Ok seq ->
       (* Transaction ids carry the shard in the residue (id mod shards =
          sid), so any party can route an id without a lookup; at one
          shard this is the identity map.  Submitting clients compute the
          same id from the enqueue key. *)
       let txn_id = (seq * t.shard.Shard.count) + t.shard.Shard.sid in
       accept_request t ~txn_id ~proc ~args
     | Error reason ->
       Log.err (fun m -> m "%s: %s" t.cname reason);
       false)
  | Ok (Proto.Result { txn_id; outcome; exec }) ->
    handle_result t ~txn_id ~outcome ~exec;
    true
  | Ok (Proto.Control (Proto.Reload path)) ->
    handle_reload t path;
    true
  | Ok (Proto.Control (Proto.Repair path)) ->
    handle_repair t path;
    true
  | Ok (Proto.Control (Proto.Signal (txn_id, signal))) ->
    handle_signal t ~txn_id signal;
    true

(* Take the head of inputQ with process-then-delete semantics: if we crash
   mid-processing the item is re-processed by the next leader, and every
   handler above is idempotent. *)
let next_item t =
  let queue = Proto.input_queue_ns t.ns in
  match Coord.Client.first_child_value t.client queue with
  | Some item -> Some item
  | None ->
    Coord.Client.watch_children t.client queue;
    (match Coord.Client.first_child_value t.client queue with
     | Some item -> Some item
     | None ->
       ignore (Coord.Client.await_change t.client ~timeout:1.0);
       None)

(* §4: inconsistencies are "detected by periodically comparing the data
   between the two layers", and repair runs at an operator-chosen
   frequency.  The sweeper compares every device's exported state with the
   logical subtree (a read-only snapshot comparison) and enqueues Repair
   controls for divergent or quarantined subtrees, so the healing itself
   serializes with transaction processing in the main loop. *)
let spawn_repair_sweeper t interval =
  let device_diverged root =
    match t.devices root with
    | None -> false
    | Some device ->
      (match Data.Tree.subtree t.tree root with
       | Error _ -> false
       | Ok logical ->
         not (Data.Tree.equal logical (Devices.Device.export device)))
  in
  let sweeper () =
    while not t.stopped do
      Des.Proc.sleep interval;
      if t.leading && not t.stopped then begin
        let quarantined_roots =
          List.filter_map (fun path -> t.devices path) (quarantined t)
          |> List.map Devices.Device.root
        in
        let drifted =
          List.filter
            (fun root ->
              (* Only sweep owned subtrees — the copies this shard keeps
                 of foreign subtrees go stale the moment the owner commits
                 a single-shard transaction there, and "repairing" a
                 foreign device against a stale copy would undo the
                 owner's committed work.  Also skip subtrees with
                 transactions physically in flight: a transient mismatch
                 there is work in progress, not drift. *)
              Shard.owns t.shard root
              && Mglock.holders t.locks root = []
              && device_diverged root)
            t.device_roots
        in
        List.sort_uniq Data.Path.compare (quarantined_roots @ drifted)
        |> List.iter (fun root ->
               ignore
                 (Coord.Recipes.enqueue t.client
                    ~queue:(Proto.input_queue_ns t.ns)
                    (Proto.input_to_string (Proto.Control (Proto.Repair root)))))
      end
    done
  in
  t.procs <-
    Des.Proc.spawn ~name:(t.cname ^ ".repair") t.sim sweeper :: t.procs

(* The watchdog automates §4's operator (see Watchdog): periodically scan
   the in-flight transactions and escalate TERM → KILL on the overdue ones.
   Signals are injected as ordinary inputQ control items so they serialize
   with transaction processing (and survive into the next leader's replay
   if this one dies mid-escalation). *)
let spawn_watchdog t =
  let started () =
    (* Prepared 2PC shadow transactions are excluded: they legitimately
       hold locks until the coordinator's decision, and the presumed-abort
       timeout — not a KILL — is what unsticks them. *)
    Hashtbl.fold
      (fun id (txn : Txn.t) acc ->
        if txn.Txn.state = Txn.Started && not (is_participant txn) then
          (id, txn.Txn.log) :: acc
        else acc)
      t.txns []
  in
  let signal txn_id signal =
    (match signal with
     | Proto.Term -> t.st.auto_terms <- t.st.auto_terms + 1
     | Proto.Kill -> t.st.auto_kills <- t.st.auto_kills + 1);
    Option.iter
      (fun tr ->
        Trace.instant tr ~txn:txn_id ~cat:"watchdog"
          ~name:
            (match signal with Proto.Term -> "term" | Proto.Kill -> "kill")
          ())
      t.trace;
    Log.info (fun m ->
        m "%s: watchdog %s txn %d" t.cname (Proto.signal_to_string signal)
          txn_id);
    ignore
      (Coord.Recipes.enqueue t.client ~queue:(Proto.input_queue_ns t.ns)
         (Proto.input_to_string (Proto.Control (Proto.Signal (txn_id, signal)))))
  in
  let loop () =
    while not t.stopped do
      Des.Proc.sleep t.cfg.watchdog.Watchdog.poll_interval;
      if t.leading && not t.stopped then begin
        let sts = started () in
        Log.debug (fun m ->
            m "%s: watchdog scan at %.2f: started=[%s]" t.cname
              (Des.Sim.now t.sim)
              (String.concat ","
                 (List.map (fun (id, _) -> string_of_int id) sts)));
        Watchdog.scan t.watchdog ~now:(Des.Sim.now t.sim) ~started:sts ~signal
      end
    done
  in
  t.procs <-
    Des.Proc.spawn ~name:(t.cname ^ ".watchdog") t.sim loop :: t.procs

(* Breaker-parked transactions sit in the scheduler's blocked table with no
   lock waiter entry, so no release ever wakes them; this monitor re-gates
   them periodically and moves the admissible ones back to the ready queue
   (gate is also what ages Tripped breakers into Half_open).  The main loop
   notices [wake_pending] on its next iteration and drains. *)
let spawn_health_monitor t =
  let loop () =
    while not t.stopped do
      Des.Proc.sleep t.cfg.health.Health.poll_interval;
      if t.leading && (not t.stopped) && Hashtbl.length t.breaker_parked > 0
      then begin
        let now = Des.Sim.now t.sim in
        let eligible =
          Hashtbl.fold
            (fun id roots acc ->
              if
                List.for_all
                  (fun root -> Health.gate t.health ~now ~root <> `Defer)
                  roots
              then id :: acc
              else acc)
            t.breaker_parked []
          |> List.sort compare
        in
        refresh_breaker_stats t;
        if eligible <> [] then begin
          List.iter (Hashtbl.remove t.breaker_parked) eligible;
          ignore (Sched.wake t.sched eligible);
          t.wake_pending <- true;
          Log.info (fun m ->
              m "%s: breaker released %d parked txn(s)" t.cname
                (List.length eligible))
        end
      end
    done
  in
  t.procs <-
    Des.Proc.spawn ~name:(t.cname ^ ".health") t.sim loop :: t.procs

(* Long-lived persist-pool workers: each owns one extra coordination
   session and drains the shared job queue, so a burst flush's record
   writes overlap — and coalesce into shared replica-side group-commit
   batches — instead of serializing on the main session.  Registered in
   [t.procs] so [crash] kills them with the rest of the controller. *)
let spawn_persist_workers t =
  if t.persist_pool <> [] then begin
    let jobs = Des.Channel.create ~name:(t.cname ^ ".pjobs") () in
    t.pjobs <- Some jobs;
    List.iteri
      (fun i client ->
        let worker () =
          while not t.stopped do
            (match Des.Channel.recv jobs with
             | Pwrite (key, value) -> (
               match Coord.Client.write client ~key ~value () with
               | Ok _ -> ()
               | Error e ->
                 Log.err (fun m ->
                     m "%s: pooled persist of %s failed: %s" t.cname key
                       (Format.asprintf "%a" Coord.Types.pp_op_error e)))
             | Pdelete key -> ignore (Coord.Client.delete client ~key ())
             | Penqueue (queue, payload) ->
               ignore (Coord.Recipes.enqueue client ~queue payload));
            Des.Channel.send t.packs ()
          done
        in
        t.procs <-
          Des.Proc.spawn
            ~name:(Printf.sprintf "%s.persist-%d" t.cname i)
            t.sim worker
          :: t.procs)
      t.persist_pool
  end

let run t () =
  (* Shard ownership is a lease: the ephemeral sequential member node in
     the shard's election recipe.  Holding the lease IS being the shard's
     leader — exactly the pre-sharding election, one per namespace. *)
  let lease = Proto.election_path_ns t.ns in
  let member =
    Coord.Recipes.acquire_lease t.client ~lease ~payload:t.cname
  in
  Coord.Recipes.await_lease t.client ~lease ~member;
  t.leading <- true;
  Log.info (fun m -> m "%s: elected leader" t.cname);
  (match t.cfg.repair_interval with
   | Some interval -> spawn_repair_sweeper t interval
   | None -> ());
  if t.cfg.watchdog.Watchdog.enabled then spawn_watchdog t;
  if t.cfg.health.Health.enabled then spawn_health_monitor t;
  spawn_persist_workers t;
  recover t;
  schedule t;
  (* Items already sitting in inputQ behind the one just processed are
     drained in the same pass (bounded burst) before the scheduler runs:
     a group-commit flush delivers many results back-to-back, and one
     batched wake pass over the whole burst replaces a scan per item.
     Txn-record persists are deferred across the burst and flushed
     through the session pool before the items are deleted, so the
     process→persist→delete ordering a single-item pass guarantees still
     holds at burst granularity (a crash mid-burst replays the items,
     which processing dedups exactly as it did before). *)
  (* Burst reads are pointless without a pool to overlap the resulting
     writes: a one-item "burst" keeps the op sequence of the classic
     process-then-delete loop. *)
  let input_burst = if t.persist_pool = [] then 1 else 16 in
  while not t.stopped do
    if drain_twopc t || t.wake_pending then schedule t;
    match next_item t with
    | None -> ()
    | Some (key, payload) ->
      t.defer_persists <- true;
      let need_schedule = ref (process_item t ~key ~payload) in
      let keys = ref [ key ] in
      if input_burst > 1 && not t.stopped then begin
        let queue = Proto.input_queue_ns t.ns in
        let backlog =
          List.filter (fun k -> k <> key) (Coord.Client.get_children t.client queue)
        in
        let rec take n = function
          | x :: tl when n > 0 -> x :: take (n - 1) tl
          | _ -> []
        in
        List.iter
          (fun k ->
            if not t.stopped then
              match Coord.Client.get t.client k with
              | None -> ()
              | Some (payload, _) ->
                keys := k :: !keys;
                if process_item t ~key:k ~payload then need_schedule := true)
          (take (input_burst - 1) backlog)
      end;
      t.defer_persists <- false;
      flush_persists t;
      if not t.stopped then begin
        run_coord_jobs t (List.rev_map (fun k -> Pdelete k) !keys);
        if drain_twopc t || !need_schedule || t.wake_pending then schedule t
      end
  done

let start t =
  let p = Des.Proc.spawn ~name:t.cname t.sim (run t) in
  t.procs <- [ p ]

let crash t =
  t.stopped <- true;
  t.leading <- false;
  List.iter Des.Proc.kill t.procs;
  t.procs <- [];
  List.iter Coord.Client.close t.persist_pool;
  if t.gclient != t.client then Coord.Client.close t.gclient;
  Coord.Client.close t.client
