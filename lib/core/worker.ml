let log_src = Logs.Src.create "tropic.worker" ~doc:"TROPIC worker"

module Log = (val Logs.src_log log_src : Logs.LOG)

type mode = Full | Logical_only of float

type t = {
  wname : string;
  client : Coord.Client.t;
  ns : string;
  mode : mode;
  devices : Physical.device_lookup;
  sim : Des.Sim.t;
  retry : Physical.retry_policy;
  trace : Trace.t option;
  mutable stopped : bool;
  mutable procs : Des.Proc.t list;
  mutable n_executed : int;
  mutable n_committed : int;
}

let create ?(retry = Physical.no_retry) ?trace ?(ns = Proto.default_ns) ~name
    ~client ~mode ~devices ~sim () =
  {
    wname = name;
    client;
    ns;
    mode;
    devices;
    sim;
    retry;
    trace;
    stopped = false;
    procs = [];
    n_executed = 0;
    n_committed = 0;
  }

let name w = w.wname
let executed w = w.n_executed
let committed w = w.n_committed

let check_signal w txn_id () =
  match Coord.Client.get w.client (Proto.signal_key_ns w.ns txn_id) with
  | Some ("TERM", _) -> `Term
  | Some ("KILL", _) -> `Kill
  | Some _ | None -> `Go

let execute_txn w txn_id =
  match Coord.Client.get w.client (Txn.record_key_ns w.ns txn_id) with
  | None ->
    Log.err (fun m -> m "%s: no record for txn %d" w.wname txn_id);
    None
  | Some (value, _) ->
    (match Txn.of_string value with
     | Error reason ->
       Log.err (fun m -> m "%s: corrupt record for txn %d: %s" w.wname txn_id reason);
       None
     | Ok txn ->
       if txn.Txn.state <> Txn.Started then None
       else begin
         let counters = Physical.fresh_counters () in
         let t0 = Des.Sim.now w.sim in
         (* Resume cursor: a previous incarnation of this replay (lost to
            a worker or leader crash) persisted the index of the last
            action it completed.  Re-running those actions is not safe —
            creates are not idempotent, the effects are already on the
            devices — so the replay skips past them while keeping them in
            the undo prefix. *)
         let pkey = Proto.progress_key_ns w.ns txn_id in
         let skip =
           match w.mode with
           | Logical_only _ -> 0
           | Full ->
             (* Log indices are 1-based, so the last completed index IS
                the number of completed records to skip. *)
             (match Coord.Client.get w.client pkey with
              | Some (s, _) ->
                (match int_of_string_opt s with
                 | Some i -> max 0 i
                 | None -> 0)
              | None -> 0)
         in
         let on_progress i =
           if i <= 0 then ignore (Coord.Client.delete w.client ~key:pkey ())
           else
             ignore
               (Coord.Client.write w.client ~key:pkey
                  ~value:(string_of_int i) ())
         in
         (* Undo only while the record still says Started: if another
            incarnation of this replay already drove the transaction to a
            terminal state, unwinding our (partly inherited) prefix would
            corrupt its committed effects. *)
         let confirm_undo () =
           match Coord.Client.get w.client (Txn.record_key_ns w.ns txn_id) with
           | None -> false
           | Some (value, _) ->
             (match Txn.of_string value with
              | Error _ -> false
              | Ok now -> now.Txn.state = Txn.Started)
         in
         (* Each execution gets a fresh tracer lane: after a fail-over
            the same transaction can be replayed by two workers at once,
            and lanes keep their span trees from interleaving. *)
         let span =
           Option.map
             (fun tr ->
               let lane = Trace.fresh_lane tr in
               ( lane,
                 Trace.begin_span tr ~txn:txn_id ~lane ~cat:"physical"
                   ~name:"replay"
                   ~attrs:
                     ([ ("worker", w.wname);
                        ("actions", string_of_int (List.length txn.Txn.log));
                        ( "mode",
                          match w.mode with
                          | Full -> "full"
                          | Logical_only _ -> "logical" ) ]
                     @
                     if skip > 0 then [ ("resume", string_of_int skip) ]
                     else [])
                   () ))
             w.trace
         in
         (* Default outcome covers a kill mid-replay: the span is closed
            on the unwind (Fun.protect) with outcome "interrupted". *)
         let outcome_label = ref "interrupted" in
         let close_span () =
           match (w.trace, span) with
           | Some tr, Some (_, sid) ->
             Trace.end_span tr ~attrs:[ ("outcome", !outcome_label) ] sid
           | _ -> ()
         in
         let outcome =
           Fun.protect ~finally:close_span (fun () ->
               let o =
                 match w.mode with
                 | Logical_only delay ->
                   if delay > 0. then Des.Proc.sleep delay;
                   Proto.Phy_committed
                 | Full ->
                   Physical.execute ~devices:w.devices
                     ~check_signal:(check_signal w txn_id)
                     ~policy:w.retry ~rng:(Des.Sim.rng w.sim) ~sim:w.sim
                     ~counters
                     ?tracer:
                       (match (w.trace, span) with
                       | Some tr, Some (lane, _) -> Some (tr, txn_id, lane)
                       | _ -> None)
                     ~skip ~on_progress ~confirm_undo txn.Txn.log
               in
               (outcome_label :=
                  match o with
                  | Proto.Phy_committed -> "committed"
                  | Proto.Phy_aborted _ -> "aborted"
                  | Proto.Phy_failed _ -> "failed");
               o)
         in
         w.n_executed <- w.n_executed + 1;
         if outcome = Proto.Phy_committed then
           w.n_committed <- w.n_committed + 1;
         let exec =
           {
             Proto.retries = counters.Physical.retries;
             transient_failures = counters.Physical.transient_failures;
             timeouts = counters.Physical.timeouts;
             replay_s = Des.Sim.now w.sim -. t0;
             undo_s = counters.Physical.undo_s;
           }
         in
         Some (outcome, exec)
       end)

(* Take protocol: claim with an ephemeral executing-marker before deleting
   the queue item, so a recovering controller never re-queues a transaction
   some worker is already executing. *)
let take_and_run w (key, payload) =
  (match int_of_string_opt payload with
     | None -> ignore (Coord.Client.delete w.client ~key ())
     | Some txn_id ->
       let marker = Proto.executing_key_ns w.ns txn_id in
       ignore
         (Coord.Client.create w.client ~ephemeral:true ~key:marker ~value:w.wname ());
       (match Coord.Client.delete w.client ~key () with
        | Error _ ->
          (* Another worker won the take; withdraw the claim if it is ours. *)
          (match Coord.Client.get w.client marker with
           | Some (owner, _) when String.equal owner w.wname ->
             ignore (Coord.Client.delete w.client ~key:marker ())
           | Some _ | None -> ())
        | Ok () ->
          (match execute_txn w txn_id with
           | Some (outcome, exec) ->
             ignore
               (Coord.Recipes.enqueue w.client
                  ~queue:(Proto.input_queue_ns w.ns)
                  (Proto.input_to_string
                     (Proto.Result { txn_id; outcome; exec })));
             (* Result first, cursor second: a crash in between leaves a
                stale cursor on a terminal transaction (harmless — it is
                never replayed again), whereas the opposite order could
                lose the cursor of a replay whose result never landed. *)
             ignore
               (Coord.Client.delete w.client
                  ~key:(Proto.progress_key_ns w.ns txn_id) ())
           | None -> ());
          ignore (Coord.Client.delete w.client ~key:marker ())))

let run w () =
  let queue = Proto.phy_queue_ns w.ns in
  while not w.stopped do
    match Coord.Client.first_child_value w.client queue with
    | Some item -> take_and_run w item
    | None ->
      Coord.Client.watch_children w.client queue;
      (match Coord.Client.first_child_value w.client queue with
       | Some item -> take_and_run w item
       | None -> ignore (Coord.Client.await_change w.client ~timeout:1.0))
  done

let start w =
  let p = Des.Proc.spawn ~name:w.wname w.sim (run w) in
  w.procs <- [ p ]

let crash w =
  w.stopped <- true;
  List.iter Des.Proc.kill w.procs;
  w.procs <- [];
  Coord.Client.close w.client
